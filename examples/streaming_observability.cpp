/// \file streaming_observability.cpp
/// \brief Observability walkthrough: a generated diurnal day streams
///        through the incremental fleet engine with three observers
///        attached at once — a live console ticker, an hourly min/max/mean
///        rollup (FleetRollupReducer), and a JSONL sink whose replay
///        reconstructs the batch result bit for bit.
///
/// The point of the streaming surface: the engine never holds more than
/// one interval in memory (peak_held_intervals), observers see every
/// interval exactly once in timeline order on the calling thread, and the
/// aggregated stream IS the batch `FleetModel::run` result — one code
/// path, certified by digest at the end.

#include <cstdio>
#include <iostream>
#include <sstream>

#include "tpcool/core/solve_cache.hpp"
#include "tpcool/datacenter/fleet.hpp"
#include "tpcool/datacenter/streaming.hpp"
#include "tpcool/datacenter/workload_gen.hpp"
#include "tpcool/util/table.hpp"

namespace {

using namespace tpcool;

/// A minimal custom observer: prints a one-line ticker every few intervals
/// — what a live dashboard hook looks like.
class ConsoleTicker final : public datacenter::FleetObserver {
 public:
  void on_run_begin(const datacenter::FleetConfig& config,
                    std::size_t stream_count,
                    double total_duration_s) override {
    std::cout << "run: " << config.racks.size() << " racks, " << stream_count
              << " streams, " << total_duration_s / 3600.0 << " h\n";
  }
  void on_interval(const datacenter::FleetInterval& interval,
                   const datacenter::IntervalCounters& counters) override {
    if (interval.interval % 24 != 0) return;  // every ~6 h on a 15-min grid
    std::cout << "  t=" << interval.start_s / 3600.0 << "h  jobs="
              << interval.jobs.size() << "  IT="
              << util::TablePrinter::fmt(interval.it_power_w, 0) << "W  PUE="
              << util::TablePrinter::fmt(interval.pue, 3) << "  ("
              << counters.solves << " solves, " << counters.hits
              << " cache hits)\n";
  }
  void on_run_end(const datacenter::FleetRunSummary& summary) override {
    std::cout << "run end: " << summary.intervals << " intervals, fleet PUE "
              << util::TablePrinter::fmt(summary.avg_pue, 3) << ", "
              << summary.qos_violations << " QoS violations\n\n";
  }
};

}  // namespace

int main() {
  // One generated diurnal day: 4 correlated streams, interactive peak at
  // 14:00, batch overnight, flash-crowd bursts (seeded => reproducible).
  const datacenter::WorkloadGenerator generator(
      datacenter::diurnal_fleet_day(42, 4));
  const std::vector<workload::WorkloadTrace> streams = generator.generate();
  const datacenter::FleetConfig config =
      datacenter::make_heterogeneous_fleet(2, 2, 2.0e-3);

  std::cout << "== Streaming observability: one generated day, three "
               "observers ==\n\n";

  datacenter::StreamingFleetEngine engine(config, streams);
  ConsoleTicker ticker;
  datacenter::FleetRollupReducer hourly(3600.0);
  std::ostringstream jsonl;
  datacenter::JsonlFleetSink sink(jsonl);
  datacenter::FleetResultAggregator aggregator;
  engine.add_observer(ticker);      // 1: live console ticker
  engine.add_observer(hourly);      // 2: hourly min/max/mean rollup
  engine.add_observer(sink);        // 3: JSONL record of every interval
  engine.add_observer(aggregator);  // 4: the batch result, for the digest
  engine.run();

  // The rollup observer: a dashboard-sized digest of the day.
  util::TablePrinter rollups({"hour", "intervals", "IT mean [W]",
                              "IT max [W]", "PUE mean", "violations"});
  for (const datacenter::FleetRollupReducer::Rollup& w : hourly.rollups()) {
    if (w.first_interval % 16 != 0) continue;  // sample the table
    rollups.add_row({util::TablePrinter::fmt(w.start_s / 3600.0, 0),
                     std::to_string(w.intervals),
                     util::TablePrinter::fmt(w.it_power_w_mean, 0),
                     util::TablePrinter::fmt(w.it_power_w_max, 0),
                     util::TablePrinter::fmt(w.pue_mean, 3),
                     std::to_string(w.qos_violations)});
  }
  std::cout << "--- hourly rollups (sampled) ---\n";
  rollups.print(std::cout);

  // The JSONL sink round-trips the run exactly: replaying the log yields
  // the batch digest, and the batch API itself is the same engine.
  std::istringstream replay_stream(jsonl.str());
  const datacenter::FleetResult replayed =
      datacenter::replay_fleet_jsonl(replay_stream);
  const std::uint64_t batch_digest =
      datacenter::fleet_digest(aggregator.result());
  std::cout << "\nJSONL log: " << jsonl.str().size() / 1024 << " KiB, replay "
            << (datacenter::fleet_digest(replayed) == batch_digest
                    ? "matches the batch digest bit for bit"
                    : "DIVERGES (bug!)")
            << "\n";
  std::cout << "peak intervals held in memory: "
            << engine.peak_held_intervals() << " (bound: "
            << datacenter::StreamingFleetEngine::kMaxHeldIntervals
            << ", independent of trace length)\n";

  const core::SolveCache::Stats cache = core::SolveCache::global()->stats();
  std::cout << "solve cache: " << cache.misses << " coupled solves, "
            << cache.hits << " served from the cache\n"
            << "\nthe same engine behind FleetModel::run streams a week (or"
            " a year) of\ngenerated load at constant memory — see"
            " bench/streaming_scaling.cpp.\n";
  return 0;
}
