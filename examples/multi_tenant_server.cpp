/// \file multi_tenant_server.cpp
/// \brief Multi-application scenario: three tenants with different QoS
///        requirements co-located on one thermosyphon-cooled CPU. The
///        co-scheduler partitions the cores, picks per-app configurations,
///        chooses the package C-state every tenant tolerates, and places
///        the apps jointly under the channel constraints.

#include <iostream>

#include "tpcool/core/multi_app.hpp"
#include "tpcool/mapping/proposed.hpp"
#include "tpcool/util/table.hpp"

int main() {
  using namespace tpcool;
  std::cout << "== Multi-tenant server: x264 (2x) + canneal (3x) + "
               "swaptions (3x) ==\n\n";

  core::ServerConfig config;
  config.stack.cell_size_m = 1.0e-3;
  config.design.evaporator = core::default_evaporator_geometry(
      thermosyphon::Orientation::kEastWest);
  core::ServerModel server(std::move(config));
  const mapping::ProposedPolicy policy;
  core::MultiAppScheduler scheduler(server, policy);

  const std::vector<core::AppRequest> tenants{
      {&workload::find_benchmark("x264"), workload::QoSRequirement{2.0}},
      {&workload::find_benchmark("canneal"), workload::QoSRequirement{3.0}},
      {&workload::find_benchmark("swaptions"), workload::QoSRequirement{3.0}},
  };

  core::MultiAppSchedule plan;
  const core::SimulationResult sim = scheduler.run(tenants, &plan);

  util::TablePrinter table({"tenant", "QoS", "config", "cores",
                            "norm. time", "core power [W]"});
  for (std::size_t i = 0; i < plan.assignments.size(); ++i) {
    const core::AppAssignment& a = plan.assignments[i];
    std::string cores;
    for (const int id : a.cores) cores += std::to_string(id) + " ";
    table.add_row(
        {a.bench->name,
         util::TablePrinter::fmt(tenants[i].qos.factor, 0) + "x",
         a.config.label(), cores,
         util::TablePrinter::fmt(
             workload::normalized_exec_time(*a.bench, a.config), 2),
         util::TablePrinter::fmt(a.power_w, 1)});
  }
  table.print(std::cout);

  std::cout << "\npackage idle state : " << power::to_string(plan.idle_state)
            << " (deepest every tenant tolerates)\n"
            << "package power      : "
            << util::TablePrinter::fmt(plan.total_power_w, 1) << " W\n"
            << "die hot spot       : "
            << util::TablePrinter::fmt(sim.die.max_c, 1) << " C\n"
            << "die max gradient   : "
            << util::TablePrinter::fmt(sim.die.grad_max_c_per_mm, 2)
            << " C/mm\n"
            << "TCASE              : "
            << util::TablePrinter::fmt(sim.tcase_c, 1) << " C (limit 85)\n";
  return 0;
}
