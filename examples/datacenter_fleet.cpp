/// \file datacenter_fleet.cpp
/// \brief Fleet-level walkthrough: a small datacenter of heterogeneous
///        racks (the three §VIII approaches behind their own chillers)
///        plays a day of mixed workload streams; jobs are dispatched by a
///        placement policy, each rack solves the §V shared-cooling
///        problem, and the fleet rolls up IT power, chiller power, PUE,
///        and QoS violations per interval.
///
/// All solves go through the global SolveCache on pooled pipelines, so
/// the second and third policies replay most of the first one's solves
/// from the cache — the whole example runs in seconds.

#include <iostream>

#include "tpcool/core/pipeline_pool.hpp"
#include "tpcool/core/solve_cache.hpp"
#include "tpcool/datacenter/fleet.hpp"
#include "tpcool/util/table.hpp"

int main() {
  using namespace tpcool;

  // 4 racks x 2 servers, cycling the three approaches; 6 workload streams
  // (alternating the daily and stress patterns at staggered scales).
  datacenter::FleetConfig config =
      datacenter::make_heterogeneous_fleet(4, 2, 2.0e-3);
  std::vector<workload::WorkloadTrace> streams;
  for (std::size_t s = 0; s < 6; ++s) {
    const double scale = 1.0 + 0.5 * static_cast<double>(s % 3);
    streams.push_back(s % 2 == 0 ? workload::make_daily_trace(scale)
                                 : workload::make_stress_trace(scale));
  }

  std::cout << "== Datacenter fleet: 4 racks x 2 servers, 6 workload "
               "streams ==\n\n";

  util::TablePrinter summary({"policy", "intervals", "IT [kWh]",
                              "chiller [kWh]", "fleet PUE",
                              "QoS violations"});
  for (const std::string& policy : datacenter::placement_policy_names()) {
    config.placement = policy;
    datacenter::FleetModel fleet(config);
    const datacenter::FleetResult result = fleet.run(streams);

    if (policy == "round-robin") {
      // Interval-by-interval detail for the first policy.
      util::TablePrinter intervals({"t [s]", "jobs", "IT [W]",
                                    "chiller [W]", "PUE", "violations",
                                    "rack setpoints [C]"});
      for (const datacenter::FleetInterval& iv : result.intervals) {
        std::string setpoints;
        for (const datacenter::RackInterval& rack : iv.racks) {
          if (!setpoints.empty()) setpoints += "/";
          setpoints += rack.jobs == 0
                           ? "-"
                           : util::TablePrinter::fmt(
                                 rack.cooling.supply_temp_c, 0);
        }
        intervals.add_row({util::TablePrinter::fmt(iv.start_s, 1),
                           std::to_string(iv.jobs.size()),
                           util::TablePrinter::fmt(iv.it_power_w, 0),
                           util::TablePrinter::fmt(iv.chiller_power_w, 1),
                           util::TablePrinter::fmt(iv.pue, 3),
                           std::to_string(iv.qos_violations), setpoints});
      }
      std::cout << "--- timeline under " << policy << " ---\n";
      intervals.print(std::cout);
      std::cout << "\n";
    }

    summary.add_row({policy, std::to_string(result.intervals.size()),
                     util::TablePrinter::fmt(
                         result.total_it_energy_j / 3.6e6, 4),
                     util::TablePrinter::fmt(
                         result.total_chiller_energy_j / 3.6e6, 4),
                     util::TablePrinter::fmt(result.avg_pue, 3),
                     std::to_string(result.qos_violations)});
  }

  std::cout << "--- placement policies compared ---\n";
  summary.print(std::cout);

  const core::SolveCache::Stats cache = core::SolveCache::global()->stats();
  const core::PipelinePool::Stats pool = core::PipelinePool::global().stats();
  std::cout << "\nsolve cache: " << cache.misses << " coupled solves, "
            << cache.hits << " served from the cache\n"
            << "pipeline pool: " << pool.constructions
            << " pipelines built, " << pool.reuses << " checkouts reused\n"
            << "\nthe thermosyphon fleet runs near free cooling (PUE ~1.0x);"
            " placement only\nmoves the chiller bill a little because every"
            " rack's setpoint stays high.\n";
  return 0;
}
