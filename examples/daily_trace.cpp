/// \file daily_trace.cpp
/// \brief Trace-driven scenario: a server plays a day-like workload pattern
///        (overnight batch, interactive bursts, latency-critical spikes)
///        through the scheduler and the transient thermal model, carrying
///        thermal state across phase switches.

#include <iostream>

#include "tpcool/core/pipelines.hpp"
#include "tpcool/core/trace_runner.hpp"
#include "tpcool/util/table.hpp"

int main() {
  using namespace tpcool;
  std::cout << "== Daily workload trace on the proposed system ==\n\n";

  core::ApproachPipeline pipeline(core::Approach::kProposed, 1.5e-3);
  core::TraceRunner runner(pipeline.server(), pipeline.scheduler(),
                           {.control_period_s = 0.5});

  const workload::WorkloadTrace trace = workload::make_daily_trace(8.0);
  const core::TraceResult result = runner.run(trace);

  util::TablePrinter table({"phase", "benchmark", "QoS", "config", "idle",
                            "P [W]", "peak die [C]", "peak TCASE [C]",
                            "energy [J]"});
  for (const core::PhaseRecord& r : result.phases) {
    table.add_row({std::to_string(r.phase_index), r.benchmark,
                   util::TablePrinter::fmt(r.qos_factor, 0) + "x",
                   r.decision.point.config.label(),
                   power::to_string(r.decision.idle_state),
                   util::TablePrinter::fmt(r.avg_power_w, 1),
                   util::TablePrinter::fmt(r.peak_die_c, 1),
                   util::TablePrinter::fmt(r.peak_tcase_c, 1),
                   util::TablePrinter::fmt(r.energy_j, 0)});
  }
  table.print(std::cout);

  std::cout << "\ntrace duration  : " << trace.total_duration_s() << " s\n"
            << "peak TCASE      : "
            << util::TablePrinter::fmt(result.peak_tcase_c, 1)
            << " C (limit 85, exceeded: "
            << (result.tcase_limit_exceeded ? "yes" : "no") << ")\n"
            << "package energy  : "
            << util::TablePrinter::fmt(result.total_energy_j, 0) << " J\n"
            << "\nnote how the scheduler shifts between full-throttle "
               "configurations for the 1x\nbursts and small, deep-sleep "
               "configurations for the 3x batch phases — the\nthermosyphon "
               "absorbs both without approaching TCASE_MAX.\n";
  return 0;
}
