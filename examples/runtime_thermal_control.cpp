/// \file runtime_thermal_control.cpp
/// \brief Transient demo of the §VII runtime controller: a hot workload
///        lands on the server, the package heats up, and on a (deliberately
///        tightened) TCASE limit the controller reacts — DVFS first while
///        the QoS allows it, then the coolant valve.

#include <iostream>

#include "tpcool/core/pipelines.hpp"
#include "tpcool/core/runtime_controller.hpp"
#include "tpcool/util/table.hpp"

int main() {
  using namespace tpcool;
  std::cout << "== Runtime thermal control (transient, tightened limit) ==\n\n";

  core::ApproachPipeline pipeline(core::Approach::kProposed, 1.5e-3);
  const auto& bench = workload::worst_case_benchmark();

  // Full-load decision: all 8 cores at fmax, idle state irrelevant.
  core::ScheduleDecision decision;
  decision.point.config = {8, 2, 3.2};
  decision.point.norm_time = 1.0;
  decision.cores = {1, 2, 3, 4, 5, 6, 7, 8};
  decision.idle_state = power::CState::kPoll;

  core::RuntimeController::Config config;
  config.tcase_limit_c = 46.0;  // tightened so the demo shows reactions
  config.control_period_s = 0.5;
  config.max_steps = 24;
  core::RuntimeController controller(pipeline.server(), config);

  // 3x QoS slack: the controller may lower the frequency before opening
  // the valve (paper §VII: raise the flow only if DVFS would violate QoS).
  const core::ControlTrace trace =
      controller.run(bench, decision, workload::QoSRequirement{3.0});

  util::TablePrinter table(
      {"t [s]", "TCASE [C]", "die max [C]", "f [GHz]", "flow [kg/h]",
       "action"});
  for (const core::ControlRecord& r : trace.records) {
    table.add_row({util::TablePrinter::fmt(r.time_s, 1),
                   util::TablePrinter::fmt(r.tcase_c, 1),
                   util::TablePrinter::fmt(r.die_max_c, 1),
                   util::TablePrinter::fmt(r.freq_ghz, 1),
                   util::TablePrinter::fmt(r.flow_kg_h, 0),
                   to_string(r.action)});
  }
  table.print(std::cout);

  std::cout << "\nemergency seen : " << (trace.emergency_seen ? "yes" : "no")
            << "\nQoS violated   : " << (trace.qos_violated ? "yes" : "no")
            << "\n";
  return 0;
}
