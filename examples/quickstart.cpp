/// \file quickstart.cpp
/// \brief Minimal tour of the tpcool public API: build the paper's server,
///        schedule a PARSEC workload under a QoS constraint, and inspect the
///        resulting thermal profile.

#include <iostream>

#include "tpcool/core/pipelines.hpp"
#include "tpcool/util/table.hpp"

int main() {
  using namespace tpcool;

  // 1. The paper's proposed system: east-west thermosyphon charged with
  //    R236fa at 55 %, Algorithm-1 configuration selection, C-state-aware
  //    thermal mapping.
  core::ApproachPipeline pipeline(core::Approach::kProposed);

  // 2. Pick a workload and a QoS requirement (2x tolerated degradation).
  const workload::BenchmarkProfile& bench = workload::find_benchmark("x264");
  const workload::QoSRequirement qos{2.0};

  // 3. Schedule: configuration (Nc, Nt, f), C-state, core placement.
  core::ScheduleDecision decision;
  const core::SimulationResult sim =
      pipeline.scheduler().run(bench, qos, &decision);

  std::cout << "benchmark        : " << bench.name << "\n"
            << "QoS              : " << qos.factor << "x\n"
            << "configuration    : " << decision.point.config.label() << "\n"
            << "normalized time  : " << decision.point.norm_time << "\n"
            << "idle C-state     : " << power::to_string(decision.idle_state)
            << "\n"
            << "mapped cores     : ";
  for (const int id : decision.cores) std::cout << id << ' ';
  std::cout << "\n\n";

  // 4. Thermal outcome of the coupled thermosyphon + 3D-thermal solve.
  util::TablePrinter table({"metric", "value"});
  table.add_row({"package power [W]", util::TablePrinter::fmt(sim.total_power_w)});
  table.add_row({"die hot spot [C]", util::TablePrinter::fmt(sim.die.max_c)});
  table.add_row({"die average [C]", util::TablePrinter::fmt(sim.die.avg_c)});
  table.add_row({"die max gradient [C/mm]",
                 util::TablePrinter::fmt(sim.die.grad_max_c_per_mm)});
  table.add_row({"TCASE [C]", util::TablePrinter::fmt(sim.tcase_c)});
  table.add_row({"T_sat [C]", util::TablePrinter::fmt(sim.syphon.t_sat_c)});
  table.add_row({"refrigerant flow [g/s]",
                 util::TablePrinter::fmt(sim.syphon.refrigerant_flow_kg_s * 1e3)});
  table.add_row({"loop exit quality",
                 util::TablePrinter::fmt(sim.syphon.loop_exit_quality, 3)});
  table.add_row({"water out [C]",
                 util::TablePrinter::fmt(sim.syphon.water_outlet_c)});
  table.add_row({"dry-out?", sim.syphon.any_dryout ? "yes" : "no"});
  table.print(std::cout);
  return 0;
}
