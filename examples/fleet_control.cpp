/// \file fleet_control.cpp
/// \brief Closed-loop fleet control walkthrough: the same diurnal day runs
///        twice — open-loop, then with a `FleetController` tracking a
///        fleet PUE target — and the hourly rollups show the uncontrolled
///        PUE drifting with the load swing while the controlled run is
///        pulled onto the target band and held there by per-rack supply
///        biases.
///
/// The controller is just another `FleetObserver` (measurement → windowed
/// average → damped error → per-rack bias), so it composes with every
/// other observer; here a rollup reducer watches both runs and a console
/// ticker prints the controller's own state as the loop settles.

#include <cstdio>
#include <iostream>

#include "tpcool/datacenter/control.hpp"
#include "tpcool/datacenter/fleet.hpp"
#include "tpcool/datacenter/streaming.hpp"
#include "tpcool/datacenter/workload_gen.hpp"
#include "tpcool/util/table.hpp"

namespace {

using namespace tpcool;

/// Prints the control loop's state every few intervals: the windowed
/// error and the biases actually applied to each rack.
class ControlTicker final : public datacenter::FleetObserver {
 public:
  void on_interval(const datacenter::FleetInterval& interval,
                   const datacenter::IntervalCounters& counters) override {
    (void)counters;
    if (!interval.control.active || interval.interval % 8 != 0) return;
    std::cout << "  t=" << util::TablePrinter::fmt(
                     interval.start_s / 3600.0, 1)
              << "h  PUE=" << util::TablePrinter::fmt(interval.pue, 3)
              << "  err=" << util::TablePrinter::fmt(
                     interval.control.error, 4)
              << "  bias_c=[";
    for (std::size_t r = 0; r < interval.control.rack_bias_c.size(); ++r) {
      std::cout << (r ? ", " : "")
                << util::TablePrinter::fmt(interval.control.rack_bias_c[r], 0);
    }
    std::cout << "]\n";
  }
};

void print_rollups(const char* label,
                   const std::vector<datacenter::FleetRollupReducer::Rollup>&
                       rollups) {
  std::cout << label << " (3-hourly PUE min..max):";
  for (const auto& rollup : rollups) {
    std::cout << "  " << util::TablePrinter::fmt(rollup.pue_min, 3) << ".."
              << util::TablePrinter::fmt(rollup.pue_max, 3);
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  // The canonical PUE-tracking scenario the control tests and the
  // control_scaling bench also use: a generated diurnal day on the
  // two-rack heterogeneous demo fleet.
  datacenter::ControlScenario scenario =
      datacenter::make_pue_tracking_day(42, 4, 2.0e-3);

  // Open loop first: the diurnal swing drags the fleet PUE around.
  datacenter::StreamingFleetEngine open_loop(scenario.fleet,
                                             scenario.streams);
  datacenter::FleetRollupReducer open_rollup(3.0 * 3600.0);
  open_loop.add_observer(open_rollup);
  open_loop.run();
  print_rollups("open loop  ", open_rollup.rollups());
  std::cout << "open-loop fleet PUE: "
            << util::TablePrinter::fmt(open_loop.summary().avg_pue, 3)
            << "\n\n";

  // Closed loop: same fleet, same day, controller in the loop.
  std::cout << "closed loop, target PUE "
            << util::TablePrinter::fmt(scenario.controller.target, 3)
            << ":\n";
  datacenter::FleetController controller(scenario.controller);
  datacenter::StreamingFleetEngine closed_loop(scenario.fleet,
                                               scenario.streams);
  closed_loop.set_controller(controller);
  datacenter::FleetRollupReducer closed_rollup(3.0 * 3600.0);
  ControlTicker ticker;
  closed_loop.add_observer(closed_rollup);
  closed_loop.add_observer(ticker);
  closed_loop.run();
  print_rollups("closed loop", closed_rollup.rollups());
  std::cout << "closed-loop fleet PUE: "
            << util::TablePrinter::fmt(closed_loop.summary().avg_pue, 3)
            << " (target "
            << util::TablePrinter::fmt(scenario.controller.target, 3)
            << ")\n";
  return 0;
}
