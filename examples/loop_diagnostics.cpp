/// \file loop_diagnostics.cpp
/// \brief Diagnostic tour of the thermosyphon internals: loop state vs load,
///        per-channel quality/dry-out margins, and the qualitative orderings
///        behind Figs. 2, 5 and 6. Useful when re-calibrating the model.

#include <iostream>

#include "tpcool/core/experiment.hpp"
#include "tpcool/util/table.hpp"

using namespace tpcool;

namespace {

void loop_vs_load() {
  std::cout << "== loop state vs load (proposed design) ==\n";
  core::ApproachPipeline pipeline(core::Approach::kProposed);
  core::ServerModel& server = pipeline.server();
  const workload::BenchmarkProfile& bench = workload::worst_case_benchmark();

  util::TablePrinter table({"cores", "P[W]", "Tsat[C]", "mdot[g/s]",
                            "x_exit", "max ch x", "dryout ch", "die max[C]",
                            "TCASE[C]"});
  for (const int nc : {2, 4, 6, 8}) {
    const workload::Configuration config{nc, 2, 3.2};
    std::vector<int> cores;
    for (int i = 1; i <= nc; ++i) cores.push_back(i);
    const core::SimulationResult sim =
        server.simulate(bench, config, cores, power::CState::kC1E);
    double max_x = 0.0;
    int dried = 0;
    for (const auto& ch : sim.syphon.channels) {
      max_x = std::max(max_x, ch.exit_quality);
      dried += ch.dried_out ? 1 : 0;
    }
    table.add_row({std::to_string(nc), util::TablePrinter::fmt(sim.total_power_w),
                   util::TablePrinter::fmt(sim.syphon.t_sat_c),
                   util::TablePrinter::fmt(sim.syphon.refrigerant_flow_kg_s * 1e3, 3),
                   util::TablePrinter::fmt(sim.syphon.loop_exit_quality, 3),
                   util::TablePrinter::fmt(max_x, 3), std::to_string(dried),
                   util::TablePrinter::fmt(sim.die.max_c),
                   util::TablePrinter::fmt(sim.tcase_c)});
  }
  table.print(std::cout);
  std::cout << '\n';
}

void fig2_probe() {
  std::cout << "== Fig.2 motivation (paper: die 66.1/55.9/6.6, pkg 46.4/42.9/0.5) ==\n";
  const core::Fig2Result r = core::run_fig2_motivation({});
  std::cout << "die : " << r.die.max_c << " / " << r.die.avg_c << " / "
            << r.die.grad_max_c_per_mm << "\n"
            << "pkg : " << r.package.max_c << " / " << r.package.avg_c
            << " / " << r.package.grad_max_c_per_mm << "\n\n";
}

void fig5_probe() {
  std::cout << "== Fig.5 orientation (paper pkg: D1 52.7/50.3/0.33, D2 53.5/50.6/0.43;"
               " die: 73.2/62.1/6.8 vs 79.4/66.2/7.1) ==\n";
  for (const core::Fig5Row& row : core::run_fig5_orientation({})) {
    std::cout << thermosyphon::to_string(row.orientation) << "\n  die "
              << row.die.max_c << " / " << row.die.avg_c << " / "
              << row.die.grad_max_c_per_mm << " | pkg " << row.package.max_c
              << " / " << row.package.avg_c << " / "
              << row.package.grad_max_c_per_mm << "\n";
  }
  std::cout << '\n';
}

void fig6_probe() {
  std::cout << "== Fig.6 scenarios (paper POLL θmax: 68.2/65.0/77.6; C1: 57.1/64.2/73.3) ==\n";
  for (const core::Fig6Row& row : core::run_fig6_scenarios({})) {
    std::cout << "scenario " << row.scenario << " @" << power::to_string(row.idle_state)
              << " : die " << row.die.max_c << " / " << row.die.avg_c
              << " / " << row.die.grad_max_c_per_mm << "\n";
  }
  std::cout << '\n';
}

}  // namespace

int main() {
  loop_vs_load();
  fig2_probe();
  fig5_probe();
  fig6_probe();
  return 0;
}
