/// \file datacenter_rack.cpp
/// \brief Rack-level scenario (§V): several servers with mixed workloads
///        share one chiller, so every thermosyphon gets the same water
///        temperature. The coordinator schedules each server, derives the
///        per-server maximum feasible supply temperature, sets the rack
///        setpoint, and compares the chiller bill of the proposed approach
///        against the state of the art.

#include <iostream>

#include "tpcool/core/rack_coordinator.hpp"
#include "tpcool/util/table.hpp"

namespace {

tpcool::core::RackPlan plan_for(tpcool::core::Approach approach,
                                const std::vector<std::string>& workloads) {
  tpcool::core::RackCoordinator::Config config;
  config.approach = approach;
  config.qos = tpcool::workload::QoSRequirement{2.0};
  config.cell_size_m = 1.5e-3;
  tpcool::core::RackCoordinator coordinator(std::move(config));
  return coordinator.plan(workloads);
}

}  // namespace

int main() {
  using namespace tpcool;
  const std::vector<std::string> workloads{
      "x264", "facesim", "canneal", "streamcluster", "ferret", "swaptions"};

  std::cout << "== Data-center rack: 6 servers, one chiller, 2x QoS ==\n\n";

  for (const core::Approach approach :
       {core::Approach::kProposed, core::Approach::kSoaBalancing}) {
    const core::RackPlan plan = plan_for(approach, workloads);
    std::cout << "--- " << core::to_string(approach) << " ---\n";
    util::TablePrinter table({"server", "config", "idle", "P [W]",
                              "max T_w [C]", "die max @rack T_w [C]"});
    for (const core::ServerPlan& sp : plan.servers) {
      table.add_row({sp.benchmark, sp.decision.point.config.label(),
                     power::to_string(sp.decision.idle_state),
                     util::TablePrinter::fmt(sp.package_power_w, 1),
                     util::TablePrinter::fmt(sp.max_supply_temp_c, 0),
                     util::TablePrinter::fmt(sp.die_max_c, 1)});
    }
    table.print(std::cout);
    std::cout << "rack water setpoint : " << plan.cooling.supply_temp_c
              << " C (minimum over servers)\n"
              << "loop return         : "
              << util::TablePrinter::fmt(plan.cooling.return_temp_c, 1)
              << " C, total heat "
              << util::TablePrinter::fmt(plan.cooling.total_heat_w, 0)
              << " W\n"
              << "chiller lift power  : "
              << util::TablePrinter::fmt(plan.cooling.chiller_lift_power_w, 1)
              << " W (Eq. 1)\n"
              << "chiller electrical  : "
              << util::TablePrinter::fmt(plan.cooling.chiller_electrical_w, 1)
              << " W (COP model)\n\n";
  }

  std::cout << "the proposed pipeline schedules cooler servers, so the shared"
               " setpoint stays\nhigher and the chiller runs closer to free "
               "cooling (paper SVIII-B).\n";
  return 0;
}
