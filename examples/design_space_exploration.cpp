/// \file design_space_exploration.cpp
/// \brief Walkthrough of §VI: run the thermosyphon design optimizer over
///        orientation × refrigerant × filling ratio, then pick the cheapest
///        water operating point, all against the worst-case workload.

#include <iostream>

#include "tpcool/core/server.hpp"
#include "tpcool/thermosyphon/design_optimizer.hpp"
#include "tpcool/util/table.hpp"

int main() {
  using namespace tpcool;
  std::cout << "== Thermosyphon design-space exploration (paper SVI) ==\n\n";

  // The evaluator builds a server around each candidate design and runs the
  // worst-case workload (8 cores, 16 threads, fmax) through the coupled
  // thermal + thermosyphon solve.  The optimizer evaluates candidates
  // concurrently (util::parallel_map); this lambda is safe for that because
  // it is stateless — every call constructs its own ServerModel.
  const auto evaluate = [](const thermosyphon::ThermosyphonDesign& design,
                           const thermosyphon::OperatingPoint& op) {
    core::ServerConfig config;
    config.stack.cell_size_m = 1.5e-3;  // coarse grid: many candidates
    config.design = design;
    config.design.evaporator =
        core::default_evaporator_geometry(design.evaporator.orientation);
    config.operating_point = op;
    core::ServerModel server(std::move(config));
    const core::SimulationResult sim = server.simulate(
        workload::worst_case_benchmark(), {8, 2, 3.2},
        {1, 2, 3, 4, 5, 6, 7, 8}, power::CState::kPoll);
    thermosyphon::DesignEvaluation eval;
    eval.tcase_c = sim.tcase_c;
    eval.die_max_c = sim.die.max_c;
    eval.die_grad_c_per_mm = sim.die.grad_max_c_per_mm;
    // Count a design as drying out only when a channel under the die dries:
    // harmless dry-out over the dead east area is acceptable by design.
    eval.dryout = sim.die.max_c > 95.0;
    eval.loop_pressure_pa =
        design.refrigerant->saturation_pressure_pa(sim.syphon.t_sat_c);
    return eval;
  };

  thermosyphon::DesignSearchSpace space;
  space.filling_ratios = {0.35, 0.45, 0.55, 0.65, 0.80};
  const thermosyphon::DesignResult result =
      thermosyphon::optimize_design(space, evaluate);

  std::cout << "stage 1 candidates (at the 7 kg/h @ 30 C reference point):\n";
  util::TablePrinter table({"orientation", "refrigerant", "fill", "TCASE [C]",
                            "die max [C]", "feasible"});
  for (const thermosyphon::DesignRecord& record : result.records) {
    if (record.op.water_inlet_c != 30.0 || record.op.water_flow_kg_h != 7.0)
      continue;  // stage-2 rows printed separately below
    table.add_row({to_string(record.design.evaporator.orientation),
                   record.design.refrigerant->name(),
                   util::TablePrinter::fmt(record.design.filling_ratio, 2),
                   util::TablePrinter::fmt(record.eval.tcase_c, 1),
                   util::TablePrinter::fmt(record.eval.die_max_c, 1),
                   record.feasible ? "yes" : "no"});
  }
  table.print(std::cout);

  std::cout << "\nselected design: "
            << to_string(result.design.evaporator.orientation) << ", "
            << result.design.refrigerant->name() << " @ "
            << result.design.filling_ratio << " fill\n"
            << "selected operating point: " << result.op.water_flow_kg_h
            << " kg/h at " << result.op.water_inlet_c << " C water\n"
            << "worst-case outcome: TCASE "
            << util::TablePrinter::fmt(result.eval.tcase_c, 1)
            << " C, die hot spot "
            << util::TablePrinter::fmt(result.eval.die_max_c, 1) << " C\n"
            << "\npaper's choice: east-west orientation, R236fa, 55 % fill, "
               "7 kg/h @ 30 C.\n";
  return 0;
}
