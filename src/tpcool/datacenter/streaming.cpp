#include "tpcool/datacenter/streaming.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <string_view>
#include <utility>

#include "tpcool/cooling/pue.hpp"
#include "tpcool/cooling/rack.hpp"
#include "tpcool/core/parallel.hpp"
#include "tpcool/datacenter/control.hpp"
#include "tpcool/core/pipeline_pool.hpp"
#include "tpcool/core/solve_cache.hpp"
#include "tpcool/util/error.hpp"
#include "tpcool/util/telemetry.hpp"
#include "tpcool/workload/benchmark.hpp"

namespace tpcool::datacenter {

namespace {

/// One job per chunk: every (rack, server) slot schedules and scans
/// independently, exactly like the rack coordinator (and exactly like the
/// batch FleetModel before it was rebuilt on this engine).
constexpr std::size_t kFleetGrain = 1;

/// Phase-1 outcome of one job: the schedule and the supply-temperature
/// scan against its rack's candidates.
struct ScanOutcome {
  core::ScheduleDecision decision;
  double max_supply_temp_c = 0.0;
  double demand_power_w = 0.0;  ///< Package power at the scan's endpoint.
  bool infeasible = false;      ///< No candidate kept TCASE within limit.
};

}  // namespace

// ------------------------------------------------------------- the engine --

StreamingFleetEngine::StreamingFleetEngine(
    FleetConfig config, std::vector<workload::WorkloadTrace> streams)
    : config_(std::move(config)), streams_(std::move(streams)) {
  validate_fleet_config(config_);
  TPCOOL_REQUIRE(!streams_.empty(), "fleet run needs at least one stream");

  boundaries_ = fleet_interval_boundaries(streams_);
  policy_ = make_placement_policy(config_.placement);

  // Per-rack dispatch state; headroom carries across intervals.
  loads_.resize(config_.racks.size());
  for (std::size_t r = 0; r < config_.racks.size(); ++r) {
    loads_[r] = {r, config_.racks[r].servers, 0, 0.0, kIdleHeadroomC};
  }

  // Per-rack design water flow (the §VI-C operating point of the rack's
  // approach), fixed over the run like in the rack coordinator.
  design_flow_kg_h_.resize(config_.racks.size());
  for (std::size_t r = 0; r < config_.racks.size(); ++r) {
    design_flow_kg_h_[r] =
        core::server_config_for(config_.racks[r].approach,
                                config_.racks[r].cell_size_m)
            .operating_point.water_flow_kg_h;
  }

  // Runtime rack state the event timeline mutates.
  capacity_.resize(config_.racks.size());
  chiller_.resize(config_.racks.size());
  for (std::size_t r = 0; r < config_.racks.size(); ++r) {
    capacity_[r] = config_.racks[r].servers;
    chiller_[r] = config_.racks[r].chiller;
  }
  events_ = config_.events;
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FleetEvent& a, const FleetEvent& b) {
                     return a.time_s < b.time_s;
                   });

  // Lookahead policies precompute from the full timeline (the addresses
  // handed out are the engine's own members, stable for the run).
  policy_->begin_run({&config_, &streams_, &boundaries_});

  summary_.duration_s = boundaries_.back();
}

void StreamingFleetEngine::add_observer(FleetObserver& observer) {
  TPCOOL_REQUIRE(!begun_, "observers must be registered before the run");
  observers_.push_back(&observer);
}

void StreamingFleetEngine::set_controller(FleetController& controller) {
  TPCOOL_REQUIRE(controller_ == nullptr, "engine already has a controller");
  controller_ = &controller;
  add_observer(controller);  // also enforces the before-the-run rule
}

const FleetRunSummary& StreamingFleetEngine::summary() const {
  TPCOOL_REQUIRE(finished_ && !failed_,
                 "summary is only valid after the run finishes cleanly");
  return summary_;
}

bool StreamingFleetEngine::advance() {
  if (finished_) return false;
  if (!begun_) {
    begun_ = true;
    try {
      for (FleetObserver* observer : observers_) {
        observer->on_run_begin(config_, streams_.size(), boundaries_.back());
      }
    } catch (...) {
      finished_ = true;  // observer contract: a throw spends the engine
      failed_ = true;
      throw;
    }
  }

  if (next_interval_ + 1 >= boundaries_.size()) {
    // Timeline drained: finalize and dispatch the end-of-run summary.
    TPCOOL_ENSURE(summary_.total_it_energy_j > 0.0,
                  "fleet ran no work (all streams empty?)");
    summary_.avg_pue =
        summary_.total_facility_energy_j / summary_.total_it_energy_j;
    summary_.intervals = next_interval_;
    finished_ = true;
    for (FleetObserver* observer : observers_) {
      observer->on_run_end(summary_);
    }
    return false;
  }

  const std::size_t b = next_interval_;
  const double start_s = boundaries_[b];
  const double duration_s = boundaries_[b + 1] - boundaries_[b];

  // One span per streamed interval, covering event application, the
  // parallel scan/solve fan-out, and observer dispatch.
  util::TraceSpan span("fleet.interval");
  span.arg("interval", static_cast<double>(b));
  if (util::telemetry_enabled()) {
    static util::TelemetryCounter& intervals =
        util::Telemetry::instance().counter("fleet.intervals");
    intervals.add(1.0);
  }

  // Apply every disturbance due by this interval's start (time order;
  // same-time events in config order via the stable sort).
  while (next_event_ < events_.size() &&
         events_[next_event_].time_s <= start_s) {
    const FleetEvent& event = events_[next_event_];
    switch (event.kind) {
      case FleetEventKind::kChillerDerate:
        chiller_[event.rack].second_law_eff =
            config_.racks[event.rack].chiller.second_law_eff * event.factor;
        break;
      case FleetEventKind::kChillerRestore:
        chiller_[event.rack] = config_.racks[event.rack].chiller;
        break;
      case FleetEventKind::kRackLoss:
        capacity_[event.rack] = 0;
        break;
      case FleetEventKind::kRackRestore:
        capacity_[event.rack] = config_.racks[event.rack].servers;
        break;
    }
    ++next_event_;
  }

  const core::SolveCache::Stats cache_before =
      core::SolveCache::global()->stats();

  // Arrivals: every still-active stream contributes its current phase.
  std::vector<JobRequest> jobs;
  for (std::size_t s = 0; s < streams_.size(); ++s) {
    if (start_s >= streams_[s].total_duration_s()) continue;  // stream done
    const workload::TracePhase& phase = streams_[s].phase_at(start_s);
    JobRequest job;
    job.stream = s;
    job.bench = &workload::find_benchmark(phase.benchmark);
    job.qos = phase.qos;
    job.est_power_w = job_power_estimate(*job.bench, job.qos);
    jobs.push_back(job);
  }
  std::size_t capacity = 0;
  for (const std::size_t rack_capacity : capacity_) {
    capacity += rack_capacity;
  }

  // Over capacity: historically a hard error; with shed_overload the
  // excess is shed lowest-priority-first (highest QoS factor = loosest
  // tier, ties to the highest stream index) — deterministic admission
  // control for flash crowds and rack-loss failover.
  std::vector<std::size_t> shed_streams;
  if (jobs.size() > capacity) {
    TPCOOL_REQUIRE(config_.shed_overload,
                   "fleet over capacity: " + std::to_string(jobs.size()) +
                       " active streams vs " + std::to_string(capacity) +
                       " servers");
    while (jobs.size() > capacity) {
      std::size_t worst = 0;
      for (std::size_t j = 1; j < jobs.size(); ++j) {
        if (jobs[j].qos.factor > jobs[worst].qos.factor ||
            (jobs[j].qos.factor == jobs[worst].qos.factor &&
             jobs[j].stream > jobs[worst].stream)) {
          worst = j;
        }
      }
      shed_streams.push_back(jobs[worst].stream);
      jobs.erase(jobs.begin() + static_cast<std::ptrdiff_t>(worst));
    }
    std::sort(shed_streams.begin(), shed_streams.end());
  }

  // Dispatch in stream order (the arrival order): deterministic, serial.
  for (std::size_t r = 0; r < loads_.size(); ++r) {
    loads_[r].capacity = capacity_[r];
    loads_[r].assigned = 0;
    loads_[r].est_power_w = 0.0;
  }
  policy_->begin_interval(b);
  std::vector<std::size_t> placed_rack(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const std::size_t rack = policy_->select_rack(jobs[j], loads_);
    TPCOOL_REQUIRE(rack < loads_.size() && !loads_[rack].full(),
                   "placement policy chose an invalid rack");
    placed_rack[j] = rack;
    ++loads_[rack].assigned;
    loads_[rack].est_power_w += jobs[j].est_power_w;
  }

  // Phase 1, parallel over all jobs of all racks: schedule, then scan the
  // rack's supply candidates for the highest feasible temperature.  The
  // fan-out is joined here — observers never run concurrently with it.
  // Infeasibility does not throw: the server pins to the coldest
  // candidate and is flagged.
  const std::vector<ScanOutcome> scans = core::parallel_map<ScanOutcome>(
      jobs.size(), kFleetGrain,
      [&](std::size_t chunk) {
        const RackSpec& spec = config_.racks[placed_rack[chunk]];
        return core::PipelinePool::global().checkout(
            spec.approach, spec.cell_size_m, core::SolveCache::global());
      },
      [&](core::PipelinePool::Lease& pipeline, std::size_t j) {
        const RackSpec& spec = config_.racks[placed_rack[j]];
        core::ServerModel& server = pipeline->server();
        ScanOutcome scan;
        scan.decision =
            pipeline->scheduler().schedule(*jobs[j].bench, jobs[j].qos);
        for (const double t_w : spec.supply_candidates_c) {
          server.set_operating_point(
              {.water_flow_kg_h = design_flow_kg_h_[placed_rack[j]],
               .water_inlet_c = t_w});
          const core::SimulationResult sim = server.simulate(
              *jobs[j].bench, scan.decision.point.config, scan.decision.cores,
              scan.decision.idle_state);
          scan.max_supply_temp_c = t_w;
          scan.demand_power_w = sim.total_power_w;
          if (sim.tcase_c <= spec.tcase_limit_c) return scan;
        }
        scan.infeasible = true;  // runs pinned at the coldest candidate
        return scan;
      });

  // The controller's actuation for this interval: the biases its state
  // held after the previous interval (interval 0 runs unbiased).  Queried
  // once, before the solve, and stamped into the interval below.
  std::vector<double> bias(config_.racks.size(), 0.0);
  if (controller_ != nullptr) {
    for (std::size_t r = 0; r < config_.racks.size(); ++r) {
      bias[r] = controller_->applied_bias_c(r);
    }
  }

  // Shared loop per rack: setpoint = min over its servers' maxima, then
  // the controller bias (clamped to [coldest candidate, default max]) —
  // a zero bias takes the exact unbiased path, so zero-gain control is
  // bit-identical to no control.  The chiller is the event timeline's
  // current one, not the spec's.
  std::vector<cooling::RackCoolingState> rack_cooling(config_.racks.size());
  for (std::size_t r = 0; r < config_.racks.size(); ++r) {
    std::vector<cooling::ServerDemand> demands;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      if (placed_rack[j] != r) continue;
      demands.push_back({scans[j].demand_power_w, scans[j].max_supply_temp_c,
                         design_flow_kg_h_[r]});
    }
    if (!demands.empty()) {
      double setpoint = cooling::kDefaultMaxSetpointC;
      for (const cooling::ServerDemand& demand : demands) {
        setpoint = std::min(setpoint, demand.max_supply_temp_c);
      }
      if (bias[r] != 0.0) {
        const double coldest =
            *std::min_element(config_.racks[r].supply_candidates_c.begin(),
                              config_.racks[r].supply_candidates_c.end());
        setpoint = std::min(cooling::kDefaultMaxSetpointC,
                            std::max(coldest, setpoint + bias[r]));
      }
      rack_cooling[r] =
          cooling::solve_rack_cooling_at(demands, chiller_[r], setpoint);
    }
  }

  // Phase 2, parallel again: every server at its rack's shared setpoint.
  const std::vector<core::SimulationResult> at_setpoint =
      core::parallel_map<core::SimulationResult>(
          jobs.size(), kFleetGrain,
          [&](std::size_t chunk) {
            const RackSpec& spec = config_.racks[placed_rack[chunk]];
            return core::PipelinePool::global().checkout(
                spec.approach, spec.cell_size_m, core::SolveCache::global());
          },
          [&](core::PipelinePool::Lease& pipeline, std::size_t j) {
            const std::size_t r = placed_rack[j];
            pipeline->server().set_operating_point(
                {.water_flow_kg_h = design_flow_kg_h_[r],
                 .water_inlet_c = rack_cooling[r].supply_temp_c});
            return pipeline->server().simulate(
                *jobs[j].bench, scans[j].decision.point.config,
                scans[j].decision.cores, scans[j].decision.idle_state);
          });

  // Assemble the interval.  This is the only FleetInterval the engine ever
  // holds (kMaxHeldIntervals); it dies when the last observer returns.
  peak_held_intervals_ = std::max<std::size_t>(peak_held_intervals_, 1);
  FleetInterval interval;
  interval.interval = b;
  interval.start_s = start_s;
  interval.duration_s = duration_s;
  interval.racks.resize(config_.racks.size());
  for (std::size_t r = 0; r < config_.racks.size(); ++r) {
    interval.racks[r].cooling = rack_cooling[r];
  }
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const std::size_t r = placed_rack[j];
    JobOutcome outcome;
    outcome.stream = jobs[j].stream;
    outcome.benchmark = jobs[j].bench->name;
    outcome.qos_factor = jobs[j].qos.factor;
    outcome.rack = r;
    outcome.decision = scans[j].decision;
    outcome.package_power_w = at_setpoint[j].total_power_w;
    outcome.max_supply_temp_c = scans[j].max_supply_temp_c;
    outcome.die_max_c = at_setpoint[j].die.max_c;
    outcome.tcase_c = at_setpoint[j].tcase_c;
    outcome.tcase_limit_exceeded =
        scans[j].infeasible ||
        at_setpoint[j].tcase_c > config_.racks[r].tcase_limit_c;
    if (outcome.tcase_limit_exceeded) ++interval.qos_violations;

    RackInterval& rack = interval.racks[r];
    ++rack.jobs;
    rack.it_power_w += outcome.package_power_w;
    rack.headroom_c =
        rack.jobs == 1
            ? config_.racks[r].tcase_limit_c - outcome.tcase_c
            : std::min(rack.headroom_c,
                       config_.racks[r].tcase_limit_c - outcome.tcase_c);
    interval.jobs.push_back(std::move(outcome));
  }
  for (std::size_t r = 0; r < config_.racks.size(); ++r) {
    interval.it_power_w += interval.racks[r].it_power_w;
    interval.chiller_power_w += interval.racks[r].cooling.chiller_electrical_w;
    loads_[r].headroom_c = interval.racks[r].headroom_c;
  }

  // Shed jobs are QoS violations too: the tier got no service at all.
  interval.shed_streams = std::move(shed_streams);
  interval.qos_violations += interval.shed_streams.size();

  if (controller_ != nullptr) {
    interval.control.active = true;
    interval.control.target = controller_->config().target;
    interval.control.error = controller_->last_error();
    interval.control.rack_bias_c = std::move(bias);
  }

  cooling::FacilityPower facility;
  facility.it_w = interval.it_power_w;
  facility.chiller_w = interval.chiller_power_w;
  facility.distribution_w = cooling::distribution_loss_w(
      interval.it_power_w, config_.distribution_loss_fraction);
  // An all-idle interval (every active stream shed, e.g. total rack loss)
  // has no IT power; define its PUE as 1 instead of dividing by zero.
  interval.pue = interval.it_power_w > 0.0 ? cooling::pue(facility) : 1.0;

  // Accumulate the run totals in interval order — the same arithmetic, in
  // the same order, as the batch accumulation always used.
  summary_.total_it_energy_j += interval.it_power_w * duration_s;
  summary_.total_chiller_energy_j += interval.chiller_power_w * duration_s;
  summary_.total_facility_energy_j += facility.total_w() * duration_s;
  summary_.qos_violations += interval.qos_violations;
  summary_.shed_jobs += interval.shed_streams.size();

  const core::SolveCache::Stats cache_after =
      core::SolveCache::global()->stats();
  const IntervalCounters counters{cache_after.misses - cache_before.misses,
                                  cache_after.hits - cache_before.hits};
  summary_.counters.solves += counters.solves;
  summary_.counters.hits += counters.hits;
  span.arg("solves", static_cast<double>(counters.solves));
  span.arg("hits", static_cast<double>(counters.hits));

  // Dispatch on the caller's thread, in registration order, strictly after
  // the interval's parallel fan-out joined.
  try {
    for (FleetObserver* observer : observers_) {
      observer->on_interval(interval, counters);
    }
  } catch (...) {
    finished_ = true;  // observer contract: a throw spends the engine
    failed_ = true;
    throw;
  }

  ++next_interval_;
  return true;
}

void StreamingFleetEngine::run() {
  while (advance()) {
  }
}

// --------------------------------------------------------- the aggregator --

void FleetResultAggregator::on_interval(const FleetInterval& interval,
                                        const IntervalCounters& counters) {
  (void)counters;
  result_.intervals.push_back(interval);
}

void FleetResultAggregator::on_run_end(const FleetRunSummary& summary) {
  result_.duration_s = summary.duration_s;
  result_.total_it_energy_j = summary.total_it_energy_j;
  result_.total_chiller_energy_j = summary.total_chiller_energy_j;
  result_.total_facility_energy_j = summary.total_facility_energy_j;
  result_.avg_pue = summary.avg_pue;
  result_.qos_violations = summary.qos_violations;
  result_.shed_jobs = summary.shed_jobs;
}

// --------------------------------------------------------- the JSONL sink --

namespace {

/// 17 significant digits round-trip any finite IEEE double exactly through
/// a correctly-rounded strtod, so replays reconstruct the original bits.
void json_number(std::ostream& os, double value) {
  os << std::setprecision(17) << value;
}

}  // namespace

JsonlFleetSink::JsonlFleetSink(std::ostream& os) : os_(&os) {}

JsonlFleetSink::JsonlFleetSink(const std::string& path)
    : owned_(path), os_(&owned_) {
  TPCOOL_REQUIRE(static_cast<bool>(owned_),
                 "cannot open JSONL sink file '" + path + "'");
}

void JsonlFleetSink::on_run_begin(const FleetConfig& config,
                                  std::size_t stream_count,
                                  double total_duration_s) {
  std::ostream& os = *os_;
  os << "{\"type\":\"header\",\"schema\":\"tpcool-fleet-stream-v2\""
     << ",\"racks\":" << config.racks.size()
     << ",\"streams\":" << stream_count << ",\"placement\":\""
     << config.placement << "\",\"duration_s\":";
  json_number(os, total_duration_s);
  os << "}\n";
}

void JsonlFleetSink::on_interval(const FleetInterval& interval,
                                 const IntervalCounters& counters) {
  std::ostream& os = *os_;
  os << "{\"type\":\"interval\",\"interval\":" << interval.interval
     << ",\"start_s\":";
  json_number(os, interval.start_s);
  os << ",\"duration_s\":";
  json_number(os, interval.duration_s);
  os << ",\"it_power_w\":";
  json_number(os, interval.it_power_w);
  os << ",\"chiller_power_w\":";
  json_number(os, interval.chiller_power_w);
  os << ",\"pue\":";
  json_number(os, interval.pue);
  os << ",\"qos_violations\":" << interval.qos_violations
     << ",\"solves\":" << counters.solves << ",\"hits\":" << counters.hits
     << ",\"shed\":[";
  for (std::size_t s = 0; s < interval.shed_streams.size(); ++s) {
    os << (s ? "," : "") << interval.shed_streams[s];
  }
  os << "]";
  if (interval.control.active) {
    os << ",\"control\":{\"target\":";
    json_number(os, interval.control.target);
    os << ",\"error\":";
    json_number(os, interval.control.error);
    os << ",\"bias_c\":[";
    for (std::size_t r = 0; r < interval.control.rack_bias_c.size(); ++r) {
      if (r) os << ",";
      json_number(os, interval.control.rack_bias_c[r]);
    }
    os << "]}";
  }
  os << ",\"jobs\":[";
  for (std::size_t j = 0; j < interval.jobs.size(); ++j) {
    const JobOutcome& job = interval.jobs[j];
    os << (j ? "," : "") << "{\"stream\":" << job.stream << ",\"rack\":"
       << job.rack << ",\"benchmark\":\"" << job.benchmark
       << "\",\"qos_factor\":";
    json_number(os, job.qos_factor);
    os << ",\"package_power_w\":";
    json_number(os, job.package_power_w);
    os << ",\"max_supply_temp_c\":";
    json_number(os, job.max_supply_temp_c);
    os << ",\"die_max_c\":";
    json_number(os, job.die_max_c);
    os << ",\"tcase_c\":";
    json_number(os, job.tcase_c);
    os << ",\"limit\":" << (job.tcase_limit_exceeded ? "true" : "false")
       << "}";
  }
  os << "],\"racks\":[";
  for (std::size_t r = 0; r < interval.racks.size(); ++r) {
    const RackInterval& rack = interval.racks[r];
    os << (r ? "," : "") << "{\"jobs\":" << rack.jobs << ",\"it_power_w\":";
    json_number(os, rack.it_power_w);
    os << ",\"headroom_c\":";
    json_number(os, rack.headroom_c);
    os << ",\"supply_temp_c\":";
    json_number(os, rack.cooling.supply_temp_c);
    os << ",\"return_temp_c\":";
    json_number(os, rack.cooling.return_temp_c);
    os << ",\"chiller_electrical_w\":";
    json_number(os, rack.cooling.chiller_electrical_w);
    os << "}";
  }
  os << "]}\n";
}

void JsonlFleetSink::on_run_end(const FleetRunSummary& summary) {
  std::ostream& os = *os_;
  os << "{\"type\":\"summary\",\"intervals\":" << summary.intervals
     << ",\"duration_s\":";
  json_number(os, summary.duration_s);
  os << ",\"total_it_energy_j\":";
  json_number(os, summary.total_it_energy_j);
  os << ",\"total_chiller_energy_j\":";
  json_number(os, summary.total_chiller_energy_j);
  os << ",\"total_facility_energy_j\":";
  json_number(os, summary.total_facility_energy_j);
  os << ",\"avg_pue\":";
  json_number(os, summary.avg_pue);
  os << ",\"qos_violations\":" << summary.qos_violations
     << ",\"shed_jobs\":" << summary.shed_jobs
     << ",\"solves\":" << summary.counters.solves
     << ",\"hits\":" << summary.counters.hits << "}\n";
  os.flush();
}

// -------------------------------------------------------------- the replay --

namespace {

/// Minimal extraction helpers for the sink's own single-line records (the
/// writer never emits whitespace, escapes, or nested arrays inside the
/// jobs/racks objects, so positional scanning is exact).

std::string_view find_value(std::string_view text, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = text.find(needle);
  TPCOOL_REQUIRE(pos != std::string_view::npos,
                 "fleet JSONL replay: missing key '" + key + "'");
  return text.substr(pos + needle.size());
}

double get_number(std::string_view text, const std::string& key) {
  const std::string_view tail = find_value(text, key);
  return std::strtod(std::string(tail.substr(0, 32)).c_str(), nullptr);
}

std::size_t get_count(std::string_view text, const std::string& key) {
  return static_cast<std::size_t>(get_number(text, key));
}

bool get_bool(std::string_view text, const std::string& key) {
  return find_value(text, key).substr(0, 4) == "true";
}

std::string get_string(std::string_view text, const std::string& key) {
  std::string_view tail = find_value(text, key);
  TPCOOL_REQUIRE(!tail.empty() && tail.front() == '"',
                 "fleet JSONL replay: key '" + key + "' is not a string");
  tail.remove_prefix(1);
  const std::size_t end = tail.find('"');
  TPCOOL_REQUIRE(end != std::string_view::npos,
                 "fleet JSONL replay: unterminated string for '" + key + "'");
  return std::string(tail.substr(0, end));
}

/// The `[...]` payload of an array-valued key.  The sink's arrays contain
/// flat objects only, so the first ']' closes the array.
std::string_view get_array(std::string_view text, const std::string& key) {
  std::string_view tail = find_value(text, key);
  TPCOOL_REQUIRE(!tail.empty() && tail.front() == '[',
                 "fleet JSONL replay: key '" + key + "' is not an array");
  tail.remove_prefix(1);
  const std::size_t end = tail.find(']');
  TPCOOL_REQUIRE(end != std::string_view::npos,
                 "fleet JSONL replay: unterminated array for '" + key + "'");
  return tail.substr(0, end);
}

/// Whether the record carries `key` at all (optional v2 fields).
bool has_key(std::string_view text, const std::string& key) {
  return text.find("\"" + key + "\":") != std::string_view::npos;
}

/// A flat `n0,n1,...` array payload as numbers (empty payload → empty).
std::vector<double> parse_number_array(std::string_view payload) {
  std::vector<double> values;
  std::size_t pos = 0;
  while (pos < payload.size()) {
    std::size_t end = payload.find(',', pos);
    if (end == std::string_view::npos) end = payload.size();
    values.push_back(std::strtod(
        std::string(payload.substr(pos, end - pos)).c_str(), nullptr));
    pos = end + 1;
  }
  return values;
}

/// Split a flat `{...},{...}` array payload into its objects.
std::vector<std::string_view> split_objects(std::string_view array) {
  std::vector<std::string_view> objects;
  std::size_t pos = 0;
  while ((pos = array.find('{', pos)) != std::string_view::npos) {
    const std::size_t end = array.find('}', pos);
    TPCOOL_REQUIRE(end != std::string_view::npos,
                   "fleet JSONL replay: unterminated object");
    objects.push_back(array.substr(pos, end - pos + 1));
    pos = end + 1;
  }
  return objects;
}

}  // namespace

FleetResult replay_fleet_jsonl(std::istream& is) {
  FleetResult result;
  bool saw_header = false;
  bool saw_summary = false;
  bool v2 = false;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const std::string_view text(line);
    const std::string type = get_string(text, "type");
    if (type == "header") {
      const std::string schema = get_string(text, "schema");
      v2 = schema == "tpcool-fleet-stream-v2";
      TPCOOL_REQUIRE(v2 || schema == "tpcool-fleet-stream-v1",
                     "fleet JSONL replay: unexpected schema");
      saw_header = true;
    } else if (type == "interval") {
      TPCOOL_REQUIRE(saw_header,
                     "fleet JSONL replay: interval before header");
      FleetInterval interval;
      interval.interval = get_count(text, "interval");
      interval.start_s = get_number(text, "start_s");
      interval.duration_s = get_number(text, "duration_s");
      interval.it_power_w = get_number(text, "it_power_w");
      interval.chiller_power_w = get_number(text, "chiller_power_w");
      interval.pue = get_number(text, "pue");
      interval.qos_violations = get_count(text, "qos_violations");
      if (v2) {
        for (const double stream : parse_number_array(
                 get_array(text, "shed"))) {
          interval.shed_streams.push_back(static_cast<std::size_t>(stream));
        }
        if (has_key(text, "control")) {
          interval.control.active = true;
          interval.control.target = get_number(text, "target");
          interval.control.error = get_number(text, "error");
          interval.control.rack_bias_c =
              parse_number_array(get_array(text, "bias_c"));
        }
      }
      for (const std::string_view object :
           split_objects(get_array(text, "jobs"))) {
        JobOutcome job;
        job.stream = get_count(object, "stream");
        job.rack = get_count(object, "rack");
        job.benchmark = get_string(object, "benchmark");
        job.qos_factor = get_number(object, "qos_factor");
        job.package_power_w = get_number(object, "package_power_w");
        job.max_supply_temp_c = get_number(object, "max_supply_temp_c");
        job.die_max_c = get_number(object, "die_max_c");
        job.tcase_c = get_number(object, "tcase_c");
        job.tcase_limit_exceeded = get_bool(object, "limit");
        interval.jobs.push_back(std::move(job));
      }
      for (const std::string_view object :
           split_objects(get_array(text, "racks"))) {
        RackInterval rack;
        rack.jobs = get_count(object, "jobs");
        rack.it_power_w = get_number(object, "it_power_w");
        rack.headroom_c = get_number(object, "headroom_c");
        rack.cooling.supply_temp_c = get_number(object, "supply_temp_c");
        rack.cooling.return_temp_c = get_number(object, "return_temp_c");
        rack.cooling.chiller_electrical_w =
            get_number(object, "chiller_electrical_w");
        interval.racks.push_back(rack);
      }
      result.intervals.push_back(std::move(interval));
    } else if (type == "summary") {
      result.duration_s = get_number(text, "duration_s");
      result.total_it_energy_j = get_number(text, "total_it_energy_j");
      result.total_chiller_energy_j =
          get_number(text, "total_chiller_energy_j");
      result.total_facility_energy_j =
          get_number(text, "total_facility_energy_j");
      result.avg_pue = get_number(text, "avg_pue");
      result.qos_violations = get_count(text, "qos_violations");
      result.shed_jobs = v2 ? get_count(text, "shed_jobs") : 0;
      TPCOOL_REQUIRE(get_count(text, "intervals") == result.intervals.size(),
                     "fleet JSONL replay: interval count mismatch");
      saw_summary = true;
    } else {
      TPCOOL_REQUIRE(false, "fleet JSONL replay: unknown record type '" +
                                type + "'");
    }
  }
  TPCOOL_REQUIRE(saw_header && saw_summary,
                 "fleet JSONL replay: stream is missing header or summary");
  return result;
}

FleetResult replay_fleet_jsonl(const std::string& path) {
  std::ifstream is(path);
  TPCOOL_REQUIRE(static_cast<bool>(is),
                 "cannot open fleet JSONL file '" + path + "'");
  return replay_fleet_jsonl(is);
}

// ------------------------------------------------------------- the reducer --

FleetRollupReducer::FleetRollupReducer(double window_s)
    : window_s_(window_s) {
  TPCOOL_REQUIRE(window_s_ > 0.0, "rollup window must be positive");
}

void FleetRollupReducer::flush() {
  if (!open_) return;
  if (current_.duration_s > 0.0) {
    current_.it_power_w_mean = weighted_it_ / current_.duration_s;
    current_.chiller_power_w_mean = weighted_chiller_ / current_.duration_s;
    current_.pue_mean = weighted_pue_ / current_.duration_s;
  }
  rollups_.push_back(current_);
  open_ = false;
  weighted_it_ = weighted_chiller_ = weighted_pue_ = 0.0;
}

void FleetRollupReducer::on_interval(const FleetInterval& interval,
                                     const IntervalCounters& counters) {
  // Intervals belong to the window containing their start time; windows
  // are aligned to multiples of window_s.
  const double window_start =
      std::floor(interval.start_s / window_s_) * window_s_;
  if (open_ && window_start > current_.start_s) flush();
  if (!open_) {
    open_ = true;
    current_ = Rollup{};
    current_.first_interval = interval.interval;
    current_.start_s = window_start;
    current_.it_power_w_min = interval.it_power_w;
    current_.it_power_w_max = interval.it_power_w;
    current_.chiller_power_w_min = interval.chiller_power_w;
    current_.chiller_power_w_max = interval.chiller_power_w;
    current_.pue_min = interval.pue;
    current_.pue_max = interval.pue;
  }
  ++current_.intervals;
  current_.duration_s += interval.duration_s;
  current_.it_power_w_min =
      std::min(current_.it_power_w_min, interval.it_power_w);
  current_.it_power_w_max =
      std::max(current_.it_power_w_max, interval.it_power_w);
  current_.chiller_power_w_min =
      std::min(current_.chiller_power_w_min, interval.chiller_power_w);
  current_.chiller_power_w_max =
      std::max(current_.chiller_power_w_max, interval.chiller_power_w);
  current_.pue_min = std::min(current_.pue_min, interval.pue);
  current_.pue_max = std::max(current_.pue_max, interval.pue);
  current_.qos_violations += interval.qos_violations;
  current_.solves += counters.solves;
  weighted_it_ += interval.it_power_w * interval.duration_s;
  weighted_chiller_ += interval.chiller_power_w * interval.duration_s;
  weighted_pue_ += interval.pue * interval.duration_s;
}

void FleetRollupReducer::on_run_end(const FleetRunSummary& summary) {
  (void)summary;
  flush();
}

}  // namespace tpcool::datacenter
