#include "tpcool/datacenter/placement.hpp"

#include <algorithm>
#include <cctype>
#include <string>
#include <string_view>
#include <utility>

#include "tpcool/datacenter/fleet.hpp"
#include "tpcool/util/error.hpp"

namespace tpcool::datacenter {

void PlacementPolicy::require_open(bool found) {
  TPCOOL_REQUIRE(found, "placement needs at least one non-full rack");
}

std::size_t RoundRobinPlacement::select_rack(
    const JobRequest& job, const std::vector<RackLoad>& racks) {
  (void)job;
  TPCOOL_REQUIRE(!racks.empty(), "placement needs at least one rack");
  for (std::size_t probe = 0; probe < racks.size(); ++probe) {
    const std::size_t candidate = (cursor_ + probe) % racks.size();
    if (!racks[candidate].full()) {
      cursor_ = candidate + 1;
      return candidate;
    }
  }
  require_open(false);
  return 0;  // unreachable
}

std::size_t LeastPowerPlacement::select_rack(
    const JobRequest& job, const std::vector<RackLoad>& racks) {
  (void)job;
  return argmin_open_rack(racks, [](const RackLoad& rack) {
    return rack.est_power_w;
  });
}

std::size_t ThermalHeadroomPlacement::select_rack(
    const JobRequest& job, const std::vector<RackLoad>& racks) {
  (void)job;
  // Most headroom first; break headroom ties by emptiest rack so the
  // historyless first interval degrades to least-loaded, not rack 0; then
  // lowest index.  Truly lexicographic — a weighted sum like
  // -headroom * 1e6 + assigned flips the priority once two racks'
  // headrooms differ by less than assigned / 1e6.
  const RackLoad* best = nullptr;
  for (const RackLoad& rack : racks) {
    if (rack.full()) continue;
    if (best == nullptr || rack.headroom_c > best->headroom_c ||
        (rack.headroom_c == best->headroom_c &&
         rack.assigned < best->assigned)) {
      best = &rack;
    }
  }
  require_open(best != nullptr);
  return best->rack;
}

WindowedPlacement::WindowedPlacement(std::size_t window,
                                     std::string registry_name)
    : window_(window), name_(std::move(registry_name)) {
  TPCOOL_REQUIRE(window_ >= 1, "windowed placement needs a window >= 1");
}

void WindowedPlacement::begin_run(const PlacementTimeline& timeline) {
  interval_ = 0;
  projected_.clear();
  stream_power_.clear();
  if (window_ <= 1 || timeline.streams == nullptr ||
      timeline.boundaries == nullptr) {
    return;  // greedy fallback needs no precomputation
  }
  const std::vector<workload::WorkloadTrace>& streams = *timeline.streams;
  const std::vector<double>& boundaries = *timeline.boundaries;
  const std::size_t intervals =
      boundaries.size() < 2 ? 0 : boundaries.size() - 1;
  // The same estimate the engine uses at dispatch time, tabulated for the
  // whole (already known) timeline: stream s contributes
  // stream_power_[s][i] to whichever rack it lands on in interval i.
  stream_power_.assign(streams.size(), std::vector<double>(intervals, 0.0));
  for (std::size_t s = 0; s < streams.size(); ++s) {
    for (std::size_t i = 0; i < intervals; ++i) {
      if (boundaries[i] >= streams[s].total_duration_s()) continue;
      const workload::TracePhase& phase = streams[s].phase_at(boundaries[i]);
      stream_power_[s][i] = job_power_estimate(
          workload::find_benchmark(phase.benchmark), phase.qos);
    }
  }
}

void WindowedPlacement::begin_interval(std::size_t interval) {
  interval_ = interval;
  for (std::vector<double>& rack : projected_) {
    std::fill(rack.begin(), rack.end(), 0.0);
  }
}

std::size_t WindowedPlacement::select_rack(const JobRequest& job,
                                           const std::vector<RackLoad>& racks) {
  // W=1 degenerates to the greedy least-power dispatcher, cost for cost —
  // the bitwise-identity anchor the cross-check test pins.
  if (window_ <= 1) {
    return argmin_open_rack(
        racks, [](const RackLoad& rack) { return rack.est_power_w; });
  }

  if (projected_.size() != racks.size()) {
    projected_.assign(racks.size(), std::vector<double>(window_, 0.0));
  }

  // Future power this job itself brings to whichever rack it lands on.
  std::vector<double> job_future(window_, 0.0);
  job_future[0] = job.est_power_w;
  if (job.stream < stream_power_.size()) {
    const std::vector<double>& power = stream_power_[job.stream];
    for (std::size_t w = 1; w < window_; ++w) {
      if (interval_ + w < power.size()) job_future[w] = power[interval_ + w];
    }
  }

  const std::size_t chosen = argmin_open_rack(racks, [&](const RackLoad&
                                                             rack) {
    // Discounted projected load over the window if the job lands here,
    // scaled by a thermal-deficit penalty: a rack that ended the previous
    // interval over its TCASE limit multiplies its cost by
    // (1 + deficit °C), steering heat away until the deficit clears.
    double load = rack.est_power_w + job_future[0];
    double discount = 1.0;
    for (std::size_t w = 1; w < window_; ++w) {
      discount *= kDiscount;
      load += discount * (projected_[rack.rack][w] + job_future[w]);
    }
    const double deficit = std::max(0.0, -rack.headroom_c);
    return load * (1.0 + kPenaltyPerDegC * deficit);
  });

  // Commit this placement's future load so the rest of the interval's
  // dispatch sequence sees it (joint within-interval lookahead).
  for (std::size_t w = 1; w < window_; ++w) {
    projected_[chosen][w] += job_future[w];
  }
  return chosen;
}

const std::vector<std::string>& placement_policy_names() {
  static const std::vector<std::string> names{
      "round-robin", "least-power", "thermal-headroom", "windowed"};
  return names;
}

std::unique_ptr<PlacementPolicy> make_placement_policy(
    const std::string& name) {
  if (name == "round-robin") return std::make_unique<RoundRobinPlacement>();
  if (name == "least-power") return std::make_unique<LeastPowerPlacement>();
  if (name == "thermal-headroom") {
    return std::make_unique<ThermalHeadroomPlacement>();
  }
  if (name == "windowed") {
    return std::make_unique<WindowedPlacement>(
        WindowedPlacement::kDefaultWindow, name);
  }
  if (constexpr std::string_view kPrefix = "windowed:";
      name.size() > kPrefix.size() && name.compare(0, kPrefix.size(),
                                                   kPrefix) == 0) {
    const std::string digits = name.substr(kPrefix.size());
    const bool numeric =
        !digits.empty() &&
        std::all_of(digits.begin(), digits.end(), [](unsigned char c) {
          return std::isdigit(c) != 0;
        });
    TPCOOL_REQUIRE(numeric && digits.size() <= 6,
                   "malformed windowed placement '" + name +
                       "' (want windowed:N, N >= 1)");
    const std::size_t window = static_cast<std::size_t>(std::stoul(digits));
    TPCOOL_REQUIRE(window >= 1, "windowed placement needs a window >= 1");
    return std::make_unique<WindowedPlacement>(window, name);
  }
  TPCOOL_REQUIRE(false, "unknown placement policy '" + name +
                            "' (known: round-robin, least-power, "
                            "thermal-headroom, windowed[:N])");
  return nullptr;  // unreachable
}

double job_power_estimate(const workload::BenchmarkProfile& bench,
                          const workload::QoSRequirement& qos) {
  TPCOOL_REQUIRE(qos.factor >= 1.0, "QoS factor below 1x");
  // Full-load switching weight, discounted by the QoS slack the scheduler
  // will trade for lower power.  Units are arbitrary: policies only
  // compare sums of these across racks.
  return bench.c_eff_w_per_ghz_v2 * bench.smt_yield / qos.factor;
}

}  // namespace tpcool::datacenter
