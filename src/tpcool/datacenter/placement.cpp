#include "tpcool/datacenter/placement.hpp"

#include "tpcool/util/error.hpp"

namespace tpcool::datacenter {

void PlacementPolicy::require_open(bool found) {
  TPCOOL_REQUIRE(found, "placement needs at least one non-full rack");
}

std::size_t RoundRobinPlacement::select_rack(
    const JobRequest& job, const std::vector<RackLoad>& racks) {
  (void)job;
  TPCOOL_REQUIRE(!racks.empty(), "placement needs at least one rack");
  for (std::size_t probe = 0; probe < racks.size(); ++probe) {
    const std::size_t candidate = (cursor_ + probe) % racks.size();
    if (!racks[candidate].full()) {
      cursor_ = candidate + 1;
      return candidate;
    }
  }
  require_open(false);
  return 0;  // unreachable
}

std::size_t LeastPowerPlacement::select_rack(
    const JobRequest& job, const std::vector<RackLoad>& racks) {
  (void)job;
  return argmin_open_rack(racks, [](const RackLoad& rack) {
    return rack.est_power_w;
  });
}

std::size_t ThermalHeadroomPlacement::select_rack(
    const JobRequest& job, const std::vector<RackLoad>& racks) {
  (void)job;
  // Most headroom first; break headroom ties by emptiest rack so the
  // historyless first interval degrades to least-loaded, not rack 0; then
  // lowest index.  Truly lexicographic — a weighted sum like
  // -headroom * 1e6 + assigned flips the priority once two racks'
  // headrooms differ by less than assigned / 1e6.
  const RackLoad* best = nullptr;
  for (const RackLoad& rack : racks) {
    if (rack.full()) continue;
    if (best == nullptr || rack.headroom_c > best->headroom_c ||
        (rack.headroom_c == best->headroom_c &&
         rack.assigned < best->assigned)) {
      best = &rack;
    }
  }
  require_open(best != nullptr);
  return best->rack;
}

const std::vector<std::string>& placement_policy_names() {
  static const std::vector<std::string> names{
      "round-robin", "least-power", "thermal-headroom"};
  return names;
}

std::unique_ptr<PlacementPolicy> make_placement_policy(
    const std::string& name) {
  if (name == "round-robin") return std::make_unique<RoundRobinPlacement>();
  if (name == "least-power") return std::make_unique<LeastPowerPlacement>();
  if (name == "thermal-headroom") {
    return std::make_unique<ThermalHeadroomPlacement>();
  }
  TPCOOL_REQUIRE(false, "unknown placement policy '" + name +
                            "' (known: round-robin, least-power, "
                            "thermal-headroom)");
  return nullptr;  // unreachable
}

double job_power_estimate(const workload::BenchmarkProfile& bench,
                          const workload::QoSRequirement& qos) {
  TPCOOL_REQUIRE(qos.factor >= 1.0, "QoS factor below 1x");
  // Full-load switching weight, discounted by the QoS slack the scheduler
  // will trade for lower power.  Units are arbitrary: policies only
  // compare sums of these across racks.
  return bench.c_eff_w_per_ghz_v2 * bench.smt_yield / qos.factor;
}

}  // namespace tpcool::datacenter
