#pragma once
/// \file streaming.hpp
/// \brief Incremental fleet simulation with pluggable per-interval metric
///        observers — the streaming counterpart of `FleetModel::run`,
///        patterned on the observer/reduction idiom of large long-running
///        parallel codes (SpECTRE's `ParallelAlgorithms/` + `IO/`).
///
/// `StreamingFleetEngine` computes the fleet timeline one interval at a
/// time and hands each finished `FleetInterval` to a registry of
/// `FleetObserver`s instead of accumulating the whole result in memory, so
/// an unbounded-length trace runs at bounded memory: the engine never
/// holds more than `kMaxHeldIntervals` intervals, independent of trace
/// length (`peak_held_intervals()` reports the observed peak; the
/// streaming bench and tests assert it).
///
/// Observer contract (the full specification lives in
/// docs/OBSERVABILITY.md):
///  - **Ordering** — observers see intervals strictly in timeline order
///    (interval 0, 1, 2, …), each exactly once, with `on_run_begin` first
///    and `on_run_end` last.  Within one interval, observers are notified
///    in registration order.
///  - **Threading** — all callbacks run on the thread that calls
///    `advance()`/`run()`, never concurrently.  The engine's parallelism
///    (`core::parallel_map` fan-out over an interval's jobs) is fully
///    joined before dispatch, so an observer may freely read shared state.
///  - **Errors** — an exception thrown by an observer propagates out of
///    `advance()`/`run()` and aborts the run; the engine is then spent
///    (later intervals are never computed or dispatched).  Observers that
///    must survive sink failures (e.g. disk full) should catch their own.
///
/// `FleetModel::run` is rebuilt on top of this engine with the
/// `FleetResultAggregator` observer, so batch and streaming runs are one
/// code path and bitwise identical by construction (asserted at 1/2/4
/// threads in tests/streaming_test.cpp anyway, to pin the contract).

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "tpcool/datacenter/fleet.hpp"
#include "tpcool/datacenter/placement.hpp"

namespace tpcool::datacenter {

class FleetController;  // control.hpp

/// Process-global solve-cache activity attributed to one interval (or to
/// the whole run, in `FleetRunSummary`): misses = coupled solves actually
/// executed, hits = solves served from the memo.  Deltas of
/// `core::SolveCache::global()` stats around the interval's computation —
/// exact and deterministic for any thread count *when the engine is the
/// only cache user in the process* (the normal case; concurrent engines
/// would attribute each other's solves to whichever interval was active).
struct IntervalCounters {
  std::size_t solves = 0;
  std::size_t hits = 0;
};

/// End-of-run rollup: the scalar fields of `FleetResult` without the
/// per-interval vector.
struct FleetRunSummary {
  std::size_t intervals = 0;
  double duration_s = 0.0;
  double total_it_energy_j = 0.0;
  double total_chiller_energy_j = 0.0;
  double total_facility_energy_j = 0.0;  ///< IT + chiller + distribution.
  double avg_pue = 1.0;                  ///< Energy-weighted fleet PUE.
  std::size_t qos_violations = 0;        ///< Incl. shed jobs.
  std::size_t shed_jobs = 0;             ///< Jobs shed by admission control.
  IntervalCounters counters;             ///< Whole-run solve/hit totals.
};

/// Per-interval metrics consumer.  See the file comment (and
/// docs/OBSERVABILITY.md) for the ordering/threading/error contract.
class FleetObserver {
 public:
  virtual ~FleetObserver() = default;

  /// Before interval 0.  `total_duration_s` is the timeline end (the last
  /// phase boundary over all streams).
  virtual void on_run_begin(const FleetConfig& config,
                            std::size_t stream_count,
                            double total_duration_s) {
    (void)config;
    (void)stream_count;
    (void)total_duration_s;
  }

  /// One finished interval, in timeline order.  `interval` is owned by the
  /// engine and dies after the last observer returns — copy what you keep.
  virtual void on_interval(const FleetInterval& interval,
                           const IntervalCounters& counters) = 0;

  /// After the last interval.
  virtual void on_run_end(const FleetRunSummary& summary) { (void)summary; }
};

/// Incremental fleet engine: identical physics, placement, and arithmetic
/// to the batch `FleetModel::run` (which now delegates here), but results
/// stream to observers interval by interval.
class StreamingFleetEngine {
 public:
  /// The engine's interval-buffer bound: at most this many
  /// `FleetInterval`s are alive inside the engine at any moment,
  /// independent of trace length.  (The current implementation computes
  /// and dispatches one interval at a time.)
  static constexpr std::size_t kMaxHeldIntervals = 1;

  /// Validates like `FleetModel` and takes the streams up front (the
  /// timeline is their phase-boundary union).  Throws PreconditionError
  /// on an empty stream set or an over-capacity interval (the latter at
  /// the offending interval during `advance`).
  StreamingFleetEngine(FleetConfig config,
                       std::vector<workload::WorkloadTrace> streams);

  /// Register an observer (non-owning; must outlive the run).  Observers
  /// are notified in registration order.  Must be called before the first
  /// `advance()`.
  void add_observer(FleetObserver& observer);

  /// Close the loop with a fleet controller (control.hpp): registers it
  /// as an observer AND queries its per-rack supply biases when computing
  /// each interval (interval i's biases come from the state after
  /// interval i−1; interval 0 runs unbiased).  At most one controller per
  /// engine; must be called before the first `advance()`.  Non-owning.
  void set_controller(FleetController& controller);

  /// Compute and dispatch the next interval.  Returns true while an
  /// interval was emitted; the call after the last interval finalizes the
  /// summary, dispatches `on_run_end`, and returns false (as does every
  /// later call).
  bool advance();

  /// Drain the timeline: `while (advance()) {}`.
  void run();

  [[nodiscard]] bool finished() const noexcept { return finished_; }
  [[nodiscard]] std::size_t intervals_emitted() const noexcept {
    return next_interval_;
  }
  /// Peak number of `FleetInterval`s simultaneously alive in the engine so
  /// far — the bounded-memory claim, asserted ≤ `kMaxHeldIntervals` by the
  /// streaming bench and tests.
  [[nodiscard]] std::size_t peak_held_intervals() const noexcept {
    return peak_held_intervals_;
  }
  /// Valid once `finished()` and the run completed cleanly (throws
  /// PreconditionError on an engine spent by an observer exception).
  [[nodiscard]] const FleetRunSummary& summary() const;

 private:
  FleetConfig config_;
  std::vector<workload::WorkloadTrace> streams_;
  std::vector<double> boundaries_;
  std::unique_ptr<PlacementPolicy> policy_;
  std::vector<RackLoad> loads_;
  std::vector<double> design_flow_kg_h_;
  /// Runtime per-rack state the event timeline mutates (capacity drops on
  /// kRackLoss, chiller efficiency on kChillerDerate); initialized from
  /// the specs, restored by the matching restore events.
  std::vector<std::size_t> capacity_;
  std::vector<cooling::ChillerModel> chiller_;
  std::vector<FleetEvent> events_;  ///< Config events, stably time-sorted.
  std::size_t next_event_ = 0;
  FleetController* controller_ = nullptr;
  std::vector<FleetObserver*> observers_;
  FleetRunSummary summary_;
  std::size_t next_interval_ = 0;
  std::size_t peak_held_intervals_ = 0;
  bool begun_ = false;
  bool finished_ = false;
  bool failed_ = false;  ///< An observer threw; the summary is partial.
};

/// In-memory aggregator: rebuilds the batch `FleetResult` from the stream.
/// This is exactly what `FleetModel::run` uses, so aggregating a streaming
/// run is bitwise the batch result.
class FleetResultAggregator final : public FleetObserver {
 public:
  void on_interval(const FleetInterval& interval,
                   const IntervalCounters& counters) override;
  void on_run_end(const FleetRunSummary& summary) override;

  /// Valid after `on_run_end`.
  [[nodiscard]] const FleetResult& result() const { return result_; }
  /// Move the result out (the aggregator is then spent).
  [[nodiscard]] FleetResult take() { return std::move(result_); }

 private:
  FleetResult result_;
};

/// JSONL file sink: one self-contained JSON object per line — a header
/// record, one record per interval, and a summary record (schema
/// `tpcool-fleet-stream-v1`, documented in docs/OBSERVABILITY.md).
/// Doubles are printed with 17 significant digits, so a replay
/// (`replay_fleet_jsonl`) reconstructs every digest-covered field of the
/// batch `FleetResult` bit-exactly.
class JsonlFleetSink final : public FleetObserver {
 public:
  /// Write to a caller-owned stream (must outlive the sink).
  explicit JsonlFleetSink(std::ostream& os);
  /// Open `path` for writing; throws PreconditionError when it cannot.
  explicit JsonlFleetSink(const std::string& path);

  void on_run_begin(const FleetConfig& config, std::size_t stream_count,
                    double total_duration_s) override;
  void on_interval(const FleetInterval& interval,
                   const IntervalCounters& counters) override;
  void on_run_end(const FleetRunSummary& summary) override;

 private:
  std::ofstream owned_;
  std::ostream* os_ = nullptr;
};

/// Parse a `tpcool-fleet-stream-v1` JSONL stream back into a
/// `FleetResult`.  Restores every field `fleet_digest` covers (and the
/// benchmark names); schedule decisions are not serialized and come back
/// default-constructed.  Throws PreconditionError on malformed input or a
/// schema mismatch.
[[nodiscard]] FleetResult replay_fleet_jsonl(std::istream& is);

/// Overload: read from a file path.
[[nodiscard]] FleetResult replay_fleet_jsonl(const std::string& path);

/// Periodic min/max/mean reducer: rolls the interval stream up into
/// fixed-width windows of simulated time (e.g. hourly rollups of a week),
/// the cheap "live dashboard" observer.  Means are time-weighted;
/// intervals are assigned to windows by their start time.  Memory is
/// O(completed windows), bounded by duration / window — choose the window
/// to taste for very long runs.
class FleetRollupReducer final : public FleetObserver {
 public:
  struct Rollup {
    std::size_t first_interval = 0;
    std::size_t intervals = 0;
    double start_s = 0.0;
    double duration_s = 0.0;  ///< Sum of member interval durations.
    double it_power_w_min = 0.0, it_power_w_max = 0.0, it_power_w_mean = 0.0;
    double chiller_power_w_min = 0.0, chiller_power_w_max = 0.0,
           chiller_power_w_mean = 0.0;
    double pue_min = 0.0, pue_max = 0.0, pue_mean = 0.0;
    std::size_t qos_violations = 0;
    std::size_t solves = 0;  ///< Coupled solves executed in the window.
  };

  /// `window_s` > 0: rollup width in simulated seconds.
  explicit FleetRollupReducer(double window_s);

  void on_interval(const FleetInterval& interval,
                   const IntervalCounters& counters) override;
  void on_run_end(const FleetRunSummary& summary) override;

  /// Completed windows (the final partial window is flushed at run end).
  [[nodiscard]] const std::vector<Rollup>& rollups() const noexcept {
    return rollups_;
  }

 private:
  void flush();

  double window_s_;
  bool open_ = false;
  Rollup current_;
  double weighted_it_ = 0.0, weighted_chiller_ = 0.0, weighted_pue_ = 0.0;
  std::vector<Rollup> rollups_;
};

}  // namespace tpcool::datacenter
