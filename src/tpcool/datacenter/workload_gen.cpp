#include "tpcool/datacenter/workload_gen.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <utility>

#include "tpcool/util/error.hpp"
#include "tpcool/util/fnv.hpp"
#include "tpcool/workload/benchmark.hpp"

namespace tpcool::datacenter {

namespace {

/// splitmix64 (Steele/Lea/Flood): the whole generator's randomness.  Fully
/// specified integer arithmetic — unlike `<random>` distributions, whose
/// output is implementation-defined — so the same seed produces the same
/// traces on every standard library.
struct SplitMix64 {
  std::uint64_t state = 0;

  std::uint64_t next() {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }
};

/// Independent sub-streams of one seed: mix a domain tag in through one
/// splitmix step so stream i's randomness never overlaps the shared
/// sequences' or stream j's.
std::uint64_t substream_seed(std::uint64_t seed, std::uint64_t tag) {
  SplitMix64 rng{seed ^ (0x632BE59BD9B4E019ULL * (tag + 1))};
  return rng.next();
}

constexpr std::uint64_t kSharedNoiseTag = 0x01;
constexpr std::uint64_t kBurstTag = 0x02;
constexpr std::uint64_t kStreamTagBase = 0x100;

/// Geometric phase/burst length with mean `mean_slots` (p = 1/mean), in
/// whole slots, capped at `cap`.  Sampled by Bernoulli trials — no
/// `std::log`, so the result is identical on every libm.
std::size_t sample_geometric_slots(SplitMix64& rng, double mean_slots,
                                   std::size_t cap) {
  const double p = 1.0 / mean_slots;
  std::size_t length = 1;
  while (length < cap && rng.uniform() >= p) ++length;
  return length;
}

double clamp01(double x) { return std::clamp(x, 0.0, 1.0); }

}  // namespace

std::size_t WorkloadGenConfig::total_slots() const {
  // ceil(duration / slot) with an epsilon so exact multiples (86400 / 900)
  // do not round up to an extra slot from FP division error.
  return static_cast<std::size_t>(
      std::ceil(duration_s / slot_s - 1.0e-9));
}

std::vector<QoSTier> default_qos_tiers() {
  // Interactive tier dominates the daytime peak, batch fills the night;
  // the mixed tier is always present.  Benchmarks split by character:
  // interactive = latency-critical high-power profiles, batch =
  // memory-bound throughput profiles (see workload/benchmark.cpp).
  return {
      {workload::QoSRequirement{1.0},
       {"x264", "facesim", "ferret", "raytrace"},
       0.10,
       0.65},
      {workload::QoSRequirement{2.0},
       {"vips", "bodytrack", "fluidanimate", "freqmine", "dedup"},
       0.30,
       0.25},
      {workload::QoSRequirement{3.0},
       {"streamcluster", "canneal", "blackscholes", "swaptions"},
       0.60,
       0.10},
  };
}

WorkloadGenerator::WorkloadGenerator(WorkloadGenConfig config)
    : config_(std::move(config)) {
  if (config_.tiers.empty()) config_.tiers = default_qos_tiers();

  TPCOOL_REQUIRE(config_.streams >= 1, "generator needs at least one stream");
  TPCOOL_REQUIRE(config_.slot_s > 0.0, "slot length must be positive");
  TPCOOL_REQUIRE(config_.duration_s > 0.0, "duration must be positive");
  TPCOOL_REQUIRE(config_.total_slots() >= 1, "duration shorter than one slot");
  TPCOOL_REQUIRE(config_.mean_phase_slots >= 1.0,
                 "mean phase length below one slot");
  TPCOOL_REQUIRE(config_.correlation >= 0.0 && config_.correlation <= 1.0,
                 "correlation must be in [0, 1]");
  TPCOOL_REQUIRE(config_.noise >= 0.0, "noise amplitude must be >= 0");
  TPCOOL_REQUIRE(config_.diurnal.peak_hour >= 0.0 &&
                     config_.diurnal.peak_hour < 24.0,
                 "peak hour must be in [0, 24)");
  TPCOOL_REQUIRE(config_.bursts.rate_per_day >= 0.0,
                 "burst rate must be >= 0");
  TPCOOL_REQUIRE(config_.bursts.mean_duration_slots >= 1.0,
                 "burst duration below one slot");
  TPCOOL_REQUIRE(config_.bursts.intensity_boost >= 0.0,
                 "burst boost must be >= 0");
  double weight_low_sum = 0.0;
  double weight_high_sum = 0.0;
  for (const QoSTier& tier : config_.tiers) {
    TPCOOL_REQUIRE(tier.qos.factor >= 1.0, "tier QoS factor below 1x");
    TPCOOL_REQUIRE(!tier.benchmarks.empty(), "tier needs benchmarks");
    for (const std::string& name : tier.benchmarks) {
      (void)workload::find_benchmark(name);  // validates the name
    }
    TPCOOL_REQUIRE(tier.weight_low >= 0.0 && tier.weight_high >= 0.0,
                   "tier weights must be >= 0");
    weight_low_sum += tier.weight_low;
    weight_high_sum += tier.weight_high;
  }
  TPCOOL_REQUIRE(weight_low_sum > 0.0 && weight_high_sum > 0.0,
                 "QoS mix must have positive total weight at every intensity");

  const std::size_t slots = config_.total_slots();

  // Fleet-shared per-slot noise: every stream mixes this sequence in with
  // weight `correlation`, which is what correlates their load.
  SplitMix64 noise_rng{substream_seed(config_.seed, kSharedNoiseTag)};
  shared_noise_.resize(slots);
  for (double& n : shared_noise_) n = noise_rng.uniform() - 0.5;

  // Fleet-wide burst timeline: Bernoulli arrivals per slot (the discrete
  // approximation of a Poisson process with the configured daily rate),
  // geometric durations, overlapping bursts merge.
  SplitMix64 burst_rng{substream_seed(config_.seed, kBurstTag)};
  burst_slots_.assign(slots, false);
  const double p_start =
      std::min(1.0, config_.bursts.rate_per_day * config_.slot_s / 86400.0);
  for (std::size_t slot = 0; slot < slots; ++slot) {
    if (burst_rng.uniform() >= p_start) continue;
    const std::size_t length = sample_geometric_slots(
        burst_rng, config_.bursts.mean_duration_slots, slots - slot);
    for (std::size_t b = slot; b < slot + length; ++b) burst_slots_[b] = true;
  }
}

double WorkloadGenerator::fleet_intensity(std::size_t slot) const {
  TPCOOL_REQUIRE(slot < config_.total_slots(), "slot out of range");
  const double hour =
      std::fmod(static_cast<double>(slot) * config_.slot_s / 3600.0, 24.0);
  const double phase =
      2.0 * std::numbers::pi * (hour - config_.diurnal.peak_hour) / 24.0;
  double intensity =
      config_.diurnal.base + config_.diurnal.amplitude * std::cos(phase);
  intensity += config_.noise * config_.correlation * shared_noise_[slot];
  if (burst_slots_[slot]) intensity += config_.bursts.intensity_boost;
  return intensity;
}

bool WorkloadGenerator::burst_active(std::size_t slot) const {
  TPCOOL_REQUIRE(slot < config_.total_slots(), "slot out of range");
  return burst_slots_[slot];
}

workload::WorkloadTrace WorkloadGenerator::stream(std::size_t index) const {
  TPCOOL_REQUIRE(index < config_.streams, "stream index out of range");
  SplitMix64 rng{substream_seed(config_.seed, kStreamTagBase + index)};

  const std::size_t slots = config_.total_slots();
  std::vector<workload::TracePhase> phases;
  phases.reserve(slots / static_cast<std::size_t>(config_.mean_phase_slots) +
                 2);

  std::size_t slot = 0;
  while (slot < slots) {
    const std::size_t length =
        sample_geometric_slots(rng, config_.mean_phase_slots, slots - slot);

    // Intensity at the phase start decides this phase's tier/benchmark:
    // fleet-shared part (diurnal + correlated noise + bursts) plus the
    // stream's own idiosyncratic noise.
    const double own = rng.uniform() - 0.5;
    const double intensity = clamp01(
        fleet_intensity(slot) +
        config_.noise * (1.0 - config_.correlation) * own);

    // Tier weights interpolate between the low- and high-intensity mixes.
    double total_weight = 0.0;
    for (const QoSTier& tier : config_.tiers) {
      total_weight +=
          tier.weight_low + intensity * (tier.weight_high - tier.weight_low);
    }
    double pick = rng.uniform() * total_weight;
    const QoSTier* chosen = &config_.tiers.back();
    for (const QoSTier& tier : config_.tiers) {
      const double w =
          tier.weight_low + intensity * (tier.weight_high - tier.weight_low);
      if (pick < w) {
        chosen = &tier;
        break;
      }
      pick -= w;
    }

    const std::size_t bench_index = std::min(
        chosen->benchmarks.size() - 1,
        static_cast<std::size_t>(rng.uniform() *
                                 static_cast<double>(
                                     chosen->benchmarks.size())));

    // Durations are integer slot multiples, so cumulative phase sums are
    // exact doubles shared across streams (no ULP sliver intervals).
    phases.push_back({chosen->benchmarks[bench_index], chosen->qos,
                      static_cast<double>(length) * config_.slot_s});
    slot += length;
  }
  return workload::WorkloadTrace(std::move(phases));
}

std::vector<workload::WorkloadTrace> WorkloadGenerator::generate() const {
  std::vector<workload::WorkloadTrace> streams;
  streams.reserve(config_.streams);
  for (std::size_t s = 0; s < config_.streams; ++s) {
    streams.push_back(stream(s));
  }
  return streams;
}

std::uint64_t trace_digest(const workload::WorkloadTrace& trace) {
  std::uint64_t digest = util::kFnvOffsetBasis;
  util::fnv_u64(digest, trace.phase_count());
  for (const workload::TracePhase& phase : trace.phases()) {
    util::fnv_string(digest, phase.benchmark);
    util::fnv_f64(digest, phase.qos.factor);
    util::fnv_f64(digest, phase.duration_s);
  }
  return digest;
}

std::uint64_t streams_digest(
    const std::vector<workload::WorkloadTrace>& streams) {
  std::uint64_t digest = util::kFnvOffsetBasis;
  util::fnv_u64(digest, streams.size());
  for (const workload::WorkloadTrace& stream : streams) {
    util::fnv_u64(digest, trace_digest(stream));
  }
  return digest;
}

WorkloadGenConfig diurnal_fleet_day(std::uint64_t seed, std::size_t streams) {
  WorkloadGenConfig config;
  config.seed = seed;
  config.streams = streams;
  config.duration_s = 86400.0;
  config.slot_s = 900.0;  // 96 slots
  config.mean_phase_slots = 4.0;
  return config;
}

WorkloadGenConfig diurnal_fleet_week(std::uint64_t seed,
                                     std::size_t streams) {
  WorkloadGenConfig config;
  config.seed = seed;
  config.streams = streams;
  config.duration_s = 7.0 * 86400.0;
  config.slot_s = 1800.0;  // 336 slots
  config.mean_phase_slots = 4.0;
  config.bursts.rate_per_day = 1.5;
  return config;
}

}  // namespace tpcool::datacenter
