#pragma once
/// \file fleet.hpp
/// \brief Trace-driven datacenter fleet simulation: N heterogeneous racks
///        (per-rack approach, chiller, QoS policy), a workload arrival
///        stream built from `workload::WorkloadTrace` phases dispatched
///        across the racks by a pluggable placement policy, and
///        per-interval fleet metrics (IT power, chiller power, PUE, QoS
///        violations, per-rack setpoints).
///
/// The paper's evaluation stops at one rack (§V: one chiller, one shared
/// water setpoint); this layer composes that rack model into a fleet.  All
/// coupled solves run through the SolveCache / parallel_map machinery on
/// pooled pipelines (core::PipelinePool), so fleet results are
/// bit-identical for any thread count and snapshot-warmable: a
/// `--cache-file` rerun of the datacenter bench replays every solve from
/// disk (0 misses) and reproduces the same bits.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "tpcool/cooling/chiller.hpp"
#include "tpcool/cooling/rack.hpp"
#include "tpcool/core/pipelines.hpp"
#include "tpcool/datacenter/placement.hpp"
#include "tpcool/workload/trace.hpp"

namespace tpcool::datacenter {

/// One rack of the fleet: a homogeneous group of servers running one
/// approach behind one chiller (the §V rack model).
struct RackSpec {
  std::string name;                 ///< Label for tables/JSON.
  core::Approach approach = core::Approach::kProposed;
  std::size_t servers = 4;          ///< Capacity: one job per server.
  double cell_size_m = 2.0e-3;      ///< Coarse default: fleet = many solves.
  double tcase_limit_c = 85.0;
  /// Candidate supply temperatures scanned per server, descending.
  std::vector<double> supply_candidates_c{40.0, 35.0, 30.0, 25.0, 20.0,
                                          15.0};
  cooling::ChillerModel chiller;
};

/// Kinds of scheduled mid-run fleet disturbances (the fault-injection
/// scenario surface: chiller outage / derating, rack-loss failover).
enum class FleetEventKind {
  kChillerDerate,   ///< Scale the rack chiller's second-law efficiency.
  kChillerRestore,  ///< Restore the rack's chiller to its spec.
  kRackLoss,        ///< Rack capacity drops to zero (jobs fail over).
  kRackRestore,     ///< Rack capacity restored to its spec.
};

/// One scheduled disturbance.  Takes effect at the first interval whose
/// start time is >= `time_s` and stays in force until a matching restore
/// event (events are applied in time order; same-time events apply in
/// config order).  Deterministic by construction: events depend only on
/// the simulated clock, never on wall time or thread count.
struct FleetEvent {
  double time_s = 0.0;
  std::size_t rack = 0;
  FleetEventKind kind = FleetEventKind::kChillerDerate;
  /// kChillerDerate only: multiplier in (0, 1] on the chiller's
  /// second-law efficiency (0.6 = the chiller runs at 60% efficiency).
  double factor = 1.0;
};

/// Fleet construction parameters.
struct FleetConfig {
  std::vector<RackSpec> racks;
  /// Placement-policy registry name (see placement.hpp).
  std::string placement = "round-robin";
  /// UPS/PDU conversion-loss fraction for the PUE accounting.
  double distribution_loss_fraction = 0.03;
  /// Scheduled mid-run disturbances, applied by the engine in time order.
  std::vector<FleetEvent> events;
  /// Flash-crowd admission control: when true, an over-capacity interval
  /// sheds its lowest-priority excess jobs (highest QoS factor first, ties
  /// to the highest stream index) instead of throwing; shed jobs count as
  /// QoS violations and are recorded in `FleetInterval::shed_streams`.
  /// Default false preserves the historical over-capacity throw.
  bool shed_overload = false;
};

/// Outcome of one job (one stream's phase) over one interval.
struct JobOutcome {
  std::size_t stream = 0;           ///< Input stream index.
  std::string benchmark;
  double qos_factor = 1.0;
  std::size_t rack = 0;             ///< Rack the placement policy chose.
  core::ScheduleDecision decision;
  double package_power_w = 0.0;     ///< At the rack's shared setpoint.
  double max_supply_temp_c = 0.0;   ///< Highest feasible water temp.
  double die_max_c = 0.0;           ///< At the rack's shared setpoint.
  double tcase_c = 0.0;             ///< At the rack's shared setpoint.
  /// True when no supply candidate keeps TCASE within the rack limit (the
  /// server runs pinned at the coldest candidate) or the shared setpoint
  /// still leaves TCASE over the limit — the fleet-level analogue of
  /// core::TraceResult::tcase_limit_exceeded, counted as a QoS violation.
  bool tcase_limit_exceeded = false;
};

/// Per-rack rollup over one interval.
struct RackInterval {
  std::size_t jobs = 0;
  double it_power_w = 0.0;
  double headroom_c = kIdleHeadroomC;  ///< limit − hottest TCASE; idle: big.
  cooling::RackCoolingState cooling;   ///< Zeroed when the rack is idle.
};

/// Fleet-controller state stamped on the interval it acted on: the target
/// being tracked, the windowed control error that produced these biases,
/// and the applied (quantized) per-rack supply bias.  Inactive (all zeros)
/// when no controller is attached — see control.hpp.
struct FleetControlState {
  bool active = false;
  double target = 0.0;
  double error = 0.0;
  std::vector<double> rack_bias_c;   ///< Index-aligned with config racks.
};

/// One interval of the fleet timeline (a maximal span on which every
/// stream's phase is constant).
struct FleetInterval {
  std::size_t interval = 0;
  double start_s = 0.0;
  double duration_s = 0.0;
  std::vector<JobOutcome> jobs;      ///< In stream order (shed jobs absent).
  std::vector<RackInterval> racks;   ///< Index-aligned with config racks.
  double it_power_w = 0.0;
  double chiller_power_w = 0.0;      ///< Sum of rack chiller electrical.
  double pue = 1.0;                  ///< cooling::pue over this interval.
  /// Jobs with tcase_limit_exceeded, plus jobs shed by admission control.
  std::size_t qos_violations = 0;
  /// Streams shed this interval (ascending; empty unless
  /// `FleetConfig::shed_overload` fired).
  std::vector<std::size_t> shed_streams;
  FleetControlState control;         ///< Controller state (if attached).
};

/// Full fleet timeline outcome.
struct FleetResult {
  std::vector<FleetInterval> intervals;
  double duration_s = 0.0;
  double total_it_energy_j = 0.0;
  double total_chiller_energy_j = 0.0;
  double total_facility_energy_j = 0.0;  ///< IT + chiller + distribution.
  double avg_pue = 1.0;                  ///< Energy-weighted fleet PUE.
  std::size_t qos_violations = 0;        ///< Sum over intervals (incl. shed).
  std::size_t shed_jobs = 0;             ///< Jobs shed by admission control.
};

/// Validate a `FleetConfig` (nonempty racks, positive server counts and
/// cell sizes, nonempty supply-candidate lists, a registered placement
/// policy).  Throws PreconditionError on the first violation.  Shared by
/// `FleetModel` and `StreamingFleetEngine` so both fail identically.
void validate_fleet_config(const FleetConfig& config);

/// N racks, one placement policy, trace-driven.
///
/// `run` plays a set of workload streams (one `WorkloadTrace` per job
/// stream) against the fleet: the union of phase boundaries defines the
/// intervals; in each interval every still-active stream contributes one
/// job, jobs are dispatched to racks by the placement policy (in stream
/// order), each loaded rack solves the §V shared-cooling problem, and the
/// per-interval metrics aggregate up.  Unlike `RackCoordinator::plan`, a
/// server that is infeasible at every supply candidate does not throw: it
/// runs pinned at the coldest candidate and counts a QoS violation, so a
/// fleet sweep survives hot traces and reports them instead of dying.
///
/// `run` is a thin wrapper over `StreamingFleetEngine` (streaming.hpp)
/// with the `FleetResultAggregator` observer — batch and streaming runs
/// are one code path and bitwise identical by construction.
class FleetModel {
 public:
  explicit FleetModel(FleetConfig config);

  [[nodiscard]] const FleetConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t total_capacity() const noexcept;

  /// Simulate the streams end to end.  Throws PreconditionError when
  /// `streams` is empty or an interval's job count exceeds the fleet
  /// capacity.  Bit-identical for any thread count; all solves go through
  /// the global SolveCache on pooled pipelines.
  [[nodiscard]] FleetResult run(
      const std::vector<workload::WorkloadTrace>& streams);

 private:
  FleetConfig config_;
};

/// The fleet timeline: the sorted union of every stream's phase-boundary
/// cumulative sums (starting at 0), deduplicated with a relative epsilon.
/// Per-stream sums of nominally equal durations can differ by ULPs
/// (0.1 + 0.2 != 0.3), which `std::unique`'s exact comparison would keep
/// as sliver intervals; clusters within ~1e-12 relative collapse to their
/// largest member, so a stream whose own boundary is the smaller variant
/// is already finished (not resurrected for a sliver) and `phase_at` at
/// the representative lands in the correct phase for every stream.
[[nodiscard]] std::vector<double> fleet_interval_boundaries(
    const std::vector<workload::WorkloadTrace>& streams);

/// Order-sensitive FNV-1a digest over every numeric field of the result
/// (exact double bit patterns).  Equal digests certify bit-identical fleet
/// outcomes — the datacenter bench compares runs across thread counts with
/// this.
[[nodiscard]] std::uint64_t fleet_digest(const FleetResult& result);

/// A deterministic heterogeneous demo fleet: `racks` racks of
/// `servers_per_rack` servers cycling through the three approaches
/// (proposed, [8]+[27]+[9], [8]+[27]+[7]), with slightly staggered chiller
/// ambients so racks are not interchangeable.  Shared by the datacenter
/// bench, the example, and the tests.
[[nodiscard]] FleetConfig make_heterogeneous_fleet(std::size_t racks,
                                                   std::size_t servers_per_rack,
                                                   double cell_size_m);

}  // namespace tpcool::datacenter
