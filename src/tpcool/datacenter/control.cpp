#include "tpcool/datacenter/control.hpp"

#include <algorithm>
#include <cmath>

#include "tpcool/util/error.hpp"

namespace tpcool::datacenter {

void validate_controller_config(const FleetControllerConfig& config) {
  TPCOOL_REQUIRE(std::isfinite(config.target) && config.target >= 0.0,
                 "controller target must be finite and nonnegative");
  TPCOOL_REQUIRE(config.window_intervals >= 1,
                 "controller averaging window must be >= 1 intervals");
  TPCOOL_REQUIRE(std::isfinite(config.gain_c) && config.gain_c >= 0.0,
                 "controller gain must be finite and nonnegative");
  TPCOOL_REQUIRE(config.damping > 0.0 && config.damping <= 1.0,
                 "controller damping must be in (0, 1]");
  TPCOOL_REQUIRE(
      std::isfinite(config.min_bias_c) && std::isfinite(config.max_bias_c) &&
          config.min_bias_c <= config.max_bias_c,
      "controller bias range needs min_bias_c <= max_bias_c, both finite");
  TPCOOL_REQUIRE(config.quantum_c > 0.0,
                 "controller bias quantum must be positive");
  TPCOOL_REQUIRE(config.qos_backoff_c >= 0.0,
                 "controller QoS backoff must be nonnegative");
}

FleetController::FleetController(FleetControllerConfig config)
    : config_(config) {
  validate_controller_config(config_);
}

double FleetController::applied_bias_c(std::size_t rack) const {
  const double raw = bias_c(rack);
  const double snapped =
      std::round(raw / config_.quantum_c) * config_.quantum_c;
  return std::clamp(snapped, config_.min_bias_c, config_.max_bias_c);
}

double FleetController::bias_c(std::size_t rack) const {
  TPCOOL_REQUIRE(rack < bias_.size(),
                 "controller: rack index out of range (run not begun?)");
  return bias_[rack];
}

void FleetController::on_run_begin(const FleetConfig& config,
                                   std::size_t stream_count,
                                   double total_duration_s) {
  (void)stream_count;
  (void)total_duration_s;
  // Reset per run: every run's control trajectory is a pure function of
  // its config and interval stream (reruns are bit-identical).
  bias_.assign(config.racks.size(), 0.0);
  window_.clear();
  error_ = 0.0;
  mean_ = 0.0;
}

void FleetController::on_interval(const FleetInterval& interval,
                                  const IntervalCounters& counters) {
  (void)counters;

  // Measurement → averager: push this interval's value into the window
  // and take the time-weighted mean.
  double value = 0.0;
  if (config_.measurement == ControlMeasurement::kFleetPue) {
    value = interval.pue;
  } else {
    const std::size_t active =
        interval.jobs.size() + interval.shed_streams.size();
    value = active == 0 ? 0.0
                        : static_cast<double>(interval.qos_violations) /
                              static_cast<double>(active);
  }
  window_.emplace_back(value, interval.duration_s);
  while (window_.size() > config_.window_intervals) window_.pop_front();
  double weighted = 0.0;
  double weight = 0.0;
  for (const auto& [v, w] : window_) {
    weighted += v * w;
    weight += w;
  }
  mean_ = weight > 0.0 ? weighted / weight : value;

  // Control error → damped update.  For PUE, a positive error (PUE above
  // target) drives warmer (less chiller overhead); for the violation
  // rate, a positive error drives colder (more thermal margin).
  error_ = mean_ - config_.target;
  const double sign =
      config_.measurement == ControlMeasurement::kFleetPue ? 1.0 : -1.0;

  std::vector<char> violated(bias_.size(), 0);
  if (config_.qos_backoff_c > 0.0) {
    for (const JobOutcome& job : interval.jobs) {
      if (job.tcase_limit_exceeded && job.rack < violated.size()) {
        violated[job.rack] = 1;
      }
    }
  }
  for (std::size_t r = 0; r < bias_.size(); ++r) {
    double next = config_.damping * bias_[r] + sign * config_.gain_c * error_;
    if (violated[r] != 0) next -= config_.qos_backoff_c;
    // Anti-windup: the stored integrator state itself is clamped to the
    // actuation range, so saturation never banks unbounded correction.
    bias_[r] = std::clamp(next, config_.min_bias_c, config_.max_bias_c);
  }
}

FleetResult run_controlled_fleet(
    const FleetConfig& config,
    const std::vector<workload::WorkloadTrace>& streams,
    FleetController& controller) {
  StreamingFleetEngine engine(config, streams);
  engine.set_controller(controller);
  FleetResultAggregator aggregator;
  engine.add_observer(aggregator);
  engine.run();
  return aggregator.take();
}

ControlScenario make_pue_tracking_day(std::uint64_t seed, std::size_t streams,
                                      double cell_size_m) {
  ControlScenario scenario;
  scenario.fleet = make_heterogeneous_fleet(2, 2, cell_size_m);
  // Hot-climate heat rejection: with the default 35 °C ambient the demo
  // fleet's chillers sit at the free-cooling COP cap, where supply-bias
  // actuation has a dead zone (nothing changes until the bias pushes the
  // setpoint ~10 °C colder).  A ~46 °C condenser ambient keeps the COP on
  // the smooth part of the curve, so the loop has usable authority.
  for (std::size_t r = 0; r < scenario.fleet.racks.size(); ++r) {
    scenario.fleet.racks[r].chiller.ambient_c =
        46.0 + 0.5 * static_cast<double>(r);
  }
  scenario.streams =
      WorkloadGenerator(diurnal_fleet_day(seed, streams)).generate();
  // Target above the uncontrolled diurnal PUE range (tuned for the demo
  // fleet; tests/control_test.cpp pins the band): the uncontrolled fleet
  // spends the day below the ±2% band, the controller's cool-only bias
  // holds it on target through the swing.
  scenario.controller.measurement = ControlMeasurement::kFleetPue;
  scenario.controller.target = 1.12;
  scenario.controller.window_intervals = 3;
  scenario.controller.gain_c = 60.0;
  scenario.controller.damping = 0.80;
  scenario.controller.min_bias_c = -15.0;
  scenario.controller.max_bias_c = 0.0;
  scenario.controller.quantum_c = 1.0;
  return scenario;
}

}  // namespace tpcool::datacenter
