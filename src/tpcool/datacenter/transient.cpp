#include "tpcool/datacenter/transient.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "tpcool/core/parallel.hpp"
#include "tpcool/core/pipeline_pool.hpp"
#include "tpcool/core/solve_cache.hpp"
#include "tpcool/floorplan/power_map.hpp"
#include "tpcool/thermal/metrics.hpp"
#include "tpcool/util/error.hpp"
#include "tpcool/util/fnv.hpp"
#include "tpcool/util/telemetry.hpp"

namespace tpcool::datacenter {

namespace {

/// One segment per chunk, like the steady fleet: every (job, interval)
/// integrates independently.
constexpr std::size_t kSegmentGrain = 1;

/// Inner thermosyphon-coupling iterations per adaptive trial step (the
/// transient analogue of ServerModel::coupled_solve's fixed point).  A
/// boundary lagged one whole step behind sustains a discrete limit cycle
/// on high-power segments — the boiling HTC's strong heat-flux feedback
/// re-excites the package's fast surface mode at every commit, which puts
/// a dt-independent floor under the step-doubling error estimate and
/// locks the controller at millisecond steps.  Converging the boundary
/// against the trial's end state breaks the cycle; iteration stops early
/// once successive trial fields agree to a tenth of the step tolerance.
constexpr int kCouplingIterations = 8;

/// Under-relaxation factor for the evaporator heat-map update inside the
/// coupling loop.  At high heat flux the boiling HTC's feedback loop has
/// gain above one, so plain substitution oscillates between two boundary
/// states instead of converging; averaging successive heat maps halves
/// the effective gain and makes the iteration contract.
constexpr double kCouplingRelaxation = 0.5;

double max_abs_diff(const std::vector<double>& a,
                    const std::vector<double>& b) {
  double max = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    max = std::max(max, std::abs(a[i] - b[i]));
  }
  return max;
}

/// Everything one segment integration needs, resolved serially before the
/// fan-out so the parallel closure touches no shared mutable state.
struct SegmentTask {
  const JobOutcome* job = nullptr;
  const workload::BenchmarkProfile* bench = nullptr;
  thermosyphon::OperatingPoint op;
  double duration_s = 0.0;
  std::vector<double> initial_field_c;  ///< Stream state entering the interval.
  std::string cache_key;
};

/// Integrate one transient segment on a leased pipeline.  A pure function
/// of (pipeline config, task, engine config): the boundary and power map
/// are rebuilt from the task, the state starts at the task's initial
/// field, and every numeric step is the same fixed-order double arithmetic
/// on any thread — which is what makes the cached value sound.
core::SimulationResult integrate_segment(core::ApproachPipeline& pipeline,
                                         const SegmentTask& task,
                                         const TransientEngineConfig& config) {
  // Runs on whatever pool thread claimed the chunk: these spans are the
  // repo's cross-thread nesting exercise (cg spans nest under them on
  // worker rings).  Cache hits replay the value without re-entering here,
  // so transient.segments counts cold integrations only.
  util::TraceSpan span("transient.segment");
  if (util::telemetry_enabled()) {
    static util::TelemetryCounter& segments =
        util::Telemetry::instance().counter("transient.segments");
    segments.add(1.0);
  }
  core::ServerModel& server = pipeline.server();
  server.set_operating_point(task.op);
  thermal::ThermalModel& thermal = server.thermal();
  const thermal::StackModel& stack = thermal.stack();
  const floorplan::Rect package_region{0.0, 0.0, stack.grid.width(),
                                       stack.grid.height()};

  // The phase's power map, constant over the segment (same rasterization
  // as the steady solve and the TraceRunner).
  power::PackagePowerRequest req = server.profiler().request_for(
      *task.bench, task.job->decision.point.config,
      task.job->decision.idle_state);
  req.active_cores = task.job->decision.cores;
  const power::PackagePowerBreakdown breakdown =
      server.power_model().breakdown(req);
  thermal.set_power_map(floorplan::rasterize_power(
      server.floorplan(), server.power_model().unit_powers(req), stack.grid,
      stack.die_offset_x, stack.die_offset_y));

  std::vector<double> t = task.initial_field_c;
  TPCOOL_REQUIRE(t.size() == thermal.cell_count(),
                 "segment initial field does not match the thermal grid");

  const auto set_boundary = [&](const util::Grid2D<double>& heat) {
    const thermosyphon::ThermosyphonState syphon =
        server.thermosyphon_model().solve(heat, task.op);
    thermal::TopBoundary top;
    top.htc_w_m2k = syphon.htc_map;
    top.fluid_temp_c = syphon.fluid_temp_map;
    thermal.set_top_boundary(std::move(top));
  };
  // Per-cell evaporator heat extracted from a field (clamp the handful of
  // fringe cells that can run slightly negative at low loads).
  const auto clamped_top_heat = [&](const std::vector<double>& field) {
    util::Grid2D<double> heat = thermal.top_heat_flow_map_w(field);
    for (double& q : heat.data()) {
      if (q < 0.0) q = 0.0;
    }
    return heat;
  };

  // Seed the thermosyphon coupling from the initial field itself: a
  // zero-heat syphon solve gives a boundary, whose heat extraction over
  // the field is the first evaporator map — derived, not carried in, so
  // the segment stays a pure function of its key.
  util::Grid2D<double> evap_heat(stack.grid.nx, stack.grid.ny, 0.0);
  set_boundary(evap_heat);
  evap_heat = clamped_top_heat(t);

  core::SimulationResult result;
  result.power = breakdown;
  result.total_power_w = breakdown.total_w();
  result.active_cores = task.job->decision.cores;
  core::TransientSegmentInfo& seg = result.transient;
  thermal::StepController controller(config.step_control);

  while (seg.sim_time_s < task.duration_s) {
    const double remaining_s = task.duration_s - seg.sim_time_s;
    double dt_s = 0.0;
    if (config.fixed_dt_s > 0.0) {
      // Fixed-period baseline: TraceRunner-style stepping — the boundary
      // lags one step behind — with the final step clamped to the
      // remainder.
      set_boundary(evap_heat);
      dt_s = std::min(config.fixed_dt_s, remaining_s);
      thermal.step_transient(t, dt_s);
      evap_heat = clamped_top_heat(t);
    } else {
      // Adaptive: shrink the proposal until the embedded estimate passes.
      // Each trial converges the boundary against its own end state (see
      // kCouplingIterations) so the estimate measures the segment's real
      // dynamics, not boundary-lag noise.
      while (true) {
        dt_s = controller.propose(remaining_s);
        std::vector<double> trial;
        std::vector<double> prev_trial;
        util::Grid2D<double> trial_heat = evap_heat;
        double error_c = 0.0;
        for (int k = 0; k < kCouplingIterations; ++k) {
          set_boundary(trial_heat);
          trial = t;
          error_c = thermal.step_transient_embedded(trial, dt_s);
          const util::Grid2D<double> next_heat = clamped_top_heat(trial);
          for (std::size_t i = 0; i < trial_heat.data().size(); ++i) {
            trial_heat.data()[i] += kCouplingRelaxation *
                                    (next_heat.data()[i] -
                                     trial_heat.data()[i]);
          }
          if (!prev_trial.empty() &&
              max_abs_diff(trial, prev_trial) <=
                  0.1 * config.step_control.tolerance_c) {
            break;
          }
          prev_trial = trial;
        }
        if (controller.evaluate(dt_s, error_c)) {
          t = std::move(trial);
          evap_heat = std::move(trial_heat);
          break;
        }
        ++seg.rejected_steps;
      }
    }
    // Landing on the boundary is exact by assignment, not accumulation.
    seg.sim_time_s =
        dt_s == remaining_s ? task.duration_s : seg.sim_time_s + dt_s;
    ++seg.steps;

    const util::Grid2D<double> ihs = thermal.layer_field(t, stack.ihs_layer);
    const util::Grid2D<double> die = thermal.layer_field(t, stack.die_layer);
    const double tcase =
        thermal::case_temperature(ihs, stack.grid, package_region);
    seg.peak_tcase_c = std::max(seg.peak_tcase_c, tcase);
    seg.peak_die_c = std::max(
        seg.peak_die_c,
        thermal::compute_metrics(die, stack.grid, stack.die_region).max_c);
    result.tcase_c = tcase;
  }
  TPCOOL_ENSURE(seg.sim_time_s == task.duration_s,
                "transient segment must land exactly on its boundary");
  seg.end_state_c = std::move(t);
  span.arg("duration_s", task.duration_s);
  span.arg("steps", static_cast<double>(seg.steps));
  span.arg("rejected_steps", static_cast<double>(seg.rejected_steps));
  return result;
}

}  // namespace

TransientFleetEngine::TransientFleetEngine(FleetConfig fleet,
                                           TransientEngineConfig config)
    : fleet_(std::move(fleet)), config_(config) {
  TPCOOL_REQUIRE(config_.fixed_dt_s >= 0.0,
                 "fixed dt must be zero (adaptive) or positive");
  // Validate the controller tuning at construction, not mid-fan-out.
  (void)thermal::StepController(config_.step_control);
}

TransientFleetResult TransientFleetEngine::run(
    const std::vector<workload::WorkloadTrace>& streams) {
  TransientFleetResult result;
  result.steady = fleet_.run(streams);
  result.duration_s = result.steady.duration_s;

  const FleetConfig& config = fleet_.config();
  const std::shared_ptr<core::SolveCache>& cache = core::SolveCache::global();

  // Per-rack constants: design water flow, cache scope, and grid size (for
  // sizing fresh stream states), resolved once, serially.
  std::vector<double> design_flow_kg_h(config.racks.size());
  std::vector<std::string> scope(config.racks.size());
  std::vector<std::size_t> cell_count(config.racks.size());
  for (std::size_t r = 0; r < config.racks.size(); ++r) {
    const RackSpec& spec = config.racks[r];
    design_flow_kg_h[r] =
        core::server_config_for(spec.approach, spec.cell_size_m)
            .operating_point.water_flow_kg_h;
    scope[r] = core::solve_scope(spec.approach, spec.cell_size_m);
    const core::PipelinePool::Lease lease = core::PipelinePool::global()
        .checkout(spec.approach, spec.cell_size_m, cache);
    cell_count[r] = lease->server().thermal().cell_count();
  }

  // Thermal state follows the stream across intervals (the history a
  // migrating job's server accumulates — a modeling choice; see the header
  // doc).  A rack move that changes the grid resets to the start
  // temperature.
  std::unordered_map<std::size_t, std::vector<double>> stream_state;

  for (const FleetInterval& interval : result.steady.intervals) {
    util::TraceSpan interval_span("transient.interval");
    interval_span.arg("interval", static_cast<double>(interval.interval));
    interval_span.arg("jobs", static_cast<double>(interval.jobs.size()));
    if (util::telemetry_enabled()) {
      static util::TelemetryCounter& intervals =
          util::Telemetry::instance().counter("transient.intervals");
      intervals.add(1.0);
    }
    std::vector<SegmentTask> tasks;
    tasks.reserve(interval.jobs.size());
    for (const JobOutcome& job : interval.jobs) {
      const std::size_t r = job.rack;
      SegmentTask task;
      task.job = &job;
      task.bench = &workload::find_benchmark(job.benchmark);
      task.op = {.water_flow_kg_h = design_flow_kg_h[r],
                 .water_inlet_c = interval.racks[r].cooling.supply_temp_c};
      task.duration_s = interval.duration_s;
      const auto carried = stream_state.find(job.stream);
      if (carried != stream_state.end() &&
          carried->second.size() == cell_count[r]) {
        task.initial_field_c = carried->second;
      } else {
        task.initial_field_c.assign(cell_count[r],
                                    config_.start_temperature_c);
      }
      task.cache_key = core::segment_request_key(
          scope[r], *task.bench, job.decision.point.config,
          job.decision.cores, job.decision.idle_state, task.op,
          task.duration_s, config_.step_control, config_.fixed_dt_s,
          task.initial_field_c);
      tasks.push_back(std::move(task));
    }

    // Fan the interval's segments out on pooled pipelines, memoized under
    // the segment key: a warm rerun replays every segment from the cache.
    const std::vector<core::SimulationResult> segments =
        core::parallel_map<core::SimulationResult>(
            tasks.size(), kSegmentGrain,
            [&](std::size_t chunk) {
              const RackSpec& spec = config.racks[tasks[chunk].job->rack];
              return core::PipelinePool::global().checkout(
                  spec.approach, spec.cell_size_m, cache);
            },
            [&](core::PipelinePool::Lease& pipeline, std::size_t j) {
              return cache->get_or_compute(tasks[j].cache_key, [&] {
                return integrate_segment(*pipeline, tasks[j], config_);
              });
            });

    // Serial rollup + state chaining, in stream order.
    TransientInterval out;
    out.interval = interval.interval;
    out.start_s = interval.start_s;
    out.duration_s = interval.duration_s;
    out.jobs.reserve(tasks.size());
    for (std::size_t j = 0; j < tasks.size(); ++j) {
      const JobOutcome& job = *tasks[j].job;
      const core::TransientSegmentInfo& seg = segments[j].transient;
      TPCOOL_ENSURE(seg.sim_time_s == interval.duration_s,
                    "transient segment drifted off the interval boundary");
      TransientJobOutcome outcome;
      outcome.stream = job.stream;
      outcome.rack = job.rack;
      outcome.benchmark = job.benchmark;
      outcome.peak_tcase_c = seg.peak_tcase_c;
      outcome.peak_die_c = seg.peak_die_c;
      outcome.end_tcase_c = segments[j].tcase_c;
      outcome.steps = seg.steps;
      outcome.rejected_steps = seg.rejected_steps;
      outcome.tcase_limit_exceeded =
          seg.peak_tcase_c > config.racks[job.rack].tcase_limit_c;
      if (outcome.tcase_limit_exceeded) ++result.qos_violations;
      result.peak_tcase_c = std::max(result.peak_tcase_c, seg.peak_tcase_c);
      result.total_steps += seg.steps;
      result.total_rejected_steps += seg.rejected_steps;
      stream_state[job.stream] = seg.end_state_c;
      out.jobs.push_back(std::move(outcome));
    }
    result.intervals.push_back(std::move(out));
  }
  return result;
}

std::uint64_t transient_digest(const TransientFleetResult& result) {
  using util::fnv_f64;
  using util::fnv_u64;
  std::uint64_t digest = fleet_digest(result.steady);
  fnv_u64(digest, result.intervals.size());
  for (const TransientInterval& interval : result.intervals) {
    fnv_f64(digest, interval.start_s);
    fnv_f64(digest, interval.duration_s);
    for (const TransientJobOutcome& job : interval.jobs) {
      fnv_u64(digest, job.stream);
      fnv_u64(digest, job.rack);
      fnv_f64(digest, job.peak_tcase_c);
      fnv_f64(digest, job.peak_die_c);
      fnv_f64(digest, job.end_tcase_c);
      fnv_u64(digest, job.steps);
      fnv_u64(digest, job.rejected_steps);
      fnv_u64(digest, job.tcase_limit_exceeded ? 1 : 0);
    }
  }
  fnv_f64(digest, result.duration_s);
  fnv_f64(digest, result.peak_tcase_c);
  fnv_u64(digest, result.total_steps);
  fnv_u64(digest, result.total_rejected_steps);
  fnv_u64(digest, result.qos_violations);
  return digest;
}

}  // namespace tpcool::datacenter
