#pragma once
/// \file control.hpp
/// \brief Closed-loop fleet control: a `FleetObserver` that tracks a fleet
///        PUE or QoS-violation-rate target online by biasing per-rack
///        water supply setpoints — the measurement → averager → control
///        error → damped update feedback idiom of SpECTRE's
///        `ControlSystem/`, one level up from the paper's per-server §VII
///        `core::RuntimeController`.
///
/// The loop closes through the streaming engine:
///
///   interval i physics → observers (controller updates its windowed
///   measurement, control error, and per-rack bias state) → engine
///   queries the applied biases when computing interval i+1 → biased
///   setpoints shift chiller COP / TCASE margins → interval i+1 physics.
///
/// Everything is a pure function of the interval stream, so a controlled
/// run stays bit-identical for any thread count and snapshot-warmable:
/// applied biases land on a configurable quantum lattice
/// (`FleetControllerConfig::quantum_c`), keeping the biased operating
/// points cache-key-stable the same way the discrete supply candidates
/// are.  docs/ARCHITECTURE.md "The control loop" has the dataflow;
/// docs/OBSERVABILITY.md documents the emitted `FleetControlState`.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "tpcool/datacenter/fleet.hpp"
#include "tpcool/datacenter/streaming.hpp"
#include "tpcool/datacenter/workload_gen.hpp"

namespace tpcool::datacenter {

/// What the controller tracks.
enum class ControlMeasurement {
  /// `FleetInterval::pue`, time-weighted over the averaging window.
  /// PUE above target drives setpoints warmer (higher chiller COP, less
  /// electrical overhead); below target drives them colder.
  kFleetPue,
  /// QoS violations per active job (placed + shed), time-weighted.  A rate
  /// above target drives setpoints colder (more thermal margin).
  kQosViolationRate,
};

/// Controller parameters.  The update per interval, per rack, is
///
///   bias ← clamp(damping · bias + sign · gain_c · error [− backoff],
///                min_bias_c, max_bias_c)
///
/// a damped (leaky) integrator: `error` is the windowed measurement minus
/// the target, `sign` maps the error onto the warm/cold direction for the
/// chosen measurement, and the clamp is the anti-windup — the stored
/// state itself saturates, so a long excursion cannot bank unbounded
/// correction that must unwind before the sign of the response flips.
/// With damping < 1 the no-disturbance fixed point is
/// gain_c · error / (1 − damping), approached monotonically.
struct FleetControllerConfig {
  ControlMeasurement measurement = ControlMeasurement::kFleetPue;
  /// The tracked value: a PUE (>= 1 physically) or a violation rate.
  double target = 1.10;
  /// Averaging window, in intervals (>= 1): the measurement driving the
  /// error is the time-weighted mean of the last this-many intervals.
  std::size_t window_intervals = 4;
  /// °C of bias step per unit of control error per interval (>= 0; zero
  /// disables actuation entirely, bit-identical to no controller).
  double gain_c = 40.0;
  /// Integrator retention per interval, in (0, 1].  1 is a pure
  /// integrator (the clamp is then the only thing bounding the state).
  double damping = 0.85;
  /// Actuation range [°C], min <= max.  The default is cool-only: the
  /// controller may pull a rack below its natural setpoint (more margin,
  /// more chiller power) but never above it (which would trade TCASE
  /// violations for efficiency).
  double min_bias_c = -15.0;
  double max_bias_c = 0.0;
  /// Applied-bias lattice (> 0): the actuated bias is the stored state
  /// rounded to this quantum, so biased setpoints stay on a discrete
  /// grid and the solve cache can reuse operating points across
  /// intervals and runs (exact-double cache keys).
  double quantum_c = 1.0;
  /// Extra cold shift [°C/interval] applied to any rack that had a
  /// TCASE-violating job this interval (>= 0; 0 disables).  Lets a PUE
  /// tracker react to per-rack thermal distress without switching the
  /// fleet-wide measurement.
  double qos_backoff_c = 0.0;
};

/// Validate a `FleetControllerConfig`; throws PreconditionError on the
/// first violation.  Called by the `FleetController` constructor.
void validate_controller_config(const FleetControllerConfig& config);

/// The fleet-level feedback controller.  Attach to an engine with
/// `StreamingFleetEngine::set_controller` (which also registers it as an
/// observer); the engine then queries `applied_bias_c` per rack when it
/// computes each interval and stamps the result into
/// `FleetInterval::control`.
///
/// State resets on `on_run_begin`, so one controller instance can drive
/// successive runs and every run is reproducible from its config alone.
/// Like placement policies, a controller instance is single-run-at-a-time
/// and single-thread (the observer contract already guarantees callbacks
/// are serial).
class FleetController final : public FleetObserver {
 public:
  explicit FleetController(FleetControllerConfig config);

  [[nodiscard]] const FleetControllerConfig& config() const noexcept {
    return config_;
  }

  /// The actuated bias for `rack` next interval: the stored state rounded
  /// to the quantum lattice and clamped to the actuation range.  Valid
  /// after `on_run_begin`; 0 until the first interval has been observed.
  [[nodiscard]] double applied_bias_c(std::size_t rack) const;

  /// The raw (unquantized) integrator state for `rack` — what the tests
  /// assert convergence and anti-windup on.
  [[nodiscard]] double bias_c(std::size_t rack) const;

  /// Windowed control error (mean measurement − target) after the most
  /// recently observed interval.
  [[nodiscard]] double last_error() const noexcept { return error_; }

  /// The time-weighted windowed measurement itself.
  [[nodiscard]] double windowed_measurement() const noexcept { return mean_; }

  void on_run_begin(const FleetConfig& config, std::size_t stream_count,
                    double total_duration_s) override;
  void on_interval(const FleetInterval& interval,
                   const IntervalCounters& counters) override;

 private:
  FleetControllerConfig config_;
  std::deque<std::pair<double, double>> window_;  ///< (value, duration).
  std::vector<double> bias_;                      ///< Per-rack integrator.
  double error_ = 0.0;
  double mean_ = 0.0;
};

/// Convenience batch wrapper: `FleetModel::run` with `controller` in the
/// loop (engine + controller + aggregator).
[[nodiscard]] FleetResult run_controlled_fleet(
    const FleetConfig& config,
    const std::vector<workload::WorkloadTrace>& streams,
    FleetController& controller);

/// A complete closed-loop scenario: fleet + workload + controller config.
struct ControlScenario {
  FleetConfig fleet;
  std::vector<workload::WorkloadTrace> streams;
  FleetControllerConfig controller;
};

/// The canonical PUE-tracking scenario shared by the control tests, the
/// `control_scaling` bench, and `examples/fleet_control.cpp`: a
/// `diurnal_fleet_day` workload on the heterogeneous demo fleet, with a
/// controller whose target sits above the uncontrolled diurnal PUE range
/// — so the uncontrolled fleet drifts out of the ±2% band while the
/// controller's cool-only bias pulls the fleet onto it and holds it
/// through the swing.
[[nodiscard]] ControlScenario make_pue_tracking_day(std::uint64_t seed,
                                                    std::size_t streams,
                                                    double cell_size_m);

}  // namespace tpcool::datacenter
