#pragma once
/// \file workload_gen.hpp
/// \brief Seeded synthetic workload generation: parameterized diurnal /
///        bursty / correlated multi-stream arrival traces, so a
///        millions-of-users fleet day (or week) is a one-liner instead of a
///        hand-written phase list.
///
/// Determinism contract: the generator is a pure function of its
/// `WorkloadGenConfig` — the same seed and parameters produce a
/// bit-identical set of `workload::WorkloadTrace`s on every run and at
/// every thread count (generation never touches the thread pool; all
/// randomness comes from an explicit splitmix64 stream, never from
/// `std::random_device`, implementation-defined `<random>` distributions,
/// or iteration order).  `streams_digest` certifies it, the same way
/// `fleet_digest` certifies fleet runs.
///
/// Phase boundaries land on a fixed slot grid (`slot_s`): every phase
/// duration is an integer number of slots, so boundaries of different
/// streams that are nominally equal are *exactly* equal doubles and the
/// fleet interval timeline stays bounded by the slot count instead of
/// exploding into per-stream sliver intervals.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "tpcool/workload/configuration.hpp"
#include "tpcool/workload/trace.hpp"

namespace tpcool::datacenter {

/// Time-of-day load shape: intensity(t) = base + amplitude ·
/// cos(2π · (hour(t) − peak_hour) / 24), clamped to [0, 1] after noise and
/// bursts are added.  Intensity selects the QoS/benchmark mix (high =
/// interactive, low = batch).
struct DiurnalShape {
  double base = 0.45;       ///< Mean utilization over the day.
  double amplitude = 0.35;  ///< Day/night swing around the base.
  double peak_hour = 14.0;  ///< Local hour of peak load in [0, 24).
};

/// One tier of the heterogeneous QoS mix: a QoS factor, the benchmarks
/// that run under it, and how strongly the tier is represented at low vs
/// high fleet intensity (linearly interpolated).  Defaults model an
/// interactive tier that dominates the daytime peak and a batch tier that
/// fills the night.
struct QoSTier {
  workload::QoSRequirement qos{2.0};
  std::vector<std::string> benchmarks;  ///< Uniform pick within the tier.
  double weight_low = 1.0;   ///< Relative selection weight at intensity 0.
  double weight_high = 1.0;  ///< Relative selection weight at intensity 1.
};

/// Fleet-wide flash-crowd bursts: burst starts arrive as a Bernoulli
/// approximation of a Poisson process on the slot grid, last a geometric
/// number of slots, and add `intensity_boost` to every stream's intensity
/// while active — the correlated load spike all streams see together.
struct BurstModel {
  double rate_per_day = 2.0;        ///< Mean burst arrivals per 24 h.
  double mean_duration_slots = 4.0; ///< Geometric mean burst length.
  double intensity_boost = 0.45;    ///< Added to intensity while bursting.
};

/// Generator parameters.  Defaults produce a plausible interactive/batch
/// datacenter day; see `diurnal_fleet_day` / `diurnal_fleet_week` for the
/// tuned presets.
struct WorkloadGenConfig {
  std::uint64_t seed = 0;       ///< Same seed ⇒ bit-identical traces.
  std::size_t streams = 4;      ///< Arrival streams (one job each when active).
  double duration_s = 86400.0;  ///< Trace length (rounded up to whole slots).
  double slot_s = 900.0;        ///< Phase-boundary grid (15 min default).
  /// Mean phase length in slots: phases end with probability
  /// 1/mean_phase_slots per slot (geometric = quantized Poisson switching).
  double mean_phase_slots = 4.0;
  DiurnalShape diurnal;
  /// Correlation of the per-slot intensity noise across streams in [0, 1]:
  /// 1 = all streams share one noise sequence, 0 = independent.
  double correlation = 0.6;
  double noise = 0.15;          ///< Peak-to-peak amplitude of the noise.
  BurstModel bursts;
  /// The QoS mix; empty selects the default three-tier interactive /
  /// mixed / batch split over the 13 PARSEC profiles.
  std::vector<QoSTier> tiers;

  [[nodiscard]] std::size_t total_slots() const;
};

/// The default three-tier QoS mix (interactive 1×, mixed 2×, batch 3×)
/// used when `WorkloadGenConfig::tiers` is empty.
[[nodiscard]] std::vector<QoSTier> default_qos_tiers();

/// Seeded synthetic workload generator.  Construction validates the
/// config and precomputes the fleet-shared sequences (burst timeline,
/// shared noise); `stream(i)` / `generate()` are const and reproducible.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadGenConfig config);

  [[nodiscard]] const WorkloadGenConfig& config() const noexcept {
    return config_;
  }

  /// Generate stream `index` (deterministic in (seed, index) alone —
  /// streams can be generated in any order or in parallel by the caller).
  [[nodiscard]] workload::WorkloadTrace stream(std::size_t index) const;

  /// All `config().streams` traces, in stream order.
  [[nodiscard]] std::vector<workload::WorkloadTrace> generate() const;

  /// The fleet-wide intensity offset at a slot (diurnal + shared noise +
  /// burst boost, before per-stream noise and clamping) — exposed for
  /// tests and diagnostics.
  [[nodiscard]] double fleet_intensity(std::size_t slot) const;

  /// True when the fleet-wide burst timeline is active at a slot.
  [[nodiscard]] bool burst_active(std::size_t slot) const;

 private:
  WorkloadGenConfig config_;
  std::vector<double> shared_noise_;  ///< Per-slot, in [-0.5, 0.5].
  std::vector<bool> burst_slots_;     ///< Fleet-wide burst timeline.
};

/// Order-sensitive FNV-1a digest over a trace's phases (benchmark names,
/// exact QoS-factor and duration bit patterns).  Equal digests certify
/// bit-identical traces.
[[nodiscard]] std::uint64_t trace_digest(const workload::WorkloadTrace& trace);

/// Digest over a whole stream set, in stream order.
[[nodiscard]] std::uint64_t streams_digest(
    const std::vector<workload::WorkloadTrace>& streams);

/// Preset: one diurnal datacenter day — interactive peak around 14:00,
/// batch overnight, a couple of flash-crowd bursts.  `streams` jobs on a
/// 15-minute slot grid.
[[nodiscard]] WorkloadGenConfig diurnal_fleet_day(std::uint64_t seed,
                                                  std::size_t streams);

/// Preset: seven diurnal days on a 30-minute grid — the unbounded-length
/// streaming demonstration (`bench/streaming_scaling`).
[[nodiscard]] WorkloadGenConfig diurnal_fleet_week(std::uint64_t seed,
                                                   std::size_t streams);

}  // namespace tpcool::datacenter
