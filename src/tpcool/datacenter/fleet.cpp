#include "tpcool/datacenter/fleet.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <memory>
#include <utility>

#include "tpcool/cooling/pue.hpp"
#include "tpcool/core/parallel.hpp"
#include "tpcool/core/pipeline_pool.hpp"
#include "tpcool/core/solve_cache.hpp"
#include "tpcool/util/error.hpp"

namespace tpcool::datacenter {

namespace {

/// One job per chunk: every (rack, server) slot schedules and scans
/// independently, exactly like the rack coordinator.
constexpr std::size_t kFleetGrain = 1;

/// Phase-1 outcome of one job: the schedule and the supply-temperature
/// scan against its rack's candidates.
struct ScanOutcome {
  core::ScheduleDecision decision;
  double max_supply_temp_c = 0.0;
  double demand_power_w = 0.0;  ///< Package power at the scan's endpoint.
  bool infeasible = false;      ///< No candidate kept TCASE within limit.
};

void fnv_u64(std::uint64_t& digest, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    digest ^= (value >> shift) & 0xFF;
    digest *= 1099511628211ULL;
  }
}

void fnv_f64(std::uint64_t& digest, double value) {
  fnv_u64(digest, std::bit_cast<std::uint64_t>(value));
}

}  // namespace

FleetModel::FleetModel(FleetConfig config) : config_(std::move(config)) {
  TPCOOL_REQUIRE(!config_.racks.empty(), "fleet needs at least one rack");
  for (const RackSpec& rack : config_.racks) {
    TPCOOL_REQUIRE(rack.servers >= 1, "rack needs at least one server");
    TPCOOL_REQUIRE(!rack.supply_candidates_c.empty(),
                   "rack needs supply-temperature candidates");
    TPCOOL_REQUIRE(rack.cell_size_m > 0.0, "cell size must be positive");
  }
  // Validate the policy name at construction, not first run.
  (void)make_placement_policy(config_.placement);
}

std::size_t FleetModel::total_capacity() const noexcept {
  std::size_t capacity = 0;
  for (const RackSpec& rack : config_.racks) capacity += rack.servers;
  return capacity;
}

FleetResult FleetModel::run(
    const std::vector<workload::WorkloadTrace>& streams) {
  TPCOOL_REQUIRE(!streams.empty(), "fleet run needs at least one stream");

  const std::vector<double> boundaries = fleet_interval_boundaries(streams);

  const std::unique_ptr<PlacementPolicy> policy =
      make_placement_policy(config_.placement);

  // Per-rack dispatch state; headroom carries across intervals.
  std::vector<RackLoad> loads(config_.racks.size());
  for (std::size_t r = 0; r < config_.racks.size(); ++r) {
    loads[r] = {r, config_.racks[r].servers, 0, 0.0, kIdleHeadroomC};
  }

  // Per-rack design water flow (the §VI-C operating point of the rack's
  // approach), fixed over the run like in the rack coordinator.
  std::vector<double> design_flow_kg_h(config_.racks.size());
  for (std::size_t r = 0; r < config_.racks.size(); ++r) {
    design_flow_kg_h[r] =
        core::server_config_for(config_.racks[r].approach,
                                config_.racks[r].cell_size_m)
            .operating_point.water_flow_kg_h;
  }

  FleetResult result;
  result.duration_s = boundaries.back();

  for (std::size_t b = 0; b + 1 < boundaries.size(); ++b) {
    const double start_s = boundaries[b];
    const double duration_s = boundaries[b + 1] - boundaries[b];

    // Arrivals: every still-active stream contributes its current phase.
    std::vector<JobRequest> jobs;
    for (std::size_t s = 0; s < streams.size(); ++s) {
      if (start_s >= streams[s].total_duration_s()) continue;  // stream done
      const workload::TracePhase& phase = streams[s].phase_at(start_s);
      JobRequest job;
      job.stream = s;
      job.bench = &workload::find_benchmark(phase.benchmark);
      job.qos = phase.qos;
      job.est_power_w = job_power_estimate(*job.bench, job.qos);
      jobs.push_back(job);
    }
    TPCOOL_REQUIRE(jobs.size() <= total_capacity(),
                   "fleet over capacity: " + std::to_string(jobs.size()) +
                       " active streams vs " +
                       std::to_string(total_capacity()) + " servers");

    // Dispatch in stream order (the arrival order): deterministic, serial.
    for (RackLoad& load : loads) {
      load.assigned = 0;
      load.est_power_w = 0.0;
    }
    std::vector<std::size_t> placed_rack(jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      const std::size_t rack = policy->select_rack(jobs[j], loads);
      TPCOOL_REQUIRE(rack < loads.size() && !loads[rack].full(),
                     "placement policy chose an invalid rack");
      placed_rack[j] = rack;
      ++loads[rack].assigned;
      loads[rack].est_power_w += jobs[j].est_power_w;
    }

    // Phase 1, parallel over all jobs of all racks: schedule, then scan
    // the rack's supply candidates for the highest feasible temperature.
    // Unlike RackCoordinator::plan, infeasibility does not throw — the
    // server pins to the coldest candidate and is flagged.
    const std::vector<ScanOutcome> scans = core::parallel_map<ScanOutcome>(
        jobs.size(), kFleetGrain,
        [&](std::size_t chunk) {
          const RackSpec& spec = config_.racks[placed_rack[chunk]];
          return core::PipelinePool::global().checkout(
              spec.approach, spec.cell_size_m, core::SolveCache::global());
        },
        [&](core::PipelinePool::Lease& pipeline, std::size_t j) {
          const RackSpec& spec = config_.racks[placed_rack[j]];
          core::ServerModel& server = pipeline->server();
          ScanOutcome scan;
          scan.decision =
              pipeline->scheduler().schedule(*jobs[j].bench, jobs[j].qos);
          for (const double t_w : spec.supply_candidates_c) {
            server.set_operating_point(
                {.water_flow_kg_h = design_flow_kg_h[placed_rack[j]],
                 .water_inlet_c = t_w});
            const core::SimulationResult sim = server.simulate(
                *jobs[j].bench, scan.decision.point.config,
                scan.decision.cores, scan.decision.idle_state);
            scan.max_supply_temp_c = t_w;
            scan.demand_power_w = sim.total_power_w;
            if (sim.tcase_c <= spec.tcase_limit_c) return scan;
          }
          scan.infeasible = true;  // runs pinned at the coldest candidate
          return scan;
        });

    // Shared loop per rack: setpoint = min over its servers' maxima.
    std::vector<cooling::RackCoolingState> rack_cooling(config_.racks.size());
    for (std::size_t r = 0; r < config_.racks.size(); ++r) {
      std::vector<cooling::ServerDemand> demands;
      for (std::size_t j = 0; j < jobs.size(); ++j) {
        if (placed_rack[j] != r) continue;
        demands.push_back({scans[j].demand_power_w,
                           scans[j].max_supply_temp_c, design_flow_kg_h[r]});
      }
      if (!demands.empty()) {
        rack_cooling[r] =
            cooling::solve_rack_cooling(demands, config_.racks[r].chiller);
      }
    }

    // Phase 2, parallel again: every server at its rack's shared setpoint.
    const std::vector<core::SimulationResult> at_setpoint =
        core::parallel_map<core::SimulationResult>(
            jobs.size(), kFleetGrain,
            [&](std::size_t chunk) {
              const RackSpec& spec = config_.racks[placed_rack[chunk]];
              return core::PipelinePool::global().checkout(
                  spec.approach, spec.cell_size_m,
                  core::SolveCache::global());
            },
            [&](core::PipelinePool::Lease& pipeline, std::size_t j) {
              const std::size_t r = placed_rack[j];
              pipeline->server().set_operating_point(
                  {.water_flow_kg_h = design_flow_kg_h[r],
                   .water_inlet_c = rack_cooling[r].supply_temp_c});
              return pipeline->server().simulate(
                  *jobs[j].bench, scans[j].decision.point.config,
                  scans[j].decision.cores, scans[j].decision.idle_state);
            });

    // Assemble the interval.
    FleetInterval interval;
    interval.interval = b;
    interval.start_s = start_s;
    interval.duration_s = duration_s;
    interval.racks.resize(config_.racks.size());
    for (std::size_t r = 0; r < config_.racks.size(); ++r) {
      interval.racks[r].cooling = rack_cooling[r];
    }
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      const std::size_t r = placed_rack[j];
      JobOutcome outcome;
      outcome.stream = jobs[j].stream;
      outcome.benchmark = jobs[j].bench->name;
      outcome.qos_factor = jobs[j].qos.factor;
      outcome.rack = r;
      outcome.decision = scans[j].decision;
      outcome.package_power_w = at_setpoint[j].total_power_w;
      outcome.max_supply_temp_c = scans[j].max_supply_temp_c;
      outcome.die_max_c = at_setpoint[j].die.max_c;
      outcome.tcase_c = at_setpoint[j].tcase_c;
      outcome.tcase_limit_exceeded =
          scans[j].infeasible ||
          at_setpoint[j].tcase_c > config_.racks[r].tcase_limit_c;
      if (outcome.tcase_limit_exceeded) ++interval.qos_violations;

      RackInterval& rack = interval.racks[r];
      ++rack.jobs;
      rack.it_power_w += outcome.package_power_w;
      rack.headroom_c =
          rack.jobs == 1
              ? config_.racks[r].tcase_limit_c - outcome.tcase_c
              : std::min(rack.headroom_c,
                         config_.racks[r].tcase_limit_c - outcome.tcase_c);
      interval.jobs.push_back(std::move(outcome));
    }
    for (std::size_t r = 0; r < config_.racks.size(); ++r) {
      interval.it_power_w += interval.racks[r].it_power_w;
      interval.chiller_power_w += interval.racks[r].cooling.chiller_electrical_w;
      loads[r].headroom_c = interval.racks[r].headroom_c;
    }

    cooling::FacilityPower facility;
    facility.it_w = interval.it_power_w;
    facility.chiller_w = interval.chiller_power_w;
    facility.distribution_w = cooling::distribution_loss_w(
        interval.it_power_w, config_.distribution_loss_fraction);
    interval.pue = cooling::pue(facility);

    result.total_it_energy_j += interval.it_power_w * duration_s;
    result.total_chiller_energy_j += interval.chiller_power_w * duration_s;
    result.total_facility_energy_j += facility.total_w() * duration_s;
    result.qos_violations += interval.qos_violations;
    result.intervals.push_back(std::move(interval));
  }

  TPCOOL_ENSURE(result.total_it_energy_j > 0.0,
                "fleet ran no work (all streams empty?)");
  result.avg_pue = result.total_facility_energy_j / result.total_it_energy_j;
  return result;
}

std::vector<double> fleet_interval_boundaries(
    const std::vector<workload::WorkloadTrace>& streams) {
  // Boundaries are the streams' own cumulative sums, so "is this stream
  // still active at b" compares doubles that came from the same additions
  // — exact, machine-independent arithmetic *within* a stream.  Across
  // streams, sums of nominally equal durations can disagree by ULPs
  // (0.1 + 0.2 != 0.3); exact dedupe would keep both variants and emit a
  // sliver interval between them.
  std::vector<double> boundaries{0.0};
  for (const workload::WorkloadTrace& stream : streams) {
    double end = 0.0;
    for (const workload::TracePhase& phase : stream.phases()) {
      end += phase.duration_s;
      boundaries.push_back(end);
    }
  }
  std::sort(boundaries.begin(), boundaries.end());

  // Collapse each epsilon-cluster to its LARGEST member.  Keeping the max
  // means a stream whose own cumulative sum is the smaller variant tests
  // `start >= total_duration` as finished (no resurrection for a sliver),
  // and a stream whose sum is the larger variant sees its exact own value,
  // so phase_at lands in the correct phase either way.
  constexpr double kRelEps = 1.0e-12;
  std::vector<double> deduped;
  deduped.reserve(boundaries.size());
  for (const double b : boundaries) {
    if (!deduped.empty()) {
      const double prev = deduped.back();
      const double scale = std::max({1.0, std::abs(prev), std::abs(b)});
      if (b - prev <= kRelEps * scale) {
        deduped.back() = b;  // same cluster: keep the larger variant
        continue;
      }
    }
    deduped.push_back(b);
  }
  return deduped;
}

std::uint64_t fleet_digest(const FleetResult& result) {
  std::uint64_t digest = 1469598103934665603ULL;
  fnv_u64(digest, result.intervals.size());
  for (const FleetInterval& interval : result.intervals) {
    fnv_f64(digest, interval.start_s);
    fnv_f64(digest, interval.duration_s);
    fnv_f64(digest, interval.it_power_w);
    fnv_f64(digest, interval.chiller_power_w);
    fnv_f64(digest, interval.pue);
    fnv_u64(digest, interval.qos_violations);
    for (const JobOutcome& job : interval.jobs) {
      fnv_u64(digest, job.stream);
      fnv_u64(digest, job.rack);
      fnv_f64(digest, job.qos_factor);
      fnv_f64(digest, job.package_power_w);
      fnv_f64(digest, job.max_supply_temp_c);
      fnv_f64(digest, job.die_max_c);
      fnv_f64(digest, job.tcase_c);
      fnv_u64(digest, job.tcase_limit_exceeded ? 1 : 0);
    }
    for (const RackInterval& rack : interval.racks) {
      fnv_u64(digest, rack.jobs);
      fnv_f64(digest, rack.it_power_w);
      fnv_f64(digest, rack.headroom_c);
      fnv_f64(digest, rack.cooling.supply_temp_c);
      fnv_f64(digest, rack.cooling.return_temp_c);
      fnv_f64(digest, rack.cooling.chiller_electrical_w);
    }
  }
  fnv_f64(digest, result.total_it_energy_j);
  fnv_f64(digest, result.total_chiller_energy_j);
  fnv_f64(digest, result.total_facility_energy_j);
  fnv_f64(digest, result.avg_pue);
  fnv_u64(digest, result.qos_violations);
  return digest;
}

FleetConfig make_heterogeneous_fleet(std::size_t racks,
                                     std::size_t servers_per_rack,
                                     double cell_size_m) {
  TPCOOL_REQUIRE(racks >= 1, "fleet needs at least one rack");
  constexpr core::Approach kCycle[] = {core::Approach::kProposed,
                                       core::Approach::kSoaBalancing,
                                       core::Approach::kSoaInletFirst};
  FleetConfig config;
  config.racks.reserve(racks);
  for (std::size_t r = 0; r < racks; ++r) {
    RackSpec spec;
    spec.name = "rack" + std::to_string(r);
    spec.approach = kCycle[r % 3];
    spec.servers = servers_per_rack;
    spec.cell_size_m = cell_size_m;
    // Stagger the heat-rejection ambients so racks differ beyond their
    // approach (affects chiller COP only, never a cached solve).
    spec.chiller.ambient_c = 35.0 + 0.5 * static_cast<double>(r % 4);
    config.racks.push_back(std::move(spec));
  }
  return config;
}

}  // namespace tpcool::datacenter
