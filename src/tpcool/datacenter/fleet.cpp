#include "tpcool/datacenter/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "tpcool/datacenter/streaming.hpp"
#include "tpcool/util/error.hpp"
#include "tpcool/util/fnv.hpp"

namespace tpcool::datacenter {

void validate_fleet_config(const FleetConfig& config) {
  TPCOOL_REQUIRE(!config.racks.empty(), "fleet needs at least one rack");
  for (const RackSpec& rack : config.racks) {
    TPCOOL_REQUIRE(rack.servers >= 1, "rack needs at least one server");
    TPCOOL_REQUIRE(!rack.supply_candidates_c.empty(),
                   "rack needs supply-temperature candidates");
    TPCOOL_REQUIRE(rack.cell_size_m > 0.0, "cell size must be positive");
  }
  for (const FleetEvent& event : config.events) {
    TPCOOL_REQUIRE(event.rack < config.racks.size(),
                   "fleet event targets an unknown rack");
    TPCOOL_REQUIRE(event.time_s >= 0.0,
                   "fleet event time must be nonnegative");
    if (event.kind == FleetEventKind::kChillerDerate) {
      TPCOOL_REQUIRE(event.factor > 0.0 && event.factor <= 1.0,
                     "chiller derate factor must be in (0, 1]");
    }
  }
  // Validate the policy name at construction, not first run.
  (void)make_placement_policy(config.placement);
}

FleetModel::FleetModel(FleetConfig config) : config_(std::move(config)) {
  validate_fleet_config(config_);
}

std::size_t FleetModel::total_capacity() const noexcept {
  std::size_t capacity = 0;
  for (const RackSpec& rack : config_.racks) capacity += rack.servers;
  return capacity;
}

FleetResult FleetModel::run(
    const std::vector<workload::WorkloadTrace>& streams) {
  // The engine owns the entire interval computation (it is the one code
  // path for batch and streaming); aggregating its stream rebuilds the
  // batch result bit-for-bit.
  StreamingFleetEngine engine(config_, streams);
  FleetResultAggregator aggregator;
  engine.add_observer(aggregator);
  engine.run();
  return aggregator.take();
}

std::vector<double> fleet_interval_boundaries(
    const std::vector<workload::WorkloadTrace>& streams) {
  // Boundaries are the streams' own cumulative sums, so "is this stream
  // still active at b" compares doubles that came from the same additions
  // — exact, machine-independent arithmetic *within* a stream.  Across
  // streams, sums of nominally equal durations can disagree by ULPs
  // (0.1 + 0.2 != 0.3); exact dedupe would keep both variants and emit a
  // sliver interval between them.
  std::vector<double> boundaries{0.0};
  for (const workload::WorkloadTrace& stream : streams) {
    double end = 0.0;
    for (const workload::TracePhase& phase : stream.phases()) {
      end += phase.duration_s;
      boundaries.push_back(end);
    }
  }
  std::sort(boundaries.begin(), boundaries.end());

  // Collapse each epsilon-cluster to its LARGEST member.  Keeping the max
  // means a stream whose own cumulative sum is the smaller variant tests
  // `start >= total_duration` as finished (no resurrection for a sliver),
  // and a stream whose sum is the larger variant sees its exact own value,
  // so phase_at lands in the correct phase either way.
  constexpr double kRelEps = 1.0e-12;
  std::vector<double> deduped;
  deduped.reserve(boundaries.size());
  for (const double b : boundaries) {
    if (!deduped.empty()) {
      const double prev = deduped.back();
      const double scale = std::max({1.0, std::abs(prev), std::abs(b)});
      if (b - prev <= kRelEps * scale) {
        deduped.back() = b;  // same cluster: keep the larger variant
        continue;
      }
    }
    deduped.push_back(b);
  }
  return deduped;
}

std::uint64_t fleet_digest(const FleetResult& result) {
  using util::fnv_f64;
  using util::fnv_u64;
  std::uint64_t digest = util::kFnvOffsetBasis;
  fnv_u64(digest, result.intervals.size());
  for (const FleetInterval& interval : result.intervals) {
    fnv_f64(digest, interval.start_s);
    fnv_f64(digest, interval.duration_s);
    fnv_f64(digest, interval.it_power_w);
    fnv_f64(digest, interval.chiller_power_w);
    fnv_f64(digest, interval.pue);
    fnv_u64(digest, interval.qos_violations);
    for (const JobOutcome& job : interval.jobs) {
      fnv_u64(digest, job.stream);
      fnv_u64(digest, job.rack);
      fnv_f64(digest, job.qos_factor);
      fnv_f64(digest, job.package_power_w);
      fnv_f64(digest, job.max_supply_temp_c);
      fnv_f64(digest, job.die_max_c);
      fnv_f64(digest, job.tcase_c);
      fnv_u64(digest, job.tcase_limit_exceeded ? 1 : 0);
    }
    for (const RackInterval& rack : interval.racks) {
      fnv_u64(digest, rack.jobs);
      fnv_f64(digest, rack.it_power_w);
      fnv_f64(digest, rack.headroom_c);
      fnv_f64(digest, rack.cooling.supply_temp_c);
      fnv_f64(digest, rack.cooling.return_temp_c);
      fnv_f64(digest, rack.cooling.chiller_electrical_w);
    }
    // Controller-off intervals fold a bare 0, so uncontrolled digests are
    // a pure function of the physics fields (v1 replays keep matching).
    fnv_u64(digest, interval.control.active ? 1 : 0);
    if (interval.control.active) {
      fnv_f64(digest, interval.control.target);
      fnv_f64(digest, interval.control.error);
      for (const double bias : interval.control.rack_bias_c) {
        fnv_f64(digest, bias);
      }
    }
    fnv_u64(digest, interval.shed_streams.size());
    for (const std::size_t stream : interval.shed_streams) {
      fnv_u64(digest, stream);
    }
  }
  fnv_f64(digest, result.total_it_energy_j);
  fnv_f64(digest, result.total_chiller_energy_j);
  fnv_f64(digest, result.total_facility_energy_j);
  fnv_f64(digest, result.avg_pue);
  fnv_u64(digest, result.qos_violations);
  fnv_u64(digest, result.shed_jobs);
  return digest;
}

FleetConfig make_heterogeneous_fleet(std::size_t racks,
                                     std::size_t servers_per_rack,
                                     double cell_size_m) {
  TPCOOL_REQUIRE(racks >= 1, "fleet needs at least one rack");
  constexpr core::Approach kCycle[] = {core::Approach::kProposed,
                                       core::Approach::kSoaBalancing,
                                       core::Approach::kSoaInletFirst};
  FleetConfig config;
  config.racks.reserve(racks);
  for (std::size_t r = 0; r < racks; ++r) {
    RackSpec spec;
    spec.name = "rack" + std::to_string(r);
    spec.approach = kCycle[r % 3];
    spec.servers = servers_per_rack;
    spec.cell_size_m = cell_size_m;
    // Stagger the heat-rejection ambients so racks differ beyond their
    // approach (affects chiller COP only, never a cached solve).
    spec.chiller.ambient_c = 35.0 + 0.5 * static_cast<double>(r % 4);
    config.racks.push_back(std::move(spec));
  }
  return config;
}

}  // namespace tpcool::datacenter
