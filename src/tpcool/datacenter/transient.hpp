#pragma once
/// \file transient.hpp
/// \brief Trace-driven transient fleet engine: play whole diurnal/bursty
///        traces through the fleet with adaptive time stepping.
///
/// The steady `FleetModel` answers "where does every job run and at what
/// setpoint"; this layer answers "what does the package temperature of
/// every server actually do over the day".  It first runs the steady fleet
/// (placement, schedules, shared rack setpoints), then integrates one
/// transient *segment* per (job, interval): backward-Euler steps whose
/// length the `thermal::StepController` adapts from the step-doubling
/// error estimate, clamped by a step-to-boundary rule so every phase and
/// interval edge is hit exactly — never overshot (the TraceRunner bug this
/// engine replaces), never approached with a sliver step.  Within each
/// adaptive trial the thermosyphon boundary is converged against the
/// trial's own end state (an under-relaxed fixed point, the transient
/// analogue of `ServerModel::coupled_solve`), so the error estimate sees
/// the real segment dynamics rather than boundary-lag noise.  Thermal
/// state
/// follows the stream across intervals (the history a migrating job's
/// server accumulates); a rack move that changes the grid resets the
/// state to the start temperature.
///
/// Engine contract: segments fan out through `core::parallel_map` on
/// pooled pipelines and are memoized in the `SolveCache` under
/// `segment_request_key` — keyed on a digest of the segment's *initial
/// field*, so a chained rerun replays the whole trajectory from a warm
/// snapshot with zero misses, and results are bit-identical for any
/// thread count (`transient_digest` certifies it, like `fleet_digest`).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "tpcool/datacenter/fleet.hpp"
#include "tpcool/thermal/step_control.hpp"

namespace tpcool::datacenter {

/// Transient-engine tuning.
struct TransientEngineConfig {
  /// Adaptive step controller tuning (tolerance, dt bounds, growth caps).
  thermal::StepControlConfig step_control;
  /// > 0 selects the fixed-period baseline integrator (every step this
  /// long, final step clamped to the boundary) instead of the adaptive
  /// controller — the TraceRunner-style reference the bench compares
  /// step counts against.  0 (default) = adaptive.
  double fixed_dt_s = 0.0;
  /// Initial temperature of every stream's thermal state [°C].
  double start_temperature_c = 35.0;
};

/// Transient outcome of one (job, interval) segment.
struct TransientJobOutcome {
  std::size_t stream = 0;
  std::size_t rack = 0;
  std::string benchmark;
  double peak_tcase_c = 0.0;   ///< Max TCASE over the segment's steps.
  double peak_die_c = 0.0;     ///< Max die temperature over the segment.
  double end_tcase_c = 0.0;    ///< TCASE at the interval boundary.
  std::uint64_t steps = 0;           ///< Accepted transient steps.
  std::uint64_t rejected_steps = 0;  ///< Trials redone at a smaller dt.
  /// Transient peak TCASE exceeded the rack's limit (the trajectory-level
  /// analogue of the steady JobOutcome flag; computed outside the cached
  /// segment so limit changes do not fragment the cache).
  bool tcase_limit_exceeded = false;
};

/// One interval of the transient timeline (same boundaries as the steady
/// fleet timeline).
struct TransientInterval {
  std::size_t interval = 0;
  double start_s = 0.0;
  double duration_s = 0.0;
  std::vector<TransientJobOutcome> jobs;  ///< In stream order.
};

/// Full transient fleet outcome.
struct TransientFleetResult {
  /// The steady fleet plan the transient ran under (placement, setpoints,
  /// energy/PUE accounting).
  FleetResult steady;
  std::vector<TransientInterval> intervals;
  double duration_s = 0.0;
  double peak_tcase_c = 0.0;             ///< Fleet-wide transient peak.
  std::uint64_t total_steps = 0;
  std::uint64_t total_rejected_steps = 0;
  /// Segments whose transient peak broke their rack's TCASE limit.
  std::size_t qos_violations = 0;
};

/// Adaptive-step transient engine over a fleet.
///
/// `run` is bit-identical for any thread count: segments are fanned out
/// with fixed-grain `parallel_map`, every segment value is a pure function
/// of its cache key (cold-start integration from the keyed initial field),
/// and all cross-segment state (per-stream chaining) updates serially in
/// stream order.
class TransientFleetEngine {
 public:
  TransientFleetEngine(FleetConfig fleet, TransientEngineConfig config);

  [[nodiscard]] const TransientEngineConfig& engine_config() const noexcept {
    return config_;
  }
  [[nodiscard]] const FleetConfig& fleet_config() const noexcept {
    return fleet_.config();
  }

  /// Steady fleet pass + transient segment integration, end to end.
  [[nodiscard]] TransientFleetResult run(
      const std::vector<workload::WorkloadTrace>& streams);

 private:
  FleetModel fleet_;
  TransientEngineConfig config_;
};

/// Order-sensitive FNV-1a digest over every numeric field of the transient
/// result, including the embedded steady digest — the transient bench
/// compares runs across thread counts with this.
[[nodiscard]] std::uint64_t transient_digest(const TransientFleetResult& result);

}  // namespace tpcool::datacenter
