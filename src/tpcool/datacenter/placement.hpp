#pragma once
/// \file placement.hpp
/// \brief Fleet-level job placement: decide which rack runs an arriving
///        workload phase.  Mirrors the `mapping::MappingPolicy` shape one
///        level up — stateless, deterministic policies behind a small
///        registry — but places jobs on racks instead of threads on cores.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "tpcool/workload/benchmark.hpp"
#include "tpcool/workload/configuration.hpp"
#include "tpcool/workload/trace.hpp"

namespace tpcool::datacenter {

struct FleetConfig;  // fleet.hpp (which includes this header)

/// Everything a policy may consult about one candidate rack at dispatch
/// time.  Estimates and headrooms are deterministic functions of the fleet
/// state (see FleetModel), never of timing or thread count.
struct RackLoad {
  std::size_t rack = 0;          ///< Rack index in the fleet.
  std::size_t capacity = 0;      ///< Servers (one job per server).
  std::size_t assigned = 0;      ///< Jobs placed this interval so far.
  double est_power_w = 0.0;      ///< Sum of placed jobs' power estimates.
  /// Worst-case thermal headroom [°C] observed on this rack in the
  /// previous interval (tcase limit minus hottest server tcase at the rack
  /// setpoint); `kIdleHeadroomC` when the rack was idle or on the first
  /// interval.
  double headroom_c = 0.0;

  [[nodiscard]] bool full() const noexcept { return assigned >= capacity; }
};

/// Headroom reported for a rack with no thermal history yet.
inline constexpr double kIdleHeadroomC = 1.0e3;

/// Read-only view of the whole run, handed to lookahead policies before
/// dispatch starts: the fleet config, the input streams, and the fleet
/// interval boundaries (the streams' phase-boundary union).  All pointees
/// are owned by the engine and outlive the policy; greedy policies ignore
/// it entirely.
struct PlacementTimeline {
  const FleetConfig* config = nullptr;
  const std::vector<workload::WorkloadTrace>* streams = nullptr;
  const std::vector<double>* boundaries = nullptr;
};

/// One job awaiting placement: a stream's phase active this interval.
struct JobRequest {
  std::size_t stream = 0;        ///< Arrival order (input stream index).
  const workload::BenchmarkProfile* bench = nullptr;
  workload::QoSRequirement qos{2.0};
  /// Dispatch-time power proxy (no thermal solve): relative job weight for
  /// load-balancing policies, not a physical prediction.
  double est_power_w = 0.0;
};

/// Abstract placement policy.  `select_rack` must return the index of a
/// non-full rack and must be deterministic (ties broken by lowest rack
/// index).
///
/// Statefulness and thread safety: `select_rack` is deliberately
/// NON-const — placement is a dispatch sequence, and implementations may
/// carry per-run state from one call to the next (round-robin advances a
/// cursor).  A policy instance is therefore single-run and single-thread:
/// FleetModel builds a fresh policy for every `run` and dispatches
/// serially in stream order, and concurrent fleets must each own their
/// own instance — sharing one across runs or threads would leak dispatch
/// history between them.  Everything about the racks themselves arrives
/// through `RackLoad`.
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Called once by the engine before interval 0, with the full run
  /// timeline.  Lookahead policies precompute here; the default is a
  /// no-op, so greedy policies (and policies driven outside an engine)
  /// never depend on it being called.
  virtual void begin_run(const PlacementTimeline& timeline) {
    (void)timeline;
  }

  /// Called by the engine before each interval's dispatch sequence, with
  /// the interval index on the fleet timeline.  Default no-op.
  virtual void begin_interval(std::size_t interval) { (void)interval; }

  /// Pick a rack for `job`.  `racks` has at least one non-full entry
  /// (FleetModel throws before asking otherwise).  Non-const: may advance
  /// per-run dispatch state (see the class doc).
  [[nodiscard]] virtual std::size_t select_rack(
      const JobRequest& job, const std::vector<RackLoad>& racks) = 0;

 protected:
  /// Shared argmin scan over non-full racks: smallest `cost(rack)` wins,
  /// ties to the lowest index.  Throws PreconditionError when every rack
  /// is full.
  template <typename Cost>
  static std::size_t argmin_open_rack(const std::vector<RackLoad>& racks,
                                      Cost&& cost) {
    std::size_t best = racks.size();
    double best_cost = 0.0;
    for (const RackLoad& rack : racks) {
      if (rack.full()) continue;
      const double c = cost(rack);
      if (best == racks.size() || c < best_cost) {
        best = rack.rack;
        best_cost = c;
      }
    }
    require_open(best != racks.size());
    return best;
  }

  static void require_open(bool found);
};

/// Cycle through the racks in index order, skipping full ones.  The cursor
/// advances once per placed job across the whole run, so successive jobs
/// land on successive racks.
class RoundRobinPlacement final : public PlacementPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "round-robin"; }
  [[nodiscard]] std::size_t select_rack(
      const JobRequest& job, const std::vector<RackLoad>& racks) override;

 private:
  std::size_t cursor_ = 0;  ///< Per-run dispatch state (see base doc).
};

/// Place on the rack with the lowest accumulated estimated power this
/// interval (a classic least-loaded dispatcher on the power proxy).
class LeastPowerPlacement final : public PlacementPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "least-power"; }
  [[nodiscard]] std::size_t select_rack(
      const JobRequest& job, const std::vector<RackLoad>& racks) override;
};

/// Place on the rack with the most thermal headroom left over from the
/// previous interval; ties fall back to fewest assigned jobs, then lowest
/// index.  The order is truly lexicographic: ANY headroom difference
/// outranks the assignment count (no weighted-sum encoding, which would
/// invert the priority once headroom differences shrink below the
/// weight's resolution).
class ThermalHeadroomPlacement final : public PlacementPolicy {
 public:
  [[nodiscard]] std::string name() const override {
    return "thermal-headroom";
  }
  [[nodiscard]] std::size_t select_rack(
      const JobRequest& job, const std::vector<RackLoad>& racks) override;
};

/// MPC-style lookahead placement: scan the next W intervals of the known
/// workload timeline (`begin_run` precomputes every stream's per-interval
/// power estimate) and place each job on the rack minimizing the
/// discounted projected load over the window, scaled by a thermal-deficit
/// penalty on racks whose previous-interval headroom went negative — so
/// hot jobs steer away from racks that §V's candidate scan already proved
/// thermally inadequate for them.  Within one interval the policy
/// accumulates its own placements' future load, so the W-window cost is
/// joint across the interval's dispatch sequence, not per-job myopic.
///
/// W=1 falls back to exactly the greedy `LeastPowerPlacement` cost
/// (bitwise-identical placements, pinned in tests/datacenter_test.cpp).
/// Registry names: `"windowed"` (W = kDefaultWindow) or `"windowed:N"`.
class WindowedPlacement final : public PlacementPolicy {
 public:
  static constexpr std::size_t kDefaultWindow = 4;
  /// Geometric discount per lookahead interval.
  static constexpr double kDiscount = 0.5;
  /// Cost multiplier per °C of thermal deficit (negative headroom).
  static constexpr double kPenaltyPerDegC = 1.0;

  /// `window` >= 1; `registry_name` is echoed by `name()` so registry
  /// round trips preserve the exact spelling ("windowed", "windowed:4").
  WindowedPlacement(std::size_t window, std::string registry_name);

  [[nodiscard]] std::string name() const override { return name_; }
  void begin_run(const PlacementTimeline& timeline) override;
  void begin_interval(std::size_t interval) override;
  [[nodiscard]] std::size_t select_rack(
      const JobRequest& job, const std::vector<RackLoad>& racks) override;

  [[nodiscard]] std::size_t window() const noexcept { return window_; }

 private:
  std::size_t window_;
  std::string name_;
  std::size_t interval_ = 0;    ///< Current interval (begin_interval).
  /// Per-stream estimated power per interval, 0 when inactive
  /// ([stream][interval]; empty until begin_run).
  std::vector<std::vector<double>> stream_power_;
  /// Future load this interval's own placements already committed
  /// ([rack][lookahead w in 1..window-1]; reset each begin_interval).
  std::vector<std::vector<double>> projected_;
};

/// Registry (the `mapping::` policy-registry shape): the policy names the
/// fleet config and the datacenter bench accept.
[[nodiscard]] const std::vector<std::string>& placement_policy_names();

/// Build a policy by registry name; throws PreconditionError when unknown.
[[nodiscard]] std::unique_ptr<PlacementPolicy> make_placement_policy(
    const std::string& name);

/// The dispatch-time power proxy used for `JobRequest::est_power_w`: the
/// benchmark's full-load switching weight discounted by QoS slack.  Cheap,
/// deterministic, and monotone in how hot the job will run — sufficient
/// for load balancing; the real power comes out of the coupled solve.
[[nodiscard]] double job_power_estimate(const workload::BenchmarkProfile& bench,
                                        const workload::QoSRequirement& qos);

}  // namespace tpcool::datacenter
