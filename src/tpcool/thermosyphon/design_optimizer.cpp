#include "tpcool/thermosyphon/design_optimizer.hpp"

#include "tpcool/util/error.hpp"

namespace tpcool::thermosyphon {

DesignResult optimize_design(const DesignSearchSpace& space,
                             const DesignEvaluator& evaluate) {
  TPCOOL_REQUIRE(static_cast<bool>(evaluate), "evaluator must be callable");
  TPCOOL_REQUIRE(!space.orientations.empty() && !space.refrigerants.empty() &&
                     !space.filling_ratios.empty(),
                 "empty design search space");
  TPCOOL_REQUIRE(!space.water_temps_c.empty() &&
                     !space.water_flows_kg_h.empty(),
                 "empty operating-point search space");

  DesignResult result;
  bool have_best = false;

  // Stage 1: design-time parameters at the reference operating point
  // (nominal flow, nominal temperature — the paper's 7 kg/h @ 30 °C).
  const OperatingPoint reference{};
  for (const Orientation orientation : space.orientations) {
    for (const materials::Refrigerant* fluid : space.refrigerants) {
      for (const double fr : space.filling_ratios) {
        ThermosyphonDesign candidate = space.base;
        candidate.evaporator.orientation = orientation;
        candidate.refrigerant = fluid;
        candidate.filling_ratio = fr;

        DesignRecord record;
        record.design = candidate;
        record.op = reference;
        record.eval = evaluate(candidate, reference);
        record.feasible =
            record.eval.tcase_c <= space.tcase_limit_c &&
            !record.eval.dryout &&
            record.eval.loop_pressure_pa <= space.max_loop_pressure_pa;
        result.records.push_back(record);

        if (!record.feasible) continue;
        const bool better =
            !have_best ||
            record.eval.die_max_c < result.eval.die_max_c - 1e-9 ||
            (record.eval.die_max_c < result.eval.die_max_c + 1e-9 &&
             record.eval.die_grad_c_per_mm < result.eval.die_grad_c_per_mm);
        if (better) {
          result.design = candidate;
          result.op = reference;
          result.eval = record.eval;
          have_best = true;
        }
      }
    }
  }
  TPCOOL_REQUIRE(have_best, "no feasible thermosyphon design found");

  // Stage 2: §VI-C — the highest water temperature, then the lowest flow,
  // for which TCASE stays under the limit for the worst-case workload.
  bool op_found = false;
  for (const double t_w : space.water_temps_c) {       // preferred order
    for (const double flow : space.water_flows_kg_h) { // low flow first
      const OperatingPoint op{.water_flow_kg_h = flow, .water_inlet_c = t_w};
      DesignRecord record;
      record.design = result.design;
      record.op = op;
      record.eval = evaluate(result.design, op);
      record.feasible =
          record.eval.tcase_c <= space.tcase_limit_c &&
          !record.eval.dryout &&
          record.eval.loop_pressure_pa <= space.max_loop_pressure_pa;
      result.records.push_back(record);
      if (record.feasible) {
        result.op = op;
        result.eval = record.eval;
        op_found = true;
        break;
      }
    }
    if (op_found) break;
  }
  TPCOOL_REQUIRE(op_found, "no feasible operating point found");
  return result;
}

}  // namespace tpcool::thermosyphon
