#include "tpcool/thermosyphon/design_optimizer.hpp"

#include <cstddef>
#include <vector>

#include "tpcool/util/error.hpp"
#include "tpcool/util/parallel_map.hpp"

namespace tpcool::thermosyphon {

namespace {

/// Candidates per parallel_map chunk.  Every evaluation is a full coupled
/// solve (tens of milliseconds), so one evaluator per candidate maximizes
/// width at negligible factory overhead.  Must stay a fixed constant: chunk
/// boundaries are part of the deterministic-result contract.
constexpr std::size_t kDesignGrain = 1;

bool feasible(const DesignSearchSpace& space, const DesignEvaluation& eval) {
  return eval.tcase_c <= space.tcase_limit_c && !eval.dryout &&
         eval.loop_pressure_pa <= space.max_loop_pressure_pa;
}

/// Evaluate every (design, op) pair concurrently; records land by index, so
/// the callers' selection scans see the enumeration order at any thread
/// count.
std::vector<DesignRecord> evaluate_all(
    const DesignSearchSpace& space,
    const DesignEvaluatorFactory& make_evaluator,
    const std::vector<std::pair<ThermosyphonDesign, OperatingPoint>>&
        candidates) {
  return util::parallel_map<DesignRecord>(
      candidates.size(), kDesignGrain,
      [&](std::size_t) { return make_evaluator(); },
      [&](DesignEvaluator& evaluate, std::size_t i) {
        DesignRecord record;
        record.design = candidates[i].first;
        record.op = candidates[i].second;
        record.eval = evaluate(record.design, record.op);
        record.feasible = feasible(space, record.eval);
        return record;
      });
}

}  // namespace

DesignResult optimize_design(const DesignSearchSpace& space,
                             const DesignEvaluatorFactory& make_evaluator) {
  TPCOOL_REQUIRE(static_cast<bool>(make_evaluator),
                 "evaluator factory must be callable");
  TPCOOL_REQUIRE(!space.orientations.empty() && !space.refrigerants.empty() &&
                     !space.filling_ratios.empty(),
                 "empty design search space");
  TPCOOL_REQUIRE(!space.water_temps_c.empty() &&
                     !space.water_flows_kg_h.empty(),
                 "empty operating-point search space");

  DesignResult result;
  bool have_best = false;

  // Stage 1: design-time parameters at the reference operating point
  // (nominal flow, nominal temperature — the paper's 7 kg/h @ 30 °C).
  // All candidates are independent coupled solves: evaluate them in
  // parallel, then select serially in enumeration order (first-wins ties =
  // the serial semantics).
  const OperatingPoint reference{};
  std::vector<std::pair<ThermosyphonDesign, OperatingPoint>> stage1;
  for (const Orientation orientation : space.orientations) {
    for (const materials::Refrigerant* fluid : space.refrigerants) {
      for (const double fr : space.filling_ratios) {
        ThermosyphonDesign candidate = space.base;
        candidate.evaporator.orientation = orientation;
        candidate.refrigerant = fluid;
        candidate.filling_ratio = fr;
        stage1.emplace_back(std::move(candidate), reference);
      }
    }
  }
  result.records = evaluate_all(space, make_evaluator, stage1);
  for (const DesignRecord& record : result.records) {
    if (!record.feasible) continue;
    const bool better =
        !have_best ||
        record.eval.die_max_c < result.eval.die_max_c - 1e-9 ||
        (record.eval.die_max_c < result.eval.die_max_c + 1e-9 &&
         record.eval.die_grad_c_per_mm < result.eval.die_grad_c_per_mm);
    if (better) {
      result.design = record.design;
      result.op = reference;
      result.eval = record.eval;
      have_best = true;
    }
  }
  TPCOOL_REQUIRE(have_best, "no feasible thermosyphon design found");

  // Stage 2: §VI-C — the highest water temperature, then the lowest flow,
  // for which TCASE stays under the limit for the worst-case workload.
  // One preference row (all flows of one water temperature) evaluates in
  // parallel; the row is scanned in flow order and the search stops at the
  // first feasible row, so rows past it are never evaluated.
  bool op_found = false;
  for (const double t_w : space.water_temps_c) {  // preferred order
    std::vector<std::pair<ThermosyphonDesign, OperatingPoint>> row;
    for (const double flow : space.water_flows_kg_h) {  // low flow first
      row.emplace_back(result.design,
                       OperatingPoint{.water_flow_kg_h = flow,
                                      .water_inlet_c = t_w});
    }
    const std::vector<DesignRecord> evaluated =
        evaluate_all(space, make_evaluator, row);
    result.records.insert(result.records.end(), evaluated.begin(),
                          evaluated.end());
    for (const DesignRecord& record : evaluated) {
      if (record.feasible) {
        result.op = record.op;
        result.eval = record.eval;
        op_found = true;
        break;
      }
    }
    if (op_found) break;
  }
  TPCOOL_REQUIRE(op_found, "no feasible operating point found");
  return result;
}

DesignResult optimize_design(const DesignSearchSpace& space,
                             const DesignEvaluator& evaluate) {
  TPCOOL_REQUIRE(static_cast<bool>(evaluate), "evaluator must be callable");
  return optimize_design(space,
                         DesignEvaluatorFactory([&] { return evaluate; }));
}

}  // namespace tpcool::thermosyphon
