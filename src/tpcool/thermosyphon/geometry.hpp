#pragma once
/// \file geometry.hpp
/// \brief Evaporator micro-channel geometry and thermosyphon orientation
///        (paper §VI-A: inlet/outlet placement relative to the die).

#include <cstddef>

#include "tpcool/util/error.hpp"

namespace tpcool::thermosyphon {

/// Channel-flow orientation over the package.
///
/// - kEastWest  (paper "Design 1"): channels run west→east; the refrigerant
///   enters on the west side, over the core columns, and leaves over the
///   dead east side of the die — the flow is *eastward*.
/// - kNorthSouth (paper "Design 2"): channels run north→south with the inlet
///   on the north edge.
enum class Orientation { kEastWest, kNorthSouth };

[[nodiscard]] const char* to_string(Orientation o);

/// Micro-channel evaporator plate geometry.
struct EvaporatorGeometry {
  double footprint_width_m = 44.0e-3;   ///< E-W extent of the channel plate.
  double footprint_height_m = 42.0e-3;  ///< N-S extent.
  double channel_width_m = 0.8e-3;
  double fin_width_m = 0.4e-3;          ///< Wall between adjacent channels.
  double channel_height_m = 1.5e-3;
  Orientation orientation = Orientation::kEastWest;

  [[nodiscard]] double pitch_m() const {
    return channel_width_m + fin_width_m;
  }

  /// Number of parallel channels: transverse extent / pitch. Orientation
  /// changes the count because the plate is not square (paper §VI-A).
  [[nodiscard]] std::size_t channel_count() const {
    const double transverse = orientation == Orientation::kEastWest
                                  ? footprint_height_m
                                  : footprint_width_m;
    const auto n = static_cast<std::size_t>(transverse / pitch_m());
    TPCOOL_ENSURE(n >= 1, "footprint smaller than one channel pitch");
    return n;
  }

  /// Heated length of each channel (along-flow extent).
  [[nodiscard]] double channel_length_m() const {
    return orientation == Orientation::kEastWest ? footprint_width_m
                                                 : footprint_height_m;
  }

  /// Flow cross-section of a single channel [m²].
  [[nodiscard]] double channel_flow_area_m2() const {
    return channel_width_m * channel_height_m;
  }

  /// Hydraulic diameter of a channel [m].
  [[nodiscard]] double hydraulic_diameter_m() const {
    const double a = channel_width_m;
    const double b = channel_height_m;
    return 2.0 * a * b / (a + b);
  }

  /// Heated (base) area per metre of channel, one pitch wide — the fin
  /// efficiency is lumped into the pitch-wide footprint.
  [[nodiscard]] double heated_width_m() const { return pitch_m(); }

  void validate() const {
    TPCOOL_REQUIRE(footprint_width_m > 0 && footprint_height_m > 0,
                   "footprint must be positive");
    TPCOOL_REQUIRE(channel_width_m > 0 && channel_height_m > 0,
                   "channel section must be positive");
    TPCOOL_REQUIRE(fin_width_m >= 0, "fin width must be non-negative");
  }
};

}  // namespace tpcool::thermosyphon
