#include "tpcool/thermosyphon/condenser.hpp"

#include <cmath>

namespace tpcool::thermosyphon {

double condenser_effectiveness(const CondenserDesign& design,
                               double filling_ratio,
                               double water_capacity_w_k) {
  TPCOOL_REQUIRE(water_capacity_w_k > 0.0,
                 "water capacity rate must be positive");
  const double ntu =
      design.effective_ua_w_k(filling_ratio) / water_capacity_w_k;
  return 1.0 - std::exp(-ntu);
}

double saturation_temperature_c(const CondenserDesign& design,
                                double filling_ratio, double q_w,
                                double water_inlet_c,
                                double water_capacity_w_k) {
  TPCOOL_REQUIRE(q_w >= 0.0, "negative heat load");
  const double eff =
      condenser_effectiveness(design, filling_ratio, water_capacity_w_k);
  return water_inlet_c + q_w / (eff * water_capacity_w_k);
}

double water_outlet_c(double q_w, double water_inlet_c,
                      double water_capacity_w_k) {
  TPCOOL_REQUIRE(q_w >= 0.0, "negative heat load");
  TPCOOL_REQUIRE(water_capacity_w_k > 0.0,
                 "water capacity rate must be positive");
  return water_inlet_c + q_w / water_capacity_w_k;
}

}  // namespace tpcool::thermosyphon
