#include "tpcool/thermosyphon/channel.hpp"

#include <cmath>

#include "tpcool/thermosyphon/boiling.hpp"
#include "tpcool/util/error.hpp"
#include "tpcool/util/interp.hpp"

namespace tpcool::thermosyphon {

ChannelProfile march_channel(const ChannelConditions& conditions,
                             const EvaporatorGeometry& geometry,
                             const std::vector<double>& heat_per_segment_w) {
  TPCOOL_REQUIRE(conditions.fluid != nullptr, "channel needs a refrigerant");
  TPCOOL_REQUIRE(conditions.mass_flow_kg_s > 0.0,
                 "channel mass flow must be positive");
  TPCOOL_REQUIRE(conditions.inlet_quality >= 0.0 &&
                     conditions.inlet_quality < 1.0,
                 "inlet quality outside [0, 1)");
  TPCOOL_REQUIRE(!heat_per_segment_w.empty(), "channel needs segments");
  geometry.validate();

  const materials::Refrigerant& fluid = *conditions.fluid;
  const double h_fg = fluid.latent_heat_j_kg(conditions.t_sat_c);
  const double seg_len =
      geometry.channel_length_m() / static_cast<double>(heat_per_segment_w.size());
  const double seg_base_area = geometry.heated_width_m() * seg_len;
  const double mass_flux =
      conditions.mass_flow_kg_s / geometry.channel_flow_area_m2();

  ChannelProfile profile;
  profile.quality.reserve(heat_per_segment_w.size());
  profile.htc_w_m2k.reserve(heat_per_segment_w.size());

  const double x_dry =
      dryout_quality(conditions.filling_ratio, mass_flux);

  double x = conditions.inlet_quality;
  for (const double q_w : heat_per_segment_w) {
    TPCOOL_REQUIRE(q_w >= 0.0, "negative segment heat");
    // Quality at the segment centre, then advance across the segment.
    const double dx = q_w / (conditions.mass_flow_kg_s * h_fg);
    const double x_mid = util::clamp(x + 0.5 * dx, 0.0, 1.0);
    const double flux = q_w / seg_base_area;
    profile.quality.push_back(x_mid);
    profile.htc_w_m2k.push_back(local_htc(
        fluid, conditions.t_sat_c, x_mid, flux, mass_flux,
        conditions.filling_ratio, geometry.hydraulic_diameter_m()));
    if (x_mid > x_dry) profile.dried_out = true;
    x = util::clamp(x + dx, 0.0, 1.0);
    profile.absorbed_w += q_w;
  }
  profile.exit_quality = x;
  return profile;
}

}  // namespace tpcool::thermosyphon
