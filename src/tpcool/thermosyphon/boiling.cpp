#include "tpcool/thermosyphon/boiling.hpp"

#include <algorithm>
#include <cmath>

#include "tpcool/util/error.hpp"
#include "tpcool/util/interp.hpp"

namespace tpcool::thermosyphon {

double cooper_htc(double reduced_pressure, double molar_mass_g_mol,
                  double heat_flux_w_m2) {
  TPCOOL_REQUIRE(reduced_pressure > 0.0 && reduced_pressure < 1.0,
                 "reduced pressure outside (0, 1)");
  TPCOOL_REQUIRE(molar_mass_g_mol > 0.0, "molar mass must be positive");
  const double q = std::max(heat_flux_w_m2, 1.0e3);
  return 55.0 * std::pow(reduced_pressure, 0.12) *
         std::pow(-std::log10(reduced_pressure), -0.55) *
         std::pow(molar_mass_g_mol, -0.5) * std::pow(q, 0.67);
}

double convective_enhancement(double quality) {
  TPCOOL_REQUIRE(quality >= 0.0 && quality <= 1.0, "quality outside [0, 1]");
  // Monotone increase while wetted; calibrated so the enhancement roughly
  // doubles the nucleate HTC near x ≈ 0.6 (typical of HFC micro-channels).
  return 1.0 + 2.0 * std::pow(quality, 0.85);
}

double near_dryout_suppression(double quality, double dryout_q) {
  TPCOOL_REQUIRE(dryout_q > 0.0, "dry-out quality must be positive");
  const double r = util::clamp(quality / dryout_q, 0.0, 1.0);
  if (r <= 0.45) return 1.0;
  const double t = (r - 0.45) / 0.55;
  return 1.0 - 0.7 * t * t;
}

double dryout_quality(double filling_ratio, double mass_flux_kg_m2s) {
  TPCOOL_REQUIRE(filling_ratio > 0.0 && filling_ratio <= 1.0,
                 "filling ratio outside (0, 1]");
  TPCOOL_REQUIRE(mass_flux_kg_m2s >= 0.0, "negative mass flux");
  // Low charge starves the evaporator (earlier dry-out); more flux re-wets.
  const double base = 0.28 + 0.40 * filling_ratio;
  const double flux_bonus = 0.10 * std::min(mass_flux_kg_m2s / 200.0, 1.0);
  return util::clamp(base + flux_bonus, 0.25, 0.95);
}

double post_dryout_htc(double wet_htc_w_m2k, double quality,
                       double dryout_q) {
  TPCOOL_REQUIRE(quality >= dryout_q, "not past dry-out");
  const double decay = std::exp(-(quality - dryout_q) / 0.08);
  return std::max(wet_htc_w_m2k * decay, kVaporHtcW_m2K);
}

double single_phase_liquid_htc(const materials::Refrigerant& fluid,
                               double t_sat_c, double hydraulic_diameter_m) {
  TPCOOL_REQUIRE(hydraulic_diameter_m > 0.0, "diameter must be positive");
  constexpr double kNuLaminar = 4.36;  // constant-flux laminar duct flow
  return kNuLaminar * fluid.liquid_conductivity_w_mk(t_sat_c) /
         hydraulic_diameter_m;
}

double local_htc(const materials::Refrigerant& fluid, double t_sat_c,
                 double quality, double heat_flux_w_m2,
                 double mass_flux_kg_m2s, double filling_ratio,
                 double hydraulic_diameter_m) {
  const double q = util::clamp(quality, 0.0, 1.0);
  const double h_nucleate = cooper_htc(fluid.reduced_pressure(t_sat_c),
                                       fluid.molar_mass_g_mol(),
                                       heat_flux_w_m2);
  const double h_liquid =
      single_phase_liquid_htc(fluid, t_sat_c, hydraulic_diameter_m);
  const double x_dry = dryout_quality(filling_ratio, mass_flux_kg_m2s);
  if (q < 1e-6) {
    // Subcooled/incipient region: nucleate term blended with liquid floor.
    return std::max(h_nucleate, h_liquid);
  }
  const double h_wet = h_nucleate *
                       convective_enhancement(std::min(q, x_dry)) *
                       near_dryout_suppression(std::min(q, x_dry), x_dry);
  if (q <= x_dry) return std::max(h_wet, h_liquid);
  return post_dryout_htc(h_wet, q, x_dry);
}

}  // namespace tpcool::thermosyphon
