#pragma once
/// \file loop.hpp
/// \brief Natural-circulation (gravity-driven) loop solver: the refrigerant
///        mass flow settles where the gravity driving head of the
///        liquid/two-phase density difference balances loop friction.
///
/// This is the defining property of a thermosyphon (no pump): more heat
/// produces more vapor, a lighter riser column, and hence more driving head
/// — the flow self-scales with load (paper §III).

#include "tpcool/materials/refrigerant.hpp"

namespace tpcool::thermosyphon {

/// Loop hydraulic design parameters.
struct LoopDesign {
  double riser_height_m = 0.10;      ///< Vertical extent of the loop.
  /// Lumped friction coefficient [Pa·s²/kg²]: Δp_f = K·ṁ²/ρ_l·Φ_tp.
  /// Calibrated so the nominal design reaches ~0.4 exit quality at 80 W.
  double friction_coeff = 1.3e11;
};

/// Converged circulation state.
struct LoopState {
  double mass_flow_kg_s = 0.0;
  double exit_quality = 0.0;    ///< Loop-mean evaporator exit quality.
  double driving_pa = 0.0;      ///< Gravity head at convergence.
  double friction_pa = 0.0;     ///< Friction drop at convergence (= driving).
};

/// Homogeneous-flow void fraction at a vapor quality.
[[nodiscard]] double void_fraction(const materials::Refrigerant& fluid,
                                   double t_sat_c, double quality);

/// Mean riser mixture density [kg/m³] at a vapor quality.
[[nodiscard]] double riser_density_kg_m3(const materials::Refrigerant& fluid,
                                         double t_sat_c, double quality);

/// Solve the circulation balance for total evaporator load `q_total_w` at
/// saturation temperature `t_sat_c`. The filling ratio scales the available
/// liquid head (an undercharged loop has a shorter downcomer column).
[[nodiscard]] LoopState solve_loop(const materials::Refrigerant& fluid,
                                   double t_sat_c, double q_total_w,
                                   double filling_ratio,
                                   const LoopDesign& design = {});

}  // namespace tpcool::thermosyphon
