#include "tpcool/thermosyphon/thermosyphon.hpp"

#include <cmath>

#include "tpcool/thermosyphon/boiling.hpp"
#include "tpcool/util/error.hpp"

namespace tpcool::thermosyphon {

Thermosyphon::Thermosyphon(ThermosyphonDesign design, floorplan::GridSpec grid,
                           floorplan::Rect footprint)
    : design_(std::move(design)), grid_(grid), footprint_(footprint) {
  TPCOOL_REQUIRE(design_.refrigerant != nullptr, "design needs a refrigerant");
  TPCOOL_REQUIRE(footprint_.valid(), "invalid footprint");
  design_.evaporator.validate();
  TPCOOL_REQUIRE(design_.filling_ratio > 0.0 && design_.filling_ratio <= 1.0,
                 "filling ratio outside (0, 1]");
  // The geometry's footprint must match the rectangle the stack reserved.
  TPCOOL_REQUIRE(
      std::abs(design_.evaporator.footprint_width_m - footprint_.width()) <
              1e-6 &&
          std::abs(design_.evaporator.footprint_height_m -
                   footprint_.height()) < 1e-6,
      "evaporator geometry footprint does not match the stack footprint");

  n_channels_ = design_.evaporator.channel_count();

  // Segments follow the grid so each cell maps to exactly one segment.
  const bool east_west =
      design_.evaporator.orientation == Orientation::kEastWest;
  const double along = east_west ? footprint_.width() : footprint_.height();
  const double pitch = east_west ? grid_.dx : grid_.dy;
  n_segments_ = static_cast<std::size_t>(std::ceil(along / pitch));
  TPCOOL_ENSURE(n_segments_ >= 2, "footprint spans too few grid cells");
}

std::optional<Thermosyphon::CellRoute> Thermosyphon::route(
    std::size_t ix, std::size_t iy) const {
  const floorplan::Rect cell = grid_.cell_rect(ix, iy);
  const double cx = cell.center_x();
  const double cy = cell.center_y();
  if (!footprint_.contains(cx, cy)) return std::nullopt;

  const bool east_west =
      design_.evaporator.orientation == Orientation::kEastWest;
  const double pitch = design_.evaporator.pitch_m();

  // Transverse coordinate picks the channel; clamp the fringe cells beyond
  // the last full pitch into the last channel.
  const double transverse = east_west ? cy - footprint_.y0 : cx - footprint_.x0;
  auto channel = static_cast<std::size_t>(transverse / pitch);
  if (channel >= n_channels_) channel = n_channels_ - 1;

  // Along-flow coordinate picks the segment. Design 1 flows eastward (inlet
  // on the west); design 2 flows southward (inlet on the north).
  double along_frac;
  if (east_west) {
    along_frac = (cx - footprint_.x0) / footprint_.width();
  } else {
    along_frac = (footprint_.y1 - cy) / footprint_.height();
  }
  auto segment = static_cast<std::size_t>(
      along_frac * static_cast<double>(n_segments_));
  if (segment >= n_segments_) segment = n_segments_ - 1;
  return CellRoute{channel, segment};
}

ThermosyphonState Thermosyphon::solve(const util::Grid2D<double>& heat_w,
                                      const OperatingPoint& op) const {
  TPCOOL_REQUIRE(heat_w.nx() == grid_.nx && heat_w.ny() == grid_.ny,
                 "heat map grid mismatch");
  TPCOOL_REQUIRE(op.water_flow_kg_h > 0.0, "water flow must be positive");

  ThermosyphonState state;
  state.htc_map = util::Grid2D<double>(grid_.nx, grid_.ny, 0.0);
  state.fluid_temp_map = util::Grid2D<double>(grid_.nx, grid_.ny, 0.0);

  // 1. Total load and condenser balance -> saturation temperature.
  double q_total = 0.0;
  for (std::size_t iy = 0; iy < grid_.ny; ++iy) {
    for (std::size_t ix = 0; ix < grid_.nx; ++ix) {
      const double q = heat_w(ix, iy);
      if (q == 0.0) continue;
      TPCOOL_REQUIRE(q >= 0.0, "negative cell heat");
      TPCOOL_REQUIRE(route(ix, iy).has_value(),
                     "heat assigned outside the evaporator footprint");
      q_total += q;
    }
  }
  state.q_total_w = q_total;

  const double c_w =
      materials::water_capacity_rate_w_k(op.water_flow_kg_h, op.water_inlet_c);
  state.t_sat_c =
      saturation_temperature_c(design_.condenser, design_.filling_ratio,
                               q_total, op.water_inlet_c, c_w);
  state.water_outlet_c = water_outlet_c(q_total, op.water_inlet_c, c_w);

  // 2. Natural-circulation mass flow at this saturation state.
  const LoopState loop = solve_loop(*design_.refrigerant, state.t_sat_c,
                                    q_total, design_.filling_ratio,
                                    design_.loop);
  state.refrigerant_flow_kg_s = loop.mass_flow_kg_s;
  state.loop_exit_quality = loop.exit_quality;

  // 3. Distribute cell heat into per-channel segment arrays (inlet→outlet).
  std::vector<std::vector<double>> channel_heat(
      n_channels_, std::vector<double>(n_segments_, 0.0));
  for (std::size_t iy = 0; iy < grid_.ny; ++iy) {
    for (std::size_t ix = 0; ix < grid_.nx; ++ix) {
      const double q = heat_w(ix, iy);
      if (q <= 0.0) continue;
      const auto r = route(ix, iy);
      channel_heat[r->channel][r->segment] += q;
    }
  }

  // 4. March every channel with an equal share of the loop flow (parallel
  //    channels fed from a common header).
  state.channels.resize(n_channels_);
  std::vector<ChannelProfile> profiles(n_channels_);
  if (q_total > 1e-9 && loop.mass_flow_kg_s > 0.0) {
    const double m_ch =
        loop.mass_flow_kg_s / static_cast<double>(n_channels_);
    ChannelConditions cond;
    cond.fluid = design_.refrigerant;
    cond.t_sat_c = state.t_sat_c;
    cond.mass_flow_kg_s = m_ch;
    cond.filling_ratio = design_.filling_ratio;
    for (std::size_t ch = 0; ch < n_channels_; ++ch) {
      profiles[ch] =
          march_channel(cond, design_.evaporator, channel_heat[ch]);
      state.channels[ch].exit_quality = profiles[ch].exit_quality;
      state.channels[ch].absorbed_w = profiles[ch].absorbed_w;
      state.channels[ch].dried_out = profiles[ch].dried_out;
      state.any_dryout = state.any_dryout || profiles[ch].dried_out;
    }
  }

  // 5. Paint the HTC and fluid-temperature maps.
  for (std::size_t iy = 0; iy < grid_.ny; ++iy) {
    for (std::size_t ix = 0; ix < grid_.nx; ++ix) {
      const auto r = route(ix, iy);
      if (!r.has_value()) continue;
      state.fluid_temp_map(ix, iy) = state.t_sat_c;
      if (q_total > 1e-9 && loop.mass_flow_kg_s > 0.0) {
        state.htc_map(ix, iy) = profiles[r->channel].htc_w_m2k[r->segment];
      } else {
        // Idle loop: stagnant liquid pool convection.
        state.htc_map(ix, iy) = single_phase_liquid_htc(
            *design_.refrigerant, state.t_sat_c,
            design_.evaporator.hydraulic_diameter_m());
      }
    }
  }
  return state;
}

}  // namespace tpcool::thermosyphon
