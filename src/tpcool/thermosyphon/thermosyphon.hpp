#pragma once
/// \file thermosyphon.hpp
/// \brief The complete two-phase thermosyphon model: given a heat map into
///        the evaporator and a coolant operating point, compute the loop
///        state and the per-cell heat-transfer coefficient map that the
///        thermal solver uses as its top boundary condition.

#include <vector>

#include "tpcool/floorplan/power_map.hpp"
#include "tpcool/materials/refrigerant.hpp"
#include "tpcool/materials/water.hpp"
#include "tpcool/thermosyphon/channel.hpp"
#include "tpcool/thermosyphon/condenser.hpp"
#include "tpcool/thermosyphon/geometry.hpp"
#include "tpcool/thermosyphon/loop.hpp"
#include "tpcool/util/grid2d.hpp"

namespace tpcool::thermosyphon {

/// Design-time parameters (fixed once the device is manufactured, §VI).
struct ThermosyphonDesign {
  EvaporatorGeometry evaporator;
  const materials::Refrigerant* refrigerant = &materials::r236fa();
  double filling_ratio = 0.55;   ///< Paper's selected charge for R236fa.
  CondenserDesign condenser;
  LoopDesign loop;
};

/// Runtime-adjustable parameters (valve + chiller setpoint, §VI-C).
struct OperatingPoint {
  double water_flow_kg_h = 7.0;   ///< Paper's design flow rate.
  double water_inlet_c = 30.0;    ///< Paper's design water temperature.
};

/// Per-channel diagnostic after a solve.
struct ChannelSummary {
  double exit_quality = 0.0;
  double absorbed_w = 0.0;
  bool dried_out = false;
};

/// Converged thermosyphon state for one heat map.
struct ThermosyphonState {
  double t_sat_c = 0.0;                ///< Loop saturation temperature.
  double refrigerant_flow_kg_s = 0.0;
  double loop_exit_quality = 0.0;
  double water_outlet_c = 0.0;
  double q_total_w = 0.0;
  util::Grid2D<double> htc_map;        ///< Per-cell top HTC [W/m²K].
  util::Grid2D<double> fluid_temp_map; ///< Per-cell fluid temperature [°C].
  std::vector<ChannelSummary> channels;
  bool any_dryout = false;
};

/// Thermosyphon bound to a thermal-grid footprint.
///
/// Construction fixes the design, the package-plane grid, and the evaporator
/// footprint rectangle (package coordinates). `solve()` may then be called
/// with any heat map on that grid.
class Thermosyphon {
 public:
  Thermosyphon(ThermosyphonDesign design, floorplan::GridSpec grid,
               floorplan::Rect footprint);

  [[nodiscard]] const ThermosyphonDesign& design() const noexcept {
    return design_;
  }
  [[nodiscard]] const floorplan::Rect& footprint() const noexcept {
    return footprint_;
  }

  /// Solve the loop for `heat_w` (W per grid cell entering the evaporator;
  /// cells outside the footprint must carry no heat).
  [[nodiscard]] ThermosyphonState solve(const util::Grid2D<double>& heat_w,
                                        const OperatingPoint& op) const;

 private:
  struct CellRoute {
    std::size_t channel;
    std::size_t segment;
  };
  /// Channel/segment of a cell, or nullopt when outside the footprint.
  [[nodiscard]] std::optional<CellRoute> route(std::size_t ix,
                                               std::size_t iy) const;

  ThermosyphonDesign design_;
  floorplan::GridSpec grid_;
  floorplan::Rect footprint_;
  std::size_t n_channels_;
  std::size_t n_segments_;
};

}  // namespace tpcool::thermosyphon
