#pragma once
/// \file boiling.hpp
/// \brief Flow-boiling heat-transfer correlations for the micro-channel
///        evaporator: Cooper pool-boiling nucleate term, convective
///        enhancement with vapor quality, and dry-out degradation.
///
/// These give the two-phase transfer function the mapping strategy exploits:
/// HTC rises with quality while wetted, then collapses past the dry-out
/// quality — so a channel that absorbs the heat of two active cores reaches
/// dry-out and forms a hot spot (paper §VII).

#include "tpcool/materials/refrigerant.hpp"

namespace tpcool::thermosyphon {

/// Cooper (1984) nucleate pool-boiling HTC [W/(m²·K)]:
///   h = 55 · p_r^0.12 · (−log10 p_r)^−0.55 · M^−0.5 · q''^0.67
/// \param reduced_pressure p_sat/p_crit in (0, 1).
/// \param molar_mass_g_mol fluid molar mass [g/mol].
/// \param heat_flux_w_m2 wall heat flux [W/m²]; floored at 1 kW/m².
[[nodiscard]] double cooper_htc(double reduced_pressure,
                                double molar_mass_g_mol,
                                double heat_flux_w_m2);

/// Convective-boiling enhancement factor E(x) ≥ 1 applied to the nucleate
/// term while the wall is wetted (x < x_dry).
[[nodiscard]] double convective_enhancement(double quality);

/// Partial-dryout suppression S(x/x_dry) ∈ (0, 1]: thin-film breakdown
/// degrades the wetted HTC as the quality approaches dry-out (before the
/// full post-dry-out collapse). S = 1 below 65 % of x_dry, falling to 0.3
/// at x = x_dry.
[[nodiscard]] double near_dryout_suppression(double quality,
                                             double dryout_quality);

/// Dry-out quality threshold as a function of filling ratio and channel
/// mass flux G [kg/(m²·s)]: low fill or low flux dries out earlier.
[[nodiscard]] double dryout_quality(double filling_ratio,
                                    double mass_flux_kg_m2s);

/// Post-dry-out HTC decay: multiplies the wetted HTC by a factor that decays
/// exponentially past x_dry, floored at the vapor-phase convection HTC.
[[nodiscard]] double post_dryout_htc(double wet_htc_w_m2k, double quality,
                                     double dryout_quality);

/// Single-phase liquid laminar convection HTC in the channel (Nu = 4.36).
[[nodiscard]] double single_phase_liquid_htc(
    const materials::Refrigerant& fluid, double t_sat_c,
    double hydraulic_diameter_m);

/// Mist/vapor-phase convection floor after complete dry-out [W/(m²·K)]
/// (micro-channel mist flow retains a few kW/m²K of droplet cooling).
inline constexpr double kVaporHtcW_m2K = 4000.0;

/// Local two-phase HTC combining all regimes.
[[nodiscard]] double local_htc(const materials::Refrigerant& fluid,
                               double t_sat_c, double quality,
                               double heat_flux_w_m2, double mass_flux_kg_m2s,
                               double filling_ratio,
                               double hydraulic_diameter_m);

}  // namespace tpcool::thermosyphon
