#pragma once
/// \file condenser.hpp
/// \brief Water-cooled micro-condenser: ε-NTU model relating the loop
///        saturation temperature to the coolant inlet temperature and flow.
///
/// The condensing side is isothermal (phase change), so the effectiveness of
/// a condenser with overall conductance UA against a water stream with
/// capacity rate C_w is ε = 1 − exp(−UA/C_w), and
///   Q = ε · C_w · (T_sat − T_w,in).
/// Overcharging the loop (filling ratio ≳ 0.7) floods condenser area with
/// liquid and derates UA — one side of the filling-ratio optimum (§VI-B).

#include "tpcool/util/error.hpp"

namespace tpcool::thermosyphon {

/// Condenser design parameters.
struct CondenserDesign {
  double ua_w_k = 25.0;  ///< Overall conductance at nominal charge [W/K].

  /// Derated conductance when the charge floods the condenser.
  [[nodiscard]] double effective_ua_w_k(double filling_ratio) const {
    TPCOOL_REQUIRE(filling_ratio > 0.0 && filling_ratio <= 1.0,
                   "filling ratio outside (0, 1]");
    const double excess = filling_ratio - 0.70;
    if (excess <= 0.0) return ua_w_k;
    const double derate = 1.0 - 3.0 * excess;     // −3 %/% overcharge
    return ua_w_k * (derate < 0.20 ? 0.20 : derate);
  }
};

/// Effectiveness against a water stream with capacity rate C_w [W/K].
[[nodiscard]] double condenser_effectiveness(const CondenserDesign& design,
                                             double filling_ratio,
                                             double water_capacity_w_k);

/// Saturation temperature [°C] required to reject `q_w` into water entering
/// at `water_inlet_c` with capacity rate `water_capacity_w_k`.
[[nodiscard]] double saturation_temperature_c(const CondenserDesign& design,
                                              double filling_ratio,
                                              double q_w,
                                              double water_inlet_c,
                                              double water_capacity_w_k);

/// Water outlet temperature [°C] after absorbing `q_w`.
[[nodiscard]] double water_outlet_c(double q_w, double water_inlet_c,
                                    double water_capacity_w_k);

}  // namespace tpcool::thermosyphon
