#pragma once
/// \file design_optimizer.hpp
/// \brief Workload- and platform-aware thermosyphon design optimization
///        (paper §VI): orientation, refrigerant, filling ratio, and the
///        water operating point, all driven by the worst-case workload.
///
/// The optimizer is substrate-agnostic: it enumerates candidates and asks a
/// caller-provided evaluator (typically `core::ServerModel` running the
/// worst-case workload through the coupled thermal/thermosyphon solve) for
/// the resulting TCASE / hot-spot / gradient figures.

#include <functional>
#include <vector>

#include "tpcool/thermosyphon/thermosyphon.hpp"

namespace tpcool::thermosyphon {

/// Thermal outcome of evaluating one (design, operating-point) pair under
/// the worst-case workload.
struct DesignEvaluation {
  double tcase_c = 0.0;         ///< Centre-of-spreader case temperature.
  double die_max_c = 0.0;       ///< Die hot spot θmax.
  double die_grad_c_per_mm = 0.0;
  bool dryout = false;          ///< Any evaporator channel dried out.
  /// Loop saturation pressure at the converged operating state [Pa];
  /// 0 when the evaluator does not report it (pressure is unconstrained).
  double loop_pressure_pa = 0.0;
};

/// Evaluator callback provided by the system layer.
using DesignEvaluator = std::function<DesignEvaluation(
    const ThermosyphonDesign&, const OperatingPoint&)>;

/// Factory producing one evaluator per parallel chunk.  The optimizer fans
/// candidate evaluations out over the global thread pool; evaluators built
/// by one factory call are never invoked concurrently with each other, so
/// a factory that builds a fresh ServerModel per call makes any evaluator
/// state thread-safe by construction.
using DesignEvaluatorFactory = std::function<DesignEvaluator()>;

/// Search-space and constraints.
struct DesignSearchSpace {
  std::vector<Orientation> orientations{Orientation::kEastWest,
                                        Orientation::kNorthSouth};
  std::vector<const materials::Refrigerant*> refrigerants{
      &materials::r236fa(), &materials::r134a(), &materials::r245fa()};
  std::vector<double> filling_ratios{0.35, 0.45, 0.55, 0.65, 0.75};
  /// Candidate water inlet temperatures [°C], preferred high-to-low (§VI-C:
  /// highest feasible temperature wins).
  std::vector<double> water_temps_c{40.0, 35.0, 30.0, 25.0, 20.0, 15.0};
  /// Candidate water flow rates [kg/h], preferred low-to-high.
  std::vector<double> water_flows_kg_h{4.0, 7.0, 10.0, 14.0, 20.0};
  double tcase_limit_c = 85.0;   ///< TCASE_MAX of the platform.
  /// Maximum allowed loop pressure [Pa]: the micro-scale shell is a
  /// low-pressure vessel, which rules out high-pressure fluids like R134a.
  double max_loop_pressure_pa = 1.0e6;
  ThermosyphonDesign base;       ///< Geometry/condenser/loop template.
};

/// One evaluated candidate (kept for the ablation benches).
struct DesignRecord {
  ThermosyphonDesign design;
  OperatingPoint op;
  DesignEvaluation eval;
  bool feasible = false;
};

/// Optimization result.
struct DesignResult {
  ThermosyphonDesign design;
  OperatingPoint op;
  DesignEvaluation eval;
  std::vector<DesignRecord> records;  ///< Every candidate evaluated.
};

/// Run the two-stage optimization of §VI:
///  1. at the reference operating point, pick the feasible
///     (orientation, refrigerant, filling ratio) with the lowest die hot
///     spot (ties: lower gradient);
///  2. for that design, pick the highest water temperature and then the
///     lowest flow rate that keep TCASE under the limit without dry-out.
/// Throws PreconditionError when no candidate is feasible.
///
/// Evaluations fan out over the global thread pool (util::parallel_map):
/// stage 1 evaluates all candidates concurrently and selects with a serial
/// first-wins scan in enumeration order; stage 2 evaluates one preference
/// row (all flow rates of a water temperature) at a time and scans it in
/// flow order, stopping at the first feasible row.  Selection scans run on
/// index-addressed results, so the outcome — including `records`, which
/// holds stage 1 plus every row up to and including the first feasible one
/// — is bit-identical for any thread count.
[[nodiscard]] DesignResult optimize_design(
    const DesignSearchSpace& space, const DesignEvaluatorFactory& make_evaluator);

/// Convenience overload: every chunk gets its own copy of `evaluate`.
/// Copies of one std::function still share anything the callable captured
/// by reference or pointer, and the copies run concurrently — so the
/// evaluator must be reentrant (e.g. a stateless lambda building a fresh
/// ServerModel per call), and state captured by value does not accumulate
/// across candidates.  Pass a factory when either matters.
[[nodiscard]] DesignResult optimize_design(const DesignSearchSpace& space,
                                           const DesignEvaluator& evaluate);

}  // namespace tpcool::thermosyphon
