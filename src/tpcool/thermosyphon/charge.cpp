#include "tpcool/thermosyphon/charge.hpp"

#include <numbers>

#include "tpcool/util/error.hpp"

namespace tpcool::thermosyphon {

LoopVolumes compute_volumes(const EvaporatorGeometry& geometry,
                            double riser_height_m, double pipe_diameter_m,
                            double condenser_volume_m3) {
  geometry.validate();
  TPCOOL_REQUIRE(riser_height_m > 0.0 && pipe_diameter_m > 0.0 &&
                     condenser_volume_m3 > 0.0,
                 "invalid loop dimensions");
  LoopVolumes volumes;
  volumes.evaporator_m3 = static_cast<double>(geometry.channel_count()) *
                          geometry.channel_flow_area_m2() *
                          geometry.channel_length_m();
  volumes.condenser_m3 = condenser_volume_m3;
  const double pipe_area =
      std::numbers::pi * 0.25 * pipe_diameter_m * pipe_diameter_m;
  // Riser + downcomer, both spanning the loop height.
  volumes.piping_m3 = 2.0 * pipe_area * riser_height_m;
  return volumes;
}

double charge_mass_kg(const materials::Refrigerant& fluid,
                      const LoopVolumes& volumes, double filling_ratio,
                      double charge_temp_c) {
  TPCOOL_REQUIRE(filling_ratio > 0.0 && filling_ratio <= 1.0,
                 "filling ratio outside (0, 1]");
  TPCOOL_REQUIRE(volumes.total_m3() > 0.0, "empty loop volume");
  const double v_liq = volumes.total_m3() * filling_ratio;
  const double v_vap = volumes.total_m3() - v_liq;
  return v_liq * fluid.liquid_density_kg_m3(charge_temp_c) +
         v_vap * fluid.vapor_density_kg_m3(charge_temp_c);
}

double filling_ratio_of(const materials::Refrigerant& fluid,
                        const LoopVolumes& volumes, double charge_mass,
                        double charge_temp_c) {
  TPCOOL_REQUIRE(volumes.total_m3() > 0.0, "empty loop volume");
  const double rho_l = fluid.liquid_density_kg_m3(charge_temp_c);
  const double rho_v = fluid.vapor_density_kg_m3(charge_temp_c);
  // m = V·[fr·ρ_l + (1−fr)·ρ_v]  =>  fr = (m/V − ρ_v)/(ρ_l − ρ_v).
  const double fr =
      (charge_mass / volumes.total_m3() - rho_v) / (rho_l - rho_v);
  TPCOOL_REQUIRE(fr > 0.0 && fr <= 1.0,
                 "charge mass under/over-fills the loop");
  return fr;
}

}  // namespace tpcool::thermosyphon
