#include "tpcool/thermosyphon/loop.hpp"

#include <cmath>

#include "tpcool/util/error.hpp"
#include "tpcool/util/interp.hpp"
#include "tpcool/util/rootfind.hpp"

namespace tpcool::thermosyphon {

namespace {
constexpr double kGravity = 9.80665;  // m/s²
}

double void_fraction(const materials::Refrigerant& fluid, double t_sat_c,
                     double quality) {
  const double x = util::clamp(quality, 0.0, 1.0);
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double rho_ratio = fluid.vapor_density_kg_m3(t_sat_c) /
                           fluid.liquid_density_kg_m3(t_sat_c);
  return 1.0 / (1.0 + ((1.0 - x) / x) * rho_ratio);
}

double riser_density_kg_m3(const materials::Refrigerant& fluid,
                           double t_sat_c, double quality) {
  const double alpha = void_fraction(fluid, t_sat_c, quality);
  return alpha * fluid.vapor_density_kg_m3(t_sat_c) +
         (1.0 - alpha) * fluid.liquid_density_kg_m3(t_sat_c);
}

LoopState solve_loop(const materials::Refrigerant& fluid, double t_sat_c,
                     double q_total_w, double filling_ratio,
                     const LoopDesign& design) {
  TPCOOL_REQUIRE(q_total_w >= 0.0, "negative heat load");
  TPCOOL_REQUIRE(filling_ratio > 0.0 && filling_ratio <= 1.0,
                 "filling ratio outside (0, 1]");
  TPCOOL_REQUIRE(design.riser_height_m > 0.0 && design.friction_coeff > 0.0,
                 "invalid loop design");

  const double h_fg = fluid.latent_heat_j_kg(t_sat_c);
  const double rho_l = fluid.liquid_density_kg_m3(t_sat_c);
  const double rho_v = fluid.vapor_density_kg_m3(t_sat_c);

  LoopState state;
  if (q_total_w < 1e-9) {
    // No load: no vapor, no circulation.
    return state;
  }

  // Undercharge shortens the liquid downcomer column that drives the flow.
  const double fill_factor = util::clamp(filling_ratio / 0.55, 0.30, 1.10);

  const auto exit_quality = [&](double m_dot) {
    return util::clamp(q_total_w / (m_dot * h_fg), 0.0, 1.0);
  };
  const auto imbalance = [&](double m_dot) {
    const double x = exit_quality(m_dot);
    const double drive = kGravity * design.riser_height_m *
                         (rho_l - riser_density_kg_m3(fluid, t_sat_c, x)) *
                         fill_factor;
    const double phi_tp = 1.0 + 0.25 * x * (rho_l / rho_v - 1.0);
    const double friction =
        design.friction_coeff * m_dot * m_dot / rho_l * phi_tp;
    return drive - friction;
  };

  // drive − friction is strictly decreasing in ṁ (more flow → less quality
  // → heavier riser; and more friction), so the root is unique.
  const double m_lo = 1e-7;
  double m_hi = 1.0;
  TPCOOL_ENSURE(imbalance(m_lo) > 0.0,
                "loop cannot start: no driving head at minimum flow");
  while (imbalance(m_hi) > 0.0 && m_hi < 1e3) m_hi *= 2.0;
  const double m_dot = util::bisect(imbalance, m_lo, m_hi,
                                    {.tolerance = 1e-10, .max_iterations = 200});

  state.mass_flow_kg_s = m_dot;
  state.exit_quality = exit_quality(m_dot);
  const double x = state.exit_quality;
  state.driving_pa = kGravity * design.riser_height_m *
                     (rho_l - riser_density_kg_m3(fluid, t_sat_c, x)) *
                     fill_factor;
  state.friction_pa = design.friction_coeff * m_dot * m_dot / rho_l *
                      (1.0 + 0.25 * x * (rho_l / rho_v - 1.0));
  return state;
}

}  // namespace tpcool::thermosyphon
