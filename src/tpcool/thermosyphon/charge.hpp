#pragma once
/// \file charge.hpp
/// \brief Refrigerant charge sizing: convert the filling ratio (the design
///        parameter of §VI-B, defined as the liquid-filled fraction of the
///        loop volume at rest) into the charge mass in grams for a given
///        geometry — what a lab actually loads through the charge valve.

#include "tpcool/materials/refrigerant.hpp"
#include "tpcool/thermosyphon/geometry.hpp"

namespace tpcool::thermosyphon {

/// Internal volumes of the loop [m³].
struct LoopVolumes {
  double evaporator_m3 = 0.0;  ///< All micro-channels.
  double condenser_m3 = 0.0;
  double piping_m3 = 0.0;      ///< Riser + downcomer.

  [[nodiscard]] double total_m3() const {
    return evaporator_m3 + condenser_m3 + piping_m3;
  }
};

/// Volumes from the evaporator geometry plus loop piping parameters.
/// \param riser_height_m vertical extent of the loop.
/// \param pipe_diameter_m riser/downcomer bore.
/// \param condenser_volume_m3 condenser-side internal volume.
[[nodiscard]] LoopVolumes compute_volumes(const EvaporatorGeometry& geometry,
                                          double riser_height_m = 0.10,
                                          double pipe_diameter_m = 6.0e-3,
                                          double condenser_volume_m3 = 8.0e-6);

/// Charge mass [kg] at a filling ratio: liquid fills `filling_ratio` of the
/// total volume at the charge temperature, vapor fills the rest.
[[nodiscard]] double charge_mass_kg(const materials::Refrigerant& fluid,
                                    const LoopVolumes& volumes,
                                    double filling_ratio,
                                    double charge_temp_c = 25.0);

/// Inverse: filling ratio implied by a charge mass at a temperature.
/// Throws PreconditionError when the mass over/under-fills the loop.
[[nodiscard]] double filling_ratio_of(const materials::Refrigerant& fluid,
                                      const LoopVolumes& volumes,
                                      double charge_mass_kg,
                                      double charge_temp_c = 25.0);

}  // namespace tpcool::thermosyphon
