#pragma once
/// \file channel.hpp
/// \brief 1D marching model of a single evaporator micro-channel: vapor
///        quality and local HTC along the flow direction.

#include <cstddef>
#include <vector>

#include "tpcool/materials/refrigerant.hpp"
#include "tpcool/thermosyphon/geometry.hpp"

namespace tpcool::thermosyphon {

/// Per-segment state of one channel after a march.
struct ChannelProfile {
  std::vector<double> quality;      ///< Vapor quality at segment centre.
  std::vector<double> htc_w_m2k;    ///< Local base-area HTC.
  double exit_quality = 0.0;
  bool dried_out = false;           ///< Any segment past the dry-out quality.
  double absorbed_w = 0.0;          ///< Total heat absorbed by the channel.
};

/// Inputs of a channel march.
struct ChannelConditions {
  const materials::Refrigerant* fluid = nullptr;
  double t_sat_c = 35.0;
  double mass_flow_kg_s = 1e-3;     ///< Flow through this channel.
  double inlet_quality = 0.0;       ///< Usually ~0 (saturated liquid return).
  double filling_ratio = 0.55;
};

/// March a channel through `heat_per_segment_w` (W absorbed per segment,
/// ordered inlet→outlet). Quality grows as dx = q/(ṁ·h_fg); local HTC uses
/// the flow-boiling correlations of boiling.hpp evaluated at each segment's
/// local heat flux (segment base area = heated_width × segment length).
[[nodiscard]] ChannelProfile march_channel(
    const ChannelConditions& conditions, const EvaporatorGeometry& geometry,
    const std::vector<double>& heat_per_segment_w);

}  // namespace tpcool::thermosyphon
