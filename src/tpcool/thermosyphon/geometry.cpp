#include "tpcool/thermosyphon/geometry.hpp"

namespace tpcool::thermosyphon {

const char* to_string(Orientation o) {
  switch (o) {
    case Orientation::kEastWest: return "east-west (design 1)";
    case Orientation::kNorthSouth: return "north-south (design 2)";
  }
  return "?";
}

}  // namespace tpcool::thermosyphon
