#include "tpcool/power/uncore_power.hpp"

#include "tpcool/util/error.hpp"
#include "tpcool/util/interp.hpp"

namespace tpcool::power {

double uncore_mcio_power_w(double uncore_freq_ghz) {
  TPCOOL_REQUIRE(
      uncore_freq_ghz >= kUncoreFreqMinGhz - 1e-9 &&
          uncore_freq_ghz <= kUncoreFreqMaxGhz + 1e-9,
      "uncore frequency outside 1.2-2.8 GHz");
  const double span = kUncoreFreqMaxGhz - kUncoreFreqMinGhz;
  const double frac = (uncore_freq_ghz - kUncoreFreqMinGhz) / span;
  return kUncoreStaticW + kUncoreProportionalSpanW * util::clamp(frac, 0.0, 1.0);
}

double llc_power_w(double activity) {
  TPCOOL_REQUIRE(activity >= 0.0 && activity <= 1.0,
                 "LLC activity outside [0, 1]");
  const double p = 1.0 + 1.0 * activity;
  return p > kLlcMaxW ? kLlcMaxW : p;
}

double uncore_frequency_for_core_ghz(double core_freq_ghz) {
  // Linear map of the supported core range [2.6, 3.2] onto [2.0, 2.8].
  const double frac = util::clamp((core_freq_ghz - 2.6) / 0.6, 0.0, 1.0);
  return 2.0 + 0.8 * frac;
}

double total_uncore_power_w(double uncore_freq_ghz, double llc_activity) {
  return uncore_mcio_power_w(uncore_freq_ghz) + llc_power_w(llc_activity);
}

}  // namespace tpcool::power
