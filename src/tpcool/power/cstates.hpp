#pragma once
/// \file cstates.hpp
/// \brief Idle-state (C-state) power model of the Xeon E5 v4, calibrated to
///        Table I of the paper (measurements for all 8 cores).
///
/// POLL is the default active-idle state (no wakeup latency); deeper states
/// save power but add resume latency. The workload's tolerable delay decides
/// the deepest usable state (paper §VII).

#include <string>
#include <vector>

namespace tpcool::power {

/// Idle states of the target processor. POLL/C1/C1E carry the paper's
/// Table I numbers; C3/C6 extend the model with datasheet-consistent values
/// for the deeper states the paper mentions but does not tabulate.
enum class CState { kPoll, kC1, kC1E, kC3, kC6 };

[[nodiscard]] const char* to_string(CState state);

/// All modelled C-states, shallowest first.
[[nodiscard]] const std::vector<CState>& all_cstates();

/// Resume latency [µs] (Table I "Latency" column; µs per the datasheet).
[[nodiscard]] double cstate_latency_us(CState state);

/// Idle power of ALL 8 cores [W] at a core frequency [GHz]
/// (Table I rows; linear interpolation between the three measured points;
/// C1E and deeper are frequency-independent).
[[nodiscard]] double cstate_power_all8_w(CState state, double freq_ghz);

/// Idle power of one core [W] (Table I value / 8).
[[nodiscard]] double cstate_power_per_core_w(CState state, double freq_ghz);

/// Deepest state whose resume latency does not exceed the tolerable delay.
/// Falls back to POLL when even C1's latency is too much.
[[nodiscard]] CState deepest_cstate_within(double tolerable_latency_us);

}  // namespace tpcool::power
