#include "tpcool/power/cstates.hpp"

#include "tpcool/util/error.hpp"
#include "tpcool/util/interp.hpp"

namespace tpcool::power {

const char* to_string(CState state) {
  switch (state) {
    case CState::kPoll: return "POLL";
    case CState::kC1: return "C1";
    case CState::kC1E: return "C1E";
    case CState::kC3: return "C3";
    case CState::kC6: return "C6";
  }
  return "?";
}

const std::vector<CState>& all_cstates() {
  static const std::vector<CState> states{CState::kPoll, CState::kC1,
                                          CState::kC1E, CState::kC3,
                                          CState::kC6};
  return states;
}

double cstate_latency_us(CState state) {
  switch (state) {
    case CState::kPoll: return 0.0;   // Table I
    case CState::kC1: return 2.0;     // Table I
    case CState::kC1E: return 10.0;   // Table I
    case CState::kC3: return 80.0;    // datasheet-consistent extension
    case CState::kC6: return 133.0;   // datasheet-consistent extension
  }
  TPCOOL_ENSURE(false, "unreachable C-state");
  return 0.0;
}

double cstate_power_all8_w(CState state, double freq_ghz) {
  TPCOOL_REQUIRE(freq_ghz >= 1.0 && freq_ghz <= 4.0,
                 "frequency outside model validity");
  // Table I measured points at 2.6 / 2.9 / 3.2 GHz.
  static const util::LinearTable poll{{2.6, 27.0}, {2.9, 32.0}, {3.2, 40.0}};
  static const util::LinearTable c1{{2.6, 14.0}, {2.9, 15.0}, {3.2, 17.0}};
  switch (state) {
    case CState::kPoll: return poll(freq_ghz);
    case CState::kC1: return c1(freq_ghz);
    case CState::kC1E: return 9.0;  // Table I: flat across frequency
    case CState::kC3: return 4.8;
    case CState::kC6: return 2.4;
  }
  TPCOOL_ENSURE(false, "unreachable C-state");
  return 0.0;
}

double cstate_power_per_core_w(CState state, double freq_ghz) {
  return cstate_power_all8_w(state, freq_ghz) / 8.0;
}

CState deepest_cstate_within(double tolerable_latency_us) {
  TPCOOL_REQUIRE(tolerable_latency_us >= 0.0,
                 "tolerable latency must be non-negative");
  CState best = CState::kPoll;
  for (const CState s : all_cstates()) {
    if (cstate_latency_us(s) <= tolerable_latency_us) best = s;
  }
  return best;
}

}  // namespace tpcool::power
