#pragma once
/// \file package_power.hpp
/// \brief Assemble the full package power (cores + uncore) and distribute it
///        onto the floorplan's functional units.

#include <vector>

#include "tpcool/floorplan/power_map.hpp"
#include "tpcool/power/core_power.hpp"
#include "tpcool/power/cstates.hpp"
#include "tpcool/power/uncore_power.hpp"

namespace tpcool::power {

/// One steady operating condition of the package.
struct PackagePowerRequest {
  std::vector<int> active_cores;     ///< 1-based core ids running threads.
  double c_eff_w_per_ghz_v2 = 0.45;  ///< Benchmark switching capacitance.
  double utilization = 1.0;          ///< Per-core utilization (SMT ≤ 2).
  double freq_ghz = 3.2;             ///< Core DVFS level.
  CState idle_state = CState::kPoll; ///< State of the non-active cores.
  double llc_activity = 0.5;         ///< LLC activity factor in [0, 1].
};

/// Package power split by contributor [W].
struct PackagePowerBreakdown {
  double active_cores_w = 0.0;
  double idle_cores_w = 0.0;
  double mcio_w = 0.0;  ///< Memory controller + IO subsystem.
  double llc_w = 0.0;

  [[nodiscard]] double total_w() const {
    return active_cores_w + idle_cores_w + mcio_w + llc_w;
  }
};

/// Maps operating conditions to per-unit powers of a floorplan.
/// The floorplan must outlive the model.
class PackagePowerModel {
 public:
  explicit PackagePowerModel(const floorplan::Floorplan& floorplan);

  [[nodiscard]] const floorplan::Floorplan& floorplan() const noexcept {
    return *floorplan_;
  }

  /// Aggregate power breakdown for a request.
  [[nodiscard]] PackagePowerBreakdown breakdown(
      const PackagePowerRequest& request) const;

  /// Per-unit power assignment:
  ///  - each active core gets the active-core power,
  ///  - each idle core gets its C-state share,
  ///  - the LLC unit gets the LLC power,
  ///  - MC/IO power is split between the memctrl and uncore strips by area.
  [[nodiscard]] floorplan::UnitPowers unit_powers(
      const PackagePowerRequest& request) const;

 private:
  void validate(const PackagePowerRequest& request) const;
  const floorplan::Floorplan* floorplan_;
};

}  // namespace tpcool::power
