#include "tpcool/power/package_power.hpp"

#include <algorithm>
#include <string>

#include "tpcool/util/error.hpp"

namespace tpcool::power {

PackagePowerModel::PackagePowerModel(const floorplan::Floorplan& floorplan)
    : floorplan_(&floorplan) {
  TPCOOL_REQUIRE(floorplan.core_count() > 0, "floorplan has no cores");
  TPCOOL_REQUIRE(floorplan.index_of("llc").has_value(),
                 "floorplan needs an 'llc' unit");
  TPCOOL_REQUIRE(floorplan.index_of("memctrl").has_value(),
                 "floorplan needs a 'memctrl' unit");
  TPCOOL_REQUIRE(floorplan.index_of("uncore_io").has_value(),
                 "floorplan needs an 'uncore_io' unit");
}

void PackagePowerModel::validate(const PackagePowerRequest& request) const {
  const int n = static_cast<int>(floorplan_->core_count());
  TPCOOL_REQUIRE(!request.active_cores.empty(),
                 "at least one core must be active");
  TPCOOL_REQUIRE(static_cast<int>(request.active_cores.size()) <= n,
                 "more active cores than the CPU has");
  std::vector<int> sorted = request.active_cores;
  std::sort(sorted.begin(), sorted.end());
  TPCOOL_REQUIRE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                     sorted.end(),
                 "duplicate active core id");
  for (const int id : request.active_cores) {
    TPCOOL_REQUIRE(id >= 1 && id <= n, "core id out of range");
  }
  TPCOOL_REQUIRE(is_supported_frequency(request.freq_ghz),
                 "unsupported DVFS frequency");
}

PackagePowerBreakdown PackagePowerModel::breakdown(
    const PackagePowerRequest& request) const {
  validate(request);
  PackagePowerBreakdown b;
  const auto n_active = static_cast<double>(request.active_cores.size());
  const double n_idle =
      static_cast<double>(floorplan_->core_count()) - n_active;
  b.active_cores_w =
      n_active * active_core_power_w(request.c_eff_w_per_ghz_v2,
                                     request.utilization, request.freq_ghz);
  b.idle_cores_w =
      n_idle * cstate_power_per_core_w(request.idle_state, request.freq_ghz);
  const double f_unc = uncore_frequency_for_core_ghz(request.freq_ghz);
  b.mcio_w = uncore_mcio_power_w(f_unc);
  b.llc_w = llc_power_w(request.llc_activity);
  return b;
}

floorplan::UnitPowers PackagePowerModel::unit_powers(
    const PackagePowerRequest& request) const {
  validate(request);
  floorplan::UnitPowers powers;

  const double p_active = active_core_power_w(
      request.c_eff_w_per_ghz_v2, request.utilization, request.freq_ghz);
  const double p_idle =
      cstate_power_per_core_w(request.idle_state, request.freq_ghz);

  const auto is_active = [&](int id) {
    return std::find(request.active_cores.begin(), request.active_cores.end(),
                     id) != request.active_cores.end();
  };
  for (const floorplan::CoreSite& site : floorplan_->cores()) {
    powers["core" + std::to_string(site.core_id)] =
        is_active(site.core_id) ? p_active : p_idle;
  }

  powers["llc"] = llc_power_w(request.llc_activity);

  const double mcio =
      uncore_mcio_power_w(uncore_frequency_for_core_ghz(request.freq_ghz));
  const double a_mem = floorplan_->unit("memctrl").rect.area();
  const double a_unc = floorplan_->unit("uncore_io").rect.area();
  powers["memctrl"] = mcio * a_mem / (a_mem + a_unc);
  powers["uncore_io"] = mcio * a_unc / (a_mem + a_unc);
  return powers;
}

}  // namespace tpcool::power
