#include "tpcool/power/core_power.hpp"

#include <cmath>

#include "tpcool/util/error.hpp"

namespace tpcool::power {

const std::vector<double>& core_frequency_levels() {
  static const std::vector<double> levels{2.6, 2.9, 3.2};
  return levels;
}

bool is_supported_frequency(double freq_ghz) {
  for (const double f : core_frequency_levels()) {
    if (std::abs(f - freq_ghz) < 1e-9) return true;
  }
  return false;
}

double core_voltage_v(double freq_ghz) {
  TPCOOL_REQUIRE(is_supported_frequency(freq_ghz),
                 "unsupported DVFS frequency");
  if (std::abs(freq_ghz - 2.6) < 1e-9) return 0.90;
  if (std::abs(freq_ghz - 2.9) < 1e-9) return 1.00;
  return 1.10;  // 3.2 GHz
}

double dynamic_core_power_w(double c_eff_w_per_ghz_v2, double utilization,
                            double freq_ghz) {
  TPCOOL_REQUIRE(c_eff_w_per_ghz_v2 >= 0.0, "negative switching capacitance");
  TPCOOL_REQUIRE(utilization > 0.0 && utilization <= 2.0,
                 "utilization outside (0, 2]");
  const double v = core_voltage_v(freq_ghz);
  return c_eff_w_per_ghz_v2 * utilization * freq_ghz * v * v;
}

double active_core_power_w(double c_eff_w_per_ghz_v2, double utilization,
                           double freq_ghz) {
  return cstate_power_per_core_w(CState::kPoll, freq_ghz) +
         dynamic_core_power_w(c_eff_w_per_ghz_v2, utilization, freq_ghz);
}

}  // namespace tpcool::power
