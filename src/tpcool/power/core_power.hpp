#pragma once
/// \file core_power.hpp
/// \brief Active-core power model: per-benchmark switching capacitance with
///        f·V² dynamic scaling on top of the POLL floor.
///
/// The paper measures per-benchmark dynamic power with RAPL at three
/// frequency levels (§IV-C1). We reproduce that table analytically:
///   P_core(bench, f, u) = P_POLL,core(f) + C_eff · u · f · V(f)²
/// where u is the per-core utilization (1-thread vs 2-thread SMT) and V(f)
/// the DVFS voltage level.

#include "tpcool/power/cstates.hpp"

namespace tpcool::power {

/// Supported DVFS core-frequency levels [GHz] (paper §IV-C1).
[[nodiscard]] const std::vector<double>& core_frequency_levels();

/// Whether `freq_ghz` is one of the supported DVFS levels.
[[nodiscard]] bool is_supported_frequency(double freq_ghz);

/// DVFS voltage [V] at a supported frequency level.
[[nodiscard]] double core_voltage_v(double freq_ghz);

/// Active-core power [W] for a benchmark with effective switching
/// capacitance `c_eff_w_per_ghz_v2` and utilization `utilization` in (0, 2].
[[nodiscard]] double active_core_power_w(double c_eff_w_per_ghz_v2,
                                         double utilization, double freq_ghz);

/// Dynamic-only component of the above [W].
[[nodiscard]] double dynamic_core_power_w(double c_eff_w_per_ghz_v2,
                                          double utilization, double freq_ghz);

}  // namespace tpcool::power
