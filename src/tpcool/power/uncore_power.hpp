#pragma once
/// \file uncore_power.hpp
/// \brief Uncore power model (paper §IV-C2): LLC plus memory controller / IO
///        subsystem with a static and a frequency-proportional component.

namespace tpcool::power {

/// Uncore frequency bounds [GHz] (paper: 1.2–2.8 GHz).
inline constexpr double kUncoreFreqMinGhz = 1.2;
inline constexpr double kUncoreFreqMaxGhz = 2.8;

/// Static memory-controller/IO overhead, present at all operating points.
inline constexpr double kUncoreStaticW = 9.0;

/// Variation from minimum to maximum uncore frequency (paper: 8 W).
inline constexpr double kUncoreProportionalSpanW = 8.0;

/// Worst-case LLC power for the full 25 MB capacity (paper: 2 W).
inline constexpr double kLlcMaxW = 2.0;

/// Memory-controller + IO power [W] at an uncore frequency [GHz].
[[nodiscard]] double uncore_mcio_power_w(double uncore_freq_ghz);

/// LLC power [W] given an activity factor in [0, 1]; 1 W static + up to 1 W
/// dynamic, capped at the paper's 2 W worst case.
[[nodiscard]] double llc_power_w(double activity);

/// Uncore frequency paired with a core DVFS level: the governor scales the
/// uncore clock linearly with the core clock (2.6 GHz -> 2.0, 3.2 -> 2.8).
[[nodiscard]] double uncore_frequency_for_core_ghz(double core_freq_ghz);

/// Total uncore power [W] (MC/IO + LLC).
[[nodiscard]] double total_uncore_power_w(double uncore_freq_ghz,
                                          double llc_activity);

}  // namespace tpcool::power
