#include "tpcool/floorplan/xeon_e5.hpp"

#include <string>

#include "tpcool/util/error.hpp"

namespace tpcool::floorplan {

const XeonE5Geometry& xeon_e5_geometry() {
  static const XeonE5Geometry g{};
  return g;
}

Floorplan make_xeon_e5_floorplan(const XeonE5Geometry& geometry) {
  TPCOOL_REQUIRE(geometry.core_count == 8 && geometry.core_rows == 4 &&
                     geometry.core_columns == 2,
                 "the Fig. 2c builder models the 8-core LCC die");

  const double w = geometry.die_width_m;
  const double h = geometry.die_height_m;

  // South strips (full die width).
  const double uncore_h = 1.0e-3;   // queue / uncore / IO controller
  const double memctl_h = 0.8e-3;   // memory controller
  const double body_y0 = uncore_h + memctl_h;

  // Core columns on the west side.
  const double core_w = 4.2e-3;
  const double body_h = h - body_y0;          // 11.4 mm
  const double slot_h = body_h / 5.0;         // 4 cores + 1 reserved slot

  std::vector<Unit> units;

  const auto add_column = [&](int column, int first_core_id) {
    const double x0 = column * core_w;
    const double x1 = x0 + core_w;
    // Row 0 is the northernmost core; the reserved slot sits at the bottom.
    for (int row = 0; row < 4; ++row) {
      const double y1 = h - row * slot_h;
      const double y0 = y1 - slot_h;
      const int id = first_core_id + row;
      units.push_back(Unit{"core" + std::to_string(id), UnitType::kCore,
                           Rect{x0, y0, x1, y1}, id});
    }
    units.push_back(Unit{"reserved_col" + std::to_string(column),
                         UnitType::kReserved,
                         Rect{x0, body_y0, x1, body_y0 + slot_h}, 0});
  };

  // Paper numbering (Fig. 2c): west column holds cores 5..8 top-to-bottom,
  // the next column holds cores 1..4.
  add_column(0, 5);
  add_column(1, 1);

  // LLC block east of the cores.
  const double llc_x0 = 2.0 * core_w;           // 8.4 mm
  const double llc_x1 = 15.0e-3;
  units.push_back(Unit{"llc", UnitType::kCache,
                       Rect{llc_x0, body_y0, llc_x1, h}, 0});

  // Dead area on the far east of the die ("produces no power", §VI-A).
  units.push_back(Unit{"reserved_east", UnitType::kReserved,
                       Rect{llc_x1, body_y0, w, h}, 0});

  // South strips.
  units.push_back(Unit{"memctrl", UnitType::kMemoryController,
                       Rect{0.0, uncore_h, w, body_y0}, 0});
  units.push_back(Unit{"uncore_io", UnitType::kUncore,
                       Rect{0.0, 0.0, w, uncore_h}, 0});

  return Floorplan(w, h, std::move(units));
}

}  // namespace tpcool::floorplan
