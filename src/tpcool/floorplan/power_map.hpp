#pragma once
/// \file power_map.hpp
/// \brief Rasterization of per-unit powers onto a regular 2D grid
///        (the thermal solver's source layer).

#include <map>
#include <string>

#include "tpcool/floorplan/floorplan.hpp"
#include "tpcool/util/grid2d.hpp"

namespace tpcool::floorplan {

/// Regular 2D grid specification in package coordinates [m].
struct GridSpec {
  double x0 = 0.0;  ///< South-west corner of the grid.
  double y0 = 0.0;
  double dx = 1e-3; ///< Cell pitch.
  double dy = 1e-3;
  std::size_t nx = 0;
  std::size_t ny = 0;

  [[nodiscard]] double width() const { return dx * static_cast<double>(nx); }
  [[nodiscard]] double height() const { return dy * static_cast<double>(ny); }
  [[nodiscard]] double cell_area() const { return dx * dy; }
  [[nodiscard]] Rect cell_rect(std::size_t ix, std::size_t iy) const {
    const double cx0 = x0 + static_cast<double>(ix) * dx;
    const double cy0 = y0 + static_cast<double>(iy) * dy;
    return Rect{cx0, cy0, cx0 + dx, cy0 + dy};
  }
};

/// Per-unit power assignment [W], keyed by unit name. Units without an entry
/// dissipate zero.
using UnitPowers = std::map<std::string, double>;

/// Rasterize unit powers onto the grid: each unit's power is distributed over
/// the cells it overlaps, proportionally to the overlap area (power per cell
/// in watts, not a density).  `die_offset_*` translates the floorplan into
/// package coordinates (the die is centred on the package).
/// Total power is conserved exactly when the die lies inside the grid.
[[nodiscard]] util::Grid2D<double> rasterize_power(
    const Floorplan& floorplan, const UnitPowers& powers, const GridSpec& grid,
    double die_offset_x, double die_offset_y);

/// Sum of all unit powers [W].
[[nodiscard]] double total_power(const UnitPowers& powers);

}  // namespace tpcool::floorplan
