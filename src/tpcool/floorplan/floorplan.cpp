#include "tpcool/floorplan/floorplan.hpp"

#include <algorithm>
#include <cmath>

#include "tpcool/util/error.hpp"

namespace tpcool::floorplan {

double Rect::overlap_area(const Rect& other) const {
  const double w = std::min(x1, other.x1) - std::max(x0, other.x0);
  const double h = std::min(y1, other.y1) - std::max(y0, other.y0);
  if (w <= 0.0 || h <= 0.0) return 0.0;
  return w * h;
}

const char* to_string(UnitType type) {
  switch (type) {
    case UnitType::kCore: return "core";
    case UnitType::kCache: return "cache";
    case UnitType::kMemoryController: return "memctrl";
    case UnitType::kUncore: return "uncore";
    case UnitType::kReserved: return "reserved";
  }
  return "?";
}

Floorplan::Floorplan(double die_width, double die_height,
                     std::vector<Unit> units)
    : die_width_(die_width), die_height_(die_height), units_(std::move(units)) {
  TPCOOL_REQUIRE(die_width > 0.0 && die_height > 0.0,
                 "die dimensions must be positive");
  TPCOOL_REQUIRE(!units_.empty(), "floorplan needs at least one unit");

  const Rect outline{0.0, 0.0, die_width_, die_height_};
  constexpr double kTol = 1e-12;  // m² — overlap tolerance for shared edges.

  for (std::size_t i = 0; i < units_.size(); ++i) {
    const Unit& u = units_[i];
    TPCOOL_REQUIRE(u.rect.valid(), "unit '" + u.name + "' has invalid rect");
    TPCOOL_REQUIRE(!u.name.empty(), "unit name must be non-empty");
    TPCOOL_REQUIRE(
        std::abs(u.rect.overlap_area(outline) - u.rect.area()) < kTol,
        "unit '" + u.name + "' extends beyond the die outline");
    for (std::size_t j = i + 1; j < units_.size(); ++j) {
      TPCOOL_REQUIRE(u.rect.overlap_area(units_[j].rect) < kTol,
                     "units '" + u.name + "' and '" + units_[j].name +
                         "' overlap");
      TPCOOL_REQUIRE(u.name != units_[j].name,
                     "duplicate unit name '" + u.name + "'");
    }
  }

  // Collect core sites and derive their grid coordinates from geometry:
  // columns by distinct x-centers (west first), rows by y-center descending
  // (north row = row 0).
  std::vector<const Unit*> core_units;
  for (const Unit& u : units_) {
    if (u.type == UnitType::kCore) {
      TPCOOL_REQUIRE(u.core_id >= 1, "core '" + u.name + "' needs core_id >= 1");
      core_units.push_back(&u);
    }
  }
  std::vector<double> xs, ys;
  for (const Unit* u : core_units) {
    xs.push_back(u->rect.center_x());
    ys.push_back(u->rect.center_y());
  }
  const auto distinct = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end(),
                        [](double a, double b) { return std::abs(a - b) < 1e-6; }),
            v.end());
    return v;
  };
  const std::vector<double> cols = distinct(xs);
  std::vector<double> rows = distinct(ys);
  std::reverse(rows.begin(), rows.end());  // north first

  for (const Unit* u : core_units) {
    CoreSite site;
    site.core_id = u->core_id;
    site.rect = u->rect;
    for (std::size_t c = 0; c < cols.size(); ++c) {
      if (std::abs(u->rect.center_x() - cols[c]) < 1e-6)
        site.column = static_cast<int>(c);
    }
    for (std::size_t r = 0; r < rows.size(); ++r) {
      if (std::abs(u->rect.center_y() - rows[r]) < 1e-6)
        site.row = static_cast<int>(r);
    }
    cores_.push_back(site);
  }
  std::sort(cores_.begin(), cores_.end(),
            [](const CoreSite& a, const CoreSite& b) {
              return a.core_id < b.core_id;
            });
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    TPCOOL_REQUIRE(cores_[i].core_id == static_cast<int>(i) + 1,
                   "core ids must be contiguous starting at 1");
  }
}

std::vector<const Unit*> Floorplan::units_of(UnitType type) const {
  std::vector<const Unit*> out;
  for (const Unit& u : units_) {
    if (u.type == type) out.push_back(&u);
  }
  return out;
}

std::optional<std::size_t> Floorplan::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < units_.size(); ++i) {
    if (units_[i].name == name) return i;
  }
  return std::nullopt;
}

const Unit& Floorplan::unit(const std::string& name) const {
  const auto idx = index_of(name);
  TPCOOL_REQUIRE(idx.has_value(), "no unit named '" + name + "'");
  return units_[*idx];
}

const CoreSite& Floorplan::core(int core_id) const {
  TPCOOL_REQUIRE(core_id >= 1 && core_id <= static_cast<int>(cores_.size()),
                 "core id out of range");
  return cores_[static_cast<std::size_t>(core_id - 1)];
}

double Floorplan::coverage() const {
  double covered = 0.0;
  for (const Unit& u : units_) covered += u.rect.area();
  return covered / die_area();
}

}  // namespace tpcool::floorplan
