#pragma once
/// \file xeon_e5.hpp
/// \brief Intel Xeon E5 v4 (Broadwell-EP, 8-core LCC) die floorplan used by
///        the paper (Fig. 2c) and its package geometry.

#include "tpcool/floorplan/floorplan.hpp"

namespace tpcool::floorplan {

/// Geometry constants of the modelled platform.
struct XeonE5Geometry {
  double die_width_m = 18.6e-3;   ///< Die is 18.6 × 13.2 mm ≈ 246 mm².
  double die_height_m = 13.2e-3;
  double package_width_m = 45.0e-3;   ///< LGA2011-3 package outline.
  double package_height_m = 42.5e-3;
  int core_count = 8;
  int core_rows = 4;     ///< Cores arranged 2 columns × 4 rows.
  int core_columns = 2;
};

/// Build the Fig. 2c floorplan:
///  - two western columns of four cores each (Core5..8 west, Core1..4 east
///    of them), with a fused-off "reserved" core slot at the bottom of each
///    column (the die is a derated deca-core design),
///  - the 25 MB LLC block east of the cores,
///  - a dead (reserved) region on the far east of the die,
///  - memory-controller and queue/uncore/IO strips along the south edge.
[[nodiscard]] Floorplan make_xeon_e5_floorplan(
    const XeonE5Geometry& geometry = {});

/// Default geometry accessor (shared by server builders and tests).
[[nodiscard]] const XeonE5Geometry& xeon_e5_geometry();

}  // namespace tpcool::floorplan
