#pragma once
/// \file floorplan.hpp
/// \brief Die floorplan representation: rectangles, functional units, and a
///        validated container with geometric queries.
///
/// Coordinates are in metres, origin at the die's south-west corner, x
/// growing east and y growing north (matching Fig. 2c of the paper when the
/// die shot is viewed with the core columns on the west side).

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace tpcool::floorplan {

/// Axis-aligned rectangle [x0, x1) × [y0, y1), in metres.
struct Rect {
  double x0 = 0.0, y0 = 0.0, x1 = 0.0, y1 = 0.0;

  [[nodiscard]] double width() const { return x1 - x0; }
  [[nodiscard]] double height() const { return y1 - y0; }
  [[nodiscard]] double area() const { return width() * height(); }
  [[nodiscard]] double center_x() const { return 0.5 * (x0 + x1); }
  [[nodiscard]] double center_y() const { return 0.5 * (y0 + y1); }

  [[nodiscard]] bool contains(double x, double y) const {
    return x >= x0 && x < x1 && y >= y0 && y < y1;
  }

  /// Area of the intersection with another rectangle (0 if disjoint).
  [[nodiscard]] double overlap_area(const Rect& other) const;

  /// Rectangle translated by (dx, dy).
  [[nodiscard]] Rect translated(double dx, double dy) const {
    return {x0 + dx, y0 + dy, x1 + dx, y1 + dy};
  }

  [[nodiscard]] bool valid() const { return x1 > x0 && y1 > y0; }
};

/// Functional-unit class, which determines how power is assigned.
enum class UnitType {
  kCore,              ///< Core + private L1/L2 (dynamic + C-state power).
  kCache,             ///< Last-level cache.
  kMemoryController,  ///< Memory controller strip.
  kUncore,            ///< Queue, uncore, IO controller strip.
  kReserved,          ///< Fused-off / dead area (zero power).
};

[[nodiscard]] const char* to_string(UnitType type);

/// A named functional unit of the die.
struct Unit {
  std::string name;
  UnitType type = UnitType::kReserved;
  Rect rect;
  /// For cores: 1-based core id matching the paper's numbering; 0 otherwise.
  int core_id = 0;
};

/// Position of a core in the regular core grid (2 columns × 4 rows on
/// Broadwell-EP).  Row 0 is the northernmost row; column 0 is the west one.
struct CoreSite {
  int core_id = 0;
  int column = 0;
  int row = 0;
  Rect rect;
};

/// Validated floorplan: units must be pairwise non-overlapping and inside
/// the die outline.
class Floorplan {
 public:
  /// \param die_width/die_height die outline [m].
  /// \param units functional units; validated on construction.
  Floorplan(double die_width, double die_height, std::vector<Unit> units);

  [[nodiscard]] double die_width() const noexcept { return die_width_; }
  [[nodiscard]] double die_height() const noexcept { return die_height_; }
  [[nodiscard]] double die_area() const noexcept {
    return die_width_ * die_height_;
  }

  [[nodiscard]] const std::vector<Unit>& units() const noexcept {
    return units_;
  }

  /// Units of a given type, in declaration order.
  [[nodiscard]] std::vector<const Unit*> units_of(UnitType type) const;

  /// Lookup by name; nullopt when absent.
  [[nodiscard]] std::optional<std::size_t> index_of(
      const std::string& name) const;

  [[nodiscard]] const Unit& unit(const std::string& name) const;

  /// Core sites sorted by core_id (1-based ids, contiguous).
  [[nodiscard]] const std::vector<CoreSite>& cores() const noexcept {
    return cores_;
  }
  [[nodiscard]] std::size_t core_count() const noexcept {
    return cores_.size();
  }
  [[nodiscard]] const CoreSite& core(int core_id) const;

  /// Fraction of the die outline covered by units (1.0 = fully tiled).
  [[nodiscard]] double coverage() const;

 private:
  double die_width_;
  double die_height_;
  std::vector<Unit> units_;
  std::vector<CoreSite> cores_;
};

}  // namespace tpcool::floorplan
