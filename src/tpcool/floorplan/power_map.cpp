#include "tpcool/floorplan/power_map.hpp"

#include <algorithm>
#include <cmath>

#include "tpcool/util/error.hpp"

namespace tpcool::floorplan {

util::Grid2D<double> rasterize_power(const Floorplan& floorplan,
                                     const UnitPowers& powers,
                                     const GridSpec& grid, double die_offset_x,
                                     double die_offset_y) {
  TPCOOL_REQUIRE(grid.nx > 0 && grid.ny > 0, "grid must be non-empty");
  TPCOOL_REQUIRE(grid.dx > 0 && grid.dy > 0, "grid pitch must be positive");
  util::Grid2D<double> out(grid.nx, grid.ny, 0.0);

  for (const auto& [name, watts] : powers) {
    if (watts == 0.0) continue;
    TPCOOL_REQUIRE(watts >= 0.0, "negative power for unit '" + name + "'");
    const Unit& unit = floorplan.unit(name);
    const Rect r = unit.rect.translated(die_offset_x, die_offset_y);

    // Index range of cells potentially overlapped by the unit.
    const auto clamp_idx = [](double v, std::size_t n) {
      if (v < 0.0) return std::size_t{0};
      const auto i = static_cast<std::size_t>(v);
      return std::min(i, n == 0 ? std::size_t{0} : n - 1);
    };
    const std::size_t ix0 = clamp_idx(std::floor((r.x0 - grid.x0) / grid.dx), grid.nx);
    const std::size_t ix1 = clamp_idx(std::ceil((r.x1 - grid.x0) / grid.dx), grid.nx);
    const std::size_t iy0 = clamp_idx(std::floor((r.y0 - grid.y0) / grid.dy), grid.ny);
    const std::size_t iy1 = clamp_idx(std::ceil((r.y1 - grid.y0) / grid.dy), grid.ny);

    const double unit_area = r.area();
    TPCOOL_ENSURE(unit_area > 0.0, "unit with zero area");
    double assigned = 0.0;
    for (std::size_t iy = iy0; iy <= iy1; ++iy) {
      for (std::size_t ix = ix0; ix <= ix1; ++ix) {
        const double overlap = r.overlap_area(grid.cell_rect(ix, iy));
        if (overlap <= 0.0) continue;
        const double share = watts * overlap / unit_area;
        out(ix, iy) += share;
        assigned += share;
      }
    }
    TPCOOL_ENSURE(assigned <= watts * (1.0 + 1e-9),
                  "rasterization over-assigned power");
    // `assigned < watts` only if the unit sticks out of the grid; the server
    // builder guarantees the die is inside, so enforce conservation here.
    TPCOOL_ENSURE(assigned >= watts * (1.0 - 1e-9),
                  "unit '" + name + "' extends beyond the thermal grid");
  }
  return out;
}

double total_power(const UnitPowers& powers) {
  double total = 0.0;
  for (const auto& [name, watts] : powers) total += watts;
  return total;
}

}  // namespace tpcool::floorplan
