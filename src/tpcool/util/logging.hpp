#pragma once
/// \file logging.hpp
/// \brief Minimal leveled logger. Quiet by default so tests and benches stay
///        clean; verbose levels help when debugging solver convergence.
///
/// The initial threshold comes from the `TPCOOL_LOG_LEVEL` environment
/// variable when set (`error`/`warn`/`info`/`debug`, case-insensitive, or
/// the numeric values 0-3); otherwise it is `warn`.  `set_log_level`
/// overrides it at any time.

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace tpcool::util {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Global log threshold; messages above it are discarded.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Parse a TPCOOL_LOG_LEVEL value: a level name (`error`, `warn`, `info`,
/// `debug`, case-insensitive) or its numeric value (`0`-`3`).  Returns
/// nullopt on anything else (the caller keeps the current level).
[[nodiscard]] std::optional<LogLevel> parse_log_level(std::string_view text);

/// Emit a message at the given level (to stderr).
void log(LogLevel level, const std::string& message);

namespace detail {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

inline detail::LogStream log_error() { return detail::LogStream(LogLevel::kError); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::kWarn); }
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::kInfo); }
inline detail::LogStream log_debug() { return detail::LogStream(LogLevel::kDebug); }

}  // namespace tpcool::util
