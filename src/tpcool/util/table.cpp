#include "tpcool/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "tpcool/util/error.hpp"

namespace tpcool::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  TPCOOL_REQUIRE(!header_.empty(), "table needs at least one column");
}

void TablePrinter::add_row(std::vector<std::string> row) {
  TPCOOL_REQUIRE(row.size() == header_.size(),
                 "table row arity does not match header");
  rows_.push_back(std::move(row));
}

std::string TablePrinter::fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

void TablePrinter::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      if (c + 1 != row.size()) out << "   ";
    }
    out << '\n';
  };
  print_row(header_);
  std::vector<std::string> rule(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    rule[c] = std::string(widths[c], '-');
  }
  print_row(rule);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace tpcool::util
