#include "tpcool/util/logging.hpp"

#include <atomic>
#include <iostream>

namespace tpcool::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) > static_cast<int>(g_level.load())) return;
  if (message.empty()) return;
  std::cerr << "[tpcool:" << level_name(level) << "] " << message << '\n';
}

}  // namespace tpcool::util
