#include "tpcool/util/logging.hpp"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <iostream>

namespace tpcool::util {

namespace {

LogLevel initial_level() {
  if (const char* env = std::getenv("TPCOOL_LOG_LEVEL");
      env != nullptr && *env != '\0') {
    if (const auto parsed = parse_log_level(env)) return *parsed;
    // Can't use the logger here (it's being initialized); warn directly.
    std::cerr << "[tpcool:WARN] ignoring unrecognized TPCOOL_LOG_LEVEL=\""
              << env << "\" (want error|warn|info|debug or 0-3)\n";
  }
  return LogLevel::kWarn;
}

/// Lazily initialized so the env var is read on first logger use, whatever
/// static-initialization order the program has.
std::atomic<LogLevel>& level_slot() {
  static std::atomic<LogLevel> level{initial_level()};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}
}  // namespace

std::optional<LogLevel> parse_log_level(std::string_view text) {
  std::string lower;
  lower.reserve(text.size());
  for (const char c : text) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "error" || lower == "0") return LogLevel::kError;
  if (lower == "warn" || lower == "warning" || lower == "1") return LogLevel::kWarn;
  if (lower == "info" || lower == "2") return LogLevel::kInfo;
  if (lower == "debug" || lower == "3") return LogLevel::kDebug;
  return std::nullopt;
}

void set_log_level(LogLevel level) { level_slot().store(level); }

LogLevel log_level() { return level_slot().load(); }

void log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) > static_cast<int>(level_slot().load())) return;
  if (message.empty()) return;
  std::cerr << "[tpcool:" << level_name(level) << "] " << message << '\n';
}

}  // namespace tpcool::util
