#pragma once
/// \file table.hpp
/// \brief Console table printer used by the bench harness to print the
///        paper's tables with aligned columns.

#include <ostream>
#include <string>
#include <vector>

namespace tpcool::util {

/// Accumulates rows of strings and prints them with aligned columns and an
/// underlined header, e.g.
///
///   Approach   QoS   Die θmax   Die ∇θmax
///   --------   ---   --------   ---------
///   Proposed   1x    78.3       0.90
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Append a data row; must match the header arity.
  void add_row(std::vector<std::string> row);

  /// Convenience for mixed string/double rows: doubles are formatted with
  /// the given precision.
  static std::string fmt(double value, int precision = 2);

  void print(std::ostream& out) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tpcool::util
