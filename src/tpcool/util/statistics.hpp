#pragma once
/// \file statistics.hpp
/// \brief Descriptive statistics over value spans (thermal-metric helpers).

#include <cstddef>
#include <span>
#include <vector>

namespace tpcool::util {

/// Summary statistics of a sample.
struct Summary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< Population standard deviation.
  std::size_t count = 0;
};

/// Compute summary statistics; requires a non-empty span.
[[nodiscard]] Summary summarize(std::span<const double> values);

/// p-th percentile (0..100) by linear interpolation on the sorted sample.
[[nodiscard]] double percentile(std::span<const double> values, double p);

/// Arithmetic mean; requires a non-empty span.
[[nodiscard]] double mean(std::span<const double> values);

}  // namespace tpcool::util
