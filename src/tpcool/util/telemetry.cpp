#include "tpcool/util/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>

#include "tpcool/util/error.hpp"
#include "tpcool/util/logging.hpp"

namespace tpcool::util {

namespace telemetry_detail {

/// One finished span, POD so ring writes are a plain struct copy.  Name and
/// arg-key pointers are required to have static storage duration (the
/// TraceSpan contract), so storing the pointers is safe past thread death.
struct SpanSlot {
  const char* name = nullptr;
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;
  int arg_count = 0;
  const char* arg_keys[TraceSpan::kMaxArgs] = {};
  double arg_values[TraceSpan::kMaxArgs] = {};
  char detail[TraceSpan::kMaxDetail + 1] = {};
};

/// Single-producer bounded span buffer.  Only the owning thread writes;
/// `count` is published with release so exporters (acquire) always see a
/// fully written prefix.  Full buffer drops the new span (keeping the
/// recorded prefix nesting-consistent) and counts the loss.
struct ThreadRing {
  ThreadRing(std::uint32_t tid_in, std::size_t capacity) : tid(tid_in) {
    slots.resize(capacity);
  }

  void push(const SpanSlot& slot, std::size_t desired_capacity) {
    const std::uint64_t n = count.load(std::memory_order_relaxed);
    // Capacity changes (enable() with a new config) apply on the next
    // write to an *empty* ring — resizing a published prefix would race
    // with exporters, so after recording starts the size is pinned until
    // reset().
    if (n == 0 && slots.size() != desired_capacity) {
      slots.clear();
      slots.resize(desired_capacity);
    }
    if (n >= slots.size()) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    slots[n] = slot;
    count.store(n + 1, std::memory_order_release);
  }

  std::uint32_t tid;
  std::vector<SpanSlot> slots;
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> dropped{0};
};

namespace {

/// Raw steady_clock reading, in ns.
std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The enable()/reset() epoch all span timestamps are relative to.
std::atomic<std::int64_t> g_epoch_ns{0};

/// Histogram bucket for `value`: smallest k with 2^k >= value (0 for
/// value <= 1), clamped to the last bucket.
std::size_t bucket_index(double value) {
  if (!(value > 1.0)) return 0;
  int k = std::ilogb(value);
  if (std::ldexp(1.0, k) < value) ++k;
  return std::min<std::size_t>(static_cast<std::size_t>(k),
                               TelemetryHistogram::kBuckets - 1);
}

void atomic_min(std::atomic<double>& cell, double value) {
  double cur = cell.load(std::memory_order_relaxed);
  while (value < cur &&
         !cell.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& cell, double value) {
  double cur = cell.load(std::memory_order_relaxed);
  while (value > cur &&
         !cell.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

// --- JSON emission helpers (mirrors the hand-rolled writers in the bench
// layer; no JSON dependency in the library). ---

void json_escape(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void json_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "0";
    return;
  }
  char buf[32];
  // Shortest round-trippable form; integral values print without exponent.
  if (value == static_cast<double>(static_cast<std::int64_t>(value)) &&
      std::abs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<std::int64_t>(value)));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  }
  out += buf;
}

/// Microseconds with ns resolution, the Chrome trace time unit.
void json_us(std::string& out, std::int64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  out += buf;
}

void append_metrics_json(std::string& out, const MetricsSnapshot& snap,
                         const char* indent) {
  const std::string pad = indent;
  out += "{\n";
  out += pad;
  out += "  \"schema\": \"tpcool-metrics-v1\",\n";
  out += pad;
  out += "  \"spans\": ";
  json_number(out, static_cast<double>(snap.spans));
  out += ",\n";
  out += pad;
  out += "  \"dropped_spans\": ";
  json_number(out, static_cast<double>(snap.dropped_spans));
  out += ",\n";
  out += pad;
  out += "  \"threads\": ";
  json_number(out, static_cast<double>(snap.threads));
  out += ",\n";

  out += pad;
  out += "  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    out += i ? ", " : "";
    out += '"';
    json_escape(out, snap.counters[i].first);
    out += "\": ";
    json_number(out, snap.counters[i].second);
  }
  out += "},\n";

  out += pad;
  out += "  \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    out += i ? ", " : "";
    out += '"';
    json_escape(out, snap.gauges[i].first);
    out += "\": ";
    json_number(out, snap.gauges[i].second);
  }
  out += "},\n";

  out += pad;
  out += "  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& [name, h] = snap.histograms[i];
    out += i ? ", " : "";
    out += '"';
    json_escape(out, name);
    out += "\": {\"count\": ";
    json_number(out, static_cast<double>(h.count));
    out += ", \"sum\": ";
    json_number(out, h.sum);
    out += ", \"min\": ";
    json_number(out, h.min);
    out += ", \"max\": ";
    json_number(out, h.max);
    out += ", \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      out += b ? ", " : "";
      out += '[';
      json_number(out, h.buckets[b].first);
      out += ", ";
      json_number(out, static_cast<double>(h.buckets[b].second));
      out += ']';
    }
    out += "]}";
  }
  out += "}\n";
  out += pad;
  out += "}";
}

void write_file_or_throw(const std::string& path, const std::string& body,
                         const char* what) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw PreconditionError("telemetry: cannot open " + std::string(what) +
                            " file for writing: " + path);
  }
  out << body;
  out.flush();
  if (!out) {
    throw PreconditionError("telemetry: write failed for " +
                            std::string(what) + " file: " + path);
  }
}

}  // namespace
}  // namespace telemetry_detail

void TelemetryHistogram::record(double value) noexcept {
  if (!telemetry_enabled()) return;
  buckets_[telemetry_detail::bucket_index(value)].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  telemetry_detail::atomic_min(min_, value);
  telemetry_detail::atomic_max(max_, value);
}

struct Telemetry::Impl {
  mutable std::mutex mutex;
  // Node-based maps: cell addresses are stable for the process lifetime.
  std::map<std::string, std::unique_ptr<TelemetryCounter>, std::less<>>
      counters;
  std::map<std::string, std::unique_ptr<TelemetryGauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<TelemetryHistogram>, std::less<>>
      histograms;
  std::vector<std::shared_ptr<telemetry_detail::ThreadRing>> rings;
  std::uint32_t next_tid = 0;
  std::atomic<std::size_t> ring_capacity{TelemetryConfig{}.ring_capacity};
};

Telemetry::Telemetry() : impl_(new Impl) {}

Telemetry& Telemetry::instance() {
  // Leaky singleton: never destroyed, so spans recorded from static
  // destructors or the atexit exporter are safe.  Still-reachable, so
  // LeakSanitizer stays quiet.
  static Telemetry* const singleton = new Telemetry;
  return *singleton;
}

void Telemetry::enable(const TelemetryConfig& config) {
  impl_->ring_capacity.store(std::max<std::size_t>(config.ring_capacity, 1),
                             std::memory_order_relaxed);
  const bool was_enabled =
      telemetry_detail::g_enabled.exchange(true, std::memory_order_relaxed);
  if (!was_enabled) {
    telemetry_detail::g_epoch_ns.store(telemetry_detail::steady_now_ns(),
                                       std::memory_order_relaxed);
  }
}

void Telemetry::disable() {
  telemetry_detail::g_enabled.store(false, std::memory_order_relaxed);
}

void Telemetry::reset() {
  std::lock_guard lock(impl_->mutex);
  for (auto& [name, cell] : impl_->counters) {
    cell->value_.store(0.0, std::memory_order_relaxed);
  }
  for (auto& [name, cell] : impl_->gauges) {
    cell->value_.store(0.0, std::memory_order_relaxed);
  }
  for (auto& [name, cell] : impl_->histograms) {
    for (auto& bucket : cell->buckets_) {
      bucket.store(0, std::memory_order_relaxed);
    }
    cell->count_.store(0, std::memory_order_relaxed);
    cell->sum_.store(0.0, std::memory_order_relaxed);
    cell->min_.store(std::numeric_limits<double>::infinity(),
                     std::memory_order_relaxed);
    cell->max_.store(-std::numeric_limits<double>::infinity(),
                     std::memory_order_relaxed);
  }
  for (auto& ring : impl_->rings) {
    ring->count.store(0, std::memory_order_relaxed);
    ring->dropped.store(0, std::memory_order_relaxed);
  }
  telemetry_detail::g_epoch_ns.store(telemetry_detail::steady_now_ns(),
                                     std::memory_order_relaxed);
}

TelemetryCounter& Telemetry::counter(std::string_view name) {
  std::lock_guard lock(impl_->mutex);
  auto it = impl_->counters.find(name);
  if (it == impl_->counters.end()) {
    it = impl_->counters
             .emplace(std::string(name), std::make_unique<TelemetryCounter>())
             .first;
  }
  return *it->second;
}

TelemetryGauge& Telemetry::gauge(std::string_view name) {
  std::lock_guard lock(impl_->mutex);
  auto it = impl_->gauges.find(name);
  if (it == impl_->gauges.end()) {
    it = impl_->gauges
             .emplace(std::string(name), std::make_unique<TelemetryGauge>())
             .first;
  }
  return *it->second;
}

TelemetryHistogram& Telemetry::histogram(std::string_view name) {
  std::lock_guard lock(impl_->mutex);
  auto it = impl_->histograms.find(name);
  if (it == impl_->histograms.end()) {
    it = impl_->histograms
             .emplace(std::string(name), std::make_unique<TelemetryHistogram>())
             .first;
  }
  return *it->second;
}

void Telemetry::counter_add(std::string_view name, double delta) {
  if (!telemetry_enabled()) return;
  counter(name).add(delta);
}

void Telemetry::gauge_set(std::string_view name, double value) {
  if (!telemetry_enabled()) return;
  gauge(name).set(value);
}

void Telemetry::histogram_record(std::string_view name, double value) {
  if (!telemetry_enabled()) return;
  histogram(name).record(value);
}

telemetry_detail::ThreadRing& Telemetry::local_ring() {
  thread_local std::shared_ptr<telemetry_detail::ThreadRing> ring;
  if (!ring) {
    std::lock_guard lock(impl_->mutex);
    ring = std::make_shared<telemetry_detail::ThreadRing>(
        impl_->next_tid++, impl_->ring_capacity.load(std::memory_order_relaxed));
    // The registry keeps rings alive past thread death (ThreadPool workers
    // die on every resize) so their spans survive until export.
    impl_->rings.push_back(ring);
  }
  return *ring;
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  telemetry_detail::SpanSlot slot;
  slot.name = name_;
  slot.start_ns = start_ns_;
  slot.dur_ns = std::max<std::int64_t>(Telemetry::now_ns() - start_ns_, 0);
  slot.arg_count = arg_count_;
  for (int i = 0; i < arg_count_; ++i) {
    slot.arg_keys[i] = arg_keys_[i];
    slot.arg_values[i] = arg_values_[i];
  }
  std::memcpy(slot.detail, detail_, sizeof(slot.detail));
  Telemetry& telemetry = Telemetry::instance();
  telemetry.local_ring().push(
      slot, telemetry.impl_->ring_capacity.load(std::memory_order_relaxed));
}

void TraceSpan::detail(std::string_view text) noexcept {
  if (!active_) return;
  const std::size_t n = std::min(text.size(), kMaxDetail);
  std::memcpy(detail_, text.data(), n);
  detail_[n] = '\0';
}

std::int64_t Telemetry::now_ns() {
  return telemetry_detail::steady_now_ns() -
         telemetry_detail::g_epoch_ns.load(std::memory_order_relaxed);
}

MetricsSnapshot Telemetry::metrics() const {
  std::lock_guard lock(impl_->mutex);
  MetricsSnapshot snap;
  snap.counters.reserve(impl_->counters.size());
  for (const auto& [name, cell] : impl_->counters) {
    snap.counters.emplace_back(name, cell->value());
  }
  snap.gauges.reserve(impl_->gauges.size());
  for (const auto& [name, cell] : impl_->gauges) {
    snap.gauges.emplace_back(name, cell->value());
  }
  snap.histograms.reserve(impl_->histograms.size());
  for (const auto& [name, cell] : impl_->histograms) {
    MetricsSnapshot::Histogram h;
    h.count = cell->count_.load(std::memory_order_relaxed);
    h.sum = cell->sum_.load(std::memory_order_relaxed);
    if (h.count > 0) {
      h.min = cell->min_.load(std::memory_order_relaxed);
      h.max = cell->max_.load(std::memory_order_relaxed);
    }
    for (std::size_t b = 0; b < TelemetryHistogram::kBuckets; ++b) {
      const std::uint64_t n = cell->buckets_[b].load(std::memory_order_relaxed);
      if (n > 0) {
        h.buckets.emplace_back(std::ldexp(1.0, static_cast<int>(b)), n);
      }
    }
    snap.histograms.emplace_back(name, std::move(h));
  }
  for (const auto& ring : impl_->rings) {
    snap.spans += ring->count.load(std::memory_order_acquire);
    snap.dropped_spans += ring->dropped.load(std::memory_order_relaxed);
  }
  snap.threads = impl_->rings.size();
  return snap;
}

std::vector<SpanRecord> Telemetry::merged_spans() const {
  std::vector<std::shared_ptr<telemetry_detail::ThreadRing>> rings;
  {
    std::lock_guard lock(impl_->mutex);
    rings = impl_->rings;
  }
  std::vector<SpanRecord> out;
  for (const auto& ring : rings) {
    const std::uint64_t n = ring->count.load(std::memory_order_acquire);
    for (std::uint64_t i = 0; i < n; ++i) {
      const telemetry_detail::SpanSlot& slot = ring->slots[i];
      SpanRecord record;
      record.name = slot.name;
      record.tid = ring->tid;
      record.start_ns = slot.start_ns;
      record.dur_ns = slot.dur_ns;
      for (int a = 0; a < slot.arg_count; ++a) {
        record.args.emplace_back(slot.arg_keys[a], slot.arg_values[a]);
      }
      record.detail = slot.detail;
      out.push_back(std::move(record));
    }
  }
  return out;
}

void Telemetry::export_chrome_trace(const std::string& path) const {
  const MetricsSnapshot snap = metrics();
  const std::vector<SpanRecord> spans = merged_spans();

  std::string out;
  out.reserve(256 + spans.size() * 160);
  out += "{\n  \"displayTimeUnit\": \"ms\",\n";
  out += "  \"otherData\": {\"schema\": \"tpcool-trace-v1\"},\n";
  out += "  \"metrics\": ";
  telemetry_detail::append_metrics_json(out, snap, "  ");
  out += ",\n  \"traceEvents\": [\n";

  out +=
      "    {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
      "\"args\": {\"name\": \"tpcool\"}}";
  for (std::size_t t = 0; t < snap.threads; ++t) {
    out += ",\n    {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, ";
    out += "\"tid\": ";
    telemetry_detail::json_number(out, static_cast<double>(t));
    out += ", \"args\": {\"name\": \"";
    out += t == 0 ? "tpcool main" : "tpcool thread " + std::to_string(t);
    out += "\"}}";
  }

  // Per-thread ring order == span end order, which the inspector checks as
  // its monotonic-timestamp invariant.
  for (const SpanRecord& span : spans) {
    out += ",\n    {\"name\": \"";
    telemetry_detail::json_escape(out, span.name);
    out += "\", \"ph\": \"X\", \"cat\": \"tpcool\", \"ts\": ";
    telemetry_detail::json_us(out, span.start_ns);
    out += ", \"dur\": ";
    telemetry_detail::json_us(out, span.dur_ns);
    out += ", \"pid\": 1, \"tid\": ";
    telemetry_detail::json_number(out, static_cast<double>(span.tid));
    if (!span.args.empty() || !span.detail.empty()) {
      out += ", \"args\": {";
      bool first = true;
      for (const auto& [key, value] : span.args) {
        if (!first) out += ", ";
        first = false;
        out += '"';
        telemetry_detail::json_escape(out, key);
        out += "\": ";
        telemetry_detail::json_number(out, value);
      }
      if (!span.detail.empty()) {
        if (!first) out += ", ";
        out += "\"detail\": \"";
        telemetry_detail::json_escape(out, span.detail);
        out += '"';
      }
      out += '}';
    }
    out += '}';
  }
  out += "\n  ]\n}\n";

  telemetry_detail::write_file_or_throw(path, out, "trace");
}

void Telemetry::export_metrics_json(const std::string& path) const {
  std::string out;
  telemetry_detail::append_metrics_json(out, metrics(), "");
  out += "\n";
  telemetry_detail::write_file_or_throw(path, out, "metrics");
}

namespace {

std::mutex g_trace_path_mutex;
std::string g_trace_path;
bool g_atexit_registered = false;

void export_at_exit() {
  std::string path;
  {
    std::lock_guard lock(g_trace_path_mutex);
    path = g_trace_path;
  }
  if (path.empty()) return;
  try {
    Telemetry::instance().export_chrome_trace(path);
    Telemetry::instance().export_metrics_json(path + ".metrics.json");
  } catch (const std::exception& error) {
    log_error() << "telemetry: trace export failed: " << error.what();
  }
}

/// TPCOOL_TRACE_FILE arms process tracing before main() runs.  This TU is
/// always linked: every instrumented hot path references telemetry symbols.
[[maybe_unused]] const bool g_env_trace_armed = [] {
  if (const char* path = std::getenv("TPCOOL_TRACE_FILE");
      path != nullptr && *path != '\0') {
    Telemetry::arm_process_trace(path);
  }
  return true;
}();

}  // namespace

void Telemetry::arm_process_trace(std::string path) {
  instance().enable();
  std::lock_guard lock(g_trace_path_mutex);
  if (!g_trace_path.empty() && g_trace_path != path) {
    log_info() << "telemetry: trace file " << g_trace_path << " replaced by "
               << path;
  }
  g_trace_path = std::move(path);
  if (!g_atexit_registered) {
    std::atexit(&export_at_exit);
    g_atexit_registered = true;
  }
}

}  // namespace tpcool::util
