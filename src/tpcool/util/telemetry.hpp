#pragma once
/// \file telemetry.hpp
/// \brief Process-wide tracing and metrics: RAII spans into per-thread ring
///        buffers, named counters/gauges/histograms, Chrome-trace export.
///
/// Every subsystem from the CG kernels up to the fleet engines is
/// instrumented against this registry (span taxonomy and counter names are
/// specified in docs/TRACING.md).  Two hard contracts, asserted in
/// tests/telemetry_test.cpp and gated in CI:
///
///  - **Overhead** — with telemetry disabled (the default), every
///    instrumentation site costs exactly one relaxed atomic load and a
///    predictable branch (`telemetry_enabled()`); no clock reads, no
///    allocation, no locks.  The tracing-off engine benches must stay
///    within the usual regression gates against their baselines.
///  - **Purity** — telemetry observes, never actuates: no instrumented
///    code path reads a counter, span, or clock value back into a result.
///    All engine digests are bit-identical with tracing on or off, at any
///    thread count.
///
/// Spans: `TraceSpan span("solve"); span.arg("iterations", n);` records a
/// complete-event into the calling thread's ring buffer when the span is
/// destroyed.  Rings are single-producer (the owning thread) and fixed
/// capacity; once full, new spans are dropped and counted
/// (`MetricsSnapshot::dropped_spans`) rather than overwriting — the
/// recorded prefix stays nesting-consistent.  Counters are exact even when
/// spans drop.
///
/// Export: `export_chrome_trace(path)` writes Chrome trace-event JSON
/// (loads directly in Perfetto / chrome://tracing) with the metrics
/// snapshot embedded under a top-level `"metrics"` key;
/// `export_metrics_json(path)` writes the snapshot standalone.  Setting
/// `TPCOOL_TRACE_FILE=<path>` (or passing `--trace-file <path>` to any
/// bench binary) enables tracing at startup and exports to `path` at
/// process exit.  `scripts/trace_inspect.py` validates emitted traces.
///
/// Quiescence: merging rings is safe only while no other thread is
/// recording (the engines join their `parallel_map` fan-out before
/// returning, so "after a run" is always quiescent).  `export_*`,
/// `metrics()`, `merged_spans()`, and `reset()` are snapshot operations in
/// that sense; calling them mid-fan-out yields a torn (but memory-safe)
/// view, never undefined behavior for counters.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tpcool::util {

namespace telemetry_detail {
/// The one process-wide gate.  Constant-initialized, so instrumentation in
/// static initializers is safe.
inline std::atomic<bool> g_enabled{false};
struct ThreadRing;
}  // namespace telemetry_detail

/// The whole cost of disabled telemetry: one relaxed load and a branch.
[[nodiscard]] inline bool telemetry_enabled() noexcept {
  return telemetry_detail::g_enabled.load(std::memory_order_relaxed);
}

/// Monotonic counter cell.  Handles returned by `Telemetry::counter()` are
/// valid for the process lifetime (cells are never deallocated; `reset()`
/// zeroes them in place), so hot paths resolve the name once and keep the
/// pointer.
class TelemetryCounter {
 public:
  /// No-op while telemetry is disabled, so counters are deltas over the
  /// enabled window, like everything else in the registry.
  void add(double delta = 1.0) noexcept {
    if (telemetry_enabled()) value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Telemetry;
  std::atomic<double> value_{0.0};
};

/// Last-write-wins gauge cell; same lifetime contract as counters.
class TelemetryGauge {
 public:
  void set(double value) noexcept {
    if (telemetry_enabled()) value_.store(value, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Telemetry;
  std::atomic<double> value_{0.0};
};

/// Power-of-two-bucketed histogram cell: bucket k counts values in
/// (2^(k-1), 2^k] (bucket 0 is everything <= 1).  Exact count/sum/min/max
/// alongside, all updated lock-free.
class TelemetryHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(double value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  friend class Telemetry;
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// One merged span, in per-thread ring order (= span end order).
struct SpanRecord {
  std::string name;
  std::uint32_t tid = 0;            ///< Registry-assigned small integer.
  std::int64_t start_ns = 0;        ///< Relative to the enable() epoch.
  std::int64_t dur_ns = 0;
  std::vector<std::pair<std::string, double>> args;
  std::string detail;               ///< Free-text arg ("" when unset).
};

/// Point-in-time copy of every registered metric (names sorted).
struct MetricsSnapshot {
  struct Histogram {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    /// (upper bound, count) for every non-empty bucket.
    std::vector<std::pair<double, std::uint64_t>> buckets;
  };
  std::vector<std::pair<std::string, double>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, Histogram>> histograms;
  std::uint64_t spans = 0;          ///< Spans currently recorded in rings.
  std::uint64_t dropped_spans = 0;  ///< Spans lost to ring overflow.
  std::size_t threads = 0;          ///< Rings registered so far.
};

struct TelemetryConfig {
  /// Span slots per thread ring.  Rings owned by live threads re-size
  /// lazily (on that thread's next recorded span) after enable() changes
  /// this.  ~96 bytes per slot.
  std::size_t ring_capacity = 1 << 15;
};

/// The process-wide registry.  All members are thread-safe; see the file
/// comment for the quiescence caveat on snapshot operations.
class Telemetry {
 public:
  [[nodiscard]] static Telemetry& instance();

  /// Start recording: stamps the time epoch and flips the global gate.
  /// Re-enabling while enabled just updates the config.
  void enable(const TelemetryConfig& config = {});
  /// Stop recording (spans already started still record on destruction).
  void disable();
  /// Zero every counter/gauge/histogram cell, empty every ring, re-stamp
  /// the epoch.  Handles stay valid.
  void reset();

  /// Named-cell handles; created on first use, live for the process.
  [[nodiscard]] TelemetryCounter& counter(std::string_view name);
  [[nodiscard]] TelemetryGauge& gauge(std::string_view name);
  [[nodiscard]] TelemetryHistogram& histogram(std::string_view name);

  /// Convenience one-shot forms for cool paths (registry lookup per call).
  void counter_add(std::string_view name, double delta = 1.0);
  void gauge_set(std::string_view name, double value);
  void histogram_record(std::string_view name, double value);

  [[nodiscard]] MetricsSnapshot metrics() const;
  /// Every ring's spans, per-thread in ring order (= end-time order),
  /// threads in registration order.
  [[nodiscard]] std::vector<SpanRecord> merged_spans() const;

  /// Chrome trace-event JSON (schema `tpcool-trace-v1`): thread-name
  /// metadata, one "X" event per span, and the metrics snapshot embedded
  /// under a top-level "metrics" key.  Throws PreconditionError when the
  /// file cannot be written.
  void export_chrome_trace(const std::string& path) const;
  /// The metrics snapshot standalone (schema `tpcool-metrics-v1`).
  void export_metrics_json(const std::string& path) const;

  /// Enable now and export the Chrome trace to `path` at process exit
  /// (plus the standalone snapshot to `path + ".metrics.json"`).  One
  /// path per process, last call wins — a bench's `--trace-file` replaces
  /// the TPCOOL_TRACE_FILE registration, logged through util/logging.
  static void arm_process_trace(std::string path);

  /// Nanoseconds since the enable() epoch (callers gate on
  /// telemetry_enabled() first; this reads the clock unconditionally).
  [[nodiscard]] static std::int64_t now_ns();

 private:
  friend class TraceSpan;
  Telemetry();
  ~Telemetry() = delete;  // leaky singleton: immune to exit-order races

  /// The calling thread's ring (registered on first use).
  [[nodiscard]] telemetry_detail::ThreadRing& local_ring();

  struct Impl;
  Impl* impl_;
};

/// Scoped RAII span.  Constructing while telemetry is disabled makes every
/// member a no-op (the ctor is the single gated branch).  Not copyable or
/// movable: a span is pinned to its scope and thread.
class TraceSpan {
 public:
  static constexpr int kMaxArgs = 4;
  static constexpr std::size_t kMaxDetail = 39;

  /// `name` must have static storage duration (string literals): the ring
  /// stores the pointer, not a copy.
  explicit TraceSpan(const char* name) {
    if (!telemetry_enabled()) return;
    active_ = true;
    name_ = name;
    start_ns_ = Telemetry::now_ns();
  }
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attach a numeric argument (`key` must be a static string; at most
  /// kMaxArgs are kept, extras are ignored).
  void arg(const char* key, double value) noexcept {
    if (!active_ || arg_count_ >= kMaxArgs) return;
    arg_keys_[arg_count_] = key;
    arg_values_[arg_count_] = value;
    ++arg_count_;
  }

  /// Attach a short free-text argument (truncated to kMaxDetail bytes).
  void detail(std::string_view text) noexcept;

 private:
  bool active_ = false;
  int arg_count_ = 0;
  const char* name_ = nullptr;
  std::int64_t start_ns_ = 0;
  const char* arg_keys_[kMaxArgs] = {};
  double arg_values_[kMaxArgs] = {};
  char detail_[kMaxDetail + 1] = {};
};

}  // namespace tpcool::util
