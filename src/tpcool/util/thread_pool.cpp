#include "tpcool/util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>

#include "tpcool/util/error.hpp"

namespace tpcool::util {

std::size_t ThreadPool::default_thread_count() {
  if (const char* env = std::getenv("TPCOOL_NUM_THREADS")) {
    // Strict parse: reject garbage and non-positive values rather than
    // silently running single-threaded with a typo'd override.
    try {
      const long v = std::stol(env);
      if (v >= 1) return static_cast<std::size_t>(v);
    } catch (const std::exception&) {
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_thread_count();
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back(
        [this](const std::stop_token& stop) { worker_loop(stop); });
  }
}

ThreadPool::~ThreadPool() {
  {
    // Hold the mutex while requesting stop: otherwise a worker that just
    // evaluated its wait predicate (false) but has not yet blocked would
    // miss the notification and the jthread join below would deadlock.
    std::lock_guard lock(mutex_);
    for (auto& w : workers_) w.request_stop();
  }
  work_ready_.notify_all();
  // jthread joins in its destructor.
}

void ThreadPool::worker_loop(const std::stop_token& stop) {
  std::unique_lock lock(mutex_);
  std::size_t seen_generation = 0;
  while (true) {
    work_ready_.wait(lock, [&] {
      return stop.stop_requested() ||
             (job_active_ && job_.generation != seen_generation);
    });
    if (stop.stop_requested()) return;
    seen_generation = job_.generation;
    drain_job(lock);
  }
}

void ThreadPool::drain_job(std::unique_lock<std::mutex>& lock) {
  while (job_.next_chunk < job_.chunk_count) {
    const std::size_t chunk = job_.next_chunk++;
    const std::size_t lo = job_.begin + chunk * job_.grain;
    const std::size_t hi = std::min(lo + job_.grain, job_.end);
    const auto* body = job_.body;
    lock.unlock();
    (*body)(lo, hi);
    lock.lock();
    if (++job_.chunks_done == job_.chunk_count) job_done_.notify_all();
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  TPCOOL_REQUIRE(begin <= end && grain > 0, "bad parallel_for range");
  if (begin == end) return;
  const std::size_t count = end - begin;
  if (workers_.empty() || count <= grain) {
    // Serial path: keep the exact chunk boundaries of the threaded path so
    // chunk-indexed bodies (parallel_reduce) behave identically.
    for (std::size_t lo = begin; lo < end; lo += grain) {
      body(lo, std::min(lo + grain, end));
    }
    return;
  }

  std::unique_lock lock(mutex_);
  if (job_active_) {
    // Another caller's job is in flight (concurrent solves sharing the
    // global pool, or a nested call from a worker body): degrade to the
    // serial chunked path instead of corrupting the active job.
    lock.unlock();
    for (std::size_t lo = begin; lo < end; lo += grain) {
      body(lo, std::min(lo + grain, end));
    }
    return;
  }
  job_.body = &body;
  job_.begin = begin;
  job_.end = end;
  job_.grain = grain;
  job_.next_chunk = 0;
  job_.chunk_count = (count + grain - 1) / grain;
  job_.chunks_done = 0;
  ++job_.generation;
  job_active_ = true;
  work_ready_.notify_all();

  drain_job(lock);  // the caller works too
  job_done_.wait(lock, [&] { return job_.chunks_done == job_.chunk_count; });
  job_active_ = false;
}

double ThreadPool::parallel_reduce(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<double(std::size_t, std::size_t)>& partial) {
  TPCOOL_REQUIRE(begin <= end && grain > 0, "bad parallel_reduce range");
  if (begin == end) return 0.0;
  const std::size_t count = end - begin;
  if (count <= grain) return partial(begin, end);

  const std::size_t chunk_count = (count + grain - 1) / grain;
  std::vector<double> partials(chunk_count, 0.0);
  parallel_for(begin, end, grain, [&](std::size_t lo, std::size_t hi) {
    partials[(lo - begin) / grain] = partial(lo, hi);
  });
  // Combine in chunk order: the sum is independent of the thread count.
  double sum = 0.0;
  for (const double p : partials) sum += p;
  return sum;
}

namespace {
std::unique_ptr<ThreadPool>& global_pool_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}
std::mutex& global_pool_mutex() {
  static std::mutex m;
  return m;
}
}  // namespace

ThreadPool& ThreadPool::global() {
  std::lock_guard lock(global_pool_mutex());
  auto& slot = global_pool_slot();
  if (!slot) slot = std::make_unique<ThreadPool>();
  return *slot;
}

void ThreadPool::set_global_thread_count(std::size_t threads) {
  std::lock_guard lock(global_pool_mutex());
  global_pool_slot() = std::make_unique<ThreadPool>(threads);
}

}  // namespace tpcool::util
