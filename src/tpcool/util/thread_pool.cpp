#include "tpcool/util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>

#include "tpcool/util/error.hpp"
#include "tpcool/util/telemetry.hpp"

namespace tpcool::util {

namespace {

/// Cached-handle accessors: cells live for the process, so resolving the
/// name once per process (not per job) keeps the enabled path cheap.
TelemetryCounter& pool_jobs_counter() {
  static TelemetryCounter& cell = Telemetry::instance().counter("pool.jobs");
  return cell;
}
TelemetryCounter& pool_chunks_counter() {
  static TelemetryCounter& cell = Telemetry::instance().counter("pool.chunks");
  return cell;
}
TelemetryHistogram& pool_chunks_per_job_histogram() {
  static TelemetryHistogram& cell =
      Telemetry::instance().histogram("pool.chunks_per_job");
  return cell;
}
TelemetryGauge& pool_queue_depth_gauge() {
  static TelemetryGauge& cell =
      Telemetry::instance().gauge("pool.queue_depth");
  return cell;
}

/// Busy-time counter for a drain participant (0 = the parallel_for
/// caller).  Looked up per drain pass, not per chunk.
TelemetryCounter& pool_busy_counter(std::size_t worker_index) {
  if (worker_index == 0) {
    static TelemetryCounter& cell =
        Telemetry::instance().counter("pool.caller.busy_ms");
    return cell;
  }
  return Telemetry::instance().counter("pool.worker" +
                                       std::to_string(worker_index) +
                                       ".busy_ms");
}

}  // namespace

std::size_t ThreadPool::default_thread_count() {
  if (const char* env = std::getenv("TPCOOL_NUM_THREADS")) {
    // Strict parse: reject garbage and non-positive values rather than
    // silently running single-threaded with a typo'd override.
    try {
      const long v = std::stol(env);
      if (v >= 1) return static_cast<std::size_t>(v);
    } catch (const std::exception&) {
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_thread_count();
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this, i](const std::stop_token& stop) {
      worker_loop(stop, i + 1);
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    // Hold the mutex while requesting stop: otherwise a worker that just
    // evaluated its wait predicate (false) but has not yet blocked would
    // miss the notification and the jthread join below would deadlock.
    std::lock_guard lock(mutex_);
    for (auto& w : workers_) w.request_stop();
  }
  work_ready_.notify_all();
  // jthread joins in its destructor.
}

void ThreadPool::worker_loop(const std::stop_token& stop,
                             std::size_t worker_index) {
  std::unique_lock lock(mutex_);
  std::size_t seen_generation = 0;
  while (true) {
    work_ready_.wait(lock, [&] {
      return stop.stop_requested() ||
             (job_active_ && job_.generation != seen_generation);
    });
    if (stop.stop_requested()) return;
    seen_generation = job_.generation;
    drain_job(lock, worker_index);
  }
}

void ThreadPool::drain_job(std::unique_lock<std::mutex>& lock,
                           std::size_t worker_index) {
  // Resolve telemetry handles once per drain pass, never per chunk; the
  // whole disabled cost is this one gate.
  const bool traced = telemetry_enabled();
  TelemetryCounter* busy = traced ? &pool_busy_counter(worker_index) : nullptr;
  TelemetryCounter* chunks = traced ? &pool_chunks_counter() : nullptr;
  while (job_.next_chunk < job_.chunk_count) {
    const std::size_t chunk = job_.next_chunk++;
    const std::size_t lo = job_.begin + chunk * job_.grain;
    const std::size_t hi = std::min(lo + job_.grain, job_.end);
    const auto* body = job_.body;
    lock.unlock();
    if (traced) {
      const std::int64_t t0 = Telemetry::now_ns();
      (*body)(lo, hi);
      busy->add(static_cast<double>(Telemetry::now_ns() - t0) / 1e6);
      chunks->add(1.0);
    } else {
      (*body)(lo, hi);
    }
    lock.lock();
    if (++job_.chunks_done == job_.chunk_count) job_done_.notify_all();
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  TPCOOL_REQUIRE(begin <= end && grain > 0, "bad parallel_for range");
  if (begin == end) return;
  const std::size_t count = end - begin;
  const std::size_t chunk_count = (count + grain - 1) / grain;
  if (workers_.empty() || count <= grain) {
    // Serial path: keep the exact chunk boundaries of the threaded path so
    // chunk-indexed bodies (parallel_reduce) behave identically.
    if (telemetry_enabled()) {
      const std::int64_t t0 = Telemetry::now_ns();
      for (std::size_t lo = begin; lo < end; lo += grain) {
        body(lo, std::min(lo + grain, end));
      }
      pool_busy_counter(0).add(
          static_cast<double>(Telemetry::now_ns() - t0) / 1e6);
      pool_jobs_counter().add(1.0);
      pool_chunks_counter().add(static_cast<double>(chunk_count));
      pool_chunks_per_job_histogram().record(
          static_cast<double>(chunk_count));
      return;
    }
    for (std::size_t lo = begin; lo < end; lo += grain) {
      body(lo, std::min(lo + grain, end));
    }
    return;
  }

  std::unique_lock lock(mutex_);
  if (job_active_) {
    // Another caller's job is in flight (concurrent solves sharing the
    // global pool, or a nested call from a worker body): degrade to the
    // serial chunked path instead of corrupting the active job.
    lock.unlock();
    for (std::size_t lo = begin; lo < end; lo += grain) {
      body(lo, std::min(lo + grain, end));
    }
    return;
  }
  job_.body = &body;
  job_.begin = begin;
  job_.end = end;
  job_.grain = grain;
  job_.next_chunk = 0;
  job_.chunk_count = chunk_count;
  job_.chunks_done = 0;
  ++job_.generation;
  job_active_ = true;
  const bool traced = telemetry_enabled();
  if (traced) {
    pool_jobs_counter().add(1.0);
    pool_chunks_per_job_histogram().record(static_cast<double>(chunk_count));
    pool_queue_depth_gauge().set(static_cast<double>(chunk_count));
  }
  work_ready_.notify_all();

  drain_job(lock, 0);  // the caller works too
  job_done_.wait(lock, [&] { return job_.chunks_done == job_.chunk_count; });
  job_active_ = false;
  if (traced) pool_queue_depth_gauge().set(0.0);
}

double ThreadPool::parallel_reduce(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<double(std::size_t, std::size_t)>& partial) {
  TPCOOL_REQUIRE(begin <= end && grain > 0, "bad parallel_reduce range");
  if (begin == end) return 0.0;
  const std::size_t count = end - begin;
  if (count <= grain) return partial(begin, end);

  const std::size_t chunk_count = (count + grain - 1) / grain;
  std::vector<double> partials(chunk_count, 0.0);
  parallel_for(begin, end, grain, [&](std::size_t lo, std::size_t hi) {
    partials[(lo - begin) / grain] = partial(lo, hi);
  });
  // Combine in chunk order: the sum is independent of the thread count.
  double sum = 0.0;
  for (const double p : partials) sum += p;
  return sum;
}

namespace {
std::unique_ptr<ThreadPool>& global_pool_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}
std::mutex& global_pool_mutex() {
  static std::mutex m;
  return m;
}
}  // namespace

ThreadPool& ThreadPool::global() {
  std::lock_guard lock(global_pool_mutex());
  auto& slot = global_pool_slot();
  if (!slot) slot = std::make_unique<ThreadPool>();
  return *slot;
}

void ThreadPool::set_global_thread_count(std::size_t threads) {
  std::lock_guard lock(global_pool_mutex());
  global_pool_slot() = std::make_unique<ThreadPool>(threads);
}

}  // namespace tpcool::util
