#pragma once
/// \file interp.hpp
/// \brief Piecewise-linear interpolation tables (clamped at the ends),
///        used for fitted fluid-property curves and controller schedules.

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <utility>
#include <vector>

#include "tpcool/util/error.hpp"

namespace tpcool::util {

/// Monotone-x piecewise-linear table.  Evaluation outside the x range clamps
/// to the end values (fluid-property fits must never extrapolate wildly).
class LinearTable {
 public:
  LinearTable() = default;

  LinearTable(std::vector<double> xs, std::vector<double> ys)
      : xs_(std::move(xs)), ys_(std::move(ys)) {
    TPCOOL_REQUIRE(xs_.size() == ys_.size(), "table sizes differ");
    TPCOOL_REQUIRE(xs_.size() >= 2, "table needs at least two points");
    TPCOOL_REQUIRE(std::is_sorted(xs_.begin(), xs_.end()),
                   "table x values must be sorted ascending");
    for (std::size_t i = 1; i < xs_.size(); ++i) {
      TPCOOL_REQUIRE(xs_[i] > xs_[i - 1], "table x values must be distinct");
    }
  }

  LinearTable(std::initializer_list<std::pair<double, double>> points) {
    xs_.reserve(points.size());
    ys_.reserve(points.size());
    for (const auto& [x, y] : points) {
      xs_.push_back(x);
      ys_.push_back(y);
    }
    *this = LinearTable(std::move(xs_), std::move(ys_));
  }

  [[nodiscard]] double operator()(double x) const {
    TPCOOL_REQUIRE(!xs_.empty(), "evaluating empty table");
    if (x <= xs_.front()) return ys_.front();
    if (x >= xs_.back()) return ys_.back();
    const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
    const std::size_t i = static_cast<std::size_t>(it - xs_.begin());
    const double t = (x - xs_[i - 1]) / (xs_[i] - xs_[i - 1]);
    return ys_[i - 1] + t * (ys_[i] - ys_[i - 1]);
  }

  [[nodiscard]] double x_min() const { return xs_.front(); }
  [[nodiscard]] double x_max() const { return xs_.back(); }
  [[nodiscard]] std::size_t size() const noexcept { return xs_.size(); }

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
};

/// Clamp helper with contract on the bounds.
[[nodiscard]] inline double clamp(double v, double lo, double hi) {
  TPCOOL_REQUIRE(lo <= hi, "clamp: inverted bounds");
  return std::min(std::max(v, lo), hi);
}

/// Linear blend a + t (b - a) with t clamped to [0, 1].
[[nodiscard]] inline double lerp_clamped(double a, double b, double t) {
  const double tc = std::min(std::max(t, 0.0), 1.0);
  return a + tc * (b - a);
}

}  // namespace tpcool::util
