#pragma once
/// \file rootfind.hpp
/// \brief Scalar root finding and fixed-point iteration helpers used by the
///        thermosyphon loop solver and the design optimizer.

#include <cmath>
#include <cstddef>
#include <functional>

#include "tpcool/util/error.hpp"

namespace tpcool::util {

struct BisectionOptions {
  double tolerance = 1e-9;      ///< Absolute tolerance on the bracket width.
  std::size_t max_iterations = 200;
};

/// Find x in [lo, hi] with f(x) = 0 by bisection. Requires f(lo) and f(hi)
/// to have opposite signs (or one of them to be zero).
template <typename F>
[[nodiscard]] double bisect(F&& f, double lo, double hi,
                            const BisectionOptions& options = {}) {
  TPCOOL_REQUIRE(lo < hi, "bisect: invalid bracket");
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  TPCOOL_REQUIRE(std::signbit(flo) != std::signbit(fhi),
                 "bisect: bracket does not straddle a root");
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    if (fmid == 0.0 || (hi - lo) < options.tolerance) return mid;
    if (std::signbit(fmid) == std::signbit(flo)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

struct FixedPointOptions {
  double tolerance = 1e-6;   ///< Absolute tolerance on |x_{k+1} - x_k|.
  double relaxation = 1.0;   ///< Under-relaxation factor in (0, 1].
  std::size_t max_iterations = 200;
};

/// Iterate x <- (1-w)·x + w·g(x) until the update is below tolerance.
/// Throws ConvergenceError when the iteration limit is exhausted.
template <typename G>
[[nodiscard]] double fixed_point(G&& g, double x0,
                                 const FixedPointOptions& options = {}) {
  TPCOOL_REQUIRE(options.relaxation > 0.0 && options.relaxation <= 1.0,
                 "fixed_point: relaxation must be in (0, 1]");
  double x = x0;
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    const double next = (1.0 - options.relaxation) * x + options.relaxation * g(x);
    if (std::abs(next - x) < options.tolerance) return next;
    x = next;
  }
  throw ConvergenceError("fixed_point: failed to converge");
}

}  // namespace tpcool::util
