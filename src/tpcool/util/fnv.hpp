#pragma once
/// \file fnv.hpp
/// \brief Order-sensitive FNV-1a digest helpers over exact bit patterns.
///
/// The determinism layers certify bit-identical results by hashing every
/// numeric field of a result structure in a fixed order: equal digests ⇒
/// equal bits.  `fleet_digest`, `transient_digest`, the workload-generator
/// trace digests, and the streaming-equivalence checks all share these
/// helpers — doubles are hashed as their exact `std::bit_cast` bit
/// patterns, never through any rounding or formatting, so a single-ULP
/// divergence flips the digest.

#include <bit>
#include <cstdint>
#include <string_view>

namespace tpcool::util {

/// FNV-1a offset basis: the digest accumulator's start value.
inline constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ULL;

/// FNV-1a 64-bit prime.
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// Fold one byte into the digest.
inline void fnv_byte(std::uint64_t& digest, std::uint8_t byte) {
  digest ^= byte;
  digest *= kFnvPrime;
}

/// Fold a 64-bit value into the digest, least-significant byte first.
inline void fnv_u64(std::uint64_t& digest, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    fnv_byte(digest, static_cast<std::uint8_t>((value >> shift) & 0xFF));
  }
}

/// Fold a double's exact bit pattern into the digest.
inline void fnv_f64(std::uint64_t& digest, double value) {
  fnv_u64(digest, std::bit_cast<std::uint64_t>(value));
}

/// Fold a byte string (e.g. a benchmark name) into the digest, including
/// its length so concatenations cannot collide ("ab"+"c" vs "a"+"bc").
inline void fnv_string(std::uint64_t& digest, std::string_view text) {
  fnv_u64(digest, text.size());
  for (const char c : text) {
    fnv_byte(digest, static_cast<std::uint8_t>(c));
  }
}

}  // namespace tpcool::util
