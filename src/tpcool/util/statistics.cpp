#include "tpcool/util/statistics.hpp"

#include <algorithm>
#include <cmath>

#include "tpcool/util/error.hpp"

namespace tpcool::util {

Summary summarize(std::span<const double> values) {
  TPCOOL_REQUIRE(!values.empty(), "summarize: empty sample");
  Summary s;
  s.count = values.size();
  s.min = values[0];
  s.max = values[0];
  double sum = 0.0;
  for (const double v : values) {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    sum += v;
  }
  s.mean = sum / static_cast<double>(s.count);
  double var = 0.0;
  for (const double v : values) {
    const double d = v - s.mean;
    var += d * d;
  }
  s.stddev = std::sqrt(var / static_cast<double>(s.count));
  return s;
}

double percentile(std::span<const double> values, double p) {
  TPCOOL_REQUIRE(!values.empty(), "percentile: empty sample");
  TPCOOL_REQUIRE(p >= 0.0 && p <= 100.0, "percentile: p outside [0, 100]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double t = rank - static_cast<double>(lo);
  return sorted[lo] + t * (sorted[hi] - sorted[lo]);
}

double mean(std::span<const double> values) {
  TPCOOL_REQUIRE(!values.empty(), "mean: empty sample");
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

}  // namespace tpcool::util
