#include "tpcool/util/csv.hpp"

#include <iomanip>

namespace tpcool::util {

CsvWriter::CsvWriter(std::ostream& out, char separator)
    : out_(out), sep_(separator) {}

void CsvWriter::header(const std::vector<std::string>& names) {
  for (const auto& n : names) field(n);
  end_row();
}

void CsvWriter::separator_if_needed() {
  if (row_open_) out_ << sep_;
  row_open_ = true;
}

CsvWriter& CsvWriter::field(const std::string& value) {
  separator_if_needed();
  const bool needs_quotes = value.find_first_of(",\"\n") != std::string::npos ||
                            value.find(sep_) != std::string::npos;
  if (needs_quotes) {
    out_ << '"';
    for (const char c : value) {
      if (c == '"') out_ << '"';
      out_ << c;
    }
    out_ << '"';
  } else {
    out_ << value;
  }
  return *this;
}

CsvWriter& CsvWriter::field(double value) {
  separator_if_needed();
  out_ << std::setprecision(12) << value;
  return *this;
}

CsvWriter& CsvWriter::field(long long value) {
  separator_if_needed();
  out_ << value;
  return *this;
}

void CsvWriter::end_row() {
  out_ << '\n';
  row_open_ = false;
}

void CsvWriter::row(const std::vector<double>& values) {
  for (const double v : values) field(v);
  end_row();
}

void write_grid_csv(std::ostream& out, const Grid2D<double>& grid) {
  for (std::size_t iy = grid.ny(); iy-- > 0;) {
    for (std::size_t ix = 0; ix < grid.nx(); ++ix) {
      if (ix != 0) out << ',';
      out << std::setprecision(8) << grid(ix, iy);
    }
    out << '\n';
  }
}

}  // namespace tpcool::util
