#pragma once
/// \file parallel_map.hpp
/// \brief Deterministic fixed-grain parallel fan-out over independent tasks.
///
/// The generic engine under `core::parallel_map`: it lives in util/ so that
/// layers below core (e.g. the thermosyphon design optimizer) can fan their
/// own sweeps out over the global ThreadPool without depending on the
/// experiment pipelines.
///
/// Determinism discipline (same rules as the solver reductions):
///  - Tasks are split into chunks on fixed boundaries derived only from
///    (count, grain) — never from the thread count.
///  - Each chunk builds its own context via `make_context(chunk)`, so no
///    mutable state is shared across chunks; within a chunk, tasks run in
///    index order.
///  - Results land in a pre-sized vector by task index: result order is the
///    serial order regardless of which thread ran what.
/// Together: any thread count, including TPCOOL_NUM_THREADS=1, produces
/// bit-identical results.

#include <cstddef>
#include <exception>
#include <vector>

#include "tpcool/util/error.hpp"
#include "tpcool/util/thread_pool.hpp"

namespace tpcool::util {

/// Deterministic parallel map over `count` independent tasks.
///
/// Splits [0, count) into chunks of `grain` tasks, runs
/// `make_context(chunk_index)` once per chunk and
/// `task(context, task_index)` for every task of the chunk in index order,
/// on the global ThreadPool.  The first exception (in chunk order) is
/// rethrown after all chunks finish.
///
/// `grain` trades context-construction overhead against parallel width and
/// must be a fixed constant at each call site — deriving it from the thread
/// count would change chunk boundaries (and with them any per-context
/// state) across machines.
template <typename Result, typename MakeContext, typename Task>
std::vector<Result> parallel_map(std::size_t count, std::size_t grain,
                                 MakeContext&& make_context, Task&& task) {
  TPCOOL_REQUIRE(grain >= 1, "parallel_map needs grain >= 1");
  std::vector<Result> results(count);
  if (count == 0) return results;
  const std::size_t chunk_count = (count + grain - 1) / grain;
  std::vector<std::exception_ptr> errors(chunk_count);
  util::ThreadPool::global().parallel_for(
      0, count, grain, [&](std::size_t lo, std::size_t hi) {
        const std::size_t chunk = lo / grain;
        try {
          auto context = make_context(chunk);
          for (std::size_t i = lo; i < hi; ++i) {
            results[i] = task(context, i);
          }
        } catch (...) {
          // Worker bodies must not throw (the pool would terminate); park
          // the error and rethrow deterministically on the caller.
          errors[chunk] = std::current_exception();
        }
      });
  for (std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  return results;
}

}  // namespace tpcool::util
