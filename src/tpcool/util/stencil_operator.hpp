#pragma once
/// \file stencil_operator.hpp
/// \brief Structured 7-point stencil operator for the thermal finite-volume
///        grid: banded per-cell coefficients with a matrix-free multiply.
///
/// Every system the thermal grid assembles couples cell (ix, iy, iz) to at
/// most its six axis neighbours. Storing the operator as seven coefficient
/// arrays (one per band) removes the CSR column indirection of
/// SparseMatrix, keeps the memory access pattern sequential, and gives the
/// SSOR preconditioner its forward/backward sweeps for free (lower bands
/// are exactly {x-, y-, z-}, upper bands {x+, y+, z+}).
///
/// Conversion to/from SparseMatrix is provided so tests can cross-check the
/// two representations entry-for-entry.

#include <cstddef>
#include <vector>

#include "tpcool/util/linear_solver.hpp"

namespace tpcool::util {

/// The six neighbour bands of the 7-point stencil.
enum class StencilBand : std::size_t {
  kXMinus = 0,  ///< (ix-1, iy, iz)
  kXPlus = 1,   ///< (ix+1, iy, iz)
  kYMinus = 2,  ///< (ix, iy-1, iz)
  kYPlus = 3,   ///< (ix, iy+1, iz)
  kZMinus = 4,  ///< (ix, iy, iz-1)
  kZPlus = 5,   ///< (ix, iy, iz+1)
};

/// Symmetric 7-point operator on an nx×ny×nz cell grid, indexed like
/// ThermalModel::cell_index: i = (iz*ny + iy)*nx + ix.
class StencilOperator {
 public:
  StencilOperator(std::size_t nx, std::size_t ny, std::size_t nz);

  [[nodiscard]] std::size_t nx() const noexcept { return nx_; }
  [[nodiscard]] std::size_t ny() const noexcept { return ny_; }
  [[nodiscard]] std::size_t nz() const noexcept { return nz_; }
  [[nodiscard]] std::size_t size() const noexcept { return diag_.size(); }

  [[nodiscard]] std::size_t cell_index(std::size_t ix, std::size_t iy,
                                       std::size_t iz) const noexcept {
    return (iz * ny_ + iy) * nx_ + ix;
  }

  /// Add the symmetric conductance coupling `g` between cell `i` and its
  /// neighbour in `band`: both off-diagonals get -g, both diagonals +g.
  /// The neighbour must exist (no wrap-around across grid edges).
  void add_coupling(std::size_t i, StencilBand band, double g);

  /// Accumulate a boundary (or mass) term onto the diagonal of cell `i`.
  void add_to_diagonal(std::size_t i, double value);

  /// Add `values[i]` to every diagonal entry (backward-Euler mass matrix).
  void add_diagonal(const std::vector<double>& values);

  /// Overwrite the diagonal with base.diag + shift. Bands are untouched;
  /// `base` must share this operator's grid. Lets a cached copy of a base
  /// operator be re-shifted every transient step without re-copying the
  /// six neighbour bands.
  void set_shifted_diagonal(const StencilOperator& base,
                            const std::vector<double>& shift);

  [[nodiscard]] double diag(std::size_t i) const { return diag_[i]; }
  [[nodiscard]] double offdiag(std::size_t i, StencilBand band) const {
    return bands_[static_cast<std::size_t>(band)][i];
  }

  /// y = A x, matrix-free over the bands; parallelized over grid rows via
  /// the global ThreadPool for large systems.
  void multiply(const std::vector<double>& x, std::vector<double>& y) const;

  /// Copy of the diagonal band.
  [[nodiscard]] std::vector<double> diagonal() const { return diag_; }

  /// z = M⁻¹ r for the SSOR preconditioner
  /// M = (D + ωL) D⁻¹ (D + ωU) (up to a positive scale, which PCG ignores).
  /// Sequential by construction (triangular solves).
  void ssor_apply(const std::vector<double>& r, std::vector<double>& z,
                  double omega) const;

  /// Convert to the general CSR representation (tests, cross-checks).
  [[nodiscard]] SparseMatrix to_sparse() const;

  /// Build from a finalized SparseMatrix with 7-point structure on an
  /// nx×ny×nz grid. Throws PreconditionError if any nonzero falls outside
  /// the stencil pattern (including wrap-around entries like (i, i-1) when
  /// ix == 0).
  [[nodiscard]] static StencilOperator from_sparse(const SparseMatrix& m,
                                                   std::size_t nx,
                                                   std::size_t ny,
                                                   std::size_t nz);

 private:
  [[nodiscard]] std::size_t neighbor_index(std::size_t i,
                                           StencilBand band) const;

  std::size_t nx_, ny_, nz_;
  std::vector<double> diag_;
  // Band order matches StencilBand. Boundary entries stay exactly 0.
  std::vector<double> bands_[6];
};

}  // namespace tpcool::util
