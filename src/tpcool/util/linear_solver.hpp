#pragma once
/// \file linear_solver.hpp
/// \brief Sparse (CSR) and small dense linear algebra used by the thermal
///        finite-volume solver.
///
/// The thermal grid produces symmetric positive-definite systems with a
/// 7-point stencil, which preconditioned conjugate gradient handles well.
/// A dense Gaussian-elimination solver is provided for small auxiliary
/// systems and for cross-checking CG in tests.

#include <cstddef>
#include <vector>

#include "tpcool/util/error.hpp"

namespace tpcool::util {

/// Triplet-assembled sparse matrix finalized to CSR.
///
/// Usage: construct with the dimension, `add(i, j, v)` (duplicates
/// accumulate), then `finalize()`. After finalization the matrix is
/// read-only and `multiply()`/solvers may be used.
class SparseMatrix {
 public:
  explicit SparseMatrix(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] bool finalized() const noexcept { return finalized_; }

  /// Accumulate `value` into entry (row, col). Only valid before finalize().
  void add(std::size_t row, std::size_t col, double value);

  /// Sort/merge triplets into CSR storage. Idempotent.
  void finalize();

  /// y = A x. Requires finalize().
  void multiply(const std::vector<double>& x, std::vector<double>& y) const;

  /// Diagonal entries (zero where absent). Requires finalize().
  [[nodiscard]] std::vector<double> diagonal() const;

  /// Number of stored nonzeros. Requires finalize().
  [[nodiscard]] std::size_t nonzeros() const;

  /// Symmetry check within tolerance (O(nnz log) via lookups); test helper.
  [[nodiscard]] bool is_symmetric(double tol = 1e-9) const;

  /// Entry lookup (0 if absent). Requires finalize().
  [[nodiscard]] double coeff(std::size_t row, std::size_t col) const;

  /// Visit the nonzeros of one row: f(col, value). Requires finalize().
  template <typename F>
  void for_each_in_row(std::size_t row, F&& f) const {
    TPCOOL_REQUIRE(finalized_ && row < n_, "bad row access");
    for (std::size_t k = row_ptr_[row]; k < row_ptr_[row + 1]; ++k) {
      f(col_idx_[k], values_[k]);
    }
  }

 private:
  struct Triplet {
    std::size_t row, col;
    double value;
  };

  std::size_t n_;
  bool finalized_ = false;
  std::vector<Triplet> triplets_;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

class StencilOperator;

/// Preconditioner applied inside the CG iteration.
enum class Preconditioner {
  kJacobi,  ///< Diagonal scaling; cheapest per iteration.
  kSsor,    ///< Symmetric SOR sweeps; ~3-5x fewer iterations on the
            ///< thermal stencil at roughly twice the cost per iteration.
};

/// Options controlling the iterative solver.
struct CgOptions {
  double tolerance = 1e-9;      ///< Relative residual ||r||/||b|| target.
  std::size_t max_iterations = 20000;
  Preconditioner preconditioner = Preconditioner::kJacobi;
  double ssor_omega = 1.5;      ///< SSOR relaxation factor, in (0, 2).
};

/// Result statistics of an iterative solve.
struct CgResult {
  std::size_t iterations = 0;
  double residual = 0.0;  ///< Final relative residual.
};

/// Solve A x = b with preconditioned conjugate gradient.
/// A must be symmetric positive definite. A non-empty `x` warm-starts the
/// iteration (an exact warm start converges in 0 iterations). Throws
/// ConvergenceError (naming the iteration count) if the iteration limit is
/// reached without meeting the tolerance.
CgResult solve_cg(const SparseMatrix& a, const std::vector<double>& b,
                  std::vector<double>& x, const CgOptions& options = {});

/// solve_cg over the banded 7-point operator: matrix-free SpMV and vector
/// kernels threaded through util::ThreadPool (deterministic for any thread
/// count), serial below a size threshold.
CgResult solve_cg(const StencilOperator& a, const std::vector<double>& b,
                  std::vector<double>& x, const CgOptions& options = {});

/// Dense Gaussian elimination with partial pivoting; for small systems and
/// cross-checks. `a` is row-major n-by-n and is consumed (modified).
std::vector<double> solve_dense(std::vector<double> a, std::vector<double> b);

/// Options for the stationary SOR iteration.
struct SorOptions {
  double relaxation = 1.5;      ///< ω in (0, 2); 1.0 = Gauss-Seidel.
  double tolerance = 1e-9;      ///< Relative residual target.
  std::size_t max_iterations = 50000;
};

/// Solve A x = b by successive over-relaxation. Converges for SPD matrices
/// with ω in (0, 2); used to cross-validate the CG solver on the thermal
/// operator. Throws ConvergenceError on iteration exhaustion.
CgResult solve_sor(const SparseMatrix& a, const std::vector<double>& b,
                   std::vector<double>& x, const SorOptions& options = {});

}  // namespace tpcool::util
