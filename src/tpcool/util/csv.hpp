#pragma once
/// \file csv.hpp
/// \brief Minimal CSV writer used by benches to dump thermal maps and sweep
///        series for external plotting.

#include <ostream>
#include <string>
#include <vector>

#include "tpcool/util/grid2d.hpp"

namespace tpcool::util {

/// Row-oriented CSV writer. Values are formatted with full double precision;
/// strings containing separators or quotes are quoted per RFC 4180.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out, char separator = ',');

  /// Write a header row.
  void header(const std::vector<std::string>& names);

  /// Begin a new row; subsequent `field()` calls append to it.
  CsvWriter& field(const std::string& value);
  CsvWriter& field(double value);
  CsvWriter& field(long long value);
  void end_row();

  /// Convenience: write a full row of doubles.
  void row(const std::vector<double>& values);

 private:
  void separator_if_needed();
  std::ostream& out_;
  char sep_;
  bool row_open_ = false;
};

/// Dump a 2D field as a dense CSV matrix (one line per iy, north row first,
/// matching how thermal maps are usually plotted).
void write_grid_csv(std::ostream& out, const Grid2D<double>& grid);

}  // namespace tpcool::util
