#include "tpcool/util/linear_solver.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tpcool/util/stencil_operator.hpp"
#include "tpcool/util/telemetry.hpp"
#include "tpcool/util/thread_pool.hpp"

namespace tpcool::util {

SparseMatrix::SparseMatrix(std::size_t n) : n_(n) {
  TPCOOL_REQUIRE(n > 0, "matrix dimension must be positive");
}

void SparseMatrix::add(std::size_t row, std::size_t col, double value) {
  TPCOOL_REQUIRE(!finalized_, "add() after finalize()");
  TPCOOL_REQUIRE(row < n_ && col < n_, "matrix index out of range");
  triplets_.push_back({row, col, value});
}

void SparseMatrix::finalize() {
  if (finalized_) return;
  std::sort(triplets_.begin(), triplets_.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  row_ptr_.assign(n_ + 1, 0);
  col_idx_.clear();
  values_.clear();
  col_idx_.reserve(triplets_.size());
  values_.reserve(triplets_.size());
  std::size_t k = 0;
  for (std::size_t row = 0; row < n_; ++row) {
    row_ptr_[row] = col_idx_.size();
    while (k < triplets_.size() && triplets_[k].row == row) {
      const std::size_t col = triplets_[k].col;
      double v = 0.0;
      while (k < triplets_.size() && triplets_[k].row == row &&
             triplets_[k].col == col) {
        v += triplets_[k].value;
        ++k;
      }
      col_idx_.push_back(col);
      values_.push_back(v);
    }
  }
  row_ptr_[n_] = col_idx_.size();
  triplets_.clear();
  triplets_.shrink_to_fit();
  finalized_ = true;
}

void SparseMatrix::multiply(const std::vector<double>& x,
                            std::vector<double>& y) const {
  TPCOOL_REQUIRE(finalized_, "multiply() before finalize()");
  TPCOOL_REQUIRE(x.size() == n_, "vector size mismatch");
  y.assign(n_, 0.0);
  for (std::size_t row = 0; row < n_; ++row) {
    double acc = 0.0;
    for (std::size_t k = row_ptr_[row]; k < row_ptr_[row + 1]; ++k) {
      acc += values_[k] * x[col_idx_[k]];
    }
    y[row] = acc;
  }
}

std::vector<double> SparseMatrix::diagonal() const {
  TPCOOL_REQUIRE(finalized_, "diagonal() before finalize()");
  std::vector<double> d(n_, 0.0);
  for (std::size_t row = 0; row < n_; ++row) {
    for (std::size_t k = row_ptr_[row]; k < row_ptr_[row + 1]; ++k) {
      if (col_idx_[k] == row) d[row] = values_[k];
    }
  }
  return d;
}

std::size_t SparseMatrix::nonzeros() const {
  TPCOOL_REQUIRE(finalized_, "nonzeros() before finalize()");
  return values_.size();
}

double SparseMatrix::coeff(std::size_t row, std::size_t col) const {
  TPCOOL_REQUIRE(finalized_, "coeff() before finalize()");
  TPCOOL_REQUIRE(row < n_ && col < n_, "matrix index out of range");
  const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[row]);
  const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[row + 1]);
  const auto it = std::lower_bound(begin, end, col);
  if (it != end && *it == col) {
    return values_[static_cast<std::size_t>(it - col_idx_.begin())];
  }
  return 0.0;
}

bool SparseMatrix::is_symmetric(double tol) const {
  TPCOOL_REQUIRE(finalized_, "is_symmetric() before finalize()");
  for (std::size_t row = 0; row < n_; ++row) {
    for (std::size_t k = row_ptr_[row]; k < row_ptr_[row + 1]; ++k) {
      const std::size_t col = col_idx_[k];
      if (std::abs(values_[k] - coeff(col, row)) > tol) return false;
    }
  }
  return true;
}

namespace {

/// Vector lengths below this run the CG kernels serially: the thermal
/// grid's auxiliary systems (and every unit-test system) are far smaller
/// and must not pay pool synchronization. One grain == inline execution.
constexpr std::size_t kVectorGrain = 1 << 14;

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  return ThreadPool::global().parallel_reduce(
      0, a.size(), kVectorGrain, [&](std::size_t lo, std::size_t hi) {
        return std::inner_product(a.begin() + static_cast<std::ptrdiff_t>(lo),
                                  a.begin() + static_cast<std::ptrdiff_t>(hi),
                                  b.begin() + static_cast<std::ptrdiff_t>(lo),
                                  0.0);
      });
}

double norm2(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }

/// Element-wise kernel over [0, n): disjoint writes, deterministic.
template <typename F>
void foreach_element(std::size_t n, F&& f) {
  ThreadPool::global().parallel_for(0, n, kVectorGrain,
                                    [&](std::size_t lo, std::size_t hi) {
                                      for (std::size_t i = lo; i < hi; ++i)
                                        f(i);
                                    });
}

/// SSOR application for the general CSR matrix (CSR columns are sorted, so
/// the forward/backward triangular sweeps just split each row at the
/// diagonal). Used when callers request SSOR on a SparseMatrix system.
void ssor_apply(const SparseMatrix& a, const std::vector<double>& diag,
                const std::vector<double>& r, std::vector<double>& z,
                double omega) {
  const std::size_t n = a.size();
  z.resize(n);
  for (std::size_t i = 0; i < n; ++i) {  // (D + ωL) t = r
    double acc = r[i];
    a.for_each_in_row(i, [&](std::size_t j, double v) {
      if (j < i) acc -= omega * v * z[j];
    });
    z[i] = acc / diag[i];
  }
  for (std::size_t i = 0; i < n; ++i) z[i] *= diag[i];
  for (std::size_t i = n; i-- > 0;) {  // (D + ωU) z = D t
    double acc = z[i];
    a.for_each_in_row(i, [&](std::size_t j, double v) {
      if (j > i) acc -= omega * v * z[j];
    });
    z[i] = acc / diag[i];
  }
}

void ssor_apply(const StencilOperator& a, const std::vector<double>& /*diag*/,
                const std::vector<double>& r, std::vector<double>& z,
                double omega) {
  a.ssor_apply(r, z, omega);
}

/// Preconditioned CG over any operator providing size()/multiply()/
/// diagonal() plus an ssor_apply overload above. The convergence check
/// runs after each update, so the final residual is never recomputed and
/// `iterations` is always populated — including on the throw path.
template <typename Op>
CgResult cg_impl(const Op& a, const std::vector<double>& b,
                 std::vector<double>& x, const CgOptions& options) {
  const std::size_t n = a.size();
  TPCOOL_REQUIRE(b.size() == n, "solve_cg: rhs size mismatch");
  TPCOOL_REQUIRE(options.ssor_omega > 0.0 && options.ssor_omega < 2.0,
                 "solve_cg: SSOR omega outside (0, 2)");
  if (x.size() != n) x.assign(n, 0.0);

  const double bnorm = norm2(b);
  if (bnorm == 0.0) {
    x.assign(n, 0.0);
    return {0, 0.0};
  }

  std::vector<double> diag = a.diagonal();
  std::vector<double> inv_diag(n);
  for (std::size_t i = 0; i < n; ++i) {
    TPCOOL_ENSURE(diag[i] > 0.0,
                  "solve_cg: non-positive diagonal (matrix not SPD?)");
    inv_diag[i] = 1.0 / diag[i];
  }
  const bool ssor = options.preconditioner == Preconditioner::kSsor;
  const auto precondition = [&](const std::vector<double>& r,
                                std::vector<double>& z) {
    if (ssor) {
      ssor_apply(a, diag, r, z, options.ssor_omega);
    } else {
      z.resize(n);
      foreach_element(n, [&](std::size_t i) { z[i] = inv_diag[i] * r[i]; });
    }
  };

  std::vector<double> r(n), z(n), p(n), ap(n);
  a.multiply(x, ap);
  foreach_element(n, [&](std::size_t i) { r[i] = b[i] - ap[i]; });

  CgResult result;
  result.residual = norm2(r) / bnorm;
  if (result.residual <= options.tolerance) return result;  // warm-start hit

  precondition(r, z);
  p = z;
  double rz = dot(r, z);

  for (std::size_t it = 1; it <= options.max_iterations; ++it) {
    a.multiply(p, ap);
    const double pap = dot(p, ap);
    TPCOOL_ENSURE(pap > 0.0,
                  "solve_cg: curvature non-positive (matrix not SPD?)");
    const double alpha = rz / pap;
    foreach_element(n, [&](std::size_t i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    });
    result.iterations = it;
    result.residual = norm2(r) / bnorm;
    if (result.residual <= options.tolerance) return result;
    precondition(r, z);
    const double rz_new = dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    foreach_element(n, [&](std::size_t i) { p[i] = z[i] + beta * p[i]; });
  }
  if (result.residual <= options.tolerance * 10.0) {
    // Accept near-converged solutions rather than failing outright.
    return result;
  }
  throw ConvergenceError("solve_cg: failed to converge (residual " +
                         std::to_string(result.residual) + " after " +
                         std::to_string(result.iterations) + " iterations)");
}

}  // namespace

CgResult solve_cg(const SparseMatrix& a, const std::vector<double>& b,
                  std::vector<double>& x, const CgOptions& options) {
  TPCOOL_REQUIRE(a.finalized(), "solve_cg: matrix not finalized");
  TraceSpan span("cg");
  const CgResult result = cg_impl(a, b, x, options);
  span.arg("n", static_cast<double>(b.size()));
  span.arg("iterations", static_cast<double>(result.iterations));
  span.arg("residual", result.residual);
  Telemetry::instance().histogram_record(
      "cg.iterations", static_cast<double>(result.iterations));
  return result;
}

CgResult solve_cg(const StencilOperator& a, const std::vector<double>& b,
                  std::vector<double>& x, const CgOptions& options) {
  TraceSpan span("cg");
  const CgResult result = cg_impl(a, b, x, options);
  span.arg("n", static_cast<double>(b.size()));
  span.arg("iterations", static_cast<double>(result.iterations));
  span.arg("residual", result.residual);
  Telemetry::instance().histogram_record(
      "cg.iterations", static_cast<double>(result.iterations));
  return result;
}

CgResult solve_sor(const SparseMatrix& a, const std::vector<double>& b,
                   std::vector<double>& x, const SorOptions& options) {
  TPCOOL_REQUIRE(a.finalized(), "solve_sor: matrix not finalized");
  TPCOOL_REQUIRE(options.relaxation > 0.0 && options.relaxation < 2.0,
                 "solve_sor: relaxation outside (0, 2)");
  const std::size_t n = a.size();
  TPCOOL_REQUIRE(b.size() == n, "solve_sor: rhs size mismatch");
  if (x.size() != n) x.assign(n, 0.0);

  const std::vector<double> diag = a.diagonal();
  for (const double d : diag) {
    TPCOOL_ENSURE(d > 0.0, "solve_sor: non-positive diagonal");
  }
  double bnorm = norm2(b);
  if (bnorm == 0.0) {
    x.assign(n, 0.0);
    return {0, 0.0};
  }

  CgResult result;
  std::vector<double> r(n);
  // Warm-start check: an already-converged initial guess costs one SpMV,
  // not a full block of sweeps.
  a.multiply(x, r);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  result.residual = norm2(r) / bnorm;
  if (result.residual <= options.tolerance) return result;

  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    // One SOR sweep.
    for (std::size_t i = 0; i < n; ++i) {
      double sigma = 0.0;
      a.for_each_in_row(i, [&](std::size_t j, double v) {
        if (j != i) sigma += v * x[j];
      });
      const double gs = (b[i] - sigma) / diag[i];
      x[i] += options.relaxation * (gs - x[i]);
    }
    // Residual check every few sweeps (it is as expensive as a sweep).
    if (it % 4 == 3 || it + 1 == options.max_iterations) {
      a.multiply(x, r);
      for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
      result.residual = norm2(r) / bnorm;
      result.iterations = it + 1;
      if (result.residual <= options.tolerance) return result;
    }
  }
  throw ConvergenceError("solve_sor: failed to converge (residual " +
                         std::to_string(result.residual) + ")");
}

std::vector<double> solve_dense(std::vector<double> a, std::vector<double> b) {
  const std::size_t n = b.size();
  TPCOOL_REQUIRE(a.size() == n * n, "solve_dense: matrix/vector size mismatch");
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::abs(a[row * n + col]) > std::abs(a[pivot * n + col]))
        pivot = row;
    }
    TPCOOL_ENSURE(std::abs(a[pivot * n + col]) > 1e-300,
                  "solve_dense: singular matrix");
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j)
        std::swap(a[col * n + j], a[pivot * n + j]);
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t row = col + 1; row < n; ++row) {
      const double f = a[row * n + col] / a[col * n + col];
      if (f == 0.0) continue;
      for (std::size_t j = col; j < n; ++j) a[row * n + j] -= f * a[col * n + j];
      b[row] -= f * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t j = i + 1; j < n; ++j) acc -= a[i * n + j] * x[j];
    x[i] = acc / a[i * n + i];
  }
  return x;
}

}  // namespace tpcool::util
