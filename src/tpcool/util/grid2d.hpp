#pragma once
/// \file grid2d.hpp
/// \brief Dense row-major 2D grid container used for power maps, HTC maps and
///        per-layer temperature fields.

#include <algorithm>
#include <cstddef>
#include <vector>

#include "tpcool/util/error.hpp"

namespace tpcool::util {

/// Dense 2D array addressed as (ix, iy) with ix in [0, nx) horizontal
/// (west -> east) and iy in [0, ny) vertical (south -> north).  Storage is
/// row-major in iy, i.e. the x index varies fastest.
template <typename T>
class Grid2D {
 public:
  Grid2D() = default;

  Grid2D(std::size_t nx, std::size_t ny, T fill = T{})
      : nx_(nx), ny_(ny), data_(nx * ny, fill) {
    TPCOOL_REQUIRE(nx > 0 && ny > 0, "grid dimensions must be positive");
  }

  [[nodiscard]] std::size_t nx() const noexcept { return nx_; }
  [[nodiscard]] std::size_t ny() const noexcept { return ny_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] T& at(std::size_t ix, std::size_t iy) {
    TPCOOL_REQUIRE(ix < nx_ && iy < ny_, "grid index out of range");
    return data_[iy * nx_ + ix];
  }
  [[nodiscard]] const T& at(std::size_t ix, std::size_t iy) const {
    TPCOOL_REQUIRE(ix < nx_ && iy < ny_, "grid index out of range");
    return data_[iy * nx_ + ix];
  }

  /// Unchecked access for hot loops; callers must guarantee bounds.
  [[nodiscard]] T& operator()(std::size_t ix, std::size_t iy) noexcept {
    return data_[iy * nx_ + ix];
  }
  [[nodiscard]] const T& operator()(std::size_t ix,
                                    std::size_t iy) const noexcept {
    return data_[iy * nx_ + ix];
  }

  [[nodiscard]] std::vector<T>& data() noexcept { return data_; }
  [[nodiscard]] const std::vector<T>& data() const noexcept { return data_; }

  void fill(const T& value) { std::fill(data_.begin(), data_.end(), value); }

  /// Element-wise transform in place.
  template <typename F>
  void apply(F&& f) {
    for (auto& v : data_) v = f(v);
  }

  [[nodiscard]] bool same_shape(const Grid2D& other) const noexcept {
    return nx_ == other.nx_ && ny_ == other.ny_;
  }

 private:
  std::size_t nx_ = 0;
  std::size_t ny_ = 0;
  std::vector<T> data_;
};

/// Sum of all elements (useful for conservation checks on power maps).
template <typename T>
[[nodiscard]] T grid_sum(const Grid2D<T>& g) {
  T s{};
  for (const auto& v : g.data()) s += v;
  return s;
}

/// Maximum element of a non-empty grid.
template <typename T>
[[nodiscard]] T grid_max(const Grid2D<T>& g) {
  TPCOOL_REQUIRE(!g.empty(), "grid_max of empty grid");
  return *std::max_element(g.data().begin(), g.data().end());
}

/// Minimum element of a non-empty grid.
template <typename T>
[[nodiscard]] T grid_min(const Grid2D<T>& g) {
  TPCOOL_REQUIRE(!g.empty(), "grid_min of empty grid");
  return *std::min_element(g.data().begin(), g.data().end());
}

}  // namespace tpcool::util
