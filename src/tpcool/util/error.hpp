#pragma once
/// \file error.hpp
/// \brief Contract-checking macros used across the tpcool library.
///
/// tpcool follows the C++ Core Guidelines error-handling philosophy:
/// violated preconditions and invariants throw exceptions carrying a message
/// that names the file, line and violated condition.  All checks stay enabled
/// in release builds: the library drives design decisions, so silently wrong
/// answers are worse than the (negligible) cost of the checks.

#include <sstream>
#include <stdexcept>
#include <string>

namespace tpcool::util {

/// Exception thrown when a precondition (argument contract) is violated.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Exception thrown when an internal invariant or postcondition is violated.
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Exception thrown when a numerical routine fails to converge.
class ConvergenceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {

[[noreturn]] inline void throw_precondition(const char* cond, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": precondition violated: (" << cond << ')';
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}

[[noreturn]] inline void throw_invariant(const char* cond, const char* file,
                                         int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": invariant violated: (" << cond << ')';
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}

}  // namespace detail
}  // namespace tpcool::util

/// Check a caller-facing precondition; throws tpcool::util::PreconditionError.
#define TPCOOL_REQUIRE(cond, msg)                                        \
  do {                                                                   \
    if (!(cond))                                                         \
      ::tpcool::util::detail::throw_precondition(#cond, __FILE__,        \
                                                 __LINE__, (msg));       \
  } while (false)

/// Check an internal invariant/postcondition; throws tpcool::util::InvariantError.
#define TPCOOL_ENSURE(cond, msg)                                         \
  do {                                                                   \
    if (!(cond))                                                         \
      ::tpcool::util::detail::throw_invariant(#cond, __FILE__, __LINE__, \
                                              (msg));                    \
  } while (false)
