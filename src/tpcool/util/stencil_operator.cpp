#include "tpcool/util/stencil_operator.hpp"

#include <algorithm>

#include "tpcool/util/thread_pool.hpp"

namespace tpcool::util {

namespace {

/// Rows of cells (nx indices each) per parallel chunk: keeps chunks around
/// a few thousand cells so tiny systems run inline (see ThreadPool grain
/// semantics) and chunk boundaries never split an x-row.
constexpr std::size_t kRowsPerChunk = 64;

StencilBand opposite(StencilBand band) {
  switch (band) {
    case StencilBand::kXMinus: return StencilBand::kXPlus;
    case StencilBand::kXPlus: return StencilBand::kXMinus;
    case StencilBand::kYMinus: return StencilBand::kYPlus;
    case StencilBand::kYPlus: return StencilBand::kYMinus;
    case StencilBand::kZMinus: return StencilBand::kZPlus;
    case StencilBand::kZPlus: return StencilBand::kZMinus;
  }
  TPCOOL_ENSURE(false, "invalid stencil band");
  return StencilBand::kXMinus;
}

}  // namespace

StencilOperator::StencilOperator(std::size_t nx, std::size_t ny,
                                 std::size_t nz)
    : nx_(nx), ny_(ny), nz_(nz) {
  TPCOOL_REQUIRE(nx > 0 && ny > 0 && nz > 0,
                 "stencil dimensions must be positive");
  const std::size_t n = nx * ny * nz;
  diag_.assign(n, 0.0);
  for (auto& band : bands_) band.assign(n, 0.0);
}

std::size_t StencilOperator::neighbor_index(std::size_t i,
                                            StencilBand band) const {
  const std::size_t ix = i % nx_;
  const std::size_t iy = (i / nx_) % ny_;
  const std::size_t iz = i / (nx_ * ny_);
  switch (band) {
    case StencilBand::kXMinus:
      TPCOOL_REQUIRE(ix > 0, "no x- neighbour at grid edge");
      return i - 1;
    case StencilBand::kXPlus:
      TPCOOL_REQUIRE(ix + 1 < nx_, "no x+ neighbour at grid edge");
      return i + 1;
    case StencilBand::kYMinus:
      TPCOOL_REQUIRE(iy > 0, "no y- neighbour at grid edge");
      return i - nx_;
    case StencilBand::kYPlus:
      TPCOOL_REQUIRE(iy + 1 < ny_, "no y+ neighbour at grid edge");
      return i + nx_;
    case StencilBand::kZMinus:
      TPCOOL_REQUIRE(iz > 0, "no z- neighbour at grid edge");
      return i - nx_ * ny_;
    case StencilBand::kZPlus:
      TPCOOL_REQUIRE(iz + 1 < nz_, "no z+ neighbour at grid edge");
      return i + nx_ * ny_;
  }
  TPCOOL_ENSURE(false, "invalid stencil band");
  return i;
}

void StencilOperator::add_coupling(std::size_t i, StencilBand band, double g) {
  TPCOOL_REQUIRE(i < size(), "cell index out of range");
  const std::size_t j = neighbor_index(i, band);
  bands_[static_cast<std::size_t>(band)][i] -= g;
  bands_[static_cast<std::size_t>(opposite(band))][j] -= g;
  diag_[i] += g;
  diag_[j] += g;
}

void StencilOperator::add_to_diagonal(std::size_t i, double value) {
  TPCOOL_REQUIRE(i < size(), "cell index out of range");
  diag_[i] += value;
}

void StencilOperator::add_diagonal(const std::vector<double>& values) {
  TPCOOL_REQUIRE(values.size() == size(), "diagonal size mismatch");
  for (std::size_t i = 0; i < values.size(); ++i) diag_[i] += values[i];
}

void StencilOperator::set_shifted_diagonal(const StencilOperator& base,
                                           const std::vector<double>& shift) {
  TPCOOL_REQUIRE(base.nx_ == nx_ && base.ny_ == ny_ && base.nz_ == nz_,
                 "grid mismatch");
  TPCOOL_REQUIRE(shift.size() == size(), "diagonal size mismatch");
  for (std::size_t i = 0; i < size(); ++i) diag_[i] = base.diag_[i] + shift[i];
}

void StencilOperator::multiply(const std::vector<double>& x,
                               std::vector<double>& y) const {
  TPCOOL_REQUIRE(x.size() == size(), "vector size mismatch");
  y.resize(size());
  const std::size_t plane = nx_ * ny_;
  const std::size_t row_count = ny_ * nz_;
  const double* xs = x.data();

  // Disjoint x-rows per chunk: deterministic for any thread count.
  ThreadPool::global().parallel_for(
      0, row_count, kRowsPerChunk,
      [&](std::size_t row_begin, std::size_t row_end) {
        for (std::size_t row = row_begin; row < row_end; ++row) {
          const std::size_t iy = row % ny_;
          const std::size_t iz = row / ny_;
          const std::size_t base = row * nx_;
          const bool has_ym = iy > 0;
          const bool has_yp = iy + 1 < ny_;
          const bool has_zm = iz > 0;
          const bool has_zp = iz + 1 < nz_;
          for (std::size_t ix = 0; ix < nx_; ++ix) {
            const std::size_t i = base + ix;
            double acc = diag_[i] * xs[i];
            if (ix > 0) acc += bands_[0][i] * xs[i - 1];
            if (ix + 1 < nx_) acc += bands_[1][i] * xs[i + 1];
            if (has_ym) acc += bands_[2][i] * xs[i - nx_];
            if (has_yp) acc += bands_[3][i] * xs[i + nx_];
            if (has_zm) acc += bands_[4][i] * xs[i - plane];
            if (has_zp) acc += bands_[5][i] * xs[i + plane];
            y[i] = acc;
          }
        }
      });
}

void StencilOperator::ssor_apply(const std::vector<double>& r,
                                 std::vector<double>& z, double omega) const {
  TPCOOL_REQUIRE(r.size() == size(), "vector size mismatch");
  TPCOOL_REQUIRE(omega > 0.0 && omega < 2.0, "SSOR omega outside (0, 2)");
  const std::size_t n = size();
  const std::size_t plane = nx_ * ny_;
  z.resize(n);

  // Forward sweep: (D + ωL) t = r.  Lower neighbours of cell i are exactly
  // i-1, i-nx, i-plane, all already computed when iterating i ascending.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t ix = i % nx_;
    double acc = r[i];
    if (ix > 0) acc -= omega * bands_[0][i] * z[i - 1];
    if (i >= nx_ && (i / nx_) % ny_ > 0) acc -= omega * bands_[2][i] * z[i - nx_];
    if (i >= plane) acc -= omega * bands_[4][i] * z[i - plane];
    TPCOOL_ENSURE(diag_[i] > 0.0, "ssor_apply: non-positive diagonal");
    z[i] = acc / diag_[i];
  }
  // Scale by D: s = D t (in place).
  for (std::size_t i = 0; i < n; ++i) z[i] *= diag_[i];
  // Backward sweep: (D + ωU) z = s.
  for (std::size_t i = n; i-- > 0;) {
    const std::size_t ix = i % nx_;
    double acc = z[i];
    if (ix + 1 < nx_) acc -= omega * bands_[1][i] * z[i + 1];
    if ((i / nx_) % ny_ + 1 < ny_) acc -= omega * bands_[3][i] * z[i + nx_];
    if (i + plane < n) acc -= omega * bands_[5][i] * z[i + plane];
    z[i] = acc / diag_[i];
  }
}

SparseMatrix StencilOperator::to_sparse() const {
  SparseMatrix m(size());
  for (std::size_t i = 0; i < size(); ++i) {
    if (diag_[i] != 0.0) m.add(i, i, diag_[i]);
    const std::size_t ix = i % nx_;
    const std::size_t iy = (i / nx_) % ny_;
    const std::size_t iz = i / (nx_ * ny_);
    const std::size_t plane = nx_ * ny_;
    if (ix > 0 && bands_[0][i] != 0.0) m.add(i, i - 1, bands_[0][i]);
    if (ix + 1 < nx_ && bands_[1][i] != 0.0) m.add(i, i + 1, bands_[1][i]);
    if (iy > 0 && bands_[2][i] != 0.0) m.add(i, i - nx_, bands_[2][i]);
    if (iy + 1 < ny_ && bands_[3][i] != 0.0) m.add(i, i + nx_, bands_[3][i]);
    if (iz > 0 && bands_[4][i] != 0.0) m.add(i, i - plane, bands_[4][i]);
    if (iz + 1 < nz_ && bands_[5][i] != 0.0) m.add(i, i + plane, bands_[5][i]);
  }
  m.finalize();
  return m;
}

StencilOperator StencilOperator::from_sparse(const SparseMatrix& m,
                                             std::size_t nx, std::size_t ny,
                                             std::size_t nz) {
  TPCOOL_REQUIRE(m.finalized(), "from_sparse: matrix not finalized");
  TPCOOL_REQUIRE(m.size() == nx * ny * nz,
                 "from_sparse: dimension mismatch with grid");
  StencilOperator op(nx, ny, nz);
  const std::size_t plane = nx * ny;
  for (std::size_t i = 0; i < m.size(); ++i) {
    const std::size_t ix = i % nx;
    const std::size_t iy = (i / nx) % ny;
    const std::size_t iz = i / plane;
    m.for_each_in_row(i, [&](std::size_t j, double v) {
      if (j == i) {
        op.diag_[i] = v;
      } else if (j + 1 == i && ix > 0) {
        op.bands_[0][i] = v;
      } else if (j == i + 1 && ix + 1 < nx) {
        op.bands_[1][i] = v;
      } else if (j + nx == i && iy > 0) {
        op.bands_[2][i] = v;
      } else if (j == i + nx && iy + 1 < ny) {
        op.bands_[3][i] = v;
      } else if (j + plane == i && iz > 0) {
        op.bands_[4][i] = v;
      } else if (j == i + plane && iz + 1 < nz) {
        op.bands_[5][i] = v;
      } else {
        TPCOOL_REQUIRE(v == 0.0,
                       "from_sparse: nonzero outside the 7-point stencil");
      }
    });
  }
  return op;
}

}  // namespace tpcool::util
