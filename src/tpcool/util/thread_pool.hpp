#pragma once
/// \file thread_pool.hpp
/// \brief Minimal std::jthread worker pool with a deterministic
///        parallel-for/parallel-reduce used by the solver hot loops.
///
/// Design constraints (see README "Solver architecture"):
///  - No new dependencies: std::jthread + condition_variable only.
///  - Determinism: results must be bit-identical for 1 vs N threads, so
///    reductions are chunked on fixed boundaries and partial sums are
///    combined in chunk order, never in thread-completion order.
///  - Small systems must not pay threading overhead: callers pass a grain
///    size and the pool runs inline when the range is one grain or the
///    pool has a single thread.
///
/// The default pool size comes from the TPCOOL_NUM_THREADS environment
/// variable (if set and positive) or std::thread::hardware_concurrency().
/// Bench binaries expose a `--threads N` flag that calls
/// `set_global_thread_count()` before the first solve.
///
/// Telemetry (docs/TRACING.md): with tracing enabled the pool maintains
/// `pool.jobs` / `pool.chunks` counters, a `pool.chunks_per_job`
/// histogram, a `pool.queue_depth` gauge (chunks outstanding when a job is
/// posted, 0 between jobs), and per-worker busy-time counters
/// (`pool.caller.busy_ms`, `pool.worker<i>.busy_ms`). Disabled tracing
/// costs one atomic load per parallel_for / drain pass.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tpcool::util {

/// Fixed-size worker pool executing chunked index-range loops.
///
/// The pool owns `thread_count() - 1` workers; the caller of
/// `parallel_for()` participates as the remaining worker, so a pool of one
/// thread runs everything inline with zero synchronization.
class ThreadPool {
 public:
  /// Spawn a pool with `threads` total workers (including the caller of
  /// parallel_for). `threads == 0` selects the default (env/hardware).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size() + 1;
  }

  /// Run `body(begin, end)` over [begin, end) split into chunks of at most
  /// `grain` indices. Blocks until every chunk has run. Chunk boundaries
  /// depend only on (begin, end, grain) — not on the thread count — so
  /// disjoint-write bodies are deterministic.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// Deterministic chunked reduction: sums `partial(begin, end)` over fixed
  /// chunks of `grain` indices, combining partials in chunk order. The
  /// result is bit-identical for any thread count.
  [[nodiscard]] double parallel_reduce(
      std::size_t begin, std::size_t end, std::size_t grain,
      const std::function<double(std::size_t, std::size_t)>& partial);

  /// Process-wide pool used by the linear solvers. Lazily constructed.
  [[nodiscard]] static ThreadPool& global();

  /// Resize the global pool (joins the old workers). Used by the bench
  /// `--threads` flag and by tests; `threads == 0` restores the default.
  static void set_global_thread_count(std::size_t threads);

  /// Thread count the default-constructed pool would use
  /// (TPCOOL_NUM_THREADS env override, else hardware concurrency).
  [[nodiscard]] static std::size_t default_thread_count();

 private:
  struct Job {
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t grain = 1;
    std::size_t next_chunk = 0;   // next chunk index to claim
    std::size_t chunk_count = 0;
    std::size_t chunks_done = 0;
    std::size_t generation = 0;
  };

  void worker_loop(const std::stop_token& stop, std::size_t worker_index);
  /// Claim and run chunks of the current job until none remain. Returns
  /// after the last chunk this thread ran is recorded. `worker_index` 0 is
  /// the parallel_for caller, 1..N the pool workers; it selects the
  /// telemetry busy-time counter (`pool.caller.busy_ms` /
  /// `pool.worker<i>.busy_ms`) and is unused while telemetry is disabled.
  void drain_job(std::unique_lock<std::mutex>& lock, std::size_t worker_index);

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable job_done_;
  Job job_;
  bool job_active_ = false;
  std::vector<std::jthread> workers_;
};

}  // namespace tpcool::util
