#include "tpcool/core/cache_shard.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include "tpcool/util/error.hpp"

namespace tpcool::core {

CacheShard::CacheShard(std::size_t capacity, std::size_t shard_index)
    : capacity_(capacity) {
  TPCOOL_REQUIRE(capacity >= 1, "cache shard needs capacity >= 1");
  if (shard_index != kNoShardIndex) {
    // Resolve the telemetry cells once here (shard construction is rare);
    // the hot-path increments below are then a null check plus the
    // one-atomic gate inside add().
    const std::string prefix = "cache.shard" + std::to_string(shard_index);
    util::Telemetry& telemetry = util::Telemetry::instance();
    tel_hits_ = &telemetry.counter(prefix + ".hits");
    tel_misses_ = &telemetry.counter(prefix + ".misses");
    tel_evictions_ = &telemetry.counter(prefix + ".evictions");
  }
}

void CacheShard::touch(std::list<Entry>::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
}

void CacheShard::evict_over_capacity() {
  while (lru_.size() > capacity_) {
    // Cost-aware victim selection: the cheapest-to-recompute entry goes
    // first, so a 60 ms coupled solve outlives a cheap schedule scan at
    // equal recency.  Scanning from the LRU tail with a strict `<` makes
    // the least recently used of the minimum-cost entries the victim —
    // with uniform costs this is exact LRU, which the pre-shard tests pin.
    auto victim = std::prev(lru_.end());
    for (auto it = victim; it != lru_.begin();) {
      --it;
      if (it->cost_ms < victim->cost_ms) victim = it;
    }
    index_.erase(victim->key);
    lru_.erase(victim);
    ++stats_.evictions;
    if (tel_evictions_ != nullptr) tel_evictions_->add(1.0);
  }
}

SimulationResult CacheShard::get_or_compute(
    const std::string& key,
    const std::function<SimulationResult()>& compute) {
  std::shared_ptr<InFlight> mine;
  {
    std::unique_lock lock(mutex_);
    while (true) {
      const auto it = index_.find(key);
      if (it != index_.end()) {
        ++stats_.hits;
        if (tel_hits_ != nullptr) tel_hits_->add(1.0);
        touch(it->second);
        return it->second->result;
      }
      const auto fit = in_flight_.find(key);
      if (fit == in_flight_.end()) break;
      // Another thread is computing this key: wait on its in-flight record
      // and consume the result from it directly.  The record is pinned by
      // this shared reference, so eviction pressure dropping the stored
      // entry between the compute and this wake-up cannot force a
      // recompute — miss/hit counters are exact at any capacity.
      const std::shared_ptr<InFlight> theirs = fit->second;
      ++stats_.waiting;
      compute_done_.wait(lock,
                         [&] { return theirs->ready || theirs->failed; });
      --stats_.waiting;
      if (theirs->ready) {
        ++stats_.hits;
        if (tel_hits_ != nullptr) tel_hits_->add(1.0);
        const auto stored = index_.find(key);
        if (stored != index_.end()) touch(stored->second);
        return theirs->result;
      }
      // The computing thread threw; loop and take over (or wait on a newer
      // in-flight record).
    }
    mine = std::make_shared<InFlight>();
    in_flight_.emplace(key, mine);
    ++stats_.misses;
    if (tel_misses_ != nullptr) tel_misses_->add(1.0);
  }
  // Compute outside the lock so independent keys solve in parallel.  The
  // wall clock around the compute is the entry's eviction cost: observed,
  // not modeled, so transient segments and steady solves rank naturally.
  SimulationResult result;
  const auto started = std::chrono::steady_clock::now();
  try {
    result = compute();
  } catch (...) {
    {
      std::lock_guard lock(mutex_);
      mine->failed = true;
      in_flight_.erase(key);
    }
    compute_done_.notify_all();
    throw;
  }
  const double cost_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - started)
          .count();
  put(key, result, cost_ms);
  {
    std::lock_guard lock(mutex_);
    mine->result = std::move(result);
    mine->ready = true;
    in_flight_.erase(key);
  }
  compute_done_.notify_all();
  return mine->result;
}

bool CacheShard::try_get(const std::string& key, SimulationResult& out) {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    if (tel_misses_ != nullptr) tel_misses_->add(1.0);
    return false;
  }
  ++stats_.hits;
  if (tel_hits_ != nullptr) tel_hits_->add(1.0);
  touch(it->second);
  out = it->second->result;
  return true;
}

void CacheShard::put(const std::string& key, SimulationResult result,
                     double cost_ms) {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Values for one key are identical by construction; keep the larger
    // observed cost so a remeasured entry never loses eviction priority.
    it->second->cost_ms = std::max(it->second->cost_ms, cost_ms);
    touch(it->second);
    return;
  }
  lru_.push_front(Entry{key, cost_ms, std::move(result)});
  index_.emplace(key, lru_.begin());
  evict_over_capacity();
}

CacheShard::Stats CacheShard::stats() const {
  std::lock_guard lock(mutex_);
  Stats s = stats_;
  s.size = lru_.size();
  return s;
}

void CacheShard::clear() {
  std::lock_guard lock(mutex_);
  lru_.clear();
  index_.clear();
  const std::size_t waiting = stats_.waiting;  // a gauge, not a counter
  stats_ = Stats{};
  stats_.waiting = waiting;
}

std::string CacheShard::encode_segment(std::size_t segment_index,
                                       std::size_t segment_count,
                                       cache_io::SegmentInfo& info) const {
  cache_io::SegmentEncoder encoder(segment_index, segment_count);
  {
    std::lock_guard lock(mutex_);
    for (const Entry& entry : lru_) {
      encoder.add(entry.key, entry.cost_ms,
                  cache_io::serialize_result(entry.result));
    }
  }
  info.entry_count = encoder.entry_count();
  std::string blob = std::move(encoder).finish();
  info.byte_size = blob.size();
  // The sealed stream digest is the blob's last 8 little-endian bytes.
  info.stream_digest = 0;
  for (int byte = 0; byte < 8; ++byte) {
    info.stream_digest |=
        static_cast<std::uint64_t>(static_cast<unsigned char>(
            blob[blob.size() - 8 + static_cast<std::size_t>(byte)]))
        << (8 * byte);
  }
  return blob;
}

void CacheShard::absorb(std::vector<cache_io::SnapshotEntry> entries) {
  std::lock_guard lock(mutex_);
  for (cache_io::SnapshotEntry& entry : entries) {
    const auto it = index_.find(entry.key);
    if (it != index_.end()) {
      // Existing entries win (identical values by construction); keep the
      // larger cost so a freshly measured entry is not demoted by a
      // snapshot written before costs were observed.
      it->second->cost_ms = std::max(it->second->cost_ms, entry.cost_ms);
      continue;
    }
    lru_.push_back(
        Entry{std::move(entry.key), entry.cost_ms, std::move(entry.result)});
    index_.emplace(std::prev(lru_.end())->key, std::prev(lru_.end()));
  }
  evict_over_capacity();
}

std::uint64_t CacheShard::content_digest_sum() const {
  std::lock_guard lock(mutex_);
  std::uint64_t sum = 0;
  for (const Entry& entry : lru_) {
    sum += cache_io::entry_content_digest(
        entry.key, cache_io::serialize_result(entry.result));
  }
  return sum;
}

}  // namespace tpcool::core
