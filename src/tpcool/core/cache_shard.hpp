#pragma once
/// \file cache_shard.hpp
/// \brief One lock stripe of the sharded SolveCache: a cost-aware LRU store
///        with exact in-flight deduplication.
///
/// A shard owns every key whose FNV-1a digest falls in its contiguous
/// digest range (see cache_io::shard_index_for_digest) and is a complete
/// little cache: its own mutex, LRU list, index, in-flight records, and
/// hit/miss/eviction counters.  SolveCache routes each key to its shard and
/// sums the per-shard counters — sums of exact counters are exact, so the
/// engine contract (deterministic, machine-independent hit/miss counts)
/// survives the striping.  A shard never takes another shard's lock, so
/// shards cannot deadlock against each other and hits on different shards
/// never contend.
///
/// Eviction is cost-aware: every entry carries the observed wall-clock cost
/// of computing it (`cost_ms`), and when the shard is over capacity it
/// evicts the cheapest-to-recompute entry first, breaking ties toward the
/// least recently used.  With uniform costs (e.g. entries inserted via
/// put() without a measured cost) this degrades to exact LRU.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "tpcool/core/cache_segment_io.hpp"
#include "tpcool/core/server.hpp"
#include "tpcool/util/telemetry.hpp"

namespace tpcool::core {

/// One stripe of the sharded solve cache.  Thread-safe; see file comment.
class CacheShard {
 public:
  /// Counters since construction or clear(); all exact (see
  /// SolveCache::Stats for the contract).
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;
    std::size_t size = 0;
    std::size_t waiting = 0;  ///< Gauge: threads blocked on an in-flight
                              ///< compute; clear() does not reset it.
  };

  /// Sentinel `shard_index`: not part of a sharded cache, no telemetry.
  static constexpr std::size_t kNoShardIndex = static_cast<std::size_t>(-1);

  /// `shard_index` is this shard's position in its SolveCache; when given,
  /// the shard mirrors its counters into the telemetry registry as
  /// `cache.shard<k>.{hits,misses,evictions}` (aggregated across cache
  /// instances sharing an index — see docs/TRACING.md).
  explicit CacheShard(std::size_t capacity,
                      std::size_t shard_index = kNoShardIndex);

  CacheShard(const CacheShard&) = delete;
  CacheShard& operator=(const CacheShard&) = delete;

  /// Serve `key` or run `compute` (without the shard lock held), measuring
  /// its wall-clock cost for eviction.  Concurrent calls for one key are
  /// deduplicated exactly: one miss computes, waiters block on the
  /// in-flight record and count hits, immune to eviction pressure.
  [[nodiscard]] SimulationResult get_or_compute(
      const std::string& key,
      const std::function<SimulationResult()>& compute);

  /// Lookup without computing; counts a hit or a miss.
  [[nodiscard]] bool try_get(const std::string& key, SimulationResult& out);

  /// Insert as most-recently-used (idempotent: an existing entry is kept,
  /// refreshed, and keeps the larger of the two costs).
  void put(const std::string& key, SimulationResult result,
           double cost_ms = 0.0);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Drop all entries and reset the counters (the waiting gauge survives).
  void clear();

  /// Encode this shard's entries (MRU -> LRU, under the shard lock) as
  /// segment `segment_index` of `segment_count` and fill `info` with the
  /// encoded entry count, byte size, and stream digest.
  [[nodiscard]] std::string encode_segment(std::size_t segment_index,
                                           std::size_t segment_count,
                                           cache_io::SegmentInfo& info) const;

  /// Merge snapshot entries behind the existing ones, in the given order
  /// (existing keys win — values for one key are identical by
  /// construction, and the resident entry keeps the larger cost), then
  /// evict over capacity.  Counters are not touched.  The caller routes:
  /// every entry's key must belong to this shard.
  void absorb(std::vector<cache_io::SnapshotEntry> entries);

  /// Wrapping sum of per-entry content digests (see
  /// cache_io::entry_content_digest) — order-insensitive, cost-blind.
  [[nodiscard]] std::uint64_t content_digest_sum() const;

 private:
  struct Entry {
    std::string key;
    double cost_ms = 0.0;
    SimulationResult result;
  };

  /// Shared record of one in-flight computation.  The computing thread
  /// publishes the result (or the failure) here; waiters hold their own
  /// reference and consume from it directly, immune to LRU eviction.
  struct InFlight {
    bool ready = false;
    bool failed = false;
    SimulationResult result;
  };

  /// Requires lock held: record use of `it` (move to LRU front).
  void touch(std::list<Entry>::iterator it);
  /// Requires lock held: evict cheapest-cost (ties -> least recently used)
  /// entries while over capacity.
  void evict_over_capacity();

  mutable std::mutex mutex_;
  std::condition_variable compute_done_;
  std::size_t capacity_;
  /// Telemetry mirrors of the Stats counters (null when constructed
  /// without a shard index); cells live for the process.
  util::TelemetryCounter* tel_hits_ = nullptr;
  util::TelemetryCounter* tel_misses_ = nullptr;
  util::TelemetryCounter* tel_evictions_ = nullptr;
  std::list<Entry> lru_;  ///< Front = most recently used.
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::unordered_map<std::string, std::shared_ptr<InFlight>> in_flight_;
  Stats stats_;
};

}  // namespace tpcool::core
