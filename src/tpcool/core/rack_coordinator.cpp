#include "tpcool/core/rack_coordinator.hpp"

#include <memory>

#include "tpcool/core/parallel.hpp"
#include "tpcool/core/pipeline_pool.hpp"
#include "tpcool/core/solve_cache.hpp"
#include "tpcool/util/error.hpp"

namespace tpcool::core {

namespace {

/// One server per chunk: each rack slot schedules and scans independently.
constexpr std::size_t kRackGrain = 1;

}  // namespace

RackCoordinator::RackCoordinator(Config config) : config_(std::move(config)) {
  TPCOOL_REQUIRE(!config_.supply_candidates_c.empty(),
                 "no supply-temperature candidates");
}

RackPlan RackCoordinator::plan(const std::vector<std::string>& benchmarks) {
  TPCOOL_REQUIRE(!benchmarks.empty(), "rack plan needs at least one server");
  const double design_flow = server_config_for(config_.approach,
                                               config_.cell_size_m)
                                 .operating_point.water_flow_kg_h;

  // Per-server phase, embarrassingly parallel across the rack: schedule,
  // then find the highest feasible supply temperature (candidates scanned
  // descending). An infeasible server throws; parallel_map rethrows the
  // first one in rack order, matching the serial scan.
  RackPlan plan;
  plan.servers = parallel_map<ServerPlan>(
      benchmarks.size(), kRackGrain,
      [&](std::size_t) {
        return PipelinePool::global().checkout(
            config_.approach, config_.cell_size_m, SolveCache::global());
      },
      [&](PipelinePool::Lease& pipeline, std::size_t i) {
        const std::string& name = benchmarks[i];
        const workload::BenchmarkProfile& bench =
            workload::find_benchmark(name);
        ServerModel& server = pipeline->server();
        ServerPlan sp;
        sp.benchmark = name;
        sp.decision = pipeline->scheduler().schedule(bench, config_.qos);

        for (const double t_w : config_.supply_candidates_c) {
          server.set_operating_point(
              {.water_flow_kg_h = design_flow, .water_inlet_c = t_w});
          const SimulationResult sim =
              server.simulate(bench, sp.decision.point.config,
                              sp.decision.cores, sp.decision.idle_state);
          // Feasibility is the TCASE limit; partial channel dry-out over
          // the dead east area of the die is expected at load and harmless.
          if (sim.tcase_c <= config_.tcase_limit_c) {
            sp.max_supply_temp_c = t_w;
            sp.package_power_w = sim.total_power_w;
            return sp;
          }
        }
        TPCOOL_REQUIRE(false, "server '" + name +
                                  "' infeasible at every candidate supply "
                                  "temperature");
        return sp;
      });

  // Shared loop: the rack setpoint is the minimum per-server maximum.
  std::vector<cooling::ServerDemand> demands;
  demands.reserve(plan.servers.size());
  for (const ServerPlan& sp : plan.servers) {
    demands.push_back({sp.package_power_w, sp.max_supply_temp_c, design_flow});
  }
  plan.cooling = cooling::solve_rack_cooling(demands, config_.chiller);

  // Report each server's hot spot at the shared setpoint — again parallel;
  // the binding server (max supply == setpoint) is a cache hit from the
  // scan above.
  const std::vector<SimulationResult> at_setpoint =
      parallel_map<SimulationResult>(
          plan.servers.size(), kRackGrain,
          [&](std::size_t) {
            return PipelinePool::global().checkout(
                config_.approach, config_.cell_size_m, SolveCache::global());
          },
          [&](PipelinePool::Lease& pipeline, std::size_t i) {
            const ServerPlan& sp = plan.servers[i];
            const workload::BenchmarkProfile& bench =
                workload::find_benchmark(sp.benchmark);
            pipeline->server().set_operating_point(
                {.water_flow_kg_h = design_flow,
                 .water_inlet_c = plan.cooling.supply_temp_c});
            return pipeline->server().simulate(bench, sp.decision.point.config,
                                               sp.decision.cores,
                                               sp.decision.idle_state);
          });
  for (std::size_t i = 0; i < plan.servers.size(); ++i) {
    plan.servers[i].die_max_c = at_setpoint[i].die.max_c;
  }
  return plan;
}

}  // namespace tpcool::core
