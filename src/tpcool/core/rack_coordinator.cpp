#include "tpcool/core/rack_coordinator.hpp"

#include "tpcool/util/error.hpp"

namespace tpcool::core {

RackCoordinator::RackCoordinator(Config config)
    : config_(std::move(config)),
      pipeline_(config_.approach, config_.cell_size_m) {
  TPCOOL_REQUIRE(!config_.supply_candidates_c.empty(),
                 "no supply-temperature candidates");
}

RackPlan RackCoordinator::plan(const std::vector<std::string>& benchmarks) {
  TPCOOL_REQUIRE(!benchmarks.empty(), "rack plan needs at least one server");
  RackPlan plan;
  ServerModel& server = pipeline_.server();
  const double design_flow = server.operating_point().water_flow_kg_h;

  // Per-server: schedule, then find the highest feasible supply temperature
  // (the candidates are scanned descending).
  for (const std::string& name : benchmarks) {
    const workload::BenchmarkProfile& bench = workload::find_benchmark(name);
    ServerPlan sp;
    sp.benchmark = name;
    sp.decision = pipeline_.scheduler().schedule(bench, config_.qos);

    bool feasible = false;
    for (const double t_w : config_.supply_candidates_c) {
      server.set_operating_point(
          {.water_flow_kg_h = design_flow, .water_inlet_c = t_w});
      const SimulationResult sim =
          server.simulate(bench, sp.decision.point.config, sp.decision.cores,
                          sp.decision.idle_state);
      // Feasibility is the TCASE limit; partial channel dry-out over the
      // dead east area of the die is expected at load and harmless.
      if (sim.tcase_c <= config_.tcase_limit_c) {
        sp.max_supply_temp_c = t_w;
        sp.package_power_w = sim.total_power_w;
        feasible = true;
        break;
      }
    }
    TPCOOL_REQUIRE(feasible, "server '" + name +
                                 "' infeasible at every candidate supply "
                                 "temperature");
    plan.servers.push_back(std::move(sp));
  }

  // Shared loop: the rack setpoint is the minimum per-server maximum.
  std::vector<cooling::ServerDemand> demands;
  demands.reserve(plan.servers.size());
  for (const ServerPlan& sp : plan.servers) {
    demands.push_back({sp.package_power_w, sp.max_supply_temp_c, design_flow});
  }
  plan.cooling = cooling::solve_rack_cooling(demands, config_.chiller);

  // Report each server's hot spot at the shared setpoint.
  for (ServerPlan& sp : plan.servers) {
    const workload::BenchmarkProfile& bench =
        workload::find_benchmark(sp.benchmark);
    server.set_operating_point({.water_flow_kg_h = design_flow,
                                .water_inlet_c = plan.cooling.supply_temp_c});
    const SimulationResult sim =
        server.simulate(bench, sp.decision.point.config, sp.decision.cores,
                        sp.decision.idle_state);
    sp.die_max_c = sim.die.max_c;
  }
  return plan;
}

}  // namespace tpcool::core
