#include "tpcool/core/parallel.hpp"

#include "tpcool/core/pipeline_pool.hpp"

namespace tpcool::core {

std::string solve_scope(Approach approach, double cell_size_m) {
  std::string scope = "pipeline:";
  scope += std::to_string(static_cast<int>(approach));
  scope.push_back(';');
  append_key_bits(scope, cell_size_m);
  return scope;
}

namespace {

/// Context of one chunk: a pooled pipeline with the shared cache attached
/// (cached solves are cold-start pure, so reuse is bit-identical to fresh
/// construction).  A cacheless caller gets an unpooled fresh pipeline —
/// without the purity guarantee, reuse would leak warm-start state.
PipelinePool::Lease make_cached_pipeline(
    Approach approach, double cell_size_m,
    const std::shared_ptr<SolveCache>& cache) {
  if (cache == nullptr) return PipelinePool::unpooled(approach, cell_size_m);
  return PipelinePool::global().checkout(approach, cell_size_m, cache);
}

}  // namespace

std::vector<SimulationResult> run_parallel_solves(
    Approach approach, double cell_size_m,
    const std::vector<SolveRequest>& requests, std::size_t grain,
    const std::shared_ptr<SolveCache>& cache) {
  for (const SolveRequest& request : requests) {
    TPCOOL_REQUIRE(request.bench != nullptr, "solve request needs a benchmark");
  }
  return parallel_map<SimulationResult>(
      requests.size(), grain,
      [&](std::size_t) {
        return make_cached_pipeline(approach, cell_size_m, cache);
      },
      [&](PipelinePool::Lease& pipeline, std::size_t i) {
        const SolveRequest& request = requests[i];
        return pipeline->server().simulate(*request.bench, request.config,
                                           request.cores, request.idle_state);
      });
}

std::vector<SimulationResult> run_parallel_schedules(
    Approach approach, double cell_size_m,
    const std::vector<ScheduleRequest>& requests, std::size_t grain,
    const std::shared_ptr<SolveCache>& cache) {
  for (const ScheduleRequest& request : requests) {
    TPCOOL_REQUIRE(request.bench != nullptr,
                   "schedule request needs a benchmark");
  }
  return parallel_map<SimulationResult>(
      requests.size(), grain,
      [&](std::size_t) {
        return make_cached_pipeline(approach, cell_size_m, cache);
      },
      [&](PipelinePool::Lease& pipeline, std::size_t i) {
        return pipeline->scheduler().run(*requests[i].bench, requests[i].qos);
      });
}

std::vector<double> evaluate_placements_parallel(
    Approach approach, double cell_size_m,
    const workload::BenchmarkProfile& bench,
    const workload::Configuration& config, power::CState idle_state,
    const std::vector<std::vector<int>>& subsets, std::size_t grain,
    const std::shared_ptr<SolveCache>& cache) {
  std::vector<SolveRequest> requests;
  requests.reserve(subsets.size());
  for (const std::vector<int>& cores : subsets) {
    requests.push_back({&bench, config, cores, idle_state});
  }
  const std::vector<SimulationResult> sims =
      run_parallel_solves(approach, cell_size_m, requests, grain, cache);
  std::vector<double> costs;
  costs.reserve(sims.size());
  for (const SimulationResult& sim : sims) costs.push_back(sim.die.max_c);
  return costs;
}

}  // namespace tpcool::core
