#include "tpcool/core/runtime_controller.hpp"

#include <algorithm>

#include "tpcool/util/error.hpp"

namespace tpcool::core {

const char* to_string(ControlAction action) {
  switch (action) {
    case ControlAction::kNone: return "-";
    case ControlAction::kLowerFrequency: return "lower-frequency";
    case ControlAction::kRaiseFlow: return "raise-flow";
    case ControlAction::kThrottle: return "throttle";
  }
  return "?";
}

RuntimeController::RuntimeController(ServerModel& server, Config config)
    : server_(&server), config_(std::move(config)) {
  TPCOOL_REQUIRE(!config_.flow_steps_kg_h.empty(), "no flow steps");
  TPCOOL_REQUIRE(std::is_sorted(config_.flow_steps_kg_h.begin(),
                                config_.flow_steps_kg_h.end()),
                 "flow steps must be ascending");
  TPCOOL_REQUIRE(config_.control_period_s > 0.0 && config_.max_steps > 0,
                 "invalid control timing");
}

ControlTrace RuntimeController::run(const workload::BenchmarkProfile& bench,
                                    const ScheduleDecision& decision,
                                    const workload::QoSRequirement& qos) {
  ControlTrace trace;
  thermal::ThermalModel& thermal = server_->thermal();
  const thermal::StackModel& stack = thermal.stack();
  const floorplan::Rect package_region{0.0, 0.0, stack.grid.width(),
                                       stack.grid.height()};

  workload::Configuration config = decision.point.config;
  std::size_t flow_step = 0;
  // Start from the decision's valve setting if it matches a step.
  for (std::size_t i = 0; i < config_.flow_steps_kg_h.size(); ++i) {
    if (config_.flow_steps_kg_h[i] >=
        server_->operating_point().water_flow_kg_h - 1e-9) {
      flow_step = i;
      break;
    }
  }

  // Initial state: uniform package temperature.
  std::vector<double> t(thermal.cell_count(), config_.start_temperature_c);
  util::Grid2D<double> evap_heat(stack.grid.nx, stack.grid.ny, 0.0);

  const auto lower_freq_ok = [&](double next_f) {
    workload::Configuration candidate = config;
    candidate.freq_ghz = next_f;
    return qos.satisfied_by(workload::normalized_exec_time(bench, candidate));
  };

  for (int step = 0; step < config_.max_steps; ++step) {
    // Apply the current operating state.
    const thermosyphon::OperatingPoint op{
        .water_flow_kg_h = config_.flow_steps_kg_h[flow_step],
        .water_inlet_c = server_->operating_point().water_inlet_c};
    server_->set_operating_point(op);

    power::PackagePowerRequest req =
        server_->profiler().request_for(bench, config, decision.idle_state);
    req.active_cores = decision.cores;
    const util::Grid2D<double> power_map = floorplan::rasterize_power(
        server_->floorplan(), server_->power_model().unit_powers(req),
        stack.grid, stack.die_offset_x, stack.die_offset_y);
    thermal.set_power_map(power_map);

    // Thermosyphon boundary from the latest evaporator heat estimate; a
    // cold start uses the total power spread uniformly via the solver's
    // idle-loop path (zero map -> stagnant-pool HTC), which self-corrects
    // within a couple of periods.
    const thermosyphon::ThermosyphonState syphon =
        server_->thermosyphon_model().solve(evap_heat, op);
    thermal::TopBoundary top;
    top.htc_w_m2k = syphon.htc_map;
    top.fluid_temp_c = syphon.fluid_temp_map;
    thermal.set_top_boundary(std::move(top));

    thermal.step_transient(t, config_.control_period_s);
    evap_heat = thermal.top_heat_flow_map_w(t);
    for (double& q : evap_heat.data()) {
      if (q < 0.0) q = 0.0;
    }

    // Measure.
    const util::Grid2D<double> ihs = thermal.layer_field(t, stack.ihs_layer);
    const util::Grid2D<double> die = thermal.layer_field(t, stack.die_layer);
    ControlRecord record;
    record.time_s = (step + 1) * config_.control_period_s;
    record.tcase_c =
        thermal::case_temperature(ihs, stack.grid, package_region);
    record.die_max_c =
        thermal::compute_metrics(die, stack.grid, stack.die_region).max_c;
    record.freq_ghz = config.freq_ghz;
    record.flow_kg_h = config_.flow_steps_kg_h[flow_step];

    // React (§VII): on emergency, DVFS down when the QoS allows it,
    // otherwise open the valve; throttle as a last resort.
    if (record.tcase_c >= config_.tcase_limit_c) {
      trace.emergency_seen = true;
      const auto& levels = power::core_frequency_levels();
      const auto it = std::find(levels.begin(), levels.end(), config.freq_ghz);
      const bool can_lower = it != levels.begin();
      const double next_f = can_lower ? *(it - 1) : config.freq_ghz;
      if (can_lower && lower_freq_ok(next_f)) {
        config.freq_ghz = next_f;
        record.action = ControlAction::kLowerFrequency;
      } else if (flow_step + 1 < config_.flow_steps_kg_h.size()) {
        ++flow_step;
        record.action = ControlAction::kRaiseFlow;
      } else if (can_lower) {
        config.freq_ghz = levels.front();
        record.action = ControlAction::kThrottle;
        trace.qos_violated = true;
      }
    }
    trace.records.push_back(record);
  }
  return trace;
}

}  // namespace tpcool::core
