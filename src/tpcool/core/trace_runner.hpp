#pragma once
/// \file trace_runner.hpp
/// \brief Trace-driven transient simulation: play a workload phase trace
///        through the scheduler and the transient thermal model, carrying
///        the package temperature state across phase switches (the thermal
///        history a real server accumulates).

#include <vector>

#include "tpcool/core/scheduler.hpp"
#include "tpcool/workload/trace.hpp"

namespace tpcool::core {

/// Outcome of one trace phase.
struct PhaseRecord {
  std::size_t phase_index = 0;
  std::string benchmark;
  double qos_factor = 1.0;
  ScheduleDecision decision;
  double peak_tcase_c = 0.0;   ///< Over the phase.
  double peak_die_c = 0.0;
  double end_tcase_c = 0.0;    ///< At the phase boundary.
  double avg_power_w = 0.0;
  double energy_j = 0.0;       ///< Package energy over the phase.
  /// Simulated time actually integrated over the phase.  Equals the phase
  /// duration exactly: the final step is clamped to the phase remainder, so
  /// the thermal state and `energy_j` cover the same window.
  double sim_time_s = 0.0;
  std::size_t steps = 0;       ///< Transient steps taken over the phase.
};

/// Full trace outcome.
struct TraceResult {
  std::vector<PhaseRecord> phases;
  double peak_tcase_c = 0.0;
  double total_energy_j = 0.0;
  bool tcase_limit_exceeded = false;
};

/// Plays traces on a server via a scheduler.
class TraceRunner {
 public:
  struct Config {
    double control_period_s = 0.5;
    double tcase_limit_c = 85.0;
    double start_temperature_c = 35.0;
  };

  TraceRunner(ServerModel& server, Scheduler& scheduler, Config config);
  TraceRunner(ServerModel& server, Scheduler& scheduler)
      : TraceRunner(server, scheduler, Config{}) {}

  [[nodiscard]] TraceResult run(const workload::WorkloadTrace& trace);

 private:
  ServerModel* server_;
  Scheduler* scheduler_;
  Config config_;
};

}  // namespace tpcool::core
