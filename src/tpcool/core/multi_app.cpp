#include "tpcool/core/multi_app.hpp"

#include <algorithm>
#include <limits>
#include <optional>

#include "tpcool/util/error.hpp"
#include "tpcool/workload/performance_model.hpp"

namespace tpcool::core {

namespace {

/// Cheapest (threads-per-core, frequency) for one app at a fixed core
/// count, by cores-only power; nullopt when no option meets the QoS.
struct PerCountChoice {
  workload::Configuration config;
  double core_power_w = 0.0;
};

std::optional<PerCountChoice> best_at_core_count(
    const workload::BenchmarkProfile& bench,
    const workload::QoSRequirement& qos, int cores) {
  std::optional<PerCountChoice> best;
  for (const int tpc : {1, 2}) {
    for (const double f : power::core_frequency_levels()) {
      const workload::Configuration config{cores, tpc, f};
      if (!qos.satisfied_by(workload::normalized_exec_time(bench, config))) {
        continue;
      }
      const double p =
          cores * power::active_core_power_w(
                      bench.c_eff_w_per_ghz_v2,
                      workload::core_utilization(bench, config), f);
      if (!best || p < best->core_power_w) {
        best = PerCountChoice{config, p};
      }
    }
  }
  return best;
}

}  // namespace

MultiAppScheduler::MultiAppScheduler(ServerModel& server,
                                     const mapping::MappingPolicy& policy)
    : server_(&server), policy_(&policy) {}

MultiAppSchedule MultiAppScheduler::schedule(
    const std::vector<AppRequest>& requests) const {
  TPCOOL_REQUIRE(!requests.empty(), "no applications to schedule");
  TPCOOL_REQUIRE(requests.size() <= 4,
                 "co-scheduler supports up to 4 applications per CPU");
  for (const AppRequest& r : requests) {
    TPCOOL_REQUIRE(r.bench != nullptr, "request without a benchmark");
  }
  const int n_cores = static_cast<int>(server_->floorplan().core_count());
  const auto n_apps = requests.size();

  // Pre-compute the cheapest per-app choice at every core count.
  std::vector<std::vector<std::optional<PerCountChoice>>> choice(
      n_apps, std::vector<std::optional<PerCountChoice>>(
                  static_cast<std::size_t>(n_cores) + 1));
  for (std::size_t a = 0; a < n_apps; ++a) {
    for (int nc = 1; nc <= n_cores; ++nc) {
      choice[a][static_cast<std::size_t>(nc)] =
          best_at_core_count(*requests[a].bench, requests[a].qos, nc);
    }
  }

  // The package C-state is the deepest every app tolerates.
  double latency_budget = std::numeric_limits<double>::infinity();
  for (const AppRequest& r : requests) {
    latency_budget = std::min(latency_budget, r.bench->tolerable_latency_us);
  }
  const power::CState idle_state =
      power::deepest_cstate_within(latency_budget);

  // Enumerate core partitions (compositions with sum ≤ n_cores), tracking
  // the minimum total core power.
  std::vector<int> counts(n_apps, 1);
  std::vector<int> best_counts;
  double best_power = std::numeric_limits<double>::infinity();
  const auto partition_power = [&](const std::vector<int>& c) {
    double total = 0.0;
    for (std::size_t a = 0; a < n_apps; ++a) {
      const auto& opt = choice[a][static_cast<std::size_t>(c[a])];
      if (!opt) return std::numeric_limits<double>::infinity();
      total += opt->core_power_w;
    }
    return total;
  };
  while (true) {
    int used = 0;
    for (const int c : counts) used += c;
    if (used <= n_cores) {
      const double p = partition_power(counts);
      if (p < best_power) {
        best_power = p;
        best_counts = counts;
      }
    }
    // Odometer increment over {1..n_cores}^n_apps.
    std::size_t pos = 0;
    while (pos < n_apps && ++counts[pos] > n_cores) {
      counts[pos] = 1;
      ++pos;
    }
    if (pos == n_apps) break;
  }
  TPCOOL_REQUIRE(!best_counts.empty(),
                 "no feasible core partition meets every QoS");

  // Joint placement: hottest app first along the policy's preference order.
  int total_cores = 0;
  for (const int c : best_counts) total_cores += c;
  mapping::MappingContext context;
  context.floorplan = &server_->floorplan();
  context.orientation = server_->design().evaporator.orientation;
  context.idle_state = idle_state;
  context.cores_needed = total_cores;
  const std::vector<int> order = policy_->select_cores(context);

  std::vector<std::size_t> app_order(n_apps);
  for (std::size_t a = 0; a < n_apps; ++a) app_order[a] = a;
  std::sort(app_order.begin(), app_order.end(),
            [&](std::size_t a, std::size_t b) {
              const double pa =
                  choice[a][static_cast<std::size_t>(best_counts[a])]
                      ->core_power_w /
                  best_counts[a];
              const double pb =
                  choice[b][static_cast<std::size_t>(best_counts[b])]
                      ->core_power_w /
                  best_counts[b];
              return pa > pb;  // highest per-core power density first
            });

  MultiAppSchedule result;
  result.idle_state = idle_state;
  result.assignments.resize(n_apps);
  std::size_t cursor = 0;
  double max_freq = power::core_frequency_levels().front();
  double llc_activity = 0.0;
  for (const std::size_t a : app_order) {
    const auto& opt = choice[a][static_cast<std::size_t>(best_counts[a])];
    AppAssignment assignment;
    assignment.bench = requests[a].bench;
    assignment.config = opt->config;
    assignment.power_w = opt->core_power_w;
    for (int k = 0; k < best_counts[a]; ++k) {
      assignment.cores.push_back(order[cursor++]);
    }
    max_freq = std::max(max_freq, opt->config.freq_ghz);
    llc_activity = std::max(llc_activity, requests[a].bench->mem_intensity);
    result.assignments[a] = std::move(assignment);
  }

  // Assemble the per-unit powers: per-app active cores, shared idle state,
  // uncore driven by the fastest app and the most memory-hungry one.
  double total = 0.0;
  for (const AppAssignment& assignment : result.assignments) {
    const double per_core = power::active_core_power_w(
        assignment.bench->c_eff_w_per_ghz_v2,
        workload::core_utilization(*assignment.bench, assignment.config),
        assignment.config.freq_ghz);
    for (const int id : assignment.cores) {
      result.unit_powers["core" + std::to_string(id)] = per_core;
      total += per_core;
    }
  }
  const double idle_power =
      power::cstate_power_per_core_w(idle_state, max_freq);
  for (const floorplan::CoreSite& site : server_->floorplan().cores()) {
    const std::string name = "core" + std::to_string(site.core_id);
    if (result.unit_powers.find(name) == result.unit_powers.end()) {
      result.unit_powers[name] = idle_power;
      total += idle_power;
    }
  }
  result.unit_powers["llc"] = power::llc_power_w(llc_activity);
  const double mcio = power::uncore_mcio_power_w(
      power::uncore_frequency_for_core_ghz(max_freq));
  const double a_mem = server_->floorplan().unit("memctrl").rect.area();
  const double a_unc = server_->floorplan().unit("uncore_io").rect.area();
  result.unit_powers["memctrl"] = mcio * a_mem / (a_mem + a_unc);
  result.unit_powers["uncore_io"] = mcio * a_unc / (a_mem + a_unc);
  total += result.unit_powers["llc"] + mcio;
  result.total_power_w = total;
  return result;
}

SimulationResult MultiAppScheduler::run(
    const std::vector<AppRequest>& requests,
    MultiAppSchedule* schedule_out) {
  const MultiAppSchedule plan = schedule(requests);
  if (schedule_out != nullptr) *schedule_out = plan;
  SimulationResult sim = server_->simulate_powers(plan.unit_powers);
  for (const AppAssignment& assignment : plan.assignments) {
    for (const int id : assignment.cores) sim.active_cores.push_back(id);
  }
  return sim;
}

}  // namespace tpcool::core
