#include "tpcool/core/solve_cache.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>
#include <vector>

#include "tpcool/util/error.hpp"
#include "tpcool/util/logging.hpp"

namespace tpcool::core {

// ------------------------------------------------------- snapshot format --
//
// Versioned binary snapshot, independent of host endianness and word size
// (all integers little-endian, doubles as IEEE-754 bit patterns):
//
//   magic   8 bytes  "TPCOOLSC"
//   u32     schema version (kSnapshotVersion); any other version is refused
//   u64     entry count
//   entry*  most- to least-recently-used:
//             u64 FNV-1a digest of the key bytes
//             u64 key length, key bytes
//             u64 payload length, payload bytes (one SimulationResult)
//   u64     FNV-1a digest of every preceding byte of the file
//
// The trailing stream digest catches truncation and bit rot wholesale; the
// per-entry key digests localize corruption to an entry.  load() validates
// every length against the remaining bytes before trusting it, so a hostile
// or damaged file raises SnapshotError instead of undefined behavior.

namespace {

constexpr char kMagic[8] = {'T', 'P', 'C', 'O', 'O', 'L', 'S', 'C'};

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(const char* data, std::size_t size,
                    std::uint64_t seed = kFnvOffset) {
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= kFnvPrime;
  }
  return hash;
}

void put_u8(std::string& out, std::uint8_t value) {
  out.push_back(static_cast<char>(value));
}

void put_u32(std::string& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

void put_u64(std::string& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

void put_f64(std::string& out, double value) {
  put_u64(out, std::bit_cast<std::uint64_t>(value));
}

void put_grid(std::string& out, const util::Grid2D<double>& grid) {
  put_u64(out, grid.nx());
  put_u64(out, grid.ny());
  for (const double value : grid.data()) put_f64(out, value);
}

void put_metrics(std::string& out, const thermal::ThermalMetrics& m) {
  put_f64(out, m.max_c);
  put_f64(out, m.avg_c);
  put_f64(out, m.grad_max_c_per_mm);
  put_u64(out, m.hotspot_cells);
  put_u64(out, m.cell_count);
}

/// Serialize one SimulationResult, field for field.  Any new field must be
/// added here AND bump kSnapshotVersion: old snapshots are refused rather
/// than silently misread.
std::string serialize_result(const SimulationResult& r) {
  std::string out;
  out.reserve(64 + 8 * (r.die_field_c.size() + r.package_field_c.size() +
                        r.syphon.htc_map.size() +
                        r.syphon.fluid_temp_map.size()));
  put_metrics(out, r.die);
  put_metrics(out, r.package);
  put_f64(out, r.tcase_c);
  put_f64(out, r.total_power_w);
  put_f64(out, r.power.active_cores_w);
  put_f64(out, r.power.idle_cores_w);
  put_f64(out, r.power.mcio_w);
  put_f64(out, r.power.llc_w);
  put_f64(out, r.syphon.t_sat_c);
  put_f64(out, r.syphon.refrigerant_flow_kg_s);
  put_f64(out, r.syphon.loop_exit_quality);
  put_f64(out, r.syphon.water_outlet_c);
  put_f64(out, r.syphon.q_total_w);
  put_grid(out, r.syphon.htc_map);
  put_grid(out, r.syphon.fluid_temp_map);
  put_u64(out, r.syphon.channels.size());
  for (const thermosyphon::ChannelSummary& ch : r.syphon.channels) {
    put_f64(out, ch.exit_quality);
    put_f64(out, ch.absorbed_w);
    put_u8(out, ch.dried_out ? 1 : 0);
  }
  put_u8(out, r.syphon.any_dryout ? 1 : 0);
  put_grid(out, r.die_field_c);
  put_grid(out, r.package_field_c);
  put_u64(out, r.active_cores.size());
  for (const int core : r.active_cores) {
    put_u64(out, std::bit_cast<std::uint64_t>(static_cast<std::int64_t>(core)));
  }
  // v2: transient-segment payload.  Steady results serialize an empty end
  // state and zero counters — a few dozen bytes of overhead per entry.
  put_u64(out, r.transient.end_state_c.size());
  for (const double value : r.transient.end_state_c) put_f64(out, value);
  put_f64(out, r.transient.peak_tcase_c);
  put_f64(out, r.transient.peak_die_c);
  put_f64(out, r.transient.sim_time_s);
  put_u64(out, r.transient.steps);
  put_u64(out, r.transient.rejected_steps);
  return out;
}

/// Bounds-checked reader over a byte buffer; every underflow throws
/// SnapshotError so truncated files fail loudly at the exact spot.
class Cursor {
 public:
  Cursor(const std::string& buffer, std::size_t pos, std::size_t end)
      : buffer_(buffer), pos_(pos), end_(end) {}

  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return end_ - pos_; }

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(buffer_[pos_++]);
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t value = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      value |= static_cast<std::uint32_t>(
                   static_cast<unsigned char>(buffer_[pos_++]))
               << shift;
    }
    return value;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t value = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      value |= static_cast<std::uint64_t>(
                   static_cast<unsigned char>(buffer_[pos_++]))
               << shift;
    }
    return value;
  }

  double f64() { return std::bit_cast<double>(u64()); }

  std::string bytes(std::size_t size) {
    need(size);
    std::string out = buffer_.substr(pos_, size);
    pos_ += size;
    return out;
  }

  void skip(std::size_t size) {
    need(size);
    pos_ += size;
  }

  /// A length field must fit the remaining bytes before it is trusted.
  std::size_t length(const char* what) {
    const std::uint64_t value = u64();
    if (value > remaining()) {
      throw SnapshotError(std::string("truncated solve-cache snapshot: ") +
                          what + " length exceeds the file");
    }
    return static_cast<std::size_t>(value);
  }

 private:
  void need(std::size_t count) const {
    if (end_ - pos_ < count) {
      throw SnapshotError(
          "truncated solve-cache snapshot: unexpected end of file");
    }
  }

  const std::string& buffer_;
  std::size_t pos_;
  std::size_t end_;
};

/// Snapshot-size warning threshold in bytes; TPCOOL_SOLVE_CACHE_WARN_MB
/// overrides the 64 MB default (fractions allowed, <= 0 disables).  Read
/// on every save — saves are rare and tests flip the env var between them.
std::size_t snapshot_warn_bytes() {
  double warn_mb = 64.0;
  if (const char* env = std::getenv("TPCOOL_SOLVE_CACHE_WARN_MB")) {
    char* end = nullptr;
    const double parsed = std::strtod(env, &end);
    if (end != env && *end == '\0' && std::isfinite(parsed)) {
      warn_mb = parsed;
    } else {
      std::fprintf(stderr,
                   "tpcool: ignoring TPCOOL_SOLVE_CACHE_WARN_MB=%s "
                   "(want a finite number of megabytes)\n",
                   env);
    }
  }
  if (warn_mb <= 0.0) return 0;  // disabled
  const double bytes = warn_mb * 1024.0 * 1024.0;
  // A threshold past size_t can never fire; saturate instead of the UB a
  // float-to-integer overflow would be.
  if (bytes >= static_cast<double>(std::numeric_limits<std::size_t>::max())) {
    return std::numeric_limits<std::size_t>::max();
  }
  return static_cast<std::size_t>(bytes);
}

util::Grid2D<double> parse_grid(Cursor& cursor) {
  const std::uint64_t nx = cursor.u64();
  const std::uint64_t ny = cursor.u64();
  if (nx == 0 || ny == 0) {
    if (nx != ny) {
      throw SnapshotError("corrupt solve-cache snapshot: half-empty grid");
    }
    return {};
  }
  // Overflow-safe bound: nx * ny doubles must fit the remaining bytes.
  if (nx > (cursor.remaining() / 8) / ny) {
    throw SnapshotError(
        "truncated solve-cache snapshot: grid exceeds the file");
  }
  util::Grid2D<double> grid(static_cast<std::size_t>(nx),
                            static_cast<std::size_t>(ny));
  for (double& value : grid.data()) value = cursor.f64();
  return grid;
}

thermal::ThermalMetrics parse_metrics(Cursor& cursor) {
  thermal::ThermalMetrics m;
  m.max_c = cursor.f64();
  m.avg_c = cursor.f64();
  m.grad_max_c_per_mm = cursor.f64();
  m.hotspot_cells = static_cast<std::size_t>(cursor.u64());
  m.cell_count = static_cast<std::size_t>(cursor.u64());
  return m;
}

SimulationResult parse_result(Cursor& cursor) {
  SimulationResult r;
  r.die = parse_metrics(cursor);
  r.package = parse_metrics(cursor);
  r.tcase_c = cursor.f64();
  r.total_power_w = cursor.f64();
  r.power.active_cores_w = cursor.f64();
  r.power.idle_cores_w = cursor.f64();
  r.power.mcio_w = cursor.f64();
  r.power.llc_w = cursor.f64();
  r.syphon.t_sat_c = cursor.f64();
  r.syphon.refrigerant_flow_kg_s = cursor.f64();
  r.syphon.loop_exit_quality = cursor.f64();
  r.syphon.water_outlet_c = cursor.f64();
  r.syphon.q_total_w = cursor.f64();
  r.syphon.htc_map = parse_grid(cursor);
  r.syphon.fluid_temp_map = parse_grid(cursor);
  const std::size_t channel_count = cursor.length("channel list");
  r.syphon.channels.resize(channel_count);
  for (thermosyphon::ChannelSummary& ch : r.syphon.channels) {
    ch.exit_quality = cursor.f64();
    ch.absorbed_w = cursor.f64();
    ch.dried_out = cursor.u8() != 0;
  }
  r.syphon.any_dryout = cursor.u8() != 0;
  r.die_field_c = parse_grid(cursor);
  r.package_field_c = parse_grid(cursor);
  const std::size_t core_count = cursor.length("active-core list");
  r.active_cores.resize(core_count);
  for (int& core : r.active_cores) {
    core = static_cast<int>(std::bit_cast<std::int64_t>(cursor.u64()));
  }
  const std::size_t state_count = cursor.length("transient end state");
  if (state_count > cursor.remaining() / 8) {
    throw SnapshotError(
        "truncated solve-cache snapshot: transient state exceeds the file");
  }
  r.transient.end_state_c.resize(state_count);
  for (double& value : r.transient.end_state_c) value = cursor.f64();
  r.transient.peak_tcase_c = cursor.f64();
  r.transient.peak_die_c = cursor.f64();
  r.transient.sim_time_s = cursor.f64();
  r.transient.steps = cursor.u64();
  r.transient.rejected_steps = cursor.u64();
  return r;
}

}  // namespace

SolveCache::SolveCache(std::size_t capacity) : capacity_(capacity) {
  TPCOOL_REQUIRE(capacity >= 1, "solve cache needs capacity >= 1");
}

void SolveCache::touch(std::list<Entry>::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
}

void SolveCache::evict_over_capacity() {
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void SolveCache::append_lru(std::string key, SimulationResult result) {
  lru_.push_back(Entry{std::move(key), std::move(result)});
  const auto it = std::prev(lru_.end());
  index_.emplace(it->key, it);
}

SimulationResult SolveCache::get_or_compute(
    const std::string& key,
    const std::function<SimulationResult()>& compute) {
  std::shared_ptr<InFlight> mine;
  {
    std::unique_lock lock(mutex_);
    while (true) {
      const auto it = index_.find(key);
      if (it != index_.end()) {
        ++stats_.hits;
        touch(it->second);
        return it->second->result;
      }
      const auto fit = in_flight_.find(key);
      if (fit == in_flight_.end()) break;
      // Another thread is computing this key: wait on its in-flight record
      // and consume the result from it directly.  The record is pinned by
      // this shared reference, so eviction pressure dropping the stored
      // entry between the compute and this wake-up cannot force a
      // recompute — miss/hit counters are exact at any capacity.
      const std::shared_ptr<InFlight> theirs = fit->second;
      ++stats_.waiting;
      compute_done_.wait(lock,
                         [&] { return theirs->ready || theirs->failed; });
      --stats_.waiting;
      if (theirs->ready) {
        ++stats_.hits;
        const auto stored = index_.find(key);
        if (stored != index_.end()) touch(stored->second);
        return theirs->result;
      }
      // The computing thread threw; loop and take over (or wait on a newer
      // in-flight record).
    }
    mine = std::make_shared<InFlight>();
    in_flight_.emplace(key, mine);
    ++stats_.misses;
  }
  // Compute outside the lock so independent keys solve in parallel.
  SimulationResult result;
  try {
    result = compute();
  } catch (...) {
    {
      std::lock_guard lock(mutex_);
      mine->failed = true;
      in_flight_.erase(key);
    }
    compute_done_.notify_all();
    throw;
  }
  put(key, result);
  {
    std::lock_guard lock(mutex_);
    mine->result = std::move(result);
    mine->ready = true;
    in_flight_.erase(key);
  }
  compute_done_.notify_all();
  return mine->result;
}

bool SolveCache::try_get(const std::string& key, SimulationResult& out) {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  touch(it->second);
  out = it->second->result;
  return true;
}

void SolveCache::put(const std::string& key, SimulationResult result) {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    touch(it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(result)});
  index_.emplace(key, lru_.begin());
  evict_over_capacity();
}

SolveCache::Stats SolveCache::stats() const {
  std::lock_guard lock(mutex_);
  Stats s = stats_;
  s.size = lru_.size();
  return s;
}

void SolveCache::clear() {
  std::lock_guard lock(mutex_);
  lru_.clear();
  index_.clear();
  const std::size_t waiting = stats_.waiting;  // a gauge, not a counter
  stats_ = Stats{};
  stats_.waiting = waiting;
}

// --------------------------------------------------------- persistence --

void SolveCache::save(const std::string& path) const {
  std::string blob;
  {
    std::lock_guard lock(mutex_);
    blob.append(kMagic, sizeof(kMagic));
    put_u32(blob, kSnapshotVersion);
    put_u64(blob, lru_.size());
    for (const Entry& entry : lru_) {
      const std::string payload = serialize_result(entry.result);
      put_u64(blob, fnv1a(entry.key.data(), entry.key.size()));
      put_u64(blob, entry.key.size());
      blob += entry.key;
      put_u64(blob, payload.size());
      blob += payload;
    }
  }
  put_u64(blob, fnv1a(blob.data(), blob.size()));

  // Surface fleet-scale snapshot growth before it hurts: the snapshot is
  // still whole-file (see ROADMAP — sharded/mmap storage is the next step
  // if this warning starts firing in practice).
  const std::size_t warn_bytes = snapshot_warn_bytes();
  if (warn_bytes > 0 && blob.size() > warn_bytes) {
    util::log_warn() << "solve-cache snapshot " << path << " is "
                     << blob.size() / (1024.0 * 1024.0)
                     << " MB (warn threshold "
                     << warn_bytes / (1024.0 * 1024.0)
                     << " MB; raise TPCOOL_SOLVE_CACHE_WARN_MB or lower "
                        "TPCOOL_SOLVE_CACHE_CAPACITY)";
  }

  // Write-temp-then-rename: readers (and a crash mid-write) never observe
  // a partial snapshot.  Concurrent writers to one path can interleave in
  // the temp file; the stream digest makes that a detected cold start, not
  // silent corruption.
  const std::string temp = path + ".tmp";
  {
    std::ofstream os(temp, std::ios::binary | std::ios::trunc);
    if (!os) {
      throw SnapshotError("cannot open " + temp + " for writing");
    }
    os.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    os.flush();
    if (!os) {
      throw SnapshotError("short write to " + temp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(temp, path, ec);
  if (ec) {
    std::filesystem::remove(temp, ec);
    throw SnapshotError("cannot rename " + temp + " to " + path);
  }
}

void SolveCache::load(const std::string& path) {
  std::string blob;
  {
    std::ifstream is(path, std::ios::binary);
    if (!is) {
      throw SnapshotError("cannot open solve-cache snapshot " + path);
    }
    std::ostringstream buffer;
    buffer << is.rdbuf();
    if (!is.good() && !is.eof()) {
      throw SnapshotError("cannot read solve-cache snapshot " + path);
    }
    blob = std::move(buffer).str();
  }

  constexpr std::size_t kHeaderSize = sizeof(kMagic) + 4 + 8;
  if (blob.size() < kHeaderSize + 8) {
    throw SnapshotError("truncated solve-cache snapshot " + path +
                        ": shorter than the fixed header");
  }
  if (!std::equal(kMagic, kMagic + sizeof(kMagic), blob.begin())) {
    throw SnapshotError(path + " is not a solve-cache snapshot (bad magic)");
  }
  Cursor cursor(blob, sizeof(kMagic), blob.size() - 8);
  // Version before digest: a future schema gets the clear refusal below
  // even if it also moves the digest.
  const std::uint32_t version = cursor.u32();
  if (version != kSnapshotVersion) {
    throw SnapshotError(
        "solve-cache snapshot " + path + " has schema version " +
        std::to_string(version) + "; this build reads only version " +
        std::to_string(kSnapshotVersion) + " — delete it and re-warm");
  }
  {
    Cursor digest_cursor(blob, blob.size() - 8, blob.size());
    const std::uint64_t recorded = digest_cursor.u64();
    const std::uint64_t actual = fnv1a(blob.data(), blob.size() - 8);
    if (recorded != actual) {
      throw SnapshotError("corrupt solve-cache snapshot " + path +
                          ": stream digest mismatch (truncated or damaged)");
    }
  }
  const std::uint64_t entry_count = cursor.u64();

  std::vector<std::pair<std::string, SimulationResult>> entries;
  entries.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(entry_count, 4096)));
  for (std::uint64_t i = 0; i < entry_count; ++i) {
    const std::uint64_t key_digest = cursor.u64();
    const std::size_t key_size = cursor.length("key");
    std::string key = cursor.bytes(key_size);
    if (fnv1a(key.data(), key.size()) != key_digest) {
      throw SnapshotError("corrupt solve-cache snapshot " + path +
                          ": key digest mismatch at entry " +
                          std::to_string(i));
    }
    const std::size_t payload_size = cursor.length("payload");
    Cursor payload(blob, cursor.pos(), cursor.pos() + payload_size);
    SimulationResult result = parse_result(payload);
    if (payload.remaining() != 0) {
      throw SnapshotError("corrupt solve-cache snapshot " + path +
                          ": payload of entry " + std::to_string(i) +
                          " has trailing bytes");
    }
    cursor.skip(payload_size);  // parse_result consumed a bounded view
    entries.emplace_back(std::move(key), std::move(result));
  }
  if (cursor.remaining() != 0) {
    throw SnapshotError("corrupt solve-cache snapshot " + path +
                        ": trailing bytes after the last entry");
  }

  std::lock_guard lock(mutex_);
  for (auto& [key, result] : entries) {
    if (index_.contains(key)) continue;  // existing entries win (identical
                                         // values by construction)
    append_lru(std::move(key), std::move(result));
  }
  evict_over_capacity();
}

std::uint64_t SolveCache::content_digest() const {
  std::lock_guard lock(mutex_);
  std::uint64_t digest = kFnvOffset;
  for (const Entry& entry : lru_) {
    digest = fnv1a(entry.key.data(), entry.key.size(), digest);
    const std::string payload = serialize_result(entry.result);
    digest = fnv1a(payload.data(), payload.size(), digest);
  }
  return digest;
}

namespace {

/// Caches registered for save-at-exit; holds shared ownership so the
/// snapshot can be written even if all other references are gone.
struct PersistenceRegistry {
  std::mutex mutex;
  bool atexit_registered = false;
  std::vector<std::pair<std::shared_ptr<SolveCache>, std::string>> entries;

  static PersistenceRegistry& instance() {
    static PersistenceRegistry registry;
    return registry;
  }

  static void save_all() {
    PersistenceRegistry& registry = instance();
    std::lock_guard lock(registry.mutex);
    for (const auto& [cache, path] : registry.entries) {
      try {
        // Merge-save: fold the current on-disk snapshot back in first
        // (in-memory entries win), so a process that cleared or only
        // partially exercised the cache never shrinks the snapshot —
        // warmth accumulates monotonically, bounded by the capacity.
        try {
          cache->load(path);
        } catch (const SnapshotError&) {
          // Missing or damaged file: save fresh.
        }
        cache->save(path);
      } catch (const std::exception& error) {
        std::fprintf(stderr, "tpcool: solve-cache save to %s failed: %s\n",
                     path.c_str(), error.what());
      }
    }
  }
};

}  // namespace

void SolveCache::attach_persistent_file(
    const std::shared_ptr<SolveCache>& cache, std::string path) {
  TPCOOL_REQUIRE(cache != nullptr, "attach_persistent_file needs a cache");
  TPCOOL_REQUIRE(!path.empty(), "attach_persistent_file needs a path");
  std::error_code ec;
  if (std::filesystem::exists(path, ec)) {
    try {
      cache->load(path);
    } catch (const SnapshotError& error) {
      // A bad snapshot must never fail the run; start cold and the exit
      // save will replace it with a good one.
      std::fprintf(stderr, "tpcool: ignoring solve-cache snapshot: %s\n",
                   error.what());
    }
  }
  PersistenceRegistry& registry = PersistenceRegistry::instance();
  std::lock_guard lock(registry.mutex);
  // One snapshot path per cache, last attach wins: a bench's --cache-file
  // replaces the TPCOOL_SOLVE_CACHE_FILE registration made by global(),
  // so the env path is not also rewritten at exit.
  for (auto& [existing, existing_path] : registry.entries) {
    if (existing == cache) {
      existing_path = std::move(path);
      return;
    }
  }
  registry.entries.emplace_back(cache, std::move(path));
  if (!registry.atexit_registered) {
    // The registry (a function-local static) is constructed before this
    // handler registers, so it is destroyed after the handler runs.
    std::atexit(&PersistenceRegistry::save_all);
    registry.atexit_registered = true;
  }
}

const std::shared_ptr<SolveCache>& SolveCache::global() {
  static const std::shared_ptr<SolveCache> cache = [] {
    std::size_t capacity = kDefaultCapacity;
    if (const char* env = std::getenv("TPCOOL_SOLVE_CACHE_CAPACITY")) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed >= 1) {
        capacity = static_cast<std::size_t>(parsed);
      } else {
        std::fprintf(stderr,
                     "tpcool: ignoring TPCOOL_SOLVE_CACHE_CAPACITY=%s "
                     "(want an integer >= 1)\n",
                     env);
      }
    }
    auto created = std::make_shared<SolveCache>(capacity);
    if (const char* path = std::getenv("TPCOOL_SOLVE_CACHE_FILE")) {
      if (path[0] != '\0') attach_persistent_file(created, path);
    }
    return created;
  }();
  return cache;
}

void append_key_bits(std::string& key, double value) {
  static const char* hex = "0123456789abcdef";
  const auto bits = std::bit_cast<std::uint64_t>(value);
  for (int shift = 60; shift >= 0; shift -= 4) {
    key.push_back(hex[(bits >> shift) & 0xF]);
  }
  key.push_back(';');
}

std::string solve_request_key(const workload::BenchmarkProfile& bench,
                              const workload::Configuration& config,
                              const std::vector<int>& cores,
                              power::CState idle_state) {
  // Per-core powers depend only on which cores are active, so placements
  // that permute the same set share one entry (the oracle enumerates sorted
  // subsets, heuristics return rack order).  ServerModel restores the
  // caller's ordering in SimulationResult::active_cores after a hit.
  std::vector<int> sorted_cores = cores;
  std::sort(sorted_cores.begin(), sorted_cores.end());
  std::string key;
  key.reserve(192);
  // The full profile, not just the name: two profiles may share a name but
  // differ in parameters (tests build custom ones).
  key += bench.name;
  key.push_back(';');
  append_key_bits(key, bench.c_eff_w_per_ghz_v2);
  append_key_bits(key, bench.smt_yield);
  append_key_bits(key, bench.serial_fraction);
  append_key_bits(key, bench.scaling_exponent);
  append_key_bits(key, bench.mem_intensity);
  append_key_bits(key, bench.tolerable_latency_us);
  key += std::to_string(config.cores);
  key.push_back(',');
  key += std::to_string(config.threads_per_core);
  key.push_back(',');
  append_key_bits(key, config.freq_ghz);
  for (const int core : sorted_cores) {
    key += std::to_string(core);
    key.push_back(',');
  }
  key.push_back(';');
  key += std::to_string(static_cast<int>(idle_state));
  return key;
}

std::string segment_request_key(const std::string& scope,
                                const workload::BenchmarkProfile& bench,
                                const workload::Configuration& config,
                                const std::vector<int>& cores,
                                power::CState idle_state,
                                const thermosyphon::OperatingPoint& op,
                                double duration_s,
                                const thermal::StepControlConfig& step_control,
                                double fixed_dt_s,
                                const std::vector<double>& initial_field_c) {
  // 128-bit initial-field digest: two FNV-1a streams over the exact cell
  // bit patterns, differing only in seed.  A single 64-bit stream invites
  // birthday collisions at fleet scale; two independent seeds push the
  // collision probability below any practical run length while keeping the
  // key a fixed, small size.
  std::uint64_t lo = kFnvOffset;
  std::uint64_t hi = kFnvOffset ^ 0x9e3779b97f4a7c15ULL;
  for (const double value : initial_field_c) {
    const auto bits = std::bit_cast<std::uint64_t>(value);
    for (int shift = 0; shift < 64; shift += 8) {
      const auto byte = static_cast<unsigned char>((bits >> shift) & 0xFF);
      lo = (lo ^ byte) * kFnvPrime;
      hi = (hi ^ byte) * kFnvPrime;
    }
  }
  std::string key = "segment;";
  key += scope;
  key.push_back(';');
  key += solve_request_key(bench, config, cores, idle_state);
  key.push_back(';');
  append_key_bits(key, op.water_flow_kg_h);
  append_key_bits(key, op.water_inlet_c);
  append_key_bits(key, duration_s);
  append_key_bits(key, step_control.tolerance_c);
  append_key_bits(key, step_control.min_dt_s);
  append_key_bits(key, step_control.max_dt_s);
  append_key_bits(key, step_control.initial_dt_s);
  append_key_bits(key, step_control.max_growth);
  append_key_bits(key, step_control.safety);
  append_key_bits(key, fixed_dt_s);
  key += std::to_string(initial_field_c.size());
  key.push_back(';');
  append_key_bits(key, std::bit_cast<double>(lo));
  append_key_bits(key, std::bit_cast<double>(hi));
  return key;
}

}  // namespace tpcool::core
