#include "tpcool/core/solve_cache.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>

#include "tpcool/util/error.hpp"

namespace tpcool::core {

SolveCache::SolveCache(std::size_t capacity) : capacity_(capacity) {
  TPCOOL_REQUIRE(capacity >= 1, "solve cache needs capacity >= 1");
}

void SolveCache::touch(std::list<Entry>::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
}

void SolveCache::evict_over_capacity() {
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

SimulationResult SolveCache::get_or_compute(
    const std::string& key,
    const std::function<SimulationResult()>& compute) {
  {
    std::unique_lock lock(mutex_);
    while (true) {
      const auto it = index_.find(key);
      if (it != index_.end()) {
        ++stats_.hits;
        touch(it->second);
        return it->second->result;
      }
      if (!in_flight_.contains(key)) break;
      // Another thread is computing this key: wait for its result instead
      // of duplicating the solve, and count the serial schedule's hit.
      // (If eviction dropped the result before we woke, loop and compute.)
      compute_done_.wait(lock);
    }
    in_flight_.insert(key);
    ++stats_.misses;
  }
  // Compute outside the lock so independent keys solve in parallel.
  SimulationResult result;
  try {
    result = compute();
  } catch (...) {
    std::lock_guard lock(mutex_);
    in_flight_.erase(key);
    compute_done_.notify_all();
    throw;
  }
  put(key, result);
  {
    std::lock_guard lock(mutex_);
    in_flight_.erase(key);
  }
  compute_done_.notify_all();
  return result;
}

bool SolveCache::try_get(const std::string& key, SimulationResult& out) {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  touch(it->second);
  out = it->second->result;
  return true;
}

void SolveCache::put(const std::string& key, SimulationResult result) {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    touch(it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(result)});
  index_.emplace(key, lru_.begin());
  evict_over_capacity();
}

SolveCache::Stats SolveCache::stats() const {
  std::lock_guard lock(mutex_);
  Stats s = stats_;
  s.size = lru_.size();
  return s;
}

void SolveCache::clear() {
  std::lock_guard lock(mutex_);
  lru_.clear();
  index_.clear();
  stats_ = Stats{};
}

const std::shared_ptr<SolveCache>& SolveCache::global() {
  static const std::shared_ptr<SolveCache> cache =
      std::make_shared<SolveCache>();
  return cache;
}

void append_key_bits(std::string& key, double value) {
  static const char* hex = "0123456789abcdef";
  const auto bits = std::bit_cast<std::uint64_t>(value);
  for (int shift = 60; shift >= 0; shift -= 4) {
    key.push_back(hex[(bits >> shift) & 0xF]);
  }
  key.push_back(';');
}

std::string solve_request_key(const workload::BenchmarkProfile& bench,
                              const workload::Configuration& config,
                              const std::vector<int>& cores,
                              power::CState idle_state) {
  // Per-core powers depend only on which cores are active, so placements
  // that permute the same set share one entry (the oracle enumerates sorted
  // subsets, heuristics return rack order).  ServerModel restores the
  // caller's ordering in SimulationResult::active_cores after a hit.
  std::vector<int> sorted_cores = cores;
  std::sort(sorted_cores.begin(), sorted_cores.end());
  std::string key;
  key.reserve(192);
  // The full profile, not just the name: two profiles may share a name but
  // differ in parameters (tests build custom ones).
  key += bench.name;
  key.push_back(';');
  append_key_bits(key, bench.c_eff_w_per_ghz_v2);
  append_key_bits(key, bench.smt_yield);
  append_key_bits(key, bench.serial_fraction);
  append_key_bits(key, bench.scaling_exponent);
  append_key_bits(key, bench.mem_intensity);
  append_key_bits(key, bench.tolerable_latency_us);
  key += std::to_string(config.cores);
  key.push_back(',');
  key += std::to_string(config.threads_per_core);
  key.push_back(',');
  append_key_bits(key, config.freq_ghz);
  for (const int core : sorted_cores) {
    key += std::to_string(core);
    key.push_back(',');
  }
  key.push_back(';');
  key += std::to_string(static_cast<int>(idle_state));
  return key;
}

}  // namespace tpcool::core
