#include "tpcool/core/solve_cache.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "tpcool/util/error.hpp"
#include "tpcool/util/fnv.hpp"
#include "tpcool/util/logging.hpp"
#include "tpcool/util/parallel_map.hpp"
#include "tpcool/util/telemetry.hpp"
#include "tpcool/util/thread_pool.hpp"

namespace tpcool::core {

namespace {

/// Hard ceiling on shard counts; matches the manifest reader's bound.
constexpr std::size_t kMaxShards = 4096;

std::size_t round_up_shards(std::size_t shards) {
  return std::min(std::bit_ceil(std::max<std::size_t>(shards, 1)), kMaxShards);
}

/// Snapshot-size warning threshold in bytes; TPCOOL_SOLVE_CACHE_WARN_MB
/// overrides the 64 MB default (fractions allowed, <= 0 disables).  Read
/// on every save — saves are rare and tests flip the env var between them.
std::size_t snapshot_warn_bytes() {
  double warn_mb = 64.0;
  if (const char* env = std::getenv("TPCOOL_SOLVE_CACHE_WARN_MB")) {
    char* end = nullptr;
    const double parsed = std::strtod(env, &end);
    if (end != env && *end == '\0' && std::isfinite(parsed)) {
      warn_mb = parsed;
    } else {
      std::fprintf(stderr,
                   "tpcool: ignoring TPCOOL_SOLVE_CACHE_WARN_MB=%s "
                   "(want a finite number of megabytes)\n",
                   env);
    }
  }
  if (warn_mb <= 0.0) return 0;  // disabled
  const double bytes = warn_mb * 1024.0 * 1024.0;
  // A threshold past size_t can never fire; saturate instead of the UB a
  // float-to-integer overflow would be.
  if (bytes >= static_cast<double>(std::numeric_limits<std::size_t>::max())) {
    return std::numeric_limits<std::size_t>::max();
  }
  return static_cast<std::size_t>(bytes);
}

/// Route parsed snapshot entries to per-shard buckets, preserving order
/// within each bucket (loaded entries join behind existing ones in saved
/// recency order).
std::vector<std::vector<cache_io::SnapshotEntry>> bucket_by_shard(
    std::vector<cache_io::SnapshotEntry> entries, std::size_t shard_count) {
  std::vector<std::vector<cache_io::SnapshotEntry>> buckets(shard_count);
  for (cache_io::SnapshotEntry& entry : entries) {
    const std::size_t shard = cache_io::shard_index_for_digest(
        cache_io::key_digest(entry.key), shard_count);
    buckets[shard].push_back(std::move(entry));
  }
  return buckets;
}

}  // namespace

SolveCache::SolveCache(std::size_t capacity, std::size_t shards) {
  TPCOOL_REQUIRE(capacity >= 1, "solve cache needs capacity >= 1");
  const std::size_t count =
      shards == 0 ? default_shard_count() : round_up_shards(shards);
  // Divide the capacity across the stripes, rounded up so every shard can
  // hold at least one entry; capacity() reports the effective total.
  shard_capacity_ = std::max<std::size_t>(1, (capacity + count - 1) / count);
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<CacheShard>(shard_capacity_, i));
  }
}

std::size_t SolveCache::default_shard_count() {
  if (const char* env = std::getenv("TPCOOL_SOLVE_CACHE_SHARDS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) {
      return round_up_shards(static_cast<std::size_t>(parsed));
    }
    std::fprintf(stderr,
                 "tpcool: ignoring TPCOOL_SOLVE_CACHE_SHARDS=%s "
                 "(want an integer >= 1)\n",
                 env);
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return round_up_shards(hardware == 0 ? 1 : hardware);
}

CacheShard& SolveCache::shard_for(const std::string& key) const {
  return *shards_[cache_io::shard_index_for_digest(cache_io::key_digest(key),
                                                   shards_.size())];
}

SimulationResult SolveCache::get_or_compute(
    const std::string& key,
    const std::function<SimulationResult()>& compute) {
  return shard_for(key).get_or_compute(key, compute);
}

bool SolveCache::try_get(const std::string& key, SimulationResult& out) {
  return shard_for(key).try_get(key, out);
}

void SolveCache::put(const std::string& key, SimulationResult result,
                     double cost_ms) {
  shard_for(key).put(key, std::move(result), cost_ms);
}

SolveCache::Stats SolveCache::stats() const {
  Stats total;
  for (const std::unique_ptr<CacheShard>& shard : shards_) {
    const CacheShard::Stats s = shard->stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
    total.size += s.size;
    total.waiting += s.waiting;
  }
  return total;
}

void SolveCache::clear() {
  for (const std::unique_ptr<CacheShard>& shard : shards_) shard->clear();
}

// --------------------------------------------------------- persistence --

void SolveCache::save(const std::string& path) const {
  util::TraceSpan span("cache.save");
  const std::size_t shard_count = shards_.size();
  span.arg("shards", static_cast<double>(shard_count));
  span.detail(path);
  std::vector<cache_io::SegmentInfo> infos(shard_count);

  // Fan the per-segment encode + atomic write out over the thread pool:
  // each shard serializes under its own lock and lands in its own file, so
  // wide caches save in parallel.  parallel_map degrades to a serial loop
  // when called from inside a pool worker (nested saves stay safe).
  const std::vector<std::size_t> byte_sizes =
      util::parallel_map<std::size_t>(
          shard_count, 1, [](std::size_t chunk) { return chunk; },
          [&](std::size_t /*chunk*/, std::size_t i) {
            const std::string blob =
                shards_[i]->encode_segment(i, shard_count, infos[i]);
            cache_io::write_file_atomic(cache_io::segment_path(path, i), blob);
            return blob.size();
          });

  // Manifest last: a manifest that landed describes segments that already
  // landed.  (A reader racing a rewrite can catch a new segment under an
  // old manifest — the manifest-recorded segment digests make that a
  // detected cold start, never silent corruption.)
  const std::string manifest = cache_io::encode_manifest(infos);
  cache_io::write_file_atomic(path, manifest);

  // A previous save with more shards leaves higher-index segment files
  // behind; remove them so the directory mirrors the manifest.  Best
  // effort — a stale survivor is unreferenced and harmless.
  for (std::size_t i = shard_count; i < kMaxShards; ++i) {
    std::error_code ec;
    if (!std::filesystem::remove(cache_io::segment_path(path, i), ec)) break;
  }

  // Surface fleet-scale snapshot growth early (now across all files).
  std::size_t total_bytes = manifest.size();
  for (const std::size_t size : byte_sizes) total_bytes += size;
  span.arg("bytes", static_cast<double>(total_bytes));
  const std::size_t warn_bytes = snapshot_warn_bytes();
  if (warn_bytes > 0 && total_bytes > warn_bytes) {
    util::log_warn() << "solve-cache snapshot " << path << " is "
                     << total_bytes / (1024.0 * 1024.0) << " MB across "
                     << shard_count << " segment(s) (warn threshold "
                     << warn_bytes / (1024.0 * 1024.0)
                     << " MB; raise TPCOOL_SOLVE_CACHE_WARN_MB or lower "
                        "TPCOOL_SOLVE_CACHE_CAPACITY)";
  }
}

void SolveCache::load(const std::string& path) {
  util::TraceSpan span("cache.load");
  span.arg("shards", static_cast<double>(shards_.size()));
  span.detail(path);
  const std::string blob = cache_io::read_file(path);

  // Parse and validate everything *before* touching the cache: a snapshot
  // that fails validation leaves the cache exactly as it was.
  std::vector<cache_io::SnapshotEntry> entries;
  if (cache_io::is_legacy_snapshot(blob)) {
    // v2 -> v3 migration path: monolithic snapshots (CI actions-cache
    // blobs, long-lived --cache-file paths) load transparently; the next
    // save rewrites them segmented.
    entries = cache_io::decode_legacy_v2(blob, path);
  } else if (cache_io::is_manifest(blob)) {
    const cache_io::Manifest manifest = cache_io::decode_manifest(blob, path);
    const std::size_t segment_count = manifest.segments.size();
    for (std::size_t i = 0; i < segment_count; ++i) {
      const std::string segment_file = cache_io::segment_path(path, i);
      std::vector<cache_io::SnapshotEntry> segment = cache_io::decode_segment(
          cache_io::read_file(segment_file), i, segment_count,
          manifest.segments[i], segment_file);
      entries.insert(entries.end(), std::make_move_iterator(segment.begin()),
                     std::make_move_iterator(segment.end()));
    }
  } else {
    throw SnapshotError(path + " is not a solve-cache snapshot (bad magic)");
  }

  // Re-stripe by *this* cache's shard count (the snapshot's segment count
  // need not match) and merge each bucket behind the shard's existing
  // entries.  Entry order within a bucket follows the snapshot's saved
  // recency order, so the merge is deterministic.
  std::vector<std::vector<cache_io::SnapshotEntry>> buckets =
      bucket_by_shard(std::move(entries), shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->absorb(std::move(buckets[i]));
  }
}

std::uint64_t SolveCache::content_digest() const {
  std::uint64_t sum = 0;
  for (const std::unique_ptr<CacheShard>& shard : shards_) {
    sum += shard->content_digest_sum();
  }
  return sum;
}

namespace {

/// Caches registered for save-at-exit; holds shared ownership so the
/// snapshot can be written even if all other references are gone.
struct PersistenceRegistry {
  std::mutex mutex;
  bool atexit_registered = false;
  std::vector<std::pair<std::shared_ptr<SolveCache>, std::string>> entries;

  static PersistenceRegistry& instance() {
    static PersistenceRegistry registry;
    return registry;
  }

  static void save_all() {
    PersistenceRegistry& registry = instance();
    std::lock_guard lock(registry.mutex);
    for (const auto& [cache, path] : registry.entries) {
      try {
        // Merge-save: fold the current on-disk snapshot back in first
        // (in-memory entries win), so a process that cleared or only
        // partially exercised the cache never shrinks the snapshot —
        // warmth accumulates monotonically, bounded by the capacity.
        try {
          cache->load(path);
        } catch (const SnapshotError&) {
          // Missing or damaged file: save fresh.
        }
        cache->save(path);
      } catch (const std::exception& error) {
        std::fprintf(stderr, "tpcool: solve-cache save to %s failed: %s\n",
                     path.c_str(), error.what());
      }
    }
  }
};

}  // namespace

void SolveCache::attach_persistent_file(
    const std::shared_ptr<SolveCache>& cache, std::string path) {
  TPCOOL_REQUIRE(cache != nullptr, "attach_persistent_file needs a cache");
  TPCOOL_REQUIRE(!path.empty(), "attach_persistent_file needs a path");
  // The exit save fans segments out via parallel_map; construct the global
  // thread pool *before* registering the atexit handler so the pool's
  // function-local static slot is destroyed after the handler runs.
  (void)util::ThreadPool::global();
  std::error_code ec;
  if (std::filesystem::exists(path, ec)) {
    try {
      cache->load(path);
    } catch (const SnapshotError& error) {
      // A bad snapshot must never fail the run; start cold and the exit
      // save will replace it with a good one.
      std::fprintf(stderr, "tpcool: ignoring solve-cache snapshot: %s\n",
                   error.what());
    }
  }
  PersistenceRegistry& registry = PersistenceRegistry::instance();
  std::lock_guard lock(registry.mutex);
  // One snapshot path per cache, last attach wins: a bench's --cache-file
  // replaces the TPCOOL_SOLVE_CACHE_FILE registration made by global(),
  // so the env path is not also rewritten at exit.  The displacement is
  // deliberate but must be visible — the first path will NOT be rewritten.
  for (auto& [existing, existing_path] : registry.entries) {
    if (existing == cache) {
      if (existing_path != path) {
        util::log_warn() << "solve-cache snapshot path " << path
                         << " displaces previously attached " << existing_path
                         << " (last attach wins; " << existing_path
                         << " will not be rewritten at exit)";
      }
      existing_path = std::move(path);
      return;
    }
  }
  registry.entries.emplace_back(cache, std::move(path));
  if (!registry.atexit_registered) {
    // The registry (a function-local static) is constructed before this
    // handler registers, so it is destroyed after the handler runs.
    std::atexit(&PersistenceRegistry::save_all);
    registry.atexit_registered = true;
  }
}

const std::shared_ptr<SolveCache>& SolveCache::global() {
  static const std::shared_ptr<SolveCache> cache = [] {
    std::size_t capacity = kDefaultCapacity;
    if (const char* env = std::getenv("TPCOOL_SOLVE_CACHE_CAPACITY")) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed >= 1) {
        capacity = static_cast<std::size_t>(parsed);
      } else {
        std::fprintf(stderr,
                     "tpcool: ignoring TPCOOL_SOLVE_CACHE_CAPACITY=%s "
                     "(want an integer >= 1)\n",
                     env);
      }
    }
    auto created = std::make_shared<SolveCache>(capacity);
    if (const char* path = std::getenv("TPCOOL_SOLVE_CACHE_FILE")) {
      if (path[0] != '\0') attach_persistent_file(created, path);
    }
    return created;
  }();
  return cache;
}

void append_key_bits(std::string& key, double value) {
  static const char* hex = "0123456789abcdef";
  const auto bits = std::bit_cast<std::uint64_t>(value);
  for (int shift = 60; shift >= 0; shift -= 4) {
    key.push_back(hex[(bits >> shift) & 0xF]);
  }
  key.push_back(';');
}

std::string solve_request_key(const workload::BenchmarkProfile& bench,
                              const workload::Configuration& config,
                              const std::vector<int>& cores,
                              power::CState idle_state) {
  // Per-core powers depend only on which cores are active, so placements
  // that permute the same set share one entry (the oracle enumerates sorted
  // subsets, heuristics return rack order).  ServerModel restores the
  // caller's ordering in SimulationResult::active_cores after a hit.
  std::vector<int> sorted_cores = cores;
  std::sort(sorted_cores.begin(), sorted_cores.end());
  std::string key;
  key.reserve(192);
  // The full profile, not just the name: two profiles may share a name but
  // differ in parameters (tests build custom ones).
  key += bench.name;
  key.push_back(';');
  append_key_bits(key, bench.c_eff_w_per_ghz_v2);
  append_key_bits(key, bench.smt_yield);
  append_key_bits(key, bench.serial_fraction);
  append_key_bits(key, bench.scaling_exponent);
  append_key_bits(key, bench.mem_intensity);
  append_key_bits(key, bench.tolerable_latency_us);
  key += std::to_string(config.cores);
  key.push_back(',');
  key += std::to_string(config.threads_per_core);
  key.push_back(',');
  append_key_bits(key, config.freq_ghz);
  for (const int core : sorted_cores) {
    key += std::to_string(core);
    key.push_back(',');
  }
  key.push_back(';');
  key += std::to_string(static_cast<int>(idle_state));
  return key;
}

std::string segment_request_key(const std::string& scope,
                                const workload::BenchmarkProfile& bench,
                                const workload::Configuration& config,
                                const std::vector<int>& cores,
                                power::CState idle_state,
                                const thermosyphon::OperatingPoint& op,
                                double duration_s,
                                const thermal::StepControlConfig& step_control,
                                double fixed_dt_s,
                                const std::vector<double>& initial_field_c) {
  // 128-bit initial-field digest: two FNV-1a streams over the exact cell
  // bit patterns, differing only in seed.  A single 64-bit stream invites
  // birthday collisions at fleet scale; two independent seeds push the
  // collision probability below any practical run length while keeping the
  // key a fixed, small size.
  std::uint64_t lo = util::kFnvOffsetBasis;
  std::uint64_t hi = util::kFnvOffsetBasis ^ 0x9e3779b97f4a7c15ULL;
  for (const double value : initial_field_c) {
    const auto bits = std::bit_cast<std::uint64_t>(value);
    for (int shift = 0; shift < 64; shift += 8) {
      const auto byte = static_cast<unsigned char>((bits >> shift) & 0xFF);
      lo = (lo ^ byte) * util::kFnvPrime;
      hi = (hi ^ byte) * util::kFnvPrime;
    }
  }
  std::string key = "segment;";
  key += scope;
  key.push_back(';');
  key += solve_request_key(bench, config, cores, idle_state);
  key.push_back(';');
  append_key_bits(key, op.water_flow_kg_h);
  append_key_bits(key, op.water_inlet_c);
  append_key_bits(key, duration_s);
  append_key_bits(key, step_control.tolerance_c);
  append_key_bits(key, step_control.min_dt_s);
  append_key_bits(key, step_control.max_dt_s);
  append_key_bits(key, step_control.initial_dt_s);
  append_key_bits(key, step_control.max_growth);
  append_key_bits(key, step_control.safety);
  append_key_bits(key, fixed_dt_s);
  key += std::to_string(initial_field_c.size());
  key.push_back(';');
  append_key_bits(key, std::bit_cast<double>(lo));
  append_key_bits(key, std::bit_cast<double>(hi));
  return key;
}

}  // namespace tpcool::core
