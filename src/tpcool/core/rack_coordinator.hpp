#pragma once
/// \file rack_coordinator.hpp
/// \brief Rack-level coordination (§V): one chiller per rack forces a shared
///        water temperature; the coordinator schedules one application per
///        server, derives each server's highest feasible supply temperature,
///        and sets the rack setpoint to the minimum of those.

#include <memory>
#include <string>
#include <vector>

#include "tpcool/cooling/rack.hpp"
#include "tpcool/core/pipelines.hpp"

namespace tpcool::core {

/// Per-server outcome of the rack plan.
struct ServerPlan {
  std::string benchmark;
  ScheduleDecision decision;
  double package_power_w = 0.0;
  double max_supply_temp_c = 0.0;  ///< Highest water temp with TCASE ≤ limit.
  double die_max_c = 0.0;          ///< At the shared setpoint.
};

/// Full rack plan.
struct RackPlan {
  std::vector<ServerPlan> servers;
  cooling::RackCoolingState cooling;
};

/// Coordinates a homogeneous rack of servers running one approach.
class RackCoordinator {
 public:
  struct Config {
    Approach approach = Approach::kProposed;
    workload::QoSRequirement qos{2.0};
    double cell_size_m = 1.5e-3;  ///< Coarser default: rack = many solves.
    double tcase_limit_c = 85.0;
    /// Candidate supply temperatures scanned per server, descending.
    std::vector<double> supply_candidates_c{40.0, 35.0, 30.0, 25.0, 20.0,
                                            15.0};
    cooling::ChillerModel chiller;
  };

  explicit RackCoordinator(Config config);

  /// Schedule each named benchmark on its own server and solve the shared
  /// cooling loop.  The per-server supply-temperature scans fan out over
  /// the global thread pool through the shared solve cache, on pipelines
  /// checked out of the global PipelinePool (cached solves are cold-start
  /// pure, so pooled reuse is bit-identical to fresh construction);
  /// results are bit-identical for any thread count (see parallel.hpp).
  [[nodiscard]] RackPlan plan(const std::vector<std::string>& benchmarks);

 private:
  Config config_;
};

}  // namespace tpcool::core
