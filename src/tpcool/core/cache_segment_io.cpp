#include "tpcool/core/cache_segment_io.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "tpcool/util/error.hpp"
#include "tpcool/util/fnv.hpp"

namespace tpcool::core::cache_io {

// ------------------------------------------------------------- formats --
//
// Legacy monolithic snapshot (v2, read-only; the pre-shard format):
//
//   magic   8 bytes  "TPCOOLSC"
//   u32     schema version (2)
//   u64     entry count
//   entry*  most- to least-recently-used:
//             u64 FNV-1a digest of the key bytes
//             u64 key length, key bytes
//             u64 payload length, payload bytes (one SimulationResult)
//   u64     FNV-1a digest of every preceding byte of the file
//
// Segmented snapshot (v3): a manifest plus one segment file per shard
// digest-range (segment i holds exactly the keys whose FNV-1a digest's top
// log2(count) bits equal i).
//
//   manifest ("TPCOOLSM"):
//     magic, u32 version (3), u64 segment count (power of two),
//     u64 total entry count,
//     per segment: u64 entry count, u64 byte size, u64 stream digest,
//     u64 trailing FNV-1a digest of every preceding byte
//
//   segment ("TPCOOLSG", file <manifest>.seg%04zu):
//     magic, u32 version (3), u64 segment index, u64 segment count,
//     u64 entry count,
//     entry* (MRU -> LRU): u64 key digest, u64 key length + bytes,
//                          f64 cost_ms, u64 payload length + bytes
//     u64 trailing FNV-1a digest of every preceding byte
//
// The manifest records each segment's trailing digest, so a manifest from
// one save generation paired with a segment from another (a crash or a
// racing writer between renames) is a detected SnapshotError, never a
// silently mixed snapshot.

namespace {

constexpr char kLegacyMagic[8] = {'T', 'P', 'C', 'O', 'O', 'L', 'S', 'C'};
constexpr char kManifestMagic[8] = {'T', 'P', 'C', 'O', 'O', 'L', 'S', 'M'};
constexpr char kSegmentMagic[8] = {'T', 'P', 'C', 'O', 'O', 'L', 'S', 'G'};

constexpr std::uint32_t kLegacyVersion = 2;
constexpr std::uint32_t kSegmentedVersion = 3;

/// Hard ceiling on segment counts accepted from disk; far above any real
/// shard configuration, low enough that a hostile manifest cannot demand
/// millions of file reads.
constexpr std::uint64_t kMaxSegments = 4096;

std::uint64_t fnv1a(const char* data, std::size_t size,
                    std::uint64_t seed = util::kFnvOffsetBasis) {
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= util::kFnvPrime;
  }
  return hash;
}

void put_u8(std::string& out, std::uint8_t value) {
  out.push_back(static_cast<char>(value));
}

void put_u32(std::string& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

void put_u64(std::string& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

void put_f64(std::string& out, double value) {
  put_u64(out, std::bit_cast<std::uint64_t>(value));
}

void put_grid(std::string& out, const util::Grid2D<double>& grid) {
  put_u64(out, grid.nx());
  put_u64(out, grid.ny());
  for (const double value : grid.data()) put_f64(out, value);
}

void put_metrics(std::string& out, const thermal::ThermalMetrics& m) {
  put_f64(out, m.max_c);
  put_f64(out, m.avg_c);
  put_f64(out, m.grad_max_c_per_mm);
  put_u64(out, m.hotspot_cells);
  put_u64(out, m.cell_count);
}

/// Patch a little-endian u64 in place (the segment encoder seals its entry
/// count after the last add()).
void patch_u64(std::string& out, std::size_t offset, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out[offset + static_cast<std::size_t>(shift / 8)] =
        static_cast<char>((value >> shift) & 0xFF);
  }
}

/// Bounds-checked reader over a byte buffer; every underflow throws
/// SnapshotError so truncated files fail loudly at the exact spot.
class Cursor {
 public:
  Cursor(const std::string& buffer, std::size_t pos, std::size_t end)
      : buffer_(buffer), pos_(pos), end_(end) {}

  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return end_ - pos_; }

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(buffer_[pos_++]);
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t value = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      value |= static_cast<std::uint32_t>(
                   static_cast<unsigned char>(buffer_[pos_++]))
               << shift;
    }
    return value;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t value = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      value |= static_cast<std::uint64_t>(
                   static_cast<unsigned char>(buffer_[pos_++]))
               << shift;
    }
    return value;
  }

  double f64() { return std::bit_cast<double>(u64()); }

  std::string bytes(std::size_t size) {
    need(size);
    std::string out = buffer_.substr(pos_, size);
    pos_ += size;
    return out;
  }

  void skip(std::size_t size) {
    need(size);
    pos_ += size;
  }

  /// A length field must fit the remaining bytes before it is trusted.
  std::size_t length(const char* what) {
    const std::uint64_t value = u64();
    if (value > remaining()) {
      throw SnapshotError(std::string("truncated solve-cache snapshot: ") +
                          what + " length exceeds the file");
    }
    return static_cast<std::size_t>(value);
  }

 private:
  void need(std::size_t count) const {
    if (end_ - pos_ < count) {
      throw SnapshotError(
          "truncated solve-cache snapshot: unexpected end of file");
    }
  }

  const std::string& buffer_;
  std::size_t pos_;
  std::size_t end_;
};

util::Grid2D<double> parse_grid(Cursor& cursor) {
  const std::uint64_t nx = cursor.u64();
  const std::uint64_t ny = cursor.u64();
  if (nx == 0 || ny == 0) {
    if (nx != ny) {
      throw SnapshotError("corrupt solve-cache snapshot: half-empty grid");
    }
    return {};
  }
  // Overflow-safe bound: nx * ny doubles must fit the remaining bytes.
  if (nx > (cursor.remaining() / 8) / ny) {
    throw SnapshotError(
        "truncated solve-cache snapshot: grid exceeds the file");
  }
  util::Grid2D<double> grid(static_cast<std::size_t>(nx),
                            static_cast<std::size_t>(ny));
  for (double& value : grid.data()) value = cursor.f64();
  return grid;
}

thermal::ThermalMetrics parse_metrics(Cursor& cursor) {
  thermal::ThermalMetrics m;
  m.max_c = cursor.f64();
  m.avg_c = cursor.f64();
  m.grad_max_c_per_mm = cursor.f64();
  m.hotspot_cells = static_cast<std::size_t>(cursor.u64());
  m.cell_count = static_cast<std::size_t>(cursor.u64());
  return m;
}

SimulationResult parse_result(Cursor& cursor) {
  SimulationResult r;
  r.die = parse_metrics(cursor);
  r.package = parse_metrics(cursor);
  r.tcase_c = cursor.f64();
  r.total_power_w = cursor.f64();
  r.power.active_cores_w = cursor.f64();
  r.power.idle_cores_w = cursor.f64();
  r.power.mcio_w = cursor.f64();
  r.power.llc_w = cursor.f64();
  r.syphon.t_sat_c = cursor.f64();
  r.syphon.refrigerant_flow_kg_s = cursor.f64();
  r.syphon.loop_exit_quality = cursor.f64();
  r.syphon.water_outlet_c = cursor.f64();
  r.syphon.q_total_w = cursor.f64();
  r.syphon.htc_map = parse_grid(cursor);
  r.syphon.fluid_temp_map = parse_grid(cursor);
  const std::size_t channel_count = cursor.length("channel list");
  r.syphon.channels.resize(channel_count);
  for (thermosyphon::ChannelSummary& ch : r.syphon.channels) {
    ch.exit_quality = cursor.f64();
    ch.absorbed_w = cursor.f64();
    ch.dried_out = cursor.u8() != 0;
  }
  r.syphon.any_dryout = cursor.u8() != 0;
  r.die_field_c = parse_grid(cursor);
  r.package_field_c = parse_grid(cursor);
  const std::size_t core_count = cursor.length("active-core list");
  r.active_cores.resize(core_count);
  for (int& core : r.active_cores) {
    core = static_cast<int>(std::bit_cast<std::int64_t>(cursor.u64()));
  }
  const std::size_t state_count = cursor.length("transient end state");
  if (state_count > cursor.remaining() / 8) {
    throw SnapshotError(
        "truncated solve-cache snapshot: transient state exceeds the file");
  }
  r.transient.end_state_c.resize(state_count);
  for (double& value : r.transient.end_state_c) value = cursor.f64();
  r.transient.peak_tcase_c = cursor.f64();
  r.transient.peak_die_c = cursor.f64();
  r.transient.sim_time_s = cursor.f64();
  r.transient.steps = cursor.u64();
  r.transient.rejected_steps = cursor.u64();
  return r;
}

/// Validate a whole file's trailing stream digest and return a cursor over
/// the body (after `header_size` magic bytes, before the digest).
Cursor open_sealed(const std::string& blob, const char (&magic)[8],
                   const char* kind, const std::string& origin) {
  if (blob.size() < sizeof(magic) + 4 + 8) {
    throw SnapshotError("truncated solve-cache " + std::string(kind) + " " +
                        origin + ": shorter than the fixed header");
  }
  if (!std::equal(magic, magic + sizeof(magic), blob.begin())) {
    throw SnapshotError(origin + " is not a solve-cache " + kind +
                        " (bad magic)");
  }
  Cursor digest_cursor(blob, blob.size() - 8, blob.size());
  const std::uint64_t recorded = digest_cursor.u64();
  const std::uint64_t actual = fnv1a(blob.data(), blob.size() - 8);
  if (recorded != actual) {
    throw SnapshotError("corrupt solve-cache " + std::string(kind) + " " +
                        origin +
                        ": stream digest mismatch (truncated or damaged)");
  }
  return {blob, sizeof(magic), blob.size() - 8};
}

}  // namespace

std::string serialize_result(const SimulationResult& r) {
  std::string out;
  out.reserve(64 + 8 * (r.die_field_c.size() + r.package_field_c.size() +
                        r.syphon.htc_map.size() +
                        r.syphon.fluid_temp_map.size()));
  put_metrics(out, r.die);
  put_metrics(out, r.package);
  put_f64(out, r.tcase_c);
  put_f64(out, r.total_power_w);
  put_f64(out, r.power.active_cores_w);
  put_f64(out, r.power.idle_cores_w);
  put_f64(out, r.power.mcio_w);
  put_f64(out, r.power.llc_w);
  put_f64(out, r.syphon.t_sat_c);
  put_f64(out, r.syphon.refrigerant_flow_kg_s);
  put_f64(out, r.syphon.loop_exit_quality);
  put_f64(out, r.syphon.water_outlet_c);
  put_f64(out, r.syphon.q_total_w);
  put_grid(out, r.syphon.htc_map);
  put_grid(out, r.syphon.fluid_temp_map);
  put_u64(out, r.syphon.channels.size());
  for (const thermosyphon::ChannelSummary& ch : r.syphon.channels) {
    put_f64(out, ch.exit_quality);
    put_f64(out, ch.absorbed_w);
    put_u8(out, ch.dried_out ? 1 : 0);
  }
  put_u8(out, r.syphon.any_dryout ? 1 : 0);
  put_grid(out, r.die_field_c);
  put_grid(out, r.package_field_c);
  put_u64(out, r.active_cores.size());
  for (const int core : r.active_cores) {
    put_u64(out, std::bit_cast<std::uint64_t>(static_cast<std::int64_t>(core)));
  }
  // v2+: transient-segment payload.  Steady results serialize an empty end
  // state and zero counters — a few dozen bytes of overhead per entry.
  put_u64(out, r.transient.end_state_c.size());
  for (const double value : r.transient.end_state_c) put_f64(out, value);
  put_f64(out, r.transient.peak_tcase_c);
  put_f64(out, r.transient.peak_die_c);
  put_f64(out, r.transient.sim_time_s);
  put_u64(out, r.transient.steps);
  put_u64(out, r.transient.rejected_steps);
  return out;
}

SimulationResult parse_result_payload(const std::string& payload) {
  Cursor cursor(payload, 0, payload.size());
  SimulationResult result = parse_result(cursor);
  if (cursor.remaining() != 0) {
    throw SnapshotError(
        "corrupt solve-cache snapshot: result payload has trailing bytes");
  }
  return result;
}

std::uint64_t key_digest(const std::string& key) {
  return fnv1a(key.data(), key.size());
}

std::size_t shard_index_for_digest(std::uint64_t digest, std::size_t count) {
  TPCOOL_REQUIRE(count >= 1 && std::has_single_bit(count),
                 "shard count must be a power of two");
  if (count == 1) return 0;
  // FNV-1a disperses its low bits well but its high bits poorly (similar
  // short keys cluster); a golden-ratio multiply (Fibonacci hashing) folds
  // the whole digest into uniformly dispersed top bits.  The mix is part
  // of the on-disk format: decode_segment re-derives membership with it.
  const std::uint64_t mixed = digest * 0x9e3779b97f4a7c15ULL;
  const int bits = std::countr_zero(count);
  return static_cast<std::size_t>(mixed >> (64 - bits));
}

std::uint64_t entry_content_digest(const std::string& key,
                                   const std::string& payload) {
  return fnv1a(payload.data(), payload.size(),
               fnv1a(key.data(), key.size()));
}

std::string segment_path(const std::string& manifest_path, std::size_t index) {
  char suffix[16];
  std::snprintf(suffix, sizeof(suffix), ".seg%04zu", index);
  return manifest_path + suffix;
}

// ------------------------------------------------------------- encoding --

namespace {
/// Offset of the entry-count field a SegmentEncoder patches at finish():
/// magic + version + segment index + segment count.
constexpr std::size_t kSegmentCountOffset = sizeof(kSegmentMagic) + 4 + 8 + 8;
}  // namespace

SegmentEncoder::SegmentEncoder(std::size_t segment_index,
                               std::size_t segment_count) {
  blob_.append(kSegmentMagic, sizeof(kSegmentMagic));
  put_u32(blob_, kSegmentedVersion);
  put_u64(blob_, segment_index);
  put_u64(blob_, segment_count);
  put_u64(blob_, 0);  // entry count, sealed by finish()
}

void SegmentEncoder::add(const std::string& key, double cost_ms,
                         const std::string& payload) {
  put_u64(blob_, key_digest(key));
  put_u64(blob_, key.size());
  blob_ += key;
  put_f64(blob_, cost_ms);
  put_u64(blob_, payload.size());
  blob_ += payload;
  ++count_;
}

std::string SegmentEncoder::finish() && {
  patch_u64(blob_, kSegmentCountOffset, count_);
  put_u64(blob_, fnv1a(blob_.data(), blob_.size()));
  return std::move(blob_);
}

std::string encode_manifest(const std::vector<SegmentInfo>& segments) {
  TPCOOL_REQUIRE(!segments.empty() && std::has_single_bit(segments.size()),
                 "manifest needs a power-of-two segment count");
  std::string blob;
  blob.append(kManifestMagic, sizeof(kManifestMagic));
  put_u32(blob, kSegmentedVersion);
  put_u64(blob, segments.size());
  std::uint64_t total = 0;
  for (const SegmentInfo& segment : segments) total += segment.entry_count;
  put_u64(blob, total);
  for (const SegmentInfo& segment : segments) {
    put_u64(blob, segment.entry_count);
    put_u64(blob, segment.byte_size);
    put_u64(blob, segment.stream_digest);
  }
  put_u64(blob, fnv1a(blob.data(), blob.size()));
  return blob;
}

std::string encode_legacy_v2(const std::vector<SnapshotEntry>& entries) {
  std::string blob;
  blob.append(kLegacyMagic, sizeof(kLegacyMagic));
  put_u32(blob, kLegacyVersion);
  put_u64(blob, entries.size());
  for (const SnapshotEntry& entry : entries) {
    const std::string payload = serialize_result(entry.result);
    put_u64(blob, key_digest(entry.key));
    put_u64(blob, entry.key.size());
    blob += entry.key;
    put_u64(blob, payload.size());
    blob += payload;
  }
  put_u64(blob, fnv1a(blob.data(), blob.size()));
  return blob;
}

// ------------------------------------------------------------- decoding --

bool is_legacy_snapshot(const std::string& blob) {
  return blob.size() >= sizeof(kLegacyMagic) &&
         std::equal(kLegacyMagic, kLegacyMagic + sizeof(kLegacyMagic),
                    blob.begin());
}

bool is_manifest(const std::string& blob) {
  return blob.size() >= sizeof(kManifestMagic) &&
         std::equal(kManifestMagic, kManifestMagic + sizeof(kManifestMagic),
                    blob.begin());
}

Manifest decode_manifest(const std::string& blob, const std::string& origin) {
  Cursor cursor = open_sealed(blob, kManifestMagic, "manifest", origin);
  Manifest manifest;
  manifest.version = cursor.u32();
  if (manifest.version != kSegmentedVersion) {
    throw SnapshotError(
        "solve-cache manifest " + origin + " has schema version " +
        std::to_string(manifest.version) + "; this build reads only version " +
        std::to_string(kSegmentedVersion) + " (and migrates legacy version " +
        std::to_string(kLegacyVersion) + ") — delete it and re-warm");
  }
  const std::uint64_t segment_count = cursor.u64();
  if (segment_count == 0 || segment_count > kMaxSegments ||
      !std::has_single_bit(segment_count)) {
    throw SnapshotError("corrupt solve-cache manifest " + origin +
                        ": segment count " + std::to_string(segment_count) +
                        " is not a power of two in [1, " +
                        std::to_string(kMaxSegments) + "]");
  }
  manifest.total_entries = cursor.u64();
  manifest.segments.resize(static_cast<std::size_t>(segment_count));
  std::uint64_t summed = 0;
  for (SegmentInfo& segment : manifest.segments) {
    segment.entry_count = cursor.u64();
    segment.byte_size = cursor.u64();
    segment.stream_digest = cursor.u64();
    summed += segment.entry_count;
  }
  if (cursor.remaining() != 0) {
    throw SnapshotError("corrupt solve-cache manifest " + origin +
                        ": trailing bytes after the segment table");
  }
  if (summed != manifest.total_entries) {
    throw SnapshotError("corrupt solve-cache manifest " + origin +
                        ": segment entry counts sum to " +
                        std::to_string(summed) + ", recorded total is " +
                        std::to_string(manifest.total_entries));
  }
  return manifest;
}

std::vector<SnapshotEntry> decode_segment(const std::string& blob,
                                          std::size_t expected_index,
                                          std::size_t expected_count,
                                          const SegmentInfo& info,
                                          const std::string& origin) {
  if (blob.size() != info.byte_size) {
    throw SnapshotError("corrupt solve-cache segment " + origin + ": " +
                        std::to_string(blob.size()) +
                        " bytes on disk, manifest recorded " +
                        std::to_string(info.byte_size));
  }
  Cursor cursor = open_sealed(blob, kSegmentMagic, "segment", origin);
  // The manifest pins the exact digest of the segment generation it was
  // written with; a mismatch means a mixed-generation pair (crash or racing
  // writer between renames) even though both files are self-consistent.
  {
    Cursor digest_cursor(blob, blob.size() - 8, blob.size());
    if (digest_cursor.u64() != info.stream_digest) {
      throw SnapshotError("corrupt solve-cache segment " + origin +
                          ": digest differs from the manifest (snapshot "
                          "generations are mixed)");
    }
  }
  const std::uint32_t version = cursor.u32();
  if (version != kSegmentedVersion) {
    throw SnapshotError("solve-cache segment " + origin +
                        " has schema version " + std::to_string(version) +
                        "; this build reads only version " +
                        std::to_string(kSegmentedVersion));
  }
  const std::uint64_t index = cursor.u64();
  const std::uint64_t count = cursor.u64();
  if (index != expected_index || count != expected_count) {
    throw SnapshotError("corrupt solve-cache segment " + origin +
                        ": records range " + std::to_string(index) + "/" +
                        std::to_string(count) + ", manifest expects " +
                        std::to_string(expected_index) + "/" +
                        std::to_string(expected_count));
  }
  const std::uint64_t entry_count = cursor.u64();
  if (entry_count != info.entry_count) {
    throw SnapshotError("corrupt solve-cache segment " + origin + ": holds " +
                        std::to_string(entry_count) +
                        " entries, manifest recorded " +
                        std::to_string(info.entry_count));
  }

  std::vector<SnapshotEntry> entries;
  entries.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(entry_count, 4096)));
  for (std::uint64_t i = 0; i < entry_count; ++i) {
    const std::uint64_t recorded_digest = cursor.u64();
    const std::size_t key_size = cursor.length("key");
    std::string key = cursor.bytes(key_size);
    const std::uint64_t digest = key_digest(key);
    if (digest != recorded_digest) {
      throw SnapshotError("corrupt solve-cache segment " + origin +
                          ": key digest mismatch at entry " +
                          std::to_string(i));
    }
    if (shard_index_for_digest(digest, expected_count) != expected_index) {
      throw SnapshotError("corrupt solve-cache segment " + origin +
                          ": entry " + std::to_string(i) +
                          " is outside this segment's digest range");
    }
    const double cost_ms = cursor.f64();
    const std::size_t payload_size = cursor.length("payload");
    Cursor payload(blob, cursor.pos(), cursor.pos() + payload_size);
    SimulationResult result = parse_result(payload);
    if (payload.remaining() != 0) {
      throw SnapshotError("corrupt solve-cache segment " + origin +
                          ": payload of entry " + std::to_string(i) +
                          " has trailing bytes");
    }
    cursor.skip(payload_size);  // parse_result consumed a bounded view
    entries.push_back(
        SnapshotEntry{std::move(key), cost_ms, std::move(result)});
  }
  if (cursor.remaining() != 0) {
    throw SnapshotError("corrupt solve-cache segment " + origin +
                        ": trailing bytes after the last entry");
  }
  return entries;
}

std::vector<SnapshotEntry> decode_legacy_v2(const std::string& blob,
                                            const std::string& origin) {
  Cursor cursor = open_sealed(blob, kLegacyMagic, "snapshot", origin);
  // Version before entries: a future schema gets the clear refusal below
  // even if it also moves the digest.
  const std::uint32_t version = cursor.u32();
  if (version != kLegacyVersion) {
    throw SnapshotError(
        "solve-cache snapshot " + origin + " has schema version " +
        std::to_string(version) + "; this build reads only legacy version " +
        std::to_string(kLegacyVersion) + " and segmented version " +
        std::to_string(kSegmentedVersion) + " — delete it and re-warm");
  }
  const std::uint64_t entry_count = cursor.u64();
  std::vector<SnapshotEntry> entries;
  entries.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(entry_count, 4096)));
  for (std::uint64_t i = 0; i < entry_count; ++i) {
    const std::uint64_t recorded_digest = cursor.u64();
    const std::size_t key_size = cursor.length("key");
    std::string key = cursor.bytes(key_size);
    if (key_digest(key) != recorded_digest) {
      throw SnapshotError("corrupt solve-cache snapshot " + origin +
                          ": key digest mismatch at entry " +
                          std::to_string(i));
    }
    const std::size_t payload_size = cursor.length("payload");
    Cursor payload(blob, cursor.pos(), cursor.pos() + payload_size);
    SimulationResult result = parse_result(payload);
    if (payload.remaining() != 0) {
      throw SnapshotError("corrupt solve-cache snapshot " + origin +
                          ": payload of entry " + std::to_string(i) +
                          " has trailing bytes");
    }
    cursor.skip(payload_size);
    // Pre-shard snapshots did not record costs: migrated entries surface as
    // cost 0 (cheapest to recompute) until their key is next computed.
    entries.push_back(SnapshotEntry{std::move(key), 0.0, std::move(result)});
  }
  if (cursor.remaining() != 0) {
    throw SnapshotError("corrupt solve-cache snapshot " + origin +
                        ": trailing bytes after the last entry");
  }
  return entries;
}

// ------------------------------------------------------------- file I/O --

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw SnapshotError("cannot open solve-cache file " + path);
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  if (!is.good() && !is.eof()) {
    throw SnapshotError("cannot read solve-cache file " + path);
  }
  return std::move(buffer).str();
}

void write_file_atomic(const std::string& path, const std::string& blob) {
  // Unique temp per (process, write): concurrent writers to one path then
  // interleave as whole-file renames (last wins), never as mixed bytes.
  static std::atomic<std::uint64_t> sequence{0};
  const std::string temp = path + ".tmp." + std::to_string(::getpid()) + "." +
                           std::to_string(sequence.fetch_add(1));
  {
    std::ofstream os(temp, std::ios::binary | std::ios::trunc);
    if (!os) {
      throw SnapshotError("cannot open " + temp + " for writing");
    }
    os.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    os.flush();
    if (!os) {
      std::error_code ec;
      std::filesystem::remove(temp, ec);
      throw SnapshotError("short write to " + temp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(temp, path, ec);
  if (ec) {
    std::filesystem::remove(temp, ec);
    throw SnapshotError("cannot rename " + temp + " to " + path);
  }
}

}  // namespace tpcool::core::cache_io
