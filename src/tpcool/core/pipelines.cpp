#include "tpcool/core/pipelines.hpp"

#include "tpcool/mapping/balancing.hpp"
#include "tpcool/mapping/inlet_first.hpp"
#include "tpcool/mapping/proposed.hpp"
#include "tpcool/util/error.hpp"

namespace tpcool::core {

const char* to_string(Approach approach) {
  switch (approach) {
    case Approach::kProposed: return "Proposed";
    case Approach::kSoaBalancing: return "[8]+[27]+[9]";
    case Approach::kSoaInletFirst: return "[8]+[27]+[7]";
  }
  return "?";
}

ServerConfig server_config_for(Approach approach, double cell_size_m) {
  TPCOOL_REQUIRE(cell_size_m > 0.0, "cell size must be positive");
  ServerConfig config;
  config.stack.cell_size_m = cell_size_m;
  const bool proposed = approach == Approach::kProposed;
  config.design.evaporator = default_evaporator_geometry(
      proposed ? thermosyphon::Orientation::kEastWest
               : thermosyphon::Orientation::kNorthSouth);
  config.design.refrigerant = &materials::r236fa();
  // §VI-B: the workload-aware design charges at 55 %; the uniform-flux
  // design of [8] used the generic 50 % charge.
  config.design.filling_ratio = proposed ? 0.55 : 0.50;
  config.operating_point = {.water_flow_kg_h = 7.0, .water_inlet_c = 30.0};
  // Experiment sweeps (Table 2 benches x QoS levels, Fig. 6 scenarios, the
  // cooling-power bisection) run many solves on one pipeline; keep the
  // warm-start chain explicitly on so consecutive solves reuse the
  // previous temperature field even if the ServerConfig default changes.
  config.reuse_thermal_state = true;
  return config;
}

ApproachPipeline::ApproachPipeline(Approach approach)
    : ApproachPipeline(approach, thermal::PackageStackConfig{}.cell_size_m) {}

ApproachPipeline::ApproachPipeline(Approach approach, double cell_size_m)
    : approach_(approach),
      server_(std::make_unique<ServerModel>(
          server_config_for(approach, cell_size_m))) {
  switch (approach) {
    case Approach::kProposed:
      policy_ = std::make_unique<mapping::ProposedPolicy>();
      scheduler_ = std::make_unique<Scheduler>(
          *server_, *policy_, SelectionStrategy::kAlgorithm1,
          /*manage_cstates=*/true);
      break;
    case Approach::kSoaBalancing:
      policy_ = std::make_unique<mapping::BalancingPolicy>();
      scheduler_ = std::make_unique<Scheduler>(
          *server_, *policy_, SelectionStrategy::kPackAndCap,
          /*manage_cstates=*/false);
      break;
    case Approach::kSoaInletFirst:
      policy_ = std::make_unique<mapping::InletFirstPolicy>();
      scheduler_ = std::make_unique<Scheduler>(
          *server_, *policy_, SelectionStrategy::kPackAndCap,
          /*manage_cstates=*/false);
      break;
  }
  TPCOOL_ENSURE(scheduler_ != nullptr, "unknown approach");
}

}  // namespace tpcool::core
