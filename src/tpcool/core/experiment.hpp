#pragma once
/// \file experiment.hpp
/// \brief Shared experiment runners regenerating the paper's tables and
///        figures.  Benches print the results; the acceptance test suite
///        asserts the qualitative orderings (DESIGN.md §4).

#include <string>
#include <vector>

#include "tpcool/core/pipelines.hpp"
#include "tpcool/power/cstates.hpp"

namespace tpcool::core {

/// Global experiment options.
struct ExperimentOptions {
  /// Thermal-grid cell pitch. The default is the figure-fidelity pitch of
  /// `thermal::PackageStackConfig` (0.75 mm), which is what the bench
  /// binaries run without `--fast`; each bench's `--fast` flag and the
  /// acceptance tests override it with a coarser pitch (1.0–2.0 mm,
  /// orderings are grid-stable) to keep CI fast.
  double cell_size_m = 0.75e-3;
  /// Restrict multi-benchmark experiments to the first N PARSEC profiles
  /// (0 = all 13). Orderings are stable under the restriction.
  int max_benchmarks = 0;
};

/// Benchmarks selected by the options.
[[nodiscard]] std::vector<workload::BenchmarkProfile> selected_benchmarks(
    const ExperimentOptions& options);

// ---------------------------------------------------------------- Fig. 2 --

/// Motivation: die vs package profile under a non-optimized design and
/// mapping (paper Fig. 2: die 66.1/55.9/6.6 vs package 46.4/42.9/0.5).
struct Fig2Result {
  thermal::ThermalMetrics die;
  thermal::ThermalMetrics package;
  util::Grid2D<double> die_field_c;
  util::Grid2D<double> package_field_c;
};

[[nodiscard]] Fig2Result run_fig2_motivation(const ExperimentOptions& options);

// ---------------------------------------------------------------- Fig. 3 --

/// One Fig. 3 row: execution time of one benchmark normalized to the
/// (8,16,fmax) baseline, across the plotted configurations.
struct Fig3Row {
  std::string benchmark;
  /// Normalized execution time per configuration, index-aligned with
  /// workload::fig3_configurations().
  std::vector<double> normalized_time;
  /// Whether the (2,4,fmax) configuration meets the 2x QoS limit — the
  /// column the paper annotates.
  bool meets_2x_at_2_4 = false;
};

/// Regenerate Fig. 3 for the benchmarks selected by `options`
/// (`max_benchmarks`; the grid pitch is irrelevant — no thermal solves).
/// Rows fan out over the thread pool; results are bit-identical for any
/// thread count.
[[nodiscard]] std::vector<Fig3Row> run_fig3(const ExperimentOptions& options);

// --------------------------------------------------------------- Table I --

/// One Table I row: resume latency and all-8-core idle power of one C-state
/// across the DVFS levels.
struct Table1Row {
  power::CState state = power::CState::kPoll;
  double latency_us = 0.0;
  /// Idle power of all 8 cores per frequency, index-aligned with
  /// table1_frequencies().
  std::vector<double> power_all8_w;
};

/// The three DVFS levels tabulated in Table I [GHz].
[[nodiscard]] const std::vector<double>& table1_frequencies();

/// Regenerate Table I over every modelled C-state (the paper's POLL/C1/C1E
/// rows plus the datasheet-consistent C3/C6 extensions), shallowest first.
/// Rows fan out over the thread pool; results are bit-identical for any
/// thread count.
[[nodiscard]] std::vector<Table1Row> run_table1();

// ---------------------------------------------------------------- Fig. 5 --

/// Orientation study row (Design 1 = east-west, Design 2 = north-south).
struct Fig5Row {
  thermosyphon::Orientation orientation;
  thermal::ThermalMetrics die;
  thermal::ThermalMetrics package;
};

[[nodiscard]] std::vector<Fig5Row> run_fig5_orientation(
    const ExperimentOptions& options);

// ---------------------------------------------------------------- Fig. 6 --

/// Mapping-scenario study: 3 placements × idle C-state ∈ {POLL, C1}.
struct Fig6Row {
  int scenario = 0;                 ///< 1, 2, 3 per Fig. 6 a–c.
  power::CState idle_state = power::CState::kPoll;
  std::vector<int> cores;
  thermal::ThermalMetrics die;
};

[[nodiscard]] std::vector<Fig6Row> run_fig6_scenarios(
    const ExperimentOptions& options);

/// Core sets of the three Fig. 6 scenarios on the default floorplan.
[[nodiscard]] std::vector<int> fig6_scenario_cores(int scenario);

// --------------------------------------------------------------- Table II --

/// One Table II row: per-approach, per-QoS averages over the benchmarks.
struct Table2Row {
  Approach approach = Approach::kProposed;
  double qos_factor = 1.0;
  double die_max_c = 0.0;
  double die_grad_c_per_mm = 0.0;
  double package_max_c = 0.0;
  double package_grad_c_per_mm = 0.0;
  double avg_power_w = 0.0;        ///< Average package power (not in the
                                   ///  paper's table; used by §VIII-B).
  double avg_water_dt_k = 0.0;     ///< Average condenser water ΔT.
};

[[nodiscard]] std::vector<Table2Row> run_table2(
    const ExperimentOptions& options);

// ---------------------------------------------------------------- Fig. 7 --

/// Sample die thermal maps at 2x QoS: proposed vs state of the art.
struct Fig7Result {
  util::Grid2D<double> proposed_map_c;
  util::Grid2D<double> soa_map_c;
  double proposed_max_c = 0.0;
  double soa_max_c = 0.0;
  floorplan::GridSpec grid;
  floorplan::Rect die_region;
};

[[nodiscard]] Fig7Result run_fig7_maps(const ExperimentOptions& options,
                                       const std::string& benchmark = "x264");

// --------------------------------------------------------------- §VIII-B --

/// Cooling-power comparison at iso-hot-spot (paper §VIII-B).
struct CoolingPowerResult {
  double proposed_die_max_c = 0.0;   ///< Hot spot achieved by the proposal.
  double proposed_water_c = 0.0;     ///< 30 °C by design.
  double soa_water_c = 0.0;          ///< Water temp the SoA needs to match.
  double proposed_loop_dt_k = 0.0;   ///< Water in→out ΔT, proposed.
  double soa_loop_dt_k = 0.0;        ///< Water in→out ΔT, state of the art.
  double proposed_lift_power_w = 0.0;   ///< Paper Eq. (1) accounting.
  double soa_lift_power_w = 0.0;
  double proposed_electrical_w = 0.0;   ///< COP-model chiller electricity.
  double soa_electrical_w = 0.0;
  double lift_reduction_pct = 0.0;
  double electrical_reduction_pct = 0.0;
};

[[nodiscard]] CoolingPowerResult run_cooling_power(
    const ExperimentOptions& options);

}  // namespace tpcool::core
