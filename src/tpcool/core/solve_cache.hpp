#pragma once
/// \file solve_cache.hpp
/// \brief Thread-safe memo of coupled-solve results, shared by the parallel
///        experiment engine.
///
/// Experiment sweeps (Table II rows, Fig. 6 scenarios, the oracle's subset
/// enumeration, rack supply-temperature scans) and the acceptance tests
/// repeatedly request the same (server, workload, placement, operating
/// point) solves.  The cache deduplicates them across runners and — because
/// cache-miss solves run from a cold start (see
/// ServerModel::enable_solve_cache) — every stored value is a pure function
/// of its key.  That purity is what makes the parallel experiment engine
/// bit-deterministic: a racing duplicate compute produces the identical
/// bits, so it never matters which thread's result is stored or served.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "tpcool/core/server.hpp"
#include "tpcool/workload/benchmark.hpp"
#include "tpcool/workload/configuration.hpp"

namespace tpcool::core {

/// Least-recently-used memo from solve keys to SimulationResults.
///
/// All operations are safe to call concurrently.  The lock is released
/// while a miss computes, so independent keys solve in parallel.
/// Concurrent get_or_compute calls for the *same* key are deduplicated:
/// the first caller computes, later callers wait and count a hit — exactly
/// the serial schedule — so the miss/hit counters are deterministic and
/// machine-independent (the regression gate in
/// scripts/check_bench_regression.py relies on this).  The one exception:
/// if eviction pressure drops a key between its compute and a waiter's
/// wake-up, the waiter recomputes (an extra miss); keep sweeps' working
/// sets under `capacity()` for exact counts.
class SolveCache {
 public:
  /// Capacity is in entries; one 1 mm-grid SimulationResult is ~100 KB, so
  /// the default bounds the cache around tens of MB.
  static constexpr std::size_t kDefaultCapacity = 256;

  explicit SolveCache(std::size_t capacity = kDefaultCapacity);

  SolveCache(const SolveCache&) = delete;
  SolveCache& operator=(const SolveCache&) = delete;

  /// Cache hit/miss/eviction counters since construction or clear().
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;
    std::size_t size = 0;
  };

  /// Serve `key` from the cache, or run `compute`, store and return its
  /// result.  `compute` runs without the cache lock held; a concurrent
  /// call for the same key blocks until the first caller's result lands
  /// and then counts a hit.
  [[nodiscard]] SimulationResult get_or_compute(
      const std::string& key,
      const std::function<SimulationResult()>& compute);

  /// Lookup without computing; returns true and fills `out` on a hit.
  [[nodiscard]] bool try_get(const std::string& key, SimulationResult& out);

  /// Insert (idempotent: an existing entry is kept and refreshed as
  /// most-recently-used; values for one key are identical by construction).
  void put(const std::string& key, SimulationResult result);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Drop all entries and reset the counters.
  void clear();

  /// Process-wide cache shared by the experiment runners, the rack
  /// coordinator and the oracle sweeps.
  [[nodiscard]] static const std::shared_ptr<SolveCache>& global();

 private:
  struct Entry {
    std::string key;
    SimulationResult result;
  };

  /// Requires lock held: record use of `it` (move to LRU front).
  void touch(std::list<Entry>::iterator it);
  /// Requires lock held: evict least-recently-used entries over capacity.
  void evict_over_capacity();

  mutable std::mutex mutex_;
  std::condition_variable compute_done_;
  std::size_t capacity_;
  std::list<Entry> lru_;  ///< Front = most recently used.
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::unordered_set<std::string> in_flight_;  ///< Keys being computed.
  Stats stats_;
};

/// Append a double to a cache key as its exact bit pattern (hex).  Keys must
/// distinguish 1.25e-3 from 1.2500001e-3; formatted decimals would not.
void append_key_bits(std::string& key, double value);

/// Canonical key fragment for the solve inputs below the server level:
/// benchmark profile (all model parameters, not just the name),
/// configuration, placement, and idle state.
[[nodiscard]] std::string solve_request_key(
    const workload::BenchmarkProfile& bench,
    const workload::Configuration& config, const std::vector<int>& cores,
    power::CState idle_state);

}  // namespace tpcool::core
