#pragma once
/// \file solve_cache.hpp
/// \brief Thread-safe memo of coupled-solve results, shared by the parallel
///        experiment engine, with versioned on-disk snapshots.
///
/// Experiment sweeps (Fig. 3/5/6 rows, Table I/II cells, the oracle's subset
/// enumeration, rack supply-temperature scans) and the acceptance tests
/// repeatedly request the same (server, workload, placement, operating
/// point) solves.  The cache deduplicates them across runners and — because
/// cache-miss solves run from a cold start (see
/// ServerModel::enable_solve_cache) — every stored value is a pure function
/// of its key.  That purity is what makes the parallel experiment engine
/// bit-deterministic: a racing duplicate compute produces the identical
/// bits, so it never matters which thread's result is stored or served.
/// Purity is also what makes snapshots sound: a value loaded from disk is
/// bit-identical to the value a cold re-solve of its key would produce, so
/// warm-loaded runs reproduce cold runs exactly.
///
/// Persistence: `save()` / `load()` write and read a versioned, endian-safe
/// binary snapshot (schema `kSnapshotVersion`, per-entry key digests and a
/// whole-stream digest, so truncation and corruption are detected, never
/// undefined behavior).  Setting `TPCOOL_SOLVE_CACHE_FILE=<path>` (or
/// passing `--cache-file <path>` to a bench binary) loads the snapshot into
/// the process-global cache at startup and atomically rewrites it at exit,
/// so bench reruns and the slow CTest suites start warm.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "tpcool/core/server.hpp"
#include "tpcool/thermal/step_control.hpp"
#include "tpcool/workload/benchmark.hpp"
#include "tpcool/workload/configuration.hpp"

namespace tpcool::core {

/// Thrown by SolveCache::load for unreadable, truncated, corrupt, or
/// schema-mismatched snapshot files.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Least-recently-used memo from solve keys to SimulationResults.
///
/// All operations are safe to call concurrently.  The lock is released
/// while a miss computes, so independent keys solve in parallel.
/// Concurrent get_or_compute calls for the *same* key are deduplicated:
/// the first caller computes, later callers wait and count a hit — exactly
/// the serial schedule — so the miss/hit counters are deterministic and
/// machine-independent (the regression gate in
/// scripts/check_bench_regression.py relies on this).  Waiters consume the
/// result from the in-flight computation record itself, not from the LRU
/// store, so dedup is exact under any eviction pressure — a key evicted
/// between its compute and a waiter's wake-up is still served.  A key
/// evicted and *re-requested later* is a genuine capacity miss, and which
/// entry eviction drops can depend on the parallel touch order: keep a
/// sweep's unique-key working set under capacity() (or raise it via
/// TPCOOL_SOLVE_CACHE_CAPACITY) for cross-run-exact counts.
class SolveCache {
 public:
  /// Capacity is in entries; one 1 mm-grid SimulationResult is ~100 KB, so
  /// the default bounds the cache around tens of MB.  The process-global
  /// cache honors a TPCOOL_SOLVE_CACHE_CAPACITY env override.
  static constexpr std::size_t kDefaultCapacity = 256;

  /// Snapshot schema version; load() refuses any other version.
  /// v2: SimulationResult gained the transient-segment payload
  /// (TransientSegmentInfo) for the adaptive transient fleet engine.
  static constexpr std::uint32_t kSnapshotVersion = 2;

  explicit SolveCache(std::size_t capacity = kDefaultCapacity);

  SolveCache(const SolveCache&) = delete;
  SolveCache& operator=(const SolveCache&) = delete;

  /// Cache hit/miss/eviction counters since construction or clear().
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;
    std::size_t size = 0;
    /// Threads currently blocked on an in-flight computation (a gauge, not
    /// a counter; clear() does not reset it).
    std::size_t waiting = 0;
  };

  /// Serve `key` from the cache, or run `compute`, store and return its
  /// result.  `compute` runs without the cache lock held; a concurrent
  /// call for the same key blocks until the first caller's result lands
  /// and then counts a hit.
  [[nodiscard]] SimulationResult get_or_compute(
      const std::string& key,
      const std::function<SimulationResult()>& compute);

  /// Lookup without computing; returns true and fills `out` on a hit.
  [[nodiscard]] bool try_get(const std::string& key, SimulationResult& out);

  /// Insert (idempotent: an existing entry is kept and refreshed as
  /// most-recently-used; values for one key are identical by construction).
  void put(const std::string& key, SimulationResult result);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Drop all entries and reset the counters.
  void clear();

  // ------------------------------------------------------- persistence --

  /// Write every entry (most- to least-recently-used) to `path` as a
  /// versioned binary snapshot.  The write is atomic: a temporary file is
  /// written and then renamed over `path`, so readers never observe a
  /// partial snapshot.  Throws SnapshotError when the file cannot be
  /// written.  Snapshots larger than TPCOOL_SOLVE_CACHE_WARN_MB megabytes
  /// (default 64, <= 0 disables) log a warning through util/logging so
  /// fleet-scale runs surface growth before the whole-file format hurts.
  void save(const std::string& path) const;

  /// Merge the snapshot at `path` into this cache.  Loaded entries join
  /// behind the existing ones in saved recency order (existing keys win;
  /// values for one key are identical by construction) and the usual
  /// capacity eviction applies.  Hit/miss counters are not touched.
  /// Throws SnapshotError — never UB — on unreadable, truncated, corrupt,
  /// or schema-mismatched files.
  void load(const std::string& path);

  /// Order-sensitive FNV-1a digest over all entries (keys and payload
  /// bytes, MRU first).  Equal digests after save() + load() into an empty
  /// cache certify a lossless round trip.
  [[nodiscard]] std::uint64_t content_digest() const;

  /// Load `path` into `cache` now if the file exists (a corrupt snapshot
  /// warns on stderr and starts cold — a cache must never make a run
  /// fail), and register a process-exit hook that atomically saves the
  /// cache back to `path`.  The exit save first folds the then-current
  /// on-disk snapshot back in (in-memory entries win), so warmth
  /// accumulates across processes instead of being clobbered by a run
  /// that cleared the cache.  One path per cache, last attach wins — a
  /// bench's `--cache-file` replaces the TPCOOL_SOLVE_CACHE_FILE
  /// registration.  The registry keeps `cache` alive until exit.
  static void attach_persistent_file(const std::shared_ptr<SolveCache>& cache,
                                     std::string path);

  /// Process-wide cache shared by the experiment runners, the rack
  /// coordinator and the oracle sweeps.  Reads TPCOOL_SOLVE_CACHE_CAPACITY
  /// (entries) and TPCOOL_SOLVE_CACHE_FILE (snapshot path) once, at first
  /// use.
  [[nodiscard]] static const std::shared_ptr<SolveCache>& global();

 private:
  struct Entry {
    std::string key;
    SimulationResult result;
  };

  /// Shared record of one in-flight computation.  The computing thread
  /// publishes the result (or the failure) here; waiters hold their own
  /// reference and consume from it directly, immune to LRU eviction.
  struct InFlight {
    bool ready = false;
    bool failed = false;
    SimulationResult result;
  };

  /// Requires lock held: record use of `it` (move to LRU front).
  void touch(std::list<Entry>::iterator it);
  /// Requires lock held: evict least-recently-used entries over capacity.
  void evict_over_capacity();
  /// Requires lock held: append an entry at the LRU tail (snapshot load).
  void append_lru(std::string key, SimulationResult result);

  mutable std::mutex mutex_;
  std::condition_variable compute_done_;
  std::size_t capacity_;
  std::list<Entry> lru_;  ///< Front = most recently used.
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::unordered_map<std::string, std::shared_ptr<InFlight>> in_flight_;
  Stats stats_;
};

/// Append a double to a cache key as its exact bit pattern (hex).  Keys must
/// distinguish 1.25e-3 from 1.2500001e-3; formatted decimals would not.
void append_key_bits(std::string& key, double value);

/// Canonical key fragment for the solve inputs below the server level:
/// benchmark profile (all model parameters, not just the name),
/// configuration, placement, and idle state.
[[nodiscard]] std::string solve_request_key(
    const workload::BenchmarkProfile& bench,
    const workload::Configuration& config, const std::vector<int>& cores,
    power::CState idle_state);

/// Canonical key for one transient segment: server scope + the steady solve
/// inputs of the phase + operating point + segment duration + every
/// step-control parameter (`fixed_dt_s > 0` selects the fixed-period
/// baseline integrator; the adaptive parameters are keyed either way) + a
/// 128-bit digest of the initial temperature field's exact bit patterns.
/// The digest stands in for the full field — two seeds of an FNV-1a stream
/// over the cell bits make an accidental collision negligible — so chained
/// segments key on where they start, which is what makes warm transient
/// reruns pure cache replay.
[[nodiscard]] std::string segment_request_key(
    const std::string& scope, const workload::BenchmarkProfile& bench,
    const workload::Configuration& config, const std::vector<int>& cores,
    power::CState idle_state, const thermosyphon::OperatingPoint& op,
    double duration_s, const thermal::StepControlConfig& step_control,
    double fixed_dt_s, const std::vector<double>& initial_field_c);

}  // namespace tpcool::core
