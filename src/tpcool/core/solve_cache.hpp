#pragma once
/// \file solve_cache.hpp
/// \brief Sharded, thread-safe memo of coupled-solve results, shared by the
///        parallel experiment engine, with segmented on-disk snapshots.
///
/// Experiment sweeps (Fig. 3/5/6 rows, Table I/II cells, the oracle's subset
/// enumeration, rack supply-temperature scans) and the acceptance tests
/// repeatedly request the same (server, workload, placement, operating
/// point) solves.  The cache deduplicates them across runners and — because
/// cache-miss solves run from a cold start (see
/// ServerModel::enable_solve_cache) — every stored value is a pure function
/// of its key.  That purity is what makes the parallel experiment engine
/// bit-deterministic: a racing duplicate compute produces the identical
/// bits, so it never matters which thread's result is stored or served.
/// Purity is also what makes snapshots sound: a value loaded from disk is
/// bit-identical to the value a cold re-solve of its key would produce, so
/// warm-loaded runs reproduce cold runs exactly.
///
/// Internally the store is striped into N lock-striped shards (CacheShard),
/// each owning one contiguous range of FNV-1a key-digest space, so hits on
/// independent keys no longer serialize on one mutex at fleet thread
/// counts.  N defaults to the hardware concurrency rounded up to a power of
/// two and is overridable via TPCOOL_SOLVE_CACHE_SHARDS (or `--cache-shards`
/// on every bench binary).  Stats are exact per-shard sums; eviction is
/// cost-aware per shard (cheapest-to-recompute first, LRU tiebreak).
///
/// Persistence: `save()` / `load()` write and read a segmented, versioned,
/// endian-safe snapshot — a manifest at `path` plus one segment file per
/// shard digest-range (`path.segNNNN`), schema `kSnapshotVersion`, each
/// file sealed by a stream digest (truncation, corruption, and
/// mixed-generation manifest/segment pairs are detected, never undefined
/// behavior).  Legacy monolithic v2 snapshots load transparently and are
/// rewritten segmented on the next save (the v2 -> v3 migration path).
/// Setting `TPCOOL_SOLVE_CACHE_FILE=<path>` (or passing `--cache-file
/// <path>` to a bench binary) loads the snapshot into the process-global
/// cache at startup and atomically rewrites it at exit, so bench reruns and
/// the slow CTest suites start warm.  Formats and tooling are documented in
/// docs/CACHE.md and inspectable via scripts/cache_inspect.py.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tpcool/core/cache_segment_io.hpp"
#include "tpcool/core/cache_shard.hpp"
#include "tpcool/core/server.hpp"
#include "tpcool/thermal/step_control.hpp"
#include "tpcool/workload/benchmark.hpp"
#include "tpcool/workload/configuration.hpp"

namespace tpcool::core {

/// Sharded least-recently-used (cost-weighted) memo from solve keys to
/// SimulationResults.
///
/// All operations are safe to call concurrently.  Shard locks are released
/// while a miss computes, so independent keys solve in parallel; keys on
/// different shards do not contend at all.  Concurrent get_or_compute calls
/// for the *same* key are deduplicated: the first caller computes, later
/// callers wait and count a hit — exactly the serial schedule — so the
/// miss/hit counters are deterministic and machine-independent (the
/// regression gate in scripts/check_bench_regression.py relies on this).
/// Waiters consume the result from the in-flight computation record itself,
/// not from the LRU store, so dedup is exact under any eviction pressure —
/// a key evicted between its compute and a waiter's wake-up is still
/// served.  A key evicted and *re-requested later* is a genuine capacity
/// miss, and which entry eviction drops can depend on the parallel touch
/// order, the observed costs, and the shard count: keep a sweep's
/// unique-key working set under capacity() (or raise it via
/// TPCOOL_SOLVE_CACHE_CAPACITY) for cross-run-exact counts.
class SolveCache {
 public:
  /// Capacity is in entries; one 1 mm-grid SimulationResult is ~100 KB, so
  /// the default bounds the cache around tens of MB.  The capacity is
  /// divided evenly across the shards (rounded up, so the effective total
  /// is the next multiple of the shard count); each shard evicts
  /// independently within its slice.  The process-global cache honors a
  /// TPCOOL_SOLVE_CACHE_CAPACITY env override.
  static constexpr std::size_t kDefaultCapacity = 256;

  /// Snapshot schema version; load() refuses any other version except the
  /// legacy monolithic v2, which loads via the migration path.
  /// v2: SimulationResult gained the transient-segment payload.
  /// v3: segmented format (manifest + one segment per shard digest-range)
  ///     and per-entry observed solve costs.
  static constexpr std::uint32_t kSnapshotVersion = 3;

  /// `shards` must be 0 (auto: default_shard_count()) or is rounded up to
  /// the next power of two.  Tests that pin eviction order or exact sizes
  /// at tiny capacities pass `shards = 1` to keep one deterministic stripe.
  explicit SolveCache(std::size_t capacity = kDefaultCapacity,
                      std::size_t shards = 0);

  SolveCache(const SolveCache&) = delete;
  SolveCache& operator=(const SolveCache&) = delete;

  /// Cache hit/miss/eviction counters since construction or clear():
  /// exact sums of the exact per-shard counters.
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;
    std::size_t size = 0;
    /// Threads currently blocked on an in-flight computation (a gauge, not
    /// a counter; clear() does not reset it).
    std::size_t waiting = 0;
  };

  /// Serve `key` from the cache, or run `compute`, store and return its
  /// result.  `compute` runs without any cache lock held; a concurrent
  /// call for the same key blocks until the first caller's result lands
  /// and then counts a hit.  The observed wall-clock cost of `compute` is
  /// recorded on the entry and drives cost-aware eviction.
  [[nodiscard]] SimulationResult get_or_compute(
      const std::string& key,
      const std::function<SimulationResult()>& compute);

  /// Lookup without computing; returns true and fills `out` on a hit.
  [[nodiscard]] bool try_get(const std::string& key, SimulationResult& out);

  /// Insert (idempotent: an existing entry is kept and refreshed as
  /// most-recently-used; values for one key are identical by construction).
  /// `cost_ms` is the entry's eviction weight — callers that know the
  /// solve cost should pass it; 0 marks the entry cheapest-to-recompute.
  void put(const std::string& key, SimulationResult result,
           double cost_ms = 0.0);

  [[nodiscard]] Stats stats() const;
  /// Effective total capacity: per-shard slice times shard count.
  [[nodiscard]] std::size_t capacity() const noexcept {
    return shard_capacity_ * shards_.size();
  }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  /// Drop all entries and reset the counters.
  void clear();

  /// Shard count used when a SolveCache is built with `shards = 0`:
  /// TPCOOL_SOLVE_CACHE_SHARDS (>= 1, rounded up to a power of two) when
  /// set and valid, else the hardware concurrency rounded up to a power of
  /// two.
  [[nodiscard]] static std::size_t default_shard_count();

  // ------------------------------------------------------- persistence --

  /// Write a segmented snapshot: every shard's entries (most- to
  /// least-recently-used) become one segment file `path.segNNNN`, written
  /// and renamed atomically, fanned out over the thread pool via
  /// util::parallel_map; the manifest at `path` is written last, so a
  /// snapshot whose manifest landed describes segments that already
  /// landed.  Stale segment files from a previous wider save are removed.
  /// Throws SnapshotError when a file cannot be written.  Snapshots whose
  /// files total more than TPCOOL_SOLVE_CACHE_WARN_MB megabytes (default
  /// 64, <= 0 disables) log a warning through util/logging so fleet-scale
  /// runs surface growth early.
  void save(const std::string& path) const;

  /// Merge the snapshot at `path` into this cache: either a segmented v3
  /// manifest (+ its segment files) or a legacy monolithic v2 snapshot
  /// (the migration path — costs default to 0 until remeasured).  Every
  /// file is fully validated *before* the cache is touched.  Loaded
  /// entries join behind the existing ones in saved recency order,
  /// re-striped by this cache's own shard count (existing keys win; values
  /// for one key are identical by construction) and the usual capacity
  /// eviction applies.  Hit/miss counters are not touched.  Throws
  /// SnapshotError — never UB — on unreadable, truncated, corrupt, or
  /// schema-mismatched files.
  void load(const std::string& path);

  /// Order-insensitive digest over all entries: the wrapping sum of
  /// per-entry FNV-1a digests (key bytes then payload bytes; observed
  /// costs excluded).  Independent of recency order, shard count, and
  /// merge interleaving, so equal digests certify equal contents across
  /// save/load round trips, v2 migration, and concurrent merge-saves.
  [[nodiscard]] std::uint64_t content_digest() const;

  /// Load `path` into `cache` now if the file exists (a corrupt snapshot
  /// warns on stderr and starts cold — a cache must never make a run
  /// fail), and register a process-exit hook that atomically saves the
  /// cache back to `path`.  The exit save first folds the then-current
  /// on-disk snapshot back in (in-memory entries win), so warmth
  /// accumulates across processes instead of being clobbered by a run
  /// that cleared the cache.  One path per cache, last attach wins — a
  /// bench's `--cache-file` replaces the TPCOOL_SOLVE_CACHE_FILE
  /// registration, and the displacement is logged through util/logging so
  /// a silently dropped snapshot path is visible.  The registry keeps
  /// `cache` alive until exit.
  static void attach_persistent_file(const std::shared_ptr<SolveCache>& cache,
                                     std::string path);

  /// Process-wide cache shared by the experiment runners, the rack
  /// coordinator and the oracle sweeps.  Reads TPCOOL_SOLVE_CACHE_CAPACITY
  /// (entries), TPCOOL_SOLVE_CACHE_SHARDS (stripes) and
  /// TPCOOL_SOLVE_CACHE_FILE (snapshot path) once, at first use.
  [[nodiscard]] static const std::shared_ptr<SolveCache>& global();

 private:
  [[nodiscard]] CacheShard& shard_for(const std::string& key) const;

  std::size_t shard_capacity_;
  std::vector<std::unique_ptr<CacheShard>> shards_;  ///< Power-of-two count.
};

/// Append a double to a cache key as its exact bit pattern (hex).  Keys must
/// distinguish 1.25e-3 from 1.2500001e-3; formatted decimals would not.
void append_key_bits(std::string& key, double value);

/// Canonical key fragment for the solve inputs below the server level:
/// benchmark profile (all model parameters, not just the name),
/// configuration, placement, and idle state.
[[nodiscard]] std::string solve_request_key(
    const workload::BenchmarkProfile& bench,
    const workload::Configuration& config, const std::vector<int>& cores,
    power::CState idle_state);

/// Canonical key for one transient segment: server scope + the steady solve
/// inputs of the phase + operating point + segment duration + every
/// step-control parameter (`fixed_dt_s > 0` selects the fixed-period
/// baseline integrator; the adaptive parameters are keyed either way) + a
/// 128-bit digest of the initial temperature field's exact bit patterns.
/// The digest stands in for the full field — two seeds of an FNV-1a stream
/// over the cell bits make an accidental collision negligible — so chained
/// segments key on where they start, which is what makes warm transient
/// reruns pure cache replay.
[[nodiscard]] std::string segment_request_key(
    const std::string& scope, const workload::BenchmarkProfile& bench,
    const workload::Configuration& config, const std::vector<int>& cores,
    power::CState idle_state, const thermosyphon::OperatingPoint& op,
    double duration_s, const thermal::StepControlConfig& step_control,
    double fixed_dt_s, const std::vector<double>& initial_field_c);

}  // namespace tpcool::core
