#pragma once
/// \file multi_app.hpp
/// \brief Multi-application co-scheduling on one CPU: Algorithm 1 takes a
///        set A = {A1..An} of applications; when several of them share a
///        server, the scheduler partitions the cores, selects a per-app
///        configuration meeting each QoS, and places the apps jointly so
///        the thermosyphon's channel constraints still hold.

#include <vector>

#include "tpcool/core/server.hpp"
#include "tpcool/mapping/policy.hpp"

namespace tpcool::core {

/// One co-located application and its QoS requirement.
struct AppRequest {
  const workload::BenchmarkProfile* bench = nullptr;
  workload::QoSRequirement qos{2.0};
};

/// Per-application outcome.
struct AppAssignment {
  const workload::BenchmarkProfile* bench = nullptr;
  workload::Configuration config;
  std::vector<int> cores;
  double power_w = 0.0;  ///< Cores-only power of this app (no uncore share).
};

/// Joint schedule of all co-located applications.
struct MultiAppSchedule {
  std::vector<AppAssignment> assignments;
  power::CState idle_state = power::CState::kPoll;
  double total_power_w = 0.0;  ///< Full package power (cores + uncore).
  floorplan::UnitPowers unit_powers;
};

/// Co-scheduler bound to a server and a placement policy.
///
/// Configuration selection enumerates all core-count partitions (the search
/// space is small: compositions of ≤8 cores over ≤4 apps) and, for each app
/// and core count, the cheapest (threads, frequency) meeting its QoS; the
/// partition with the lowest total package power wins. Placement walks the
/// policy's preference order, giving the hottest app the most-preferred
/// (most spread-out) positions first.
class MultiAppScheduler {
 public:
  MultiAppScheduler(ServerModel& server,
                    const mapping::MappingPolicy& policy);

  /// Throws PreconditionError when the requests cannot all fit or a QoS is
  /// unsatisfiable with any core partition.
  [[nodiscard]] MultiAppSchedule schedule(
      const std::vector<AppRequest>& requests) const;

  /// Schedule and run the coupled thermal simulation.
  [[nodiscard]] SimulationResult run(const std::vector<AppRequest>& requests,
                                     MultiAppSchedule* schedule_out = nullptr);

 private:
  ServerModel* server_;
  const mapping::MappingPolicy* policy_;
};

}  // namespace tpcool::core
