#include "tpcool/core/server.hpp"

#include <cmath>
#include <utility>

#include "tpcool/core/solve_cache.hpp"
#include "tpcool/util/error.hpp"
#include "tpcool/util/telemetry.hpp"

namespace tpcool::core {

namespace {

/// Initial evaporator heat-map guess: the total power spread uniformly over
/// the footprint cells. The fixed point replaces it within one iteration.
util::Grid2D<double> uniform_footprint_heat(const thermal::StackModel& stack,
                                            double total_w) {
  util::Grid2D<double> heat(stack.grid.nx, stack.grid.ny, 0.0);
  std::size_t cells = 0;
  for (std::size_t iy = 0; iy < stack.grid.ny; ++iy) {
    for (std::size_t ix = 0; ix < stack.grid.nx; ++ix) {
      const floorplan::Rect cell = stack.grid.cell_rect(ix, iy);
      if (stack.evaporator_region.contains(cell.center_x(), cell.center_y()))
        ++cells;
    }
  }
  TPCOOL_ENSURE(cells > 0, "evaporator footprint covers no cells");
  const double per_cell = total_w / static_cast<double>(cells);
  for (std::size_t iy = 0; iy < stack.grid.ny; ++iy) {
    for (std::size_t ix = 0; ix < stack.grid.nx; ++ix) {
      const floorplan::Rect cell = stack.grid.cell_rect(ix, iy);
      if (stack.evaporator_region.contains(cell.center_x(), cell.center_y()))
        heat(ix, iy) = per_cell;
    }
  }
  return heat;
}

}  // namespace

ServerModel::ServerModel(ServerConfig config)
    : config_(std::move(config)),
      floorplan_(floorplan::make_xeon_e5_floorplan(config_.stack.geometry)),
      power_model_(floorplan_),
      profiler_(power_model_),
      thermal_(thermal::make_package_stack(config_.stack)),
      syphon_(config_.design, thermal_.stack().grid,
              thermal_.stack().evaporator_region) {
  TPCOOL_REQUIRE(config_.coupling_iterations >= 1,
                 "need at least one coupling iteration");
  thermal_.set_bottom_boundary(config_.board_htc_w_m2k,
                               config_.board_ambient_c);
}

void ServerModel::set_operating_point(const thermosyphon::OperatingPoint& op) {
  TPCOOL_REQUIRE(op.water_flow_kg_h > 0.0, "water flow must be positive");
  config_.operating_point = op;
}

SimulationResult ServerModel::simulate(
    const workload::BenchmarkProfile& bench,
    const workload::Configuration& config_pt,
    const std::vector<int>& active_cores, power::CState idle_state) {
  TPCOOL_REQUIRE(static_cast<int>(active_cores.size()) == config_pt.cores,
                 "mapping size does not match the configuration core count");
  const auto solve = [&] {
    power::PackagePowerRequest req =
        profiler_.request_for(bench, config_pt, idle_state);
    req.active_cores = active_cores;
    SimulationResult result =
        coupled_solve(power_model_.unit_powers(req),
                      /*reuse_state=*/solve_cache_ == nullptr);
    result.power = power_model_.breakdown(req);
    return result;
  };

  SimulationResult result;
  if (solve_cache_ != nullptr) {
    std::string key = cache_scope_;
    append_key_bits(key, config_.operating_point.water_flow_kg_h);
    append_key_bits(key, config_.operating_point.water_inlet_c);
    key += solve_request_key(bench, config_pt, active_cores, idle_state);
    result = solve_cache_->get_or_compute(key, solve);
  } else {
    result = solve();
  }
  // The cache key treats the placement as a set; echo the caller's order.
  result.active_cores = active_cores;
  return result;
}

SimulationResult ServerModel::simulate_powers(
    const floorplan::UnitPowers& powers) {
  // Not memoized (arbitrary power maps make poor keys), but kept cold while
  // a cache is attached so cached solves never see its residual field.
  return coupled_solve(powers, /*reuse_state=*/solve_cache_ == nullptr);
}

void ServerModel::enable_solve_cache(std::shared_ptr<SolveCache> cache,
                                     std::string scope_key) {
  TPCOOL_REQUIRE(cache != nullptr, "enable_solve_cache needs a cache");
  solve_cache_ = std::move(cache);
  cache_scope_ = std::move(scope_key);
}

SimulationResult ServerModel::coupled_solve(
    const floorplan::UnitPowers& powers, bool reuse_state) {
  // The unit of work everything above caches and parallelizes: one "solve"
  // span per cold coupled solve (cache hits never reach here), so the span
  // count must equal the solve.executed counter and the cache-miss sum.
  util::TraceSpan span("solve");
  if (util::telemetry_enabled()) {
    static util::TelemetryCounter& executed =
        util::Telemetry::instance().counter("solve.executed");
    executed.add(1.0);
  }
  const thermal::StackModel& stack = thermal_.stack();

  const util::Grid2D<double> power_map = floorplan::rasterize_power(
      floorplan_, powers, stack.grid, stack.die_offset_x, stack.die_offset_y);
  thermal_.set_power_map(power_map);
  const double total_w = floorplan::total_power(powers);

  // Warm start: within one solve the field is reused across fixed-point
  // iterations; across solves it is seeded from the previous call's result
  // (sweeps over benchmarks/configurations change the field only mildly).
  util::Grid2D<double> evap_heat = uniform_footprint_heat(stack, total_w);
  const bool warm = reuse_state && config_.reuse_thermal_state;
  std::vector<double> t = warm ? last_temperature_ : std::vector<double>{};
  thermosyphon::ThermosyphonState syphon_state;

  for (int it = 0; it < config_.coupling_iterations; ++it) {
    syphon_state = syphon_.solve(evap_heat, config_.operating_point);
    thermal::TopBoundary top;
    top.htc_w_m2k = syphon_state.htc_map;
    top.fluid_temp_c = syphon_state.fluid_temp_map;
    thermal_.set_top_boundary(std::move(top));
    t = thermal_.solve_steady(t);

    // Feed back the actual per-cell evaporator heat (clamp the handful of
    // fringe cells that can run slightly negative at low loads).
    evap_heat = thermal_.top_heat_flow_map_w(t);
    for (double& q : evap_heat.data()) {
      if (q < 0.0) q = 0.0;
    }
  }

  if (warm) last_temperature_ = t;

  span.arg("coupling_iterations",
           static_cast<double>(config_.coupling_iterations));
  span.arg("power_w", total_w);
  span.arg("warm", warm ? 1.0 : 0.0);

  SimulationResult result;
  result.syphon = std::move(syphon_state);
  result.total_power_w = total_w;
  result.die_field_c = thermal_.layer_field(t, stack.die_layer);
  result.package_field_c = thermal_.layer_field(t, stack.ihs_layer);
  result.die = thermal::compute_metrics(result.die_field_c, stack.grid,
                                        stack.die_region);
  const floorplan::Rect package_region{0.0, 0.0, stack.grid.width(),
                                       stack.grid.height()};
  result.package = thermal::compute_metrics(result.package_field_c,
                                            stack.grid, package_region);
  result.tcase_c = thermal::case_temperature(result.package_field_c,
                                             stack.grid, package_region);
  return result;
}

thermosyphon::EvaporatorGeometry default_evaporator_geometry(
    thermosyphon::Orientation orientation) {
  const thermal::PackageStackConfig stack{};
  thermosyphon::EvaporatorGeometry evaporator;
  evaporator.footprint_width_m = stack.evaporator_width_m;
  evaporator.footprint_height_m = stack.evaporator_height_m;
  evaporator.orientation = orientation;
  return evaporator;
}

ServerModel make_proposed_server() {
  ServerConfig config;
  config.design.evaporator =
      default_evaporator_geometry(thermosyphon::Orientation::kEastWest);
  config.design.refrigerant = &materials::r236fa();
  config.design.filling_ratio = 0.55;
  config.operating_point = {.water_flow_kg_h = 7.0, .water_inlet_c = 30.0};
  return ServerModel(std::move(config));
}

ServerModel make_soa_server() {
  ServerConfig config;
  config.design.evaporator =
      default_evaporator_geometry(thermosyphon::Orientation::kNorthSouth);
  config.design.refrigerant = &materials::r236fa();
  config.design.filling_ratio = 0.50;
  config.operating_point = {.water_flow_kg_h = 7.0, .water_inlet_c = 30.0};
  return ServerModel(std::move(config));
}

}  // namespace tpcool::core
