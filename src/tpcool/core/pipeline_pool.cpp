#include "tpcool/core/pipeline_pool.hpp"

#include <utility>

#include "tpcool/core/parallel.hpp"
#include "tpcool/util/error.hpp"
#include "tpcool/util/telemetry.hpp"

namespace tpcool::core {

namespace {

util::TelemetryCounter& pipeline_constructions_counter() {
  static util::TelemetryCounter& cell =
      util::Telemetry::instance().counter("pipeline.constructions");
  return cell;
}
util::TelemetryCounter& pipeline_reuses_counter() {
  static util::TelemetryCounter& cell =
      util::Telemetry::instance().counter("pipeline.reuses");
  return cell;
}
util::TelemetryGauge& pipeline_idle_gauge() {
  static util::TelemetryGauge& cell =
      util::Telemetry::instance().gauge("pipeline.idle");
  return cell;
}

/// Pool key: approach + exact cell-size bit pattern (the same pair that
/// determines the ServerConfig `server_config_for` builds, and hence the
/// solve scope).
std::string pool_key(Approach approach, double cell_size_m) {
  std::string key = std::to_string(static_cast<int>(approach));
  key.push_back(';');
  append_key_bits(key, cell_size_m);
  return key;
}

}  // namespace

PipelinePool::Lease& PipelinePool::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    release();
    pool_ = std::exchange(other.pool_, nullptr);
    key_ = std::move(other.key_);
    pipeline_ = std::move(other.pipeline_);
  }
  return *this;
}

void PipelinePool::Lease::release() {
  if (pool_ != nullptr && pipeline_ != nullptr) {
    std::lock_guard lock(pool_->mutex_);
    pool_->idle_[key_].push_back(std::move(pipeline_));
    pool_->update_idle_gauge();
  }
  pool_ = nullptr;
  pipeline_.reset();
}

/// Requires mutex_ held.  Cheap relative to park/checkout (idle_ has one
/// entry per distinct (approach, cell size) pair).
void PipelinePool::update_idle_gauge() const {
  if (!util::telemetry_enabled()) return;
  std::size_t idle = 0;
  for (const auto& [key, parked] : idle_) idle += parked.size();
  pipeline_idle_gauge().set(static_cast<double>(idle));
}

PipelinePool::Lease PipelinePool::checkout(
    Approach approach, double cell_size_m,
    const std::shared_ptr<SolveCache>& cache) {
  TPCOOL_REQUIRE(cache != nullptr,
                 "PipelinePool::checkout needs a solve cache: only "
                 "cold-start-pure cached solves make pipeline reuse "
                 "bit-identical (use PipelinePool::unpooled otherwise)");
  std::string key = pool_key(approach, cell_size_m);
  std::unique_ptr<ApproachPipeline> pipeline;
  {
    std::lock_guard lock(mutex_);
    auto& parked = idle_[key];
    if (!parked.empty()) {
      pipeline = std::move(parked.back());
      parked.pop_back();
      ++stats_.reuses;
      pipeline_reuses_counter().add(1.0);
    } else {
      ++stats_.constructions;
      pipeline_constructions_counter().add(1.0);
    }
    update_idle_gauge();
  }
  // Construct outside the lock: ~0.2 ms each, and concurrent chunks must
  // not serialize on it.
  if (pipeline == nullptr) {
    util::TraceSpan span("pipeline.construct");
    pipeline = std::make_unique<ApproachPipeline>(approach, cell_size_m);
  }
  // (Re-)attach every checkout: the caller's cache may differ from the
  // previous user's, and the scope is a pure function of the pool key.
  pipeline->server().enable_solve_cache(cache,
                                        solve_scope(approach, cell_size_m));
  // Reset the one piece of server state a previous user may have mutated
  // and a cached solve still observes: the operating point (it is part of
  // every solve's cache key).  Rack scans park pipelines with their last
  // candidate's water temperature; without this reset, a later sweep that
  // simulates at "the constructed default" would silently inherit it —
  // and which chunk inherits what would depend on checkout timing.
  pipeline->server().set_operating_point(
      server_config_for(approach, cell_size_m).operating_point);
  return Lease(this, std::move(key), std::move(pipeline));
}

PipelinePool::Lease PipelinePool::unpooled(Approach approach,
                                           double cell_size_m) {
  return Lease(nullptr, std::string(),
               std::make_unique<ApproachPipeline>(approach, cell_size_m));
}

PipelinePool::Stats PipelinePool::stats() const {
  std::lock_guard lock(mutex_);
  Stats stats = stats_;
  for (const auto& [key, parked] : idle_) stats.idle += parked.size();
  return stats;
}

void PipelinePool::clear() {
  std::lock_guard lock(mutex_);
  idle_.clear();
  update_idle_gauge();
}

PipelinePool& PipelinePool::global() {
  static PipelinePool pool;
  return pool;
}

}  // namespace tpcool::core
