#pragma once
/// \file pipeline_pool.hpp
/// \brief Warm-pipeline checkout for the parallel experiment engine: every
///        `parallel_map` chunk used to construct a fresh `ApproachPipeline`
///        (~0.2 ms each), which dominates very wide sweeps whose solves are
///        all cache hits.  The pool keeps finished pipelines and hands them
///        back out, so a sweep pays construction once per concurrently
///        active chunk instead of once per chunk.
///
/// Soundness: a reused pipeline carries state from its previous user (the
/// warm-start temperature field, the operating point).  Checkout therefore
/// REQUIRES a SolveCache — while a cache is attached, cache-miss solves run
/// from a cold start (see ServerModel::enable_solve_cache), so every solve
/// a pooled pipeline produces is a pure function of its key and reuse is
/// unobservable in the results: pooled and unpooled runs are bit-identical
/// (asserted in tests/parallel_engine_test.cpp).

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "tpcool/core/pipelines.hpp"
#include "tpcool/core/solve_cache.hpp"

namespace tpcool::core {

/// Thread-safe pool of `ApproachPipeline`s keyed by (approach, cell size).
class PipelinePool {
 public:
  /// Lifetime counters (never reset by clear(): the construction savings a
  /// bench reports span cache clears).
  struct Stats {
    std::size_t constructions = 0;  ///< Pipelines built fresh on checkout.
    std::size_t reuses = 0;         ///< Checkouts served from the pool.
    std::size_t idle = 0;           ///< Pipelines parked in the pool now.
  };

  /// RAII checkout: holds a pipeline, returns it to the pool (if any) on
  /// destruction.  Movable so it can be a `parallel_map` chunk context.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept = default;
    Lease& operator=(Lease&& other) noexcept;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    [[nodiscard]] ApproachPipeline& operator*() const { return *pipeline_; }
    [[nodiscard]] ApproachPipeline* operator->() const {
      return pipeline_.get();
    }

   private:
    friend class PipelinePool;
    Lease(PipelinePool* pool, std::string key,
          std::unique_ptr<ApproachPipeline> pipeline)
        : pool_(pool), key_(std::move(key)), pipeline_(std::move(pipeline)) {}

    void release();

    PipelinePool* pool_ = nullptr;  ///< Null: plain ownership (unpooled).
    std::string key_;
    std::unique_ptr<ApproachPipeline> pipeline_;
  };

  PipelinePool() = default;
  PipelinePool(const PipelinePool&) = delete;
  PipelinePool& operator=(const PipelinePool&) = delete;

  /// Check out a pipeline for (approach, cell_size_m) — reused if one is
  /// parked, constructed otherwise — with `cache` attached under the
  /// canonical `solve_scope` key.  `cache` must not be null: only cached
  /// (cold-start-pure) solves make reuse bit-identical to construction.
  [[nodiscard]] Lease checkout(Approach approach, double cell_size_m,
                               const std::shared_ptr<SolveCache>& cache);

  /// A fresh pipeline in a Lease that never returns to any pool; the
  /// uncached escape hatch for callers that want construction-per-chunk
  /// semantics (no cache, warm-start chaining intact).
  [[nodiscard]] static Lease unpooled(Approach approach, double cell_size_m);

  [[nodiscard]] Stats stats() const;

  /// Drop the idle pipelines (counters are kept).  Frees the ~MBs a wide
  /// sweep parked; the next checkout constructs again.
  void clear();

  /// Process-wide pool shared by the rack coordinator, the experiment
  /// runners, and the fleet layer.
  [[nodiscard]] static PipelinePool& global();

 private:
  /// Mirror the parked-pipeline total into the `pipeline.idle` telemetry
  /// gauge (requires mutex_ held; no-op while telemetry is disabled).
  void update_idle_gauge() const;

  mutable std::mutex mutex_;
  Stats stats_;
  std::unordered_map<std::string,
                     std::vector<std::unique_ptr<ApproachPipeline>>>
      idle_;
};

}  // namespace tpcool::core
