#pragma once
/// \file parallel.hpp
/// \brief Deterministic parallel fan-out for independent experiment solves.
///
/// The solver layer (util::ThreadPool + StencilOperator) parallelizes
/// *inside* one linear solve; this layer parallelizes *across* the many
/// independent ServerModel solves an experiment issues (Table II's
/// approach × QoS × benchmark grid, Fig. 6 scenarios, the oracle's subset
/// enumeration, rack supply-temperature scans).  The two compose safely:
/// while an outer `parallel_map` occupies the global pool, inner solver
/// loops detect the busy pool and run their fixed-chunk serial path, which
/// is bit-identical by construction.
///
/// Determinism discipline (same rules as the solver reductions):
///  - Tasks are split into chunks on fixed boundaries derived only from
///    (count, grain) — never from the thread count.
///  - Each chunk builds its own context (ServerModel/ApproachPipeline), so
///    no mutable state is shared across chunks; within a chunk, tasks run
///    in index order.
///  - Results land in a pre-sized vector by task index: result order is
///    the serial order regardless of which thread ran what.
///  - Shared SolveCache values are pure functions of their key (cold-start
///    solves, see ServerModel::enable_solve_cache), so cache races are
///    unobservable.
/// Together: any thread count, including TPCOOL_NUM_THREADS=1, produces
/// bit-identical results.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "tpcool/core/pipelines.hpp"
#include "tpcool/core/solve_cache.hpp"
#include "tpcool/util/parallel_map.hpp"

namespace tpcool::core {

/// The generic deterministic fan-out engine (see util/parallel_map.hpp for
/// the chunking and determinism contract).  Re-exported here because the
/// experiment runners and their tests spell it `core::parallel_map`.
using util::parallel_map;

/// Cache scope prefix for a pipeline-built server (see
/// ServerModel::enable_solve_cache): approach and grid pitch fully
/// determine the ServerConfig that `server_config_for` builds.
[[nodiscard]] std::string solve_scope(Approach approach, double cell_size_m);

/// One independent coupled-solve request against a pipeline server.
struct SolveRequest {
  const workload::BenchmarkProfile* bench = nullptr;
  workload::Configuration config;
  std::vector<int> cores;
  power::CState idle_state = power::CState::kPoll;
};

/// Run every request against an `Approach` server built at `cell_size_m`,
/// fanned out over the global pool with `grain` requests per context and
/// memoized in `cache` (pass the global cache unless isolating a sweep).
/// Results are returned in request order and are bit-identical for any
/// thread count.
[[nodiscard]] std::vector<SimulationResult> run_parallel_solves(
    Approach approach, double cell_size_m,
    const std::vector<SolveRequest>& requests, std::size_t grain,
    const std::shared_ptr<SolveCache>& cache);

/// One scheduler-level request: run Algorithm 1 (or the SoA selection) and
/// the coupled simulation for a benchmark under a QoS level.
struct ScheduleRequest {
  const workload::BenchmarkProfile* bench = nullptr;
  workload::QoSRequirement qos;
};

/// Parallel counterpart of `Scheduler::run` over a request list; same
/// determinism contract as `run_parallel_solves`.
[[nodiscard]] std::vector<SimulationResult> run_parallel_schedules(
    Approach approach, double cell_size_m,
    const std::vector<ScheduleRequest>& requests, std::size_t grain,
    const std::shared_ptr<SolveCache>& cache);

/// Batch placement evaluator for mapping::ExhaustivePolicy: evaluates all
/// subsets (die θmax) through parallel cached solves on an `Approach`
/// server.  `grain` subsets share one context.
[[nodiscard]] std::vector<double> evaluate_placements_parallel(
    Approach approach, double cell_size_m,
    const workload::BenchmarkProfile& bench,
    const workload::Configuration& config, power::CState idle_state,
    const std::vector<std::vector<int>>& subsets, std::size_t grain,
    const std::shared_ptr<SolveCache>& cache);

}  // namespace tpcool::core
