#pragma once
/// \file parallel.hpp
/// \brief Deterministic parallel fan-out for independent experiment solves.
///
/// The solver layer (util::ThreadPool + StencilOperator) parallelizes
/// *inside* one linear solve; this layer parallelizes *across* the many
/// independent ServerModel solves an experiment issues (Table II's
/// approach × QoS × benchmark grid, Fig. 6 scenarios, the oracle's subset
/// enumeration, rack supply-temperature scans).  The two compose safely:
/// while an outer `parallel_map` occupies the global pool, inner solver
/// loops detect the busy pool and run their fixed-chunk serial path, which
/// is bit-identical by construction.
///
/// Determinism discipline (same rules as the solver reductions):
///  - Tasks are split into chunks on fixed boundaries derived only from
///    (count, grain) — never from the thread count.
///  - Each chunk builds its own context (ServerModel/ApproachPipeline), so
///    no mutable state is shared across chunks; within a chunk, tasks run
///    in index order.
///  - Results land in a pre-sized vector by task index: result order is
///    the serial order regardless of which thread ran what.
///  - Shared SolveCache values are pure functions of their key (cold-start
///    solves, see ServerModel::enable_solve_cache), so cache races are
///    unobservable.
/// Together: any thread count, including TPCOOL_NUM_THREADS=1, produces
/// bit-identical results.

#include <cstddef>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "tpcool/core/pipelines.hpp"
#include "tpcool/core/solve_cache.hpp"
#include "tpcool/util/error.hpp"
#include "tpcool/util/thread_pool.hpp"

namespace tpcool::core {

/// Deterministic parallel map over `count` independent tasks.
///
/// Splits [0, count) into chunks of `grain` tasks, runs
/// `make_context(chunk_index)` once per chunk and
/// `task(context, task_index)` for every task of the chunk in index order,
/// on the global ThreadPool.  The first exception (in chunk order) is
/// rethrown after all chunks finish.
///
/// `grain` trades context-construction overhead against parallel width and
/// must be a fixed constant at each call site — deriving it from the thread
/// count would change warm-state chaining across machines.
template <typename Result, typename MakeContext, typename Task>
std::vector<Result> parallel_map(std::size_t count, std::size_t grain,
                                 MakeContext&& make_context, Task&& task) {
  TPCOOL_REQUIRE(grain >= 1, "parallel_map needs grain >= 1");
  std::vector<Result> results(count);
  if (count == 0) return results;
  const std::size_t chunk_count = (count + grain - 1) / grain;
  std::vector<std::exception_ptr> errors(chunk_count);
  util::ThreadPool::global().parallel_for(
      0, count, grain, [&](std::size_t lo, std::size_t hi) {
        const std::size_t chunk = lo / grain;
        try {
          auto context = make_context(chunk);
          for (std::size_t i = lo; i < hi; ++i) {
            results[i] = task(context, i);
          }
        } catch (...) {
          // Worker bodies must not throw (the pool would terminate); park
          // the error and rethrow deterministically on the caller.
          errors[chunk] = std::current_exception();
        }
      });
  for (std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  return results;
}

/// Cache scope prefix for a pipeline-built server (see
/// ServerModel::enable_solve_cache): approach and grid pitch fully
/// determine the ServerConfig that `server_config_for` builds.
[[nodiscard]] std::string solve_scope(Approach approach, double cell_size_m);

/// One independent coupled-solve request against a pipeline server.
struct SolveRequest {
  const workload::BenchmarkProfile* bench = nullptr;
  workload::Configuration config;
  std::vector<int> cores;
  power::CState idle_state = power::CState::kPoll;
};

/// Run every request against an `Approach` server built at `cell_size_m`,
/// fanned out over the global pool with `grain` requests per context and
/// memoized in `cache` (pass the global cache unless isolating a sweep).
/// Results are returned in request order and are bit-identical for any
/// thread count.
[[nodiscard]] std::vector<SimulationResult> run_parallel_solves(
    Approach approach, double cell_size_m,
    const std::vector<SolveRequest>& requests, std::size_t grain,
    const std::shared_ptr<SolveCache>& cache);

/// One scheduler-level request: run Algorithm 1 (or the SoA selection) and
/// the coupled simulation for a benchmark under a QoS level.
struct ScheduleRequest {
  const workload::BenchmarkProfile* bench = nullptr;
  workload::QoSRequirement qos;
};

/// Parallel counterpart of `Scheduler::run` over a request list; same
/// determinism contract as `run_parallel_solves`.
[[nodiscard]] std::vector<SimulationResult> run_parallel_schedules(
    Approach approach, double cell_size_m,
    const std::vector<ScheduleRequest>& requests, std::size_t grain,
    const std::shared_ptr<SolveCache>& cache);

/// Batch placement evaluator for mapping::ExhaustivePolicy: evaluates all
/// subsets (die θmax) through parallel cached solves on an `Approach`
/// server.  `grain` subsets share one context.
[[nodiscard]] std::vector<double> evaluate_placements_parallel(
    Approach approach, double cell_size_m,
    const workload::BenchmarkProfile& bench,
    const workload::Configuration& config, power::CState idle_state,
    const std::vector<std::vector<int>>& subsets, std::size_t grain,
    const std::shared_ptr<SolveCache>& cache);

}  // namespace tpcool::core
