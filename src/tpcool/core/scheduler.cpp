#include "tpcool/core/scheduler.hpp"

#include "tpcool/util/error.hpp"

namespace tpcool::core {

Scheduler::Scheduler(ServerModel& server, const mapping::MappingPolicy& policy,
                     SelectionStrategy strategy, bool manage_cstates)
    : server_(&server),
      policy_(&policy),
      strategy_(strategy),
      manage_cstates_(manage_cstates) {}

ScheduleDecision Scheduler::schedule(const workload::BenchmarkProfile& bench,
                                     const workload::QoSRequirement& qos) const {
  ScheduleDecision decision;
  decision.idle_state =
      manage_cstates_
          ? power::deepest_cstate_within(bench.tolerable_latency_us)
          : power::CState::kPoll;

  const auto profile =
      server_->profiler().profile(bench, decision.idle_state);
  decision.point = strategy_ == SelectionStrategy::kAlgorithm1
                       ? mapping::algorithm1_select(profile, qos)
                       : mapping::packcap_select(profile, qos);

  mapping::MappingContext context;
  context.floorplan = &server_->floorplan();
  context.orientation = server_->design().evaporator.orientation;
  context.idle_state = decision.idle_state;
  context.cores_needed = decision.point.config.cores;
  decision.cores = policy_->select_cores(context);
  TPCOOL_ENSURE(static_cast<int>(decision.cores.size()) ==
                    decision.point.config.cores,
                "policy returned the wrong number of cores");
  return decision;
}

SimulationResult Scheduler::run(const workload::BenchmarkProfile& bench,
                                const workload::QoSRequirement& qos,
                                ScheduleDecision* decision_out) {
  const ScheduleDecision decision = schedule(bench, qos);
  if (decision_out != nullptr) *decision_out = decision;
  return server_->simulate(bench, decision.point.config, decision.cores,
                           decision.idle_state);
}

}  // namespace tpcool::core
