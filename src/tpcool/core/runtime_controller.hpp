#pragma once
/// \file runtime_controller.hpp
/// \brief Runtime thermal-emergency controller (§VII, last paragraph):
///        "during runtime, we increase water flow rate only if a thermal
///        emergency (TCASE ≥ TCASE_MAX) occurs and lowering the frequency
///        violates the QoS requirement."
///
/// The controller drives the transient thermal model in control periods:
/// each period it re-solves the thermosyphon boundary, advances one backward
/// Euler step, and reacts to the measured case temperature.

#include <string>
#include <vector>

#include "tpcool/core/scheduler.hpp"

namespace tpcool::core {

/// What the controller did in one period.
enum class ControlAction {
  kNone,
  kLowerFrequency,  ///< DVFS down one level (QoS still met).
  kRaiseFlow,       ///< Open the coolant valve one step.
  kThrottle,        ///< Emergency: forced lowest frequency (QoS violated).
};

[[nodiscard]] const char* to_string(ControlAction action);

/// One control-period record.
struct ControlRecord {
  double time_s = 0.0;
  double tcase_c = 0.0;
  double die_max_c = 0.0;
  double freq_ghz = 0.0;
  double flow_kg_h = 0.0;
  ControlAction action = ControlAction::kNone;
};

/// Trace of a controlled run.
struct ControlTrace {
  std::vector<ControlRecord> records;
  bool emergency_seen = false;
  bool qos_violated = false;  ///< A throttle action was required.
};

/// Quasi-static transient controller on top of a ServerModel.
class RuntimeController {
 public:
  struct Config {
    double tcase_limit_c = 85.0;
    std::vector<double> flow_steps_kg_h{7.0, 10.0, 14.0, 20.0};
    double control_period_s = 0.5;
    int max_steps = 40;
    double start_temperature_c = 40.0;  ///< Initial uniform package state.
  };

  RuntimeController(ServerModel& server, Config config);

  /// Run a workload phase under the controller. The decision provides the
  /// starting configuration and placement; `qos` bounds DVFS reactions.
  [[nodiscard]] ControlTrace run(const workload::BenchmarkProfile& bench,
                                 const ScheduleDecision& decision,
                                 const workload::QoSRequirement& qos);

 private:
  ServerModel* server_;
  Config config_;
};

}  // namespace tpcool::core
