#pragma once
/// \file pipelines.hpp
/// \brief The three evaluated approaches (Table II) bundled as ready-made
///        pipelines: server design + configuration selection + mapping
///        policy + C-state management.

#include <memory>
#include <string>

#include "tpcool/core/scheduler.hpp"

namespace tpcool::core {

/// The approaches compared in §VIII.
enum class Approach {
  kProposed,       ///< This paper: E-W design + Algorithm 1 + proposed map.
  kSoaBalancing,   ///< [8] design + [27] selection + [9] balancing map.
  kSoaInletFirst,  ///< [8] design + [27] selection + [7] inlet-first map.
};

[[nodiscard]] const char* to_string(Approach approach);

/// A fully wired approach: owns the server, the policy, and the scheduler.
class ApproachPipeline {
 public:
  explicit ApproachPipeline(Approach approach);

  /// Same, but with an overridden thermal-grid cell size (coarser grids for
  /// fast tests, finer for figure-quality maps).
  ApproachPipeline(Approach approach, double cell_size_m);

  [[nodiscard]] Approach approach() const noexcept { return approach_; }
  [[nodiscard]] std::string name() const { return to_string(approach_); }
  [[nodiscard]] ServerModel& server() noexcept { return *server_; }
  [[nodiscard]] const ServerModel& server() const noexcept { return *server_; }
  [[nodiscard]] Scheduler& scheduler() noexcept { return *scheduler_; }

 private:
  Approach approach_;
  std::unique_ptr<ServerModel> server_;
  std::unique_ptr<mapping::MappingPolicy> policy_;
  std::unique_ptr<Scheduler> scheduler_;
};

/// Server config of an approach (design + operating point), with an
/// optional cell-size override.
[[nodiscard]] ServerConfig server_config_for(Approach approach,
                                             double cell_size_m);

}  // namespace tpcool::core
