#include "tpcool/core/experiment.hpp"

#include <cmath>

#include "tpcool/cooling/chiller.hpp"
#include "tpcool/core/parallel.hpp"
#include "tpcool/core/solve_cache.hpp"
#include "tpcool/mapping/clustered.hpp"
#include "tpcool/mapping/proposed.hpp"
#include "tpcool/util/error.hpp"
#include "tpcool/util/rootfind.hpp"
#include "tpcool/workload/performance_model.hpp"

namespace tpcool::core {

namespace {

/// Tasks per parallel_map chunk.  Pipeline construction is ~0.2 ms against
/// ~60 ms per 1 mm coupled solve, so one context per task maximizes the
/// parallel width at negligible overhead.  Must stay a fixed constant:
/// chunk boundaries are part of the deterministic-result contract.
constexpr std::size_t kExperimentGrain = 1;

}  // namespace

std::vector<workload::BenchmarkProfile> selected_benchmarks(
    const ExperimentOptions& options) {
  const auto& all = workload::parsec_benchmarks();
  if (options.max_benchmarks <= 0 ||
      options.max_benchmarks >= static_cast<int>(all.size())) {
    return all;
  }
  return {all.begin(), all.begin() + options.max_benchmarks};
}

std::vector<Fig3Row> run_fig3(const ExperimentOptions& options) {
  const std::vector<workload::BenchmarkProfile> benches =
      selected_benchmarks(options);
  const std::vector<workload::Configuration> configs =
      workload::fig3_configurations();
  // The (2,4,fmax) column carries the paper's QoS annotation.
  const workload::Configuration annotated{2, 2, 3.2};

  // One benchmark per task; the performance model needs no context, so the
  // chunk context is just the chunk index.
  return parallel_map<Fig3Row>(
      benches.size(), kExperimentGrain,
      [](std::size_t chunk) { return chunk; },
      [&](std::size_t&, std::size_t i) {
        Fig3Row row;
        row.benchmark = benches[i].name;
        row.normalized_time.resize(configs.size());
        for (std::size_t c = 0; c < configs.size(); ++c) {
          row.normalized_time[c] =
              workload::normalized_exec_time(benches[i], configs[c]);
          if (configs[c] == annotated) {
            row.meets_2x_at_2_4 = row.normalized_time[c] <= 2.0;
          }
        }
        return row;
      });
}

const std::vector<double>& table1_frequencies() {
  static const std::vector<double> freqs{2.6, 2.9, 3.2};
  return freqs;
}

std::vector<Table1Row> run_table1() {
  const std::vector<power::CState>& states = power::all_cstates();
  const std::vector<double>& freqs = table1_frequencies();
  return parallel_map<Table1Row>(
      states.size(), kExperimentGrain,
      [](std::size_t chunk) { return chunk; },
      [&](std::size_t&, std::size_t i) {
        Table1Row row;
        row.state = states[i];
        row.latency_us = power::cstate_latency_us(states[i]);
        row.power_all8_w.resize(freqs.size());
        for (std::size_t f = 0; f < freqs.size(); ++f) {
          row.power_all8_w[f] = power::cstate_power_all8_w(states[i], freqs[f]);
        }
        return row;
      });
}

Fig2Result run_fig2_motivation(const ExperimentOptions& options) {
  // Non-optimized design (the uniform-flux N-S design of [8]) with a naive
  // clustered placement of a heavy workload on six cores — the situation
  // the paper's motivational example illustrates.
  ApproachPipeline pipeline(Approach::kSoaBalancing, options.cell_size_m);
  ServerModel& server = pipeline.server();

  const workload::BenchmarkProfile& bench = workload::find_benchmark("x264");
  const workload::Configuration config{6, 2, 3.2};

  mapping::MappingContext context;
  context.floorplan = &server.floorplan();
  context.orientation = server.design().evaporator.orientation;
  context.idle_state = power::CState::kPoll;
  context.cores_needed = config.cores;
  const std::vector<int> cores =
      mapping::ClusteredPolicy().select_cores(context);

  const SimulationResult sim =
      server.simulate(bench, config, cores, power::CState::kPoll);
  Fig2Result result;
  result.die = sim.die;
  result.package = sim.package;
  result.die_field_c = sim.die_field_c;
  result.package_field_c = sim.package_field_c;
  return result;
}

std::vector<Fig5Row> run_fig5_orientation(const ExperimentOptions& options) {
  const std::vector<thermosyphon::Orientation> orientations{
      thermosyphon::Orientation::kEastWest,
      thermosyphon::Orientation::kNorthSouth};
  // One design per chunk (grain 1): the two orientation solves run
  // concurrently, each on its own server.
  return parallel_map<Fig5Row>(
      orientations.size(), kExperimentGrain,
      [&](std::size_t chunk) {
        ServerConfig config =
            server_config_for(Approach::kProposed, options.cell_size_m);
        config.design.evaporator =
            default_evaporator_geometry(orientations[chunk]);
        auto server = std::make_unique<ServerModel>(std::move(config));
        std::string scope =
            "fig5:" + std::to_string(static_cast<int>(orientations[chunk]));
        scope.push_back(';');
        append_key_bits(scope, options.cell_size_m);
        server->enable_solve_cache(SolveCache::global(), std::move(scope));
        return server;
      },
      [&](std::unique_ptr<ServerModel>& server, std::size_t i) {
        // "All cores are equally loaded" (§VI-A): worst-case benchmark,
        // full configuration.
        const workload::BenchmarkProfile& bench =
            workload::worst_case_benchmark();
        const workload::Configuration full{8, 2, 3.2};
        const std::vector<int> cores{1, 2, 3, 4, 5, 6, 7, 8};
        const SimulationResult sim =
            server->simulate(bench, full, cores, power::CState::kPoll);
        return Fig5Row{orientations[i], sim.die, sim.package};
      });
}

std::vector<int> fig6_scenario_cores(int scenario) {
  // Core ids on the Fig. 2c floorplan: west column (col 0) holds cores
  // 5,6,7,8 north→south; the next column (col 1) holds 1,2,3,4.
  switch (scenario) {
    case 1:  // one active core per channel row, alternating columns
      return {5, 4, 7, 2};
    case 2:  // conventional balancing: the four corners
      return {5, 4, 1, 8};
    case 3:  // clustered block in the north-west
      return {5, 1, 6, 2};
    default:
      TPCOOL_REQUIRE(false, "Fig. 6 has scenarios 1..3");
      return {};
  }
}

std::vector<Fig6Row> run_fig6_scenarios(const ExperimentOptions& options) {
  const workload::BenchmarkProfile& bench = workload::find_benchmark("x264");
  const workload::Configuration config{4, 2, 3.2};

  // The 6 (idle state, scenario) cells are independent: fan them out.
  std::vector<Fig6Row> rows;
  std::vector<SolveRequest> requests;
  for (const power::CState idle : {power::CState::kPoll, power::CState::kC1}) {
    for (int scenario = 1; scenario <= 3; ++scenario) {
      Fig6Row row;
      row.scenario = scenario;
      row.idle_state = idle;
      row.cores = fig6_scenario_cores(scenario);
      requests.push_back({&bench, config, row.cores, idle});
      rows.push_back(std::move(row));
    }
  }
  const std::vector<SimulationResult> sims =
      run_parallel_solves(Approach::kProposed, options.cell_size_m, requests,
                          kExperimentGrain, SolveCache::global());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i].die = sims[i].die;
  return rows;
}

std::vector<Table2Row> run_table2(const ExperimentOptions& options) {
  const std::vector<workload::BenchmarkProfile> benches =
      selected_benchmarks(options);
  std::vector<Table2Row> rows;

  for (const Approach approach :
       {Approach::kProposed, Approach::kSoaBalancing,
        Approach::kSoaInletFirst}) {
    // All of this approach's (QoS, benchmark) cells are independent
    // scheduler runs: solve the whole grid in parallel.  Cell (q, b) lives
    // at request index q * benches.size() + b, and the averaging below
    // addresses cells by that index and reduces in benchmark-index order —
    // the result bits depend only on the grid layout, never on which
    // thread or schedule produced a cell.
    std::vector<ScheduleRequest> requests;
    for (const workload::QoSRequirement& qos : workload::qos_levels()) {
      for (const workload::BenchmarkProfile& bench : benches) {
        requests.push_back({&bench, qos});
      }
    }
    const std::vector<SimulationResult> sims =
        run_parallel_schedules(approach, options.cell_size_m, requests,
                               kExperimentGrain, SolveCache::global());
    // All approaches share the design operating point (§VI-C), so the water
    // ΔT baseline is the configured inlet temperature.
    const double water_inlet_c =
        server_config_for(approach, options.cell_size_m)
            .operating_point.water_inlet_c;

    const std::vector<workload::QoSRequirement>& qos_levels =
        workload::qos_levels();
    for (std::size_t q = 0; q < qos_levels.size(); ++q) {
      Table2Row row;
      row.approach = approach;
      row.qos_factor = qos_levels[q].factor;
      for (std::size_t b = 0; b < benches.size(); ++b) {
        const SimulationResult& sim = sims[q * benches.size() + b];
        row.die_max_c += sim.die.max_c;
        row.die_grad_c_per_mm += sim.die.grad_max_c_per_mm;
        row.package_max_c += sim.package.max_c;
        row.package_grad_c_per_mm += sim.package.grad_max_c_per_mm;
        row.avg_power_w += sim.total_power_w;
        row.avg_water_dt_k += sim.syphon.water_outlet_c - water_inlet_c;
      }
      const auto n = static_cast<double>(benches.size());
      row.die_max_c /= n;
      row.die_grad_c_per_mm /= n;
      row.package_max_c /= n;
      row.package_grad_c_per_mm /= n;
      row.avg_power_w /= n;
      row.avg_water_dt_k /= n;
      rows.push_back(row);
    }
  }
  return rows;
}

Fig7Result run_fig7_maps(const ExperimentOptions& options,
                         const std::string& benchmark) {
  const workload::BenchmarkProfile& bench =
      workload::find_benchmark(benchmark);
  const workload::QoSRequirement qos{2.0};

  // Two independent approach runs; each hits the shared cache when Table II
  // already solved the same (benchmark, QoS) cell in this process.
  const std::vector<Approach> approaches{Approach::kProposed,
                                         Approach::kSoaBalancing};
  const std::vector<SimulationResult> sims = parallel_map<SimulationResult>(
      approaches.size(), kExperimentGrain,
      [&](std::size_t chunk) {
        auto pipeline = std::make_unique<ApproachPipeline>(
            approaches[chunk], options.cell_size_m);
        pipeline->server().enable_solve_cache(
            SolveCache::global(),
            solve_scope(approaches[chunk], options.cell_size_m));
        return pipeline;
      },
      [&](std::unique_ptr<ApproachPipeline>& pipeline, std::size_t) {
        return pipeline->scheduler().run(bench, qos);
      });
  const SimulationResult& sim_p = sims[0];
  const SimulationResult& sim_s = sims[1];

  Fig7Result result;
  result.proposed_map_c = sim_p.die_field_c;
  result.soa_map_c = sim_s.die_field_c;
  result.proposed_max_c = sim_p.die.max_c;
  result.soa_max_c = sim_s.die.max_c;
  const thermal::StackModel stack = thermal::make_package_stack(
      server_config_for(Approach::kProposed, options.cell_size_m).stack);
  result.grid = stack.grid;
  result.die_region = stack.die_region;
  return result;
}

CoolingPowerResult run_cooling_power(const ExperimentOptions& options) {
  const workload::BenchmarkProfile& bench = workload::find_benchmark("x264");
  const workload::QoSRequirement qos{2.0};

  ApproachPipeline proposed(Approach::kProposed, options.cell_size_m);
  ApproachPipeline soa(Approach::kSoaBalancing, options.cell_size_m);
  // The shared cache ties this experiment into Table II / Fig. 7 runs in
  // the same process and deduplicates the bisection's repeated endpoints.
  proposed.server().enable_solve_cache(
      SolveCache::global(),
      solve_scope(Approach::kProposed, options.cell_size_m));
  soa.server().enable_solve_cache(
      SolveCache::global(),
      solve_scope(Approach::kSoaBalancing, options.cell_size_m));

  CoolingPowerResult result;

  // Proposed approach at its design operating point (7 kg/h @ 30 °C).
  const SimulationResult sim_p = proposed.scheduler().run(bench, qos);
  result.proposed_die_max_c = sim_p.die.max_c;
  result.proposed_water_c = proposed.server().operating_point().water_inlet_c;
  result.proposed_loop_dt_k =
      sim_p.syphon.water_outlet_c - result.proposed_water_c;

  // State of the art: same flow rate; find the water temperature needed to
  // reach the same hot-spot temperature (§VIII-B).
  const double flow = soa.server().operating_point().water_flow_kg_h;
  const auto soa_hotspot_at = [&](double water_c) {
    soa.server().set_operating_point(
        {.water_flow_kg_h = flow, .water_inlet_c = water_c});
    return soa.scheduler().run(bench, qos).die.max_c;
  };
  const double target = result.proposed_die_max_c;
  // Each evaluation re-runs the full scheduler pipeline on `soa`; the solve
  // cache serves the repeated endpoints (the 30 °C bracket check, the final
  // re-run at the bisection result) for free.
  double soa_water = 30.0;
  if (soa_hotspot_at(30.0) > target) {
    soa_water = util::bisect(
        [&](double t_w) { return soa_hotspot_at(t_w) - target; }, 5.0, 30.0,
        {.tolerance = 0.05, .max_iterations = 30});
  }
  result.soa_water_c = soa_water;
  soa.server().set_operating_point(
      {.water_flow_kg_h = flow, .water_inlet_c = soa_water});
  const SimulationResult sim_s = soa.scheduler().run(bench, qos);
  result.soa_loop_dt_k = sim_s.syphon.water_outlet_c - soa_water;

  // Chiller power, both accountings.
  result.proposed_lift_power_w = cooling::thermal_lift_power_w(
      proposed.server().operating_point().water_flow_kg_h,
      result.proposed_loop_dt_k, result.proposed_water_c);
  result.soa_lift_power_w = cooling::thermal_lift_power_w(
      flow, result.soa_loop_dt_k, result.soa_water_c);

  const cooling::ChillerModel chiller;
  result.proposed_electrical_w = chiller.electrical_power_w(
      sim_p.total_power_w, result.proposed_water_c);
  result.soa_electrical_w =
      chiller.electrical_power_w(sim_s.total_power_w, result.soa_water_c);

  result.lift_reduction_pct =
      100.0 * (1.0 - result.proposed_lift_power_w / result.soa_lift_power_w);
  result.electrical_reduction_pct =
      100.0 *
      (1.0 - result.proposed_electrical_w / result.soa_electrical_w);
  return result;
}

}  // namespace tpcool::core
