#include "tpcool/core/experiment.hpp"

#include <cmath>

#include "tpcool/cooling/chiller.hpp"
#include "tpcool/mapping/clustered.hpp"
#include "tpcool/mapping/proposed.hpp"
#include "tpcool/util/error.hpp"
#include "tpcool/util/rootfind.hpp"

namespace tpcool::core {

std::vector<workload::BenchmarkProfile> selected_benchmarks(
    const ExperimentOptions& options) {
  const auto& all = workload::parsec_benchmarks();
  if (options.max_benchmarks <= 0 ||
      options.max_benchmarks >= static_cast<int>(all.size())) {
    return all;
  }
  return {all.begin(), all.begin() + options.max_benchmarks};
}

Fig2Result run_fig2_motivation(const ExperimentOptions& options) {
  // Non-optimized design (the uniform-flux N-S design of [8]) with a naive
  // clustered placement of a heavy workload on six cores — the situation
  // the paper's motivational example illustrates.
  ApproachPipeline pipeline(Approach::kSoaBalancing, options.cell_size_m);
  ServerModel& server = pipeline.server();

  const workload::BenchmarkProfile& bench = workload::find_benchmark("x264");
  const workload::Configuration config{6, 2, 3.2};

  mapping::MappingContext context;
  context.floorplan = &server.floorplan();
  context.orientation = server.design().evaporator.orientation;
  context.idle_state = power::CState::kPoll;
  context.cores_needed = config.cores;
  const std::vector<int> cores =
      mapping::ClusteredPolicy().select_cores(context);

  const SimulationResult sim =
      server.simulate(bench, config, cores, power::CState::kPoll);
  Fig2Result result;
  result.die = sim.die;
  result.package = sim.package;
  result.die_field_c = sim.die_field_c;
  result.package_field_c = sim.package_field_c;
  return result;
}

std::vector<Fig5Row> run_fig5_orientation(const ExperimentOptions& options) {
  std::vector<Fig5Row> rows;
  for (const thermosyphon::Orientation orientation :
       {thermosyphon::Orientation::kEastWest,
        thermosyphon::Orientation::kNorthSouth}) {
    ServerConfig config = server_config_for(Approach::kProposed,
                                            options.cell_size_m);
    config.design.evaporator = default_evaporator_geometry(orientation);
    ServerModel server(std::move(config));

    // "All cores are equally loaded" (§VI-A): worst-case benchmark, full
    // configuration.
    const workload::BenchmarkProfile& bench =
        workload::worst_case_benchmark();
    const workload::Configuration full{8, 2, 3.2};
    std::vector<int> cores{1, 2, 3, 4, 5, 6, 7, 8};
    const SimulationResult sim =
        server.simulate(bench, full, cores, power::CState::kPoll);

    rows.push_back({orientation, sim.die, sim.package});
  }
  return rows;
}

std::vector<int> fig6_scenario_cores(int scenario) {
  // Core ids on the Fig. 2c floorplan: west column (col 0) holds cores
  // 5,6,7,8 north→south; the next column (col 1) holds 1,2,3,4.
  switch (scenario) {
    case 1:  // one active core per channel row, alternating columns
      return {5, 4, 7, 2};
    case 2:  // conventional balancing: the four corners
      return {5, 4, 1, 8};
    case 3:  // clustered block in the north-west
      return {5, 1, 6, 2};
    default:
      TPCOOL_REQUIRE(false, "Fig. 6 has scenarios 1..3");
      return {};
  }
}

std::vector<Fig6Row> run_fig6_scenarios(const ExperimentOptions& options) {
  ApproachPipeline pipeline(Approach::kProposed, options.cell_size_m);
  ServerModel& server = pipeline.server();
  const workload::BenchmarkProfile& bench = workload::find_benchmark("x264");
  const workload::Configuration config{4, 2, 3.2};

  std::vector<Fig6Row> rows;
  for (const power::CState idle : {power::CState::kPoll, power::CState::kC1}) {
    for (int scenario = 1; scenario <= 3; ++scenario) {
      Fig6Row row;
      row.scenario = scenario;
      row.idle_state = idle;
      row.cores = fig6_scenario_cores(scenario);
      row.die = server.simulate(bench, config, row.cores, idle).die;
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

std::vector<Table2Row> run_table2(const ExperimentOptions& options) {
  const std::vector<workload::BenchmarkProfile> benches =
      selected_benchmarks(options);
  std::vector<Table2Row> rows;

  for (const Approach approach :
       {Approach::kProposed, Approach::kSoaBalancing,
        Approach::kSoaInletFirst}) {
    ApproachPipeline pipeline(approach, options.cell_size_m);
    for (const workload::QoSRequirement& qos : workload::qos_levels()) {
      Table2Row row;
      row.approach = approach;
      row.qos_factor = qos.factor;
      for (const workload::BenchmarkProfile& bench : benches) {
        const SimulationResult sim = pipeline.scheduler().run(bench, qos);
        row.die_max_c += sim.die.max_c;
        row.die_grad_c_per_mm += sim.die.grad_max_c_per_mm;
        row.package_max_c += sim.package.max_c;
        row.package_grad_c_per_mm += sim.package.grad_max_c_per_mm;
        row.avg_power_w += sim.total_power_w;
        row.avg_water_dt_k +=
            sim.syphon.water_outlet_c -
            pipeline.server().operating_point().water_inlet_c;
      }
      const auto n = static_cast<double>(benches.size());
      row.die_max_c /= n;
      row.die_grad_c_per_mm /= n;
      row.package_max_c /= n;
      row.package_grad_c_per_mm /= n;
      row.avg_power_w /= n;
      row.avg_water_dt_k /= n;
      rows.push_back(row);
    }
  }
  return rows;
}

Fig7Result run_fig7_maps(const ExperimentOptions& options,
                         const std::string& benchmark) {
  const workload::BenchmarkProfile& bench =
      workload::find_benchmark(benchmark);
  const workload::QoSRequirement qos{2.0};

  ApproachPipeline proposed(Approach::kProposed, options.cell_size_m);
  ApproachPipeline soa(Approach::kSoaBalancing, options.cell_size_m);

  const SimulationResult sim_p = proposed.scheduler().run(bench, qos);
  const SimulationResult sim_s = soa.scheduler().run(bench, qos);

  Fig7Result result;
  result.proposed_map_c = sim_p.die_field_c;
  result.soa_map_c = sim_s.die_field_c;
  result.proposed_max_c = sim_p.die.max_c;
  result.soa_max_c = sim_s.die.max_c;
  result.grid = proposed.server().stack().grid;
  result.die_region = proposed.server().stack().die_region;
  return result;
}

CoolingPowerResult run_cooling_power(const ExperimentOptions& options) {
  const workload::BenchmarkProfile& bench = workload::find_benchmark("x264");
  const workload::QoSRequirement qos{2.0};

  ApproachPipeline proposed(Approach::kProposed, options.cell_size_m);
  ApproachPipeline soa(Approach::kSoaBalancing, options.cell_size_m);

  CoolingPowerResult result;

  // Proposed approach at its design operating point (7 kg/h @ 30 °C).
  const SimulationResult sim_p = proposed.scheduler().run(bench, qos);
  result.proposed_die_max_c = sim_p.die.max_c;
  result.proposed_water_c = proposed.server().operating_point().water_inlet_c;
  result.proposed_loop_dt_k =
      sim_p.syphon.water_outlet_c - result.proposed_water_c;

  // State of the art: same flow rate; find the water temperature needed to
  // reach the same hot-spot temperature (§VIII-B).
  const double flow = soa.server().operating_point().water_flow_kg_h;
  const auto soa_hotspot_at = [&](double water_c) {
    soa.server().set_operating_point(
        {.water_flow_kg_h = flow, .water_inlet_c = water_c});
    return soa.scheduler().run(bench, qos).die.max_c;
  };
  const double target = result.proposed_die_max_c;
  // Every evaluation re-runs the full scheduler pipeline on `soa`, but the
  // server's warm-started thermal field (ServerConfig::reuse_thermal_state)
  // makes consecutive bisection steps converge in a few CG iterations.
  // Cache the 30 °C endpoint so the bracket check doesn't pay for it twice.
  const double gap_at_30 = soa_hotspot_at(30.0) - target;
  double soa_water = 30.0;
  if (gap_at_30 > 0.0) {
    soa_water = util::bisect(
        [&](double t_w) {
          return t_w == 30.0 ? gap_at_30 : soa_hotspot_at(t_w) - target;
        },
        5.0, 30.0, {.tolerance = 0.05, .max_iterations = 30});
  }
  result.soa_water_c = soa_water;
  soa.server().set_operating_point(
      {.water_flow_kg_h = flow, .water_inlet_c = soa_water});
  const SimulationResult sim_s = soa.scheduler().run(bench, qos);
  result.soa_loop_dt_k = sim_s.syphon.water_outlet_c - soa_water;

  // Chiller power, both accountings.
  result.proposed_lift_power_w = cooling::thermal_lift_power_w(
      proposed.server().operating_point().water_flow_kg_h,
      result.proposed_loop_dt_k, result.proposed_water_c);
  result.soa_lift_power_w = cooling::thermal_lift_power_w(
      flow, result.soa_loop_dt_k, result.soa_water_c);

  const cooling::ChillerModel chiller;
  result.proposed_electrical_w = chiller.electrical_power_w(
      sim_p.total_power_w, result.proposed_water_c);
  result.soa_electrical_w =
      chiller.electrical_power_w(sim_s.total_power_w, result.soa_water_c);

  result.lift_reduction_pct =
      100.0 * (1.0 - result.proposed_lift_power_w / result.soa_lift_power_w);
  result.electrical_reduction_pct =
      100.0 *
      (1.0 - result.proposed_electrical_w / result.soa_electrical_w);
  return result;
}

}  // namespace tpcool::core
