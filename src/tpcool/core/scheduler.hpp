#pragma once
/// \file scheduler.hpp
/// \brief Algorithm 1 end to end: QoS-aware configuration selection,
///        C-state choice, and thermal-aware thread mapping.

#include <memory>

#include "tpcool/core/server.hpp"
#include "tpcool/mapping/config_select.hpp"
#include "tpcool/mapping/policy.hpp"

namespace tpcool::core {

/// Outcome of the scheduling pipeline for one application.
struct ScheduleDecision {
  workload::ConfigPoint point;      ///< Selected configuration + profile row.
  std::vector<int> cores;           ///< Physical core placement.
  power::CState idle_state = power::CState::kPoll;
};

/// How the configuration is selected.
enum class SelectionStrategy {
  kAlgorithm1,  ///< Paper: minimum power meeting the QoS.
  kPackAndCap,  ///< Baseline [27]: thread packing under a power cap.
};

/// Scheduler bound to a server and a mapping policy. The policy and server
/// must outlive the scheduler.
class Scheduler {
 public:
  Scheduler(ServerModel& server, const mapping::MappingPolicy& policy,
            SelectionStrategy strategy, bool manage_cstates);

  /// Decide (configuration, C-state, placement) for a benchmark under a QoS
  /// requirement.  When C-state management is off (state-of-the-art
  /// pipelines) idle cores stay in POLL.
  [[nodiscard]] ScheduleDecision schedule(
      const workload::BenchmarkProfile& bench,
      const workload::QoSRequirement& qos) const;

  /// Schedule and run the coupled thermal simulation.
  [[nodiscard]] SimulationResult run(const workload::BenchmarkProfile& bench,
                                     const workload::QoSRequirement& qos,
                                     ScheduleDecision* decision_out = nullptr);

 private:
  ServerModel* server_;
  const mapping::MappingPolicy* policy_;
  SelectionStrategy strategy_;
  bool manage_cstates_;
};

}  // namespace tpcool::core
