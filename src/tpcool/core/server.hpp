#pragma once
/// \file server.hpp
/// \brief The complete server model: Xeon E5 floorplan + package power model
///        + 3D thermal grid + two-phase thermosyphon, with the coupled
///        steady-state solve used by every experiment.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tpcool/floorplan/xeon_e5.hpp"
#include "tpcool/power/package_power.hpp"
#include "tpcool/thermal/grid.hpp"
#include "tpcool/thermal/metrics.hpp"
#include "tpcool/thermosyphon/thermosyphon.hpp"
#include "tpcool/workload/profiler.hpp"

namespace tpcool::core {

class SolveCache;

/// Server construction parameters.
struct ServerConfig {
  thermal::PackageStackConfig stack;            ///< Package + grid geometry.
  thermosyphon::ThermosyphonDesign design;      ///< Cooling-device design.
  thermosyphon::OperatingPoint operating_point; ///< Water valve + setpoint.
  double board_htc_w_m2k = 10.0;   ///< Weak secondary path to the board.
  double board_ambient_c = 40.0;   ///< In-chassis air temperature.
  int coupling_iterations = 4;     ///< Thermosyphon<->thermal fixed point.
  /// Warm-start each coupled solve from the previous temperature field.
  /// Consecutive solves in a sweep (benchmarks, QoS levels, bisection on
  /// the operating point) differ by a few degrees, so the CG iteration
  /// count collapses; converged results are identical within the solver
  /// tolerance regardless of the start.
  bool reuse_thermal_state = true;
};

/// Transient-segment outcome carried inside a SimulationResult when the
/// result was produced by the adaptive transient engine (see
/// datacenter/transient.hpp) instead of a steady coupled solve.  Steady
/// results leave it default-initialized (empty end state, zero counters),
/// which serializes to a few bytes in cache snapshots.
struct TransientSegmentInfo {
  /// Full 3D temperature field at segment end (ThermalModel cell order);
  /// the next chained segment starts from it.  Empty for steady solves.
  std::vector<double> end_state_c;
  double peak_tcase_c = 0.0;   ///< Max TCASE over the segment's steps.
  double peak_die_c = 0.0;     ///< Max die temperature over the segment.
  double sim_time_s = 0.0;     ///< Accepted-dt sum; equals the duration.
  std::uint64_t steps = 0;           ///< Accepted adaptive steps.
  std::uint64_t rejected_steps = 0;  ///< Trials redone at a smaller dt.
};

/// Result of one coupled steady-state simulation (or, via the transient
/// engine, one cached transient segment — see `transient`).
struct SimulationResult {
  thermal::ThermalMetrics die;        ///< Metrics over the die region.
  thermal::ThermalMetrics package;    ///< Metrics over the IHS (package top).
  double tcase_c = 0.0;               ///< Centre-of-spreader temperature.
  double total_power_w = 0.0;
  power::PackagePowerBreakdown power;
  thermosyphon::ThermosyphonState syphon;
  util::Grid2D<double> die_field_c;       ///< Die-layer temperature map.
  util::Grid2D<double> package_field_c;   ///< IHS-layer temperature map.
  std::vector<int> active_cores;
  TransientSegmentInfo transient;     ///< Segment payload; empty if steady.
};

/// A server with a thermosyphon on its package.
///
/// The model owns all substrate objects; `simulate()` runs the coupled
/// fixed point: power map -> thermosyphon HTC map -> thermal solve ->
/// evaporator heat map -> thermosyphon ... until the boundary stabilizes.
class ServerModel {
 public:
  explicit ServerModel(ServerConfig config);

  // The power model and profiler point back into this object, so a move
  // would leave them referencing the source. Factories returning prvalues
  // (make_proposed_server) still work via guaranteed copy elision; anything
  // else must heap-allocate.
  ServerModel(const ServerModel&) = delete;
  ServerModel& operator=(const ServerModel&) = delete;
  ServerModel(ServerModel&&) = delete;
  ServerModel& operator=(ServerModel&&) = delete;

  [[nodiscard]] const floorplan::Floorplan& floorplan() const {
    return floorplan_;
  }
  [[nodiscard]] const power::PackagePowerModel& power_model() const {
    return power_model_;
  }
  [[nodiscard]] const workload::Profiler& profiler() const {
    return profiler_;
  }
  [[nodiscard]] const thermosyphon::ThermosyphonDesign& design() const {
    return config_.design;
  }
  [[nodiscard]] const thermosyphon::OperatingPoint& operating_point() const {
    return config_.operating_point;
  }
  [[nodiscard]] const thermal::StackModel& stack() const {
    return thermal_.stack();
  }
  [[nodiscard]] const ServerConfig& config() const { return config_; }

  /// Change the runtime-adjustable coolant parameters (§VI-C).
  void set_operating_point(const thermosyphon::OperatingPoint& op);

  /// Run the coupled steady solve for a benchmark in a configuration mapped
  /// onto `active_cores` (ids from a MappingPolicy), idle cores at
  /// `idle_state`.
  [[nodiscard]] SimulationResult simulate(
      const workload::BenchmarkProfile& bench,
      const workload::Configuration& config_pt,
      const std::vector<int>& active_cores, power::CState idle_state);

  /// Coupled solve for an explicit per-unit power assignment (used by the
  /// motivation experiments and tests).
  [[nodiscard]] SimulationResult simulate_powers(
      const floorplan::UnitPowers& powers);

  /// Route `simulate()` through a shared memo of solve results.
  ///
  /// `scope_key` must uniquely identify everything this ServerModel was
  /// constructed from (design + stack + board + coupling settings) among
  /// all users of `cache`; the operating point and the per-solve inputs are
  /// appended automatically.  Use `solve_scope()` (parallel.hpp) for
  /// pipeline-built servers.
  ///
  /// While a cache is attached, cache-miss solves start cold and the
  /// warm-start chain (ServerConfig::reuse_thermal_state) is suspended, so
  /// every cached value is a pure function of its key.  This is what makes
  /// cached sweeps bit-identical for any thread count and task order: a
  /// duplicate compute of a key reproduces the identical bits, so races
  /// between cache writers are unobservable.
  void enable_solve_cache(std::shared_ptr<SolveCache> cache,
                          std::string scope_key);

  /// Detach the cache and restore warm-start chaining.
  void disable_solve_cache() { solve_cache_.reset(); }

  [[nodiscard]] bool solve_cache_enabled() const noexcept {
    return solve_cache_ != nullptr;
  }

  /// Access to the thermal model (e.g. for transient stepping).
  [[nodiscard]] thermal::ThermalModel& thermal() { return thermal_; }
  [[nodiscard]] const thermal::ThermalModel& thermal() const {
    return thermal_;
  }
  [[nodiscard]] const thermosyphon::Thermosyphon& thermosyphon_model() const {
    return syphon_;
  }

 private:
  /// `reuse_state` gates the cross-solve warm start; cached solves pass
  /// false so their results are independent of solve history.
  [[nodiscard]] SimulationResult coupled_solve(
      const floorplan::UnitPowers& powers, bool reuse_state);

  ServerConfig config_;
  floorplan::Floorplan floorplan_;
  power::PackagePowerModel power_model_;
  workload::Profiler profiler_;
  thermal::ThermalModel thermal_;
  thermosyphon::Thermosyphon syphon_;
  /// Temperature field of the previous coupled solve; warm-start hint for
  /// the next one (see ServerConfig::reuse_thermal_state).
  std::vector<double> last_temperature_;
  std::shared_ptr<SolveCache> solve_cache_;  ///< Null = no memoization.
  std::string cache_scope_;  ///< Key prefix identifying this server's config.
};

/// Factory: the paper's proposed, workload-aware design (§VI): east-west
/// channels, R236fa at 55 % fill, 7 kg/h of 30 °C water.
[[nodiscard]] ServerModel make_proposed_server();

/// Factory: the state-of-the-art design of [8], which assumed a uniform heat
/// flux: north-south channels, R236fa at 50 % fill, same water loop.
[[nodiscard]] ServerModel make_soa_server();

/// Default evaporator geometry matched to the default stack config.
[[nodiscard]] thermosyphon::EvaporatorGeometry default_evaporator_geometry(
    thermosyphon::Orientation orientation);

}  // namespace tpcool::core
