#include "tpcool/core/trace_runner.hpp"

#include <algorithm>

#include "tpcool/util/error.hpp"

namespace tpcool::core {

TraceRunner::TraceRunner(ServerModel& server, Scheduler& scheduler,
                         Config config)
    : server_(&server), scheduler_(&scheduler), config_(config) {
  TPCOOL_REQUIRE(config_.control_period_s > 0.0,
                 "control period must be positive");
}

TraceResult TraceRunner::run(const workload::WorkloadTrace& trace) {
  thermal::ThermalModel& thermal = server_->thermal();
  const thermal::StackModel& stack = thermal.stack();
  const floorplan::Rect package_region{0.0, 0.0, stack.grid.width(),
                                       stack.grid.height()};

  TraceResult result;
  std::vector<double> t(thermal.cell_count(), config_.start_temperature_c);
  util::Grid2D<double> evap_heat(stack.grid.nx, stack.grid.ny, 0.0);

  for (std::size_t phase_idx = 0; phase_idx < trace.phase_count();
       ++phase_idx) {
    const workload::TracePhase& phase = trace.phases()[phase_idx];
    const workload::BenchmarkProfile& bench =
        workload::find_benchmark(phase.benchmark);

    PhaseRecord record;
    record.phase_index = phase_idx;
    record.benchmark = phase.benchmark;
    record.qos_factor = phase.qos.factor;
    record.decision = scheduler_->schedule(bench, phase.qos);

    // Apply the phase's power map once; it is constant within the phase.
    power::PackagePowerRequest req = server_->profiler().request_for(
        bench, record.decision.point.config, record.decision.idle_state);
    req.active_cores = record.decision.cores;
    const double phase_power =
        server_->power_model().breakdown(req).total_w();
    thermal.set_power_map(floorplan::rasterize_power(
        server_->floorplan(), server_->power_model().unit_powers(req),
        stack.grid, stack.die_offset_x, stack.die_offset_y));

    // Step to the phase boundary, never past it: the final step is clamped
    // to the phase remainder, so simulated time equals trace time (a 1.1 s
    // phase at a 0.5 s period integrates 0.5 + 0.5 + 0.1, not 1.5 s) and
    // the thermal state covers the same window as energy_j.
    while (record.sim_time_s < phase.duration_s) {
      const double remaining_s = phase.duration_s - record.sim_time_s;
      const double dt_s = std::min(config_.control_period_s, remaining_s);
      const thermosyphon::ThermosyphonState syphon =
          server_->thermosyphon_model().solve(evap_heat,
                                              server_->operating_point());
      thermal::TopBoundary top;
      top.htc_w_m2k = syphon.htc_map;
      top.fluid_temp_c = syphon.fluid_temp_map;
      thermal.set_top_boundary(std::move(top));
      thermal.step_transient(t, dt_s);
      // Landing on the boundary is exact by assignment, not accumulation.
      record.sim_time_s =
          dt_s == remaining_s ? phase.duration_s : record.sim_time_s + dt_s;
      ++record.steps;
      evap_heat = thermal.top_heat_flow_map_w(t);
      for (double& q : evap_heat.data()) {
        if (q < 0.0) q = 0.0;
      }

      const util::Grid2D<double> ihs = thermal.layer_field(t, stack.ihs_layer);
      const util::Grid2D<double> die = thermal.layer_field(t, stack.die_layer);
      const double tcase =
          thermal::case_temperature(ihs, stack.grid, package_region);
      record.peak_tcase_c = std::max(record.peak_tcase_c, tcase);
      record.peak_die_c = std::max(
          record.peak_die_c,
          thermal::compute_metrics(die, stack.grid, stack.die_region).max_c);
      record.end_tcase_c = tcase;
      if (tcase > config_.tcase_limit_c) result.tcase_limit_exceeded = true;
    }
    record.avg_power_w = phase_power;
    record.energy_j = phase_power * phase.duration_s;

    result.peak_tcase_c = std::max(result.peak_tcase_c, record.peak_tcase_c);
    result.total_energy_j += record.energy_j;
    result.phases.push_back(std::move(record));
  }
  return result;
}

}  // namespace tpcool::core
