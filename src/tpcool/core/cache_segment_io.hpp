#pragma once
/// \file cache_segment_io.hpp
/// \brief On-disk formats of the solve-cache: the segmented v3 snapshot
///        (manifest + one segment file per shard digest-range) and the
///        legacy monolithic v2 reader kept as the migration path.
///
/// The formats are versioned, endian-safe binary (all integers
/// little-endian, doubles as IEEE-754 bit patterns) and defensive: every
/// length field is validated against the remaining bytes before it is
/// trusted, every file carries a trailing FNV-1a stream digest, and every
/// entry records a digest of its key — so truncation, bit rot, a
/// mixed-generation manifest/segment pair, or a hostile file raises
/// SnapshotError instead of undefined behavior.  The exact byte layout is
/// documented in docs/CACHE.md and mirrored by scripts/cache_inspect.py.
///
/// SolveCache owns the policy (which entries, merge semantics, eviction);
/// this layer owns only bytes <-> entries.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "tpcool/core/server.hpp"

namespace tpcool::core {

/// Thrown for unreadable, truncated, corrupt, or schema-mismatched
/// snapshot files (manifest or segment, v3 or legacy v2).
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace cache_io {

/// One cache entry as it crosses the disk boundary.  `cost_ms` is the
/// observed compute cost backing cost-aware eviction; it is snapshot
/// metadata, not part of the result payload, and is excluded from content
/// digests (see SolveCache::content_digest).
struct SnapshotEntry {
  std::string key;
  double cost_ms = 0.0;
  SimulationResult result;
};

/// Per-segment record in the manifest: what the segment file must contain.
struct SegmentInfo {
  std::uint64_t entry_count = 0;
  std::uint64_t byte_size = 0;      ///< Exact segment file size in bytes.
  std::uint64_t stream_digest = 0;  ///< == the segment's trailing digest.
};

/// Parsed manifest of a segmented snapshot.
struct Manifest {
  std::uint32_t version = 0;
  std::uint64_t total_entries = 0;
  std::vector<SegmentInfo> segments;  ///< Index = shard digest-range index.
};

/// Serialize one SimulationResult, field for field.  Any new field must be
/// added here (and to parse_result) AND bump SolveCache::kSnapshotVersion:
/// old snapshots are refused rather than silently misread.
[[nodiscard]] std::string serialize_result(const SimulationResult& result);

/// Parse one serialized SimulationResult; throws SnapshotError on
/// truncation or trailing bytes.
[[nodiscard]] SimulationResult parse_result_payload(const std::string& payload);

/// FNV-1a digest of a key's bytes — the digest that selects an entry's
/// shard (top bits) and seals it in segment files.
[[nodiscard]] std::uint64_t key_digest(const std::string& key);

/// Shard/segment index for a key digest among `count` digest-ranges
/// (`count` must be a power of two): the top log2(count) bits of the
/// digest after a golden-ratio bit mix (FNV-1a's raw high bits disperse
/// poorly for similar keys), so each index owns one contiguous range of
/// *mixed*-digest space.  Part of the on-disk format: segment readers
/// re-derive membership with the same function.
[[nodiscard]] std::size_t shard_index_for_digest(std::uint64_t digest,
                                                 std::size_t count);

/// Order-insensitive per-entry content digest: FNV-1a over the key bytes
/// then the serialized payload bytes.  SolveCache::content_digest is the
/// wrapping sum of these, so it is independent of recency order, shard
/// count, and merge interleaving.  Costs are excluded.
[[nodiscard]] std::uint64_t entry_content_digest(const std::string& key,
                                                 const std::string& payload);

/// Path of segment `index` for the manifest at `manifest_path`
/// ("<manifest>.seg0007").
[[nodiscard]] std::string segment_path(const std::string& manifest_path,
                                       std::size_t index);

// ------------------------------------------------------------- encoding --

/// Incremental segment encoder, so a shard can serialize its entries under
/// its own lock without first copying every result:
///   SegmentEncoder enc(index, count);
///   for (...) enc.add(key, cost_ms, serialize_result(result));
///   std::string blob = std::move(enc).finish();
class SegmentEncoder {
 public:
  SegmentEncoder(std::size_t segment_index, std::size_t segment_count);

  /// Append one entry (MRU -> LRU order is the caller's contract).
  void add(const std::string& key, double cost_ms, const std::string& payload);

  /// Seal the entry count and the trailing stream digest; the encoder is
  /// spent afterwards.
  [[nodiscard]] std::string finish() &&;

  [[nodiscard]] std::uint64_t entry_count() const noexcept { return count_; }

 private:
  std::string blob_;
  std::uint64_t count_ = 0;
};

/// Encode the manifest for `segments` (byte sizes, entry counts and stream
/// digests must describe the already-encoded segment files).
[[nodiscard]] std::string encode_manifest(
    const std::vector<SegmentInfo>& segments);

/// Legacy monolithic v2 writer.  Kept so tests and tooling can author the
/// pre-shard format that load() migrates; production saves always write v3.
[[nodiscard]] std::string encode_legacy_v2(
    const std::vector<SnapshotEntry>& entries);

// ------------------------------------------------------------- decoding --

/// True when `blob` starts with the legacy monolithic magic ("TPCOOLSC").
[[nodiscard]] bool is_legacy_snapshot(const std::string& blob);

/// True when `blob` starts with the segmented manifest magic ("TPCOOLSM").
[[nodiscard]] bool is_manifest(const std::string& blob);

/// Decode and fully validate a manifest blob.  `origin` names the file in
/// error messages.
[[nodiscard]] Manifest decode_manifest(const std::string& blob,
                                       const std::string& origin);

/// Decode and fully validate one segment blob: magic, version, recorded
/// index/count against `expected_*`, entry count and byte size against
/// `info`, the trailing stream digest (recomputed AND compared to the
/// manifest's recorded value, so a mixed-generation manifest/segment pair
/// is caught), every per-entry key digest, and that every key's digest
/// falls inside this segment's digest range.
[[nodiscard]] std::vector<SnapshotEntry> decode_segment(
    const std::string& blob, std::size_t expected_index,
    std::size_t expected_count, const SegmentInfo& info,
    const std::string& origin);

/// Decode and fully validate a legacy monolithic v2 snapshot (entries in
/// saved MRU -> LRU order, costs default to 0 — the migration path for
/// pre-shard snapshots).  Any version other than 2 is refused.
[[nodiscard]] std::vector<SnapshotEntry> decode_legacy_v2(
    const std::string& blob, const std::string& origin);

// ------------------------------------------------------------- file I/O --

/// Read a whole file; throws SnapshotError when it cannot be opened/read.
[[nodiscard]] std::string read_file(const std::string& path);

/// Atomic write: a uniquely named temporary in `path`'s directory is
/// written, flushed, and renamed over `path`, so readers (and a crash
/// mid-write) never observe a partial file.  Concurrent writers to one
/// path interleave as whole files (last rename wins), never as mixed
/// bytes.  Throws SnapshotError on failure.
void write_file_atomic(const std::string& path, const std::string& blob);

}  // namespace cache_io
}  // namespace tpcool::core
