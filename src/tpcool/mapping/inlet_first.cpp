#include "tpcool/mapping/inlet_first.hpp"

#include <algorithm>

#include "tpcool/util/error.hpp"

namespace tpcool::mapping {

std::vector<int> InletFirstPolicy::select_cores(
    const MappingContext& context) const {
  const auto& sites = checked_sites(context);

  // Distance from the refrigerant inlet along the flow direction: design 1
  // flows eastward from a west inlet, design 2 southward from a north inlet.
  const auto inlet_distance = [&](const floorplan::CoreSite& site) {
    if (context.orientation == thermosyphon::Orientation::kEastWest) {
      return site.rect.center_x();
    }
    return -site.rect.center_y();  // north inlet: larger y = closer
  };

  std::vector<const floorplan::CoreSite*> ordered;
  ordered.reserve(sites.size());
  for (const floorplan::CoreSite& s : sites) ordered.push_back(&s);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [&](const floorplan::CoreSite* a,
                       const floorplan::CoreSite* b) {
                     const double da = inlet_distance(*a);
                     const double db = inlet_distance(*b);
                     if (da != db) return da < db;
                     return a->core_id < b->core_id;
                   });

  std::vector<int> order;
  order.reserve(ordered.size());
  for (const floorplan::CoreSite* s : ordered) order.push_back(s->core_id);
  return take(order, context.cores_needed);
}

}  // namespace tpcool::mapping
