#include "tpcool/mapping/policy.hpp"

#include <algorithm>

#include "tpcool/util/error.hpp"

namespace tpcool::mapping {

const std::vector<floorplan::CoreSite>& MappingPolicy::checked_sites(
    const MappingContext& context) {
  TPCOOL_REQUIRE(context.floorplan != nullptr, "context needs a floorplan");
  const auto& sites = context.floorplan->cores();
  TPCOOL_REQUIRE(!sites.empty(), "floorplan has no cores");
  TPCOOL_REQUIRE(context.cores_needed >= 1 &&
                     context.cores_needed <= static_cast<int>(sites.size()),
                 "cores_needed out of range");
  return sites;
}

int MappingPolicy::core_at(const MappingContext& context, int row,
                           int column) {
  for (const floorplan::CoreSite& site : checked_sites(context)) {
    if (site.row == row && site.column == column) return site.core_id;
  }
  TPCOOL_REQUIRE(false, "no core at the requested grid position");
  return 0;  // unreachable
}

int MappingPolicy::grid_rows(const MappingContext& context) {
  int rows = 0;
  for (const floorplan::CoreSite& site : checked_sites(context)) {
    rows = std::max(rows, site.row + 1);
  }
  return rows;
}

int MappingPolicy::grid_columns(const MappingContext& context) {
  int cols = 0;
  for (const floorplan::CoreSite& site : checked_sites(context)) {
    cols = std::max(cols, site.column + 1);
  }
  return cols;
}

std::vector<int> MappingPolicy::take(const std::vector<int>& order,
                                     int count) {
  TPCOOL_REQUIRE(count >= 1 && count <= static_cast<int>(order.size()),
                 "not enough cores in the preference order");
  return {order.begin(), order.begin() + count};
}

}  // namespace tpcool::mapping
