#pragma once
/// \file proposed.hpp
/// \brief The paper's thermal-aware mapping policy (§VII), tailored to the
///        two-phase thermosyphon:
///
///  - idle cores in a *deep* C-state (C1 or deeper): the dominant effect is
///    per-channel vapor-quality buildup, so place at most one active core on
///    each horizontal (channel) line, alternating columns (Fig. 6
///    scenario 1);
///  - idle cores in POLL: idle static power is comparable to active dynamic
///    power, so the conventional corner-first balancing wins (scenario 2);
///  - more than ~5 cores: corners first, then fill while keeping the number
///    of active cores per channel line minimal.

#include "tpcool/mapping/policy.hpp"

namespace tpcool::mapping {

class ProposedPolicy final : public MappingPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "proposed"; }
  [[nodiscard]] std::vector<int> select_cores(
      const MappingContext& context) const override;

  /// The channel-aware placement order used when idle cores sleep deeply.
  [[nodiscard]] static std::vector<int> deep_sleep_order(
      const MappingContext& context);

  /// The corner-first balancing order used when idle cores stay in POLL.
  [[nodiscard]] static std::vector<int> poll_order(
      const MappingContext& context);
};

}  // namespace tpcool::mapping
