#include "tpcool/mapping/balancing.hpp"

#include "tpcool/util/error.hpp"

namespace tpcool::mapping {

std::vector<int> BalancingPolicy::select_cores(
    const MappingContext& context) const {
  const int rows = grid_rows(context);
  const int cols = grid_columns(context);
  TPCOOL_REQUIRE(rows == 4 && cols == 2,
                 "the balancing order is defined for the 2x4 Broadwell grid");
  // Corner-first maximal spread, independent of C-state and orientation.
  const std::vector<int> order{
      core_at(context, 0, 0), core_at(context, 3, 1),
      core_at(context, 0, 1), core_at(context, 3, 0),
      core_at(context, 1, 0), core_at(context, 2, 1),
      core_at(context, 2, 0), core_at(context, 1, 1),
  };
  return take(order, context.cores_needed);
}

}  // namespace tpcool::mapping
