#pragma once
/// \file inlet_first.hpp
/// \brief Baseline: inlet-first mapping of Sabry et al., TCAD 2011 (paper
///        reference [7]) — designed for inter-layer liquid cooling, it packs
///        the workload onto the cores closest to the coolant inlet.  The
///        paper shows this is counter-productive for a thermosyphon (§VIII).

#include "tpcool/mapping/policy.hpp"

namespace tpcool::mapping {

class InletFirstPolicy final : public MappingPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "inlet-first[7]"; }
  [[nodiscard]] std::vector<int> select_cores(
      const MappingContext& context) const override;
};

}  // namespace tpcool::mapping
