#include "tpcool/mapping/exhaustive.hpp"

#include <algorithm>

#include "tpcool/util/error.hpp"

namespace tpcool::mapping {

ExhaustivePolicy::ExhaustivePolicy(PlacementEvaluator evaluator)
    : evaluator_(std::move(evaluator)) {
  TPCOOL_REQUIRE(static_cast<bool>(evaluator_),
                 "oracle needs a placement evaluator");
}

ExhaustivePolicy::ExhaustivePolicy(BatchPlacementEvaluator evaluator)
    : batch_evaluator_(std::move(evaluator)) {
  TPCOOL_REQUIRE(static_cast<bool>(batch_evaluator_),
                 "oracle needs a placement evaluator");
}

std::vector<std::vector<int>> core_subsets(
    const floorplan::Floorplan& floorplan, int k) {
  const int n = static_cast<int>(floorplan.core_count());
  TPCOOL_REQUIRE(k >= 1 && k <= n, "subset size out of range");
  std::vector<std::vector<int>> subsets;
  std::vector<int> indices(static_cast<std::size_t>(k));
  // Standard lexicographic k-combination enumeration.
  for (int i = 0; i < k; ++i) indices[static_cast<std::size_t>(i)] = i;
  while (true) {
    std::vector<int> subset;
    subset.reserve(static_cast<std::size_t>(k));
    for (const int idx : indices) {
      subset.push_back(floorplan.cores()[static_cast<std::size_t>(idx)].core_id);
    }
    subsets.push_back(std::move(subset));
    int pos = k - 1;
    while (pos >= 0 &&
           indices[static_cast<std::size_t>(pos)] == n - k + pos) {
      --pos;
    }
    if (pos < 0) break;
    ++indices[static_cast<std::size_t>(pos)];
    for (int j = pos + 1; j < k; ++j) {
      indices[static_cast<std::size_t>(j)] =
          indices[static_cast<std::size_t>(j - 1)] + 1;
    }
  }
  return subsets;
}

std::vector<int> ExhaustivePolicy::select_cores(
    const MappingContext& context) const {
  checked_sites(context);
  const auto subsets = core_subsets(*context.floorplan, context.cores_needed);
  TPCOOL_ENSURE(!subsets.empty(), "no subsets enumerated");

  std::vector<int> best;
  best_cost_ = 0.0;
  evaluations_ = 0;
  if (batch_evaluator_) {
    const std::vector<double> costs = batch_evaluator_(subsets);
    TPCOOL_ENSURE(costs.size() == subsets.size(),
                  "batch evaluator returned the wrong number of costs");
    evaluations_ = costs.size();
    // Argmin with first-wins ties: identical to the serial scan below.
    std::size_t best_index = 0;
    for (std::size_t i = 1; i < costs.size(); ++i) {
      if (costs[i] < costs[best_index]) best_index = i;
    }
    best_cost_ = costs[best_index];
    return subsets[best_index];
  }
  for (const std::vector<int>& subset : subsets) {
    const double cost = evaluator_(subset);
    ++evaluations_;
    if (best.empty() || cost < best_cost_) {
      best = subset;
      best_cost_ = cost;
    }
  }
  return best;
}

}  // namespace tpcool::mapping
