#pragma once
/// \file policy.hpp
/// \brief Workload-mapping policy interface: decide which physical cores run
///        the workload's threads, given the thermosyphon orientation and the
///        C-state of the idle cores.

#include <memory>
#include <string>
#include <vector>

#include "tpcool/floorplan/floorplan.hpp"
#include "tpcool/power/cstates.hpp"
#include "tpcool/thermosyphon/geometry.hpp"

namespace tpcool::mapping {

/// Everything a policy may consult when placing threads.
struct MappingContext {
  const floorplan::Floorplan* floorplan = nullptr;
  thermosyphon::Orientation orientation = thermosyphon::Orientation::kEastWest;
  power::CState idle_state = power::CState::kPoll;
  int cores_needed = 1;
};

/// Abstract mapping policy.  Implementations are stateless and deterministic;
/// `select_cores` returns `cores_needed` distinct 1-based core ids in
/// placement order.
class MappingPolicy {
 public:
  virtual ~MappingPolicy() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::vector<int> select_cores(
      const MappingContext& context) const = 0;

 protected:
  /// Validate the context and pass back the core sites; shared by all
  /// implementations.
  static const std::vector<floorplan::CoreSite>& checked_sites(
      const MappingContext& context);

  /// Core id at a (row, column) position of the core grid; throws when the
  /// position is not populated.
  static int core_at(const MappingContext& context, int row, int column);

  /// Number of rows/columns of the core grid.
  static int grid_rows(const MappingContext& context);
  static int grid_columns(const MappingContext& context);

  /// Truncate an ordered preference list to the requested core count.
  static std::vector<int> take(const std::vector<int>& order, int count);
};

}  // namespace tpcool::mapping
