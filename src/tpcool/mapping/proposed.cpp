#include "tpcool/mapping/proposed.hpp"

#include "tpcool/util/error.hpp"

namespace tpcool::mapping {

std::vector<int> ProposedPolicy::deep_sleep_order(
    const MappingContext& context) {
  const int rows = grid_rows(context);
  const int cols = grid_columns(context);
  TPCOOL_REQUIRE(rows == 4 && cols == 2,
                 "the proposed order is defined for the 2x4 Broadwell grid");
  // First pass: one core per channel row, maximal vertical spread,
  // alternating columns (scenario 1 of Fig. 6). Second pass fills the
  // remaining sites corners-first while keeping per-row counts minimal.
  // With east-west channels a "row" of the core grid is a channel line; with
  // north-south channels the roles of rows/columns swap, but the 2-column
  // grid leaves no freedom transverse to the flow, so the same vertical
  // spread remains the best choice.
  return {
      core_at(context, 0, 0), core_at(context, 3, 1),
      core_at(context, 2, 0), core_at(context, 1, 1),
      core_at(context, 0, 1), core_at(context, 3, 0),
      core_at(context, 1, 0), core_at(context, 2, 1),
  };
}

std::vector<int> ProposedPolicy::poll_order(const MappingContext& context) {
  const int rows = grid_rows(context);
  const int cols = grid_columns(context);
  TPCOOL_REQUIRE(rows == 4 && cols == 2,
                 "the proposed order is defined for the 2x4 Broadwell grid");
  // Conventional thermal balancing: corners first (scenario 2 of Fig. 6),
  // then the middle sites with maximal pairwise distance.
  return {
      core_at(context, 0, 0), core_at(context, 3, 1),
      core_at(context, 0, 1), core_at(context, 3, 0),
      core_at(context, 1, 0), core_at(context, 2, 1),
      core_at(context, 2, 0), core_at(context, 1, 1),
  };
}

std::vector<int> ProposedPolicy::select_cores(
    const MappingContext& context) const {
  const bool deep_idle = context.idle_state != power::CState::kPoll;
  const std::vector<int> order =
      deep_idle ? deep_sleep_order(context) : poll_order(context);
  return take(order, context.cores_needed);
}

}  // namespace tpcool::mapping
