#pragma once
/// \file balancing.hpp
/// \brief Baseline: temperature-aware balancing of Coskun et al., DATE 2007
///        (paper reference [9]) — spread the load, corners first, without
///        any knowledge of the two-phase cooling behaviour or C-states.

#include "tpcool/mapping/policy.hpp"

namespace tpcool::mapping {

class BalancingPolicy final : public MappingPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "balancing[9]"; }
  [[nodiscard]] std::vector<int> select_cores(
      const MappingContext& context) const override;
};

}  // namespace tpcool::mapping
