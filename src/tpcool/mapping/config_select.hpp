#pragma once
/// \file config_select.hpp
/// \brief Configuration selection: the paper's Algorithm 1 (minimum power
///        meeting QoS) and the Pack & Cap baseline of Cochran et al.,
///        MICRO 2011 (paper reference [27]).

#include <vector>

#include "tpcool/workload/profiler.hpp"

namespace tpcool::mapping {

/// Algorithm 1, lines 5–6: sort P ascending and return the first
/// configuration whose QoS satisfies the requirement.
/// Throws PreconditionError when no configuration meets the QoS.
[[nodiscard]] workload::ConfigPoint algorithm1_select(
    const std::vector<workload::ConfigPoint>& profile,
    const workload::QoSRequirement& qos);

/// Pack & Cap [27]: pack threads onto the fewest cores that still meet the
/// QoS under the power cap, preferring (fewer cores, then lower power).
/// Packing pushes towards high frequencies, which is why the state-of-the-art
/// pipeline burns more power than Algorithm 1 at relaxed QoS (§VIII-B).
[[nodiscard]] workload::ConfigPoint packcap_select(
    const std::vector<workload::ConfigPoint>& profile,
    const workload::QoSRequirement& qos, double power_cap_w = 85.0);

}  // namespace tpcool::mapping
