#pragma once
/// \file clustered.hpp
/// \brief Baseline: naive clustered placement (a cache-affinity-style OS
///        scheduler): fill physically adjacent cores from the top of the die
///        (scenario 3 of Fig. 6 — the worst case for the thermosyphon).

#include "tpcool/mapping/policy.hpp"

namespace tpcool::mapping {

class ClusteredPolicy final : public MappingPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "clustered"; }
  [[nodiscard]] std::vector<int> select_cores(
      const MappingContext& context) const override;
};

}  // namespace tpcool::mapping
