#include "tpcool/mapping/config_select.hpp"

#include <algorithm>

#include "tpcool/util/error.hpp"

namespace tpcool::mapping {

workload::ConfigPoint algorithm1_select(
    const std::vector<workload::ConfigPoint>& profile,
    const workload::QoSRequirement& qos) {
  TPCOOL_REQUIRE(!profile.empty(), "empty configuration profile");
  std::vector<workload::ConfigPoint> sorted = profile;
  std::sort(sorted.begin(), sorted.end(),
            [](const workload::ConfigPoint& a, const workload::ConfigPoint& b) {
              return a.power_w < b.power_w;
            });
  for (const workload::ConfigPoint& p : sorted) {
    if (qos.satisfied_by(p.norm_time)) return p;
  }
  TPCOOL_REQUIRE(false, "no configuration satisfies the QoS requirement");
  return sorted.front();  // unreachable
}

workload::ConfigPoint packcap_select(
    const std::vector<workload::ConfigPoint>& profile,
    const workload::QoSRequirement& qos, double power_cap_w) {
  TPCOOL_REQUIRE(!profile.empty(), "empty configuration profile");
  TPCOOL_REQUIRE(power_cap_w > 0.0, "power cap must be positive");
  const workload::ConfigPoint* best = nullptr;
  for (const workload::ConfigPoint& p : profile) {
    if (!qos.satisfied_by(p.norm_time)) continue;
    if (p.power_w > power_cap_w) continue;
    if (best == nullptr) {
      best = &p;
      continue;
    }
    // Pack threads onto the fewest cores, then spend the cap headroom on
    // frequency (Pack & Cap maximizes speed under the cap), then save power.
    if (p.config.cores != best->config.cores) {
      if (p.config.cores < best->config.cores) best = &p;
      continue;
    }
    if (p.config.freq_ghz != best->config.freq_ghz) {
      if (p.config.freq_ghz > best->config.freq_ghz) best = &p;
      continue;
    }
    if (p.power_w < best->power_w) best = &p;
  }
  TPCOOL_REQUIRE(best != nullptr,
                 "no configuration satisfies the QoS under the power cap");
  return *best;
}

}  // namespace tpcool::mapping
