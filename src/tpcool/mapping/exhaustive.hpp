#pragma once
/// \file exhaustive.hpp
/// \brief Oracle mapping: exhaustively evaluate every core subset of the
///        requested size through a caller-provided thermal evaluator and
///        return the coolest one. Exponential in core count (C(8,4) = 70),
///        so this is an ablation/verification tool, not a runtime policy —
///        it bounds how far the proposed heuristic is from optimal.

#include <functional>

#include "tpcool/mapping/policy.hpp"

namespace tpcool::mapping {

/// Thermal cost of a placement (lower is better) — typically the die θmax
/// from a coupled server simulation.
using PlacementEvaluator =
    std::function<double(const std::vector<int>& cores)>;

/// Exhaustive-search oracle. Stateless per call; the evaluator is invoked
/// once per subset.
class ExhaustivePolicy final : public MappingPolicy {
 public:
  explicit ExhaustivePolicy(PlacementEvaluator evaluator);

  [[nodiscard]] std::string name() const override { return "oracle"; }
  [[nodiscard]] std::vector<int> select_cores(
      const MappingContext& context) const override;

  /// Cost of the best placement found by the last select_cores() call.
  [[nodiscard]] double best_cost() const noexcept { return best_cost_; }

  /// Number of subsets evaluated by the last call.
  [[nodiscard]] std::size_t evaluations() const noexcept {
    return evaluations_;
  }

 private:
  PlacementEvaluator evaluator_;
  mutable double best_cost_ = 0.0;
  mutable std::size_t evaluations_ = 0;
};

/// Enumerate all size-k subsets of the core ids (sorted ids, lexicographic).
[[nodiscard]] std::vector<std::vector<int>> core_subsets(
    const floorplan::Floorplan& floorplan, int k);

}  // namespace tpcool::mapping
