#pragma once
/// \file exhaustive.hpp
/// \brief Oracle mapping: exhaustively evaluate every core subset of the
///        requested size through a caller-provided thermal evaluator and
///        return the coolest one. Exponential in core count (C(8,4) = 70),
///        so this is an ablation/verification tool, not a runtime policy —
///        it bounds how far the proposed heuristic is from optimal.

#include <functional>

#include "tpcool/mapping/policy.hpp"

namespace tpcool::mapping {

/// Thermal cost of a placement (lower is better) — typically the die θmax
/// from a coupled server simulation.
using PlacementEvaluator =
    std::function<double(const std::vector<int>& cores)>;

/// Batch form: costs for all candidate placements at once, index-aligned
/// with the input. Lets the caller fan the independent simulations out over
/// a thread pool (core::evaluate_placements_parallel) instead of being
/// called back one subset at a time.
using BatchPlacementEvaluator = std::function<std::vector<double>(
    const std::vector<std::vector<int>>& subsets)>;

/// Exhaustive-search oracle. Stateless per call; the evaluator is invoked
/// once per subset (or once per sweep in batch form). Ties break toward
/// the lexicographically first subset in both forms.
class ExhaustivePolicy final : public MappingPolicy {
 public:
  explicit ExhaustivePolicy(PlacementEvaluator evaluator);
  explicit ExhaustivePolicy(BatchPlacementEvaluator evaluator);

  [[nodiscard]] std::string name() const override { return "oracle"; }
  [[nodiscard]] std::vector<int> select_cores(
      const MappingContext& context) const override;

  /// Cost of the best placement found by the last select_cores() call.
  [[nodiscard]] double best_cost() const noexcept { return best_cost_; }

  /// Number of subsets evaluated by the last call.
  [[nodiscard]] std::size_t evaluations() const noexcept {
    return evaluations_;
  }

 private:
  PlacementEvaluator evaluator_;
  BatchPlacementEvaluator batch_evaluator_;  ///< Wins when set.
  mutable double best_cost_ = 0.0;
  mutable std::size_t evaluations_ = 0;
};

/// Enumerate all size-k subsets of the core ids (sorted ids, lexicographic).
[[nodiscard]] std::vector<std::vector<int>> core_subsets(
    const floorplan::Floorplan& floorplan, int k);

}  // namespace tpcool::mapping
