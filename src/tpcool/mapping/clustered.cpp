#include "tpcool/mapping/clustered.hpp"

#include "tpcool/util/error.hpp"

namespace tpcool::mapping {

std::vector<int> ClusteredPolicy::select_cores(
    const MappingContext& context) const {
  const int rows = grid_rows(context);
  const int cols = grid_columns(context);
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(rows) * cols);
  // Row-major block fill from the north-west corner.
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      order.push_back(core_at(context, r, c));
    }
  }
  return take(order, context.cores_needed);
}

}  // namespace tpcool::mapping
