#include "tpcool/cooling/cold_plate.hpp"

#include <cmath>

#include "tpcool/materials/water.hpp"
#include "tpcool/util/error.hpp"
#include "tpcool/util/interp.hpp"
#include "tpcool/util/rootfind.hpp"

namespace tpcool::cooling {

ColdPlateState cold_plate_at(const ColdPlateDesign& design,
                             double flow_frac) {
  TPCOOL_REQUIRE(design.nominal_flow_kg_h > 0.0 &&
                     design.nominal_conductance_w_k > 0.0,
                 "invalid cold-plate design");
  ColdPlateState state;
  state.flow_frac =
      util::clamp(flow_frac, design.min_flow_frac, design.max_flow_frac);
  state.flow_kg_h = design.nominal_flow_kg_h * state.flow_frac;
  state.conductance_w_k =
      design.nominal_conductance_w_k * std::pow(state.flow_frac, 0.8);
  // Δp ∝ flow², pump power = Δp·V̇ ∝ flow³.
  state.pump_power_w =
      design.nominal_pump_power_w * std::pow(state.flow_frac, 3.0);
  return state;
}

double cold_plate_case_c(const ColdPlateState& state, double heat_w,
                         double coolant_in_c) {
  TPCOOL_REQUIRE(heat_w >= 0.0, "negative heat load");
  const double c_w =
      materials::water_capacity_rate_w_k(state.flow_kg_h, coolant_in_c);
  // Mid-plate coolant temperature + film drop + plate conduction.
  return coolant_in_c + 0.5 * heat_w / c_w + heat_w / state.conductance_w_k +
         heat_w * 0.02;
}

double required_flow(const ColdPlateDesign& design, double heat_w,
                     double coolant_in_c, double tcase_limit_c) {
  TPCOOL_REQUIRE(tcase_limit_c > coolant_in_c,
                 "limit must exceed the coolant inlet temperature");
  const auto tcase_at = [&](double frac) {
    return cold_plate_case_c(cold_plate_at(design, frac), heat_w,
                             coolant_in_c);
  };
  if (tcase_at(design.min_flow_frac) <= tcase_limit_c) {
    return design.min_flow_frac;
  }
  if (tcase_at(design.max_flow_frac) > tcase_limit_c) {
    return design.max_flow_frac * 1.01;
  }
  return util::bisect(
      [&](double frac) { return tcase_at(frac) - tcase_limit_c; },
      design.min_flow_frac, design.max_flow_frac,
      {.tolerance = 1e-4, .max_iterations = 100});
}

}  // namespace tpcool::cooling
