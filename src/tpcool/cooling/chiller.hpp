#pragma once
/// \file chiller.hpp
/// \brief Rack-level water chiller: the paper's Eq. (1) thermal-lift power
///        accounting plus a condenser-approach COP model for the electrical
///        power ("in real scenarios, the chiller would need to consume much
///        less power … even close to zero" — §VIII-B).

namespace tpcool::cooling {

/// Paper Eq. (1): power required to change the temperature of a water stream
/// by ΔT:  P = V̇·ρ·c_w·ΔT  (V̇ in L/s, ρ in kg/L). Equivalent to ṁ·c_w·ΔT.
/// \param flow_kg_h water mass flow [kg/h].
/// \param delta_t_k temperature change imposed on the stream [K].
/// \param water_temp_c bulk temperature for property lookup [°C].
[[nodiscard]] double thermal_lift_power_w(double flow_kg_h, double delta_t_k,
                                          double water_temp_c);

/// Vapor-compression chiller with a second-law efficiency against the
/// Carnot limit between the water setpoint and ambient.
struct ChillerModel {
  double ambient_c = 35.0;       ///< Heat-rejection ambient.
  double approach_k = 3.0;       ///< Condenser + evaporator approach ΔT.
  double second_law_eff = 0.50;  ///< Fraction of Carnot COP achieved.
  double pump_overhead_w = 0.5;  ///< Circulation pump, per loop.
  double max_cop = 20.0;         ///< Free-cooling cap (setpoint ≥ ambient).

  /// Coefficient of performance at a water setpoint [°C]. Higher setpoints
  /// approach free cooling; the COP is clamped to [0.5, max_cop].
  [[nodiscard]] double cop(double setpoint_c) const;

  /// Electrical power [W] to remove `q_w` of heat at a setpoint.
  [[nodiscard]] double electrical_power_w(double q_w, double setpoint_c) const;
};

}  // namespace tpcool::cooling
