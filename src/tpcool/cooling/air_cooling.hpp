#pragma once
/// \file air_cooling.hpp
/// \brief Conventional air-cooling baseline (heatsink + fan): the technology
///        the paper's introduction argues "fails to cope" with power-hungry
///        servers. Used by the cooling-technology comparison bench and the
///        PUE accounting.
///
/// Model: a finned heatsink characterized by its base spreading resistance
/// and a convective conductance proportional to airflow^0.8 (turbulent fin
/// channels), driven by a fan whose electrical power grows with the cube of
/// its speed.

namespace tpcool::cooling {

/// Heatsink + fan characterization.
struct AirCoolerDesign {
  double base_resistance_k_w = 0.10;   ///< Conduction/spreading resistance.
  /// Convective conductance at nominal airflow [W/K].
  double nominal_conductance_w_k = 6.0;
  double nominal_airflow_cfm = 60.0;   ///< Airflow at nominal fan speed.
  double nominal_fan_power_w = 6.0;    ///< Electrical power at nominal speed.
  double min_speed_frac = 0.2;         ///< Fan floor (bearings/control).
  double max_speed_frac = 1.5;         ///< Over-speed ceiling.
};

/// Operating state of the air cooler at a fan speed fraction.
struct AirCoolerState {
  double speed_frac = 1.0;
  double conductance_w_k = 0.0;      ///< Effective sink-to-air conductance.
  double case_to_air_k_w = 0.0;      ///< Total case-to-ambient resistance.
  double fan_power_w = 0.0;
};

/// Evaluate the cooler at a fan speed fraction (clamped to design limits).
[[nodiscard]] AirCoolerState air_cooler_at(const AirCoolerDesign& design,
                                           double speed_frac);

/// Case temperature [°C] for a heat load at an inlet-air temperature.
[[nodiscard]] double air_cooled_case_c(const AirCoolerState& state,
                                       double heat_w, double air_inlet_c);

/// Minimum fan speed fraction keeping TCASE at/below the limit, or a value
/// > max_speed_frac when the sink cannot hold the load (air cooling fails —
/// the paper's motivation). Monotone bisection on the fan curve.
[[nodiscard]] double required_fan_speed(const AirCoolerDesign& design,
                                        double heat_w, double air_inlet_c,
                                        double tcase_limit_c);

}  // namespace tpcool::cooling
