#include "tpcool/cooling/air_cooling.hpp"

#include <cmath>

#include "tpcool/util/error.hpp"
#include "tpcool/util/interp.hpp"
#include "tpcool/util/rootfind.hpp"

namespace tpcool::cooling {

AirCoolerState air_cooler_at(const AirCoolerDesign& design,
                             double speed_frac) {
  TPCOOL_REQUIRE(design.base_resistance_k_w > 0.0 &&
                     design.nominal_conductance_w_k > 0.0,
                 "invalid air-cooler design");
  AirCoolerState state;
  state.speed_frac = util::clamp(speed_frac, design.min_speed_frac,
                                 design.max_speed_frac);
  // Convection scales with airflow^0.8 (turbulent fin channels); airflow is
  // proportional to fan speed.
  state.conductance_w_k =
      design.nominal_conductance_w_k * std::pow(state.speed_frac, 0.8);
  state.case_to_air_k_w =
      design.base_resistance_k_w + 1.0 / state.conductance_w_k;
  // Fan affinity law: electrical power ∝ speed³.
  state.fan_power_w =
      design.nominal_fan_power_w * std::pow(state.speed_frac, 3.0);
  return state;
}

double air_cooled_case_c(const AirCoolerState& state, double heat_w,
                         double air_inlet_c) {
  TPCOOL_REQUIRE(heat_w >= 0.0, "negative heat load");
  return air_inlet_c + heat_w * state.case_to_air_k_w;
}

double required_fan_speed(const AirCoolerDesign& design, double heat_w,
                          double air_inlet_c, double tcase_limit_c) {
  TPCOOL_REQUIRE(heat_w >= 0.0, "negative heat load");
  TPCOOL_REQUIRE(tcase_limit_c > air_inlet_c,
                 "limit must exceed the air inlet temperature");
  const auto tcase_at = [&](double speed) {
    return air_cooled_case_c(air_cooler_at(design, speed), heat_w,
                             air_inlet_c);
  };
  if (tcase_at(design.min_speed_frac) <= tcase_limit_c) {
    return design.min_speed_frac;
  }
  if (tcase_at(design.max_speed_frac) > tcase_limit_c) {
    // Even flat-out the sink cannot hold the load.
    return design.max_speed_frac * 1.01;
  }
  return util::bisect(
      [&](double speed) { return tcase_at(speed) - tcase_limit_c; },
      design.min_speed_frac, design.max_speed_frac,
      {.tolerance = 1e-4, .max_iterations = 100});
}

}  // namespace tpcool::cooling
