#pragma once
/// \file pue.hpp
/// \brief Power Usage Effectiveness accounting (paper §I): PUE = total
///        facility power / IT power. The thermosyphon of [8] reaches a PUE
///        of 1.05; air-cooled facilities sit near 1.4–1.65.

#include "tpcool/util/error.hpp"

namespace tpcool::cooling {

/// Facility-level power breakdown [W] (per server, or aggregated — PUE is
/// scale-free as long as the breakdown is consistent).
struct FacilityPower {
  double it_w = 0.0;            ///< Servers' compute power.
  double chiller_w = 0.0;       ///< Chiller / CRAC compressor electricity.
  double pumps_fans_w = 0.0;    ///< Coolant pumps and fans.
  double distribution_w = 0.0;  ///< UPS/PDU conversion losses.

  [[nodiscard]] double total_w() const {
    return it_w + chiller_w + pumps_fans_w + distribution_w;
  }
};

/// PUE = total / IT. Requires positive IT power.
[[nodiscard]] double pue(const FacilityPower& power);

/// Distribution losses as a constant efficiency tax on IT power
/// (modern UPS+PDU chains are ~3 % lossy).
[[nodiscard]] double distribution_loss_w(double it_w,
                                         double loss_fraction = 0.03);

/// Cooling power ratio (cooling / total): the paper cites ~30 % of facility
/// energy going to cooling in conventional data centers.
[[nodiscard]] double cooling_fraction(const FacilityPower& power);

}  // namespace tpcool::cooling
