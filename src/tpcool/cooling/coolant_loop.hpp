#pragma once
/// \file coolant_loop.hpp
/// \brief Secondary (water) loop accounting between the thermosyphon
///        condensers and the rack chiller.

namespace tpcool::cooling {

/// One water branch through a thermosyphon condenser.
struct CoolantBranch {
  double flow_kg_h = 7.0;     ///< Valve-controlled branch flow.
  double heat_load_w = 0.0;   ///< Heat picked up from the condenser.
};

/// Return (outlet) temperature of a branch fed at `supply_c` [°C].
[[nodiscard]] double branch_return_c(const CoolantBranch& branch,
                                     double supply_c);

/// Mixed return temperature of several parallel branches fed at `supply_c`.
/// (Flow-weighted mix; branches with zero flow are ignored.)
[[nodiscard]] double mixed_return_c(const CoolantBranch* branches,
                                    unsigned count, double supply_c);

/// Total water flow of several branches [kg/h].
[[nodiscard]] double total_flow_kg_h(const CoolantBranch* branches,
                                     unsigned count);

}  // namespace tpcool::cooling
