#include "tpcool/cooling/chiller.hpp"

#include "tpcool/materials/water.hpp"
#include "tpcool/util/error.hpp"
#include "tpcool/util/interp.hpp"

namespace tpcool::cooling {

double thermal_lift_power_w(double flow_kg_h, double delta_t_k,
                            double water_temp_c) {
  TPCOOL_REQUIRE(flow_kg_h >= 0.0, "negative water flow");
  TPCOOL_REQUIRE(delta_t_k >= 0.0, "negative thermal lift");
  return materials::water_capacity_rate_w_k(flow_kg_h, water_temp_c) *
         delta_t_k;
}

double ChillerModel::cop(double setpoint_c) const {
  TPCOOL_REQUIRE(second_law_eff > 0.0 && second_law_eff <= 1.0,
                 "second-law efficiency outside (0, 1]");
  const double lift = ambient_c - setpoint_c + approach_k;
  if (lift <= 0.0) return max_cop;  // warmer than ambient: free cooling
  const double carnot = (setpoint_c + 273.15) / lift;
  return util::clamp(second_law_eff * carnot, 0.5, max_cop);
}

double ChillerModel::electrical_power_w(double q_w, double setpoint_c) const {
  TPCOOL_REQUIRE(q_w >= 0.0, "negative heat load");
  return q_w / cop(setpoint_c) + pump_overhead_w;
}

}  // namespace tpcool::cooling
