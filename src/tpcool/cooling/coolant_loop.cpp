#include "tpcool/cooling/coolant_loop.hpp"

#include "tpcool/materials/water.hpp"
#include "tpcool/util/error.hpp"

namespace tpcool::cooling {

double branch_return_c(const CoolantBranch& branch, double supply_c) {
  TPCOOL_REQUIRE(branch.flow_kg_h > 0.0, "branch needs positive flow");
  TPCOOL_REQUIRE(branch.heat_load_w >= 0.0, "negative heat load");
  const double c_w =
      materials::water_capacity_rate_w_k(branch.flow_kg_h, supply_c);
  return supply_c + branch.heat_load_w / c_w;
}

double mixed_return_c(const CoolantBranch* branches, unsigned count,
                      double supply_c) {
  TPCOOL_REQUIRE(branches != nullptr && count > 0, "no branches");
  double flow_sum = 0.0;
  double weighted = 0.0;
  for (unsigned i = 0; i < count; ++i) {
    if (branches[i].flow_kg_h <= 0.0) continue;
    flow_sum += branches[i].flow_kg_h;
    weighted += branches[i].flow_kg_h * branch_return_c(branches[i], supply_c);
  }
  TPCOOL_REQUIRE(flow_sum > 0.0, "all branches have zero flow");
  return weighted / flow_sum;
}

double total_flow_kg_h(const CoolantBranch* branches, unsigned count) {
  TPCOOL_REQUIRE(branches != nullptr, "no branches");
  double sum = 0.0;
  for (unsigned i = 0; i < count; ++i) sum += branches[i].flow_kg_h;
  return sum;
}

}  // namespace tpcool::cooling
