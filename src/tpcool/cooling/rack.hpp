#pragma once
/// \file rack.hpp
/// \brief Rack-level coolant coordination: one chiller per rack means every
///        thermosyphon shares the same water supply temperature (§V); the
///        rack supply must satisfy the most demanding server.

#include <vector>

#include "tpcool/cooling/chiller.hpp"
#include "tpcool/cooling/coolant_loop.hpp"

namespace tpcool::cooling {

/// Cooling demand of one server as seen by the rack loop.
struct ServerDemand {
  double heat_load_w = 0.0;          ///< Condenser heat load.
  double max_supply_temp_c = 30.0;   ///< Highest water temp keeping TCASE ok.
  double flow_kg_h = 7.0;            ///< Valve setting.
};

/// Aggregated rack cooling state.
struct RackCoolingState {
  double supply_temp_c = 0.0;   ///< Shared setpoint (min over servers).
  double return_temp_c = 0.0;   ///< Mixed return to the chiller.
  double total_flow_kg_h = 0.0;
  double total_heat_w = 0.0;
  double chiller_lift_power_w = 0.0;  ///< Paper Eq. (1) accounting.
  double chiller_electrical_w = 0.0;  ///< COP-model electrical power.
};

/// The default ceiling on a rack's shared water setpoint.
inline constexpr double kDefaultMaxSetpointC = 45.0;

/// Compute the shared-loop state for a set of server demands.
/// The supply setpoint is the minimum of the per-server maxima (every
/// thermosyphon must stay feasible), never above `max_setpoint_c`.
[[nodiscard]] RackCoolingState solve_rack_cooling(
    const std::vector<ServerDemand>& demands, const ChillerModel& chiller,
    double max_setpoint_c = kDefaultMaxSetpointC);

/// Compute the shared-loop state at a *forced* setpoint (a fleet
/// controller's biased operating point).  Same downstream arithmetic as
/// `solve_rack_cooling` — forcing the natural setpoint reproduces its
/// result bit for bit.  The caller owns feasibility: a setpoint above a
/// server's `max_supply_temp_c` is accepted and simply runs that server
/// hot (the fleet layer counts the violation).
[[nodiscard]] RackCoolingState solve_rack_cooling_at(
    const std::vector<ServerDemand>& demands, const ChillerModel& chiller,
    double setpoint_c);

}  // namespace tpcool::cooling
