#include "tpcool/cooling/rack.hpp"

#include <algorithm>

#include "tpcool/util/error.hpp"

namespace tpcool::cooling {

RackCoolingState solve_rack_cooling(const std::vector<ServerDemand>& demands,
                                    const ChillerModel& chiller,
                                    double max_setpoint_c) {
  TPCOOL_REQUIRE(!demands.empty(), "rack has no servers");
  double setpoint_c = max_setpoint_c;
  for (const ServerDemand& d : demands) {
    setpoint_c = std::min(setpoint_c, d.max_supply_temp_c);
  }
  return solve_rack_cooling_at(demands, chiller, setpoint_c);
}

RackCoolingState solve_rack_cooling_at(const std::vector<ServerDemand>& demands,
                                       const ChillerModel& chiller,
                                       double setpoint_c) {
  TPCOOL_REQUIRE(!demands.empty(), "rack has no servers");
  RackCoolingState state;

  state.supply_temp_c = setpoint_c;
  for (const ServerDemand& d : demands) {
    TPCOOL_REQUIRE(d.flow_kg_h > 0.0, "server branch needs positive flow");
  }

  std::vector<CoolantBranch> branches;
  branches.reserve(demands.size());
  for (const ServerDemand& d : demands) {
    branches.push_back({d.flow_kg_h, d.heat_load_w});
    state.total_flow_kg_h += d.flow_kg_h;
    state.total_heat_w += d.heat_load_w;
  }
  state.return_temp_c = mixed_return_c(branches.data(),
                                       static_cast<unsigned>(branches.size()),
                                       state.supply_temp_c);

  state.chiller_lift_power_w = thermal_lift_power_w(
      state.total_flow_kg_h, state.return_temp_c - state.supply_temp_c,
      state.return_temp_c);
  state.chiller_electrical_w =
      chiller.electrical_power_w(state.total_heat_w, state.supply_temp_c);
  return state;
}

}  // namespace tpcool::cooling
