#pragma once
/// \file cold_plate.hpp
/// \brief Single-phase liquid cold plate baseline (DCLC-class, the paper's
///        related work [6][13]): high mass flow, pumping power, no phase
///        change. Used by the cooling-technology comparison.
///
/// Model: a micro-channel cold plate with a convective conductance that
/// grows with coolant flow^0.8 and a hydraulic pumping power that grows with
/// flow³ (Δp ∝ flow², P = Δp·V̇). Unlike the thermosyphon, heat pickup also
/// warms the coolant along the plate (sensible, not latent), which raises
/// the effective sink temperature at low flows — the reason single-phase
/// cooling needs high mass flow rates (paper §II-A).

namespace tpcool::cooling {

/// Cold-plate characterization.
struct ColdPlateDesign {
  double base_resistance_k_w = 0.02;  ///< Plate conduction resistance.
  /// Convective conductance at nominal flow [W/K].
  double nominal_conductance_w_k = 12.0;
  double nominal_flow_kg_h = 60.0;    ///< Single-phase needs ~10x the
                                      ///  thermosyphon's water flow.
  double nominal_pump_power_w = 8.0;  ///< Hydraulic+motor at nominal flow.
  double min_flow_frac = 0.1;
  double max_flow_frac = 2.0;
};

/// Operating state at a flow fraction.
struct ColdPlateState {
  double flow_frac = 1.0;
  double flow_kg_h = 0.0;
  double conductance_w_k = 0.0;
  double pump_power_w = 0.0;
};

[[nodiscard]] ColdPlateState cold_plate_at(const ColdPlateDesign& design,
                                           double flow_frac);

/// Case temperature [°C]: coolant-inlet temperature + sensible coolant rise
/// (half, mid-plate average) + film and conduction drops.
[[nodiscard]] double cold_plate_case_c(const ColdPlateState& state,
                                       double heat_w, double coolant_in_c);

/// Minimum flow fraction keeping TCASE at/below the limit, or a value above
/// max_flow_frac when infeasible.
[[nodiscard]] double required_flow(const ColdPlateDesign& design,
                                   double heat_w, double coolant_in_c,
                                   double tcase_limit_c);

}  // namespace tpcool::cooling
