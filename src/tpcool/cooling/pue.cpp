#include "tpcool/cooling/pue.hpp"

namespace tpcool::cooling {

double pue(const FacilityPower& power) {
  TPCOOL_REQUIRE(power.it_w > 0.0, "PUE needs positive IT power");
  TPCOOL_REQUIRE(power.chiller_w >= 0.0 && power.pumps_fans_w >= 0.0 &&
                     power.distribution_w >= 0.0,
                 "negative facility component");
  return power.total_w() / power.it_w;
}

double distribution_loss_w(double it_w, double loss_fraction) {
  TPCOOL_REQUIRE(it_w >= 0.0, "negative IT power");
  TPCOOL_REQUIRE(loss_fraction >= 0.0 && loss_fraction < 1.0,
                 "loss fraction outside [0, 1)");
  return it_w * loss_fraction;
}

double cooling_fraction(const FacilityPower& power) {
  TPCOOL_REQUIRE(power.total_w() > 0.0, "empty facility");
  return (power.chiller_w + power.pumps_fans_w) / power.total_w();
}

}  // namespace tpcool::cooling
