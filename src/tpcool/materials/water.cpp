#include "tpcool/materials/water.hpp"

#include <cmath>

#include "tpcool/util/interp.hpp"

namespace tpcool::materials {

WaterProperties water_at(double temperature_c) {
  const double t = tpcool::util::clamp(temperature_c, 5.0, 60.0);
  WaterProperties p{};
  // Linear fits to IAPWS values over 5–60 °C (max error < 1 %).
  p.density_kg_l = 1.0002 - 2.8e-4 * (t - 5.0);
  p.specific_heat_j_kgk = 4200.0 - 0.6 * (t - 5.0);
  p.conductivity_w_mk = 0.571 + 1.6e-3 * (t - 5.0);
  p.viscosity_pa_s = 1.30e-3 * std::exp(-0.02 * (t - 10.0));
  if (p.viscosity_pa_s < 4.6e-4) p.viscosity_pa_s = 4.6e-4;
  return p;
}

double water_capacity_rate_w_k(double flow_kg_h, double temperature_c) {
  const WaterProperties p = water_at(temperature_c);
  return kg_per_hour_to_kg_per_s(flow_kg_h) * p.specific_heat_j_kgk;
}

}  // namespace tpcool::materials
