#pragma once
/// \file solid.hpp
/// \brief Solid material properties for the package thermal stack.
///
/// Values are room-temperature bulk properties; the compact thermal model
/// treats them as temperature-independent (the 25–90 °C range of interest
/// changes silicon conductivity by <15 %, well inside the model's accuracy).

#include <string>

namespace tpcool::materials {

/// Isotropic solid material.
struct SolidMaterial {
  std::string name;
  double conductivity_w_mk = 0.0;    ///< Thermal conductivity k [W/(m·K)].
  double density_kg_m3 = 0.0;        ///< Density ρ [kg/m³].
  double specific_heat_j_kgk = 0.0;  ///< Specific heat c_p [J/(kg·K)].

  /// Volumetric heat capacity ρ·c_p [J/(m³·K)].
  [[nodiscard]] double volumetric_heat_capacity() const {
    return density_kg_m3 * specific_heat_j_kgk;
  }
};

/// Bulk silicon (die).
[[nodiscard]] const SolidMaterial& silicon();

/// Copper (integrated heat spreader, evaporator base).
[[nodiscard]] const SolidMaterial& copper();

/// High-performance thermal interface material (die–IHS, TIM1-class).
[[nodiscard]] const SolidMaterial& tim_high_performance();

/// Standard thermal grease (IHS–evaporator, TIM2-class).
[[nodiscard]] const SolidMaterial& tim_grease();

/// Organic package substrate (build-up laminate).
[[nodiscard]] const SolidMaterial& package_substrate();

/// Low-conductivity filler representing the air/underfill gap that surrounds
/// the die underneath the heat spreader.
[[nodiscard]] const SolidMaterial& gap_filler();

}  // namespace tpcool::materials
