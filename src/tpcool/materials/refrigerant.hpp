#pragma once
/// \file refrigerant.hpp
/// \brief Refrigerant property package for the two-phase thermosyphon model.
///
/// The paper charges the thermosyphon with R236fa (filling ratio 55 %); the
/// design-space ablation also evaluates R134a and R245fa.  Properties are
/// smooth engineering correlations fitted to tabulated saturation data over
/// 0–90 °C:
///   - saturation pressure: Antoine equation fitted through three anchors,
///   - latent heat and surface tension: Watson-type critical scaling,
///   - liquid density/viscosity: linear fits,
///   - vapor density: real-gas-corrected ideal gas.
/// Accuracy is a few percent across the operating range, which is well below
/// the sensitivity of the system-level results (see DESIGN.md §1).

#include <string>

namespace tpcool::materials {

/// Anchor data defining a refrigerant; see `r236fa()` for an example.
struct RefrigerantSpec {
  std::string name;
  double molar_mass_g_mol;    ///< M [g/mol], used by the Cooper correlation.
  double critical_temp_c;     ///< T_crit [°C].
  double critical_pressure_pa;///< p_crit [Pa].
  /// Saturation-pressure anchors (T [°C], p [Pa]) for the Antoine fit.
  double anchor_t_c[3];
  double anchor_p_pa[3];
  double latent_heat_25c_j_kg;     ///< h_fg at 25 °C [J/kg].
  double liquid_density_25c_kg_m3; ///< ρ_l at 25 °C [kg/m³].
  double liquid_density_slope;     ///< dρ_l/dT [kg/(m³·K)] (negative).
  double liquid_viscosity_25c_pa_s;///< μ_l at 25 °C [Pa·s].
  double liquid_conductivity_w_mk; ///< k_l [W/(m·K)].
  double liquid_cp_j_kgk;          ///< c_p,l [J/(kg·K)].
  double surface_tension_25c_n_m;  ///< σ at 25 °C [N/m].
};

/// Saturated-fluid property evaluator.  Thread-safe after construction.
class Refrigerant {
 public:
  explicit Refrigerant(const RefrigerantSpec& spec);

  [[nodiscard]] const std::string& name() const noexcept { return spec_.name; }
  [[nodiscard]] double molar_mass_g_mol() const noexcept {
    return spec_.molar_mass_g_mol;
  }
  [[nodiscard]] double critical_temp_c() const noexcept {
    return spec_.critical_temp_c;
  }
  [[nodiscard]] double critical_pressure_pa() const noexcept {
    return spec_.critical_pressure_pa;
  }

  /// Saturation pressure [Pa] at temperature [°C]; valid 0 °C .. T_crit−10.
  [[nodiscard]] double saturation_pressure_pa(double t_c) const;

  /// Saturation temperature [°C] at pressure [Pa] (inverse of the above).
  [[nodiscard]] double saturation_temperature_c(double p_pa) const;

  /// Reduced pressure p_sat/p_crit at temperature [°C].
  [[nodiscard]] double reduced_pressure(double t_c) const;

  /// Latent heat of vaporization [J/kg] at saturation temperature [°C]
  /// (Watson scaling anchored at 25 °C).
  [[nodiscard]] double latent_heat_j_kg(double t_c) const;

  /// Saturated liquid density [kg/m³].
  [[nodiscard]] double liquid_density_kg_m3(double t_c) const;

  /// Saturated vapor density [kg/m³] (real-gas-corrected ideal gas).
  [[nodiscard]] double vapor_density_kg_m3(double t_c) const;

  /// Saturated liquid dynamic viscosity [Pa·s].
  [[nodiscard]] double liquid_viscosity_pa_s(double t_c) const;

  /// Saturated liquid thermal conductivity [W/(m·K)].
  [[nodiscard]] double liquid_conductivity_w_mk(double t_c) const;

  /// Saturated liquid specific heat [J/(kg·K)].
  [[nodiscard]] double liquid_cp_j_kgk(double t_c) const;

  /// Surface tension [N/m] (critical scaling, exponent 1.26).
  [[nodiscard]] double surface_tension_n_m(double t_c) const;

 private:
  RefrigerantSpec spec_;
  // Antoine coefficients: log10(p[Pa]) = a_ - b_ / (T[°C] + c_).
  double a_ = 0.0, b_ = 0.0, c_ = 0.0;
};

/// R236fa (hexafluoropropane) — the refrigerant selected by the paper.
[[nodiscard]] const Refrigerant& r236fa();

/// R134a — higher-pressure alternative evaluated in the design ablation.
[[nodiscard]] const Refrigerant& r134a();

/// R245fa — lower-pressure alternative evaluated in the design ablation.
[[nodiscard]] const Refrigerant& r245fa();

}  // namespace tpcool::materials
