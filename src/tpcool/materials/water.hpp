#pragma once
/// \file water.hpp
/// \brief Liquid-water properties for the condenser coolant loop and the
///        chiller power accounting (paper Eq. 1).

namespace tpcool::materials {

/// Liquid water properties; mild linear temperature dependence fitted over
/// 5–60 °C, which covers every coolant operating point in the paper.
struct WaterProperties {
  double density_kg_l;          ///< ρ [kg/L] (paper Eq. 1 uses litres).
  double specific_heat_j_kgk;   ///< c_w [J/(kg·K)].
  double conductivity_w_mk;     ///< k [W/(m·K)].
  double viscosity_pa_s;        ///< μ [Pa·s].
};

/// Properties at a bulk temperature [°C]; clamped to the 5–60 °C fit range.
[[nodiscard]] WaterProperties water_at(double temperature_c);

/// Convert a mass flow in kg/h (the paper's unit) to kg/s.
[[nodiscard]] constexpr double kg_per_hour_to_kg_per_s(double kg_h) {
  return kg_h / 3600.0;
}

/// Heat-capacity rate ṁ·c_p [W/K] for a water stream given flow in kg/h.
[[nodiscard]] double water_capacity_rate_w_k(double flow_kg_h,
                                             double temperature_c);

}  // namespace tpcool::materials
