#include "tpcool/materials/solid.hpp"

namespace tpcool::materials {

const SolidMaterial& silicon() {
  static const SolidMaterial m{"silicon", 130.0, 2330.0, 712.0};
  return m;
}

const SolidMaterial& copper() {
  static const SolidMaterial m{"copper", 390.0, 8960.0, 385.0};
  return m;
}

const SolidMaterial& tim_high_performance() {
  // Polymer TIM1 under the IHS (effective k including contact resistances).
  static const SolidMaterial m{"tim1", 3.0, 2600.0, 900.0};
  return m;
}

const SolidMaterial& tim_grease() {
  static const SolidMaterial m{"tim2-grease", 6.0, 2500.0, 800.0};
  return m;
}

const SolidMaterial& package_substrate() {
  static const SolidMaterial m{"substrate", 15.0, 1900.0, 1100.0};
  return m;
}

const SolidMaterial& gap_filler() {
  // Effective property of the die-adjacent air/sealant region: keeps lateral
  // heat from bypassing the die corner in the model, as in reality.
  static const SolidMaterial m{"gap-filler", 0.6, 1200.0, 1000.0};
  return m;
}

}  // namespace tpcool::materials
