#include "tpcool/materials/refrigerant.hpp"

#include <cmath>

#include "tpcool/util/error.hpp"
#include "tpcool/util/rootfind.hpp"

namespace tpcool::materials {

namespace {
constexpr double kGasConstant = 8.314462618;  // J/(mol·K)

double celsius_to_kelvin(double t_c) { return t_c + 273.15; }
}  // namespace

Refrigerant::Refrigerant(const RefrigerantSpec& spec) : spec_(spec) {
  TPCOOL_REQUIRE(spec.molar_mass_g_mol > 0.0, "molar mass must be positive");
  TPCOOL_REQUIRE(spec.critical_pressure_pa > 0.0,
                 "critical pressure must be positive");
  // Fit Antoine log10(p) = a - b/(t + c) through the three anchors by
  // bisecting on c; a and b then follow linearly from the first two anchors.
  const double t1 = spec.anchor_t_c[0], t2 = spec.anchor_t_c[1],
               t3 = spec.anchor_t_c[2];
  const double y1 = std::log10(spec.anchor_p_pa[0]),
               y2 = std::log10(spec.anchor_p_pa[1]),
               y3 = std::log10(spec.anchor_p_pa[2]);
  TPCOOL_REQUIRE(t1 < t2 && t2 < t3, "anchors must have increasing T");
  TPCOOL_REQUIRE(y1 < y2 && y2 < y3, "anchors must have increasing p");
  const auto residual = [&](double c) {
    // With c fixed: y = a - b/(t+c). Two-point solve for a, b.
    const double b = (y2 - y1) / (1.0 / (t1 + c) - 1.0 / (t2 + c));
    const double a = y1 + b / (t1 + c);
    return (a - b / (t3 + c)) - y3;
  };
  c_ = tpcool::util::bisect(residual, 30.0, 2000.0,
                            {.tolerance = 1e-8, .max_iterations = 300});
  b_ = (y2 - y1) / (1.0 / (t1 + c_) - 1.0 / (t2 + c_));
  a_ = y1 + b_ / (t1 + c_);
  TPCOOL_ENSURE(b_ > 0.0, "Antoine fit produced non-physical coefficients");
}

double Refrigerant::saturation_pressure_pa(double t_c) const {
  TPCOOL_REQUIRE(t_c > -40.0 && t_c < spec_.critical_temp_c,
                 "temperature outside saturation-curve validity");
  return std::pow(10.0, a_ - b_ / (t_c + c_));
}

double Refrigerant::saturation_temperature_c(double p_pa) const {
  TPCOOL_REQUIRE(p_pa > 0.0, "pressure must be positive");
  // Invert the Antoine fit in closed form.
  const double y = std::log10(p_pa);
  TPCOOL_REQUIRE(y < a_, "pressure above Antoine-fit validity");
  return b_ / (a_ - y) - c_;
}

double Refrigerant::reduced_pressure(double t_c) const {
  return saturation_pressure_pa(t_c) / spec_.critical_pressure_pa;
}

double Refrigerant::latent_heat_j_kg(double t_c) const {
  const double tr = celsius_to_kelvin(t_c) /
                    celsius_to_kelvin(spec_.critical_temp_c);
  const double tr25 = celsius_to_kelvin(25.0) /
                      celsius_to_kelvin(spec_.critical_temp_c);
  TPCOOL_REQUIRE(tr < 1.0, "temperature at/above critical point");
  // Watson relation: h_fg ∝ (1 - T_r)^0.38.
  return spec_.latent_heat_25c_j_kg *
         std::pow((1.0 - tr) / (1.0 - tr25), 0.38);
}

double Refrigerant::liquid_density_kg_m3(double t_c) const {
  const double rho = spec_.liquid_density_25c_kg_m3 +
                     spec_.liquid_density_slope * (t_c - 25.0);
  TPCOOL_ENSURE(rho > 0.0, "liquid density fit left validity range");
  return rho;
}

double Refrigerant::vapor_density_kg_m3(double t_c) const {
  const double p = saturation_pressure_pa(t_c);
  const double t_k = celsius_to_kelvin(t_c);
  const double m_kg_mol = spec_.molar_mass_g_mol * 1e-3;
  // Ideal gas with a first-order compressibility correction; Z ≈ 1 - 0.4·p_r
  // reproduces tabulated saturated-vapor densities of HFCs within ~8 %.
  const double pr = p / spec_.critical_pressure_pa;
  const double z = 1.0 - 0.4 * pr;
  TPCOOL_ENSURE(z > 0.2, "vapor compressibility correction out of range");
  return p * m_kg_mol / (z * kGasConstant * t_k);
}

double Refrigerant::liquid_viscosity_pa_s(double t_c) const {
  // Mild exponential thinning with temperature, ~1 %/K.
  return spec_.liquid_viscosity_25c_pa_s * std::exp(-0.011 * (t_c - 25.0));
}

double Refrigerant::liquid_conductivity_w_mk(double t_c) const {
  // HFC liquid conductivity decreases slowly with temperature.
  return spec_.liquid_conductivity_w_mk * (1.0 - 2.4e-3 * (t_c - 25.0));
}

double Refrigerant::liquid_cp_j_kgk(double t_c) const {
  // Weak increase toward the critical point.
  return spec_.liquid_cp_j_kgk * (1.0 + 2.0e-3 * (t_c - 25.0));
}

double Refrigerant::surface_tension_n_m(double t_c) const {
  const double tr = celsius_to_kelvin(t_c) /
                    celsius_to_kelvin(spec_.critical_temp_c);
  const double tr25 = celsius_to_kelvin(25.0) /
                      celsius_to_kelvin(spec_.critical_temp_c);
  TPCOOL_REQUIRE(tr < 1.0, "temperature at/above critical point");
  return spec_.surface_tension_25c_n_m *
         std::pow((1.0 - tr) / (1.0 - tr25), 1.26);
}

const Refrigerant& r236fa() {
  static const Refrigerant fluid(RefrigerantSpec{
      .name = "R236fa",
      .molar_mass_g_mol = 152.04,
      .critical_temp_c = 124.9,
      .critical_pressure_pa = 3.20e6,
      .anchor_t_c = {0.0, 25.0, 60.0},
      .anchor_p_pa = {1.07e5, 2.72e5, 6.87e5},
      .latent_heat_25c_j_kg = 145.0e3,
      .liquid_density_25c_kg_m3 = 1360.0,
      .liquid_density_slope = -3.0,
      .liquid_viscosity_25c_pa_s = 3.0e-4,
      .liquid_conductivity_w_mk = 0.075,
      .liquid_cp_j_kgk = 1260.0,
      .surface_tension_25c_n_m = 0.0105,
  });
  return fluid;
}

const Refrigerant& r134a() {
  static const Refrigerant fluid(RefrigerantSpec{
      .name = "R134a",
      .molar_mass_g_mol = 102.03,
      .critical_temp_c = 101.1,
      .critical_pressure_pa = 4.059e6,
      .anchor_t_c = {0.0, 25.0, 60.0},
      .anchor_p_pa = {2.93e5, 6.65e5, 1.682e6},
      .latent_heat_25c_j_kg = 177.0e3,
      .liquid_density_25c_kg_m3 = 1207.0,
      .liquid_density_slope = -3.4,
      .liquid_viscosity_25c_pa_s = 1.95e-4,
      .liquid_conductivity_w_mk = 0.081,
      .liquid_cp_j_kgk = 1425.0,
      .surface_tension_25c_n_m = 0.0081,
  });
  return fluid;
}

const Refrigerant& r245fa() {
  static const Refrigerant fluid(RefrigerantSpec{
      .name = "R245fa",
      .molar_mass_g_mol = 134.05,
      .critical_temp_c = 154.0,
      .critical_pressure_pa = 3.65e6,
      .anchor_t_c = {0.0, 25.0, 60.0},
      .anchor_p_pa = {5.4e4, 1.49e5, 4.64e5},
      .latent_heat_25c_j_kg = 190.0e3,
      .liquid_density_25c_kg_m3 = 1338.0,
      .liquid_density_slope = -2.6,
      .liquid_viscosity_25c_pa_s = 4.0e-4,
      .liquid_conductivity_w_mk = 0.087,
      .liquid_cp_j_kgk = 1322.0,
      .surface_tension_25c_n_m = 0.0139,
  });
  return fluid;
}

}  // namespace tpcool::materials
