#include "tpcool/workload/configuration.hpp"

#include <sstream>

#include "tpcool/power/core_power.hpp"
#include "tpcool/util/error.hpp"

namespace tpcool::workload {

std::string Configuration::label() const {
  std::ostringstream os;
  os << '(' << cores << ',' << total_threads() << ',' << freq_ghz << ')';
  return os.str();
}

Configuration baseline_configuration() { return {8, 2, 3.2}; }

std::vector<Configuration> configuration_space(int max_cores) {
  TPCOOL_REQUIRE(max_cores >= 1, "need at least one core");
  std::vector<Configuration> space;
  for (int nc = 1; nc <= max_cores; ++nc) {
    for (int tpc : {1, 2}) {
      for (const double f : power::core_frequency_levels()) {
        space.push_back({nc, tpc, f});
      }
    }
  }
  return space;
}

std::vector<Configuration> fig3_configurations() {
  // (Nc, Nt_total, f): (2,4), (4,4), (4,8), (8,8), (8,16) @ fmax.
  return {{2, 2, 3.2}, {4, 1, 3.2}, {4, 2, 3.2}, {8, 1, 3.2}, {8, 2, 3.2}};
}

const std::vector<QoSRequirement>& qos_levels() {
  static const std::vector<QoSRequirement> levels{{1.0}, {2.0}, {3.0}};
  return levels;
}

}  // namespace tpcool::workload
