#include "tpcool/workload/benchmark.hpp"

#include "tpcool/util/error.hpp"

namespace tpcool::workload {

const std::vector<BenchmarkProfile>& parsec_benchmarks() {
  // Parameters follow the published PARSEC characterization literature:
  // swaptions/blackscholes scale nearly linearly and are compute-bound;
  // canneal/streamcluster are memory-bound with poor SMT yield; x264 and
  // facesim draw the most core power. c_eff is calibrated to the paper's
  // 40.5–79.3 W package-power span (asserted in power tests).
  static const std::vector<BenchmarkProfile> list{
      //        name        c_eff  smt   alpha  gamma  mem   d_i[µs]
      {"blackscholes", 0.33, 1.12, 0.010, 0.58, 0.10, 10.0},
      {"bodytrack",    0.40, 1.20, 0.050, 0.60, 0.30,  2.0},
      {"canneal",      0.30, 1.05, 0.050, 0.55, 0.80, 10.0},
      {"dedup",        0.38, 1.20, 0.080, 0.58, 0.60, 10.0},
      {"facesim",      0.48, 1.15, 0.040, 0.62, 0.40,  0.0},
      {"ferret",       0.42, 1.25, 0.030, 0.63, 0.50,  2.0},
      {"fluidanimate", 0.44, 1.15, 0.060, 0.60, 0.45,  2.0},
      {"freqmine",     0.46, 1.20, 0.050, 0.61, 0.35, 10.0},
      {"raytrace",     0.40, 1.20, 0.040, 0.64, 0.25,  0.0},
      {"streamcluster",0.31, 1.05, 0.030, 0.55, 0.85, 10.0},
      {"swaptions",    0.45, 1.28, 0.008, 0.58, 0.05, 10.0},
      {"vips",         0.43, 1.20, 0.040, 0.62, 0.40,  2.0},
      {"x264",         0.52, 1.25, 0.060, 0.60, 0.30,  2.0},
  };
  return list;
}

const BenchmarkProfile& find_benchmark(const std::string& name) {
  for (const BenchmarkProfile& b : parsec_benchmarks()) {
    if (b.name == name) return b;
  }
  TPCOOL_REQUIRE(false, "unknown benchmark '" + name + "'");
  return parsec_benchmarks().front();  // unreachable
}

const BenchmarkProfile& worst_case_benchmark() {
  // Highest c_eff·smt_yield product ⇒ highest full-load package power.
  const BenchmarkProfile* worst = &parsec_benchmarks().front();
  for (const BenchmarkProfile& b : parsec_benchmarks()) {
    if (b.c_eff_w_per_ghz_v2 * b.smt_yield >
        worst->c_eff_w_per_ghz_v2 * worst->smt_yield) {
      worst = &b;
    }
  }
  return *worst;
}

}  // namespace tpcool::workload
