#pragma once
/// \file performance_model.hpp
/// \brief Execution-time model: Amdahl scaling with an SMT yield and a
///        memory-intensity-dependent frequency sensitivity.
///
/// Normalized execution time (the paper's QoS metric, Fig. 3):
///   T(cfg)/T(base) = [S(W_base)/S(W_cfg)] / F(f)
/// with S(W) = 1/(α + (1−α)/W^γ), W = Nc·(smt_yield if 2 threads/core),
/// and F(f) = (1−m)·(f/fmax) + m·(f/fmax)^0.25.

#include "tpcool/workload/benchmark.hpp"
#include "tpcool/workload/configuration.hpp"

namespace tpcool::workload {

/// Effective parallel workers of a configuration.
[[nodiscard]] double effective_workers(const BenchmarkProfile& bench,
                                       const Configuration& config);

/// Amdahl speedup at W effective workers (sub-linear via γ).
[[nodiscard]] double parallel_speedup(const BenchmarkProfile& bench,
                                      double workers);

/// Relative execution speed at frequency f (1.0 at fmax); memory-bound
/// benchmarks are less sensitive to core frequency.
[[nodiscard]] double frequency_speed_factor(const BenchmarkProfile& bench,
                                            double freq_ghz);

/// Execution time normalized to the baseline configuration (exactly 1.0 for
/// the baseline itself; > 1 for any reduced configuration).
[[nodiscard]] double normalized_exec_time(const BenchmarkProfile& bench,
                                          const Configuration& config);

/// Per-core utilization for the power model: 1.0 with one thread per core,
/// the SMT yield with two (extra throughput costs proportional energy).
[[nodiscard]] double core_utilization(const BenchmarkProfile& bench,
                                      const Configuration& config);

}  // namespace tpcool::workload
