#include "tpcool/workload/profiler.hpp"

#include <algorithm>

#include "tpcool/util/error.hpp"

namespace tpcool::workload {

Profiler::Profiler(const power::PackagePowerModel& power_model)
    : power_model_(&power_model) {}

power::PackagePowerRequest Profiler::request_for(
    const BenchmarkProfile& bench, const Configuration& config,
    power::CState idle_state) const {
  TPCOOL_REQUIRE(
      config.cores <=
          static_cast<int>(power_model_->floorplan().core_count()),
      "configuration uses more cores than the CPU has");
  power::PackagePowerRequest req;
  req.active_cores.resize(static_cast<std::size_t>(config.cores));
  for (int i = 0; i < config.cores; ++i) req.active_cores[i] = i + 1;
  req.c_eff_w_per_ghz_v2 = bench.c_eff_w_per_ghz_v2;
  req.utilization = core_utilization(bench, config);
  req.freq_ghz = config.freq_ghz;
  req.idle_state = idle_state;
  req.llc_activity = bench.mem_intensity;
  return req;
}

std::vector<ConfigPoint> Profiler::profile(const BenchmarkProfile& bench,
                                           power::CState idle_state) const {
  const int max_cores =
      static_cast<int>(power_model_->floorplan().core_count());
  std::vector<ConfigPoint> points;
  for (const Configuration& config : configuration_space(max_cores)) {
    ConfigPoint p;
    p.config = config;
    p.breakdown =
        power_model_->breakdown(request_for(bench, config, idle_state));
    p.power_w = p.breakdown.total_w();
    p.norm_time = normalized_exec_time(bench, config);
    points.push_back(p);
  }
  return points;
}

std::vector<ConfigPoint> Profiler::profile_sorted_by_power(
    const BenchmarkProfile& bench, power::CState idle_state) const {
  std::vector<ConfigPoint> points = profile(bench, idle_state);
  std::sort(points.begin(), points.end(),
            [](const ConfigPoint& a, const ConfigPoint& b) {
              return a.power_w < b.power_w;
            });
  return points;
}

std::pair<double, double> Profiler::package_power_range(
    power::CState idle_state) const {
  double lo = 0.0, hi = 0.0;
  bool first = true;
  for (const BenchmarkProfile& bench : parsec_benchmarks()) {
    for (const ConfigPoint& p : profile(bench, idle_state)) {
      if (first || p.power_w < lo) lo = p.power_w;
      if (first || p.power_w > hi) hi = p.power_w;
      first = false;
    }
  }
  return {lo, hi};
}

}  // namespace tpcool::workload
