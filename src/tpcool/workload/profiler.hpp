#pragma once
/// \file profiler.hpp
/// \brief The offline profiling step of Algorithm 1: build the P (power) and
///        Q (QoS) vectors over the configuration space for a benchmark.

#include <vector>

#include "tpcool/power/package_power.hpp"
#include "tpcool/workload/benchmark.hpp"
#include "tpcool/workload/configuration.hpp"
#include "tpcool/workload/performance_model.hpp"

namespace tpcool::workload {

/// One profiled configuration: the paper's P(Nc,Nt,f) and Q(Nc,Nt,f).
struct ConfigPoint {
  Configuration config;
  double power_w = 0.0;          ///< Package power in this configuration.
  double norm_time = 0.0;        ///< Execution time / baseline.
  power::PackagePowerBreakdown breakdown;
};

/// Profiler bound to a package power model (the floorplan defines the core
/// count). The model must outlive the profiler.
class Profiler {
 public:
  explicit Profiler(const power::PackagePowerModel& power_model);

  /// Profile every configuration for a benchmark, with idle cores at
  /// `idle_state`. Power does not depend on *which* cores run, only on how
  /// many, so the profile is mapping-independent (as in the paper).
  [[nodiscard]] std::vector<ConfigPoint> profile(
      const BenchmarkProfile& bench, power::CState idle_state) const;

  /// Profile sorted ascending by power (the paper's Psort).
  [[nodiscard]] std::vector<ConfigPoint> profile_sorted_by_power(
      const BenchmarkProfile& bench, power::CState idle_state) const;

  /// Package power request for one (benchmark, configuration) pair.
  [[nodiscard]] power::PackagePowerRequest request_for(
      const BenchmarkProfile& bench, const Configuration& config,
      power::CState idle_state) const;

  /// Min/max package power across all benchmarks and configurations
  /// (paper §V: 40.5–79.3 W). Idle cores at `idle_state`.
  [[nodiscard]] std::pair<double, double> package_power_range(
      power::CState idle_state) const;

 private:
  const power::PackagePowerModel* power_model_;
};

}  // namespace tpcool::workload
