#pragma once
/// \file trace.hpp
/// \brief Workload phase traces: a timeline of (benchmark, QoS, duration)
///        phases driving the transient controller — the "different workload
///        performance requirements" the thermosyphon must adapt to at
///        runtime (§I, §VII).

#include <string>
#include <vector>

#include "tpcool/workload/benchmark.hpp"
#include "tpcool/workload/configuration.hpp"

namespace tpcool::workload {

/// One phase of a workload trace.
struct TracePhase {
  std::string benchmark;        ///< PARSEC benchmark name.
  QoSRequirement qos{2.0};
  double duration_s = 10.0;
};

/// A validated timeline of phases.
class WorkloadTrace {
 public:
  explicit WorkloadTrace(std::vector<TracePhase> phases);

  [[nodiscard]] const std::vector<TracePhase>& phases() const noexcept {
    return phases_;
  }
  [[nodiscard]] std::size_t phase_count() const noexcept {
    return phases_.size();
  }
  [[nodiscard]] double total_duration_s() const noexcept { return total_s_; }

  /// Phase active at absolute time t (clamped to the last phase).
  [[nodiscard]] const TracePhase& phase_at(double time_s) const;

  /// Index of the phase active at time t.
  [[nodiscard]] std::size_t phase_index_at(double time_s) const;

 private:
  std::vector<TracePhase> phases_;
  std::vector<double> end_times_;
  double total_s_ = 0.0;
};

/// A representative daily pattern: interactive bursts (tight QoS) between
/// batch stretches (relaxed QoS). Deterministic.
[[nodiscard]] WorkloadTrace make_daily_trace(double scale_duration_s = 10.0);

/// A thermal stress pattern: alternating worst-case and light phases, built
/// to exercise the runtime controller's emergency reactions.
[[nodiscard]] WorkloadTrace make_stress_trace(double scale_duration_s = 10.0);

}  // namespace tpcool::workload
