#pragma once
/// \file energy.hpp
/// \brief Energy accounting on top of the power and performance models:
///        energy per run, energy-delay product, and per-configuration
///        comparisons. Used to show that Algorithm 1's min-power selection
///        also wins on energy against thread packing at relaxed QoS.

#include "tpcool/workload/profiler.hpp"

namespace tpcool::workload {

/// Energy figures of one configuration for a benchmark, relative to the
/// baseline run (the model works in normalized time, so energies are in
/// "watt × baseline-seconds" units — ratios between configurations are
/// exact, absolute joules require the baseline wall-clock).
struct EnergyPoint {
  Configuration config;
  double power_w = 0.0;
  double norm_time = 0.0;
  double norm_energy = 0.0;  ///< power × norm_time (baseline-relative).
  double norm_edp = 0.0;     ///< energy × delay product.
};

/// Energy figures for a profiled configuration point.
[[nodiscard]] EnergyPoint energy_of(const ConfigPoint& point);

/// Energy figures over a full profile.
[[nodiscard]] std::vector<EnergyPoint> energy_profile(
    const std::vector<ConfigPoint>& profile);

/// The minimum-energy configuration meeting a QoS requirement.
/// Throws PreconditionError when no configuration qualifies.
[[nodiscard]] EnergyPoint min_energy_select(
    const std::vector<ConfigPoint>& profile, const QoSRequirement& qos);

/// Race-to-idle analysis: energy of running fast then sleeping at a given
/// C-state power for the remaining time, normalized against the slow run.
/// \param fast/slow profiled points; fast.norm_time must be <= slow's.
/// \param sleep_power_w package power while parked after the fast run.
[[nodiscard]] double race_to_idle_ratio(const ConfigPoint& fast,
                                        const ConfigPoint& slow,
                                        double sleep_power_w);

}  // namespace tpcool::workload
