#pragma once
/// \file benchmark.hpp
/// \brief Synthetic PARSEC 3.0 workload profiles.
///
/// The paper profiles the 13 PARSEC benchmarks on the physical Xeon with
/// RAPL (power) and wall-clock timing (QoS).  We replace the measurements
/// with a compact per-benchmark characterization — switching capacitance,
/// SMT yield, Amdahl serial fraction, scaling exponent, memory intensity —
/// calibrated so the published aggregates hold: package power spans
/// ≈ 40.5–79.3 W across all configurations (§V) and the normalized
/// execution times match the spread of Fig. 3.

#include <string>
#include <vector>

namespace tpcool::workload {

/// Per-benchmark model parameters.
struct BenchmarkProfile {
  std::string name;
  /// Effective switching capacitance [W/(GHz·V²)] per fully-used core.
  double c_eff_w_per_ghz_v2 = 0.45;
  /// Throughput multiplier of running 2 SMT threads on a core (≥ 1).
  double smt_yield = 1.2;
  /// Amdahl serial fraction α in [0, 1).
  double serial_fraction = 0.05;
  /// Sub-linear scaling exponent γ: speedup uses W^γ effective workers.
  double scaling_exponent = 0.62;
  /// Memory intensity m in [0, 1]: fraction of time insensitive to core f.
  double mem_intensity = 0.3;
  /// Largest scheduling latency the application tolerates [µs]; decides the
  /// deepest usable C-state for idle cores (paper §VII).
  double tolerable_latency_us = 10.0;
};

/// The 13 PARSEC 3.0 benchmarks evaluated by the paper (Fig. 3).
[[nodiscard]] const std::vector<BenchmarkProfile>& parsec_benchmarks();

/// Lookup by name; throws PreconditionError when unknown.
[[nodiscard]] const BenchmarkProfile& find_benchmark(const std::string& name);

/// The benchmark with the highest full-load package power — the worst case
/// that drives the thermosyphon design (§V).
[[nodiscard]] const BenchmarkProfile& worst_case_benchmark();

}  // namespace tpcool::workload
