#include "tpcool/workload/trace.hpp"

#include <algorithm>

#include "tpcool/util/error.hpp"

namespace tpcool::workload {

WorkloadTrace::WorkloadTrace(std::vector<TracePhase> phases)
    : phases_(std::move(phases)) {
  TPCOOL_REQUIRE(!phases_.empty(), "trace needs at least one phase");
  end_times_.reserve(phases_.size());
  for (const TracePhase& phase : phases_) {
    TPCOOL_REQUIRE(phase.duration_s > 0.0, "phase duration must be positive");
    TPCOOL_REQUIRE(phase.qos.factor >= 1.0, "QoS factor below 1x");
    (void)find_benchmark(phase.benchmark);  // validates the name
    total_s_ += phase.duration_s;
    end_times_.push_back(total_s_);
  }
}

std::size_t WorkloadTrace::phase_index_at(double time_s) const {
  TPCOOL_REQUIRE(time_s >= 0.0, "negative time");
  const auto it =
      std::upper_bound(end_times_.begin(), end_times_.end(), time_s);
  if (it == end_times_.end()) return phases_.size() - 1;
  return static_cast<std::size_t>(it - end_times_.begin());
}

const TracePhase& WorkloadTrace::phase_at(double time_s) const {
  return phases_[phase_index_at(time_s)];
}

WorkloadTrace make_daily_trace(double scale_duration_s) {
  TPCOOL_REQUIRE(scale_duration_s > 0.0, "scale must be positive");
  const double t = scale_duration_s;
  return WorkloadTrace({
      {"streamcluster", {3.0}, 2.0 * t},  // overnight batch
      {"x264", {1.0}, 1.0 * t},           // morning interactive burst
      {"ferret", {2.0}, 1.5 * t},         // daytime mixed
      {"facesim", {1.0}, 1.0 * t},        // latency-critical spike
      {"vips", {2.0}, 1.5 * t},           // afternoon mixed
      {"canneal", {3.0}, 2.0 * t},        // evening batch
  });
}

WorkloadTrace make_stress_trace(double scale_duration_s) {
  TPCOOL_REQUIRE(scale_duration_s > 0.0, "scale must be positive");
  const double t = scale_duration_s;
  return WorkloadTrace({
      {"x264", {1.0}, 1.5 * t},
      {"blackscholes", {3.0}, 0.5 * t},
      {"facesim", {1.0}, 1.5 * t},
      {"canneal", {3.0}, 0.5 * t},
      {"x264", {1.0}, 1.5 * t},
  });
}

}  // namespace tpcool::workload
