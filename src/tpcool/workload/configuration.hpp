#pragma once
/// \file configuration.hpp
/// \brief Workload execution configurations (Nc, Nt, f) and QoS levels.

#include <string>
#include <vector>

namespace tpcool::workload {

/// One execution configuration: number of cores, SMT threads per core, and
/// the core DVFS frequency (paper notation: (Nc, Nt, f) with Nt the total
/// thread count = cores × threads-per-core).
struct Configuration {
  int cores = 8;
  int threads_per_core = 2;  ///< 1 or 2 (paper Algorithm 1: Nt = {1, 2}).
  double freq_ghz = 3.2;

  [[nodiscard]] int total_threads() const { return cores * threads_per_core; }

  /// Paper-style label "(Nc,Nt,f)".
  [[nodiscard]] std::string label() const;

  [[nodiscard]] bool operator==(const Configuration&) const = default;
};

/// Reference configuration of the QoS baseline: native 8 cores, 16 threads,
/// maximum core and uncore frequency (§IV-B).
[[nodiscard]] Configuration baseline_configuration();

/// Full configuration space enumerated by Algorithm 1:
/// Nc ∈ {1..max_cores} × threads-per-core ∈ {1,2} × supported frequencies.
[[nodiscard]] std::vector<Configuration> configuration_space(
    int max_cores = 8);

/// The five configurations plotted in Fig. 3 (all at fmax).
[[nodiscard]] std::vector<Configuration> fig3_configurations();

/// QoS requirement: tolerated execution-time degradation factor w.r.t. the
/// baseline configuration (1x = no degradation, 2x, 3x — §IV-B).
struct QoSRequirement {
  double factor = 1.0;

  [[nodiscard]] bool satisfied_by(double normalized_exec_time) const {
    return normalized_exec_time <= factor + 1e-9;
  }
};

/// The three QoS levels evaluated in Table II.
[[nodiscard]] const std::vector<QoSRequirement>& qos_levels();

}  // namespace tpcool::workload
