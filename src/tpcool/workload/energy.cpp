#include "tpcool/workload/energy.hpp"

#include "tpcool/util/error.hpp"

namespace tpcool::workload {

EnergyPoint energy_of(const ConfigPoint& point) {
  EnergyPoint e;
  e.config = point.config;
  e.power_w = point.power_w;
  e.norm_time = point.norm_time;
  e.norm_energy = point.power_w * point.norm_time;
  e.norm_edp = e.norm_energy * point.norm_time;
  return e;
}

std::vector<EnergyPoint> energy_profile(
    const std::vector<ConfigPoint>& profile) {
  std::vector<EnergyPoint> out;
  out.reserve(profile.size());
  for (const ConfigPoint& p : profile) out.push_back(energy_of(p));
  return out;
}

EnergyPoint min_energy_select(const std::vector<ConfigPoint>& profile,
                              const QoSRequirement& qos) {
  TPCOOL_REQUIRE(!profile.empty(), "empty profile");
  const ConfigPoint* best = nullptr;
  double best_energy = 0.0;
  for (const ConfigPoint& p : profile) {
    if (!qos.satisfied_by(p.norm_time)) continue;
    const double e = p.power_w * p.norm_time;
    if (best == nullptr || e < best_energy) {
      best = &p;
      best_energy = e;
    }
  }
  TPCOOL_REQUIRE(best != nullptr, "no configuration satisfies the QoS");
  return energy_of(*best);
}

double race_to_idle_ratio(const ConfigPoint& fast, const ConfigPoint& slow,
                          double sleep_power_w) {
  TPCOOL_REQUIRE(fast.norm_time <= slow.norm_time,
                 "race-to-idle: 'fast' must not be slower than 'slow'");
  TPCOOL_REQUIRE(sleep_power_w >= 0.0, "negative sleep power");
  const double fast_energy =
      fast.power_w * fast.norm_time +
      sleep_power_w * (slow.norm_time - fast.norm_time);
  const double slow_energy = slow.power_w * slow.norm_time;
  TPCOOL_ENSURE(slow_energy > 0.0, "zero slow-run energy");
  return fast_energy / slow_energy;
}

}  // namespace tpcool::workload
