#include "tpcool/workload/performance_model.hpp"

#include <cmath>

#include "tpcool/power/core_power.hpp"
#include "tpcool/util/error.hpp"

namespace tpcool::workload {

namespace {
constexpr double kFmaxGhz = 3.2;
}

double effective_workers(const BenchmarkProfile& bench,
                         const Configuration& config) {
  TPCOOL_REQUIRE(config.cores >= 1, "configuration needs cores");
  TPCOOL_REQUIRE(config.threads_per_core == 1 || config.threads_per_core == 2,
                 "threads per core must be 1 or 2");
  const double smt = config.threads_per_core == 2 ? bench.smt_yield : 1.0;
  return static_cast<double>(config.cores) * smt;
}

double parallel_speedup(const BenchmarkProfile& bench, double workers) {
  TPCOOL_REQUIRE(workers >= 1.0, "need at least one worker");
  const double alpha = bench.serial_fraction;
  TPCOOL_REQUIRE(alpha >= 0.0 && alpha < 1.0, "serial fraction outside [0,1)");
  const double w_eff = std::pow(workers, bench.scaling_exponent);
  return 1.0 / (alpha + (1.0 - alpha) / w_eff);
}

double frequency_speed_factor(const BenchmarkProfile& bench, double freq_ghz) {
  TPCOOL_REQUIRE(power::is_supported_frequency(freq_ghz),
                 "unsupported DVFS frequency");
  const double r = freq_ghz / kFmaxGhz;
  const double m = bench.mem_intensity;
  TPCOOL_REQUIRE(m >= 0.0 && m <= 1.0, "memory intensity outside [0,1]");
  return (1.0 - m) * r + m * std::pow(r, 0.25);
}

double normalized_exec_time(const BenchmarkProfile& bench,
                            const Configuration& config) {
  const Configuration base = baseline_configuration();
  const double s_base = parallel_speedup(bench, effective_workers(bench, base));
  const double s_cfg =
      parallel_speedup(bench, effective_workers(bench, config));
  return (s_base / s_cfg) / frequency_speed_factor(bench, config.freq_ghz);
}

double core_utilization(const BenchmarkProfile& bench,
                        const Configuration& config) {
  return config.threads_per_core == 2 ? bench.smt_yield : 1.0;
}

}  // namespace tpcool::workload
