#pragma once
/// \file grid.hpp
/// \brief 3D finite-volume thermal model: conductance assembly and boundary
///        conditions over a StackModel.
///
/// Discretization: one cell per (ix, iy, layer); 7-point stencil with
/// harmonic-mean interface conductances (exactly the compact model family of
/// 3D-ICE / HotSpot).  Temperatures are in °C (the system is linear, so the
/// Kelvin offset cancels).

#include <cstddef>
#include <vector>

#include "tpcool/thermal/stack.hpp"
#include "tpcool/util/grid2d.hpp"
#include "tpcool/util/linear_solver.hpp"
#include "tpcool/util/stencil_operator.hpp"

namespace tpcool::thermal {

/// Convective boundary on the top surface: per-cell heat-transfer coefficient
/// and per-cell fluid temperature (the thermosyphon writes both).
struct TopBoundary {
  util::Grid2D<double> htc_w_m2k;   ///< h per cell; 0 = adiabatic cell.
  util::Grid2D<double> fluid_temp_c;
};

/// Assembled finite-volume model. Construction discretizes geometry;
/// boundary conditions and sources may be changed between solves.
class ThermalModel {
 public:
  explicit ThermalModel(StackModel stack);

  [[nodiscard]] const StackModel& stack() const noexcept { return stack_; }
  [[nodiscard]] std::size_t nx() const noexcept { return stack_.grid.nx; }
  [[nodiscard]] std::size_t ny() const noexcept { return stack_.grid.ny; }
  [[nodiscard]] std::size_t nz() const noexcept { return stack_.layer_count(); }
  [[nodiscard]] std::size_t cell_count() const noexcept {
    return nx() * ny() * nz();
  }

  [[nodiscard]] std::size_t cell_index(std::size_t ix, std::size_t iy,
                                       std::size_t iz) const {
    return (iz * ny() + iy) * nx() + ix;
  }

  /// Set the heat sources [W per cell] on the die layer.
  void set_power_map(const util::Grid2D<double>& watts);

  /// Convective top boundary (thermosyphon evaporator side).
  void set_top_boundary(TopBoundary boundary);

  /// Uniform convective top boundary helper.
  void set_top_boundary_uniform(double htc_w_m2k, double fluid_temp_c);

  /// Weak convection from the substrate bottom to board ambient.
  void set_bottom_boundary(double htc_w_m2k, double ambient_c);

  /// Solve steady state G·T = P; returns the temperature of every cell [°C].
  /// `hint` (if non-empty) warm-starts the CG iteration.
  [[nodiscard]] std::vector<double> solve_steady(
      const std::vector<double>& hint = {}) const;

  /// Iteration/residual statistics of the most recent steady or transient
  /// solve (feeds the solver benchmarks).
  [[nodiscard]] const util::CgResult& last_solve_stats() const noexcept {
    return last_stats_;
  }

  /// Advance one backward-Euler step of length `dt_s` from state `t`
  /// (modified in place).
  void step_transient(std::vector<double>& t, double dt_s) const;

  /// Advance one embedded backward-Euler step of length `dt_s`: the state
  /// is committed from a two-half-step pass and the return value is the
  /// max-norm difference to a single full step [°C] — the local
  /// step-doubling error estimate an adaptive step chooser controls on
  /// (backward Euler is first order, so the estimate scales as dt²).
  /// Costs three linear solves per call; callers wanting rejection
  /// semantics copy `t` before calling.
  [[nodiscard]] double step_transient_embedded(std::vector<double>& t,
                                               double dt_s) const;

  /// Extract one layer of a solution as a 2D field [°C].
  [[nodiscard]] util::Grid2D<double> layer_field(const std::vector<double>& t,
                                                 std::size_t layer) const;

  /// Total heat flowing out through the top boundary for a solution [W]
  /// (energy-conservation checks).
  [[nodiscard]] double top_heat_flow_w(const std::vector<double>& t) const;

  /// Per-cell heat flow out through the top boundary [W per cell]; feeds the
  /// thermosyphon channel model in the coupled fixed-point iteration.
  [[nodiscard]] util::Grid2D<double> top_heat_flow_map_w(
      const std::vector<double>& t) const;

  /// Total source power [W].
  [[nodiscard]] double source_power_w() const;

 private:
  void assemble() const;  // lazy; depends on boundary state

  StackModel stack_;
  util::Grid2D<double> power_w_;
  TopBoundary top_;
  double bottom_htc_w_m2k_ = 10.0;
  double bottom_ambient_c_ = 40.0;

  // Lazily assembled operator; mutable because assembly is a cache. The
  // 7-point conductance operator is stored banded (StencilOperator), not
  // CSR: matrix-free SpMV plus SSOR sweeps over the bands.
  mutable bool dirty_ = true;
  mutable util::StencilOperator operator_{1, 1, 1};
  mutable std::vector<double> boundary_rhs_;  // G_b·T_fluid terms
  mutable util::CgResult last_stats_;
  // Transient step operator (G + C/dt): bands cached from operator_, only
  // the diagonal is re-shifted per step.
  mutable util::StencilOperator step_operator_{1, 1, 1};
  mutable bool step_operator_valid_ = false;
};

}  // namespace tpcool::thermal
