#pragma once
/// \file stack.hpp
/// \brief Package thermal layer stack: die + TIMs + heat spreader +
///        evaporator base discretized on a regular package-plane grid.
///
/// The stack mirrors what 3D-ICE models for a lidded server package with a
/// cold plate (here: the thermosyphon micro-evaporator) on top:
///
///   layer 5 (top)  evaporator copper base  — convective top boundary to the
///                                            refrigerant (per-cell HTC map)
///   layer 4        TIM2 (grease)           — only under the evaporator
///   layer 3        copper IHS
///   layer 2        TIM1 (indium-class)     — only over the die
///   layer 1        silicon die             — heat sources live here
///   layer 0        organic substrate       — weak convection to board
///
/// In-plane, the grid spans the package outline; the die and the evaporator
/// footprint are centred sub-regions, with low-conductivity filler elsewhere
/// in the die/TIM layers (the real air gap under the IHS).

#include <cstddef>
#include <string>
#include <vector>

#include "tpcool/floorplan/power_map.hpp"
#include "tpcool/floorplan/xeon_e5.hpp"
#include "tpcool/materials/solid.hpp"
#include "tpcool/util/grid2d.hpp"

namespace tpcool::thermal {

/// One discretized layer: per-cell conductivity and volumetric heat capacity.
struct StackLayer {
  std::string name;
  double thickness_m = 0.0;
  util::Grid2D<double> conductivity_w_mk;     ///< k per cell.
  util::Grid2D<double> vol_heat_cap_j_m3k;    ///< ρ·c_p per cell.
};

/// Fully built stack ready for the finite-volume assembler.
struct StackModel {
  floorplan::GridSpec grid;          ///< Package-plane grid.
  std::vector<StackLayer> layers;    ///< Bottom (substrate) to top (evap base).
  std::size_t die_layer = 0;         ///< Index of the silicon/source layer.
  std::size_t ihs_layer = 0;         ///< Index of the heat-spreader layer.
  std::size_t top_layer = 0;         ///< Index of the evaporator-base layer.
  floorplan::Rect die_region;        ///< Die outline in package coordinates.
  floorplan::Rect evaporator_region; ///< Evaporator footprint, package coords.
  double die_offset_x = 0.0;         ///< Die floorplan -> package transform.
  double die_offset_y = 0.0;

  [[nodiscard]] std::size_t layer_count() const { return layers.size(); }
};

/// Configuration of the standard Xeon E5 + thermosyphon stack.
struct PackageStackConfig {
  floorplan::XeonE5Geometry geometry;   ///< Die and package outline.
  double evaporator_width_m = 44.0e-3;  ///< Evaporator footprint (channel
  double evaporator_height_m = 42.0e-3; ///< plate of [8], matched to package).
  double cell_size_m = 0.75e-3;         ///< In-plane discretization pitch.
  double substrate_thickness_m = 1.0e-3;
  double die_thickness_m = 0.5e-3;
  double tim1_thickness_m = 70e-6;
  double ihs_thickness_m = 2.0e-3;
  double tim2_thickness_m = 50e-6;
  double evaporator_base_thickness_m = 1.0e-3;
};

/// Build the stack described above, centred on the package.
[[nodiscard]] StackModel make_package_stack(const PackageStackConfig& config = {});

}  // namespace tpcool::thermal
