#include "tpcool/thermal/map_io.hpp"

#include <algorithm>
#include <queue>

#include "tpcool/util/error.hpp"

namespace tpcool::thermal {

void write_pgm(std::ostream& out, const util::Grid2D<double>& field,
               double t_min, double t_max) {
  TPCOOL_REQUIRE(t_max > t_min, "invalid PGM scale");
  out << "P5\n" << field.nx() << ' ' << field.ny() << "\n255\n";
  for (std::size_t iy = field.ny(); iy-- > 0;) {
    for (std::size_t ix = 0; ix < field.nx(); ++ix) {
      const double t = (field(ix, iy) - t_min) / (t_max - t_min);
      const int v = static_cast<int>(255.0 * std::clamp(t, 0.0, 1.0));
      out.put(static_cast<char>(v));
    }
  }
}

util::Grid2D<double> map_difference(const util::Grid2D<double>& a,
                                    const util::Grid2D<double>& b) {
  TPCOOL_REQUIRE(a.same_shape(b), "map shapes differ");
  util::Grid2D<double> out(a.nx(), a.ny());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.data()[i] = a.data()[i] - b.data()[i];
  }
  return out;
}

std::vector<HotSpot> hotspot_census(const util::Grid2D<double>& field,
                                    const floorplan::GridSpec& grid,
                                    double threshold_c) {
  TPCOOL_REQUIRE(field.nx() == grid.nx && field.ny() == grid.ny,
                 "field/grid shape mismatch");
  std::vector<HotSpot> spots;
  util::Grid2D<int> visited(grid.nx, grid.ny, 0);

  for (std::size_t sy = 0; sy < grid.ny; ++sy) {
    for (std::size_t sx = 0; sx < grid.nx; ++sx) {
      if (visited(sx, sy) != 0 || field(sx, sy) <= threshold_c) continue;
      // Flood-fill this connected hot region (4-connectivity).
      HotSpot spot;
      double cx = 0.0, cy = 0.0;
      std::queue<std::pair<std::size_t, std::size_t>> frontier;
      frontier.emplace(sx, sy);
      visited(sx, sy) = 1;
      while (!frontier.empty()) {
        const auto [ix, iy] = frontier.front();
        frontier.pop();
        const floorplan::Rect cell = grid.cell_rect(ix, iy);
        spot.peak_c = std::max(spot.peak_c, field(ix, iy));
        cx += cell.center_x();
        cy += cell.center_y();
        ++spot.cells;
        const auto visit = [&](std::size_t nx, std::size_t ny) {
          if (visited(nx, ny) == 0 && field(nx, ny) > threshold_c) {
            visited(nx, ny) = 1;
            frontier.emplace(nx, ny);
          }
        };
        if (ix > 0) visit(ix - 1, iy);
        if (ix + 1 < grid.nx) visit(ix + 1, iy);
        if (iy > 0) visit(ix, iy - 1);
        if (iy + 1 < grid.ny) visit(ix, iy + 1);
      }
      spot.centroid_x_m = cx / static_cast<double>(spot.cells);
      spot.centroid_y_m = cy / static_cast<double>(spot.cells);
      spots.push_back(spot);
    }
  }
  std::sort(spots.begin(), spots.end(),
            [](const HotSpot& a, const HotSpot& b) {
              return a.peak_c > b.peak_c;
            });
  return spots;
}

std::vector<HotSpot> hotspot_census_relative(
    const util::Grid2D<double>& field, const floorplan::GridSpec& grid,
    double band_c) {
  TPCOOL_REQUIRE(band_c > 0.0, "band must be positive");
  return hotspot_census(field, grid, util::grid_max(field) - band_c);
}

}  // namespace tpcool::thermal
