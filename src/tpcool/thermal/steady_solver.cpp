#include "tpcool/thermal/grid.hpp"
#include "tpcool/util/error.hpp"
#include "tpcool/util/telemetry.hpp"

namespace tpcool::thermal {

std::vector<double> ThermalModel::solve_steady(
    const std::vector<double>& hint) const {
  util::TraceSpan span("steady_solve");
  assemble();
  const std::size_t n = cell_count();
  std::vector<double> rhs = boundary_rhs_;
  for (std::size_t iy = 0; iy < ny(); ++iy) {
    for (std::size_t ix = 0; ix < nx(); ++ix) {
      rhs[cell_index(ix, iy, stack_.die_layer)] += power_w_(ix, iy);
    }
  }
  std::vector<double> t = hint;
  const bool warm = t.size() == n;
  if (!warm) t.assign(n, 40.0);  // rough initial guess [°C]
  // SSOR-preconditioned CG over the banded operator: ~3-5x fewer
  // iterations than Jacobi on this stencil, and warm starts from `hint`
  // (previous fixed-point iterate or previous sweep point) cut the rest.
  last_stats_ = util::solve_cg(
      operator_, rhs, t,
      {.tolerance = 1e-8,
       .max_iterations = 50000,
       .preconditioner = util::Preconditioner::kSsor,
       .ssor_omega = 1.7});
  span.arg("cells", static_cast<double>(n));
  span.arg("iterations", static_cast<double>(last_stats_.iterations));
  span.arg("residual", last_stats_.residual);
  span.arg("warm", warm ? 1.0 : 0.0);
  return t;
}

}  // namespace tpcool::thermal
