#include "tpcool/thermal/grid.hpp"
#include "tpcool/util/error.hpp"

namespace tpcool::thermal {

std::vector<double> ThermalModel::solve_steady(
    const std::vector<double>& hint) const {
  assemble();
  const std::size_t n = cell_count();
  std::vector<double> rhs = boundary_rhs_;
  for (std::size_t iy = 0; iy < ny(); ++iy) {
    for (std::size_t ix = 0; ix < nx(); ++ix) {
      rhs[cell_index(ix, iy, stack_.die_layer)] += power_w_(ix, iy);
    }
  }
  std::vector<double> t = hint;
  if (t.size() != n) t.assign(n, 40.0);  // rough initial guess [°C]
  // SSOR-preconditioned CG over the banded operator: ~3-5x fewer
  // iterations than Jacobi on this stencil, and warm starts from `hint`
  // (previous fixed-point iterate or previous sweep point) cut the rest.
  last_stats_ = util::solve_cg(
      operator_, rhs, t,
      {.tolerance = 1e-8,
       .max_iterations = 50000,
       .preconditioner = util::Preconditioner::kSsor,
       .ssor_omega = 1.7});
  return t;
}

}  // namespace tpcool::thermal
