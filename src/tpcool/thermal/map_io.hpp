#pragma once
/// \file map_io.hpp
/// \brief Thermal-map tooling: portable graymap (PGM) export for quick
///        visual inspection, map differencing, and a connected-component
///        hot-spot census (the paper counts "number and magnitude of hot
///        spots", §V).

#include <ostream>
#include <vector>

#include "tpcool/floorplan/power_map.hpp"
#include "tpcool/util/grid2d.hpp"

namespace tpcool::thermal {

/// Write a temperature field as an 8-bit binary PGM (P5) image, mapping
/// [t_min, t_max] onto [0, 255]; values outside clamp. North row first.
void write_pgm(std::ostream& out, const util::Grid2D<double>& field,
               double t_min, double t_max);

/// Cell-wise difference a − b (same shape required).
[[nodiscard]] util::Grid2D<double> map_difference(
    const util::Grid2D<double>& a, const util::Grid2D<double>& b);

/// One connected hot region of a thermal map.
struct HotSpot {
  double peak_c = 0.0;        ///< Hottest cell in the region.
  double centroid_x_m = 0.0;  ///< Area centroid, grid coordinates.
  double centroid_y_m = 0.0;
  std::size_t cells = 0;      ///< Region size.
};

/// Census of connected regions hotter than `threshold_c` (4-connectivity),
/// sorted hottest first. Implements the paper's "number and magnitude of
/// hot spots" metric.
[[nodiscard]] std::vector<HotSpot> hotspot_census(
    const util::Grid2D<double>& field, const floorplan::GridSpec& grid,
    double threshold_c);

/// Convenience: regions within `band_c` of the field maximum.
[[nodiscard]] std::vector<HotSpot> hotspot_census_relative(
    const util::Grid2D<double>& field, const floorplan::GridSpec& grid,
    double band_c = 3.0);

}  // namespace tpcool::thermal
