#pragma once
/// \file step_control.hpp
/// \brief Adaptive time-step control for the transient thermal path: an
///        error-estimate chooser (PI-free dead-beat controller on the
///        step-doubling estimate from
///        ThermalModel::step_transient_embedded) composed with a
///        step-to-boundary chooser that clamps proposals so phase and
///        interval edges are hit exactly — never overshot, never left as
///        near-zero slivers.  Modeled on the StepChoosers of large
///        production integrators (SpECTRE `src/Time/StepChoosers/`):
///        every chooser limits the step, the minimum of the limits runs.
///
/// Everything here is plain double arithmetic on the caller's thread —
/// deterministic for any thread count, so adaptive transient runs keep
/// the bit-identical engine contract.

#include <cstddef>

namespace tpcool::thermal {

/// Tuning of the adaptive step controller.
struct StepControlConfig {
  /// Target local error per step [°C] (max-norm of the step-doubling
  /// estimate).  Smaller = more, shorter steps.
  double tolerance_c = 0.05;
  /// Hard floor: a step at or below this is accepted regardless of its
  /// error estimate, guaranteeing progress through stiff transients.
  double min_dt_s = 1.0e-3;
  /// Hard ceiling on any proposal (smooth plateaus otherwise grow dt
  /// without bound and skate over the next load change).
  double max_dt_s = 900.0;
  /// First proposal of a run (and of each fresh segment).
  double initial_dt_s = 0.5;
  /// Largest per-step growth factor of the proposal (SpECTRE's
  /// ErrorControl chooser limits growth the same way: one cheap step must
  /// not catapult dt past the next transient).
  double max_growth = 4.0;
  /// Safety factor on the dead-beat update so the next step's error lands
  /// below — not at — the tolerance.
  double safety = 0.9;
};

/// One adaptive stepping sequence: propose a dt, integrate, report the
/// error estimate back, repeat.  `propose` applies the step-to-boundary
/// rule; `evaluate` applies the error-estimate rule and decides
/// accept/reject.
///
/// Usage per step:
///   const double dt = controller.propose(remaining_s);
///   ...integrate a trial step of dt...
///   if (controller.evaluate(dt, error_c)) { commit } else { retry }
class StepController {
 public:
  explicit StepController(StepControlConfig config);

  [[nodiscard]] const StepControlConfig& config() const noexcept {
    return config_;
  }

  /// The dt to attempt given `remaining_s` to the next boundary.  The
  /// current error-controlled proposal is clamped by the step-to-boundary
  /// rule: a proposal reaching the boundary returns exactly `remaining_s`
  /// (callers land by assignment, not accumulation), and a proposal past
  /// the halfway mark returns remaining_s / 2 so the boundary is never
  /// approached with a sliver step.  Requires remaining_s > 0.
  [[nodiscard]] double propose(double remaining_s) const;

  /// Feed back the error estimate of a trial step of `dt_s`.  Returns
  /// true when the step is accepted (error within tolerance, or dt at the
  /// floor); either way the next proposal is the dead-beat update
  ///   dt · clamp(safety · sqrt(tolerance / error), shrink, max_growth)
  /// clamped into [min_dt_s, max_dt_s].  sqrt: backward Euler is first
  /// order, so the step-doubling estimate scales as dt².
  [[nodiscard]] bool evaluate(double dt_s, double error_c);

  /// Next unclamped proposal (before the boundary rule) — observability
  /// for tests and benches.
  [[nodiscard]] double current_proposal_s() const noexcept { return dt_s_; }

 private:
  StepControlConfig config_;
  double dt_s_;  ///< Error-controlled proposal, boundary-unclamped.
};

}  // namespace tpcool::thermal
