#include "tpcool/thermal/step_control.hpp"

#include <algorithm>
#include <cmath>

#include "tpcool/util/error.hpp"

namespace tpcool::thermal {

namespace {

/// Largest per-step shrink factor: a wildly over-tolerance step retries at
/// a tenth, not at min_dt, so one noisy estimate cannot collapse the run
/// into floor-sized steps.
constexpr double kMaxShrink = 0.1;

}  // namespace

StepController::StepController(StepControlConfig config)
    : config_(config), dt_s_(config.initial_dt_s) {
  TPCOOL_REQUIRE(config_.tolerance_c > 0.0, "step tolerance must be positive");
  TPCOOL_REQUIRE(config_.min_dt_s > 0.0, "min dt must be positive");
  TPCOOL_REQUIRE(config_.max_dt_s >= config_.min_dt_s,
                 "max dt must be >= min dt");
  TPCOOL_REQUIRE(config_.initial_dt_s >= config_.min_dt_s &&
                     config_.initial_dt_s <= config_.max_dt_s,
                 "initial dt must lie in [min dt, max dt]");
  TPCOOL_REQUIRE(config_.max_growth > 1.0, "max growth must exceed 1");
  TPCOOL_REQUIRE(config_.safety > 0.0 && config_.safety <= 1.0,
                 "safety factor must be in (0, 1]");
}

double StepController::propose(double remaining_s) const {
  TPCOOL_REQUIRE(remaining_s > 0.0, "no time remaining to step over");
  const double dt = std::min(dt_s_, config_.max_dt_s);
  // Step-to-boundary: land exactly (the caller assigns, not accumulates)…
  if (dt >= remaining_s) return remaining_s;
  // …and never set up a sliver: past the halfway mark, split the remainder
  // evenly (0.5 · remaining is exact in floating point).
  if (dt > 0.5 * remaining_s) return 0.5 * remaining_s;
  return dt;
}

bool StepController::evaluate(double dt_s, double error_c) {
  TPCOOL_REQUIRE(dt_s > 0.0, "evaluated step must be positive");
  TPCOOL_REQUIRE(error_c >= 0.0, "error estimate must be non-negative");
  // Dead-beat update on the order-2 local estimate; a zero estimate (e.g.
  // an equilibrated field) grows at the cap.
  double factor = config_.max_growth;
  if (error_c > 0.0) {
    factor = std::clamp(config_.safety * std::sqrt(config_.tolerance_c /
                                                   error_c),
                        kMaxShrink, config_.max_growth);
  }
  dt_s_ = std::clamp(dt_s * factor, config_.min_dt_s, config_.max_dt_s);
  // Accept within tolerance — or at the floor, where rejecting could not
  // shrink further anyway (progress guarantee).
  return error_c <= config_.tolerance_c || dt_s <= config_.min_dt_s;
}

}  // namespace tpcool::thermal
