#include "tpcool/thermal/stack.hpp"

#include <cmath>

#include "tpcool/util/error.hpp"

namespace tpcool::thermal {

namespace {

using floorplan::GridSpec;
using floorplan::Rect;
using materials::SolidMaterial;

/// Uniform layer over the full grid.
StackLayer uniform_layer(const std::string& name, double thickness,
                         const SolidMaterial& mat, const GridSpec& grid) {
  StackLayer layer;
  layer.name = name;
  layer.thickness_m = thickness;
  layer.conductivity_w_mk =
      util::Grid2D<double>(grid.nx, grid.ny, mat.conductivity_w_mk);
  layer.vol_heat_cap_j_m3k =
      util::Grid2D<double>(grid.nx, grid.ny, mat.volumetric_heat_capacity());
  return layer;
}

/// Layer whose material is `inner` inside `region` and `outer` elsewhere.
/// A cell takes the area-weighted blend of the two materials so the model is
/// insensitive to whether the region boundary falls on a cell edge.
StackLayer region_layer(const std::string& name, double thickness,
                        const SolidMaterial& inner, const SolidMaterial& outer,
                        const Rect& region, const GridSpec& grid) {
  StackLayer layer = uniform_layer(name, thickness, outer, grid);
  for (std::size_t iy = 0; iy < grid.ny; ++iy) {
    for (std::size_t ix = 0; ix < grid.nx; ++ix) {
      const Rect cell = grid.cell_rect(ix, iy);
      const double frac = region.overlap_area(cell) / cell.area();
      if (frac <= 0.0) continue;
      layer.conductivity_w_mk(ix, iy) =
          frac * inner.conductivity_w_mk + (1.0 - frac) * outer.conductivity_w_mk;
      layer.vol_heat_cap_j_m3k(ix, iy) =
          frac * inner.volumetric_heat_capacity() +
          (1.0 - frac) * outer.volumetric_heat_capacity();
    }
  }
  return layer;
}

}  // namespace

StackModel make_package_stack(const PackageStackConfig& config) {
  TPCOOL_REQUIRE(config.cell_size_m > 0.0, "cell size must be positive");
  TPCOOL_REQUIRE(
      config.evaporator_width_m <= config.geometry.package_width_m &&
          config.evaporator_height_m <= config.geometry.package_height_m,
      "evaporator footprint must fit on the package");
  TPCOOL_REQUIRE(config.geometry.die_width_m < config.evaporator_width_m &&
                     config.geometry.die_height_m < config.evaporator_height_m,
                 "die must sit under the evaporator footprint");

  StackModel model;

  // Grid spans the package; round the cell count up so the grid covers it.
  GridSpec grid;
  grid.x0 = 0.0;
  grid.y0 = 0.0;
  grid.nx = static_cast<std::size_t>(
      std::ceil(config.geometry.package_width_m / config.cell_size_m));
  grid.ny = static_cast<std::size_t>(
      std::ceil(config.geometry.package_height_m / config.cell_size_m));
  grid.dx = config.geometry.package_width_m / static_cast<double>(grid.nx);
  grid.dy = config.geometry.package_height_m / static_cast<double>(grid.ny);
  model.grid = grid;

  // Centre the die and the evaporator on the package.
  model.die_offset_x =
      0.5 * (config.geometry.package_width_m - config.geometry.die_width_m);
  model.die_offset_y =
      0.5 * (config.geometry.package_height_m - config.geometry.die_height_m);
  model.die_region = Rect{model.die_offset_x, model.die_offset_y,
                          model.die_offset_x + config.geometry.die_width_m,
                          model.die_offset_y + config.geometry.die_height_m};
  const double ex0 =
      0.5 * (config.geometry.package_width_m - config.evaporator_width_m);
  const double ey0 =
      0.5 * (config.geometry.package_height_m - config.evaporator_height_m);
  model.evaporator_region = Rect{ex0, ey0, ex0 + config.evaporator_width_m,
                                 ey0 + config.evaporator_height_m};

  model.layers.push_back(uniform_layer("substrate",
                                       config.substrate_thickness_m,
                                       materials::package_substrate(), grid));
  model.layers.push_back(region_layer("die", config.die_thickness_m,
                                      materials::silicon(),
                                      materials::gap_filler(),
                                      model.die_region, grid));
  model.die_layer = model.layers.size() - 1;
  model.layers.push_back(region_layer("tim1", config.tim1_thickness_m,
                                      materials::tim_high_performance(),
                                      materials::gap_filler(),
                                      model.die_region, grid));
  model.layers.push_back(uniform_layer("ihs", config.ihs_thickness_m,
                                       materials::copper(), grid));
  model.ihs_layer = model.layers.size() - 1;
  model.layers.push_back(region_layer("tim2", config.tim2_thickness_m,
                                      materials::tim_grease(),
                                      materials::gap_filler(),
                                      model.evaporator_region, grid));
  model.layers.push_back(region_layer("evaporator_base",
                                      config.evaporator_base_thickness_m,
                                      materials::copper(),
                                      materials::gap_filler(),
                                      model.evaporator_region, grid));
  model.top_layer = model.layers.size() - 1;

  return model;
}

}  // namespace tpcool::thermal
