#include "tpcool/thermal/grid.hpp"

#include <cmath>

#include "tpcool/util/error.hpp"

namespace tpcool::thermal {

ThermalModel::ThermalModel(StackModel stack) : stack_(std::move(stack)) {
  TPCOOL_REQUIRE(stack_.layer_count() >= 2, "stack needs at least two layers");
  for (const StackLayer& layer : stack_.layers) {
    TPCOOL_REQUIRE(layer.thickness_m > 0.0, "layer thickness must be positive");
    TPCOOL_REQUIRE(layer.conductivity_w_mk.nx() == stack_.grid.nx &&
                       layer.conductivity_w_mk.ny() == stack_.grid.ny,
                   "layer grid mismatch");
  }
  power_w_ = util::Grid2D<double>(nx(), ny(), 0.0);
  top_.htc_w_m2k = util::Grid2D<double>(nx(), ny(), 0.0);
  top_.fluid_temp_c = util::Grid2D<double>(nx(), ny(), 0.0);
}

void ThermalModel::set_power_map(const util::Grid2D<double>& watts) {
  TPCOOL_REQUIRE(watts.nx() == nx() && watts.ny() == ny(),
                 "power map grid mismatch");
  for (const double w : watts.data()) {
    TPCOOL_REQUIRE(w >= 0.0, "negative cell power");
  }
  power_w_ = watts;
  // Sources only enter the RHS; the assembled operator stays valid.
}

void ThermalModel::set_top_boundary(TopBoundary boundary) {
  TPCOOL_REQUIRE(boundary.htc_w_m2k.nx() == nx() &&
                     boundary.htc_w_m2k.ny() == ny() &&
                     boundary.fluid_temp_c.same_shape(boundary.htc_w_m2k),
                 "top boundary grid mismatch");
  for (const double h : boundary.htc_w_m2k.data()) {
    TPCOOL_REQUIRE(h >= 0.0, "negative HTC");
  }
  top_ = std::move(boundary);
  dirty_ = true;
}

void ThermalModel::set_top_boundary_uniform(double htc_w_m2k,
                                            double fluid_temp_c) {
  TopBoundary b;
  b.htc_w_m2k = util::Grid2D<double>(nx(), ny(), htc_w_m2k);
  b.fluid_temp_c = util::Grid2D<double>(nx(), ny(), fluid_temp_c);
  set_top_boundary(std::move(b));
}

void ThermalModel::set_bottom_boundary(double htc_w_m2k, double ambient_c) {
  TPCOOL_REQUIRE(htc_w_m2k >= 0.0, "negative HTC");
  bottom_htc_w_m2k_ = htc_w_m2k;
  bottom_ambient_c_ = ambient_c;
  dirty_ = true;
}

void ThermalModel::assemble() const {
  if (!dirty_) return;
  const std::size_t n = cell_count();
  util::StencilOperator m(nx(), ny(), nz());
  boundary_rhs_.assign(n, 0.0);

  const double dx = stack_.grid.dx;
  const double dy = stack_.grid.dy;
  const double cell_area = dx * dy;

  const auto k_of = [&](std::size_t ix, std::size_t iy, std::size_t iz) {
    return stack_.layers[iz].conductivity_w_mk(ix, iy);
  };
  const auto dz_of = [&](std::size_t iz) {
    return stack_.layers[iz].thickness_m;
  };

  // Series conductance of two half-cells meeting at an interface
  // (harmonic mean, the standard finite-volume interface treatment).
  const auto series = [](double g1, double g2) {
    TPCOOL_ENSURE(g1 > 0.0 && g2 > 0.0, "non-positive conductance");
    return 1.0 / (1.0 / g1 + 1.0 / g2);
  };

  for (std::size_t iz = 0; iz < nz(); ++iz) {
    const double dz = dz_of(iz);
    for (std::size_t iy = 0; iy < ny(); ++iy) {
      for (std::size_t ix = 0; ix < nx(); ++ix) {
        const std::size_t self = cell_index(ix, iy, iz);

        if (ix + 1 < nx()) {  // east neighbour
          const double g =
              series(k_of(ix, iy, iz) * (dy * dz) / (0.5 * dx),
                     k_of(ix + 1, iy, iz) * (dy * dz) / (0.5 * dx));
          m.add_coupling(self, util::StencilBand::kXPlus, g);
        }
        if (iy + 1 < ny()) {  // north neighbour
          const double g =
              series(k_of(ix, iy, iz) * (dx * dz) / (0.5 * dy),
                     k_of(ix, iy + 1, iz) * (dx * dz) / (0.5 * dy));
          m.add_coupling(self, util::StencilBand::kYPlus, g);
        }
        if (iz + 1 < nz()) {  // layer above
          const double g =
              series(k_of(ix, iy, iz) * cell_area / (0.5 * dz),
                     k_of(ix, iy, iz + 1) * cell_area / (0.5 * dz_of(iz + 1)));
          m.add_coupling(self, util::StencilBand::kZPlus, g);
        }
        if (iz + 1 == nz()) {  // top convective boundary
          const double h = top_.htc_w_m2k(ix, iy);
          if (h > 0.0) {
            const double g = series(k_of(ix, iy, iz) * cell_area / (0.5 * dz),
                                    h * cell_area);
            m.add_to_diagonal(self, g);
            boundary_rhs_[self] += g * top_.fluid_temp_c(ix, iy);
          }
        }
        if (iz == 0 && bottom_htc_w_m2k_ > 0.0) {  // bottom boundary
          const double g = series(k_of(ix, iy, iz) * cell_area / (0.5 * dz),
                                  bottom_htc_w_m2k_ * cell_area);
          m.add_to_diagonal(self, g);
          boundary_rhs_[self] += g * bottom_ambient_c_;
        }
      }
    }
  }
  operator_ = std::move(m);
  step_operator_valid_ = false;
  dirty_ = false;
}

util::Grid2D<double> ThermalModel::layer_field(const std::vector<double>& t,
                                               std::size_t layer) const {
  TPCOOL_REQUIRE(layer < nz(), "layer index out of range");
  TPCOOL_REQUIRE(t.size() == cell_count(), "state vector size mismatch");
  util::Grid2D<double> field(nx(), ny());
  for (std::size_t iy = 0; iy < ny(); ++iy) {
    for (std::size_t ix = 0; ix < nx(); ++ix) {
      field(ix, iy) = t[cell_index(ix, iy, layer)];
    }
  }
  return field;
}

double ThermalModel::top_heat_flow_w(const std::vector<double>& t) const {
  TPCOOL_REQUIRE(t.size() == cell_count(), "state vector size mismatch");
  const double cell_area = stack_.grid.dx * stack_.grid.dy;
  const std::size_t iz = nz() - 1;
  const double dz = stack_.layers[iz].thickness_m;
  double q = 0.0;
  for (std::size_t iy = 0; iy < ny(); ++iy) {
    for (std::size_t ix = 0; ix < nx(); ++ix) {
      const double h = top_.htc_w_m2k(ix, iy);
      if (h <= 0.0) continue;
      const double k = stack_.layers[iz].conductivity_w_mk(ix, iy);
      const double g =
          1.0 / (0.5 * dz / (k * cell_area) + 1.0 / (h * cell_area));
      q += g * (t[cell_index(ix, iy, iz)] - top_.fluid_temp_c(ix, iy));
    }
  }
  return q;
}

util::Grid2D<double> ThermalModel::top_heat_flow_map_w(
    const std::vector<double>& t) const {
  TPCOOL_REQUIRE(t.size() == cell_count(), "state vector size mismatch");
  const double cell_area = stack_.grid.dx * stack_.grid.dy;
  const std::size_t iz = nz() - 1;
  const double dz = stack_.layers[iz].thickness_m;
  util::Grid2D<double> q(nx(), ny(), 0.0);
  for (std::size_t iy = 0; iy < ny(); ++iy) {
    for (std::size_t ix = 0; ix < nx(); ++ix) {
      const double h = top_.htc_w_m2k(ix, iy);
      if (h <= 0.0) continue;
      const double k = stack_.layers[iz].conductivity_w_mk(ix, iy);
      const double g =
          1.0 / (0.5 * dz / (k * cell_area) + 1.0 / (h * cell_area));
      q(ix, iy) = g * (t[cell_index(ix, iy, iz)] - top_.fluid_temp_c(ix, iy));
    }
  }
  return q;
}

double ThermalModel::source_power_w() const { return util::grid_sum(power_w_); }

}  // namespace tpcool::thermal
