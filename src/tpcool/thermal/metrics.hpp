#pragma once
/// \file metrics.hpp
/// \brief Thermal metrics reported by the paper: hot spot θmax, average θavg,
///        maximum spatial gradient ∇θmax [°C/mm], hot-spot census, and the
///        case temperature TCASE (centre of the heat spreader).

#include <cstddef>

#include "tpcool/floorplan/power_map.hpp"
#include "tpcool/util/grid2d.hpp"

namespace tpcool::thermal {

/// Metrics of a 2D temperature field restricted to a region.
struct ThermalMetrics {
  double max_c = 0.0;              ///< θmax [°C].
  double avg_c = 0.0;              ///< θavg [°C] (area-weighted cell mean).
  double grad_max_c_per_mm = 0.0;  ///< ∇θmax [°C/mm], adjacent-cell gradient.
  std::size_t hotspot_cells = 0;   ///< Cells within 2 °C of θmax.
  std::size_t cell_count = 0;      ///< Cells inside the region.
};

/// Compute metrics over the cells whose centre lies inside `region`.
/// `hotspot_band_c` defines the census: cells with T > θmax − band.
[[nodiscard]] ThermalMetrics compute_metrics(const util::Grid2D<double>& field,
                                             const floorplan::GridSpec& grid,
                                             const floorplan::Rect& region,
                                             double hotspot_band_c = 2.0);

/// Bilinear sample of a field at package coordinates (x, y) [m].
[[nodiscard]] double sample_field(const util::Grid2D<double>& field,
                                  const floorplan::GridSpec& grid, double x,
                                  double y);

/// TCASE per the paper: temperature at the centre of the heat-spreader
/// surface region. Takes the IHS-layer field and the package-centre coords.
[[nodiscard]] double case_temperature(const util::Grid2D<double>& ihs_field,
                                      const floorplan::GridSpec& grid,
                                      const floorplan::Rect& package_region);

}  // namespace tpcool::thermal
