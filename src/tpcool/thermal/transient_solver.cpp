#include <algorithm>
#include <cmath>

#include "tpcool/thermal/grid.hpp"
#include "tpcool/util/error.hpp"
#include "tpcool/util/telemetry.hpp"

namespace tpcool::thermal {

void ThermalModel::step_transient(std::vector<double>& t, double dt_s) const {
  TPCOOL_REQUIRE(dt_s > 0.0, "time step must be positive");
  // A counter, not a span: adaptive segments take thousands of steps and
  // each one already shows up as a "cg" span underneath.
  if (util::telemetry_enabled()) {
    static util::TelemetryCounter& steps =
        util::Telemetry::instance().counter("thermal.transient_steps");
    steps.add(1.0);
  }
  assemble();
  const std::size_t n = cell_count();
  TPCOOL_REQUIRE(t.size() == n, "state vector size mismatch");

  // Backward Euler: (C/dt + G)·T⁺ = C/dt·T + P + boundary.
  // G is the assembled steady operator; C/dt is diagonal, so the step
  // operator is the same 7-point stencil with a shifted diagonal — copy
  // the bands and augment, then reuse the shared PCG path.
  const double cell_area = stack_.grid.dx * stack_.grid.dy;
  std::vector<double> cdiag(n, 0.0);
  std::vector<double> rhs = boundary_rhs_;
  for (std::size_t iz = 0; iz < nz(); ++iz) {
    const double vol = cell_area * stack_.layers[iz].thickness_m;
    for (std::size_t iy = 0; iy < ny(); ++iy) {
      for (std::size_t ix = 0; ix < nx(); ++ix) {
        const std::size_t i = cell_index(ix, iy, iz);
        cdiag[i] = stack_.layers[iz].vol_heat_cap_j_m3k(ix, iy) * vol / dt_s;
        rhs[i] += cdiag[i] * t[i];
        if (iz == stack_.die_layer) rhs[i] += power_w_(ix, iy);
      }
    }
  }

  if (!step_operator_valid_) {
    step_operator_ = operator_;  // copies the bands once per assembly
    step_operator_valid_ = true;
  }
  step_operator_.set_shifted_diagonal(operator_, cdiag);

  // Warm start from the previous state: consecutive steps differ little.
  last_stats_ = util::solve_cg(
      step_operator_, rhs, t,
      {.tolerance = 1e-9,
       .max_iterations = 20000,
       .preconditioner = util::Preconditioner::kSsor});
}

double ThermalModel::step_transient_embedded(std::vector<double>& t,
                                             double dt_s) const {
  TPCOOL_REQUIRE(dt_s > 0.0, "time step must be positive");
  // Step doubling: one full step against two half steps from the same
  // state.  The half-step solution is committed (it is the more accurate
  // one); the max-norm difference is the local error estimate.  Both
  // passes reuse the shared PCG path, so the result is bit-identical for
  // any thread count like every other solve.
  std::vector<double> full = t;
  step_transient(full, dt_s);
  const double half_dt_s = 0.5 * dt_s;
  step_transient(t, half_dt_s);
  step_transient(t, half_dt_s);
  double error_c = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    error_c = std::max(error_c, std::abs(full[i] - t[i]));
  }
  return error_c;
}

}  // namespace tpcool::thermal
