#include <cmath>

#include "tpcool/thermal/grid.hpp"
#include "tpcool/util/error.hpp"

namespace tpcool::thermal {

void ThermalModel::step_transient(std::vector<double>& t, double dt_s) const {
  TPCOOL_REQUIRE(dt_s > 0.0, "time step must be positive");
  assemble();
  const std::size_t n = cell_count();
  TPCOOL_REQUIRE(t.size() == n, "state vector size mismatch");

  // Backward Euler: (C/dt + G)·T⁺ = C/dt·T + P + boundary.
  // G is the assembled steady operator; C/dt is diagonal, so we run a
  // matrix-free Jacobi-preconditioned CG on the summed operator instead of
  // re-assembling a second sparse matrix every step.
  const double cell_area = stack_.grid.dx * stack_.grid.dy;
  std::vector<double> cdiag(n, 0.0);
  std::vector<double> rhs = boundary_rhs_;
  for (std::size_t iz = 0; iz < nz(); ++iz) {
    const double vol = cell_area * stack_.layers[iz].thickness_m;
    for (std::size_t iy = 0; iy < ny(); ++iy) {
      for (std::size_t ix = 0; ix < nx(); ++ix) {
        const std::size_t i = cell_index(ix, iy, iz);
        cdiag[i] = stack_.layers[iz].vol_heat_cap_j_m3k(ix, iy) * vol / dt_s;
        rhs[i] += cdiag[i] * t[i];
        if (iz == stack_.die_layer) rhs[i] += power_w_(ix, iy);
      }
    }
  }

  std::vector<double> x = t;  // warm start from the previous state
  std::vector<double> r(n), z(n), p(n), ap(n);
  const auto apply = [&](const std::vector<double>& in,
                         std::vector<double>& out) {
    matrix_.multiply(in, out);
    for (std::size_t i = 0; i < n; ++i) out[i] += cdiag[i] * in[i];
  };

  std::vector<double> inv_diag = matrix_.diagonal();
  for (std::size_t i = 0; i < n; ++i) inv_diag[i] = 1.0 / (inv_diag[i] + cdiag[i]);

  apply(x, ap);
  double bnorm = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = rhs[i] - ap[i];
    bnorm += rhs[i] * rhs[i];
  }
  bnorm = std::sqrt(bnorm);
  if (bnorm == 0.0) bnorm = 1.0;

  for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
  p = z;
  double rz = 0.0;
  for (std::size_t i = 0; i < n; ++i) rz += r[i] * z[i];

  constexpr std::size_t kMaxIterations = 20000;
  for (std::size_t it = 0; it < kMaxIterations; ++it) {
    double rnorm = 0.0;
    for (const double v : r) rnorm += v * v;
    if (std::sqrt(rnorm) / bnorm < 1e-9) break;
    apply(p, ap);
    double pap = 0.0;
    for (std::size_t i = 0; i < n; ++i) pap += p[i] * ap[i];
    TPCOOL_ENSURE(pap > 0.0, "transient operator lost positive-definiteness");
    const double alpha = rz / pap;
    for (std::size_t i = 0; i < n; ++i) x[i] += alpha * p[i];
    for (std::size_t i = 0; i < n; ++i) r[i] -= alpha * ap[i];
    for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
    double rz_new = 0.0;
    for (std::size_t i = 0; i < n; ++i) rz_new += r[i] * z[i];
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  t = std::move(x);
}

}  // namespace tpcool::thermal
