#include "tpcool/thermal/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "tpcool/util/error.hpp"

namespace tpcool::thermal {

ThermalMetrics compute_metrics(const util::Grid2D<double>& field,
                               const floorplan::GridSpec& grid,
                               const floorplan::Rect& region,
                               double hotspot_band_c) {
  TPCOOL_REQUIRE(field.nx() == grid.nx && field.ny() == grid.ny,
                 "field/grid shape mismatch");
  TPCOOL_REQUIRE(region.valid(), "invalid region");
  TPCOOL_REQUIRE(hotspot_band_c >= 0.0, "hotspot band must be non-negative");

  ThermalMetrics m;
  double sum = 0.0;
  bool first = true;

  const auto inside = [&](std::size_t ix, std::size_t iy) {
    const floorplan::Rect cell = grid.cell_rect(ix, iy);
    return region.contains(cell.center_x(), cell.center_y());
  };

  for (std::size_t iy = 0; iy < grid.ny; ++iy) {
    for (std::size_t ix = 0; ix < grid.nx; ++ix) {
      if (!inside(ix, iy)) continue;
      const double t = field(ix, iy);
      if (first || t > m.max_c) m.max_c = t;
      first = false;
      sum += t;
      ++m.cell_count;

      // Adjacent-cell spatial gradient, both in-region endpoints required.
      if (ix + 1 < grid.nx && inside(ix + 1, iy)) {
        const double g = std::abs(field(ix + 1, iy) - t) / (grid.dx * 1e3);
        m.grad_max_c_per_mm = std::max(m.grad_max_c_per_mm, g);
      }
      if (iy + 1 < grid.ny && inside(ix, iy + 1)) {
        const double g = std::abs(field(ix, iy + 1) - t) / (grid.dy * 1e3);
        m.grad_max_c_per_mm = std::max(m.grad_max_c_per_mm, g);
      }
    }
  }
  TPCOOL_REQUIRE(m.cell_count > 0, "region contains no grid cells");
  m.avg_c = sum / static_cast<double>(m.cell_count);

  for (std::size_t iy = 0; iy < grid.ny; ++iy) {
    for (std::size_t ix = 0; ix < grid.nx; ++ix) {
      if (!inside(ix, iy)) continue;
      if (field(ix, iy) > m.max_c - hotspot_band_c) ++m.hotspot_cells;
    }
  }
  return m;
}

double sample_field(const util::Grid2D<double>& field,
                    const floorplan::GridSpec& grid, double x, double y) {
  TPCOOL_REQUIRE(field.nx() == grid.nx && field.ny() == grid.ny,
                 "field/grid shape mismatch");
  // Bilinear interpolation on cell centres, clamped at the borders.
  const double fx = (x - grid.x0) / grid.dx - 0.5;
  const double fy = (y - grid.y0) / grid.dy - 0.5;
  const auto clamp_f = [](double v, double hi) {
    return std::min(std::max(v, 0.0), hi);
  };
  const double cx = clamp_f(fx, static_cast<double>(grid.nx - 1));
  const double cy = clamp_f(fy, static_cast<double>(grid.ny - 1));
  const auto ix0 = static_cast<std::size_t>(cx);
  const auto iy0 = static_cast<std::size_t>(cy);
  const std::size_t ix1 = std::min(ix0 + 1, grid.nx - 1);
  const std::size_t iy1 = std::min(iy0 + 1, grid.ny - 1);
  const double tx = cx - static_cast<double>(ix0);
  const double ty = cy - static_cast<double>(iy0);
  const double a = field(ix0, iy0) * (1.0 - tx) + field(ix1, iy0) * tx;
  const double b = field(ix0, iy1) * (1.0 - tx) + field(ix1, iy1) * tx;
  return a * (1.0 - ty) + b * ty;
}

double case_temperature(const util::Grid2D<double>& ihs_field,
                        const floorplan::GridSpec& grid,
                        const floorplan::Rect& package_region) {
  return sample_field(ihs_field, grid, package_region.center_x(),
                      package_region.center_y());
}

}  // namespace tpcool::thermal
