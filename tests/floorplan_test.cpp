// Tests for tpcool::floorplan — rectangles, the validated floorplan
// container, the Xeon E5 v4 builder (Fig. 2c) and power rasterization.

#include <gtest/gtest.h>

#include <cmath>

#include "tpcool/floorplan/floorplan.hpp"
#include "tpcool/floorplan/power_map.hpp"
#include "tpcool/floorplan/xeon_e5.hpp"
#include "tpcool/util/error.hpp"

namespace tpcool::floorplan {
namespace {

// ------------------------------------------------------------------- Rect --

TEST(Rect, BasicGeometry) {
  const Rect r{1.0, 2.0, 4.0, 6.0};
  EXPECT_DOUBLE_EQ(r.width(), 3.0);
  EXPECT_DOUBLE_EQ(r.height(), 4.0);
  EXPECT_DOUBLE_EQ(r.area(), 12.0);
  EXPECT_DOUBLE_EQ(r.center_x(), 2.5);
  EXPECT_DOUBLE_EQ(r.center_y(), 4.0);
  EXPECT_TRUE(r.contains(1.0, 2.0));   // half-open: min edge inside
  EXPECT_FALSE(r.contains(4.0, 2.0));  // max edge outside
}

TEST(Rect, OverlapArea) {
  const Rect a{0.0, 0.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(a.overlap_area({1.0, 1.0, 3.0, 3.0}), 1.0);
  EXPECT_DOUBLE_EQ(a.overlap_area({2.0, 0.0, 3.0, 1.0}), 0.0);  // touching
  EXPECT_DOUBLE_EQ(a.overlap_area({0.5, 0.5, 1.5, 1.5}), 1.0);  // contained
}

TEST(Rect, Translated) {
  const Rect r = Rect{0.0, 0.0, 1.0, 1.0}.translated(2.0, 3.0);
  EXPECT_DOUBLE_EQ(r.x0, 2.0);
  EXPECT_DOUBLE_EQ(r.y1, 4.0);
}

// -------------------------------------------------------------- Floorplan --

TEST(Floorplan, RejectsOverlap) {
  std::vector<Unit> units{
      {"a", UnitType::kCore, {0.0, 0.0, 1.0, 1.0}, 1},
      {"b", UnitType::kCache, {0.5, 0.5, 1.5, 1.5}, 0},
  };
  EXPECT_THROW(Floorplan(2.0, 2.0, std::move(units)), util::PreconditionError);
}

TEST(Floorplan, RejectsOutOfBounds) {
  std::vector<Unit> units{{"a", UnitType::kCore, {0.0, 0.0, 3.0, 1.0}, 1}};
  EXPECT_THROW(Floorplan(2.0, 2.0, std::move(units)), util::PreconditionError);
}

TEST(Floorplan, RejectsDuplicateNames) {
  std::vector<Unit> units{
      {"a", UnitType::kCore, {0.0, 0.0, 1.0, 1.0}, 1},
      {"a", UnitType::kCache, {1.0, 0.0, 2.0, 1.0}, 0},
  };
  EXPECT_THROW(Floorplan(2.0, 2.0, std::move(units)), util::PreconditionError);
}

TEST(Floorplan, SharedEdgesAllowed) {
  std::vector<Unit> units{
      {"a", UnitType::kCore, {0.0, 0.0, 1.0, 2.0}, 1},
      {"b", UnitType::kCache, {1.0, 0.0, 2.0, 2.0}, 0},
  };
  const Floorplan fp(2.0, 2.0, std::move(units));
  EXPECT_DOUBLE_EQ(fp.coverage(), 1.0);
}

// ---------------------------------------------------------------- XeonE5 --

class XeonFloorplanTest : public ::testing::Test {
 protected:
  Floorplan fp_ = make_xeon_e5_floorplan();
};

TEST_F(XeonFloorplanTest, DieAreaMatchesPaper) {
  // Paper: 246 mm² die in 14 nm.
  EXPECT_NEAR(fp_.die_area() * 1e6, 246.0, 2.0);
}

TEST_F(XeonFloorplanTest, HasEightCores) {
  EXPECT_EQ(fp_.core_count(), 8u);
  for (int id = 1; id <= 8; ++id) {
    EXPECT_EQ(fp_.core(id).core_id, id);
  }
}

TEST_F(XeonFloorplanTest, FullyTiled) {
  EXPECT_NEAR(fp_.coverage(), 1.0, 1e-9);
}

TEST_F(XeonFloorplanTest, CoreGridLayoutMatchesFig2c) {
  // West column holds cores 5..8 north→south; next column holds 1..4.
  EXPECT_EQ(fp_.core(5).column, 0);
  EXPECT_EQ(fp_.core(5).row, 0);
  EXPECT_EQ(fp_.core(8).column, 0);
  EXPECT_EQ(fp_.core(8).row, 3);
  EXPECT_EQ(fp_.core(1).column, 1);
  EXPECT_EQ(fp_.core(1).row, 0);
  EXPECT_EQ(fp_.core(4).column, 1);
  EXPECT_EQ(fp_.core(4).row, 3);
}

TEST_F(XeonFloorplanTest, CoresShareRowGeometry) {
  // Cores on the same row must share their y-extent (channel alignment).
  for (int row = 0; row < 4; ++row) {
    const CoreSite& west = fp_.core(5 + row);
    const CoreSite& east = fp_.core(1 + row);
    EXPECT_EQ(west.row, row);
    EXPECT_EQ(east.row, row);
    EXPECT_NEAR(west.rect.y0, east.rect.y0, 1e-12);
    EXPECT_NEAR(west.rect.y1, east.rect.y1, 1e-12);
  }
}

TEST_F(XeonFloorplanTest, DeadAreaOnTheEast) {
  // §VI-A: "a dead area producing no power on the right side of the die".
  const Unit& dead = fp_.unit("reserved_east");
  EXPECT_EQ(dead.type, UnitType::kReserved);
  EXPECT_NEAR(dead.rect.x1, fp_.die_width(), 1e-12);
  // It must be east of the LLC.
  EXPECT_GE(dead.rect.x0, fp_.unit("llc").rect.x1 - 1e-12);
}

TEST_F(XeonFloorplanTest, UncoreStripsAlongSouthEdge) {
  EXPECT_DOUBLE_EQ(fp_.unit("uncore_io").rect.y0, 0.0);
  EXPECT_NEAR(fp_.unit("memctrl").rect.y0, fp_.unit("uncore_io").rect.y1,
              1e-12);
}

TEST_F(XeonFloorplanTest, UnitLookup) {
  EXPECT_TRUE(fp_.index_of("llc").has_value());
  EXPECT_FALSE(fp_.index_of("nonexistent").has_value());
  EXPECT_THROW((void)fp_.unit("nonexistent"), util::PreconditionError);
  EXPECT_THROW((void)fp_.core(0), util::PreconditionError);
  EXPECT_THROW((void)fp_.core(9), util::PreconditionError);
}

TEST_F(XeonFloorplanTest, UnitsOfTypeCounts) {
  EXPECT_EQ(fp_.units_of(UnitType::kCore).size(), 8u);
  EXPECT_EQ(fp_.units_of(UnitType::kCache).size(), 1u);
  EXPECT_EQ(fp_.units_of(UnitType::kReserved).size(), 3u);
}

// --------------------------------------------------------------- PowerMap --

class PowerMapTest : public ::testing::Test {
 protected:
  Floorplan fp_ = make_xeon_e5_floorplan();
  GridSpec grid_ = [] {
    GridSpec g;
    g.x0 = 0.0;
    g.y0 = 0.0;
    g.dx = 0.5e-3;
    g.dy = 0.5e-3;
    g.nx = 90;  // 45 mm — larger than the die, as in the package grid
    g.ny = 85;
    return g;
  }();
};

TEST_F(PowerMapTest, ConservesTotalPower) {
  UnitPowers powers{{"core1", 5.0}, {"core5", 3.0}, {"llc", 2.0},
                    {"memctrl", 4.0}, {"uncore_io", 6.0}};
  const auto map = rasterize_power(fp_, powers, grid_, 13.0e-3, 14.0e-3);
  EXPECT_NEAR(util::grid_sum(map), total_power(powers), 1e-9);
}

TEST_F(PowerMapTest, PowerLandsInsideUnitFootprint) {
  UnitPowers powers{{"core5", 8.0}};
  const double ox = 13.0e-3, oy = 14.0e-3;
  const auto map = rasterize_power(fp_, powers, grid_, ox, oy);
  const Rect footprint = fp_.core(5).rect.translated(ox, oy);
  for (std::size_t iy = 0; iy < grid_.ny; ++iy) {
    for (std::size_t ix = 0; ix < grid_.nx; ++ix) {
      if (map(ix, iy) > 0.0) {
        EXPECT_GT(footprint.overlap_area(grid_.cell_rect(ix, iy)), 0.0);
      }
    }
  }
}

TEST_F(PowerMapTest, ZeroAndNegativePowers) {
  UnitPowers zero{{"core1", 0.0}};
  EXPECT_DOUBLE_EQ(util::grid_sum(rasterize_power(fp_, zero, grid_, 13e-3, 14e-3)),
                   0.0);
  UnitPowers negative{{"core1", -1.0}};
  EXPECT_THROW(rasterize_power(fp_, negative, grid_, 13e-3, 14e-3),
               util::PreconditionError);
}

TEST_F(PowerMapTest, UnknownUnitThrows) {
  UnitPowers powers{{"bogus", 1.0}};
  EXPECT_THROW(rasterize_power(fp_, powers, grid_, 13e-3, 14e-3),
               util::PreconditionError);
}

TEST_F(PowerMapTest, UnitOutsideGridThrows) {
  // Push the die past the grid's east edge: conservation must fail loudly.
  UnitPowers powers{{"core1", 5.0}};
  EXPECT_THROW(rasterize_power(fp_, powers, grid_, 40.0e-3, 14.0e-3),
               util::InvariantError);
}

TEST_F(PowerMapTest, CellRectTiling) {
  double area = 0.0;
  for (std::size_t iy = 0; iy < grid_.ny; ++iy) {
    for (std::size_t ix = 0; ix < grid_.nx; ++ix) {
      area += grid_.cell_rect(ix, iy).area();
    }
  }
  EXPECT_NEAR(area, grid_.width() * grid_.height(), 1e-12);
}

}  // namespace
}  // namespace tpcool::floorplan
