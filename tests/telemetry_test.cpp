// Tests for the telemetry layer: disabled-by-default no-op behavior,
// counter/gauge/histogram exactness, RAII span recording and nesting (on
// the main thread and across pool threads), ring-overflow drop-newest
// accounting, the two export formats, and the purity contract — engine
// digests are bit-identical with tracing on or off at 1 and 4 threads.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "tpcool/core/pipeline_pool.hpp"
#include "tpcool/core/solve_cache.hpp"
#include "tpcool/datacenter/fleet.hpp"
#include "tpcool/datacenter/streaming.hpp"
#include "tpcool/datacenter/workload_gen.hpp"
#include "tpcool/util/error.hpp"
#include "tpcool/util/logging.hpp"
#include "tpcool/util/telemetry.hpp"
#include "tpcool/util/thread_pool.hpp"

namespace tpcool::util {
namespace {

// Coarse grid: these tests assert telemetry semantics, not physics.
constexpr double kCell = 2.0e-3;

/// Telemetry is a process-wide singleton, so every test starts from a
/// clean enabled registry and leaves it disabled with the default ring
/// capacity re-armed (capacity changes apply on the next write to an
/// emptied ring, so reset() after enable() is enough).
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Telemetry::instance().enable();
    Telemetry::instance().reset();
  }
  void TearDown() override {
    Telemetry::instance().enable();  // restore default ring capacity
    Telemetry::instance().reset();
    Telemetry::instance().disable();
    ThreadPool::set_global_thread_count(0);
    core::SolveCache::global()->clear();
    core::PipelinePool::global().clear();
  }
};

/// Group merged spans by registry tid, preserving per-thread ring order.
std::map<std::uint32_t, std::vector<SpanRecord>> spans_by_tid() {
  std::map<std::uint32_t, std::vector<SpanRecord>> grouped;
  for (SpanRecord& span : Telemetry::instance().merged_spans()) {
    grouped[span.tid].push_back(std::move(span));
  }
  return grouped;
}

/// Assert the [start, end] scopes of one thread's spans overlap only by
/// containment.  Spans arrive in ring order (= end order); replay them
/// sorted by (start, -dur) against a scope stack.
void expect_proper_nesting(const std::vector<SpanRecord>& ring) {
  std::vector<SpanRecord> spans = ring;
  std::sort(spans.begin(), spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                              : a.dur_ns > b.dur_ns;
            });
  std::vector<std::int64_t> stack;  // open-scope end times
  for (const SpanRecord& span : spans) {
    const std::int64_t end = span.start_ns + span.dur_ns;
    while (!stack.empty() && span.start_ns >= stack.back()) stack.pop_back();
    if (!stack.empty()) {
      EXPECT_LE(end, stack.back())
          << span.name << " partially overlaps its enclosing span";
    }
    stack.push_back(end);
  }
}

// ----------------------------------------------------------- disabled path --

TEST_F(TelemetryTest, DisabledRecordsNothing) {
  Telemetry& telemetry = Telemetry::instance();
  telemetry.disable();

  TelemetryCounter& counter = telemetry.counter("test.disabled.counter");
  counter.add(5.0);
  telemetry.gauge("test.disabled.gauge").set(3.0);
  telemetry.histogram("test.disabled.hist").record(7.0);
  {
    TraceSpan span("test.disabled.span");
    span.arg("x", 1.0);
    span.detail("ignored");
  }

  EXPECT_FALSE(telemetry_enabled());
  EXPECT_EQ(counter.value(), 0.0);
  EXPECT_EQ(telemetry.gauge("test.disabled.gauge").value(), 0.0);
  EXPECT_EQ(telemetry.histogram("test.disabled.hist").count(), 0u);
  const MetricsSnapshot snapshot = telemetry.metrics();
  EXPECT_EQ(snapshot.spans, 0u);
  EXPECT_EQ(snapshot.dropped_spans, 0u);
}

// ----------------------------------------------------- counters and cells --

TEST_F(TelemetryTest, CountersGaugesHistogramsAreExact) {
  Telemetry& telemetry = Telemetry::instance();
  TelemetryCounter& counter = telemetry.counter("test.counter");
  counter.add();          // default delta 1
  counter.add(2.5);
  telemetry.counter_add("test.counter", 0.5);  // one-shot hits the same cell
  EXPECT_EQ(counter.value(), 4.0);

  telemetry.gauge_set("test.gauge", 1.0);
  telemetry.gauge_set("test.gauge", -2.0);  // last write wins
  EXPECT_EQ(telemetry.gauge("test.gauge").value(), -2.0);

  TelemetryHistogram& hist = telemetry.histogram("test.hist");
  for (const double v : {0.5, 1.0, 3.0, 100.0}) hist.record(v);
  EXPECT_EQ(hist.count(), 4u);

  const MetricsSnapshot snapshot = telemetry.metrics();
  const auto* recorded = [&]() -> const MetricsSnapshot::Histogram* {
    for (const auto& [name, h] : snapshot.histograms) {
      if (name == "test.hist") return &h;
    }
    return nullptr;
  }();
  ASSERT_NE(recorded, nullptr);
  EXPECT_EQ(recorded->count, 4u);
  EXPECT_DOUBLE_EQ(recorded->sum, 104.5);
  EXPECT_DOUBLE_EQ(recorded->min, 0.5);
  EXPECT_DOUBLE_EQ(recorded->max, 100.0);
  // Buckets: 0.5 and 1.0 land in (≤1], 3.0 in (2,4], 100.0 in (64,128].
  std::uint64_t total = 0;
  for (const auto& [upper, n] : recorded->buckets) {
    total += n;
    if (upper == 1.0) {
      EXPECT_EQ(n, 2u);
    } else if (upper == 4.0 || upper == 128.0) {
      EXPECT_EQ(n, 1u);
    }
  }
  EXPECT_EQ(total, 4u);
}

TEST_F(TelemetryTest, ResetZeroesCellsButHandlesStayValid) {
  Telemetry& telemetry = Telemetry::instance();
  TelemetryCounter& counter = telemetry.counter("test.reset.counter");
  counter.add(3.0);
  { TraceSpan span("test.reset.span"); }
  EXPECT_EQ(counter.value(), 3.0);
  EXPECT_GE(telemetry.metrics().spans, 1u);

  telemetry.reset();
  EXPECT_EQ(counter.value(), 0.0);  // same cell, zeroed in place
  EXPECT_EQ(telemetry.metrics().spans, 0u);
  EXPECT_EQ(telemetry.metrics().dropped_spans, 0u);
  counter.add(1.0);
  EXPECT_EQ(telemetry.counter("test.reset.counter").value(), 1.0);
}

// ------------------------------------------------------------------- spans --

TEST_F(TelemetryTest, SpansNestOnTheMainThread) {
  {
    TraceSpan outer("test.outer");
    outer.arg("level", 0.0);
    {
      TraceSpan inner("test.inner");
      inner.arg("level", 1.0);
      inner.detail("innermost");
    }
  }

  const std::vector<SpanRecord> spans = Telemetry::instance().merged_spans();
  ASSERT_EQ(spans.size(), 2u);
  // Ring order is completion order: the inner span ends (and records) first.
  EXPECT_EQ(spans[0].name, "test.inner");
  EXPECT_EQ(spans[1].name, "test.outer");
  EXPECT_EQ(spans[0].detail, "innermost");
  ASSERT_EQ(spans[0].args.size(), 1u);
  EXPECT_EQ(spans[0].args[0].first, "level");
  EXPECT_EQ(spans[0].args[0].second, 1.0);
  // Containment: the inner scope lies inside the outer scope.
  EXPECT_GE(spans[0].start_ns, spans[1].start_ns);
  EXPECT_LE(spans[0].start_ns + spans[0].dur_ns,
            spans[1].start_ns + spans[1].dur_ns);
  expect_proper_nesting(spans);
}

TEST_F(TelemetryTest, SpanArgsBeyondTheLimitAreIgnored) {
  {
    TraceSpan span("test.many_args");
    for (int i = 0; i < TraceSpan::kMaxArgs + 3; ++i) {
      span.arg("k", static_cast<double>(i));
    }
    span.detail(std::string(2 * TraceSpan::kMaxDetail, 'x'));  // truncated
  }
  const std::vector<SpanRecord> spans = Telemetry::instance().merged_spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].args.size(),
            static_cast<std::size_t>(TraceSpan::kMaxArgs));
  EXPECT_EQ(spans[0].detail, std::string(TraceSpan::kMaxDetail, 'x'));
}

TEST_F(TelemetryTest, SpansNestAcrossPoolThreads) {
  ThreadPool pool(4);
  pool.parallel_for(0, 32, 1, [](std::size_t begin, std::size_t end) {
    TraceSpan chunk("test.chunk");
    chunk.arg("begin", static_cast<double>(begin));
    for (std::size_t i = begin; i < end; ++i) {
      TraceSpan item("test.item");
      item.arg("i", static_cast<double>(i));
    }
  });

  const auto grouped = spans_by_tid();
  std::size_t chunks = 0;
  std::size_t items = 0;
  for (const auto& [tid, ring] : grouped) {
    expect_proper_nesting(ring);
    std::int64_t last_end = 0;  // ring order is end order within a thread
    for (const SpanRecord& span : ring) {
      EXPECT_GE(span.start_ns + span.dur_ns, last_end);
      last_end = span.start_ns + span.dur_ns;
      chunks += span.name == "test.chunk" ? 1 : 0;
      items += span.name == "test.item" ? 1 : 0;
    }
  }
  // Every chunk and item recorded exactly once, wherever it ran.
  EXPECT_EQ(chunks, 32u);
  EXPECT_EQ(items, 32u);
  EXPECT_EQ(Telemetry::instance().metrics().dropped_spans, 0u);
  // The pool instrumented itself along the way.
  EXPECT_GE(Telemetry::instance().counter("pool.jobs").value(), 1.0);
  EXPECT_GE(Telemetry::instance().counter("pool.chunks").value(), 32.0);
}

TEST_F(TelemetryTest, FullRingDropsNewestAndCountsThem) {
  Telemetry& telemetry = Telemetry::instance();
  telemetry.enable({.ring_capacity = 4});
  telemetry.reset();  // empty the ring so the new capacity takes effect

  for (int i = 0; i < 10; ++i) {
    TraceSpan span("test.overflow");
    span.arg("i", static_cast<double>(i));
  }

  const MetricsSnapshot snapshot = telemetry.metrics();
  EXPECT_EQ(snapshot.spans, 4u);
  EXPECT_EQ(snapshot.dropped_spans, 6u);
  // Drop-newest keeps the oldest prefix, in order.
  const std::vector<SpanRecord> spans = telemetry.merged_spans();
  ASSERT_EQ(spans.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(spans[static_cast<std::size_t>(i)].args.size(), 1u);
    EXPECT_EQ(spans[static_cast<std::size_t>(i)].args[0].second,
              static_cast<double>(i));
  }
}

// ------------------------------------------------------------------ export --

TEST_F(TelemetryTest, ChromeTraceExportRoundTrips) {
  Telemetry& telemetry = Telemetry::instance();
  {
    TraceSpan outer("test.export.outer");
    TraceSpan inner("test.export.inner");
    inner.arg("n", 42.0);
    inner.detail("with \"quotes\" and \\slashes");
  }
  telemetry.counter_add("test.export.counter", 7.0);

  const std::string trace_path = testing::TempDir() + "telemetry_trace.json";
  const std::string metrics_path =
      testing::TempDir() + "telemetry_metrics.json";
  telemetry.export_chrome_trace(trace_path);
  telemetry.export_metrics_json(metrics_path);

  std::ifstream trace_in(trace_path);
  ASSERT_TRUE(trace_in.good());
  std::stringstream trace_text;
  trace_text << trace_in.rdbuf();
  const std::string trace = trace_text.str();
  EXPECT_NE(trace.find("\"tpcool-trace-v1\""), std::string::npos);
  EXPECT_NE(trace.find("\"test.export.outer\""), std::string::npos);
  EXPECT_NE(trace.find("\"test.export.inner\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"metrics\""), std::string::npos);
  EXPECT_NE(trace.find("\"test.export.counter\": 7"), std::string::npos);
  EXPECT_NE(trace.find("with \\\"quotes\\\" and \\\\slashes"),
            std::string::npos);

  std::ifstream metrics_in(metrics_path);
  ASSERT_TRUE(metrics_in.good());
  std::stringstream metrics_text;
  metrics_text << metrics_in.rdbuf();
  EXPECT_NE(metrics_text.str().find("\"tpcool-metrics-v1\""),
            std::string::npos);
  EXPECT_NE(metrics_text.str().find("\"test.export.counter\": 7"),
            std::string::npos);

  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
}

TEST_F(TelemetryTest, ExportToUnwritablePathThrows) {
  EXPECT_THROW(
      Telemetry::instance().export_chrome_trace("/nonexistent-dir/trace.json"),
      PreconditionError);
}

// -------------------------------------------------------- purity contract --

TEST_F(TelemetryTest, EngineDigestsAreIdenticalTracingOnOrOff) {
  const datacenter::FleetConfig config =
      datacenter::make_heterogeneous_fleet(2, 2, kCell);
  datacenter::WorkloadGenConfig scenario;
  scenario.seed = 9;
  scenario.streams = 3;
  scenario.duration_s = 4.0 * 900.0;
  scenario.slot_s = 900.0;
  scenario.mean_phase_slots = 2.0;
  const std::vector<workload::WorkloadTrace> streams =
      datacenter::WorkloadGenerator(scenario).generate();

  const auto run_digest = [&]() {
    core::SolveCache::global()->clear();  // recompute, don't replay bits
    datacenter::StreamingFleetEngine engine(config, streams);
    datacenter::FleetResultAggregator aggregator;
    engine.add_observer(aggregator);
    engine.run();
    return datacenter::fleet_digest(aggregator.result());
  };

  for (const std::size_t threads : {1u, 4u}) {
    ThreadPool::set_global_thread_count(threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));

    Telemetry::instance().disable();
    const std::uint64_t untraced = run_digest();

    Telemetry::instance().enable();
    Telemetry::instance().reset();
    const std::uint64_t traced = run_digest();

    EXPECT_EQ(traced, untraced);
    // The traced run actually recorded: every cache miss is one solve span.
    const MetricsSnapshot snapshot = Telemetry::instance().metrics();
    EXPECT_EQ(snapshot.dropped_spans, 0u);
    const std::vector<SpanRecord> spans =
        Telemetry::instance().merged_spans();
    const auto solve_spans = static_cast<double>(std::count_if(
        spans.begin(), spans.end(),
        [](const SpanRecord& s) { return s.name == "solve"; }));
    EXPECT_GT(solve_spans, 0.0);
    EXPECT_EQ(solve_spans,
              Telemetry::instance().counter("solve.executed").value());
    EXPECT_GE(Telemetry::instance().counter("fleet.intervals").value(), 1.0);
    EXPECT_GE(Telemetry::instance().counter("pipeline.reuses").value(), 1.0);
  }
}

// ----------------------------------------------------------------- logging --

TEST(ParseLogLevel, AcceptsNamesAndDigits) {
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("WARN"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("Warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("0"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("3"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level(""), std::nullopt);
  EXPECT_EQ(parse_log_level("verbose"), std::nullopt);
  EXPECT_EQ(parse_log_level("4"), std::nullopt);
  EXPECT_EQ(parse_log_level("-1"), std::nullopt);
}

}  // namespace
}  // namespace tpcool::util
