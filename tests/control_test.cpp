// Tests for the closed-loop fleet controller (datacenter/control.hpp):
// config validation, the damped-integrator step response (monotone
// convergence to the gain·error/(1−damping) fixed point), time-weighted
// windowed averaging, clamping anti-windup under a saturated fleet,
// zero-gain ≡ controller-off bitwise, bit-identity of a controlled run at
// 1/2/4 threads, snapshot-warm replay of a controlled run with 0 cache
// misses, and the PR acceptance scenario: on the diurnal day the
// controller holds the fleet PUE inside ±2% of target over the final 12 h
// while the uncontrolled fleet drifts outside the band.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "tpcool/core/pipeline_pool.hpp"
#include "tpcool/core/solve_cache.hpp"
#include "tpcool/datacenter/control.hpp"
#include "tpcool/datacenter/fleet.hpp"
#include "tpcool/datacenter/streaming.hpp"
#include "tpcool/datacenter/workload_gen.hpp"
#include "tpcool/util/error.hpp"
#include "tpcool/util/thread_pool.hpp"

namespace tpcool::datacenter {
namespace {

// Coarse grid: these tests assert control semantics, not physics.
constexpr double kCell = 2.0e-3;

class ControlTest : public ::testing::Test {
 protected:
  void TearDown() override {
    util::ThreadPool::set_global_thread_count(0);
    core::SolveCache::global()->clear();
    core::PipelinePool::global().clear();
  }
};

/// A short closed-loop scenario for the bitwise/threading tests: the
/// hot-climate demo fleet (so bias actuation has authority) on a short
/// generated workload — same shape as `make_pue_tracking_day`, minutes of
/// simulated time instead of a day.
ControlScenario short_control_scenario(std::uint64_t seed) {
  ControlScenario scenario = make_pue_tracking_day(seed, 3, kCell);
  WorkloadGenConfig workload;
  workload.seed = seed;
  workload.streams = 3;
  workload.duration_s = 6.0 * 900.0;
  workload.slot_s = 900.0;
  workload.mean_phase_slots = 2.0;
  scenario.streams = WorkloadGenerator(workload).generate();
  return scenario;
}

/// A synthetic interval carrying only what the controller reads: the PUE
/// measurement and the interval duration.
FleetInterval constant_pue_interval(std::size_t index, double pue,
                                    double duration_s = 900.0) {
  FleetInterval interval;
  interval.interval = index;
  interval.start_s = static_cast<double>(index) * duration_s;
  interval.duration_s = duration_s;
  interval.pue = pue;
  return interval;
}

// ------------------------------------------------------------- validation --

TEST_F(ControlTest, ValidatesItsConfig) {
  EXPECT_NO_THROW(validate_controller_config(FleetControllerConfig{}));

  FleetControllerConfig bad = {};
  bad.target = -0.5;
  EXPECT_THROW(validate_controller_config(bad), util::PreconditionError);
  bad = {};
  bad.target = std::nan("");
  EXPECT_THROW(validate_controller_config(bad), util::PreconditionError);
  bad = {};
  bad.window_intervals = 0;
  EXPECT_THROW(validate_controller_config(bad), util::PreconditionError);
  bad = {};
  bad.gain_c = -1.0;
  EXPECT_THROW(validate_controller_config(bad), util::PreconditionError);
  bad = {};
  bad.damping = 0.0;
  EXPECT_THROW(validate_controller_config(bad), util::PreconditionError);
  bad = {};
  bad.damping = 1.5;
  EXPECT_THROW(validate_controller_config(bad), util::PreconditionError);
  bad = {};
  bad.min_bias_c = 1.0;
  bad.max_bias_c = -1.0;
  EXPECT_THROW(validate_controller_config(bad), util::PreconditionError);
  bad = {};
  bad.quantum_c = 0.0;
  EXPECT_THROW(validate_controller_config(bad), util::PreconditionError);
  bad = {};
  bad.qos_backoff_c = -0.1;
  EXPECT_THROW(validate_controller_config(bad), util::PreconditionError);

  // The constructor validates too.
  FleetControllerConfig zero_quantum = {};
  zero_quantum.quantum_c = 0.0;
  EXPECT_THROW(FleetController{zero_quantum}, util::PreconditionError);
}

// ---------------------------------------------------------- step response --

TEST_F(ControlTest, DampedStepResponseConvergesMonotonicallyToFixedPoint) {
  // Constant measurement below target: error = −0.2 every interval, so the
  // integrator walks monotonically to gain·error/(1−damping) = −4 °C.
  FleetControllerConfig config = {};
  config.target = 1.2;
  config.window_intervals = 1;
  config.gain_c = 10.0;
  config.damping = 0.5;
  config.min_bias_c = -100.0;
  config.max_bias_c = 0.0;
  FleetController controller(config);
  controller.on_run_begin(make_heterogeneous_fleet(2, 2, kCell), 1, 3600.0);

  const double fixed_point =
      config.gain_c * (1.0 - config.target) / (1.0 - config.damping);
  double previous = controller.bias_c(0);
  double previous_distance = std::abs(previous - fixed_point);
  for (std::size_t i = 0; i < 50; ++i) {
    controller.on_interval(constant_pue_interval(i, 1.0), {});
    EXPECT_DOUBLE_EQ(controller.last_error(), 1.0 - config.target);
    const double bias = controller.bias_c(0);
    // Monotone: each step moves toward the fixed point, never past it.
    EXPECT_LT(bias, previous);
    EXPECT_GE(bias, fixed_point);
    const double distance = std::abs(bias - fixed_point);
    EXPECT_LE(distance, config.damping * previous_distance + 1e-12);
    // Both racks see the same fleet-wide error: identical trajectories.
    EXPECT_DOUBLE_EQ(controller.bias_c(1), bias);
    previous = bias;
    previous_distance = distance;
  }
  EXPECT_NEAR(controller.bias_c(0), fixed_point, 1e-9);
  // Quantized actuation lands on the configured lattice.
  EXPECT_DOUBLE_EQ(controller.applied_bias_c(0), -4.0);
}

TEST_F(ControlTest, WindowedMeasurementIsTimeWeighted) {
  FleetControllerConfig config = {};
  config.window_intervals = 2;
  FleetController controller(config);
  controller.on_run_begin(make_heterogeneous_fleet(2, 2, kCell), 1, 3600.0);

  controller.on_interval(constant_pue_interval(0, 1.5, 100.0), {});
  EXPECT_DOUBLE_EQ(controller.windowed_measurement(), 1.5);
  controller.on_interval(constant_pue_interval(1, 1.1, 300.0), {});
  EXPECT_DOUBLE_EQ(controller.windowed_measurement(),
                   (1.5 * 100.0 + 1.1 * 300.0) / 400.0);
  // The window slides: interval 0 ages out.
  controller.on_interval(constant_pue_interval(2, 1.3, 100.0), {});
  EXPECT_DOUBLE_EQ(controller.windowed_measurement(),
                   (1.1 * 300.0 + 1.3 * 100.0) / 400.0);
}

// -------------------------------------------------------------- anti-windup --

TEST_F(ControlTest, AntiWindupRecoversWithoutUnwindingBankedError) {
  // Pure integrator (damping = 1) with a hard saturation: a long
  // excursion must not bank correction beyond the clamp, so recovery
  // starts the moment the error flips — with the same first step a
  // freshly-saturated controller would take.
  FleetControllerConfig config = {};
  config.target = 2.0;
  config.window_intervals = 1;
  config.gain_c = 10.0;
  config.damping = 1.0;
  config.min_bias_c = -5.0;
  config.max_bias_c = 0.0;
  FleetController controller(config);
  controller.on_run_begin(make_heterogeneous_fleet(2, 2, kCell), 1, 3600.0);

  // 30 intervals of error −1: one unclamped step is already −10, so the
  // stored state pins at the rail immediately and stays there.
  for (std::size_t i = 0; i < 30; ++i) {
    controller.on_interval(constant_pue_interval(i, 1.0), {});
    EXPECT_DOUBLE_EQ(controller.bias_c(0), config.min_bias_c);
    EXPECT_DOUBLE_EQ(controller.applied_bias_c(0), config.min_bias_c);
  }

  // Error flips to +1: a clamping integrator recovers in one step
  // (−5 + 10 → clamped to 0).  A windup-prone one would sit at
  // −10·30 = −300 and need 30 intervals to surface.
  controller.on_interval(constant_pue_interval(30, 3.0), {});
  EXPECT_DOUBLE_EQ(controller.bias_c(0), config.max_bias_c);
  EXPECT_DOUBLE_EQ(controller.applied_bias_c(0), config.max_bias_c);
}

TEST_F(ControlTest, QosBackoffShiftsOnlyViolatingRacks) {
  FleetControllerConfig config = {};
  config.target = 1.0;  // zero error: isolates the backoff term
  config.window_intervals = 1;
  config.gain_c = 10.0;
  config.damping = 1.0;
  config.min_bias_c = -10.0;
  config.max_bias_c = 0.0;
  config.qos_backoff_c = 2.0;
  FleetController controller(config);
  controller.on_run_begin(make_heterogeneous_fleet(2, 2, kCell), 1, 3600.0);

  FleetInterval interval = constant_pue_interval(0, 1.0);
  JobOutcome violating;
  violating.rack = 1;
  violating.tcase_limit_exceeded = true;
  interval.jobs.push_back(violating);
  controller.on_interval(interval, {});
  EXPECT_DOUBLE_EQ(controller.bias_c(0), 0.0);
  EXPECT_DOUBLE_EQ(controller.bias_c(1), -config.qos_backoff_c);
}

// ------------------------------------------------- zero-gain == controller-off --

TEST_F(ControlTest, ZeroGainIsBitIdenticalToNoController) {
  ControlScenario scenario = short_control_scenario(11);
  scenario.controller.gain_c = 0.0;

  core::SolveCache::global()->clear();
  StreamingFleetEngine off(scenario.fleet, scenario.streams);
  FleetResultAggregator off_agg;
  off.add_observer(off_agg);
  off.run();
  const FleetResult uncontrolled = off_agg.take();

  core::SolveCache::global()->clear();
  FleetController controller(scenario.controller);
  FleetResult zero_gain =
      run_controlled_fleet(scenario.fleet, scenario.streams, controller);

  // The controller was in the loop (state stamped on every interval) but
  // actuated nothing: every applied bias is exactly 0.
  ASSERT_EQ(zero_gain.intervals.size(), uncontrolled.intervals.size());
  for (const FleetInterval& interval : zero_gain.intervals) {
    ASSERT_TRUE(interval.control.active);
    for (const double bias : interval.control.rack_bias_c) {
      EXPECT_EQ(bias, 0.0);
    }
  }

  // Strip the control stamps: the physics underneath is bit-identical to
  // the controller-off run (a zero bias takes the exact unbiased path).
  for (FleetInterval& interval : zero_gain.intervals) {
    interval.control = FleetControlState{};
  }
  EXPECT_EQ(fleet_digest(zero_gain), fleet_digest(uncontrolled));
}

// -------------------------------------------------------------- bit-identity --

TEST_F(ControlTest, ControlledRunBitIdenticalAcrossThreadCounts) {
  const ControlScenario scenario = short_control_scenario(5);

  util::ThreadPool::set_global_thread_count(1);
  core::SolveCache::global()->clear();
  FleetController reference_controller(scenario.controller);
  const std::uint64_t reference = fleet_digest(run_controlled_fleet(
      scenario.fleet, scenario.streams, reference_controller));

  for (const std::size_t threads : {2u, 4u}) {
    util::ThreadPool::set_global_thread_count(threads);
    core::SolveCache::global()->clear();  // recompute, don't replay bits
    SCOPED_TRACE("threads=" + std::to_string(threads));
    FleetController controller(scenario.controller);
    EXPECT_EQ(fleet_digest(run_controlled_fleet(scenario.fleet,
                                                scenario.streams, controller)),
              reference);
  }
}

TEST_F(ControlTest, ControllerStateResetsBetweenRuns) {
  // One controller instance driving two identical runs produces identical
  // bits: on_run_begin resets the integrator and the window.
  const ControlScenario scenario = short_control_scenario(9);
  FleetController controller(scenario.controller);
  const std::uint64_t first = fleet_digest(
      run_controlled_fleet(scenario.fleet, scenario.streams, controller));
  const std::uint64_t second = fleet_digest(
      run_controlled_fleet(scenario.fleet, scenario.streams, controller));
  EXPECT_EQ(first, second);
}

TEST_F(ControlTest, SnapshotWarmedControlledRunReplaysWithZeroMisses) {
  // The quantized bias lattice keeps biased operating points cache-key
  // stable: a snapshot-warmed rerun of the controlled run serves every
  // solve from the loaded entries (0 misses) and reproduces the bits.
  const ControlScenario scenario = short_control_scenario(3);
  util::ThreadPool::set_global_thread_count(2);
  core::SolveCache::global()->clear();
  FleetController cold_controller(scenario.controller);
  const FleetResult cold = run_controlled_fleet(scenario.fleet,
                                                scenario.streams,
                                                cold_controller);

  const std::string path = ::testing::TempDir() + "tpcool_control_snap.bin";
  core::SolveCache::global()->save(path);
  core::SolveCache::global()->clear();
  core::SolveCache::global()->load(path);
  FleetController warm_controller(scenario.controller);
  const FleetResult warm = run_controlled_fleet(scenario.fleet,
                                                scenario.streams,
                                                warm_controller);
  const core::SolveCache::Stats stats = core::SolveCache::global()->stats();
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_EQ(fleet_digest(cold), fleet_digest(warm));
  std::remove(path.c_str());
}

// ------------------------------------------------------ disturbance recovery --

TEST_F(ControlTest, RecoversTargetAfterChillerDerateDisturbance) {
  // Constant load, so every PUE move is the controller's or the event
  // timeline's: rack 0's chiller derates to 60% mid-run and is restored
  // 15 intervals later.  The loop settles near target, the derate kicks
  // the PUE up past it, the controller walks it back within a few
  // intervals, and after the restore it re-converges from below.
  FleetConfig fleet = make_heterogeneous_fleet(2, 2, kCell);
  for (std::size_t r = 0; r < fleet.racks.size(); ++r) {
    fleet.racks[r].chiller.ambient_c = 46.0 + 0.5 * static_cast<double>(r);
  }
  constexpr double kIntervalS = 900.0;
  fleet.events = {
      {10.0 * kIntervalS, 0, FleetEventKind::kChillerDerate, 0.6},
      {25.0 * kIntervalS, 0, FleetEventKind::kChillerRestore, 1.0}};
  std::vector<workload::WorkloadTrace> streams;
  for (const char* bench : {"x264", "blackscholes"}) {
    streams.emplace_back(
        std::vector<workload::TracePhase>(40, {bench, {2.0}, kIntervalS}));
  }

  ControlScenario scenario = make_pue_tracking_day(0, 2, kCell);
  scenario.controller.target = 1.115;
  FleetController controller(scenario.controller);
  const FleetResult result =
      run_controlled_fleet(fleet, streams, controller);
  ASSERT_EQ(result.intervals.size(), 40u);

  const double target = scenario.controller.target;
  constexpr double kSettledTolerance = 0.01;
  // Settled before the disturbance.
  for (std::size_t i = 5; i < 10; ++i) {
    EXPECT_NEAR(result.intervals[i].pue, target, kSettledTolerance)
        << "interval " << i;
  }
  // The derate is a real disturbance: the PUE spikes past the settled band.
  double peak = 0.0;
  for (std::size_t i = 10; i < 13; ++i) {
    peak = std::max(peak, result.intervals[i].pue);
  }
  EXPECT_GT(peak, target + kSettledTolerance);
  // ... and the controller pulls it back onto target while still derated.
  for (std::size_t i = 15; i < 25; ++i) {
    EXPECT_NEAR(result.intervals[i].pue, target, kSettledTolerance)
        << "interval " << i;
  }
  // After the restore the loop re-converges from below.
  for (std::size_t i = 30; i < 40; ++i) {
    EXPECT_NEAR(result.intervals[i].pue, target, kSettledTolerance)
        << "interval " << i;
  }
}

// ------------------------------------------------------ acceptance scenario --

TEST_F(ControlTest, HoldsPueBandOverFinalHalfOfDiurnalDay) {
  // The PR acceptance criterion: on diurnal_fleet_day the controller
  // holds the fleet PUE within ±2% of target over the final 12 h, where
  // the uncontrolled fleet sits outside the band the whole time.
  const ControlScenario scenario = make_pue_tracking_day(42, 4, kCell);
  const double low = 0.98 * scenario.controller.target;
  const double high = 1.02 * scenario.controller.target;
  constexpr double kFinalHalfStartS = 12.0 * 3600.0;

  StreamingFleetEngine open_loop(scenario.fleet, scenario.streams);
  FleetResultAggregator open_agg;
  open_loop.add_observer(open_agg);
  open_loop.run();
  const FleetResult uncontrolled = open_agg.take();

  FleetController controller(scenario.controller);
  const FleetResult controlled =
      run_controlled_fleet(scenario.fleet, scenario.streams, controller);

  ASSERT_EQ(controlled.intervals.size(), uncontrolled.intervals.size());
  std::size_t checked = 0;
  for (std::size_t i = 0; i < controlled.intervals.size(); ++i) {
    if (controlled.intervals[i].start_s < kFinalHalfStartS) continue;
    SCOPED_TRACE("interval=" + std::to_string(i));
    EXPECT_GE(controlled.intervals[i].pue, low);
    EXPECT_LE(controlled.intervals[i].pue, high);
    // Without the loop the same fleet drifts below the band all day.
    EXPECT_LT(uncontrolled.intervals[i].pue, low);
    ++checked;
  }
  EXPECT_GT(checked, 0u);
  // The loop actually actuated: cool-only biases pulled below zero.
  double min_bias = 0.0;
  for (const FleetInterval& interval : controlled.intervals) {
    for (const double bias : interval.control.rack_bias_c) {
      min_bias = std::min(min_bias, bias);
    }
  }
  EXPECT_LT(min_bias, 0.0);
}

}  // namespace
}  // namespace tpcool::datacenter
