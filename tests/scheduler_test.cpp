// Tests for tpcool::core::Scheduler and the approach pipelines — Algorithm 1
// end to end, C-state management, and the rack coordinator.

#include <gtest/gtest.h>

#include "tpcool/core/pipelines.hpp"
#include "tpcool/core/rack_coordinator.hpp"
#include "tpcool/util/error.hpp"
#include "tpcool/workload/performance_model.hpp"

namespace tpcool::core {
namespace {

constexpr double kCoarseCell = 1.5e-3;

class SchedulerTest : public ::testing::Test {
 protected:
  ApproachPipeline proposed_{Approach::kProposed, kCoarseCell};
  ApproachPipeline soa_{Approach::kSoaBalancing, kCoarseCell};
};

TEST_F(SchedulerTest, DecisionMeetsQos) {
  for (const auto& bench : workload::parsec_benchmarks()) {
    for (const auto& qos : workload::qos_levels()) {
      const ScheduleDecision d = proposed_.scheduler().schedule(bench, qos);
      EXPECT_TRUE(qos.satisfied_by(d.point.norm_time))
          << bench.name << " @" << qos.factor;
      EXPECT_EQ(static_cast<int>(d.cores.size()), d.point.config.cores);
    }
  }
}

TEST_F(SchedulerTest, QosOneSelectsBaselineEverywhere) {
  // §VIII: "when no QoS degradation is allowed, all approaches run the
  // workload with fmax and maximum number of available cores and threads".
  const workload::QoSRequirement qos{1.0};
  for (const auto& bench : workload::parsec_benchmarks()) {
    EXPECT_EQ(proposed_.scheduler().schedule(bench, qos).point.config,
              workload::baseline_configuration());
    EXPECT_EQ(soa_.scheduler().schedule(bench, qos).point.config,
              workload::baseline_configuration());
  }
}

TEST_F(SchedulerTest, ProposedManagesCstatesByTolerableLatency) {
  const workload::QoSRequirement qos{3.0};
  // facesim tolerates no latency -> POLL; swaptions tolerates 10 µs -> C1E.
  const ScheduleDecision rt = proposed_.scheduler().schedule(
      workload::find_benchmark("facesim"), qos);
  EXPECT_EQ(rt.idle_state, power::CState::kPoll);
  const ScheduleDecision batch = proposed_.scheduler().schedule(
      workload::find_benchmark("swaptions"), qos);
  EXPECT_EQ(batch.idle_state, power::CState::kC1E);
}

TEST_F(SchedulerTest, SoaAlwaysPolls) {
  const workload::QoSRequirement qos{3.0};
  for (const auto& bench : workload::parsec_benchmarks()) {
    EXPECT_EQ(soa_.scheduler().schedule(bench, qos).idle_state,
              power::CState::kPoll);
  }
}

TEST_F(SchedulerTest, ProposedPowerNeverAboveSoa) {
  for (const auto& qos : workload::qos_levels()) {
    for (const auto& name : {"x264", "canneal", "ferret"}) {
      const auto& bench = workload::find_benchmark(name);
      const double p_prop =
          proposed_.scheduler().schedule(bench, qos).point.power_w;
      const double p_soa =
          soa_.scheduler().schedule(bench, qos).point.power_w;
      EXPECT_LE(p_prop, p_soa + 1e-9) << name << " @" << qos.factor;
    }
  }
}

TEST_F(SchedulerTest, RunReturnsDecisionAndResult) {
  const auto& bench = workload::find_benchmark("vips");
  ScheduleDecision decision;
  const SimulationResult sim = proposed_.scheduler().run(
      bench, workload::QoSRequirement{2.0}, &decision);
  EXPECT_EQ(sim.active_cores, decision.cores);
  EXPECT_GT(sim.die.max_c, 30.0);
}

TEST(ApproachPipeline, NamesMatchPaperNotation) {
  EXPECT_STREQ(to_string(Approach::kProposed), "Proposed");
  EXPECT_STREQ(to_string(Approach::kSoaBalancing), "[8]+[27]+[9]");
  EXPECT_STREQ(to_string(Approach::kSoaInletFirst), "[8]+[27]+[7]");
}

// --------------------------------------------------------------- rack plan --

TEST(RackCoordinator, SharedSupplyIsMinimumAndFeasible) {
  RackCoordinator::Config config;
  config.approach = Approach::kProposed;
  config.qos = workload::QoSRequirement{2.0};
  config.cell_size_m = 2.0e-3;  // very coarse: many solves
  RackCoordinator coordinator(std::move(config));

  const RackPlan plan =
      coordinator.plan({"x264", "canneal", "swaptions"});
  ASSERT_EQ(plan.servers.size(), 3u);
  double min_supply = 1e9;
  for (const ServerPlan& sp : plan.servers) {
    EXPECT_GT(sp.package_power_w, 0.0);
    min_supply = std::min(min_supply, sp.max_supply_temp_c);
  }
  EXPECT_DOUBLE_EQ(plan.cooling.supply_temp_c, min_supply);
  EXPECT_GT(plan.cooling.return_temp_c, plan.cooling.supply_temp_c);
  EXPECT_GT(plan.cooling.chiller_electrical_w, 0.0);
}

TEST(RackCoordinator, HeavierRackNeedsMorePower) {
  RackCoordinator::Config config;
  config.qos = workload::QoSRequirement{2.0};
  config.cell_size_m = 2.0e-3;
  RackCoordinator coordinator(config);
  const RackPlan small = coordinator.plan({"canneal"});
  RackCoordinator coordinator2(config);
  const RackPlan large = coordinator2.plan({"canneal", "x264", "facesim"});
  EXPECT_GT(large.cooling.total_heat_w, small.cooling.total_heat_w);
  EXPECT_GE(large.cooling.chiller_electrical_w,
            small.cooling.chiller_electrical_w);
}

TEST(RackCoordinator, EmptyPlanThrows) {
  RackCoordinator::Config config;
  config.cell_size_m = 2.0e-3;
  RackCoordinator coordinator(config);
  EXPECT_THROW(coordinator.plan({}), util::PreconditionError);
}

}  // namespace
}  // namespace tpcool::core
