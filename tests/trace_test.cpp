// Tests for workload traces and the trace-driven transient runner.

#include <gtest/gtest.h>

#include "tpcool/core/pipelines.hpp"
#include "tpcool/core/trace_runner.hpp"
#include "tpcool/util/error.hpp"

namespace tpcool {
namespace {

// ------------------------------------------------------------------ trace --

TEST(WorkloadTrace, PhaseLookupByTime) {
  const workload::WorkloadTrace trace({
      {"x264", {1.0}, 10.0},
      {"canneal", {3.0}, 5.0},
      {"vips", {2.0}, 15.0},
  });
  EXPECT_EQ(trace.phase_count(), 3u);
  EXPECT_DOUBLE_EQ(trace.total_duration_s(), 30.0);
  EXPECT_EQ(trace.phase_at(0.0).benchmark, "x264");
  EXPECT_EQ(trace.phase_at(9.99).benchmark, "x264");
  EXPECT_EQ(trace.phase_at(10.0).benchmark, "canneal");
  EXPECT_EQ(trace.phase_at(14.99).benchmark, "canneal");
  EXPECT_EQ(trace.phase_at(15.0).benchmark, "vips");
  EXPECT_EQ(trace.phase_at(1e9).benchmark, "vips");  // clamped to last
  EXPECT_EQ(trace.phase_index_at(12.0), 1u);
}

TEST(WorkloadTrace, ValidatesPhases) {
  EXPECT_THROW(workload::WorkloadTrace({}), util::PreconditionError);
  EXPECT_THROW(workload::WorkloadTrace({{"x264", {1.0}, 0.0}}),
               util::PreconditionError);
  EXPECT_THROW(workload::WorkloadTrace({{"nonexistent", {1.0}, 1.0}}),
               util::PreconditionError);
  EXPECT_THROW(workload::WorkloadTrace({{"x264", {0.5}, 1.0}}),
               util::PreconditionError);
}

TEST(WorkloadTrace, BuiltinTracesValid) {
  const workload::WorkloadTrace daily = workload::make_daily_trace(5.0);
  EXPECT_GE(daily.phase_count(), 4u);
  EXPECT_GT(daily.total_duration_s(), 0.0);
  const workload::WorkloadTrace stress = workload::make_stress_trace(5.0);
  EXPECT_GE(stress.phase_count(), 3u);
  // The stress trace alternates tight and relaxed QoS.
  bool has_tight = false, has_relaxed = false;
  for (const auto& p : stress.phases()) {
    has_tight |= p.qos.factor == 1.0;
    has_relaxed |= p.qos.factor == 3.0;
  }
  EXPECT_TRUE(has_tight);
  EXPECT_TRUE(has_relaxed);
}

// ----------------------------------------------------------- trace runner --

class TraceRunnerTest : public ::testing::Test {
 protected:
  TraceRunnerTest() : pipeline_(core::Approach::kProposed, 2.0e-3) {}
  core::ApproachPipeline pipeline_;
};

TEST_F(TraceRunnerTest, RunsDailyTraceWithinLimits) {
  core::TraceRunner runner(pipeline_.server(), pipeline_.scheduler(),
                           {.control_period_s = 1.0});
  const core::TraceResult result =
      runner.run(workload::make_daily_trace(4.0));
  EXPECT_EQ(result.phases.size(), 6u);
  EXPECT_FALSE(result.tcase_limit_exceeded);
  EXPECT_GT(result.total_energy_j, 0.0);
  for (const core::PhaseRecord& r : result.phases) {
    EXPECT_GT(r.peak_tcase_c, 30.0);
    EXPECT_LE(r.peak_tcase_c, 85.0);
    EXPECT_GE(r.peak_die_c, r.peak_tcase_c);  // die is always hotter
    EXPECT_GT(r.avg_power_w, 20.0);
    EXPECT_NEAR(r.energy_j, r.avg_power_w * 4.0 *
                    (r.phase_index == 0 || r.phase_index == 5 ? 2.0
                     : r.phase_index == 2 || r.phase_index == 4 ? 1.5
                                                                : 1.0),
                1e-6);
  }
}

TEST_F(TraceRunnerTest, InteractivePhasesRunHotterThanBatch) {
  core::TraceRunner runner(pipeline_.server(), pipeline_.scheduler(),
                           {.control_period_s = 1.0});
  const core::TraceResult result =
      runner.run(workload::make_daily_trace(6.0));
  // Phase 1 is the 1x x264 burst; phase 0 is the 3x overnight batch.
  EXPECT_GT(result.phases[1].avg_power_w, result.phases[0].avg_power_w);
  EXPECT_GT(result.phases[1].peak_die_c, result.phases[0].peak_die_c);
}

TEST_F(TraceRunnerTest, ThermalStateCarriesAcrossPhases) {
  // A light phase right after a heavy one starts warm: its *end* TCASE is
  // lower than its *start* (cooling down), which is only observable if the
  // state is carried over.
  core::TraceRunner runner(pipeline_.server(), pipeline_.scheduler(),
                           {.control_period_s = 0.5});
  const workload::WorkloadTrace trace({
      {"x264", {1.0}, 8.0},
      {"canneal", {3.0}, 8.0},
  });
  const core::TraceResult result = runner.run(trace);
  ASSERT_EQ(result.phases.size(), 2u);
  // The batch phase's peak is at its beginning (inherited heat).
  EXPECT_GT(result.phases[1].peak_tcase_c,
            result.phases[1].end_tcase_c + 0.2);
}

// Edge cases feeding the datacenter fleet layer (which consumes the same
// WorkloadTrace streams): the empty trace is unconstructible, a
// single-phase trace runs end to end, and a phase that cannot hold the
// TCASE limit raises tcase_limit_exceeded (tests/datacenter_test.cpp
// verifies the same condition lands in the fleet QoS-violation counts).

TEST_F(TraceRunnerTest, EmptyTraceIsUnconstructible) {
  // There is no empty-trace run: validation rejects it before any runner
  // (or the fleet layer) can see one.
  EXPECT_THROW(workload::WorkloadTrace({}), util::PreconditionError);
}

TEST_F(TraceRunnerTest, SinglePhaseTraceRunsOneConsistentRecord) {
  core::TraceRunner runner(pipeline_.server(), pipeline_.scheduler(),
                           {.control_period_s = 1.0});
  const workload::WorkloadTrace trace({{"x264", {2.0}, 3.0}});
  const core::TraceResult result = runner.run(trace);
  ASSERT_EQ(result.phases.size(), 1u);
  const core::PhaseRecord& r = result.phases[0];
  EXPECT_EQ(r.phase_index, 0u);
  EXPECT_EQ(r.benchmark, "x264");
  EXPECT_DOUBLE_EQ(r.qos_factor, 2.0);
  EXPECT_GT(r.peak_tcase_c, 0.0);
  EXPECT_GE(r.peak_tcase_c, r.end_tcase_c);
  EXPECT_GE(r.peak_die_c, r.peak_tcase_c);
  EXPECT_FALSE(result.tcase_limit_exceeded);
  // Trace totals degenerate to the single phase.
  EXPECT_DOUBLE_EQ(result.peak_tcase_c, r.peak_tcase_c);
  EXPECT_DOUBLE_EQ(result.total_energy_j, r.energy_j);
}

TEST_F(TraceRunnerTest, FlagsPhaseExceedingTcaseLimit) {
  // A limit below the start temperature is exceeded from the first step.
  core::TraceRunner runner(pipeline_.server(), pipeline_.scheduler(),
                           {.control_period_s = 1.0,
                            .tcase_limit_c = 30.0,
                            .start_temperature_c = 35.0});
  const core::TraceResult result =
      runner.run(workload::WorkloadTrace({{"x264", {1.0}, 2.0}}));
  EXPECT_TRUE(result.tcase_limit_exceeded);
  EXPECT_GT(result.peak_tcase_c, 30.0);
}

TEST_F(TraceRunnerTest, FinalStepClampsToThePhaseBoundary) {
  // Regression: `steps = ceil(duration / period)` with every step a full
  // period integrated a 1.1 s phase at a 0.5 s period for 1.5 s — the
  // thermal state overshot the boundary while energy_j covered 1.1 s.
  // The final step is now clamped to the remainder.
  const workload::WorkloadTrace trace({{"x264", {2.0}, 1.1}});

  core::TraceRunner half(pipeline_.server(), pipeline_.scheduler(),
                         {.control_period_s = 0.5});
  const core::TraceResult at_half = half.run(trace);
  ASSERT_EQ(at_half.phases.size(), 1u);
  // Exact landing (by assignment, not accumulation) and the clamped step
  // count: 0.5 + 0.5 + 0.1.
  EXPECT_EQ(at_half.phases[0].sim_time_s, 1.1);
  EXPECT_EQ(at_half.phases[0].steps, 3u);

  // A 0.55 s period divides 1.1 s evenly — same window, no clamp needed.
  // Both runs now integrate the same 1.1 s, so their end states agree to
  // discretization error; the buggy runner's extra 0.4 s of heating put
  // them much further apart.
  core::TraceRunner even(pipeline_.server(), pipeline_.scheduler(),
                         {.control_period_s = 0.55});
  const core::TraceResult at_even = even.run(trace);
  EXPECT_EQ(at_even.phases[0].sim_time_s, 1.1);
  EXPECT_EQ(at_even.phases[0].steps, 2u);
  EXPECT_NEAR(at_half.phases[0].end_tcase_c, at_even.phases[0].end_tcase_c,
              0.5);

  // The buggy integrator behaved exactly like a 1.5 s phase at the same
  // period; the clamped one must stop strictly earlier on the heating
  // curve.
  const core::TraceResult at_full =
      half.run(workload::WorkloadTrace({{"x264", {2.0}, 1.5}}));
  EXPECT_LT(at_half.phases[0].end_tcase_c, at_full.phases[0].end_tcase_c);

  // energy_j and the thermal state cover the same 1.1 s window.
  EXPECT_NEAR(at_half.phases[0].energy_j,
              at_half.phases[0].avg_power_w * 1.1, 1e-9);
}

TEST_F(TraceRunnerTest, IntegerMultiplePhasesKeepFullPeriodSteps) {
  // Phases that divide evenly by the period are untouched by the clamp.
  core::TraceRunner runner(pipeline_.server(), pipeline_.scheduler(),
                           {.control_period_s = 1.0});
  const core::TraceResult result =
      runner.run(workload::WorkloadTrace({{"x264", {2.0}, 3.0}}));
  ASSERT_EQ(result.phases.size(), 1u);
  EXPECT_EQ(result.phases[0].sim_time_s, 3.0);
  EXPECT_EQ(result.phases[0].steps, 3u);
}

TEST_F(TraceRunnerTest, EnergyAccumulatesOverPhases) {
  core::TraceRunner runner(pipeline_.server(), pipeline_.scheduler(), {});
  const core::TraceResult result =
      runner.run(workload::make_stress_trace(2.0));
  double sum = 0.0;
  for (const auto& r : result.phases) sum += r.energy_j;
  EXPECT_NEAR(result.total_energy_j, sum, 1e-9);
}

}  // namespace
}  // namespace tpcool
