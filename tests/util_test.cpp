// Tests for tpcool::util — grids, linear solvers, root finding,
// interpolation, statistics, CSV and table output.

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <sstream>

#include "tpcool/util/csv.hpp"
#include "tpcool/util/error.hpp"
#include "tpcool/util/grid2d.hpp"
#include "tpcool/util/interp.hpp"
#include "tpcool/util/linear_solver.hpp"
#include "tpcool/util/rootfind.hpp"
#include "tpcool/util/statistics.hpp"
#include "tpcool/util/table.hpp"

namespace tpcool::util {
namespace {

// ----------------------------------------------------------------- Grid2D --

TEST(Grid2D, StoresAndRetrieves) {
  Grid2D<double> g(4, 3, 1.5);
  EXPECT_EQ(g.nx(), 4u);
  EXPECT_EQ(g.ny(), 3u);
  EXPECT_EQ(g.size(), 12u);
  EXPECT_DOUBLE_EQ(g.at(0, 0), 1.5);
  g.at(3, 2) = 7.0;
  EXPECT_DOUBLE_EQ(g(3, 2), 7.0);
}

TEST(Grid2D, RowMajorLayout) {
  Grid2D<int> g(3, 2, 0);
  g(1, 0) = 10;
  g(0, 1) = 20;
  EXPECT_EQ(g.data()[1], 10);   // x varies fastest
  EXPECT_EQ(g.data()[3], 20);
}

TEST(Grid2D, OutOfRangeThrows) {
  Grid2D<double> g(2, 2);
  EXPECT_THROW((void)g.at(2, 0), PreconditionError);
  EXPECT_THROW((void)g.at(0, 2), PreconditionError);
}

TEST(Grid2D, ZeroSizeThrows) {
  EXPECT_THROW(Grid2D<double>(0, 3), PreconditionError);
  EXPECT_THROW(Grid2D<double>(3, 0), PreconditionError);
}

TEST(Grid2D, SumMinMax) {
  Grid2D<double> g(2, 2, 1.0);
  g(1, 1) = 5.0;
  g(0, 0) = -2.0;
  EXPECT_DOUBLE_EQ(grid_sum(g), 5.0);
  EXPECT_DOUBLE_EQ(grid_max(g), 5.0);
  EXPECT_DOUBLE_EQ(grid_min(g), -2.0);
}

TEST(Grid2D, ApplyTransformsAllElements) {
  Grid2D<double> g(3, 3, 2.0);
  g.apply([](double v) { return v * v; });
  EXPECT_DOUBLE_EQ(grid_sum(g), 9 * 4.0);
}

// ----------------------------------------------------------- SparseMatrix --

TEST(SparseMatrix, AccumulatesDuplicates) {
  SparseMatrix m(2);
  m.add(0, 0, 1.0);
  m.add(0, 0, 2.0);
  m.add(1, 1, 4.0);
  m.finalize();
  EXPECT_DOUBLE_EQ(m.coeff(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.coeff(1, 1), 4.0);
  EXPECT_DOUBLE_EQ(m.coeff(0, 1), 0.0);
  EXPECT_EQ(m.nonzeros(), 2u);
}

TEST(SparseMatrix, MultiplyMatchesHandComputed) {
  SparseMatrix m(3);
  m.add(0, 0, 2.0);
  m.add(0, 2, -1.0);
  m.add(1, 1, 3.0);
  m.add(2, 0, -1.0);
  m.add(2, 2, 2.0);
  m.finalize();
  std::vector<double> x{1.0, 2.0, 3.0}, y;
  m.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 2.0 - 3.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
  EXPECT_DOUBLE_EQ(y[2], -1.0 + 6.0);
}

TEST(SparseMatrix, AddAfterFinalizeThrows) {
  SparseMatrix m(2);
  m.add(0, 0, 1.0);
  m.finalize();
  EXPECT_THROW(m.add(1, 1, 1.0), PreconditionError);
}

TEST(SparseMatrix, SymmetryCheck) {
  SparseMatrix m(2);
  m.add(0, 1, 1.0);
  m.add(1, 0, 1.0);
  m.add(0, 0, 2.0);
  m.add(1, 1, 2.0);
  m.finalize();
  EXPECT_TRUE(m.is_symmetric());

  SparseMatrix n(2);
  n.add(0, 1, 1.0);
  n.add(0, 0, 1.0);
  n.add(1, 1, 1.0);
  n.finalize();
  EXPECT_FALSE(n.is_symmetric());
}

// --------------------------------------------------------------------- CG --

TEST(SolveCg, SolvesIdentity) {
  SparseMatrix m(3);
  for (std::size_t i = 0; i < 3; ++i) m.add(i, i, 1.0);
  m.finalize();
  std::vector<double> b{1.0, -2.0, 3.0}, x;
  solve_cg(m, b, x);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], b[i], 1e-10);
}

TEST(SolveCg, MatchesDenseOnRandomSpd) {
  // Random SPD system A = B^T B + n I, cross-checked against dense LU.
  std::mt19937 rng(42);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  constexpr std::size_t n = 12;
  std::vector<double> b_mat(n * n);
  for (auto& v : b_mat) v = dist(rng);
  std::vector<double> a_dense(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        s += b_mat[k * n + i] * b_mat[k * n + j];
      }
      a_dense[i * n + j] = s + (i == j ? static_cast<double>(n) : 0.0);
    }
  }
  SparseMatrix a(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a.add(i, j, a_dense[i * n + j]);
  }
  a.finalize();
  ASSERT_TRUE(a.is_symmetric(1e-12));

  std::vector<double> rhs(n);
  for (auto& v : rhs) v = dist(rng);
  std::vector<double> x_cg;
  solve_cg(a, rhs, x_cg, {.tolerance = 1e-12});
  const std::vector<double> x_lu = solve_dense(a_dense, rhs);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x_cg[i], x_lu[i], 1e-8);
}

TEST(SolveCg, ZeroRhsGivesZero) {
  SparseMatrix m(2);
  m.add(0, 0, 1.0);
  m.add(1, 1, 1.0);
  m.finalize();
  std::vector<double> x{5.0, 5.0};
  const CgResult r = solve_cg(m, {0.0, 0.0}, x);
  EXPECT_EQ(r.iterations, 0u);
  EXPECT_DOUBLE_EQ(x[0], 0.0);
}

TEST(SolveCg, OneByOneSystem) {
  SparseMatrix m(1);
  m.add(0, 0, 5.0);
  m.finalize();
  std::vector<double> x;
  const CgResult r = solve_cg(m, {10.0}, x);
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_LE(r.iterations, 1u);
}

TEST(SolveCg, ExactWarmStartConvergesInZeroIterations) {
  SparseMatrix m(2);
  m.add(0, 0, 2.0);
  m.add(1, 1, 4.0);
  m.finalize();
  std::vector<double> x{3.0, 0.5};  // exact solution of {6, 2}
  const CgResult r = solve_cg(m, {6.0, 2.0}, x);
  EXPECT_EQ(r.iterations, 0u);
  EXPECT_DOUBLE_EQ(x[0], 3.0);
  EXPECT_DOUBLE_EQ(x[1], 0.5);
}

TEST(SolveCg, SsorPreconditionerSolvesSparseSystem) {
  constexpr std::size_t n = 30;
  SparseMatrix m(n);
  for (std::size_t i = 0; i < n; ++i) {
    double diag = 0.3;
    if (i > 0) {
      m.add(i, i - 1, -1.0);
      diag += 1.0;
    }
    if (i + 1 < n) {
      m.add(i, i + 1, -1.0);
      diag += 1.0;
    }
    m.add(i, i, diag);
  }
  m.finalize();
  std::vector<double> b(n, 1.0), x_ssor, x_jacobi;
  const CgResult ssor = solve_cg(
      m, b, x_ssor,
      {.tolerance = 1e-11, .preconditioner = Preconditioner::kSsor});
  const CgResult jacobi = solve_cg(m, b, x_jacobi, {.tolerance = 1e-11});
  EXPECT_LE(ssor.residual, 1e-11);
  EXPECT_LE(ssor.iterations, jacobi.iterations);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x_ssor[i], x_jacobi[i], 1e-8);
}

TEST(SolveCg, NonConvergedThrowReportsIterations) {
  constexpr std::size_t n = 50;
  SparseMatrix m(n);
  for (std::size_t i = 0; i < n; ++i) {
    double diag = 1e-3;
    if (i > 0) {
      m.add(i, i - 1, -1.0);
      diag += 1.0;
    }
    if (i + 1 < n) {
      m.add(i, i + 1, -1.0);
      diag += 1.0;
    }
    m.add(i, i, diag);
  }
  m.finalize();
  std::vector<double> x;
  try {
    (void)solve_cg(m, std::vector<double>(n, 1.0), x,
                   {.tolerance = 1e-15, .max_iterations = 3});
    FAIL() << "expected ConvergenceError";
  } catch (const ConvergenceError& e) {
    EXPECT_NE(std::string(e.what()).find("after 3 iterations"),
              std::string::npos)
        << e.what();
  }
}

TEST(SolveCg, NonSpdDiagonalThrows) {
  SparseMatrix m(2);
  m.add(0, 0, -1.0);
  m.add(1, 1, 1.0);
  m.finalize();
  std::vector<double> x;
  EXPECT_THROW(solve_cg(m, {1.0, 1.0}, x), InvariantError);
}

// -------------------------------------------------------------------- SOR --

TEST(SolveSor, SolvesIdentity) {
  SparseMatrix m(3);
  for (std::size_t i = 0; i < 3; ++i) m.add(i, i, 2.0);
  m.finalize();
  std::vector<double> x;
  solve_sor(m, {2.0, -4.0, 6.0}, x);
  EXPECT_NEAR(x[0], 1.0, 1e-8);
  EXPECT_NEAR(x[1], -2.0, 1e-8);
  EXPECT_NEAR(x[2], 3.0, 1e-8);
}

TEST(SolveSor, AgreesWithCgOnLaplacianLikeSystem) {
  // 1D diffusion chain with Dirichlet-ish end terms: the same structure as
  // one row of the thermal operator.
  constexpr std::size_t n = 40;
  SparseMatrix m(n);
  for (std::size_t i = 0; i < n; ++i) {
    double diag = 0.2;  // boundary leak keeps the system SPD
    if (i > 0) {
      m.add(i, i - 1, -1.0);
      diag += 1.0;
    }
    if (i + 1 < n) {
      m.add(i, i + 1, -1.0);
      diag += 1.0;
    }
    m.add(i, i, diag);
  }
  m.finalize();
  std::vector<double> b(n, 0.0);
  b[n / 2] = 5.0;
  std::vector<double> x_cg, x_sor;
  solve_cg(m, b, x_cg, {.tolerance = 1e-11});
  solve_sor(m, b, x_sor, {.relaxation = 1.6, .tolerance = 1e-11});
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x_sor[i], x_cg[i], 1e-7);
}

TEST(SolveSor, GaussSeidelIsOmegaOne) {
  SparseMatrix m(2);
  m.add(0, 0, 4.0);
  m.add(0, 1, 1.0);
  m.add(1, 0, 1.0);
  m.add(1, 1, 3.0);
  m.finalize();
  std::vector<double> x;
  const CgResult r = solve_sor(m, {1.0, 2.0}, x, {.relaxation = 1.0});
  EXPECT_LE(r.residual, 1e-9);
  // Check against the dense solution.
  const auto exact = solve_dense({4.0, 1.0, 1.0, 3.0}, {1.0, 2.0});
  EXPECT_NEAR(x[0], exact[0], 1e-7);
  EXPECT_NEAR(x[1], exact[1], 1e-7);
}

TEST(SolveSor, ZeroRhsGivesZero) {
  SparseMatrix m(2);
  m.add(0, 0, 1.0);
  m.add(1, 1, 1.0);
  m.finalize();
  std::vector<double> x{5.0, -5.0};
  const CgResult r = solve_sor(m, {0.0, 0.0}, x);
  EXPECT_EQ(r.iterations, 0u);
  EXPECT_DOUBLE_EQ(x[0], 0.0);
  EXPECT_DOUBLE_EQ(x[1], 0.0);
}

TEST(SolveSor, OneByOneSystem) {
  SparseMatrix m(1);
  m.add(0, 0, 2.0);
  m.finalize();
  std::vector<double> x;
  // Gauss-Seidel (ω = 1) lands exactly in one sweep; the first residual
  // check happens after the 4-sweep block.
  const CgResult r = solve_sor(m, {6.0}, x, {.relaxation = 1.0});
  EXPECT_NEAR(x[0], 3.0, 1e-9);
  EXPECT_LE(r.iterations, 4u);
}

TEST(SolveSor, ExactWarmStartConvergesInZeroIterations) {
  SparseMatrix m(2);
  m.add(0, 0, 4.0);
  m.add(0, 1, 1.0);
  m.add(1, 0, 1.0);
  m.add(1, 1, 3.0);
  m.finalize();
  const auto exact = solve_dense({4.0, 1.0, 1.0, 3.0}, {1.0, 2.0});
  std::vector<double> x = exact;
  const CgResult r = solve_sor(m, {1.0, 2.0}, x, {.tolerance = 1e-8});
  EXPECT_EQ(r.iterations, 0u);
  EXPECT_EQ(x, exact);  // untouched
}

TEST(SolveSor, RejectsBadRelaxation) {
  SparseMatrix m(1);
  m.add(0, 0, 1.0);
  m.finalize();
  std::vector<double> x;
  EXPECT_THROW(solve_sor(m, {1.0}, x, {.relaxation = 0.0}),
               PreconditionError);
  EXPECT_THROW(solve_sor(m, {1.0}, x, {.relaxation = 2.0}),
               PreconditionError);
}

TEST(SparseMatrix, RowVisitor) {
  SparseMatrix m(3);
  m.add(1, 0, 2.0);
  m.add(1, 2, 3.0);
  m.finalize();
  double sum = 0.0;
  std::size_t count = 0;
  m.for_each_in_row(1, [&](std::size_t col, double v) {
    sum += v * static_cast<double>(col + 1);
    ++count;
  });
  EXPECT_EQ(count, 2u);
  EXPECT_DOUBLE_EQ(sum, 2.0 * 1.0 + 3.0 * 3.0);
}

TEST(SolveDense, SingularThrows) {
  EXPECT_THROW(solve_dense({1.0, 2.0, 2.0, 4.0}, {1.0, 2.0}), InvariantError);
}

TEST(SolveDense, SolvesWithPivoting) {
  // Requires a row swap: the first pivot is zero.
  const std::vector<double> x = solve_dense({0.0, 1.0, 1.0, 0.0}, {3.0, 7.0});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

// --------------------------------------------------------------- rootfind --

TEST(Bisect, FindsRootOfCubic) {
  const double r = bisect([](double x) { return x * x * x - 8.0; }, 0.0, 10.0);
  EXPECT_NEAR(r, 2.0, 1e-7);
}

TEST(Bisect, EndpointRootReturned) {
  EXPECT_DOUBLE_EQ(bisect([](double x) { return x; }, 0.0, 1.0), 0.0);
}

TEST(Bisect, NonBracketingThrows) {
  EXPECT_THROW((void)bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0),
               PreconditionError);
}

TEST(FixedPoint, ConvergesToSqrt) {
  // Babylonian iteration for sqrt(2).
  const double r =
      fixed_point([](double x) { return 0.5 * (x + 2.0 / x); }, 1.0,
                  {.tolerance = 1e-12});
  EXPECT_NEAR(r, std::sqrt(2.0), 1e-9);
}

TEST(FixedPoint, DivergentThrows) {
  EXPECT_THROW((void)fixed_point([](double x) { return 2.0 * x + 1.0; }, 1.0,
                           {.max_iterations = 20}),
               ConvergenceError);
}

// ----------------------------------------------------------------- interp --

TEST(LinearTable, InterpolatesAndClamps) {
  const LinearTable t{{0.0, 0.0}, {1.0, 10.0}, {2.0, 40.0}};
  EXPECT_DOUBLE_EQ(t(0.5), 5.0);
  EXPECT_DOUBLE_EQ(t(1.5), 25.0);
  EXPECT_DOUBLE_EQ(t(-1.0), 0.0);   // clamped
  EXPECT_DOUBLE_EQ(t(3.0), 40.0);   // clamped
}

TEST(LinearTable, RejectsUnsortedOrDuplicateX) {
  EXPECT_THROW(LinearTable({{1.0, 0.0}, {0.0, 1.0}}), PreconditionError);
  EXPECT_THROW(LinearTable({{1.0, 0.0}, {1.0, 1.0}}), PreconditionError);
}

TEST(Clamp, Bounds) {
  EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp(0.5, 0.0, 1.0), 0.5);
  EXPECT_THROW((void)clamp(0.0, 1.0, 0.0), PreconditionError);
}

// ------------------------------------------------------------- statistics --

TEST(Statistics, Summary) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
  EXPECT_EQ(s.count, 4u);
}

TEST(Statistics, Percentile) {
  const std::vector<double> v{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
}

TEST(Statistics, EmptyThrows) {
  const std::vector<double> v;
  EXPECT_THROW((void)summarize(v), PreconditionError);
  EXPECT_THROW((void)mean(v), PreconditionError);
}

// -------------------------------------------------------------------- csv --

TEST(CsvWriter, QuotesSpecialCharacters) {
  std::ostringstream os;
  CsvWriter w(os);
  w.header({"a", "b,c", "d\"e"});
  w.field(1.5).field(std::string("x"));
  w.end_row();
  const std::string out = os.str();
  EXPECT_NE(out.find("\"b,c\""), std::string::npos);
  EXPECT_NE(out.find("\"d\"\"e\""), std::string::npos);
  EXPECT_NE(out.find("1.5,x"), std::string::npos);
}

TEST(CsvWriter, GridDumpHasOneRowPerY) {
  Grid2D<double> g(3, 2, 0.0);
  std::ostringstream os;
  write_grid_csv(os, g);
  std::size_t lines = 0;
  for (const char c : os.str()) lines += (c == '\n');
  EXPECT_EQ(lines, 2u);
}

// ------------------------------------------------------------------ table --

TEST(TablePrinter, AlignsAndCounts) {
  TablePrinter t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2"});
  EXPECT_EQ(t.rows(), 2u);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("longer-name"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one-column"}), PreconditionError);
}

TEST(TablePrinter, FormatsDoubles) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fmt(10.0, 1), "10.0");
}

TEST(TablePrinter, EmptyTablePrintsHeaderOnly) {
  TablePrinter t({"alpha", "beta"});
  EXPECT_EQ(t.rows(), 0u);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
  // Header + underline, no data rows.
  std::size_t lines = 0;
  for (const char c : out) lines += (c == '\n');
  EXPECT_EQ(lines, 2u);
}

TEST(TablePrinter, SingleRowWiderThanHeader) {
  TablePrinter t({"h"});
  t.add_row({"a-much-wider-cell"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("a-much-wider-cell"), std::string::npos);
  std::size_t lines = 0;
  for (const char c : out) lines += (c == '\n');
  EXPECT_EQ(lines, 3u);
}

// Round-trip: values written by write_grid_csv parse back to the exact grid.
TEST(CsvWriter, GridRoundTripPreservesValues) {
  Grid2D<double> g(3, 2, 0.0);
  for (std::size_t iy = 0; iy < 2; ++iy) {
    for (std::size_t ix = 0; ix < 3; ++ix) {
      g.at(ix, iy) = 10.0 * static_cast<double>(iy) +
                     static_cast<double>(ix) + 0.0625;  // exact in binary
    }
  }
  std::ostringstream os;
  write_grid_csv(os, g);

  std::istringstream is(os.str());
  std::vector<std::vector<double>> parsed;
  std::string line;
  while (std::getline(is, line)) {
    std::vector<double> row;
    std::istringstream ls(line);
    std::string cell;
    while (std::getline(ls, cell, ',')) row.push_back(std::stod(cell));
    parsed.push_back(row);
  }
  ASSERT_EQ(parsed.size(), g.ny());
  for (auto& row : parsed) ASSERT_EQ(row.size(), g.nx());
  // North row first: the last parsed line is iy = 0.
  for (std::size_t iy = 0; iy < g.ny(); ++iy) {
    for (std::size_t ix = 0; ix < g.nx(); ++ix) {
      EXPECT_DOUBLE_EQ(parsed[g.ny() - 1 - iy][ix], g.at(ix, iy))
          << "ix=" << ix << " iy=" << iy;
    }
  }
}

// Round-trip through the field API: numeric fields re-parse exactly and
// quoted strings keep their separators.
TEST(CsvWriter, FieldRowRoundTrip) {
  std::ostringstream os;
  CsvWriter w(os);
  w.field(std::string("label,with,commas")).field(-1.25).field(3.0);
  w.end_row();
  w.row({0.5, 2.0, 100.0});
  std::istringstream is(os.str());
  std::string first, second;
  ASSERT_TRUE(static_cast<bool>(std::getline(is, first)));
  ASSERT_TRUE(static_cast<bool>(std::getline(is, second)));
  EXPECT_EQ(first.substr(0, 20), "\"label,with,commas\",");
  EXPECT_NE(first.find("-1.25"), std::string::npos);
  std::istringstream ls(second);
  std::string cell;
  std::vector<double> values;
  while (std::getline(ls, cell, ',')) values.push_back(std::stod(cell));
  EXPECT_EQ(values, (std::vector<double>{0.5, 2.0, 100.0}));
}

}  // namespace
}  // namespace tpcool::util
