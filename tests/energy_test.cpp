// Tests for tpcool::workload energy accounting.

#include <gtest/gtest.h>

#include "tpcool/floorplan/xeon_e5.hpp"
#include "tpcool/mapping/config_select.hpp"
#include "tpcool/power/package_power.hpp"
#include "tpcool/util/error.hpp"
#include "tpcool/workload/energy.hpp"

namespace tpcool::workload {
namespace {

class EnergyTest : public ::testing::Test {
 protected:
  EnergyTest()
      : fp_(floorplan::make_xeon_e5_floorplan()),
        model_(fp_),
        profiler_(model_) {}

  floorplan::Floorplan fp_;
  power::PackagePowerModel model_;
  Profiler profiler_;
};

TEST_F(EnergyTest, EnergyIsPowerTimesTime) {
  const auto profile =
      profiler_.profile(find_benchmark("vips"), power::CState::kC1E);
  for (const EnergyPoint& e : energy_profile(profile)) {
    EXPECT_NEAR(e.norm_energy, e.power_w * e.norm_time, 1e-12);
    EXPECT_NEAR(e.norm_edp, e.norm_energy * e.norm_time, 1e-12);
    EXPECT_GT(e.norm_energy, 0.0);
  }
}

TEST_F(EnergyTest, MinEnergySatisfiesQos) {
  const auto profile =
      profiler_.profile(find_benchmark("ferret"), power::CState::kC1E);
  for (const QoSRequirement& qos : qos_levels()) {
    const EnergyPoint e = min_energy_select(profile, qos);
    EXPECT_TRUE(qos.satisfied_by(e.norm_time));
    for (const ConfigPoint& p : profile) {
      if (qos.satisfied_by(p.norm_time)) {
        EXPECT_GE(p.power_w * p.norm_time, e.norm_energy - 1e-9);
      }
    }
  }
}

TEST_F(EnergyTest, Algorithm1NearMinEnergyAtRelaxedQos) {
  // Min-power and min-energy selections agree closely at relaxed QoS: the
  // min-power config runs longer but the energy penalty is bounded.
  const auto profile =
      profiler_.profile(find_benchmark("x264"), power::CState::kC1E);
  const QoSRequirement qos{3.0};
  const auto algo1 = mapping::algorithm1_select(profile, qos);
  const EnergyPoint best = min_energy_select(profile, qos);
  EXPECT_LE(algo1.power_w * algo1.norm_time, 1.5 * best.norm_energy);
}

TEST_F(EnergyTest, PackingCostsEnergy) {
  // Pack & Cap's high-frequency packing burns more energy than the
  // min-energy configuration for most benchmarks at relaxed QoS.
  const QoSRequirement qos{3.0};
  int worse = 0, total = 0;
  for (const auto& bench : parsec_benchmarks()) {
    const auto profile = profiler_.profile(bench, power::CState::kPoll);
    const auto packed = mapping::packcap_select(profile, qos);
    const EnergyPoint best = min_energy_select(profile, qos);
    if (packed.power_w * packed.norm_time > best.norm_energy * 1.05) ++worse;
    ++total;
  }
  EXPECT_GT(worse, total / 2);
}

TEST_F(EnergyTest, RaceToIdleRewardsDeepSleep) {
  const auto profile =
      profiler_.profile(find_benchmark("swaptions"), power::CState::kC1E);
  // fast = baseline, slow = half cores at min frequency.
  const ConfigPoint* fast = nullptr;
  const ConfigPoint* slow = nullptr;
  for (const ConfigPoint& p : profile) {
    if (p.config == baseline_configuration()) fast = &p;
    if (p.config == Configuration{4, 2, 2.6}) slow = &p;
  }
  ASSERT_NE(fast, nullptr);
  ASSERT_NE(slow, nullptr);
  // Racing then parking in C6 beats racing then spinning in POLL.
  const double deep = race_to_idle_ratio(
      *fast, *slow, power::cstate_power_all8_w(power::CState::kC6, 3.2));
  const double shallow = race_to_idle_ratio(
      *fast, *slow, power::cstate_power_all8_w(power::CState::kPoll, 3.2));
  EXPECT_LT(deep, shallow);
  EXPECT_GT(deep, 0.0);
}

TEST_F(EnergyTest, RaceToIdleRejectsInvertedArguments) {
  const auto profile =
      profiler_.profile(find_benchmark("vips"), power::CState::kC1E);
  const auto sorted = profiler_.profile_sorted_by_power(
      find_benchmark("vips"), power::CState::kC1E);
  (void)profile;
  ConfigPoint fast = sorted.back();   // most power, fastest
  ConfigPoint slow = sorted.front();  // least power, slowest
  if (fast.norm_time > slow.norm_time) std::swap(fast, slow);
  EXPECT_THROW((void)race_to_idle_ratio(slow, fast, 5.0), util::PreconditionError);
}

}  // namespace
}  // namespace tpcool::workload
