// Tests for tpcool::power — Table I C-states, core power scaling, the uncore
// model (§IV-C2) and the package power assembly, including the paper's
// 40.5–79.3 W package-power span.

#include <gtest/gtest.h>

#include "tpcool/floorplan/xeon_e5.hpp"
#include "tpcool/power/core_power.hpp"
#include "tpcool/power/cstates.hpp"
#include "tpcool/power/package_power.hpp"
#include "tpcool/power/uncore_power.hpp"
#include "tpcool/util/error.hpp"
#include "tpcool/workload/profiler.hpp"

namespace tpcool::power {
namespace {

// ---------------------------------------------------------------- Table I --

TEST(CStates, TableIValuesExactAtMeasuredPoints) {
  EXPECT_DOUBLE_EQ(cstate_power_all8_w(CState::kPoll, 2.6), 27.0);
  EXPECT_DOUBLE_EQ(cstate_power_all8_w(CState::kPoll, 2.9), 32.0);
  EXPECT_DOUBLE_EQ(cstate_power_all8_w(CState::kPoll, 3.2), 40.0);
  EXPECT_DOUBLE_EQ(cstate_power_all8_w(CState::kC1, 2.6), 14.0);
  EXPECT_DOUBLE_EQ(cstate_power_all8_w(CState::kC1, 2.9), 15.0);
  EXPECT_DOUBLE_EQ(cstate_power_all8_w(CState::kC1, 3.2), 17.0);
  EXPECT_DOUBLE_EQ(cstate_power_all8_w(CState::kC1E, 2.6), 9.0);
  EXPECT_DOUBLE_EQ(cstate_power_all8_w(CState::kC1E, 3.2), 9.0);
}

TEST(CStates, TableILatencies) {
  EXPECT_DOUBLE_EQ(cstate_latency_us(CState::kPoll), 0.0);
  EXPECT_DOUBLE_EQ(cstate_latency_us(CState::kC1), 2.0);
  EXPECT_DOUBLE_EQ(cstate_latency_us(CState::kC1E), 10.0);
}

TEST(CStates, DeeperStatesUseLessPower) {
  for (const double f : core_frequency_levels()) {
    EXPECT_GT(cstate_power_all8_w(CState::kPoll, f),
              cstate_power_all8_w(CState::kC1, f));
    EXPECT_GT(cstate_power_all8_w(CState::kC1, f),
              cstate_power_all8_w(CState::kC1E, f));
    EXPECT_GT(cstate_power_all8_w(CState::kC1E, f),
              cstate_power_all8_w(CState::kC3, f));
    EXPECT_GT(cstate_power_all8_w(CState::kC3, f),
              cstate_power_all8_w(CState::kC6, f));
  }
}

TEST(CStates, DeeperStatesHaveLargerLatency) {
  const auto& states = all_cstates();
  for (std::size_t i = 1; i < states.size(); ++i) {
    EXPECT_GT(cstate_latency_us(states[i]), cstate_latency_us(states[i - 1]));
  }
}

TEST(CStates, PerCoreIsOneEighth) {
  EXPECT_DOUBLE_EQ(cstate_power_per_core_w(CState::kPoll, 3.2), 5.0);
  EXPECT_DOUBLE_EQ(cstate_power_per_core_w(CState::kC1E, 2.6), 9.0 / 8.0);
}

TEST(CStates, SelectionByTolerableLatency) {
  EXPECT_EQ(deepest_cstate_within(0.0), CState::kPoll);
  EXPECT_EQ(deepest_cstate_within(1.9), CState::kPoll);
  EXPECT_EQ(deepest_cstate_within(2.0), CState::kC1);
  EXPECT_EQ(deepest_cstate_within(10.0), CState::kC1E);
  EXPECT_EQ(deepest_cstate_within(1000.0), CState::kC6);
  EXPECT_THROW((void)deepest_cstate_within(-1.0), util::PreconditionError);
}

// --------------------------------------------------------------- core pwr --

TEST(CorePower, SupportedFrequencies) {
  EXPECT_TRUE(is_supported_frequency(2.6));
  EXPECT_TRUE(is_supported_frequency(2.9));
  EXPECT_TRUE(is_supported_frequency(3.2));
  EXPECT_FALSE(is_supported_frequency(3.0));
  EXPECT_THROW((void)core_voltage_v(3.0), util::PreconditionError);
}

TEST(CorePower, VoltageIncreasesWithFrequency) {
  EXPECT_LT(core_voltage_v(2.6), core_voltage_v(2.9));
  EXPECT_LT(core_voltage_v(2.9), core_voltage_v(3.2));
}

TEST(CorePower, DynamicPowerScalesWithFV2) {
  const double p26 = dynamic_core_power_w(0.5, 1.0, 2.6);
  const double p32 = dynamic_core_power_w(0.5, 1.0, 3.2);
  const double expected_ratio =
      (3.2 * 1.10 * 1.10) / (2.6 * 0.90 * 0.90);
  EXPECT_NEAR(p32 / p26, expected_ratio, 1e-12);
}

TEST(CorePower, ActiveIncludesPollFloor) {
  const double active = active_core_power_w(0.4, 1.0, 3.2);
  EXPECT_GT(active, cstate_power_per_core_w(CState::kPoll, 3.2));
  EXPECT_NEAR(active - dynamic_core_power_w(0.4, 1.0, 3.2),
              cstate_power_per_core_w(CState::kPoll, 3.2), 1e-12);
}

TEST(CorePower, RejectsBadUtilization) {
  EXPECT_THROW((void)dynamic_core_power_w(0.4, 0.0, 3.2), util::PreconditionError);
  EXPECT_THROW((void)dynamic_core_power_w(0.4, 2.5, 3.2), util::PreconditionError);
  EXPECT_THROW((void)dynamic_core_power_w(-0.1, 1.0, 3.2), util::PreconditionError);
}

// ------------------------------------------------------------- uncore pwr --

TEST(UncorePower, PaperEndpoints) {
  // §IV-C2: 9 W static; 8 W span from 1.2 to 2.8 GHz.
  EXPECT_DOUBLE_EQ(uncore_mcio_power_w(1.2), 9.0);
  EXPECT_DOUBLE_EQ(uncore_mcio_power_w(2.8), 17.0);
  EXPECT_DOUBLE_EQ(uncore_mcio_power_w(2.0), 13.0);
}

TEST(UncorePower, LlcCappedAtTwoWatts) {
  // §IV-C2: 2 W worst case for the 25 MB LLC.
  EXPECT_DOUBLE_EQ(llc_power_w(0.0), 1.0);
  EXPECT_DOUBLE_EQ(llc_power_w(1.0), 2.0);
  EXPECT_THROW((void)llc_power_w(1.5), util::PreconditionError);
}

TEST(UncorePower, GovernorMapSpansUncoreRange) {
  EXPECT_DOUBLE_EQ(uncore_frequency_for_core_ghz(2.6), 2.0);
  EXPECT_DOUBLE_EQ(uncore_frequency_for_core_ghz(3.2), 2.8);
  EXPECT_LE(uncore_frequency_for_core_ghz(3.2), kUncoreFreqMaxGhz);
}

TEST(UncorePower, OutOfRangeThrows) {
  EXPECT_THROW((void)uncore_mcio_power_w(1.0), util::PreconditionError);
  EXPECT_THROW((void)uncore_mcio_power_w(3.0), util::PreconditionError);
}

// ---------------------------------------------------------------- package --

class PackagePowerTest : public ::testing::Test {
 protected:
  floorplan::Floorplan fp_ = floorplan::make_xeon_e5_floorplan();
  PackagePowerModel model_{fp_};
};

TEST_F(PackagePowerTest, BreakdownMatchesUnitPowers) {
  PackagePowerRequest req;
  req.active_cores = {1, 4, 5};
  req.c_eff_w_per_ghz_v2 = 0.45;
  req.utilization = 1.2;
  req.freq_ghz = 2.9;
  req.idle_state = CState::kC1;
  req.llc_activity = 0.5;
  const PackagePowerBreakdown b = model_.breakdown(req);
  const floorplan::UnitPowers powers = model_.unit_powers(req);
  EXPECT_NEAR(b.total_w(), floorplan::total_power(powers), 1e-9);
}

TEST_F(PackagePowerTest, ActiveCoresGetMorePowerThanIdle) {
  PackagePowerRequest req;
  req.active_cores = {2};
  req.idle_state = CState::kC1;
  const floorplan::UnitPowers powers = model_.unit_powers(req);
  EXPECT_GT(powers.at("core2"), powers.at("core1"));
  EXPECT_GT(powers.at("core2"), powers.at("core7"));
}

TEST_F(PackagePowerTest, DeeperIdleStateReducesTotal) {
  PackagePowerRequest req;
  req.active_cores = {1, 2};
  req.idle_state = CState::kPoll;
  const double poll = model_.breakdown(req).total_w();
  req.idle_state = CState::kC1E;
  const double c1e = model_.breakdown(req).total_w();
  EXPECT_GT(poll, c1e);
  // 6 idle cores moving POLL→C1E at 3.2 GHz saves 6·(5 − 1.125) W.
  EXPECT_NEAR(poll - c1e, 6.0 * (5.0 - 9.0 / 8.0), 1e-9);
}

TEST_F(PackagePowerTest, RejectsDuplicateOrBadCores) {
  PackagePowerRequest req;
  req.active_cores = {1, 1};
  EXPECT_THROW((void)model_.breakdown(req), util::PreconditionError);
  req.active_cores = {0};
  EXPECT_THROW((void)model_.breakdown(req), util::PreconditionError);
  req.active_cores = {9};
  EXPECT_THROW((void)model_.breakdown(req), util::PreconditionError);
  req.active_cores = {};
  EXPECT_THROW((void)model_.breakdown(req), util::PreconditionError);
}

TEST_F(PackagePowerTest, PaperPackagePowerRange) {
  // §V: "the total package power consumption ranges from 40.5 W to 79.3 W
  // among all configurations and applications". Our calibrated model must
  // reproduce that span closely (idle cores at POLL, as measured).
  workload::Profiler profiler(model_);
  const auto [lo, hi] = profiler.package_power_range(CState::kPoll);
  EXPECT_NEAR(lo, 40.5, 3.5);
  EXPECT_NEAR(hi, 79.3, 3.5);
}

TEST_F(PackagePowerTest, WorstCaseIsFullLoadAtFmax) {
  workload::Profiler profiler(model_);
  const auto& bench = workload::worst_case_benchmark();
  double best = 0.0;
  workload::Configuration best_cfg;
  for (const auto& p : profiler.profile(bench, CState::kPoll)) {
    if (p.power_w > best) {
      best = p.power_w;
      best_cfg = p.config;
    }
  }
  EXPECT_EQ(best_cfg.cores, 8);
  EXPECT_EQ(best_cfg.threads_per_core, 2);
  EXPECT_DOUBLE_EQ(best_cfg.freq_ghz, 3.2);
}

}  // namespace
}  // namespace tpcool::power
