// Tests for tpcool::thermal — stack construction, the finite-volume model
// (analytic 1D checks, energy conservation, symmetry), the transient solver,
// and the thermal metrics.

#include <gtest/gtest.h>

#include <cmath>

#include "tpcool/thermal/grid.hpp"
#include "tpcool/thermal/metrics.hpp"
#include "tpcool/thermal/stack.hpp"
#include "tpcool/util/error.hpp"

namespace tpcool::thermal {
namespace {

using floorplan::GridSpec;
using floorplan::Rect;
using util::Grid2D;

/// A simple uniform two-layer slab stack for analytic checks.
StackModel make_slab(std::size_t nx, std::size_t ny, double cell,
                     double k1 = 100.0, double k2 = 100.0) {
  StackModel model;
  model.grid.x0 = 0.0;
  model.grid.y0 = 0.0;
  model.grid.dx = cell;
  model.grid.dy = cell;
  model.grid.nx = nx;
  model.grid.ny = ny;
  const auto layer = [&](const std::string& name, double thickness, double k) {
    StackLayer l;
    l.name = name;
    l.thickness_m = thickness;
    l.conductivity_w_mk = Grid2D<double>(nx, ny, k);
    l.vol_heat_cap_j_m3k = Grid2D<double>(nx, ny, 2.0e6);
    return l;
  };
  model.layers.push_back(layer("bottom", 1.0e-3, k1));
  model.layers.push_back(layer("top", 1.0e-3, k2));
  model.die_layer = 0;
  model.ihs_layer = 1;
  model.top_layer = 1;
  model.die_region = Rect{0.0, 0.0, nx * cell, ny * cell};
  model.evaporator_region = model.die_region;
  return model;
}

// ------------------------------------------------------------------ stack --

TEST(PackageStack, LayerOrderAndRegions) {
  const StackModel m = make_package_stack();
  ASSERT_EQ(m.layer_count(), 6u);
  EXPECT_EQ(m.layers[m.die_layer].name, "die");
  EXPECT_EQ(m.layers[m.ihs_layer].name, "ihs");
  EXPECT_EQ(m.layers[m.top_layer].name, "evaporator_base");
  EXPECT_LT(m.die_layer, m.ihs_layer);
  EXPECT_LT(m.ihs_layer, m.top_layer);
  // Die centred inside the evaporator footprint, which is inside the grid.
  EXPECT_GT(m.die_region.x0, m.evaporator_region.x0);
  EXPECT_LT(m.die_region.x1, m.evaporator_region.x1);
  EXPECT_GE(m.evaporator_region.x0, 0.0);
  EXPECT_LE(m.evaporator_region.x1, m.grid.width() + 1e-12);
}

TEST(PackageStack, DieLayerBlendsSiliconAndFiller) {
  const StackModel m = make_package_stack();
  const StackLayer& die = m.layers[m.die_layer];
  // Centre cell: silicon; far corner: filler.
  const double centre_k =
      die.conductivity_w_mk(m.grid.nx / 2, m.grid.ny / 2);
  const double corner_k = die.conductivity_w_mk(0, 0);
  EXPECT_NEAR(centre_k, 130.0, 1.0);
  EXPECT_LT(corner_k, 5.0);
}

TEST(PackageStack, GridCoversPackage) {
  const PackageStackConfig config;
  const StackModel m = make_package_stack(config);
  EXPECT_NEAR(m.grid.width(), config.geometry.package_width_m, 1e-9);
  EXPECT_NEAR(m.grid.height(), config.geometry.package_height_m, 1e-9);
}

TEST(PackageStack, RejectsOversizedEvaporator) {
  PackageStackConfig config;
  config.evaporator_width_m = 50e-3;  // > package width
  EXPECT_THROW(make_package_stack(config), util::PreconditionError);
}

// ---------------------------------------------------- steady-state solver --

TEST(SteadySolver, Uniform1dAnalytic) {
  // Uniform flux q'' through a two-layer slab into a top HTC h:
  //   T_bottom_mid - T_fluid = q''·(d1/2/k1 + d2/k2 + 1/h)
  const double cell = 1e-3;
  ThermalModel model(make_slab(8, 8, cell, 100.0, 50.0));
  const double h = 5000.0, t_fluid = 30.0;
  model.set_top_boundary_uniform(h, t_fluid);
  model.set_bottom_boundary(0.0, 0.0);  // adiabatic bottom

  const double q_flux = 1.0e5;  // W/m²
  Grid2D<double> power(8, 8, q_flux * cell * cell);
  model.set_power_map(power);

  const auto t = model.solve_steady();
  // Source sits at the bottom-layer cell centre: path = half bottom layer
  // + full top layer + film.
  const double expected =
      t_fluid + q_flux * (0.5e-3 / 100.0 + 1.0e-3 / 50.0 + 1.0 / h);
  EXPECT_NEAR(t[model.cell_index(4, 4, 0)], expected, 0.02);
}

TEST(SteadySolver, EnergyConservation) {
  ThermalModel model(make_slab(10, 10, 1e-3));
  model.set_top_boundary_uniform(3000.0, 25.0);
  model.set_bottom_boundary(0.0, 0.0);
  Grid2D<double> power(10, 10, 0.0);
  power(2, 3) = 5.0;
  power(7, 6) = 3.0;
  model.set_power_map(power);
  const auto t = model.solve_steady();
  // All 8 W must leave through the top.
  EXPECT_NEAR(model.top_heat_flow_w(t), 8.0, 1e-4);
  const auto qmap = model.top_heat_flow_map_w(t);
  EXPECT_NEAR(util::grid_sum(qmap), 8.0, 1e-4);
}

TEST(SteadySolver, SymmetricSourceGivesSymmetricField) {
  ThermalModel model(make_slab(9, 9, 1e-3));
  model.set_top_boundary_uniform(3000.0, 25.0);
  model.set_bottom_boundary(0.0, 0.0);
  Grid2D<double> power(9, 9, 0.0);
  power(4, 4) = 10.0;  // centre source
  model.set_power_map(power);
  const auto t = model.solve_steady();
  const auto field = model.layer_field(t, 0);
  for (std::size_t i = 0; i < 9; ++i) {
    for (std::size_t j = 0; j < 9; ++j) {
      EXPECT_NEAR(field(i, j), field(8 - i, j), 1e-5);
      EXPECT_NEAR(field(i, j), field(i, 8 - j), 1e-5);
      EXPECT_NEAR(field(i, j), field(j, i), 1e-5);
    }
  }
}

TEST(SteadySolver, HigherHtcCoolsMore) {
  ThermalModel model(make_slab(6, 6, 1e-3));
  model.set_bottom_boundary(0.0, 0.0);
  Grid2D<double> power(6, 6, 0.1);
  model.set_power_map(power);

  model.set_top_boundary_uniform(2000.0, 30.0);
  const double hot = model.layer_field(model.solve_steady(), 0)(3, 3);
  model.set_top_boundary_uniform(20000.0, 30.0);
  const double cold = model.layer_field(model.solve_steady(), 0)(3, 3);
  EXPECT_GT(hot, cold);
  EXPECT_GT(cold, 30.0);
}

TEST(SteadySolver, NoPowerRelaxesToFluidTemperature) {
  ThermalModel model(make_slab(5, 5, 1e-3));
  model.set_top_boundary_uniform(5000.0, 42.0);
  model.set_bottom_boundary(0.0, 0.0);
  model.set_power_map(Grid2D<double>(5, 5, 0.0));
  const auto t = model.solve_steady();
  for (const double v : t) EXPECT_NEAR(v, 42.0, 1e-6);
}

TEST(SteadySolver, RejectsBadInputs) {
  ThermalModel model(make_slab(4, 4, 1e-3));
  Grid2D<double> wrong(3, 3, 0.0);
  EXPECT_THROW(model.set_power_map(wrong), util::PreconditionError);
  Grid2D<double> negative(4, 4, -1.0);
  EXPECT_THROW(model.set_power_map(negative), util::PreconditionError);
  EXPECT_THROW(model.set_bottom_boundary(-5.0, 20.0),
               util::PreconditionError);
}

// ------------------------------------------------------- transient solver --

TEST(TransientSolver, ConvergesToSteadyState) {
  ThermalModel model(make_slab(6, 6, 1e-3));
  model.set_top_boundary_uniform(4000.0, 30.0);
  model.set_bottom_boundary(0.0, 0.0);
  Grid2D<double> power(6, 6, 0.2);
  model.set_power_map(power);

  const auto steady = model.solve_steady();
  std::vector<double> t(model.cell_count(), 30.0);
  for (int step = 0; step < 400; ++step) model.step_transient(t, 0.05);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_NEAR(t[i], steady[i], 0.05);
  }
}

TEST(TransientSolver, MonotoneHeatingFromCold) {
  ThermalModel model(make_slab(6, 6, 1e-3));
  model.set_top_boundary_uniform(4000.0, 30.0);
  model.set_bottom_boundary(0.0, 0.0);
  model.set_power_map(Grid2D<double>(6, 6, 0.2));
  std::vector<double> t(model.cell_count(), 30.0);
  double prev = 30.0;
  for (int step = 0; step < 10; ++step) {
    model.step_transient(t, 0.1);
    const double now = t[model.cell_index(3, 3, 0)];
    EXPECT_GE(now, prev - 1e-9);
    prev = now;
  }
  EXPECT_GT(prev, 30.0);
}

TEST(TransientSolver, LargeStepApproachesSteady) {
  // Backward Euler is L-stable: one huge step lands near steady state.
  ThermalModel model(make_slab(5, 5, 1e-3));
  model.set_top_boundary_uniform(4000.0, 30.0);
  model.set_bottom_boundary(0.0, 0.0);
  model.set_power_map(Grid2D<double>(5, 5, 0.1));
  const auto steady = model.solve_steady();
  std::vector<double> t(model.cell_count(), 30.0);
  model.step_transient(t, 1e6);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_NEAR(t[i], steady[i], 0.01);
}

// ---------------------------------------------------------------- metrics --

TEST(Metrics, MaxAvgAndGradient) {
  GridSpec grid{0.0, 0.0, 1e-3, 1e-3, 4, 4};
  Grid2D<double> field(4, 4, 50.0);
  field(1, 1) = 60.0;
  const Rect region{0.0, 0.0, 4e-3, 4e-3};
  const ThermalMetrics m = compute_metrics(field, grid, region);
  EXPECT_DOUBLE_EQ(m.max_c, 60.0);
  EXPECT_NEAR(m.avg_c, (15 * 50.0 + 60.0) / 16.0, 1e-12);
  // Steepest neighbour difference: 10 °C over 1 mm.
  EXPECT_DOUBLE_EQ(m.grad_max_c_per_mm, 10.0);
  EXPECT_EQ(m.cell_count, 16u);
  EXPECT_EQ(m.hotspot_cells, 1u);  // only the 60° cell within 2° of max
}

TEST(Metrics, RegionRestriction) {
  GridSpec grid{0.0, 0.0, 1e-3, 1e-3, 4, 4};
  Grid2D<double> field(4, 4, 50.0);
  field(3, 3) = 99.0;  // outside the region below
  const Rect region{0.0, 0.0, 2e-3, 2e-3};
  const ThermalMetrics m = compute_metrics(field, grid, region);
  EXPECT_DOUBLE_EQ(m.max_c, 50.0);
  EXPECT_EQ(m.cell_count, 4u);
}

TEST(Metrics, EmptyRegionThrows) {
  GridSpec grid{0.0, 0.0, 1e-3, 1e-3, 4, 4};
  Grid2D<double> field(4, 4, 50.0);
  const Rect region{10e-3, 10e-3, 11e-3, 11e-3};
  EXPECT_THROW((void)compute_metrics(field, grid, region), util::PreconditionError);
}

TEST(Metrics, SampleFieldBilinear) {
  GridSpec grid{0.0, 0.0, 1e-3, 1e-3, 2, 2};
  Grid2D<double> field(2, 2);
  field(0, 0) = 0.0;
  field(1, 0) = 10.0;
  field(0, 1) = 20.0;
  field(1, 1) = 30.0;
  // Centre of the grid = average of the four cell centres.
  EXPECT_NEAR(sample_field(field, grid, 1e-3, 1e-3), 15.0, 1e-9);
  // At a cell centre the sample equals the cell value.
  EXPECT_NEAR(sample_field(field, grid, 0.5e-3, 0.5e-3), 0.0, 1e-9);
}

TEST(Metrics, CaseTemperatureIsPackageCentre) {
  GridSpec grid{0.0, 0.0, 1e-3, 1e-3, 5, 5};
  Grid2D<double> field(5, 5, 40.0);
  field(2, 2) = 55.0;
  const Rect package{0.0, 0.0, 5e-3, 5e-3};
  EXPECT_NEAR(case_temperature(field, grid, package), 55.0, 1e-9);
}

}  // namespace
}  // namespace tpcool::thermal
