// Tests for the structured solver core: StencilOperator vs SparseMatrix
// equivalence, ThreadPool determinism, and preconditioned-CG behavior on
// the banded operator.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "tpcool/util/error.hpp"
#include "tpcool/util/linear_solver.hpp"
#include "tpcool/util/stencil_operator.hpp"
#include "tpcool/util/thread_pool.hpp"

namespace tpcool::util {
namespace {

/// Build a random SPD 7-point operator on an nx×ny×nz grid: random positive
/// couplings on every interior face plus a boundary-leak diagonal term, the
/// same structure the thermal assembler produces.
StencilOperator random_stencil(std::size_t nx, std::size_t ny, std::size_t nz,
                               unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> g_dist(0.1, 2.0);
  StencilOperator op(nx, ny, nz);
  for (std::size_t iz = 0; iz < nz; ++iz) {
    for (std::size_t iy = 0; iy < ny; ++iy) {
      for (std::size_t ix = 0; ix < nx; ++ix) {
        const std::size_t i = op.cell_index(ix, iy, iz);
        if (ix + 1 < nx) op.add_coupling(i, StencilBand::kXPlus, g_dist(rng));
        if (iy + 1 < ny) op.add_coupling(i, StencilBand::kYPlus, g_dist(rng));
        if (iz + 1 < nz) op.add_coupling(i, StencilBand::kZPlus, g_dist(rng));
        op.add_to_diagonal(i, g_dist(rng));  // boundary leak keeps it SPD
      }
    }
  }
  return op;
}

std::vector<double> random_vector(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

// ------------------------------------------- StencilOperator <-> CSR --

TEST(StencilOperator, MultiplyMatchesSparseOnRandomStencils) {
  for (const unsigned seed : {1u, 2u, 3u}) {
    const StencilOperator op = random_stencil(5, 4, 3, seed);
    const SparseMatrix csr = op.to_sparse();
    ASSERT_TRUE(csr.is_symmetric(1e-12));
    const std::vector<double> x = random_vector(op.size(), seed + 100);
    std::vector<double> y_stencil, y_csr;
    op.multiply(x, y_stencil);
    csr.multiply(x, y_csr);
    for (std::size_t i = 0; i < op.size(); ++i) {
      // The entries are identical; only the accumulation order differs
      // (CSR sums columns ascending, the stencil sums band-by-band), so
      // agreement is to rounding, not bitwise.
      EXPECT_NEAR(y_stencil[i], y_csr[i], 1e-13) << "cell " << i;
    }
  }
}

TEST(StencilOperator, FromSparseRoundTrip) {
  const StencilOperator op = random_stencil(4, 3, 2, 7);
  const SparseMatrix csr = op.to_sparse();
  const StencilOperator back = StencilOperator::from_sparse(csr, 4, 3, 2);
  const std::vector<double> x = random_vector(op.size(), 42);
  std::vector<double> y1, y2;
  op.multiply(x, y1);
  back.multiply(x, y2);
  for (std::size_t i = 0; i < op.size(); ++i) {
    EXPECT_DOUBLE_EQ(y1[i], y2[i]);
  }
  const std::vector<double> d1 = op.diagonal(), d2 = back.diagonal();
  for (std::size_t i = 0; i < op.size(); ++i) EXPECT_DOUBLE_EQ(d1[i], d2[i]);
}

TEST(StencilOperator, BoundaryCellsHaveNoWrapAroundCoupling) {
  // A 2x2x2 grid: every cell is a boundary cell; check bands at the edges
  // are exactly zero and x-row ends do not couple across rows.
  const StencilOperator op = random_stencil(2, 2, 2, 9);
  for (std::size_t iz = 0; iz < 2; ++iz) {
    for (std::size_t iy = 0; iy < 2; ++iy) {
      EXPECT_EQ(op.offdiag(op.cell_index(0, iy, iz), StencilBand::kXMinus),
                0.0);
      EXPECT_EQ(op.offdiag(op.cell_index(1, iy, iz), StencilBand::kXPlus),
                0.0);
    }
  }
  const SparseMatrix csr = op.to_sparse();
  // Cell (1,0,0) = index 1 and cell (0,1,0) = index 2 are adjacent in
  // memory but not in the grid: no (1,2) entry may exist.
  EXPECT_EQ(csr.coeff(1, 2), 0.0);
}

TEST(StencilOperator, FromSparseRejectsNonStencilEntry) {
  SparseMatrix m(8);  // 2x2x2 grid
  for (std::size_t i = 0; i < 8; ++i) m.add(i, i, 4.0);
  m.add(0, 7, -1.0);  // diagonal-corner coupling: not a stencil neighbour
  m.add(7, 0, -1.0);
  m.finalize();
  EXPECT_THROW((void)StencilOperator::from_sparse(m, 2, 2, 2),
               PreconditionError);
}

TEST(StencilOperator, FromSparseRejectsWrapAroundEntry) {
  // Entry (i, i-1) with ix == 0 is the previous x-row's last cell, not a
  // stencil neighbour, even though the column offset looks like x-minus.
  SparseMatrix m(4);  // 2x2x1 grid
  for (std::size_t i = 0; i < 4; ++i) m.add(i, i, 4.0);
  m.add(2, 1, -1.0);  // (0,1,0) <- (1,0,0): wrap across the x edge
  m.add(1, 2, -1.0);
  m.finalize();
  EXPECT_THROW((void)StencilOperator::from_sparse(m, 2, 2, 1),
               PreconditionError);
}

TEST(StencilOperator, CouplingAtGridEdgeThrows) {
  StencilOperator op(2, 2, 1);
  EXPECT_THROW(op.add_coupling(0, StencilBand::kXMinus, 1.0),
               PreconditionError);
  EXPECT_THROW(op.add_coupling(1, StencilBand::kXPlus, 1.0),
               PreconditionError);
  EXPECT_THROW(op.add_coupling(0, StencilBand::kZPlus, 1.0),
               PreconditionError);
}

// --------------------------------------------------- CG on the stencil --

TEST(StencilCg, MatchesSparseCgWithBothPreconditioners) {
  const StencilOperator op = random_stencil(6, 5, 4, 11);
  const SparseMatrix csr = op.to_sparse();
  const std::vector<double> b = random_vector(op.size(), 13);
  for (const Preconditioner pre :
       {Preconditioner::kJacobi, Preconditioner::kSsor}) {
    std::vector<double> x_stencil, x_csr;
    const CgOptions options{.tolerance = 1e-12, .preconditioner = pre};
    const CgResult r1 = solve_cg(op, b, x_stencil, options);
    const CgResult r2 = solve_cg(csr, b, x_csr, options);
    EXPECT_LE(r1.residual, 1e-12);
    EXPECT_LE(r2.residual, 1e-12);
    for (std::size_t i = 0; i < op.size(); ++i) {
      EXPECT_NEAR(x_stencil[i], x_csr[i], 1e-9);
    }
  }
}

TEST(StencilCg, SsorNeedsNoMoreIterationsThanJacobi) {
  const StencilOperator op = random_stencil(8, 8, 6, 17);
  const std::vector<double> b = random_vector(op.size(), 19);
  std::vector<double> x_j, x_s;
  const CgResult jacobi = solve_cg(
      op, b, x_j, {.tolerance = 1e-10, .preconditioner = Preconditioner::kJacobi});
  const CgResult ssor = solve_cg(
      op, b, x_s, {.tolerance = 1e-10, .preconditioner = Preconditioner::kSsor});
  EXPECT_LE(ssor.iterations, jacobi.iterations);
}

TEST(StencilCg, WarmStartAtExactSolutionConvergesInZeroIterations) {
  const StencilOperator op = random_stencil(4, 4, 3, 23);
  const std::vector<double> b = random_vector(op.size(), 29);
  std::vector<double> x;
  (void)solve_cg(op, b, x, {.tolerance = 1e-12});
  std::vector<double> warm = x;
  const CgResult r = solve_cg(op, b, warm, {.tolerance = 1e-10});
  EXPECT_EQ(r.iterations, 0u);
  EXPECT_EQ(warm, x);  // untouched: already converged
}

TEST(StencilCg, ZeroRhsGivesZero) {
  const StencilOperator op = random_stencil(3, 3, 2, 31);
  std::vector<double> x(op.size(), 99.0);
  const CgResult r = solve_cg(op, std::vector<double>(op.size(), 0.0), x);
  EXPECT_EQ(r.iterations, 0u);
  for (const double v : x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(StencilCg, OneByOneSystem) {
  StencilOperator op(1, 1, 1);
  op.add_to_diagonal(0, 4.0);
  std::vector<double> x;
  const CgResult r = solve_cg(op, {8.0}, x);
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_LE(r.iterations, 1u);
}

TEST(StencilCg, NonConvergenceNamesIterationCount) {
  // An SPD system solved with an absurdly small iteration budget and an
  // unreachable tolerance must throw, and the message must carry the
  // iteration count (the satellite fix for the old silent throw path).
  const StencilOperator op = random_stencil(8, 8, 4, 37);
  const std::vector<double> b = random_vector(op.size(), 41);
  std::vector<double> x;
  try {
    (void)solve_cg(op, b, x, {.tolerance = 1e-15, .max_iterations = 2});
    FAIL() << "expected ConvergenceError";
  } catch (const ConvergenceError& e) {
    EXPECT_NE(std::string(e.what()).find("after 2 iterations"),
              std::string::npos)
        << e.what();
  }
}

// ------------------------------------------------- ThreadPool behavior --

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  pool.parallel_for(0, hits.size(), 37, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ReduceIsIdenticalForOneAndManyThreads) {
  // Chunked reduction with fixed boundaries: bit-identical sums no matter
  // how many threads execute the chunks.
  const std::vector<double> v = random_vector(100000, 43);
  const auto partial = [&](std::size_t lo, std::size_t hi) {
    double s = 0.0;
    for (std::size_t i = lo; i < hi; ++i) s += v[i] * 1.0000001;
    return s;
  };
  ThreadPool serial(1), threaded(4);
  const double s1 = serial.parallel_reduce(0, v.size(), 1 << 10, partial);
  const double s4 = threaded.parallel_reduce(0, v.size(), 1 << 10, partial);
  EXPECT_EQ(s1, s4);  // exact, not NEAR
}

TEST(ThreadPool, CgResultsAreIdenticalForOneAndManyThreads) {
  // End-to-end determinism: solve the same large stencil system with the
  // global pool at 1 and at 4 threads; every temperature must match
  // bitwise, and so must the iteration count.
  const StencilOperator op = random_stencil(20, 20, 6, 47);
  const std::vector<double> b = random_vector(op.size(), 53);

  ThreadPool::set_global_thread_count(1);
  std::vector<double> x1;
  const CgResult r1 = solve_cg(
      op, b, x1, {.tolerance = 1e-10, .preconditioner = Preconditioner::kSsor});

  ThreadPool::set_global_thread_count(4);
  std::vector<double> x4;
  const CgResult r4 = solve_cg(
      op, b, x4, {.tolerance = 1e-10, .preconditioner = Preconditioner::kSsor});
  ThreadPool::set_global_thread_count(0);  // restore default

  EXPECT_EQ(r1.iterations, r4.iterations);
  EXPECT_EQ(x1, x4);  // bitwise
}

TEST(ThreadPool, EnvOverrideParsesPositiveIntegers) {
  // default_thread_count() must never return 0, whatever the env says.
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
}

}  // namespace
}  // namespace tpcool::util
