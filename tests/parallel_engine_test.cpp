// Tests for the parallel experiment engine: SolveCache hit/miss/eviction
// accounting, parallel_map determinism and error propagation, cold-start
// purity of cached solves, and the headline contract — experiment results
// bit-identical at 1, 2, and N threads (run_fig6_scenarios and
// RackCoordinator::plan).

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "tpcool/core/experiment.hpp"
#include "tpcool/core/parallel.hpp"
#include "tpcool/core/rack_coordinator.hpp"
#include "tpcool/core/solve_cache.hpp"
#include "tpcool/util/error.hpp"
#include "tpcool/util/thread_pool.hpp"

namespace tpcool::core {
namespace {

// Coarse grid: these tests assert determinism, not physics fidelity.
constexpr double kCell = 2.0e-3;

/// Every experiment below runs once per thread count; the fixture restores
/// the default pool and empties the shared cache so runs are independent.
class ParallelEngineTest : public ::testing::Test {
 protected:
  void TearDown() override {
    util::ThreadPool::set_global_thread_count(0);
    SolveCache::global()->clear();
  }
};

// ------------------------------------------------------------- SolveCache --

SimulationResult result_with_max(double max_c) {
  SimulationResult result;
  result.die.max_c = max_c;
  return result;
}

TEST(SolveCacheTest, RejectsZeroCapacity) {
  EXPECT_THROW(SolveCache(0), util::PreconditionError);
}

TEST(SolveCacheTest, CountsHitsAndMisses) {
  SolveCache cache(4);
  SimulationResult out;
  EXPECT_FALSE(cache.try_get("a", out));
  cache.put("a", result_with_max(50.0));
  EXPECT_TRUE(cache.try_get("a", out));
  EXPECT_DOUBLE_EQ(out.die.max_c, 50.0);

  int computes = 0;
  const auto compute = [&] {
    ++computes;
    return result_with_max(60.0);
  };
  EXPECT_DOUBLE_EQ(cache.get_or_compute("b", compute).die.max_c, 60.0);
  EXPECT_DOUBLE_EQ(cache.get_or_compute("b", compute).die.max_c, 60.0);
  EXPECT_EQ(computes, 1);

  const SolveCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);    // try_get("a") + second get_or_compute("b")
  EXPECT_EQ(stats.misses, 2u);  // first try_get("a") + first get_or_compute
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.size, 2u);
}

TEST(SolveCacheTest, EvictsLeastRecentlyUsed) {
  SolveCache cache(2);
  cache.put("a", result_with_max(1.0));
  cache.put("b", result_with_max(2.0));
  SimulationResult out;
  ASSERT_TRUE(cache.try_get("a", out));  // "b" is now least recently used
  cache.put("c", result_with_max(3.0));  // evicts "b"

  EXPECT_TRUE(cache.try_get("a", out));
  EXPECT_TRUE(cache.try_get("c", out));
  EXPECT_FALSE(cache.try_get("b", out));
  const SolveCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.size, 2u);
}

TEST(SolveCacheTest, PutIsIdempotent) {
  SolveCache cache(2);
  cache.put("a", result_with_max(1.0));
  cache.put("a", result_with_max(99.0));  // same key: first value is kept
  SimulationResult out;
  ASSERT_TRUE(cache.try_get("a", out));
  EXPECT_DOUBLE_EQ(out.die.max_c, 1.0);
  EXPECT_EQ(cache.stats().size, 1u);
}

TEST(SolveCacheTest, ClearResetsEverything) {
  SolveCache cache(2);
  cache.put("a", result_with_max(1.0));
  SimulationResult out;
  ASSERT_TRUE(cache.try_get("a", out));
  cache.clear();
  EXPECT_FALSE(cache.try_get("a", out));
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().size, 0u);
}

TEST(SolveCacheTest, KeyDistinguishesNearbyDoubles) {
  std::string a;
  std::string b;
  append_key_bits(a, 1.25e-3);
  append_key_bits(b, 1.2500000001e-3);
  EXPECT_NE(a, b);
}

TEST(SolveCacheTest, ConcurrentRequestsForOneKeyComputeOnce) {
  // 8 tasks race get_or_compute on the same key from a 4-thread pool; the
  // in-flight dedup must run the compute exactly once and count the other
  // seven as hits — the serial schedule's numbers, independent of timing.
  util::ThreadPool::set_global_thread_count(4);
  SolveCache cache(4);
  std::atomic<int> computes{0};
  const auto results = parallel_map<double>(
      8, 1, [](std::size_t chunk) { return chunk; },
      [&](std::size_t&, std::size_t) {
        return cache
            .get_or_compute("shared",
                            [&] {
                              ++computes;
                              return result_with_max(42.0);
                            })
            .die.max_c;
      });
  util::ThreadPool::set_global_thread_count(0);

  EXPECT_EQ(computes.load(), 1);
  for (const double value : results) EXPECT_DOUBLE_EQ(value, 42.0);
  const SolveCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 7u);
}

// ----------------------------------------------------------- parallel_map --

TEST_F(ParallelEngineTest, ParallelMapPreservesTaskOrder) {
  for (const std::size_t threads : {1u, 4u}) {
    util::ThreadPool::set_global_thread_count(threads);
    const std::vector<int> out = parallel_map<int>(
        100, 7, [](std::size_t chunk) { return static_cast<int>(chunk); },
        [](int& chunk, std::size_t i) {
          return chunk * 1000 + static_cast<int>(i);
        });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], static_cast<int>(i / 7) * 1000 + static_cast<int>(i))
          << "threads=" << threads << " i=" << i;
    }
  }
}

TEST_F(ParallelEngineTest, ParallelMapRethrowsFirstChunkError) {
  util::ThreadPool::set_global_thread_count(4);
  const auto run = [] {
    return parallel_map<int>(
        10, 1, [](std::size_t chunk) { return chunk; },
        [](std::size_t& chunk, std::size_t) -> int {
          if (chunk == 3 || chunk == 7) {
            throw std::runtime_error("chunk " + std::to_string(chunk));
          }
          return 0;
        });
  };
  try {
    (void)run();
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "chunk 3");  // chunk order, not finish order
  }
}

// ----------------------------------------------------- cold-start purity --

TEST_F(ParallelEngineTest, CachedSolvesAreIndependentOfHistory) {
  const auto& bench = workload::find_benchmark("x264");
  const workload::Configuration config{4, 2, 3.2};
  const std::vector<int> cores_a = fig6_scenario_cores(1);
  const std::vector<int> cores_b = fig6_scenario_cores(3);

  // Server 1 solves A then B; server 2 solves only B. With separate caches
  // nothing is shared, so equality means a cached solve's value does not
  // depend on what the server solved before it.
  ApproachPipeline p1(Approach::kProposed, kCell);
  p1.server().enable_solve_cache(std::make_shared<SolveCache>(),
                                 solve_scope(Approach::kProposed, kCell));
  (void)p1.server().simulate(bench, config, cores_a, power::CState::kPoll);
  const SimulationResult b_after_a =
      p1.server().simulate(bench, config, cores_b, power::CState::kPoll);

  ApproachPipeline p2(Approach::kProposed, kCell);
  p2.server().enable_solve_cache(std::make_shared<SolveCache>(),
                                 solve_scope(Approach::kProposed, kCell));
  const SimulationResult b_cold =
      p2.server().simulate(bench, config, cores_b, power::CState::kPoll);

  EXPECT_EQ(b_after_a.die.max_c, b_cold.die.max_c);
  EXPECT_EQ(b_after_a.die.avg_c, b_cold.die.avg_c);
  EXPECT_EQ(b_after_a.die.grad_max_c_per_mm, b_cold.die.grad_max_c_per_mm);
  EXPECT_EQ(b_after_a.tcase_c, b_cold.tcase_c);
  ASSERT_TRUE(b_after_a.die_field_c.same_shape(b_cold.die_field_c));
  EXPECT_EQ(b_after_a.die_field_c.data(), b_cold.die_field_c.data());
}

// ------------------------------------------- bit-identity across threads --

void expect_rows_identical(const std::vector<Fig6Row>& a,
                           const std::vector<Fig6Row>& b,
                           std::size_t threads) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("threads=" + std::to_string(threads) + " row=" +
                 std::to_string(i));
    EXPECT_EQ(a[i].scenario, b[i].scenario);
    EXPECT_EQ(a[i].idle_state, b[i].idle_state);
    EXPECT_EQ(a[i].cores, b[i].cores);
    // Bitwise, not near: the parallel engine's contract is exactness.
    EXPECT_EQ(a[i].die.max_c, b[i].die.max_c);
    EXPECT_EQ(a[i].die.avg_c, b[i].die.avg_c);
    EXPECT_EQ(a[i].die.grad_max_c_per_mm, b[i].die.grad_max_c_per_mm);
    EXPECT_EQ(a[i].die.hotspot_cells, b[i].die.hotspot_cells);
  }
}

TEST_F(ParallelEngineTest, Fig6BitIdenticalAcrossThreadCounts) {
  ExperimentOptions options;
  options.cell_size_m = kCell;

  util::ThreadPool::set_global_thread_count(1);
  SolveCache::global()->clear();
  const std::vector<Fig6Row> serial = run_fig6_scenarios(options);

  for (const std::size_t threads : {2u, 4u}) {
    util::ThreadPool::set_global_thread_count(threads);
    SolveCache::global()->clear();  // recompute, don't replay stored bits
    expect_rows_identical(serial, run_fig6_scenarios(options), threads);
  }
}

TEST_F(ParallelEngineTest, RackPlanBitIdenticalAcrossThreadCounts) {
  RackCoordinator::Config config;
  config.qos = workload::QoSRequirement{2.0};
  config.cell_size_m = kCell;
  const std::vector<std::string> racks{"x264", "canneal", "swaptions"};

  util::ThreadPool::set_global_thread_count(1);
  SolveCache::global()->clear();
  const RackPlan serial = RackCoordinator(config).plan(racks);

  for (const std::size_t threads : {2u, 4u}) {
    util::ThreadPool::set_global_thread_count(threads);
    SolveCache::global()->clear();
    const RackPlan parallel = RackCoordinator(config).plan(racks);
    ASSERT_EQ(parallel.servers.size(), serial.servers.size());
    for (std::size_t i = 0; i < serial.servers.size(); ++i) {
      SCOPED_TRACE("threads=" + std::to_string(threads) + " server=" +
                   std::to_string(i));
      EXPECT_EQ(parallel.servers[i].benchmark, serial.servers[i].benchmark);
      EXPECT_EQ(parallel.servers[i].max_supply_temp_c,
                serial.servers[i].max_supply_temp_c);
      EXPECT_EQ(parallel.servers[i].package_power_w,
                serial.servers[i].package_power_w);
      EXPECT_EQ(parallel.servers[i].die_max_c, serial.servers[i].die_max_c);
    }
    EXPECT_EQ(parallel.cooling.supply_temp_c, serial.cooling.supply_temp_c);
    EXPECT_EQ(parallel.cooling.return_temp_c, serial.cooling.return_temp_c);
    EXPECT_EQ(parallel.cooling.chiller_electrical_w,
              serial.cooling.chiller_electrical_w);
  }
}

}  // namespace
}  // namespace tpcool::core
