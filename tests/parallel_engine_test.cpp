// Tests for the parallel experiment engine: SolveCache hit/miss/eviction
// accounting (exact at any capacity — the eviction-race regression),
// snapshot save/load round-trips, rejection of damaged files and the
// snapshot size-warning guard, PipelinePool checkout/reuse semantics,
// parallel_map determinism and error propagation, cold-start purity of
// cached solves, and the headline contract — experiment results
// bit-identical at 1, 2, and N threads (run_fig3/run_table1,
// run_fig6_scenarios, optimize_design, RackCoordinator::plan), for cold
// vs snapshot-warmed caches, and for pooled vs unpooled pipelines.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "tpcool/core/experiment.hpp"
#include "tpcool/core/parallel.hpp"
#include "tpcool/core/pipeline_pool.hpp"
#include "tpcool/core/rack_coordinator.hpp"
#include "tpcool/core/solve_cache.hpp"
#include "tpcool/thermosyphon/design_optimizer.hpp"
#include "tpcool/util/error.hpp"
#include "tpcool/util/thread_pool.hpp"

namespace tpcool::core {
namespace {

// Coarse grid: these tests assert determinism, not physics fidelity.
constexpr double kCell = 2.0e-3;

/// Every experiment below runs once per thread count; the fixture restores
/// the default pool and empties the shared cache so runs are independent.
class ParallelEngineTest : public ::testing::Test {
 protected:
  void TearDown() override {
    util::ThreadPool::set_global_thread_count(0);
    SolveCache::global()->clear();
    PipelinePool::global().clear();  // no parked state between tests
  }
};

// ------------------------------------------------------------- SolveCache --

SimulationResult result_with_max(double max_c) {
  SimulationResult result;
  result.die.max_c = max_c;
  return result;
}

TEST(SolveCacheTest, RejectsZeroCapacity) {
  EXPECT_THROW(SolveCache(0), util::PreconditionError);
}

TEST(SolveCacheTest, CountsHitsAndMisses) {
  // One explicit shard: exact sizes at tiny capacities must not depend on
  // how keys stripe across the host's default shard count.
  SolveCache cache(4, 1);
  SimulationResult out;
  EXPECT_FALSE(cache.try_get("a", out));
  cache.put("a", result_with_max(50.0));
  EXPECT_TRUE(cache.try_get("a", out));
  EXPECT_DOUBLE_EQ(out.die.max_c, 50.0);

  int computes = 0;
  const auto compute = [&] {
    ++computes;
    return result_with_max(60.0);
  };
  EXPECT_DOUBLE_EQ(cache.get_or_compute("b", compute).die.max_c, 60.0);
  EXPECT_DOUBLE_EQ(cache.get_or_compute("b", compute).die.max_c, 60.0);
  EXPECT_EQ(computes, 1);

  const SolveCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);    // try_get("a") + second get_or_compute("b")
  EXPECT_EQ(stats.misses, 2u);  // first try_get("a") + first get_or_compute
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.size, 2u);
}

TEST(SolveCacheTest, EvictsLeastRecentlyUsed) {
  // One shard, uniform (zero) costs: cost-aware eviction degrades to the
  // exact LRU order this test pins.
  SolveCache cache(2, 1);
  cache.put("a", result_with_max(1.0));
  cache.put("b", result_with_max(2.0));
  SimulationResult out;
  ASSERT_TRUE(cache.try_get("a", out));  // "b" is now least recently used
  cache.put("c", result_with_max(3.0));  // evicts "b"

  EXPECT_TRUE(cache.try_get("a", out));
  EXPECT_TRUE(cache.try_get("c", out));
  EXPECT_FALSE(cache.try_get("b", out));
  const SolveCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.size, 2u);
}

TEST(SolveCacheTest, PutIsIdempotent) {
  SolveCache cache(2);
  cache.put("a", result_with_max(1.0));
  cache.put("a", result_with_max(99.0));  // same key: first value is kept
  SimulationResult out;
  ASSERT_TRUE(cache.try_get("a", out));
  EXPECT_DOUBLE_EQ(out.die.max_c, 1.0);
  EXPECT_EQ(cache.stats().size, 1u);
}

TEST(SolveCacheTest, ClearResetsEverything) {
  SolveCache cache(2);
  cache.put("a", result_with_max(1.0));
  SimulationResult out;
  ASSERT_TRUE(cache.try_get("a", out));
  cache.clear();
  EXPECT_FALSE(cache.try_get("a", out));
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().size, 0u);
}

TEST(SolveCacheTest, KeyDistinguishesNearbyDoubles) {
  std::string a;
  std::string b;
  append_key_bits(a, 1.25e-3);
  append_key_bits(b, 1.2500000001e-3);
  EXPECT_NE(a, b);
}

TEST(SolveCacheTest, ConcurrentRequestsForOneKeyComputeOnce) {
  // 8 tasks race get_or_compute on the same key from a 4-thread pool; the
  // in-flight dedup must run the compute exactly once and count the other
  // seven as hits — the serial schedule's numbers, independent of timing.
  util::ThreadPool::set_global_thread_count(4);
  SolveCache cache(4);
  std::atomic<int> computes{0};
  const auto results = parallel_map<double>(
      8, 1, [](std::size_t chunk) { return chunk; },
      [&](std::size_t&, std::size_t) {
        return cache
            .get_or_compute("shared",
                            [&] {
                              ++computes;
                              return result_with_max(42.0);
                            })
            .die.max_c;
      });
  util::ThreadPool::set_global_thread_count(0);

  EXPECT_EQ(computes.load(), 1);
  for (const double value : results) EXPECT_DOUBLE_EQ(value, 42.0);
  const SolveCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 7u);
}

TEST(SolveCacheTest, ExactCountersUnderEvictionPressure) {
  // Regression for the eviction/waiter recompute race: with capacity 1 and
  // a thread continuously evicting the shared entry, registered waiters
  // must still be served from the in-flight record — one compute, two
  // hits, exactly, no matter when the eviction lands.  Deterministic by
  // construction, not by timing: the compute body holds the key in flight
  // until both other tasks are registered waiters (the `waiting` gauge),
  // and the presser hammers the put/evict path throughout.
  util::ThreadPool::set_global_thread_count(4);
  SolveCache cache(1, 1);  // one shard: every put contends with "shared"
  std::atomic<int> computes{0};
  std::atomic<bool> stop{false};
  std::thread presser([&] {
    int i = 0;
    while (!stop.load()) {
      cache.put("evict" + std::to_string(i++), result_with_max(0.0));
      std::this_thread::sleep_for(std::chrono::microseconds(1));
    }
  });
  const auto results = parallel_map<double>(
      3, 1, [](std::size_t chunk) { return chunk; },
      [&](std::size_t&, std::size_t) {
        return cache
            .get_or_compute("shared",
                            [&] {
                              ++computes;
                              // stats() locks the cache; the compute runs
                              // without the lock held, so polling is safe.
                              while (cache.stats().waiting < 2) {
                                std::this_thread::yield();
                              }
                              return result_with_max(7.0);
                            })
            .die.max_c;
      });
  stop = true;
  presser.join();
  util::ThreadPool::set_global_thread_count(0);

  EXPECT_EQ(computes.load(), 1);
  for (const double value : results) EXPECT_DOUBLE_EQ(value, 7.0);
  const SolveCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.waiting, 0u);
}

// ------------------------------------------------------------- snapshots --

/// A SimulationResult exercising every serialized field, deterministic in
/// `seed` so bitwise comparisons are meaningful.
SimulationResult rich_result(int seed) {
  const double s = static_cast<double>(seed);
  SimulationResult r;
  r.die = {60.0 + s, 50.0 + s, 3.5 + s, 4u + static_cast<std::size_t>(seed),
           100u};
  r.package = {45.0 + s, 40.0 + s, 0.5 + s, 2u, 100u};
  r.tcase_c = 55.0 + s;
  r.total_power_w = 80.0 + s;
  r.power = {40.0 + s, 5.0 + s, 12.0 + s, 8.0 + s};
  r.syphon.t_sat_c = 35.0 + s;
  r.syphon.refrigerant_flow_kg_s = 1e-3 * (1.0 + s);
  r.syphon.loop_exit_quality = 0.3 + 0.01 * s;
  r.syphon.water_outlet_c = 32.0 + s;
  r.syphon.q_total_w = 75.0 + s;
  r.syphon.htc_map = util::Grid2D<double>(3, 2);
  r.syphon.fluid_temp_map = util::Grid2D<double>(3, 2);
  for (std::size_t i = 0; i < r.syphon.htc_map.data().size(); ++i) {
    r.syphon.htc_map.data()[i] = 5000.0 + s + static_cast<double>(i);
    r.syphon.fluid_temp_map.data()[i] = 30.0 + s + 0.1 * static_cast<double>(i);
  }
  r.syphon.channels = {{0.25 + 0.01 * s, 10.0 + s, false},
                       {0.9 + 0.001 * s, 2.0 + s, seed % 2 == 1}};
  r.syphon.any_dryout = seed % 2 == 1;
  r.die_field_c = util::Grid2D<double>(4, 3);
  r.package_field_c = util::Grid2D<double>(2, 2);
  for (std::size_t i = 0; i < r.die_field_c.data().size(); ++i) {
    r.die_field_c.data()[i] = 60.0 + s + 0.25 * static_cast<double>(i);
  }
  for (std::size_t i = 0; i < r.package_field_c.data().size(); ++i) {
    r.package_field_c.data()[i] = 45.0 + s + 0.5 * static_cast<double>(i);
  }
  r.active_cores = {seed, 1, 5};
  r.transient.end_state_c = {70.0 + s, 68.5 + s, 67.0 + s, 66.25 + s};
  r.transient.peak_tcase_c = 58.0 + s;
  r.transient.peak_die_c = 63.0 + s;
  r.transient.sim_time_s = 120.0 + s;
  r.transient.steps = 17u + static_cast<std::uint64_t>(seed);
  r.transient.rejected_steps = static_cast<std::uint64_t>(seed % 3);
  return r;
}

void expect_results_identical(const SimulationResult& a,
                              const SimulationResult& b) {
  EXPECT_EQ(a.die.max_c, b.die.max_c);
  EXPECT_EQ(a.die.avg_c, b.die.avg_c);
  EXPECT_EQ(a.die.grad_max_c_per_mm, b.die.grad_max_c_per_mm);
  EXPECT_EQ(a.die.hotspot_cells, b.die.hotspot_cells);
  EXPECT_EQ(a.die.cell_count, b.die.cell_count);
  EXPECT_EQ(a.package.max_c, b.package.max_c);
  EXPECT_EQ(a.tcase_c, b.tcase_c);
  EXPECT_EQ(a.total_power_w, b.total_power_w);
  EXPECT_EQ(a.power.active_cores_w, b.power.active_cores_w);
  EXPECT_EQ(a.power.idle_cores_w, b.power.idle_cores_w);
  EXPECT_EQ(a.power.mcio_w, b.power.mcio_w);
  EXPECT_EQ(a.power.llc_w, b.power.llc_w);
  EXPECT_EQ(a.syphon.t_sat_c, b.syphon.t_sat_c);
  EXPECT_EQ(a.syphon.refrigerant_flow_kg_s, b.syphon.refrigerant_flow_kg_s);
  EXPECT_EQ(a.syphon.loop_exit_quality, b.syphon.loop_exit_quality);
  EXPECT_EQ(a.syphon.water_outlet_c, b.syphon.water_outlet_c);
  EXPECT_EQ(a.syphon.q_total_w, b.syphon.q_total_w);
  EXPECT_EQ(a.syphon.htc_map.data(), b.syphon.htc_map.data());
  EXPECT_EQ(a.syphon.fluid_temp_map.data(), b.syphon.fluid_temp_map.data());
  ASSERT_EQ(a.syphon.channels.size(), b.syphon.channels.size());
  for (std::size_t i = 0; i < a.syphon.channels.size(); ++i) {
    EXPECT_EQ(a.syphon.channels[i].exit_quality,
              b.syphon.channels[i].exit_quality);
    EXPECT_EQ(a.syphon.channels[i].absorbed_w,
              b.syphon.channels[i].absorbed_w);
    EXPECT_EQ(a.syphon.channels[i].dried_out,
              b.syphon.channels[i].dried_out);
  }
  EXPECT_EQ(a.syphon.any_dryout, b.syphon.any_dryout);
  EXPECT_EQ(a.die_field_c.data(), b.die_field_c.data());
  EXPECT_EQ(a.package_field_c.data(), b.package_field_c.data());
  EXPECT_EQ(a.active_cores, b.active_cores);
  EXPECT_EQ(a.transient.end_state_c, b.transient.end_state_c);
  EXPECT_EQ(a.transient.peak_tcase_c, b.transient.peak_tcase_c);
  EXPECT_EQ(a.transient.peak_die_c, b.transient.peak_die_c);
  EXPECT_EQ(a.transient.sim_time_s, b.transient.sim_time_s);
  EXPECT_EQ(a.transient.steps, b.transient.steps);
  EXPECT_EQ(a.transient.rejected_steps, b.transient.rejected_steps);
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good());
  return {std::istreambuf_iterator<char>(is),
          std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::string& blob) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(blob.data(), static_cast<std::streamsize>(blob.size()));
}

TEST(SolveCacheSnapshotTest, SaveLoadRoundTripIsLossless) {
  const std::string path = ::testing::TempDir() + "tpcool_snap_roundtrip.bin";
  // One shard so capacity 8 is one slice and all three entries fit at any
  // host shard default (cache_test covers multi-shard round trips).
  SolveCache source(8, 1);
  source.put("alpha", rich_result(1));
  source.put("beta", rich_result(2));
  source.put("gamma", rich_result(3));
  SimulationResult touched;
  ASSERT_TRUE(source.try_get("alpha", touched));  // non-trivial LRU order
  source.save(path);

  SolveCache loaded(8, 1);
  loaded.load(path);
  EXPECT_EQ(loaded.content_digest(), source.content_digest());
  EXPECT_EQ(loaded.stats().size, 3u);
  for (const auto& [key, seed] :
       {std::pair<const char*, int>{"alpha", 1}, {"beta", 2}, {"gamma", 3}}) {
    SimulationResult out;
    ASSERT_TRUE(loaded.try_get(key, out)) << key;
    expect_results_identical(out, rich_result(seed));
  }
  std::remove(path.c_str());
}

TEST(SolveCacheSnapshotTest, LoadMergesAndRespectsCapacity) {
  const std::string path = ::testing::TempDir() + "tpcool_snap_merge.bin";
  SolveCache source(8, 1);
  source.put("alpha", rich_result(1));
  source.put("beta", rich_result(2));
  source.save(path);

  // Existing entries win and stay most-recently-used.  One shard: capacity
  // 2 must mean exactly two resident entries.
  SolveCache target(2, 1);
  target.put("alpha", rich_result(9));
  target.load(path);
  SimulationResult out;
  ASSERT_TRUE(target.try_get("alpha", out));
  EXPECT_EQ(out.die.max_c, rich_result(9).die.max_c);
  // Capacity 2 holds "alpha" (existing) + the snapshot's other entry.
  EXPECT_EQ(target.stats().size, 2u);
  std::remove(path.c_str());
}

TEST(SolveCacheSnapshotTest, RejectsMissingTruncatedAndCorruptFiles) {
  const std::string path = ::testing::TempDir() + "tpcool_snap_damage.bin";
  SolveCache source(4);
  source.put("key", rich_result(4));
  source.save(path);
  const std::string blob = read_file(path);
  ASSERT_GT(blob.size(), 40u);

  SolveCache fresh(4);
  EXPECT_THROW(fresh.load(::testing::TempDir() + "tpcool_no_such_file.bin"),
               SnapshotError);

  write_file(path, blob.substr(0, blob.size() - 20));  // truncated
  EXPECT_THROW(fresh.load(path), SnapshotError);

  write_file(path, blob.substr(0, 10));  // shorter than the header
  EXPECT_THROW(fresh.load(path), SnapshotError);

  std::string corrupt = blob;  // one payload bit flipped, length intact
  corrupt[blob.size() / 2] = static_cast<char>(corrupt[blob.size() / 2] ^ 1);
  write_file(path, corrupt);
  EXPECT_THROW(fresh.load(path), SnapshotError);

  std::string bad_magic = blob;
  bad_magic[0] = 'X';
  write_file(path, bad_magic);
  EXPECT_THROW(fresh.load(path), SnapshotError);

  // Nothing survived any of the bad loads.
  EXPECT_EQ(fresh.stats().size, 0u);
  std::remove(path.c_str());
}

TEST(SolveCacheSnapshotTest, WarnsWhenSnapshotExceedsSizeThreshold) {
  // Fleet-scale growth guard: saves over TPCOOL_SOLVE_CACHE_WARN_MB
  // megabytes log a warning (default 64 MB; <= 0 disables).  A snapshot of
  // three rich results is a few KB, so a fractional threshold trips it.
  const std::string path = ::testing::TempDir() + "tpcool_snap_warn.bin";
  SolveCache source(8);
  source.put("alpha", rich_result(1));
  source.put("beta", rich_result(2));
  source.put("gamma", rich_result(3));

  ASSERT_EQ(setenv("TPCOOL_SOLVE_CACHE_WARN_MB", "0.001", 1), 0);
  ::testing::internal::CaptureStderr();
  source.save(path);
  const std::string warned = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(warned.find("solve-cache snapshot"), std::string::npos) << warned;
  EXPECT_NE(warned.find("WARN"), std::string::npos) << warned;

  // Disabled (<= 0): the same oversized save stays quiet.
  ASSERT_EQ(setenv("TPCOOL_SOLVE_CACHE_WARN_MB", "0", 1), 0);
  ::testing::internal::CaptureStderr();
  source.save(path);
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");

  // The default 64 MB threshold never fires for a few-KB snapshot.
  ASSERT_EQ(unsetenv("TPCOOL_SOLVE_CACHE_WARN_MB"), 0);
  ::testing::internal::CaptureStderr();
  source.save(path);
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
  std::remove(path.c_str());
}

TEST(SolveCacheSnapshotTest, RefusesMismatchedSchemaVersion) {
  const std::string path = ::testing::TempDir() + "tpcool_snap_version.bin";
  SolveCache source(4);
  source.put("key", rich_result(5));
  source.save(path);

  // Patch the version field (bytes 8..11, little-endian) and re-seal the
  // trailing stream digest so only the version check can fire.
  std::string blob = read_file(path);
  blob[8] = 99;
  blob[9] = blob[10] = blob[11] = 0;
  std::uint64_t digest = 1469598103934665603ULL;
  for (std::size_t i = 0; i + 8 < blob.size(); ++i) {
    digest ^= static_cast<unsigned char>(blob[i]);
    digest *= 1099511628211ULL;
  }
  for (std::size_t i = 0; i < 8; ++i) {
    blob[blob.size() - 8 + i] =
        static_cast<char>((digest >> (8 * i)) & 0xFF);
  }
  write_file(path, blob);

  SolveCache fresh(4);
  try {
    fresh.load(path);
    FAIL() << "expected SnapshotError";
  } catch (const SnapshotError& error) {
    EXPECT_NE(std::string(error.what()).find("schema version"),
              std::string::npos);
  }
  std::remove(path.c_str());
}

// ----------------------------------------------------------- parallel_map --

TEST_F(ParallelEngineTest, ParallelMapPreservesTaskOrder) {
  for (const std::size_t threads : {1u, 4u}) {
    util::ThreadPool::set_global_thread_count(threads);
    const std::vector<int> out = parallel_map<int>(
        100, 7, [](std::size_t chunk) { return static_cast<int>(chunk); },
        [](int& chunk, std::size_t i) {
          return chunk * 1000 + static_cast<int>(i);
        });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], static_cast<int>(i / 7) * 1000 + static_cast<int>(i))
          << "threads=" << threads << " i=" << i;
    }
  }
}

TEST_F(ParallelEngineTest, ParallelMapRethrowsFirstChunkError) {
  util::ThreadPool::set_global_thread_count(4);
  const auto run = [] {
    return parallel_map<int>(
        10, 1, [](std::size_t chunk) { return chunk; },
        [](std::size_t& chunk, std::size_t) -> int {
          if (chunk == 3 || chunk == 7) {
            throw std::runtime_error("chunk " + std::to_string(chunk));
          }
          return 0;
        });
  };
  try {
    (void)run();
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "chunk 3");  // chunk order, not finish order
  }
}

// ----------------------------------------------------- cold-start purity --

TEST_F(ParallelEngineTest, CachedSolvesAreIndependentOfHistory) {
  const auto& bench = workload::find_benchmark("x264");
  const workload::Configuration config{4, 2, 3.2};
  const std::vector<int> cores_a = fig6_scenario_cores(1);
  const std::vector<int> cores_b = fig6_scenario_cores(3);

  // Server 1 solves A then B; server 2 solves only B. With separate caches
  // nothing is shared, so equality means a cached solve's value does not
  // depend on what the server solved before it.
  ApproachPipeline p1(Approach::kProposed, kCell);
  p1.server().enable_solve_cache(std::make_shared<SolveCache>(),
                                 solve_scope(Approach::kProposed, kCell));
  (void)p1.server().simulate(bench, config, cores_a, power::CState::kPoll);
  const SimulationResult b_after_a =
      p1.server().simulate(bench, config, cores_b, power::CState::kPoll);

  ApproachPipeline p2(Approach::kProposed, kCell);
  p2.server().enable_solve_cache(std::make_shared<SolveCache>(),
                                 solve_scope(Approach::kProposed, kCell));
  const SimulationResult b_cold =
      p2.server().simulate(bench, config, cores_b, power::CState::kPoll);

  EXPECT_EQ(b_after_a.die.max_c, b_cold.die.max_c);
  EXPECT_EQ(b_after_a.die.avg_c, b_cold.die.avg_c);
  EXPECT_EQ(b_after_a.die.grad_max_c_per_mm, b_cold.die.grad_max_c_per_mm);
  EXPECT_EQ(b_after_a.tcase_c, b_cold.tcase_c);
  ASSERT_TRUE(b_after_a.die_field_c.same_shape(b_cold.die_field_c));
  EXPECT_EQ(b_after_a.die_field_c.data(), b_cold.die_field_c.data());
}

// ------------------------------------------- bit-identity across threads --

void expect_rows_identical(const std::vector<Fig6Row>& a,
                           const std::vector<Fig6Row>& b,
                           std::size_t threads) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("threads=" + std::to_string(threads) + " row=" +
                 std::to_string(i));
    EXPECT_EQ(a[i].scenario, b[i].scenario);
    EXPECT_EQ(a[i].idle_state, b[i].idle_state);
    EXPECT_EQ(a[i].cores, b[i].cores);
    // Bitwise, not near: the parallel engine's contract is exactness.
    EXPECT_EQ(a[i].die.max_c, b[i].die.max_c);
    EXPECT_EQ(a[i].die.avg_c, b[i].die.avg_c);
    EXPECT_EQ(a[i].die.grad_max_c_per_mm, b[i].die.grad_max_c_per_mm);
    EXPECT_EQ(a[i].die.hotspot_cells, b[i].die.hotspot_cells);
  }
}

TEST_F(ParallelEngineTest, Fig6BitIdenticalAcrossThreadCounts) {
  ExperimentOptions options;
  options.cell_size_m = kCell;

  util::ThreadPool::set_global_thread_count(1);
  SolveCache::global()->clear();
  const std::vector<Fig6Row> serial = run_fig6_scenarios(options);

  for (const std::size_t threads : {2u, 4u}) {
    util::ThreadPool::set_global_thread_count(threads);
    SolveCache::global()->clear();  // recompute, don't replay stored bits
    expect_rows_identical(serial, run_fig6_scenarios(options), threads);
  }
}

TEST_F(ParallelEngineTest, Fig6BitIdenticalColdVsSnapshotWarmedCache) {
  // A snapshot-warmed run must reproduce a cold run bit for bit, serving
  // every solve from the loaded entries (0 misses).
  ExperimentOptions options;
  options.cell_size_m = kCell;
  util::ThreadPool::set_global_thread_count(2);
  SolveCache::global()->clear();
  const std::vector<Fig6Row> cold = run_fig6_scenarios(options);

  const std::string path = ::testing::TempDir() + "tpcool_fig6_snap.bin";
  SolveCache::global()->save(path);
  SolveCache::global()->clear();
  SolveCache::global()->load(path);
  const std::vector<Fig6Row> warm = run_fig6_scenarios(options);
  const SolveCache::Stats stats = SolveCache::global()->stats();
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.hits, 6u);
  expect_rows_identical(cold, warm, 2);
  std::remove(path.c_str());
}

TEST_F(ParallelEngineTest, Fig3BitIdenticalAcrossThreadCounts) {
  const ExperimentOptions options;  // all 13 benchmarks — no solves, cheap
  util::ThreadPool::set_global_thread_count(1);
  const std::vector<Fig3Row> serial = run_fig3(options);
  ASSERT_EQ(serial.size(), workload::parsec_benchmarks().size());

  for (const std::size_t threads : {2u, 4u}) {
    util::ThreadPool::set_global_thread_count(threads);
    const std::vector<Fig3Row> parallel = run_fig3(options);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      SCOPED_TRACE("threads=" + std::to_string(threads) + " row=" +
                   std::to_string(i));
      EXPECT_EQ(parallel[i].benchmark, serial[i].benchmark);
      EXPECT_EQ(parallel[i].normalized_time, serial[i].normalized_time);
      EXPECT_EQ(parallel[i].meets_2x_at_2_4, serial[i].meets_2x_at_2_4);
    }
  }
}

TEST_F(ParallelEngineTest, Table1BitIdenticalAcrossThreadCounts) {
  util::ThreadPool::set_global_thread_count(1);
  const std::vector<Table1Row> serial = run_table1();
  ASSERT_EQ(serial.size(), power::all_cstates().size());

  for (const std::size_t threads : {2u, 4u}) {
    util::ThreadPool::set_global_thread_count(threads);
    const std::vector<Table1Row> parallel = run_table1();
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      SCOPED_TRACE("threads=" + std::to_string(threads) + " row=" +
                   std::to_string(i));
      EXPECT_EQ(parallel[i].state, serial[i].state);
      EXPECT_EQ(parallel[i].latency_us, serial[i].latency_us);
      EXPECT_EQ(parallel[i].power_all8_w, serial[i].power_all8_w);
    }
  }
}

TEST_F(ParallelEngineTest, DesignOptimizerBitIdenticalAcrossThreadCounts) {
  // Analytic evaluator (no thermal solves): a pure, reentrant function of
  // the candidate, so the test isolates the optimizer's own fan-out.
  const auto make_evaluator = [] {
    return thermosyphon::DesignEvaluator(
        [](const thermosyphon::ThermosyphonDesign& design,
           const thermosyphon::OperatingPoint& op) {
          thermosyphon::DesignEvaluation eval;
          const double orientation_penalty =
              design.evaporator.orientation ==
                      thermosyphon::Orientation::kEastWest
                  ? 0.0
                  : 2.0;
          eval.die_max_c = 60.0 + orientation_penalty +
                           20.0 * std::fabs(design.filling_ratio - 0.55) +
                           0.4 * op.water_inlet_c -
                           0.2 * op.water_flow_kg_h;
          eval.die_grad_c_per_mm = 1.0 + design.filling_ratio;
          eval.tcase_c = eval.die_max_c - 5.0;
          eval.dryout = false;
          eval.loop_pressure_pa =
              design.refrigerant->saturation_pressure_pa(30.0);
          return eval;
        });
  };

  util::ThreadPool::set_global_thread_count(1);
  const thermosyphon::DesignResult serial = thermosyphon::optimize_design(
      thermosyphon::DesignSearchSpace{},
      thermosyphon::DesignEvaluatorFactory(make_evaluator));

  for (const std::size_t threads : {2u, 4u}) {
    util::ThreadPool::set_global_thread_count(threads);
    const thermosyphon::DesignResult parallel = thermosyphon::optimize_design(
        thermosyphon::DesignSearchSpace{},
        thermosyphon::DesignEvaluatorFactory(make_evaluator));
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(parallel.design.evaporator.orientation,
              serial.design.evaporator.orientation);
    EXPECT_EQ(parallel.design.refrigerant, serial.design.refrigerant);
    EXPECT_EQ(parallel.design.filling_ratio, serial.design.filling_ratio);
    EXPECT_EQ(parallel.op.water_inlet_c, serial.op.water_inlet_c);
    EXPECT_EQ(parallel.op.water_flow_kg_h, serial.op.water_flow_kg_h);
    EXPECT_EQ(parallel.eval.die_max_c, serial.eval.die_max_c);
    EXPECT_EQ(parallel.eval.tcase_c, serial.eval.tcase_c);
    ASSERT_EQ(parallel.records.size(), serial.records.size());
    for (std::size_t i = 0; i < serial.records.size(); ++i) {
      EXPECT_EQ(parallel.records[i].eval.die_max_c,
                serial.records[i].eval.die_max_c);
      EXPECT_EQ(parallel.records[i].feasible, serial.records[i].feasible);
      EXPECT_EQ(parallel.records[i].op.water_inlet_c,
                serial.records[i].op.water_inlet_c);
    }
  }
}

// ------------------------------------------------------------ PipelinePool --

TEST_F(ParallelEngineTest, PipelinePoolChecksOutConstructsAndReuses) {
  PipelinePool pool;
  // Purity requirement: pooled reuse is only bit-identical with a cache.
  EXPECT_THROW((void)pool.checkout(Approach::kProposed, kCell, nullptr),
               util::PreconditionError);

  const auto cache = std::make_shared<SolveCache>();
  {
    const PipelinePool::Lease lease =
        pool.checkout(Approach::kProposed, kCell, cache);
    EXPECT_EQ(lease->approach(), Approach::kProposed);
    EXPECT_TRUE(lease->server().solve_cache_enabled());
    const PipelinePool::Stats stats = pool.stats();
    EXPECT_EQ(stats.constructions, 1u);
    EXPECT_EQ(stats.reuses, 0u);
    EXPECT_EQ(stats.idle, 0u);  // checked out, not parked
  }
  EXPECT_EQ(pool.stats().idle, 1u);  // lease returned its pipeline

  {
    const PipelinePool::Lease lease =
        pool.checkout(Approach::kProposed, kCell, cache);
    EXPECT_EQ(pool.stats().reuses, 1u);
    EXPECT_EQ(pool.stats().constructions, 1u);
    // A different (approach, cell size) key never shares pipelines.
    const PipelinePool::Lease other =
        pool.checkout(Approach::kSoaBalancing, kCell, cache);
    EXPECT_EQ(other->approach(), Approach::kSoaBalancing);
    EXPECT_EQ(pool.stats().constructions, 2u);
  }

  // A previous user's operating point must not leak through a reuse: the
  // solve call sites that simulate "at the constructed default" (fig6,
  // the oracle sweeps) would otherwise inherit a rack scan's last water
  // temperature, timing-dependently.
  const thermosyphon::OperatingPoint default_op =
      server_config_for(Approach::kProposed, kCell).operating_point;
  {
    PipelinePool::Lease lease =
        pool.checkout(Approach::kProposed, kCell, cache);
    lease->server().set_operating_point(
        {.water_flow_kg_h = 1.0, .water_inlet_c = 15.0});
  }
  {
    const PipelinePool::Lease lease =
        pool.checkout(Approach::kProposed, kCell, cache);
    EXPECT_EQ(lease->server().operating_point().water_flow_kg_h,
              default_op.water_flow_kg_h);
    EXPECT_EQ(lease->server().operating_point().water_inlet_c,
              default_op.water_inlet_c);
  }

  pool.clear();  // drops the idle pipelines, keeps the counters
  EXPECT_EQ(pool.stats().idle, 0u);
  EXPECT_EQ(pool.stats().constructions, 2u);
  EXPECT_EQ(pool.stats().reuses, 3u);

  // An unpooled lease owns its pipeline outright and parks nowhere.
  {
    const PipelinePool::Lease lease =
        PipelinePool::unpooled(Approach::kProposed, kCell);
    EXPECT_FALSE(lease->server().solve_cache_enabled());
  }
  EXPECT_EQ(pool.stats().idle, 0u);
}

TEST_F(ParallelEngineTest, RackPlanReusesPooledPipelines) {
  // The satellite claim: pooling measurably cuts per-chunk constructions.
  // Single-threaded chunks run in order and return their lease before the
  // next chunk begins, so the counters are exact: one construction serves
  // all 6 checkouts (two parallel phases x 3 servers) of the first plan,
  // and the second plan constructs nothing at all.
  util::ThreadPool::set_global_thread_count(1);
  SolveCache::global()->clear();
  PipelinePool::global().clear();
  RackCoordinator::Config config;
  config.cell_size_m = kCell;
  const std::vector<std::string> racks{"x264", "canneal", "swaptions"};

  const PipelinePool::Stats before = PipelinePool::global().stats();
  (void)RackCoordinator(config).plan(racks);
  const PipelinePool::Stats mid = PipelinePool::global().stats();
  EXPECT_EQ(mid.constructions - before.constructions, 1u);
  EXPECT_EQ(mid.reuses - before.reuses, 5u);

  (void)RackCoordinator(config).plan(racks);
  const PipelinePool::Stats after = PipelinePool::global().stats();
  EXPECT_EQ(after.constructions, mid.constructions);
  EXPECT_EQ(after.reuses - mid.reuses, 6u);
}

TEST_F(ParallelEngineTest, RackPlanPooledBitIdenticalToUnpooled) {
  // The coordinator now runs exclusively on pooled pipelines; this is the
  // reference it must match: a fresh pipeline and a fresh private cache
  // per server (every solve cold and pure), serial, no pool anywhere.
  RackCoordinator::Config config;
  config.cell_size_m = kCell;
  const std::vector<std::string> racks{"x264", "canneal", "swaptions"};
  const double design_flow =
      server_config_for(config.approach, config.cell_size_m)
          .operating_point.water_flow_kg_h;

  RackPlan unpooled;
  for (const std::string& name : racks) {
    ApproachPipeline pipeline(config.approach, config.cell_size_m);
    pipeline.server().enable_solve_cache(
        std::make_shared<SolveCache>(),
        solve_scope(config.approach, config.cell_size_m));
    const workload::BenchmarkProfile& bench = workload::find_benchmark(name);
    ServerPlan sp;
    sp.benchmark = name;
    sp.decision = pipeline.scheduler().schedule(bench, config.qos);
    for (const double t_w : config.supply_candidates_c) {
      pipeline.server().set_operating_point(
          {.water_flow_kg_h = design_flow, .water_inlet_c = t_w});
      const SimulationResult sim = pipeline.server().simulate(
          bench, sp.decision.point.config, sp.decision.cores,
          sp.decision.idle_state);
      if (sim.tcase_c <= config.tcase_limit_c) {
        sp.max_supply_temp_c = t_w;
        sp.package_power_w = sim.total_power_w;
        break;
      }
    }
    unpooled.servers.push_back(std::move(sp));
  }
  std::vector<cooling::ServerDemand> demands;
  for (const ServerPlan& sp : unpooled.servers) {
    demands.push_back({sp.package_power_w, sp.max_supply_temp_c, design_flow});
  }
  unpooled.cooling = cooling::solve_rack_cooling(demands, config.chiller);
  for (ServerPlan& sp : unpooled.servers) {
    ApproachPipeline pipeline(config.approach, config.cell_size_m);
    pipeline.server().enable_solve_cache(
        std::make_shared<SolveCache>(),
        solve_scope(config.approach, config.cell_size_m));
    pipeline.server().set_operating_point(
        {.water_flow_kg_h = design_flow,
         .water_inlet_c = unpooled.cooling.supply_temp_c});
    sp.die_max_c = pipeline.server()
                       .simulate(workload::find_benchmark(sp.benchmark),
                                 sp.decision.point.config, sp.decision.cores,
                                 sp.decision.idle_state)
                       .die.max_c;
  }

  for (const std::size_t threads : {1u, 4u}) {
    util::ThreadPool::set_global_thread_count(threads);
    SolveCache::global()->clear();
    const RackPlan pooled = RackCoordinator(config).plan(racks);
    ASSERT_EQ(pooled.servers.size(), unpooled.servers.size());
    for (std::size_t i = 0; i < unpooled.servers.size(); ++i) {
      SCOPED_TRACE("threads=" + std::to_string(threads) + " server=" +
                   std::to_string(i));
      EXPECT_EQ(pooled.servers[i].benchmark, unpooled.servers[i].benchmark);
      // Bitwise: pooled reuse must be unobservable in the results.
      EXPECT_EQ(pooled.servers[i].max_supply_temp_c,
                unpooled.servers[i].max_supply_temp_c);
      EXPECT_EQ(pooled.servers[i].package_power_w,
                unpooled.servers[i].package_power_w);
      EXPECT_EQ(pooled.servers[i].die_max_c, unpooled.servers[i].die_max_c);
    }
    EXPECT_EQ(pooled.cooling.supply_temp_c, unpooled.cooling.supply_temp_c);
    EXPECT_EQ(pooled.cooling.return_temp_c, unpooled.cooling.return_temp_c);
    EXPECT_EQ(pooled.cooling.chiller_electrical_w,
              unpooled.cooling.chiller_electrical_w);
  }
}

TEST_F(ParallelEngineTest, RackPlanBitIdenticalAcrossThreadCounts) {
  RackCoordinator::Config config;
  config.qos = workload::QoSRequirement{2.0};
  config.cell_size_m = kCell;
  const std::vector<std::string> racks{"x264", "canneal", "swaptions"};

  util::ThreadPool::set_global_thread_count(1);
  SolveCache::global()->clear();
  const RackPlan serial = RackCoordinator(config).plan(racks);

  for (const std::size_t threads : {2u, 4u}) {
    util::ThreadPool::set_global_thread_count(threads);
    SolveCache::global()->clear();
    const RackPlan parallel = RackCoordinator(config).plan(racks);
    ASSERT_EQ(parallel.servers.size(), serial.servers.size());
    for (std::size_t i = 0; i < serial.servers.size(); ++i) {
      SCOPED_TRACE("threads=" + std::to_string(threads) + " server=" +
                   std::to_string(i));
      EXPECT_EQ(parallel.servers[i].benchmark, serial.servers[i].benchmark);
      EXPECT_EQ(parallel.servers[i].max_supply_temp_c,
                serial.servers[i].max_supply_temp_c);
      EXPECT_EQ(parallel.servers[i].package_power_w,
                serial.servers[i].package_power_w);
      EXPECT_EQ(parallel.servers[i].die_max_c, serial.servers[i].die_max_c);
    }
    EXPECT_EQ(parallel.cooling.supply_temp_c, serial.cooling.supply_temp_c);
    EXPECT_EQ(parallel.cooling.return_temp_c, serial.cooling.return_temp_c);
    EXPECT_EQ(parallel.cooling.chiller_electrical_w,
              serial.cooling.chiller_electrical_w);
  }
}

}  // namespace
}  // namespace tpcool::core
