// Tests for the cooling-technology baselines (air cooling, single-phase
// cold plate) and the PUE accounting — the quantitative backdrop of the
// paper's introduction.

#include <gtest/gtest.h>

#include "tpcool/cooling/air_cooling.hpp"
#include "tpcool/cooling/chiller.hpp"
#include "tpcool/cooling/cold_plate.hpp"
#include "tpcool/cooling/pue.hpp"
#include "tpcool/util/error.hpp"

namespace tpcool::cooling {
namespace {

// ------------------------------------------------------------ air cooling --

TEST(AirCooling, FasterFanCoolsMoreAndCostsCubically) {
  const AirCoolerDesign design;
  const AirCoolerState half = air_cooler_at(design, 0.5);
  const AirCoolerState full = air_cooler_at(design, 1.0);
  EXPECT_LT(full.case_to_air_k_w, half.case_to_air_k_w);
  EXPECT_NEAR(full.fan_power_w / half.fan_power_w, 8.0, 1e-9);
}

TEST(AirCooling, SpeedClampedToDesignLimits) {
  const AirCoolerDesign design;
  EXPECT_DOUBLE_EQ(air_cooler_at(design, 0.01).speed_frac,
                   design.min_speed_frac);
  EXPECT_DOUBLE_EQ(air_cooler_at(design, 5.0).speed_frac,
                   design.max_speed_frac);
}

TEST(AirCooling, CaseTemperatureLinearInLoad) {
  const AirCoolerState state = air_cooler_at(AirCoolerDesign{}, 1.0);
  const double t40 = air_cooled_case_c(state, 40.0, 30.0);
  const double t80 = air_cooled_case_c(state, 80.0, 30.0);
  EXPECT_NEAR(t80 - 30.0, 2.0 * (t40 - 30.0), 1e-9);
}

TEST(AirCooling, FailsOnPowerHungryServers) {
  // The paper's premise: air cooling cannot hold a power-hungry CPU at a
  // tight case limit with realistic inlet air.
  const AirCoolerDesign design;
  const double speed = required_fan_speed(design, 80.0, 35.0, 50.0);
  EXPECT_GT(speed, design.max_speed_frac);  // infeasible
  // The same cooler easily handles a light load at a relaxed limit.
  EXPECT_LE(required_fan_speed(design, 30.0, 25.0, 70.0),
            design.max_speed_frac);
}

TEST(AirCooling, RequiredSpeedMonotoneInLoad) {
  const AirCoolerDesign design;
  double prev = 0.0;
  for (const double q : {20.0, 35.0, 50.0, 65.0}) {
    const double speed = required_fan_speed(design, q, 25.0, 75.0);
    EXPECT_GE(speed, prev);
    prev = speed;
  }
}

// ------------------------------------------------------------- cold plate --

TEST(ColdPlate, MoreFlowCoolsMore) {
  const ColdPlateDesign design;
  const double hot = cold_plate_case_c(cold_plate_at(design, 0.3), 70.0, 30.0);
  const double cold = cold_plate_case_c(cold_plate_at(design, 1.5), 70.0, 30.0);
  EXPECT_GT(hot, cold);
}

TEST(ColdPlate, PumpPowerCubicInFlow) {
  const ColdPlateDesign design;
  const ColdPlateState half = cold_plate_at(design, 0.5);
  const ColdPlateState full = cold_plate_at(design, 1.0);
  EXPECT_NEAR(full.pump_power_w / half.pump_power_w, 8.0, 1e-9);
}

TEST(ColdPlate, NeedsFarMoreWaterThanThermosyphon) {
  // §II-A: two-phase cooling is motivated by "reduced mass flow-rates".
  const ColdPlateDesign design;
  const double frac = required_flow(design, 79.0, 30.0, 48.0);
  EXPECT_LE(frac, design.max_flow_frac);
  // At least several times the thermosyphon's 7 kg/h.
  EXPECT_GT(design.nominal_flow_kg_h * frac, 3.0 * 7.0);
}

TEST(ColdPlate, HandlesWorstCaseLoad) {
  // Single-phase DCLC works, it is just more expensive to run.
  const ColdPlateDesign design;
  EXPECT_LE(required_flow(design, 79.0, 30.0, 85.0), design.max_flow_frac);
}

// -------------------------------------------------------------------- PUE --

TEST(Pue, DefinitionAndBounds) {
  const FacilityPower p{100.0, 20.0, 10.0, 3.0};
  EXPECT_NEAR(pue(p), 1.33, 1e-9);
  EXPECT_GE(pue(p), 1.0);
  EXPECT_THROW((void)pue(FacilityPower{0.0, 1.0, 0.0, 0.0}),
               util::PreconditionError);
}

TEST(Pue, ThermosyphonFacilityNearPaperClaim) {
  // The paper cites a PUE of 1.05 for the thermosyphon system of [8]:
  // warm-water cooling makes the chiller almost free.
  const ChillerModel chiller;
  const double it = 70.0;
  FacilityPower p;
  p.it_w = it;
  p.chiller_w = chiller.electrical_power_w(it, 30.0);
  p.pumps_fans_w = 0.5;  // rack water circulation only, no fans
  p.distribution_w = distribution_loss_w(it);
  EXPECT_LT(pue(p), 1.12);
  EXPECT_GT(pue(p), 1.0);
}

TEST(Pue, AirCooledFacilityMuchWorse) {
  // Conventional air cooling: cold-air production at ~18 °C plus fans.
  const ChillerModel chiller;
  const double it = 70.0;
  FacilityPower air;
  air.it_w = it;
  air.chiller_w = chiller.electrical_power_w(it, 18.0);
  air.pumps_fans_w = air_cooler_at(AirCoolerDesign{}, 1.2).fan_power_w +
                     8.0;  // CRAC blowers' share
  air.distribution_w = distribution_loss_w(it);

  FacilityPower syphon;
  syphon.it_w = it;
  syphon.chiller_w = chiller.electrical_power_w(it, 30.0);
  syphon.pumps_fans_w = 0.5;
  syphon.distribution_w = distribution_loss_w(it);

  EXPECT_GT(pue(air), pue(syphon) + 0.1);
  EXPECT_GT(cooling_fraction(air), cooling_fraction(syphon));
}

}  // namespace
}  // namespace tpcool::cooling
