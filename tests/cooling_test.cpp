// Tests for tpcool::cooling — Eq. (1) accounting, the chiller COP model,
// coolant-loop mixing, and the shared rack water loop.

#include <gtest/gtest.h>

#include "tpcool/cooling/chiller.hpp"
#include "tpcool/cooling/coolant_loop.hpp"
#include "tpcool/cooling/rack.hpp"
#include "tpcool/materials/water.hpp"
#include "tpcool/util/error.hpp"

namespace tpcool::cooling {
namespace {

// ------------------------------------------------------------------ Eq(1) --

TEST(Eq1, MatchesMdotCpDeltaT) {
  // P = V̇·ρ·c_w·ΔT ≡ ṁ·c_w·ΔT.
  const double c_w = materials::water_capacity_rate_w_k(7.0, 30.0);
  EXPECT_NEAR(thermal_lift_power_w(7.0, 6.0, 30.0), c_w * 6.0, 1e-9);
}

TEST(Eq1, PaperRatioSixVsEleven) {
  // §VIII-B: ΔT of 6 °C vs 11 °C at the same flow → 45 % reduction.
  const double p6 = thermal_lift_power_w(7.0, 6.0, 30.0);
  const double p11 = thermal_lift_power_w(7.0, 11.0, 30.0);
  EXPECT_NEAR(1.0 - p6 / p11, 0.4545, 0.02);
}

TEST(Eq1, RejectsNegativeInputs) {
  EXPECT_THROW((void)thermal_lift_power_w(-1.0, 5.0, 30.0),
               util::PreconditionError);
  EXPECT_THROW((void)thermal_lift_power_w(7.0, -5.0, 30.0),
               util::PreconditionError);
}

// -------------------------------------------------------------------- COP --

TEST(Chiller, CopDecreasesWithColderSetpoint) {
  const ChillerModel chiller;
  EXPECT_GT(chiller.cop(30.0), chiller.cop(20.0));
  EXPECT_GT(chiller.cop(20.0), chiller.cop(10.0));
}

TEST(Chiller, FreeCoolingAboveAmbient) {
  const ChillerModel chiller;  // ambient 35 °C
  EXPECT_DOUBLE_EQ(chiller.cop(40.0), chiller.max_cop);
}

TEST(Chiller, ElectricalPowerScalesWithLoad) {
  const ChillerModel chiller;
  const double p1 = chiller.electrical_power_w(40.0, 25.0);
  const double p2 = chiller.electrical_power_w(80.0, 25.0);
  EXPECT_NEAR(p2 - chiller.pump_overhead_w,
              2.0 * (p1 - chiller.pump_overhead_w), 1e-9);
}

TEST(Chiller, WarmSetpointNearlyFree) {
  // §VIII-B: "the chiller would need to consume much less power … even
  // close to zero" with warm water. At 30 °C setpoint the electrical power
  // is a small fraction of the heat moved.
  const ChillerModel chiller;
  const double p = chiller.electrical_power_w(60.0, 30.0);
  EXPECT_LT(p, 0.15 * 60.0);
}

TEST(Chiller, RejectsNegativeLoad) {
  EXPECT_THROW((void)ChillerModel{}.electrical_power_w(-1.0, 25.0),
               util::PreconditionError);
}

// ------------------------------------------------------------ coolant loop --

TEST(CoolantLoop, BranchReturnEnergyBalance) {
  const CoolantBranch branch{7.0, 49.0};
  const double c_w = materials::water_capacity_rate_w_k(7.0, 30.0);
  EXPECT_NEAR(branch_return_c(branch, 30.0), 30.0 + 49.0 / c_w, 1e-9);
}

TEST(CoolantLoop, MixedReturnIsFlowWeighted) {
  const CoolantBranch branches[2] = {{7.0, 0.0}, {7.0, 49.0}};
  const double t_hot = branch_return_c(branches[1], 30.0);
  EXPECT_NEAR(mixed_return_c(branches, 2, 30.0), 0.5 * (30.0 + t_hot), 1e-9);
}

TEST(CoolantLoop, TotalFlowSums) {
  const CoolantBranch branches[3] = {{7.0, 0.0}, {10.0, 0.0}, {4.0, 0.0}};
  EXPECT_DOUBLE_EQ(total_flow_kg_h(branches, 3), 21.0);
}

TEST(CoolantLoop, AllZeroFlowThrows) {
  const CoolantBranch branches[1] = {{0.0, 10.0}};
  EXPECT_THROW((void)mixed_return_c(branches, 1, 30.0), util::PreconditionError);
}

// ------------------------------------------------------------------- rack --

TEST(Rack, SupplyIsMinimumOfServerMaxima) {
  // §V: all thermosyphons share one chiller; the rack water temperature is
  // capped by the most demanding server.
  const std::vector<ServerDemand> demands{
      {60.0, 35.0, 7.0}, {70.0, 25.0, 7.0}, {50.0, 30.0, 7.0}};
  const RackCoolingState state = solve_rack_cooling(demands, ChillerModel{});
  EXPECT_DOUBLE_EQ(state.supply_temp_c, 25.0);
  EXPECT_DOUBLE_EQ(state.total_flow_kg_h, 21.0);
  EXPECT_DOUBLE_EQ(state.total_heat_w, 180.0);
  EXPECT_GT(state.return_temp_c, state.supply_temp_c);
}

TEST(Rack, ChillerPowersConsistent) {
  const std::vector<ServerDemand> demands{{60.0, 30.0, 7.0},
                                          {60.0, 30.0, 7.0}};
  const ChillerModel chiller;
  const RackCoolingState state = solve_rack_cooling(demands, chiller);
  // Eq. (1) on the mixed loop equals the total heat (steady state).
  EXPECT_NEAR(state.chiller_lift_power_w, state.total_heat_w, 1.0);
  EXPECT_NEAR(state.chiller_electrical_w,
              chiller.electrical_power_w(120.0, 30.0), 1e-9);
}

TEST(Rack, ColderDemandRaisesElectricalPower) {
  const ChillerModel chiller;
  const RackCoolingState warm =
      solve_rack_cooling({{60.0, 30.0, 7.0}}, chiller);
  const RackCoolingState cold =
      solve_rack_cooling({{60.0, 15.0, 7.0}}, chiller);
  EXPECT_GT(cold.chiller_electrical_w, warm.chiller_electrical_w);
}

TEST(Rack, EmptyRackThrows) {
  EXPECT_THROW((void)solve_rack_cooling({}, ChillerModel{}),
               util::PreconditionError);
}

}  // namespace
}  // namespace tpcool::cooling
