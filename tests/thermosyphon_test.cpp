// Tests for tpcool::thermosyphon — geometry, boiling correlations, channel
// marching, condenser, natural-circulation loop, and the bound Thermosyphon
// model including dry-out behaviour and the filling-ratio optimum.

#include <gtest/gtest.h>

#include <cmath>

#include "tpcool/thermosyphon/boiling.hpp"
#include "tpcool/thermosyphon/channel.hpp"
#include "tpcool/thermosyphon/condenser.hpp"
#include "tpcool/thermosyphon/geometry.hpp"
#include "tpcool/thermosyphon/loop.hpp"
#include "tpcool/thermosyphon/thermosyphon.hpp"
#include "tpcool/util/error.hpp"

namespace tpcool::thermosyphon {
namespace {

using materials::r236fa;

// --------------------------------------------------------------- geometry --

TEST(Geometry, ChannelCountDependsOnOrientation) {
  EvaporatorGeometry g;  // 44 × 42 mm footprint, 1.2 mm pitch
  g.orientation = Orientation::kEastWest;
  const std::size_t ew = g.channel_count();
  g.orientation = Orientation::kNorthSouth;
  const std::size_t ns = g.channel_count();
  EXPECT_EQ(ew, 35u);  // 42 mm transverse / 1.2 mm
  EXPECT_EQ(ns, 36u);  // 44 mm transverse / 1.2 mm
  EXPECT_NE(ew, ns);   // §VI-A: orientation changes the channel count
}

TEST(Geometry, ChannelLengthFollowsFlowDirection) {
  EvaporatorGeometry g;
  g.orientation = Orientation::kEastWest;
  EXPECT_DOUBLE_EQ(g.channel_length_m(), 44.0e-3);
  g.orientation = Orientation::kNorthSouth;
  EXPECT_DOUBLE_EQ(g.channel_length_m(), 42.0e-3);
}

TEST(Geometry, HydraulicDiameter) {
  EvaporatorGeometry g;
  const double expected = 2.0 * 0.8e-3 * 1.5e-3 / (0.8e-3 + 1.5e-3);
  EXPECT_NEAR(g.hydraulic_diameter_m(), expected, 1e-12);
}

// ---------------------------------------------------------------- boiling --

TEST(Boiling, CooperIncreasesWithFlux) {
  const double low = cooper_htc(0.1, 152.0, 5.0e4);
  const double high = cooper_htc(0.1, 152.0, 2.0e5);
  EXPECT_GT(high, low);
  // q^0.67 scaling.
  EXPECT_NEAR(high / low, std::pow(4.0, 0.67), 1e-9);
}

TEST(Boiling, CooperMagnitudeReasonable) {
  // R236fa-class fluid at typical evaporator flux: 5–30 kW/m²K.
  const double h = cooper_htc(r236fa().reduced_pressure(40.0),
                              r236fa().molar_mass_g_mol(), 1.0e5);
  EXPECT_GT(h, 5.0e3);
  EXPECT_LT(h, 3.0e4);
}

TEST(Boiling, CooperRejectsBadInputs) {
  EXPECT_THROW((void)cooper_htc(0.0, 152.0, 1e5), util::PreconditionError);
  EXPECT_THROW((void)cooper_htc(1.0, 152.0, 1e5), util::PreconditionError);
  EXPECT_THROW((void)cooper_htc(0.1, -1.0, 1e5), util::PreconditionError);
}

TEST(Boiling, EnhancementMonotoneInQuality) {
  double prev = convective_enhancement(0.0);
  EXPECT_DOUBLE_EQ(prev, 1.0);
  for (double x = 0.1; x <= 1.0; x += 0.1) {
    const double e = convective_enhancement(x);
    EXPECT_GT(e, prev);
    prev = e;
  }
}

TEST(Boiling, DryoutQualityGrowsWithFillAndFlux) {
  EXPECT_LT(dryout_quality(0.35, 50.0), dryout_quality(0.55, 50.0));
  EXPECT_LT(dryout_quality(0.55, 20.0), dryout_quality(0.55, 300.0));
  EXPECT_GE(dryout_quality(0.05, 0.0), 0.25);
  EXPECT_LE(dryout_quality(1.0, 1e4), 0.95);
}

TEST(Boiling, SuppressionKicksInNearDryout) {
  const double x_dry = 0.5;
  EXPECT_DOUBLE_EQ(near_dryout_suppression(0.1, x_dry), 1.0);
  EXPECT_DOUBLE_EQ(near_dryout_suppression(0.2, x_dry), 1.0);
  EXPECT_LT(near_dryout_suppression(0.4, x_dry), 1.0);
  EXPECT_NEAR(near_dryout_suppression(0.5, x_dry), 0.3, 1e-9);
}

TEST(Boiling, LocalHtcCollapsesPastDryout) {
  const double x_dry = dryout_quality(0.55, 50.0);
  const double wet = local_htc(r236fa(), 40.0, x_dry * 0.5, 1e5, 50.0, 0.55,
                               1.0e-3);
  const double dry = local_htc(r236fa(), 40.0,
                               std::min(x_dry + 0.25, 1.0), 1e5, 50.0, 0.55,
                               1.0e-3);
  EXPECT_GT(wet, 3.0 * dry);
  EXPECT_GE(dry, kVaporHtcW_m2K);
}

TEST(Boiling, SinglePhaseLaminarFloor) {
  const double h = single_phase_liquid_htc(r236fa(), 35.0, 1.0e-3);
  EXPECT_NEAR(h, 4.36 * r236fa().liquid_conductivity_w_mk(35.0) / 1.0e-3,
              1e-9);
}

// ---------------------------------------------------------------- channel --

TEST(Channel, QualityGrowsMonotonically) {
  ChannelConditions cond;
  cond.fluid = &r236fa();
  cond.t_sat_c = 40.0;
  cond.mass_flow_kg_s = 5e-5;
  EvaporatorGeometry geom;
  const std::vector<double> heat(20, 0.2);  // 4 W total
  const ChannelProfile p = march_channel(cond, geom, heat);
  ASSERT_EQ(p.quality.size(), 20u);
  for (std::size_t i = 1; i < p.quality.size(); ++i) {
    EXPECT_GE(p.quality[i], p.quality[i - 1]);
  }
  EXPECT_DOUBLE_EQ(p.absorbed_w, 4.0);
}

TEST(Channel, EnergyBalanceSetsExitQuality) {
  ChannelConditions cond;
  cond.fluid = &r236fa();
  cond.t_sat_c = 40.0;
  cond.mass_flow_kg_s = 1e-4;
  EvaporatorGeometry geom;
  const double q_total = 2.0;
  const std::vector<double> heat(10, q_total / 10.0);
  const ChannelProfile p = march_channel(cond, geom, heat);
  const double expected =
      q_total / (cond.mass_flow_kg_s * r236fa().latent_heat_j_kg(40.0));
  EXPECT_NEAR(p.exit_quality, expected, 1e-9);
}

TEST(Channel, OverloadedChannelDriesOut) {
  ChannelConditions cond;
  cond.fluid = &r236fa();
  cond.t_sat_c = 40.0;
  cond.mass_flow_kg_s = 2e-5;  // starved channel
  EvaporatorGeometry geom;
  const std::vector<double> heat(10, 0.5);  // 5 W >> ṁ·h_fg margin
  const ChannelProfile p = march_channel(cond, geom, heat);
  EXPECT_TRUE(p.dried_out);
  // HTC in the dried tail must be far below the wetted peak.
  EXPECT_GT(*std::max_element(p.htc_w_m2k.begin(), p.htc_w_m2k.end()),
            3.0 * p.htc_w_m2k.back());
}

TEST(Channel, ZeroHeatKeepsLiquid) {
  ChannelConditions cond;
  cond.fluid = &r236fa();
  cond.mass_flow_kg_s = 1e-4;
  EvaporatorGeometry geom;
  const ChannelProfile p = march_channel(cond, geom, std::vector<double>(5, 0.0));
  EXPECT_DOUBLE_EQ(p.exit_quality, 0.0);
  EXPECT_FALSE(p.dried_out);
}

// -------------------------------------------------------------- condenser --

TEST(Condenser, EffectivenessInUnitRange) {
  const CondenserDesign d;
  const double eff = condenser_effectiveness(d, 0.55, 8.1);
  EXPECT_GT(eff, 0.8);  // NTU ≈ 3 at the paper's 7 kg/h
  EXPECT_LT(eff, 1.0);
}

TEST(Condenser, SaturationRisesWithLoad) {
  const CondenserDesign d;
  const double t1 = saturation_temperature_c(d, 0.55, 40.0, 30.0, 8.1);
  const double t2 = saturation_temperature_c(d, 0.55, 80.0, 30.0, 8.1);
  EXPECT_GT(t2, t1);
  EXPECT_GT(t1, 30.0);
}

TEST(Condenser, OverchargeDeratesUa) {
  const CondenserDesign d;
  EXPECT_DOUBLE_EQ(d.effective_ua_w_k(0.55), d.ua_w_k);
  EXPECT_LT(d.effective_ua_w_k(0.85), d.ua_w_k);
  EXPECT_GE(d.effective_ua_w_k(1.0), 0.20 * d.ua_w_k);
  // Flooding raises the required saturation temperature.
  EXPECT_GT(saturation_temperature_c(d, 0.9, 60.0, 30.0, 8.1),
            saturation_temperature_c(d, 0.55, 60.0, 30.0, 8.1));
}

TEST(Condenser, WaterOutletEnergyBalance) {
  // 7 kg/h picking up 49 W: ΔT ≈ 6 °C (the paper's §VIII-B figure).
  const double c_w = materials::water_capacity_rate_w_k(7.0, 30.0);
  EXPECT_NEAR(water_outlet_c(49.0, 30.0, c_w) - 30.0, 6.0, 0.3);
}

// ------------------------------------------------------------------- loop --

TEST(Loop, VoidFractionBounds) {
  EXPECT_DOUBLE_EQ(void_fraction(r236fa(), 40.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(void_fraction(r236fa(), 40.0, 1.0), 1.0);
  const double mid = void_fraction(r236fa(), 40.0, 0.2);
  EXPECT_GT(mid, 0.5);  // vapor occupies most volume even at modest quality
  EXPECT_LT(mid, 1.0);
}

TEST(Loop, RiserDensityDecreasesWithQuality) {
  double prev = riser_density_kg_m3(r236fa(), 40.0, 0.0);
  for (double x = 0.1; x <= 1.0; x += 0.1) {
    const double rho = riser_density_kg_m3(r236fa(), 40.0, x);
    EXPECT_LT(rho, prev);
    prev = rho;
  }
}

TEST(Loop, BalancesDriveAndFriction) {
  const LoopState s = solve_loop(r236fa(), 40.0, 79.0, 0.55);
  EXPECT_GT(s.mass_flow_kg_s, 0.0);
  EXPECT_GT(s.exit_quality, 0.0);
  EXPECT_LT(s.exit_quality, 1.0);
  EXPECT_NEAR(s.driving_pa, s.friction_pa, 1e-3 * s.driving_pa);
}

TEST(Loop, ZeroLoadNoCirculation) {
  const LoopState s = solve_loop(r236fa(), 40.0, 0.0, 0.55);
  EXPECT_DOUBLE_EQ(s.mass_flow_kg_s, 0.0);
}

TEST(Loop, UnderchargeReducesFlow) {
  const LoopState full = solve_loop(r236fa(), 40.0, 60.0, 0.55);
  const LoopState low = solve_loop(r236fa(), 40.0, 60.0, 0.25);
  EXPECT_GT(full.mass_flow_kg_s, low.mass_flow_kg_s);
}

TEST(Loop, RejectsBadArguments) {
  EXPECT_THROW((void)solve_loop(r236fa(), 40.0, -1.0, 0.55),
               util::PreconditionError);
  EXPECT_THROW((void)solve_loop(r236fa(), 40.0, 10.0, 0.0),
               util::PreconditionError);
}

// ------------------------------------------------------------ thermosyphon --

class ThermosyphonTest : public ::testing::Test {
 protected:
  static ThermosyphonDesign design(Orientation o = Orientation::kEastWest,
                                   double fr = 0.55) {
    ThermosyphonDesign d;
    d.evaporator.orientation = o;
    d.refrigerant = &r236fa();
    d.filling_ratio = fr;
    return d;
  }

  static floorplan::GridSpec grid() {
    floorplan::GridSpec g;
    g.dx = 1e-3;
    g.dy = 1e-3;
    g.nx = 45;
    g.ny = 43;
    return g;
  }

  static floorplan::Rect footprint() {
    // 44 × 42 mm footprint matching the default geometry, offset so that
    // the grid's border cells (centres at 0.5 mm) stay outside.
    return {1.0e-3, 1.0e-3, 45.0e-3, 43.0e-3};
  }

  /// Heat map with `watts` spread over a centred square block.
  static util::Grid2D<double> block_heat(double watts, std::size_t half = 8) {
    util::Grid2D<double> heat(45, 43, 0.0);
    const std::size_t cx = 22, cy = 21;
    const std::size_t n = (2 * half) * (2 * half);
    for (std::size_t iy = cy - half; iy < cy + half; ++iy) {
      for (std::size_t ix = cx - half; ix < cx + half; ++ix) {
        heat(ix, iy) = watts / static_cast<double>(n);
      }
    }
    return heat;
  }
};

TEST_F(ThermosyphonTest, EnergyAccountingConsistent) {
  const Thermosyphon ts(design(), grid(), footprint());
  const ThermosyphonState s = ts.solve(block_heat(60.0), {});
  EXPECT_NEAR(s.q_total_w, 60.0, 1e-9);
  double absorbed = 0.0;
  for (const auto& ch : s.channels) absorbed += ch.absorbed_w;
  EXPECT_NEAR(absorbed, 60.0, 1e-9);
  // Water-side balance: ΔT = Q / (ṁ·cp).
  const double c_w = materials::water_capacity_rate_w_k(7.0, 30.0);
  EXPECT_NEAR(s.water_outlet_c - 30.0, 60.0 / c_w, 1e-9);
}

TEST_F(ThermosyphonTest, HtcOnlyInsideFootprint) {
  const Thermosyphon ts(design(), grid(), footprint());
  const ThermosyphonState s = ts.solve(block_heat(40.0), {});
  // Probe the footprint interior and the package corner.
  EXPECT_GT(s.htc_map(22, 21), 1.0e3);
  EXPECT_DOUBLE_EQ(s.htc_map(0, 0), 0.0);
}

TEST_F(ThermosyphonTest, SaturationAboveWaterInlet) {
  const Thermosyphon ts(design(), grid(), footprint());
  const ThermosyphonState s = ts.solve(block_heat(50.0), {});
  EXPECT_GT(s.t_sat_c, 30.0);
  EXPECT_LT(s.t_sat_c, 60.0);
}

TEST_F(ThermosyphonTest, MoreWaterFlowLowersSaturation) {
  const Thermosyphon ts(design(), grid(), footprint());
  const ThermosyphonState slow =
      ts.solve(block_heat(50.0), {.water_flow_kg_h = 4.0});
  const ThermosyphonState fast =
      ts.solve(block_heat(50.0), {.water_flow_kg_h = 20.0});
  EXPECT_GT(slow.t_sat_c, fast.t_sat_c);
}

TEST_F(ThermosyphonTest, ConcentratedHeatDriesOutStarvedChannels) {
  const Thermosyphon ts(design(), grid(), footprint());
  // Same power, concentrated into a narrow band of channels.
  const ThermosyphonState spread = ts.solve(block_heat(60.0, 12), {});
  const ThermosyphonState tight = ts.solve(block_heat(60.0, 3), {});
  int spread_dry = 0, tight_dry = 0;
  double spread_max = 0.0, tight_max = 0.0;
  for (const auto& ch : spread.channels) {
    spread_dry += ch.dried_out;
    spread_max = std::max(spread_max, ch.exit_quality);
  }
  for (const auto& ch : tight.channels) {
    tight_dry += ch.dried_out;
    tight_max = std::max(tight_max, ch.exit_quality);
  }
  EXPECT_GT(tight_max, spread_max);
  EXPECT_GE(tight_dry, spread_dry);
  EXPECT_TRUE(tight.any_dryout);
}

TEST_F(ThermosyphonTest, FillingRatioOptimumNearPaperChoice) {
  // §VI-B: the paper charges at 55 %. Under-charge starves the loop (less
  // circulation, higher exit quality, earlier dry-out margin); over-charge
  // floods the condenser (higher saturation temperature). The nominal
  // charge beats both extremes on the combined figure of merit.
  const auto solve_at = [&](double fr) {
    const Thermosyphon ts(design(Orientation::kEastWest, fr), grid(),
                          footprint());
    return ts.solve(block_heat(70.0, 6), {});
  };
  const auto max_exit = [](const ThermosyphonState& s) {
    double x = 0.0;
    for (const auto& ch : s.channels) x = std::max(x, ch.exit_quality);
    return x;
  };
  const ThermosyphonState nominal = solve_at(0.55);
  const ThermosyphonState under = solve_at(0.25);
  const ThermosyphonState over = solve_at(0.95);

  // Under-charge: less circulation, deeper into dry-out.
  EXPECT_LT(under.refrigerant_flow_kg_s, nominal.refrigerant_flow_kg_s);
  EXPECT_GT(under.loop_exit_quality, nominal.loop_exit_quality);
  // Over-charge: flooded condenser raises the whole loop temperature.
  EXPECT_GT(over.t_sat_c, nominal.t_sat_c + 1.0);

  // Combined °C-equivalent score: T_sat plus a dry-out-margin penalty.
  const auto score = [&](const ThermosyphonState& s) {
    return s.t_sat_c + 10.0 * s.loop_exit_quality + 2.0 * max_exit(s);
  };
  EXPECT_LT(score(nominal), score(under));
  EXPECT_LT(score(nominal), score(over));
}

TEST_F(ThermosyphonTest, HeatOutsideFootprintRejected) {
  const Thermosyphon ts(design(), grid(), footprint());
  util::Grid2D<double> heat(45, 43, 0.0);
  heat(0, 0) = 5.0;  // package corner, outside the evaporator
  EXPECT_THROW(ts.solve(heat, {}), util::PreconditionError);
}

TEST_F(ThermosyphonTest, MismatchedFootprintRejected) {
  ThermosyphonDesign d = design();
  d.evaporator.footprint_width_m = 30e-3;  // smaller than the stack's rect
  EXPECT_THROW(Thermosyphon(d, grid(), footprint()), util::PreconditionError);
}

TEST_F(ThermosyphonTest, ZeroLoadGivesStagnantPoolHtc) {
  const Thermosyphon ts(design(), grid(), footprint());
  const ThermosyphonState s = ts.solve(util::Grid2D<double>(45, 43, 0.0), {});
  EXPECT_DOUBLE_EQ(s.q_total_w, 0.0);
  EXPECT_GT(s.htc_map(22, 21), 100.0);   // liquid-pool convection floor
  EXPECT_LT(s.htc_map(22, 21), 2000.0);
}

}  // namespace
}  // namespace tpcool::thermosyphon
