// Tests for tpcool::core::ServerModel — the coupled thermosyphon + thermal
// solve: energy consistency, boundary sanity, monotone responses.
// Coarse grids keep the suite fast; the physics is resolution-stable.

#include <gtest/gtest.h>

#include "tpcool/core/pipelines.hpp"
#include "tpcool/core/server.hpp"
#include "tpcool/util/error.hpp"

namespace tpcool::core {
namespace {

ServerConfig coarse_config() {
  ServerConfig config;
  config.stack.cell_size_m = 1.5e-3;
  config.design.evaporator =
      default_evaporator_geometry(thermosyphon::Orientation::kEastWest);
  config.design.filling_ratio = 0.55;
  return config;
}

class ServerTest : public ::testing::Test {
 protected:
  ServerModel server_{coarse_config()};
  const workload::BenchmarkProfile& bench_ = workload::find_benchmark("x264");
};

TEST_F(ServerTest, SimulationProducesConsistentResult) {
  const workload::Configuration config{4, 2, 3.2};
  const SimulationResult sim = server_.simulate(
      bench_, config, {5, 4, 7, 2}, power::CState::kC1);

  // Power bookkeeping.
  EXPECT_NEAR(sim.total_power_w, sim.power.total_w(), 1e-9);
  EXPECT_GT(sim.total_power_w, 30.0);
  EXPECT_LT(sim.total_power_w, 90.0);

  // Thermal sanity: die ≥ package ≥ saturation ≥ water inlet.
  EXPECT_GT(sim.die.max_c, sim.package.max_c);
  EXPECT_GT(sim.package.max_c, sim.syphon.t_sat_c);
  EXPECT_GT(sim.syphon.t_sat_c,
            server_.operating_point().water_inlet_c);

  // Almost all heat leaves through the evaporator (weak board path).
  EXPECT_NEAR(sim.syphon.q_total_w, sim.total_power_w,
              0.15 * sim.total_power_w);
  EXPECT_EQ(sim.active_cores, (std::vector<int>{5, 4, 7, 2}));
}

TEST_F(ServerTest, DieAmplifiesPackageProfile) {
  // The Fig. 2 observation: hot spots and gradients on the die are a
  // scaled-up version of those on the package.
  const workload::Configuration config{6, 2, 3.2};
  const SimulationResult sim = server_.simulate(
      bench_, config, {5, 6, 7, 1, 2, 3}, power::CState::kPoll);
  EXPECT_GT(sim.die.max_c, sim.package.max_c + 5.0);
  EXPECT_GT(sim.die.grad_max_c_per_mm, 2.0 * sim.package.grad_max_c_per_mm);
}

TEST_F(ServerTest, MorePowerMeansHotter) {
  const SimulationResult low = server_.simulate(
      bench_, {4, 2, 2.6}, {5, 4, 7, 2}, power::CState::kC1E);
  const SimulationResult high = server_.simulate(
      bench_, {4, 2, 3.2}, {5, 4, 7, 2}, power::CState::kC1E);
  EXPECT_GT(high.total_power_w, low.total_power_w);
  EXPECT_GT(high.die.max_c, low.die.max_c);
  EXPECT_GT(high.tcase_c, low.tcase_c);
}

TEST_F(ServerTest, ColderWaterCoolsEverything) {
  const workload::Configuration config{8, 2, 3.2};
  const std::vector<int> all{1, 2, 3, 4, 5, 6, 7, 8};
  server_.set_operating_point({.water_flow_kg_h = 7.0, .water_inlet_c = 30.0});
  const SimulationResult warm =
      server_.simulate(bench_, config, all, power::CState::kPoll);
  server_.set_operating_point({.water_flow_kg_h = 7.0, .water_inlet_c = 20.0});
  const SimulationResult cold =
      server_.simulate(bench_, config, all, power::CState::kPoll);
  EXPECT_GT(warm.die.max_c, cold.die.max_c);
  EXPECT_GT(warm.tcase_c, cold.tcase_c);
  EXPECT_NEAR(warm.die.max_c - cold.die.max_c, 10.0, 4.0);
}

TEST_F(ServerTest, HigherFlowNeverHurts) {
  const workload::Configuration config{8, 2, 3.2};
  const std::vector<int> all{1, 2, 3, 4, 5, 6, 7, 8};
  server_.set_operating_point({.water_flow_kg_h = 4.0, .water_inlet_c = 30.0});
  const SimulationResult slow =
      server_.simulate(bench_, config, all, power::CState::kPoll);
  server_.set_operating_point({.water_flow_kg_h = 20.0, .water_inlet_c = 30.0});
  const SimulationResult fast =
      server_.simulate(bench_, config, all, power::CState::kPoll);
  EXPECT_GE(slow.die.max_c, fast.die.max_c - 0.1);
  EXPECT_GT(slow.syphon.t_sat_c, fast.syphon.t_sat_c);
}

TEST_F(ServerTest, WorstCaseStaysUnderTcaseLimit) {
  // §VI: the design must hold TCASE ≤ 85 °C for the worst-case workload at
  // the selected operating point (7 kg/h @ 30 °C).
  const auto& worst = workload::worst_case_benchmark();
  const SimulationResult sim = server_.simulate(
      worst, {8, 2, 3.2}, {1, 2, 3, 4, 5, 6, 7, 8}, power::CState::kPoll);
  EXPECT_LE(sim.tcase_c, 85.0);
  EXPECT_LE(sim.die.max_c, 100.0);
}

TEST_F(ServerTest, MappingSizeMismatchThrows) {
  EXPECT_THROW(server_.simulate(bench_, {4, 2, 3.2}, {1, 2},
                                power::CState::kPoll),
               util::PreconditionError);
}

TEST_F(ServerTest, ExplicitPowersSimulation) {
  floorplan::UnitPowers powers{{"core1", 8.0}, {"core5", 8.0}, {"llc", 2.0},
                               {"memctrl", 5.0}, {"uncore_io", 6.0}};
  const SimulationResult sim = server_.simulate_powers(powers);
  EXPECT_NEAR(sim.total_power_w, 29.0, 1e-9);
  EXPECT_GT(sim.die.max_c, sim.syphon.t_sat_c);
}

TEST(ServerFactories, ProposedAndSoaDiffer) {
  const ServerConfig proposed = server_config_for(Approach::kProposed, 1.5e-3);
  const ServerConfig soa = server_config_for(Approach::kSoaBalancing, 1.5e-3);
  EXPECT_EQ(proposed.design.evaporator.orientation,
            thermosyphon::Orientation::kEastWest);
  EXPECT_EQ(soa.design.evaporator.orientation,
            thermosyphon::Orientation::kNorthSouth);
  EXPECT_GT(proposed.design.filling_ratio, soa.design.filling_ratio);
}

TEST(ServerConfigValidation, RejectsBadCouplingIterations) {
  ServerConfig config = coarse_config();
  config.coupling_iterations = 0;
  EXPECT_THROW(ServerModel{config}, util::PreconditionError);
}

// Grid-resolution stability: metrics must not change wildly with the cell
// size (a property check on the finite-volume discretization).
TEST(ServerResolution, MetricsStableAcrossGrids) {
  const auto run = [](double cell) {
    ServerConfig config = coarse_config();
    config.stack.cell_size_m = cell;
    ServerModel server(std::move(config));
    const auto& bench = workload::find_benchmark("x264");
    return server.simulate(bench, {8, 2, 3.2}, {1, 2, 3, 4, 5, 6, 7, 8},
                           power::CState::kPoll);
  };
  const SimulationResult coarse = run(2.0e-3);
  const SimulationResult fine = run(1.0e-3);
  EXPECT_NEAR(coarse.die.max_c, fine.die.max_c, 6.0);
  EXPECT_NEAR(coarse.tcase_c, fine.tcase_c, 3.0);
  EXPECT_NEAR(coarse.syphon.t_sat_c, fine.syphon.t_sat_c, 0.5);
}

}  // namespace
}  // namespace tpcool::core
