// Property sweeps of the thermal finite-volume solver across grid
// resolutions and boundary strengths: conservation, maximum-principle and
// monotonicity invariants must hold for every discretization.

#include <gtest/gtest.h>

#include <tuple>

#include "tpcool/thermal/grid.hpp"
#include "tpcool/thermal/metrics.hpp"
#include "tpcool/thermal/stack.hpp"

namespace tpcool::thermal {
namespace {

using Params = std::tuple<double /*cell size m*/, double /*htc W/m²K*/>;

class ThermalSweep : public ::testing::TestWithParam<Params> {
 protected:
  ThermalModel make_model() const {
    PackageStackConfig config;
    config.cell_size_m = std::get<0>(GetParam());
    ThermalModel model(make_package_stack(config));
    model.set_top_boundary_uniform(std::get<1>(GetParam()), 35.0);
    model.set_bottom_boundary(10.0, 40.0);
    return model;
  }

  static util::Grid2D<double> core_like_power(const ThermalModel& model,
                                              double watts) {
    util::Grid2D<double> power(model.nx(), model.ny(), 0.0);
    // A core-sized patch west of centre, inside the die region.
    const std::size_t cx = model.nx() / 3;
    const std::size_t cy = model.ny() / 2;
    for (std::size_t iy = cy - 1; iy <= cy + 1; ++iy) {
      for (std::size_t ix = cx - 2; ix <= cx + 2; ++ix) {
        power(ix, iy) = watts / 15.0;
      }
    }
    return power;
  }
};

std::string sweep_name(const ::testing::TestParamInfo<Params>& info) {
  const int um = static_cast<int>(std::get<0>(info.param) * 1e6);
  const int h = static_cast<int>(std::get<1>(info.param));
  return "cell" + std::to_string(um) + "um_h" + std::to_string(h);
}

INSTANTIATE_TEST_SUITE_P(
    Discretizations, ThermalSweep,
    ::testing::Combine(::testing::Values(2.5e-3, 1.5e-3, 1.0e-3),
                       ::testing::Values(3000.0, 12000.0, 30000.0)),
    sweep_name);

TEST_P(ThermalSweep, EnergyConservedThroughBothBoundaries) {
  ThermalModel model = make_model();
  model.set_bottom_boundary(0.0, 0.0);  // isolate the top path
  model.set_power_map(core_like_power(model, 50.0));
  const auto t = model.solve_steady();
  EXPECT_NEAR(model.top_heat_flow_w(t), 50.0, 0.05);
}

TEST_P(ThermalSweep, MaximumPrinciple) {
  // With sources only on the die layer, no cell may be colder than the
  // coldest boundary fluid nor hotter than the die maximum.
  ThermalModel model = make_model();
  model.set_power_map(core_like_power(model, 60.0));
  const auto t = model.solve_steady();
  const auto die = model.layer_field(t, model.stack().die_layer);
  const double die_max = util::grid_max(die);
  for (const double v : t) {
    EXPECT_GE(v, 35.0 - 1e-6);       // coldest fluid (top boundary)
    EXPECT_LE(v, die_max + 1e-6);    // hottest point is at a source
  }
}

TEST_P(ThermalSweep, SuperpositionHolds) {
  // The operator is linear: T(P1+P2) − T(0) = [T(P1)−T(0)] + [T(P2)−T(0)].
  ThermalModel model = make_model();
  const auto zero = [&] {
    model.set_power_map(util::Grid2D<double>(model.nx(), model.ny(), 0.0));
    return model.solve_steady();
  }();

  util::Grid2D<double> p1 = core_like_power(model, 30.0);
  util::Grid2D<double> p2(model.nx(), model.ny(), 0.0);
  p2(2 * model.nx() / 3, model.ny() / 2) = 20.0;

  model.set_power_map(p1);
  const auto t1 = model.solve_steady();
  model.set_power_map(p2);
  const auto t2 = model.solve_steady();

  util::Grid2D<double> sum(model.nx(), model.ny(), 0.0);
  for (std::size_t i = 0; i < sum.size(); ++i) {
    sum.data()[i] = p1.data()[i] + p2.data()[i];
  }
  model.set_power_map(sum);
  const auto t12 = model.solve_steady();

  for (std::size_t i = 0; i < t12.size(); i += 97) {  // sampled check
    EXPECT_NEAR(t12[i] - zero[i], (t1[i] - zero[i]) + (t2[i] - zero[i]),
                2e-4);
  }
}

TEST_P(ThermalSweep, StrongerCoolingNeverHeatsAnyCell) {
  ThermalModel model = make_model();
  model.set_power_map(core_like_power(model, 60.0));
  const auto base = model.solve_steady();
  model.set_top_boundary_uniform(std::get<1>(GetParam()) * 2.0, 35.0);
  const auto cooled = model.solve_steady();
  for (std::size_t i = 0; i < base.size(); i += 31) {
    EXPECT_LE(cooled[i], base[i] + 1e-6);
  }
}

TEST_P(ThermalSweep, MetricsConsistentWithField) {
  ThermalModel model = make_model();
  model.set_power_map(core_like_power(model, 60.0));
  const auto t = model.solve_steady();
  const auto die = model.layer_field(t, model.stack().die_layer);
  const ThermalMetrics m = compute_metrics(die, model.stack().grid,
                                           model.stack().die_region);
  EXPECT_GE(m.max_c, m.avg_c);
  EXPECT_GT(m.grad_max_c_per_mm, 0.0);
  EXPECT_GE(m.hotspot_cells, 1u);
  EXPECT_LE(m.hotspot_cells, m.cell_count);
}

}  // namespace
}  // namespace tpcool::thermal
