// Tests for tpcool::mapping — the proposed policy and the three baselines
// (placement invariants, Fig. 6 scenario reproduction), plus configuration
// selection (Algorithm 1 and Pack & Cap).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "tpcool/floorplan/xeon_e5.hpp"
#include "tpcool/mapping/balancing.hpp"
#include "tpcool/mapping/clustered.hpp"
#include "tpcool/mapping/config_select.hpp"
#include "tpcool/mapping/inlet_first.hpp"
#include "tpcool/mapping/proposed.hpp"
#include "tpcool/power/package_power.hpp"
#include "tpcool/util/error.hpp"
#include "tpcool/workload/profiler.hpp"

namespace tpcool::mapping {
namespace {

class MappingTest : public ::testing::Test {
 protected:
  MappingContext context(int cores, power::CState idle,
                         thermosyphon::Orientation orientation =
                             thermosyphon::Orientation::kEastWest) const {
    MappingContext c;
    c.floorplan = &fp_;
    c.orientation = orientation;
    c.idle_state = idle;
    c.cores_needed = cores;
    return c;
  }

  /// Number of active cores on each core-grid row.
  std::vector<int> row_counts(const std::vector<int>& cores) const {
    std::vector<int> counts(4, 0);
    for (const int id : cores) ++counts[fp_.core(id).row];
    return counts;
  }

  floorplan::Floorplan fp_ = floorplan::make_xeon_e5_floorplan();
};

// ----------------------------------------------------- generic invariants --

class AllPolicies
    : public MappingTest,
      public ::testing::WithParamInterface<int> {};

TEST_P(AllPolicies, DistinctValidCoreIdsAtEveryCount) {
  const ProposedPolicy proposed;
  const BalancingPolicy balancing;
  const InletFirstPolicy inlet;
  const ClusteredPolicy clustered;
  const int n = GetParam();
  for (const MappingPolicy* policy :
       std::initializer_list<const MappingPolicy*>{&proposed, &balancing,
                                                   &inlet, &clustered}) {
    for (const power::CState idle : {power::CState::kPoll, power::CState::kC1}) {
      const std::vector<int> cores = policy->select_cores(context(n, idle));
      EXPECT_EQ(cores.size(), static_cast<std::size_t>(n)) << policy->name();
      std::set<int> unique(cores.begin(), cores.end());
      EXPECT_EQ(unique.size(), cores.size()) << policy->name();
      for (const int id : cores) {
        EXPECT_GE(id, 1) << policy->name();
        EXPECT_LE(id, 8) << policy->name();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(CoreCounts, AllPolicies, ::testing::Range(1, 9));

TEST_F(MappingTest, PoliciesAreDeterministic) {
  const ProposedPolicy policy;
  const auto a = policy.select_cores(context(5, power::CState::kC1));
  const auto b = policy.select_cores(context(5, power::CState::kC1));
  EXPECT_EQ(a, b);
}

TEST_F(MappingTest, RejectsBadCoreCounts) {
  const ProposedPolicy policy;
  EXPECT_THROW(policy.select_cores(context(0, power::CState::kPoll)),
               util::PreconditionError);
  EXPECT_THROW(policy.select_cores(context(9, power::CState::kPoll)),
               util::PreconditionError);
}

// ----------------------------------------------------------- proposed map --

TEST_F(MappingTest, ProposedDeepSleepLimitsCoresPerChannelRow) {
  // §VII: with deep idle states, at most one active core per horizontal
  // (channel) line while cores are available.
  const ProposedPolicy policy;
  for (int n = 1; n <= 4; ++n) {
    const auto cores = policy.select_cores(context(n, power::CState::kC1));
    for (const int count : row_counts(cores)) EXPECT_LE(count, 1) << n;
  }
  // Beyond 4 cores the rows must fill as evenly as possible.
  const auto six = policy.select_cores(context(6, power::CState::kC1));
  for (const int count : row_counts(six)) EXPECT_LE(count, 2);
}

TEST_F(MappingTest, ProposedDeepSleepIsScenario1) {
  const ProposedPolicy policy;
  const auto cores = policy.select_cores(context(4, power::CState::kC1));
  const std::set<int> got(cores.begin(), cores.end());
  EXPECT_EQ(got, std::set<int>({5, 4, 7, 2}));
}

TEST_F(MappingTest, ProposedPollIsCornersScenario2) {
  const ProposedPolicy policy;
  const auto cores = policy.select_cores(context(4, power::CState::kPoll));
  const std::set<int> got(cores.begin(), cores.end());
  EXPECT_EQ(got, std::set<int>({5, 4, 1, 8}));
}

TEST_F(MappingTest, ProposedAdaptsToCState) {
  // The same request maps differently depending on the idle state — the
  // core of the paper's contribution.
  const ProposedPolicy policy;
  const auto poll = policy.select_cores(context(4, power::CState::kPoll));
  const auto c1 = policy.select_cores(context(4, power::CState::kC1));
  EXPECT_NE(std::set<int>(poll.begin(), poll.end()),
            std::set<int>(c1.begin(), c1.end()));
}

// ---------------------------------------------------------------- baselines --

TEST_F(MappingTest, BalancingIgnoresCState) {
  const BalancingPolicy policy;
  const auto poll = policy.select_cores(context(4, power::CState::kPoll));
  const auto c1 = policy.select_cores(context(4, power::CState::kC1));
  EXPECT_EQ(poll, c1);
  const std::set<int> got(poll.begin(), poll.end());
  EXPECT_EQ(got, std::set<int>({5, 4, 1, 8}));  // the four corners
}

TEST_F(MappingTest, InletFirstFollowsOrientation) {
  const InletFirstPolicy policy;
  // East-west design: the west column (cores 5..8) is closest to the inlet.
  const auto ew = policy.select_cores(
      context(4, power::CState::kPoll, thermosyphon::Orientation::kEastWest));
  EXPECT_EQ(std::set<int>(ew.begin(), ew.end()), std::set<int>({5, 6, 7, 8}));
  // North-south design: the top rows are closest to the (north) inlet.
  const auto ns = policy.select_cores(context(
      4, power::CState::kPoll, thermosyphon::Orientation::kNorthSouth));
  EXPECT_EQ(std::set<int>(ns.begin(), ns.end()), std::set<int>({5, 1, 6, 2}));
}

TEST_F(MappingTest, ClusteredIsScenario3) {
  const ClusteredPolicy policy;
  const auto cores = policy.select_cores(context(4, power::CState::kPoll));
  EXPECT_EQ(std::set<int>(cores.begin(), cores.end()),
            std::set<int>({5, 1, 6, 2}));
}

// --------------------------------------------------------- config selection --

class SelectTest : public ::testing::Test {
 protected:
  SelectTest()
      : fp_(floorplan::make_xeon_e5_floorplan()),
        model_(fp_),
        profiler_(model_) {}

  floorplan::Floorplan fp_;
  power::PackagePowerModel model_;
  workload::Profiler profiler_;
};

TEST_F(SelectTest, Algorithm1PicksMinimumPowerMeetingQos) {
  const auto& bench = workload::find_benchmark("ferret");
  const auto profile = profiler_.profile(bench, power::CState::kC1E);
  const workload::QoSRequirement qos{2.0};
  const workload::ConfigPoint chosen = algorithm1_select(profile, qos);
  EXPECT_TRUE(qos.satisfied_by(chosen.norm_time));
  for (const auto& p : profile) {
    if (qos.satisfied_by(p.norm_time)) {
      EXPECT_GE(p.power_w, chosen.power_w - 1e-12);
    }
  }
}

TEST_F(SelectTest, Algorithm1QosOneRequiresBaseline) {
  const auto& bench = workload::find_benchmark("swaptions");
  const auto profile = profiler_.profile(bench, power::CState::kPoll);
  const workload::ConfigPoint chosen =
      algorithm1_select(profile, workload::QoSRequirement{1.0});
  EXPECT_EQ(chosen.config, workload::baseline_configuration());
}

TEST_F(SelectTest, RelaxedQosNeverRaisesPower) {
  const auto& bench = workload::find_benchmark("x264");
  const auto profile = profiler_.profile(bench, power::CState::kC1E);
  double prev = 1e9;
  for (const auto& qos : workload::qos_levels()) {
    const double p = algorithm1_select(profile, qos).power_w;
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
  }
}

TEST_F(SelectTest, PackCapPacksOntoFewestCores) {
  const auto& bench = workload::find_benchmark("x264");
  const auto profile = profiler_.profile(bench, power::CState::kPoll);
  const workload::QoSRequirement qos{2.0};
  const workload::ConfigPoint packed = packcap_select(profile, qos);
  EXPECT_TRUE(qos.satisfied_by(packed.norm_time));
  for (const auto& p : profile) {
    if (qos.satisfied_by(p.norm_time) && p.power_w <= 85.0) {
      EXPECT_GE(p.config.cores, packed.config.cores);
    }
  }
}

TEST_F(SelectTest, PackCapBurnsAtLeastAsMuchPowerAsAlgorithm1) {
  // The state-of-the-art selector trades power for packing — the basis of
  // the paper's §VIII-B cooling-power comparison.
  for (const auto& bench : workload::parsec_benchmarks()) {
    const auto profile = profiler_.profile(bench, power::CState::kPoll);
    for (const auto& qos : workload::qos_levels()) {
      EXPECT_GE(packcap_select(profile, qos).power_w,
                algorithm1_select(profile, qos).power_w - 1e-12)
          << bench.name << " at " << qos.factor;
    }
  }
}

TEST_F(SelectTest, PackCapRespectsPowerCap) {
  const auto& bench = workload::find_benchmark("x264");
  const auto profile = profiler_.profile(bench, power::CState::kPoll);
  const workload::ConfigPoint p =
      packcap_select(profile, workload::QoSRequirement{3.0}, 50.0);
  EXPECT_LE(p.power_w, 50.0);
}

TEST_F(SelectTest, ImpossibleQosThrows) {
  const auto& bench = workload::find_benchmark("canneal");
  const auto profile = profiler_.profile(bench, power::CState::kPoll);
  EXPECT_THROW((void)algorithm1_select(profile, workload::QoSRequirement{0.5}),
               util::PreconditionError);
  EXPECT_THROW((void)packcap_select(profile, workload::QoSRequirement{2.0}, 10.0),
               util::PreconditionError);
}

}  // namespace
}  // namespace tpcool::mapping
