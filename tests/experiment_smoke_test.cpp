// CI smoke coverage for the paper pipelines at deliberately coarse
// resolution (1.5 mm grid, 2 benchmarks). The full-fidelity orderings are
// asserted by paper_results_test.cpp (label: slow); this suite keeps the
// same qualitative claims under `ctest -L fast` in seconds.

#include <gtest/gtest.h>

#include "tpcool/core/experiment.hpp"

namespace tpcool::core {
namespace {

ExperimentOptions smoke_options() {
  ExperimentOptions options;
  options.cell_size_m = 1.5e-3;
  options.max_benchmarks = 2;
  return options;
}

// ------------------------------------------------------------------ Fig. 2 --

TEST(SmokeFig2, DieHotterAndSteeperThanPackage) {
  const Fig2Result r = run_fig2_motivation(smoke_options());
  // The die hot spot exceeds the package hot spot and the die gradient is
  // the steeper one — the motivation for die-level modelling survives even
  // a 2x-coarser grid.
  EXPECT_GT(r.die.max_c, r.package.max_c);
  EXPECT_GT(r.die.avg_c, r.package.avg_c);
  EXPECT_GT(r.die.grad_max_c_per_mm, r.package.grad_max_c_per_mm);
  // Fields cover the same grid and carry plausible temperatures.
  EXPECT_TRUE(r.die_field_c.same_shape(r.package_field_c));
  EXPECT_GT(r.die.max_c, 30.0);
  EXPECT_LT(r.die.max_c, 150.0);
}

// ------------------------------------------------------------------ Fig. 5 --

TEST(SmokeFig5, BothOrientationsSolveAndEastWestWins) {
  const auto rows = run_fig5_orientation(smoke_options());
  ASSERT_EQ(rows.size(), 2u);
  ASSERT_EQ(rows[0].orientation, thermosyphon::Orientation::kEastWest);
  ASSERT_EQ(rows[1].orientation, thermosyphon::Orientation::kNorthSouth);
  // Design 1 (east-west) keeps the cooler die, as in the paper.
  EXPECT_LT(rows[0].die.max_c, rows[1].die.max_c);
  for (const Fig5Row& row : rows) {
    EXPECT_GT(row.die.max_c, row.package.max_c);
  }
}

// ---------------------------------------------------------------- Table II --

TEST(SmokeTable2, ProposedNeverWorseThanSoa) {
  const auto rows = run_table2(smoke_options());
  ASSERT_EQ(rows.size(), 9u);  // 3 approaches x 3 QoS factors.
  const auto row = [&rows](Approach approach, double qos) -> const Table2Row& {
    for (const Table2Row& r : rows) {
      if (r.approach == approach && r.qos_factor == qos) return r;
    }
    ADD_FAILURE() << "missing Table II row";
    return rows.front();
  };
  for (const double qos : {1.0, 2.0, 3.0}) {
    const Table2Row& p = row(Approach::kProposed, qos);
    // Proposed <= both SoA baselines on the die hot spot (small epsilon:
    // at 1x all approaches run the identical full configuration and only
    // the design differs, which coarse grids can blur).
    EXPECT_LE(p.die_max_c, row(Approach::kSoaBalancing, qos).die_max_c + 0.5)
        << qos;
    EXPECT_LE(p.die_max_c, row(Approach::kSoaInletFirst, qos).die_max_c + 0.5)
        << qos;
  }
  // Relaxing QoS must not heat the proposed system.
  EXPECT_GE(row(Approach::kProposed, 1.0).die_max_c,
            row(Approach::kProposed, 3.0).die_max_c - 0.5);
}

}  // namespace
}  // namespace tpcool::core
