// Tests for the exhaustive oracle mapping policy, including the key
// verification result: the proposed heuristic lands within a small margin
// of the thermally optimal placement.

#include <gtest/gtest.h>

#include <set>

#include "tpcool/core/parallel.hpp"
#include "tpcool/core/pipelines.hpp"
#include "tpcool/core/solve_cache.hpp"
#include "tpcool/mapping/exhaustive.hpp"
#include "tpcool/mapping/proposed.hpp"
#include "tpcool/util/error.hpp"

namespace tpcool::mapping {
namespace {

class OracleTest : public ::testing::Test {
 protected:
  floorplan::Floorplan fp_ = floorplan::make_xeon_e5_floorplan();
};

TEST_F(OracleTest, SubsetEnumerationCounts) {
  EXPECT_EQ(core_subsets(fp_, 1).size(), 8u);
  EXPECT_EQ(core_subsets(fp_, 2).size(), 28u);
  EXPECT_EQ(core_subsets(fp_, 4).size(), 70u);
  EXPECT_EQ(core_subsets(fp_, 8).size(), 1u);
  EXPECT_THROW(core_subsets(fp_, 0), util::PreconditionError);
  EXPECT_THROW(core_subsets(fp_, 9), util::PreconditionError);
}

TEST_F(OracleTest, SubsetsAreDistinctAndValid) {
  const auto subsets = core_subsets(fp_, 3);
  std::set<std::vector<int>> unique(subsets.begin(), subsets.end());
  EXPECT_EQ(unique.size(), subsets.size());
  for (const auto& subset : subsets) {
    EXPECT_EQ(subset.size(), 3u);
    for (const int id : subset) {
      EXPECT_GE(id, 1);
      EXPECT_LE(id, 8);
    }
  }
}

TEST_F(OracleTest, PicksTheCheapestSubset) {
  // Synthetic cost: prefer low core-id sums; the oracle must find {1,2}.
  ExhaustivePolicy oracle([](const std::vector<int>& cores) {
    double cost = 0.0;
    for (const int id : cores) cost += id;
    return cost;
  });
  MappingContext context;
  context.floorplan = &fp_;
  context.cores_needed = 2;
  const std::vector<int> best = oracle.select_cores(context);
  EXPECT_EQ(std::set<int>(best.begin(), best.end()), std::set<int>({1, 2}));
  EXPECT_DOUBLE_EQ(oracle.best_cost(), 3.0);
  EXPECT_EQ(oracle.evaluations(), 28u);
}

TEST_F(OracleTest, NullEvaluatorRejected) {
  EXPECT_THROW(ExhaustivePolicy(PlacementEvaluator{}),
               util::PreconditionError);
}

TEST_F(OracleTest, ProposedHeuristicNearThermalOptimum) {
  // The headline verification: at 4 active cores with deep idle states, the
  // proposed one-core-per-channel-row heuristic is within 1.5 °C of the
  // exhaustive optimum found by 70 coupled simulations. The 70 subsets fan
  // out over the thread pool through the shared solve cache
  // (core::evaluate_placements_parallel).
  constexpr double kCell = 2.0e-3;
  core::ApproachPipeline pipeline(core::Approach::kProposed, kCell);
  core::ServerModel& server = pipeline.server();
  server.enable_solve_cache(
      core::SolveCache::global(),
      core::solve_scope(core::Approach::kProposed, kCell));
  const auto& bench = workload::find_benchmark("x264");
  const workload::Configuration config{4, 2, 3.2};

  ExhaustivePolicy oracle([&](const std::vector<std::vector<int>>& subsets) {
    return core::evaluate_placements_parallel(
        core::Approach::kProposed, kCell, bench, config, power::CState::kC1E,
        subsets, /*grain=*/1, core::SolveCache::global());
  });

  MappingContext context;
  context.floorplan = &server.floorplan();
  context.orientation = server.design().evaporator.orientation;
  context.idle_state = power::CState::kC1E;
  context.cores_needed = 4;

  const std::vector<int> best = oracle.select_cores(context);
  const double optimal = oracle.best_cost();
  EXPECT_EQ(oracle.evaluations(), 70u);

  // The heuristic's placement is one of the 70 enumerated subsets, so this
  // re-simulation is a solve-cache hit.
  const std::vector<int> heuristic =
      ProposedPolicy().select_cores(context);
  const double heuristic_cost =
      server.simulate(bench, config, heuristic, power::CState::kC1E)
          .die.max_c;

  EXPECT_GE(heuristic_cost, optimal - 1e-9);    // oracle is a lower bound
  EXPECT_LE(heuristic_cost, optimal + 1.5);     // ...and we are close to it
  EXPECT_EQ(best.size(), 4u);
}

}  // namespace
}  // namespace tpcool::mapping
