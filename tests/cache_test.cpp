// Tests for the sharded solve-cache layer: shard-count/capacity resolution,
// cost-aware eviction, the order-insensitive content digest, the segmented
// (manifest + per-shard segment) snapshot format, re-striping across shard
// counts, the legacy v2 migration path, rejection of damaged manifests and
// missing/truncated/mixed-generation segments, a concurrent merge-save
// torture run with a deterministic final digest, and the
// attach_persistent_file displacement warning.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "tpcool/core/solve_cache.hpp"
#include "tpcool/util/grid2d.hpp"

namespace tpcool::core {
namespace {

/// A SimulationResult exercising every serialized field, deterministic in
/// `seed`.  All seeds produce identically *shaped* results (same grid and
/// list sizes), so two snapshots of the same keys have identical byte
/// sizes — the mixed-generation test below relies on that.
SimulationResult rich_result(int seed) {
  const double s = static_cast<double>(seed);
  SimulationResult r;
  r.die = {60.0 + s, 50.0 + s, 3.5 + s, 4u, 100u};
  r.package = {45.0 + s, 40.0 + s, 0.5 + s, 2u, 100u};
  r.tcase_c = 55.0 + s;
  r.total_power_w = 80.0 + s;
  r.power = {40.0 + s, 5.0 + s, 12.0 + s, 8.0 + s};
  r.syphon.t_sat_c = 35.0 + s;
  r.syphon.refrigerant_flow_kg_s = 1e-3 * (1.0 + s);
  r.syphon.loop_exit_quality = 0.3 + 0.01 * s;
  r.syphon.water_outlet_c = 32.0 + s;
  r.syphon.q_total_w = 75.0 + s;
  r.syphon.htc_map = util::Grid2D<double>(3, 2);
  r.syphon.fluid_temp_map = util::Grid2D<double>(3, 2);
  for (std::size_t i = 0; i < r.syphon.htc_map.data().size(); ++i) {
    r.syphon.htc_map.data()[i] = 5000.0 + s + static_cast<double>(i);
    r.syphon.fluid_temp_map.data()[i] = 30.0 + s + 0.1 * static_cast<double>(i);
  }
  r.syphon.channels = {{0.25 + 0.01 * s, 10.0 + s, false},
                       {0.9 + 0.001 * s, 2.0 + s, seed % 2 == 1}};
  r.syphon.any_dryout = seed % 2 == 1;
  r.die_field_c = util::Grid2D<double>(4, 3);
  r.package_field_c = util::Grid2D<double>(2, 2);
  for (std::size_t i = 0; i < r.die_field_c.data().size(); ++i) {
    r.die_field_c.data()[i] = 60.0 + s + 0.25 * static_cast<double>(i);
  }
  for (std::size_t i = 0; i < r.package_field_c.data().size(); ++i) {
    r.package_field_c.data()[i] = 45.0 + s + 0.5 * static_cast<double>(i);
  }
  r.active_cores = {seed, 1, 5};
  r.transient.end_state_c = {70.0 + s, 68.5 + s, 67.0 + s, 66.25 + s};
  r.transient.peak_tcase_c = 58.0 + s;
  r.transient.peak_die_c = 63.0 + s;
  r.transient.sim_time_s = 120.0 + s;
  r.transient.steps = 17u + static_cast<std::uint64_t>(seed);
  r.transient.rejected_steps = static_cast<std::uint64_t>(seed % 3);
  return r;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  return {std::istreambuf_iterator<char>(is),
          std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::string& blob) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(blob.data(), static_cast<std::streamsize>(blob.size()));
}

void remove_snapshot(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
  for (std::size_t i = 0; i < 64; ++i) {
    if (!std::filesystem::remove(cache_io::segment_path(path, i), ec)) break;
  }
}

// --------------------------------------------------------------- striping --

TEST(CacheShardingTest, ShardCountAndCapacityResolution) {
  // Explicit counts round up to the next power of two; the capacity is
  // divided across the shards with ceil, so capacity() reports the
  // effective total (a multiple of the shard count).
  SolveCache one(4, 1);
  EXPECT_EQ(one.shard_count(), 1u);
  EXPECT_EQ(one.capacity(), 4u);

  SolveCache rounded(16, 3);
  EXPECT_EQ(rounded.shard_count(), 4u);
  EXPECT_EQ(rounded.capacity(), 16u);  // 4 shards x slice 4

  SolveCache uneven(10, 4);
  EXPECT_EQ(uneven.shard_count(), 4u);
  EXPECT_EQ(uneven.capacity(), 12u);  // ceil(10/4) = 3 per shard

  // shards = 0 resolves via default_shard_count(), always a power of two.
  SolveCache automatic(16, 0);
  EXPECT_EQ(automatic.shard_count(), SolveCache::default_shard_count());
  EXPECT_TRUE(std::has_single_bit(automatic.shard_count()));
}

TEST(CacheShardingTest, ShardIndexIsBoundedDeterministicAndDispersed) {
  // One shard takes everything.
  EXPECT_EQ(cache_io::shard_index_for_digest(0x0123456789abcdefULL, 1), 0u);
  // Bounded and deterministic for any power-of-two count.
  for (const std::size_t count : {2u, 4u, 16u}) {
    for (std::uint64_t digest = 0; digest < 64; ++digest) {
      const std::size_t index =
          cache_io::shard_index_for_digest(digest * 0x123456789ULL, count);
      EXPECT_LT(index, count);
      EXPECT_EQ(index, cache_io::shard_index_for_digest(
                           digest * 0x123456789ULL, count));
    }
  }
  // Realistic similar keys (solve keys share long prefixes) must actually
  // stripe: 64 keys over 4 shards leave no shard empty and no shard with
  // the lion's share.  This is what the golden-ratio mix buys over FNV-1a's
  // raw (poorly dispersed) top bits.
  std::vector<std::size_t> population(4, 0);
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t digest =
        cache_io::key_digest("bench;cfg=16,2;core" + std::to_string(i));
    ++population[cache_io::shard_index_for_digest(digest, 4)];
  }
  for (std::size_t shard = 0; shard < 4; ++shard) {
    EXPECT_GT(population[shard], 0u) << shard;
    EXPECT_LT(population[shard], 40u) << shard;
  }
}

TEST(CacheShardingTest, StatsSumAcrossShards) {
  SolveCache cache(32, 4);
  for (int i = 0; i < 12; ++i) {
    cache.put("stats/k" + std::to_string(i), rich_result(i));
  }
  SimulationResult out;
  for (int i = 0; i < 12; ++i) {
    EXPECT_TRUE(cache.try_get("stats/k" + std::to_string(i), out));
  }
  EXPECT_FALSE(cache.try_get("stats/absent", out));
  const SolveCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.size, 12u);
  EXPECT_EQ(stats.hits, 12u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 0u);
}

// --------------------------------------------------------------- eviction --

TEST(CostAwareEvictionTest, EvictsCheapestToRecomputeFirst) {
  SolveCache cache(2, 1);
  cache.put("expensive", rich_result(1), 100.0);
  cache.put("cheap", rich_result(2), 1.0);
  // "expensive" is now least recently used, but "cheap" costs less to
  // recompute: the cost-aware policy sacrifices it instead.
  cache.put("medium", rich_result(3), 50.0);

  SimulationResult out;
  EXPECT_TRUE(cache.try_get("expensive", out));
  EXPECT_TRUE(cache.try_get("medium", out));
  EXPECT_FALSE(cache.try_get("cheap", out));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(CostAwareEvictionTest, TiesBreakTowardLeastRecentlyUsed) {
  // Uniform costs degrade to exact LRU (the pre-shard behavior).
  SolveCache cache(2, 1);
  cache.put("a", rich_result(1), 5.0);
  cache.put("b", rich_result(2), 5.0);
  SimulationResult out;
  ASSERT_TRUE(cache.try_get("a", out));  // "b" is now least recently used
  cache.put("c", rich_result(3), 5.0);

  EXPECT_TRUE(cache.try_get("a", out));
  EXPECT_TRUE(cache.try_get("c", out));
  EXPECT_FALSE(cache.try_get("b", out));
}

TEST(CostAwareEvictionTest, RepeatedPutKeepsTheLargerCost) {
  SolveCache cache(2, 1);
  cache.put("remeasured", rich_result(1), 1.0);
  cache.put("remeasured", rich_result(1), 100.0);  // cost upgraded in place
  cache.put("mid", rich_result(2), 50.0);
  cache.put("new", rich_result(3), 50.0);  // evicts "mid", not "remeasured"

  SimulationResult out;
  EXPECT_TRUE(cache.try_get("remeasured", out));
  EXPECT_TRUE(cache.try_get("new", out));
  EXPECT_FALSE(cache.try_get("mid", out));
}

// ---------------------------------------------------------------- digests --

TEST(ContentDigestTest, OrderAndShardCountInsensitive) {
  SolveCache forward(16, 1);
  SolveCache backward(16, 1);
  SolveCache striped(16, 4);
  for (int i = 0; i < 6; ++i) {
    forward.put("digest/k" + std::to_string(i), rich_result(i));
    backward.put("digest/k" + std::to_string(5 - i), rich_result(5 - i));
    striped.put("digest/k" + std::to_string(i), rich_result(i));
  }
  EXPECT_EQ(forward.content_digest(), backward.content_digest());
  EXPECT_EQ(forward.content_digest(), striped.content_digest());

  SolveCache different(16, 1);
  for (int i = 0; i < 6; ++i) {
    different.put("digest/k" + std::to_string(i), rich_result(i + 1));
  }
  EXPECT_NE(forward.content_digest(), different.content_digest());
}

// -------------------------------------------------------------- snapshots --

TEST(SegmentedSnapshotTest, SaveWritesManifestPlusSegmentsAndReloads) {
  const std::string path = ::testing::TempDir() + "tpcool_cache_seg.bin";
  remove_snapshot(path);
  SolveCache source(32, 4);
  for (int i = 0; i < 10; ++i) {
    source.put("seg/k" + std::to_string(i), rich_result(i), 1.0 + i);
  }
  source.save(path);

  EXPECT_TRUE(cache_io::is_manifest(read_file(path)));
  std::uint64_t total_entries = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const std::string seg = read_file(cache_io::segment_path(path, i));
    ASSERT_FALSE(seg.empty()) << i;
    EXPECT_FALSE(cache_io::is_manifest(seg));
  }
  const cache_io::Manifest manifest =
      cache_io::decode_manifest(read_file(path), path);
  for (const cache_io::SegmentInfo& info : manifest.segments) {
    total_entries += info.entry_count;
  }
  EXPECT_EQ(manifest.segments.size(), 4u);
  EXPECT_EQ(total_entries, 10u);
  EXPECT_EQ(manifest.total_entries, 10u);

  SolveCache reloaded(32, 4);
  reloaded.load(path);
  EXPECT_EQ(reloaded.stats().size, 10u);
  EXPECT_EQ(reloaded.content_digest(), source.content_digest());
  remove_snapshot(path);
}

TEST(SegmentedSnapshotTest, ReStripesAcrossShardCounts) {
  // A snapshot written by an N-shard cache must load into an M-shard cache
  // (CI machines and laptops disagree about hardware concurrency).
  const std::string path = ::testing::TempDir() + "tpcool_cache_restripe.bin";
  remove_snapshot(path);
  SolveCache wide(32, 8);
  for (int i = 0; i < 12; ++i) {
    wide.put("restripe/k" + std::to_string(i), rich_result(i));
  }
  wide.save(path);

  SolveCache narrow(32, 1);
  narrow.load(path);
  EXPECT_EQ(narrow.stats().size, 12u);
  EXPECT_EQ(narrow.content_digest(), wide.content_digest());

  // And back out: the narrow cache saves 1 segment; a 4-shard cache loads.
  narrow.save(path);
  SolveCache medium(32, 4);
  medium.load(path);
  EXPECT_EQ(medium.stats().size, 12u);
  EXPECT_EQ(medium.content_digest(), wide.content_digest());
  remove_snapshot(path);
}

TEST(SegmentedSnapshotTest, NarrowerResaveRemovesStaleSegments) {
  const std::string path = ::testing::TempDir() + "tpcool_cache_stale.bin";
  remove_snapshot(path);
  SolveCache wide(32, 4);
  for (int i = 0; i < 8; ++i) {
    wide.put("stale/k" + std::to_string(i), rich_result(i));
  }
  wide.save(path);
  ASSERT_TRUE(std::filesystem::exists(cache_io::segment_path(path, 3)));

  SolveCache narrow(32, 1);
  narrow.load(path);
  narrow.save(path);
  EXPECT_TRUE(std::filesystem::exists(cache_io::segment_path(path, 0)));
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_FALSE(std::filesystem::exists(cache_io::segment_path(path, i)))
        << i;
  }
  SolveCache reloaded(32, 4);
  reloaded.load(path);
  EXPECT_EQ(reloaded.content_digest(), wide.content_digest());
  remove_snapshot(path);
}

TEST(SegmentedSnapshotTest, MigratesLegacyV2SnapshotsLosslessly) {
  // The pre-shard monolithic format (CI actions-cache blobs, long-lived
  // --cache-file paths) must load transparently and round-trip through a
  // segmented save bit-identically.
  const std::string path = ::testing::TempDir() + "tpcool_cache_v2.bin";
  const std::string resaved = ::testing::TempDir() + "tpcool_cache_v3.bin";
  remove_snapshot(path);
  remove_snapshot(resaved);

  std::vector<cache_io::SnapshotEntry> entries;
  for (int i = 0; i < 9; ++i) {
    entries.push_back(cache_io::SnapshotEntry{
        "legacy/k" + std::to_string(i), 0.0, rich_result(i)});
  }
  write_file(path, cache_io::encode_legacy_v2(entries));
  ASSERT_TRUE(cache_io::is_legacy_snapshot(read_file(path)));

  SolveCache migrated(32, 4);
  migrated.load(path);
  EXPECT_EQ(migrated.stats().size, 9u);

  // Reference digest: the same entries inserted directly.
  SolveCache reference(32, 1);
  for (const cache_io::SnapshotEntry& entry : entries) {
    reference.put(entry.key, entry.result);
  }
  EXPECT_EQ(migrated.content_digest(), reference.content_digest());

  // load v2 -> save v3 -> reload: bit-identical entries, segmented format.
  migrated.save(resaved);
  EXPECT_TRUE(cache_io::is_manifest(read_file(resaved)));
  SolveCache reloaded(32, 2);
  reloaded.load(resaved);
  EXPECT_EQ(reloaded.stats().size, 9u);
  EXPECT_EQ(reloaded.content_digest(), reference.content_digest());
  remove_snapshot(path);
  remove_snapshot(resaved);
}

TEST(SegmentedSnapshotTest, RejectsDamagedManifestAndSegments) {
  const std::string path = ::testing::TempDir() + "tpcool_cache_damage.bin";
  remove_snapshot(path);
  SolveCache source(32, 4);
  for (int i = 0; i < 8; ++i) {
    source.put("damage/k" + std::to_string(i), rich_result(i), 2.0);
  }
  source.save(path);
  const std::string manifest_blob = read_file(path);

  // Find a segment that actually holds entries to damage.
  const cache_io::Manifest manifest =
      cache_io::decode_manifest(manifest_blob, path);
  std::size_t victim = 0;
  for (std::size_t i = 0; i < manifest.segments.size(); ++i) {
    if (manifest.segments[i].entry_count > 0) victim = i;
  }
  const std::string victim_path = cache_io::segment_path(path, victim);
  const std::string victim_blob = read_file(victim_path);

  SolveCache fresh(32, 4);

  // Damaged manifest: a flipped bit breaks the manifest stream digest.
  std::string bad_manifest = manifest_blob;
  bad_manifest[manifest_blob.size() / 2] =
      static_cast<char>(bad_manifest[manifest_blob.size() / 2] ^ 1);
  write_file(path, bad_manifest);
  EXPECT_THROW(fresh.load(path), SnapshotError);
  write_file(path, manifest_blob);

  // Missing segment: the manifest references a file that is gone.
  std::filesystem::remove(victim_path);
  EXPECT_THROW(fresh.load(path), SnapshotError);

  // Truncated segment: byte size no longer matches the manifest record.
  write_file(victim_path, victim_blob.substr(0, victim_blob.size() - 12));
  EXPECT_THROW(fresh.load(path), SnapshotError);

  // Corrupt segment, length intact: the stream digest catches it.
  std::string corrupt = victim_blob;
  corrupt[victim_blob.size() / 2] =
      static_cast<char>(corrupt[victim_blob.size() / 2] ^ 1);
  write_file(victim_path, corrupt);
  EXPECT_THROW(fresh.load(path), SnapshotError);
  write_file(victim_path, victim_blob);

  // Mixed generations: a manifest from one save paired with a segment from
  // another.  Same keys, different payload bits — identical byte sizes, so
  // only the manifest-recorded digest can (and must) catch it.
  SolveCache other(32, 4);
  for (int i = 0; i < 8; ++i) {
    other.put("damage/k" + std::to_string(i), rich_result(i + 50), 2.0);
  }
  other.save(path);  // rewrites manifest + segments
  write_file(path, manifest_blob);  // restore the *old* manifest
  try {
    fresh.load(path);
    FAIL() << "expected SnapshotError for mixed snapshot generations";
  } catch (const SnapshotError& error) {
    EXPECT_NE(std::string(error.what()).find("generations are mixed"),
              std::string::npos)
        << error.what();
  }

  // Nothing survived any of the bad loads.
  EXPECT_EQ(fresh.stats().size, 0u);
  remove_snapshot(path);
}

TEST(SegmentedSnapshotTest, ConcurrentMergeSavesConvergeDeterministically) {
  // Torture: four OS threads repeatedly merge-save (load + save) their own
  // caches into one snapshot path.  Interleaved rewrites may transiently
  // produce a mixed-generation snapshot — loads must then throw
  // SnapshotError (never UB, never silent corruption) — and after a final
  // sequential merge round the snapshot must hold exactly the union of all
  // entries, certified by the order-insensitive content digest.
  const std::string path = ::testing::TempDir() + "tpcool_cache_torture.bin";
  remove_snapshot(path);
  constexpr int kThreads = 4;
  constexpr int kUniverse = 16;
  constexpr int kRounds = 12;

  // Per-shard slice 16 >= the whole universe: eviction can never drop an
  // entry, so the converged union is exact.
  std::vector<std::unique_ptr<SolveCache>> caches;
  for (int t = 0; t < kThreads; ++t) {
    caches.push_back(std::make_unique<SolveCache>(64, 4));
    for (int i = 0; i < 8; ++i) {
      const int id = (4 * t + i) % kUniverse;  // overlapping slices
      caches.back()->put("torture/k" + std::to_string(id), rich_result(id),
                         1.0 + id);
    }
  }

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        try {
          caches[static_cast<std::size_t>(t)]->load(path);
        } catch (const SnapshotError&) {
          // Missing (first rounds) or caught-mid-rewrite snapshot: the
          // documented cold-start path.
        }
        caches[static_cast<std::size_t>(t)]->save(path);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // One sequential merge round: afterwards the file holds every thread's
  // entries, i.e. exactly the universe.
  for (const std::unique_ptr<SolveCache>& cache : caches) {
    try {
      cache->load(path);
    } catch (const SnapshotError&) {
    }
    cache->save(path);
  }

  SolveCache expected(64, 4);
  for (int id = 0; id < kUniverse; ++id) {
    expected.put("torture/k" + std::to_string(id), rich_result(id));
  }
  SolveCache merged(64, 4);
  merged.load(path);
  EXPECT_EQ(merged.stats().size, static_cast<std::size_t>(kUniverse));
  EXPECT_EQ(merged.content_digest(), expected.content_digest());

  // The digest is shard-count-independent: a single-stripe load agrees.
  SolveCache single(64, 1);
  single.load(path);
  EXPECT_EQ(single.content_digest(), expected.content_digest());
  remove_snapshot(path);
}

// ------------------------------------------------------------ persistence --

TEST(AttachPersistentFileTest, WarnsWhenSecondPathDisplacesTheFirst) {
  // Last attach wins is deliberate (a bench's --cache-file replaces the
  // env registration), but the displacement must be visible: the first
  // path will not be rewritten at exit.
  const std::string first =
      ::testing::TempDir() + "tpcool_attach_first.bin";
  const std::string second =
      ::testing::TempDir() + "tpcool_attach_second.bin";
  auto cache = std::make_shared<SolveCache>(8, 1);
  cache->put("attach/key", rich_result(1));

  SolveCache::attach_persistent_file(cache, first);
  ::testing::internal::CaptureStderr();
  SolveCache::attach_persistent_file(cache, second);
  const std::string warned = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(warned.find("WARN"), std::string::npos) << warned;
  EXPECT_NE(warned.find("displaces"), std::string::npos) << warned;
  EXPECT_NE(warned.find(first), std::string::npos) << warned;

  // Re-attaching the same path is not a displacement: no warning.
  ::testing::internal::CaptureStderr();
  SolveCache::attach_persistent_file(cache, second);
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

}  // namespace
}  // namespace tpcool::core
