// Tests for the datacenter fleet layer: placement-policy units and the
// registry, FleetModel validation and metrics accounting, bit-identity of
// fleet sweeps at 1/2/4 threads and for cold vs snapshot-warmed caches,
// and the propagation of TCASE-limit violations into the fleet QoS
// counters (the steady-state analogue of TraceResult::tcase_limit_exceeded).

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "tpcool/core/pipeline_pool.hpp"
#include "tpcool/core/solve_cache.hpp"
#include "tpcool/core/trace_runner.hpp"
#include "tpcool/datacenter/fleet.hpp"
#include "tpcool/datacenter/placement.hpp"
#include "tpcool/util/error.hpp"
#include "tpcool/util/thread_pool.hpp"

namespace tpcool::datacenter {
namespace {

// Coarse grid: these tests assert dispatch and determinism, not physics.
constexpr double kCell = 2.0e-3;

class DatacenterTest : public ::testing::Test {
 protected:
  void TearDown() override {
    util::ThreadPool::set_global_thread_count(0);
    core::SolveCache::global()->clear();
    core::PipelinePool::global().clear();
  }
};

// ------------------------------------------------------ placement policies --

std::vector<RackLoad> three_racks() {
  return {{0, 2, 0, 0.0, kIdleHeadroomC},
          {1, 2, 0, 0.0, kIdleHeadroomC},
          {2, 2, 0, 0.0, kIdleHeadroomC}};
}

JobRequest any_job() {
  JobRequest job;
  job.bench = &workload::find_benchmark("x264");
  job.qos = workload::QoSRequirement{2.0};
  job.est_power_w = job_power_estimate(*job.bench, job.qos);
  return job;
}

TEST(PlacementRegistry, NamesRoundTripThroughFactory) {
  ASSERT_EQ(placement_policy_names().size(), 4u);
  for (const std::string& name : placement_policy_names()) {
    const std::unique_ptr<PlacementPolicy> policy =
        make_placement_policy(name);
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_EQ(policy->name(), name);
  }
  EXPECT_THROW((void)make_placement_policy("random"),
               util::PreconditionError);
}

TEST(PlacementPolicy, RoundRobinCyclesAndSkipsFullRacks) {
  RoundRobinPlacement policy;
  std::vector<RackLoad> racks = three_racks();
  const JobRequest job = any_job();
  EXPECT_EQ(policy.select_rack(job, racks), 0u);
  EXPECT_EQ(policy.select_rack(job, racks), 1u);
  EXPECT_EQ(policy.select_rack(job, racks), 2u);
  EXPECT_EQ(policy.select_rack(job, racks), 0u);  // wraps
  racks[1].assigned = racks[1].capacity;          // rack 1 now full
  EXPECT_EQ(policy.select_rack(job, racks), 2u);  // 1 skipped
  racks[0].assigned = racks[0].capacity;
  racks[2].assigned = racks[2].capacity;
  EXPECT_THROW((void)policy.select_rack(job, racks),
               util::PreconditionError);  // everything full
}

TEST(PlacementPolicy, LeastPowerPicksLightestOpenRack) {
  LeastPowerPlacement policy;
  std::vector<RackLoad> racks = three_racks();
  racks[0].est_power_w = 30.0;
  racks[1].est_power_w = 10.0;
  racks[2].est_power_w = 20.0;
  const JobRequest job = any_job();
  EXPECT_EQ(policy.select_rack(job, racks), 1u);
  racks[1].assigned = racks[1].capacity;  // lightest is full
  EXPECT_EQ(policy.select_rack(job, racks), 2u);
  racks[2].est_power_w = 30.0;  // tie with rack 0: lowest index wins
  EXPECT_EQ(policy.select_rack(job, racks), 0u);
}

TEST(PlacementPolicy, ThermalHeadroomPrefersCoolestThenEmptiest) {
  ThermalHeadroomPlacement policy;
  std::vector<RackLoad> racks = three_racks();
  racks[0].headroom_c = 5.0;
  racks[1].headroom_c = 20.0;
  racks[2].headroom_c = 12.0;
  const JobRequest job = any_job();
  EXPECT_EQ(policy.select_rack(job, racks), 1u);
  // Equal headroom (the historyless first interval): fewest assigned wins.
  racks[0].headroom_c = racks[1].headroom_c = racks[2].headroom_c = 10.0;
  racks[0].assigned = 1;
  racks[1].assigned = 1;
  EXPECT_EQ(policy.select_rack(job, racks), 2u);
}

TEST(PlacementPolicy, HeadroomOrderIsTrulyLexicographic) {
  // Regression: the old cost encoding `-headroom * 1e6 + assigned` stopped
  // being lexicographic once two racks' headrooms differed by less than
  // assigned / 1e6 — a sub-microdegree headroom edge lost to an emptier
  // rack.  Any headroom difference must outrank the assignment count.
  ThermalHeadroomPlacement policy;
  std::vector<RackLoad> racks = three_racks();
  racks[0].headroom_c = 10.0;
  racks[0].assigned = 0;
  racks[1].headroom_c = 10.0 + 1e-9;  // more headroom, but busier
  racks[1].assigned = 1;
  racks[2].headroom_c = 5.0;
  const JobRequest job = any_job();
  // The weighted sum picked rack 0 (its -1e7 beat -1e7 - 1e-3 + 1).
  EXPECT_EQ(policy.select_rack(job, racks), 1u);
}

TEST(PlacementPolicy, JobPowerEstimateTracksQoSSlack) {
  const workload::BenchmarkProfile& bench = workload::find_benchmark("x264");
  // Tighter QoS leaves less power slack, so the estimate is larger.
  EXPECT_GT(job_power_estimate(bench, {1.0}), job_power_estimate(bench, {3.0}));
  EXPECT_THROW((void)job_power_estimate(bench, {0.5}),
               util::PreconditionError);
}

// ------------------------------------------------------------- FleetModel --

FleetConfig two_rack_fleet() {
  FleetConfig config = make_heterogeneous_fleet(2, 2, kCell);
  return config;
}

TEST_F(DatacenterTest, ValidatesConfigAndStreams) {
  EXPECT_THROW(FleetModel(FleetConfig{}), util::PreconditionError);
  FleetConfig bad_policy = two_rack_fleet();
  bad_policy.placement = "no-such-policy";
  EXPECT_THROW(FleetModel(std::move(bad_policy)), util::PreconditionError);
  FleetConfig no_servers = two_rack_fleet();
  no_servers.racks[0].servers = 0;
  EXPECT_THROW(FleetModel(std::move(no_servers)), util::PreconditionError);

  FleetModel fleet(two_rack_fleet());
  EXPECT_EQ(fleet.total_capacity(), 4u);
  EXPECT_THROW((void)fleet.run({}), util::PreconditionError);

  // 5 streams against 4 servers: over capacity, reported not deadlocked.
  const workload::WorkloadTrace trace({{"x264", {2.0}, 1.0}});
  EXPECT_THROW((void)fleet.run({trace, trace, trace, trace, trace}),
               util::PreconditionError);
}

TEST_F(DatacenterTest, SinglePhaseStreamMakesOneConsistentInterval) {
  FleetModel fleet(two_rack_fleet());
  const workload::WorkloadTrace trace({{"x264", {2.0}, 5.0}});
  const FleetResult result = fleet.run({trace});

  ASSERT_EQ(result.intervals.size(), 1u);
  const FleetInterval& iv = result.intervals[0];
  EXPECT_DOUBLE_EQ(iv.start_s, 0.0);
  EXPECT_DOUBLE_EQ(iv.duration_s, 5.0);
  ASSERT_EQ(iv.jobs.size(), 1u);
  EXPECT_EQ(iv.jobs[0].stream, 0u);
  EXPECT_EQ(iv.jobs[0].benchmark, "x264");
  EXPECT_EQ(iv.jobs[0].rack, 0u);  // round-robin starts at rack 0
  EXPECT_GT(iv.jobs[0].package_power_w, 0.0);
  EXPECT_GT(iv.jobs[0].max_supply_temp_c, 0.0);
  EXPECT_FALSE(iv.jobs[0].tcase_limit_exceeded);
  EXPECT_EQ(iv.qos_violations, 0u);

  // The loaded rack reports the §V shared-loop state; the idle rack is
  // zeroed and keeps the idle headroom.
  EXPECT_EQ(iv.racks[0].jobs, 1u);
  EXPECT_DOUBLE_EQ(iv.racks[0].cooling.supply_temp_c,
                   iv.jobs[0].max_supply_temp_c);
  EXPECT_LT(iv.racks[0].headroom_c, kIdleHeadroomC);
  EXPECT_EQ(iv.racks[1].jobs, 0u);
  EXPECT_DOUBLE_EQ(iv.racks[1].cooling.supply_temp_c, 0.0);
  EXPECT_DOUBLE_EQ(iv.racks[1].headroom_c, kIdleHeadroomC);

  // Energy and PUE accounting close over the single interval.
  EXPECT_DOUBLE_EQ(result.duration_s, 5.0);
  EXPECT_DOUBLE_EQ(result.total_it_energy_j, iv.it_power_w * 5.0);
  EXPECT_DOUBLE_EQ(result.total_chiller_energy_j, iv.chiller_power_w * 5.0);
  EXPECT_GT(result.total_facility_energy_j, result.total_it_energy_j);
  EXPECT_DOUBLE_EQ(result.avg_pue, iv.pue);
  EXPECT_GT(result.avg_pue, 1.0);   // chiller + distribution overhead
  EXPECT_LT(result.avg_pue, 1.4);   // far below the air-cooled 1.4-1.65
}

TEST_F(DatacenterTest, IntervalsAreTheUnionOfPhaseBoundaries) {
  FleetModel fleet(two_rack_fleet());
  const workload::WorkloadTrace a({{"x264", {2.0}, 4.0},
                                   {"canneal", {3.0}, 4.0}});
  const workload::WorkloadTrace b({{"swaptions", {2.0}, 2.0},
                                   {"vips", {2.0}, 4.0}});
  const FleetResult result = fleet.run({a, b});

  // Boundaries {0, 2, 4, 6, 8}: stream b ends at 6, stream a at 8.
  ASSERT_EQ(result.intervals.size(), 4u);
  EXPECT_DOUBLE_EQ(result.intervals[0].start_s, 0.0);
  EXPECT_DOUBLE_EQ(result.intervals[1].start_s, 2.0);
  EXPECT_DOUBLE_EQ(result.intervals[2].start_s, 4.0);
  EXPECT_DOUBLE_EQ(result.intervals[3].start_s, 6.0);
  EXPECT_EQ(result.intervals[0].jobs.size(), 2u);
  EXPECT_EQ(result.intervals[2].jobs.size(), 2u);
  // Stream b is done after t=6: only stream a's last phase remains.
  ASSERT_EQ(result.intervals[3].jobs.size(), 1u);
  EXPECT_EQ(result.intervals[3].jobs[0].stream, 0u);
  EXPECT_EQ(result.intervals[3].jobs[0].benchmark, "canneal");
}

TEST_F(DatacenterTest, UlpBoundarySliversCollapseToTheLargerVariant) {
  // Two streams whose boundaries coincide only up to float accumulation:
  // stream a's total is 0.1 + 0.2 (the larger ULP variant), stream b's is
  // the literal 0.3.  Exact dedupe would keep both variants and emit a
  // sliver interval of ~5.6e-17 s between them.
  ASSERT_NE(0.1 + 0.2, 0.3);  // the premise
  const workload::WorkloadTrace a({{"x264", {2.0}, 0.1},
                                   {"canneal", {3.0}, 0.2}});
  const workload::WorkloadTrace b({{"vips", {2.0}, 0.3}});

  const std::vector<double> boundaries = fleet_interval_boundaries({a, b});
  ASSERT_EQ(boundaries.size(), 3u);
  EXPECT_EQ(boundaries[0], 0.0);
  EXPECT_EQ(boundaries[1], 0.1);
  // The cluster collapses to its LARGER member, so stream b (whose own sum
  // is the smaller variant) tests as finished there instead of being
  // resurrected for the sliver.
  EXPECT_EQ(boundaries[2], 0.1 + 0.2);

  FleetModel fleet(two_rack_fleet());
  const FleetResult result = fleet.run({a, b});
  ASSERT_EQ(result.intervals.size(), 2u);
  for (const FleetInterval& iv : result.intervals) {
    EXPECT_GT(iv.duration_s, 0.05);  // no sliver interval survived
  }
  // Both streams run in both intervals (b is active until the collapsed
  // boundary).
  EXPECT_EQ(result.intervals[0].jobs.size(), 2u);
  EXPECT_EQ(result.intervals[1].jobs.size(), 2u);
}

TEST_F(DatacenterTest, ExactlyCoincidentBoundariesStillDedupe) {
  // The epsilon path must not disturb the exact-match case.
  const workload::WorkloadTrace a({{"x264", {2.0}, 2.0}});
  const workload::WorkloadTrace b({{"vips", {2.0}, 1.0},
                                   {"canneal", {3.0}, 1.0}});
  const std::vector<double> boundaries = fleet_interval_boundaries({a, b});
  ASSERT_EQ(boundaries.size(), 3u);
  EXPECT_EQ(boundaries[0], 0.0);
  EXPECT_EQ(boundaries[1], 1.0);
  EXPECT_EQ(boundaries[2], 2.0);
}

TEST_F(DatacenterTest, PlacementStateIsPerRunNotSharedAcrossFleets) {
  // Round-robin carries a cursor across dispatches *within* one run.  A
  // fresh policy is built per run, so reruns of one model are
  // bit-identical, and concurrent fleets cannot leak dispatch state into
  // each other.
  FleetConfig config = two_rack_fleet();
  const workload::WorkloadTrace trace({{"x264", {2.0}, 1.0}});
  const std::vector<workload::WorkloadTrace> streams{trace, trace, trace};

  util::ThreadPool::set_global_thread_count(2);
  core::SolveCache::global()->clear();
  FleetModel fleet(config);
  const FleetResult first = fleet.run(streams);
  const FleetResult second = fleet.run(streams);
  EXPECT_EQ(fleet_digest(first), fleet_digest(second));
  EXPECT_EQ(first.intervals[0].jobs[0].rack, 0u);   // cursor reset
  EXPECT_EQ(second.intervals[0].jobs[0].rack, 0u);  // not carried over

  // Two fleets running concurrently reproduce the isolated result bit for
  // bit: each run owns its policy instance.
  FleetResult r1, r2;
  std::thread t1([&] { r1 = FleetModel(config).run(streams); });
  std::thread t2([&] { r2 = FleetModel(config).run(streams); });
  t1.join();
  t2.join();
  EXPECT_EQ(fleet_digest(r1), fleet_digest(first));
  EXPECT_EQ(fleet_digest(r2), fleet_digest(first));
}

TEST_F(DatacenterTest, DispatchFollowsThePlacementPolicy) {
  // 4 identical single-phase streams over 2 racks x 2 servers.
  const workload::WorkloadTrace trace({{"x264", {2.0}, 2.0}});
  const std::vector<workload::WorkloadTrace> streams{trace, trace, trace,
                                                     trace};
  FleetConfig config = two_rack_fleet();
  config.placement = "round-robin";
  const FleetResult rr = FleetModel(config).run(streams);
  ASSERT_EQ(rr.intervals[0].jobs.size(), 4u);
  EXPECT_EQ(rr.intervals[0].jobs[0].rack, 0u);
  EXPECT_EQ(rr.intervals[0].jobs[1].rack, 1u);
  EXPECT_EQ(rr.intervals[0].jobs[2].rack, 0u);
  EXPECT_EQ(rr.intervals[0].jobs[3].rack, 1u);

  // Least-power balances identical jobs the same way (alternating racks).
  config.placement = "least-power";
  const FleetResult lp = FleetModel(config).run(streams);
  EXPECT_EQ(lp.intervals[0].jobs[0].rack, 0u);
  EXPECT_EQ(lp.intervals[0].jobs[1].rack, 1u);
  EXPECT_EQ(lp.intervals[0].racks[0].jobs, 2u);
  EXPECT_EQ(lp.intervals[0].racks[1].jobs, 2u);
}

// --------------------------------------------- determinism & persistence --

void expect_fleet_identical(const FleetResult& a, const FleetResult& b) {
  EXPECT_EQ(fleet_digest(a), fleet_digest(b));
  ASSERT_EQ(a.intervals.size(), b.intervals.size());
  for (std::size_t i = 0; i < a.intervals.size(); ++i) {
    SCOPED_TRACE("interval=" + std::to_string(i));
    // Bitwise, not near: the engine's contract is exactness.
    EXPECT_EQ(a.intervals[i].it_power_w, b.intervals[i].it_power_w);
    EXPECT_EQ(a.intervals[i].chiller_power_w, b.intervals[i].chiller_power_w);
    EXPECT_EQ(a.intervals[i].pue, b.intervals[i].pue);
    EXPECT_EQ(a.intervals[i].qos_violations, b.intervals[i].qos_violations);
    ASSERT_EQ(a.intervals[i].jobs.size(), b.intervals[i].jobs.size());
    for (std::size_t j = 0; j < a.intervals[i].jobs.size(); ++j) {
      EXPECT_EQ(a.intervals[i].jobs[j].rack, b.intervals[i].jobs[j].rack);
      EXPECT_EQ(a.intervals[i].jobs[j].die_max_c,
                b.intervals[i].jobs[j].die_max_c);
      EXPECT_EQ(a.intervals[i].jobs[j].tcase_c,
                b.intervals[i].jobs[j].tcase_c);
      EXPECT_EQ(a.intervals[i].jobs[j].max_supply_temp_c,
                b.intervals[i].jobs[j].max_supply_temp_c);
    }
  }
  EXPECT_EQ(a.total_it_energy_j, b.total_it_energy_j);
  EXPECT_EQ(a.avg_pue, b.avg_pue);
  EXPECT_EQ(a.qos_violations, b.qos_violations);
}

std::vector<workload::WorkloadTrace> mixed_streams() {
  return {workload::make_daily_trace(2.0), workload::make_stress_trace(3.0),
          workload::make_daily_trace(1.5)};
}

TEST_F(DatacenterTest, FleetBitIdenticalAcrossThreadCounts) {
  FleetConfig config = two_rack_fleet();
  config.placement = "thermal-headroom";

  util::ThreadPool::set_global_thread_count(1);
  core::SolveCache::global()->clear();
  const FleetResult serial = FleetModel(config).run(mixed_streams());

  for (const std::size_t threads : {2u, 4u}) {
    util::ThreadPool::set_global_thread_count(threads);
    core::SolveCache::global()->clear();  // recompute, don't replay bits
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_fleet_identical(serial, FleetModel(config).run(mixed_streams()));
  }
}

TEST_F(DatacenterTest, FleetBitIdenticalColdVsSnapshotWarmedCache) {
  // A snapshot-warmed fleet sweep must reproduce the cold one bit for bit,
  // serving every solve from the loaded entries (0 misses).
  FleetConfig config = two_rack_fleet();
  util::ThreadPool::set_global_thread_count(2);
  core::SolveCache::global()->clear();
  const FleetResult cold = FleetModel(config).run(mixed_streams());

  const std::string path = ::testing::TempDir() + "tpcool_fleet_snap.bin";
  core::SolveCache::global()->save(path);
  core::SolveCache::global()->clear();
  core::SolveCache::global()->load(path);
  const FleetResult warm = FleetModel(config).run(mixed_streams());
  const core::SolveCache::Stats stats = core::SolveCache::global()->stats();
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_GT(stats.hits, 0u);
  expect_fleet_identical(cold, warm);
  std::remove(path.c_str());
}

// ------------------------------------------------- QoS-violation plumbing --

TEST_F(DatacenterTest, TcaseLimitExceededPropagatesIntoQoSViolations) {
  // A limit below any reachable case temperature: the transient runner
  // flags the trace, and the same condition surfaces in the fleet as
  // per-job tcase_limit_exceeded and a nonzero QoS-violation count.
  constexpr double kImpossibleLimitC = 30.0;
  const workload::WorkloadTrace hot({{"x264", {1.0}, 2.0}});

  core::ApproachPipeline pipeline(core::Approach::kProposed, kCell);
  core::TraceRunner runner(pipeline.server(), pipeline.scheduler(),
                           {.control_period_s = 1.0,
                            .tcase_limit_c = kImpossibleLimitC,
                            .start_temperature_c = 35.0});
  const core::TraceResult transient = runner.run(hot);
  ASSERT_TRUE(transient.tcase_limit_exceeded);

  FleetConfig config = two_rack_fleet();
  for (RackSpec& rack : config.racks) rack.tcase_limit_c = kImpossibleLimitC;
  const FleetResult fleet = FleetModel(config).run({hot});
  ASSERT_EQ(fleet.intervals.size(), 1u);
  ASSERT_EQ(fleet.intervals[0].jobs.size(), 1u);
  EXPECT_TRUE(fleet.intervals[0].jobs[0].tcase_limit_exceeded);
  // The infeasible server pins to the coldest supply candidate.
  EXPECT_DOUBLE_EQ(fleet.intervals[0].jobs[0].max_supply_temp_c,
                   config.racks[0].supply_candidates_c.back());
  EXPECT_EQ(fleet.intervals[0].qos_violations, 1u);
  EXPECT_EQ(fleet.qos_violations, 1u);
  // Headroom goes negative: the placement policy will steer away.
  EXPECT_LT(fleet.intervals[0].racks[0].headroom_c, 0.0);
}

TEST_F(DatacenterTest, FeasibleFleetReportsNoViolations) {
  FleetModel fleet(two_rack_fleet());  // default 85 C limit
  const FleetResult result = fleet.run(mixed_streams());
  EXPECT_EQ(result.qos_violations, 0u);
  for (const FleetInterval& iv : result.intervals) {
    for (const JobOutcome& job : iv.jobs) {
      EXPECT_FALSE(job.tcase_limit_exceeded);
      EXPECT_LE(job.tcase_c, 85.0);
      EXPECT_GE(job.die_max_c, job.tcase_c);  // die is always hotter
    }
  }
}

// --------------------------------------------- fault-injection scenarios --

/// The demo fleet with hot-climate chiller ambients, so chiller events are
/// visible in the electrical numbers (at the default 35 °C ambient the
/// demo chillers sit at the free-cooling COP cap, where an efficiency
/// derate changes nothing).
FleetConfig hot_fleet() {
  FleetConfig config = two_rack_fleet();
  for (std::size_t r = 0; r < config.racks.size(); ++r) {
    config.racks[r].chiller.ambient_c = 46.0 + 0.5 * static_cast<double>(r);
  }
  return config;
}

/// `streams` constant-load streams (identical phases), so every interval
/// sees the same jobs and only the event timeline distinguishes them.
std::vector<workload::WorkloadTrace> constant_streams(std::size_t streams,
                                                      std::size_t phases) {
  const std::vector<const char*> benches = {"x264", "blackscholes",
                                            "streamcluster", "ferret"};
  std::vector<workload::WorkloadTrace> result;
  for (std::size_t s = 0; s < streams; ++s) {
    std::vector<workload::TracePhase> trace(
        phases, {benches[s % benches.size()], {2.0}, 2.0});
    result.emplace_back(std::move(trace));
  }
  return result;
}

TEST_F(DatacenterTest, ValidatesEventTimeline) {
  FleetConfig bad_rack = two_rack_fleet();
  bad_rack.events = {{0.0, 7, FleetEventKind::kRackLoss, 1.0}};
  EXPECT_THROW(FleetModel{bad_rack}, util::PreconditionError);
  FleetConfig bad_time = two_rack_fleet();
  bad_time.events = {{-1.0, 0, FleetEventKind::kRackLoss, 1.0}};
  EXPECT_THROW(FleetModel{bad_time}, util::PreconditionError);
  FleetConfig bad_factor = two_rack_fleet();
  bad_factor.events = {{0.0, 0, FleetEventKind::kChillerDerate, 0.0}};
  EXPECT_THROW(FleetModel{bad_factor}, util::PreconditionError);
  bad_factor.events = {{0.0, 0, FleetEventKind::kChillerDerate, 1.5}};
  EXPECT_THROW(FleetModel{bad_factor}, util::PreconditionError);
}

TEST_F(DatacenterTest, ChillerDerateRaisesPueAndRestoresBitwise) {
  // Six identical-load intervals (2 s each); rack 0's chiller runs at 50%
  // efficiency over [4 s, 8 s).  The derated intervals burn strictly more
  // chiller power; the restored ones reproduce the pre-event intervals
  // bit for bit (the event timeline resets to the spec's chiller).
  FleetConfig config = hot_fleet();
  config.events = {{4.0, 0, FleetEventKind::kChillerDerate, 0.5},
                   {8.0, 0, FleetEventKind::kChillerRestore, 1.0}};
  const FleetResult result =
      FleetModel(config).run(constant_streams(2, 6));
  ASSERT_EQ(result.intervals.size(), 6u);

  const FleetInterval& clean = result.intervals[0];
  for (const std::size_t derated : {2u, 3u}) {
    SCOPED_TRACE("interval=" + std::to_string(derated));
    EXPECT_GT(result.intervals[derated].chiller_power_w,
              clean.chiller_power_w);
    EXPECT_GT(result.intervals[derated].pue, clean.pue);
    // The load itself is untouched: only the cooling overhead moved.
    EXPECT_EQ(result.intervals[derated].it_power_w, clean.it_power_w);
  }
  for (const std::size_t restored : {4u, 5u}) {
    SCOPED_TRACE("interval=" + std::to_string(restored));
    EXPECT_EQ(result.intervals[restored].chiller_power_w,
              clean.chiller_power_w);
    EXPECT_EQ(result.intervals[restored].pue, clean.pue);
  }
}

TEST_F(DatacenterTest, RackLossFailsOverAndShedsLowestPriorityFirst) {
  // Three streams on a 4-server fleet; rack 0 (2 servers) dies over
  // [4 s, 8 s).  During the outage the surviving rack takes every placed
  // job and the loosest-QoS stream is shed (counted as a QoS violation);
  // after the restore the fleet returns to two-rack operation.
  FleetConfig config = two_rack_fleet();
  config.shed_overload = true;
  config.events = {{4.0, 0, FleetEventKind::kRackLoss, 1.0},
                   {8.0, 0, FleetEventKind::kRackRestore, 1.0}};
  std::vector<workload::WorkloadTrace> streams;
  streams.emplace_back(std::vector<workload::TracePhase>(
      6, {"x264", {1.0}, 2.0}));
  streams.emplace_back(std::vector<workload::TracePhase>(
      6, {"blackscholes", {2.0}, 2.0}));
  streams.emplace_back(std::vector<workload::TracePhase>(
      6, {"streamcluster", {3.0}, 2.0}));
  const FleetResult result = FleetModel(config).run(streams);
  ASSERT_EQ(result.intervals.size(), 6u);

  for (const std::size_t outage : {2u, 3u}) {
    SCOPED_TRACE("interval=" + std::to_string(outage));
    const FleetInterval& interval = result.intervals[outage];
    // Stream 2 has the loosest QoS tier: it is the one shed.
    ASSERT_EQ(interval.shed_streams, std::vector<std::size_t>{2});
    EXPECT_EQ(interval.qos_violations, 1u);
    ASSERT_EQ(interval.jobs.size(), 2u);
    for (const JobOutcome& job : interval.jobs) {
      EXPECT_EQ(job.rack, 1u);  // failover: everything on the survivor
    }
    EXPECT_EQ(interval.racks[0].jobs, 0u);
    EXPECT_EQ(interval.racks[0].it_power_w, 0.0);
  }
  for (const std::size_t healthy : {0u, 1u, 4u, 5u}) {
    SCOPED_TRACE("interval=" + std::to_string(healthy));
    const FleetInterval& interval = result.intervals[healthy];
    EXPECT_TRUE(interval.shed_streams.empty());
    ASSERT_EQ(interval.jobs.size(), 3u);
    EXPECT_GT(interval.racks[0].jobs, 0u);  // both racks carry load again
    EXPECT_GT(interval.racks[1].jobs, 0u);
  }
  EXPECT_EQ(result.shed_jobs, 2u);
  EXPECT_EQ(result.qos_violations, 2u);

  // Without admission control the same outage is a hard error, exactly as
  // over-capacity always was.
  config.shed_overload = false;
  EXPECT_THROW((void)FleetModel(config).run(streams),
               util::PreconditionError);
}

TEST_F(DatacenterTest, FlashCrowdShedsDeterministically) {
  // Six streams on 4 servers: the two loosest-QoS jobs are shed each
  // interval, highest QoS factor first, ties broken toward the highest
  // stream index — a pure function of the interval's arrivals.
  FleetConfig config = two_rack_fleet();
  config.shed_overload = true;
  const std::vector<double> qos = {1.0, 1.0, 2.0, 2.0, 3.0, 3.0};
  std::vector<workload::WorkloadTrace> streams;
  for (const double factor : qos) {
    streams.emplace_back(std::vector<workload::TracePhase>(
        1, {"x264", {factor}, 2.0}));
  }
  const FleetResult result = FleetModel(config).run(streams);
  ASSERT_EQ(result.intervals.size(), 1u);
  const std::vector<std::size_t> expected_shed = {4, 5};
  EXPECT_EQ(result.intervals[0].shed_streams, expected_shed);
  ASSERT_EQ(result.intervals[0].jobs.size(), 4u);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_EQ(result.intervals[0].jobs[j].stream, j);  // survivors in order
  }
  EXPECT_EQ(result.shed_jobs, 2u);
  EXPECT_EQ(result.qos_violations, 2u);
}

// ------------------------------------------------------ windowed placement --

TEST(PlacementRegistry, WindowedSuffixSelectsTheHorizon) {
  EXPECT_EQ(make_placement_policy("windowed")->name(), "windowed");
  EXPECT_EQ(make_placement_policy("windowed:2")->name(), "windowed:2");
  for (const char* bad : {"windowed:", "windowed:0", "windowed:x",
                          "windowed:12345678"}) {
    EXPECT_THROW((void)make_placement_policy(bad), util::PreconditionError)
        << bad;
  }
}

TEST_F(DatacenterTest, WindowedHorizonOneIsLeastPowerBitwise) {
  // W = 1 has no lookahead to discount: it must degrade to exactly the
  // greedy least-power scan, bit for bit.
  FleetConfig greedy = two_rack_fleet();
  greedy.placement = "least-power";
  const std::uint64_t reference =
      fleet_digest(FleetModel(greedy).run(mixed_streams()));
  FleetConfig windowed = two_rack_fleet();
  windowed.placement = "windowed:1";
  EXPECT_EQ(fleet_digest(FleetModel(windowed).run(mixed_streams())),
            reference);
}

TEST_F(DatacenterTest, WindowedLookaheadNeverWorseThanGreedyOnViolations) {
  // Regression-pinned fixture: rack 0's TCASE limit sits between the
  // tight-QoS jobs' pinned-coldest case temperature (~38.9 C) and the
  // loose-QoS jobs' (~26.6 C), so a tight job placed on rack 0 violates
  // every time.  Greedy least-power starts each interval from zero
  // estimated power and walks the same tie-break onto rack 0; the
  // lookahead policy sees rack 0's thermal deficit from the previous
  // interval and steers the tight jobs to rack 1.
  FleetConfig config = two_rack_fleet();
  config.racks[0].tcase_limit_c = 30.0;
  std::vector<workload::WorkloadTrace> streams;
  for (const double factor : {1.0, 1.0, 3.0, 3.0}) {
    streams.emplace_back(std::vector<workload::TracePhase>(
        6, {"x264", {factor}, 2.0}));
  }

  FleetConfig greedy = config;
  greedy.placement = "least-power";
  const FleetResult greedy_result = FleetModel(greedy).run(streams);
  FleetConfig windowed = config;
  windowed.placement = "windowed:4";
  const FleetResult windowed_result = FleetModel(windowed).run(streams);

  EXPECT_LE(windowed_result.qos_violations, greedy_result.qos_violations);
  // Pinned: greedy violates every interval, lookahead only where the
  // deficit has not yet been observed.
  EXPECT_EQ(greedy_result.qos_violations, 6u);
  EXPECT_EQ(windowed_result.qos_violations, 3u);
}

}  // namespace
}  // namespace tpcool::datacenter
